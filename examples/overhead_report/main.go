// Overhead report: prints the Table I hardware-overhead comparison and the
// §IV.D process-variation Monte-Carlo, the two "paper tables" that need no
// DNN training.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	fmt.Print(experiments.FormatTable1(experiments.Table1()))
	fmt.Println()

	rows, err := experiments.MonteCarlo(experiments.Small())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatMonteCarlo(rows))
	fmt.Println()

	curves, err := experiments.Fig7aData()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatFig7a(curves))
	fmt.Println()

	bars, err := experiments.Fig7bData()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatFig7b(bars))
}
