// Overhead report: runs the model-free "paper table" jobs — Table I,
// the §IV.D process-variation Monte-Carlo and both Fig. 7 panels —
// concurrently through the experiment engine.
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/experiments"
)

func main() {
	reg := engine.NewRegistry()
	if err := experiments.RegisterJobs(reg, experiments.Small()); err != nil {
		log.Fatal(err)
	}
	rep, err := engine.Run(reg, engine.Options{
		Filter: []string{"*/table1", "*/mc", "*/fig7a", "*/fig7b"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Text())
	if err := rep.Err(); err != nil {
		log.Fatal(err)
	}
}
