// ISA demo: assembles the paper's three-copy SWAP program (Fig. 5),
// encodes it to 16-bit words, runs it on the micro-op sequencer against a
// real DRAM device, and shows the two rows exchanging contents.
package main

import (
	"fmt"
	"log"

	"repro/internal/dram"
	"repro/internal/isa"
	"repro/internal/rowclone"
)

func main() {
	dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	if err != nil {
		log.Fatal(err)
	}
	clone, err := rowclone.New(dev, rowclone.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	seq := isa.NewSequencer(clone)

	// Three rows of the same subarray: locked, unlocked, buffer.
	locked := dram.RowAddr{Bank: 0, Row: 5}
	unlocked := dram.RowAddr{Bank: 0, Row: 20}
	buffer := dram.RowAddr{Bank: 0, Row: 63}
	must(dev.PokeRow(locked, []byte("LOCKED-ROW-DATA")))
	must(dev.PokeRow(unlocked, []byte("free-row-data")))

	// The canonical SWAP, written in assembler and round-tripped through
	// the 16-bit encoding.
	src := `
		AAP R2 R0   ; step 1: locked  -> buffer
		AAP R0 R1   ; step 2: unlocked -> locked
		AAP R1 R2   ; step 3: buffer -> unlocked
		DONE
	`
	prog, err := isa.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	words, err := isa.EncodeProgram(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("assembled SWAP program:")
	for _, w := range words {
		fmt.Printf("  %04x  %s\n", w, isa.Decode(w))
	}

	must(seq.BindRow(isa.RegLocked, locked))
	must(seq.BindRow(isa.RegUnlocked, unlocked))
	must(seq.BindRow(isa.RegBuffer, buffer))
	res, err := seq.Run(isa.DecodeProgram(words))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %d uops, %d row copies, latency %v\n",
		res.Steps, res.Copies, res.Latency)

	a, _ := dev.PeekRow(locked)
	b, _ := dev.PeekRow(unlocked)
	fmt.Printf("locked row now holds:   %q\n", a[:16])
	fmt.Printf("unlocked row now holds: %q\n", b[:16])
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
