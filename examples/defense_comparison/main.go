// Defense comparison: runs the same single-sided RowHammer campaign
// against every implemented mitigation — no defense, PARA, counter-per-row,
// Graphene, Hydra, CounterTree, TWiCE, RRS, SHADOW, and DRAM-Locker — and
// reports whether the victim bit flipped and what each mechanism spent.
package main

import (
	"fmt"
	"log"

	"repro/internal/controller"
	"repro/internal/defense"
	"repro/internal/dram"
	"repro/internal/rowhammer"
)

const (
	trh         = 200 // device hammer threshold
	activations = 2000
)

func main() {
	fmt.Printf("single-sided campaign: %d activations on one aggressor, device T_RH=%d\n\n", activations, trh)
	fmt.Printf("%-16s %8s %12s %14s %10s\n", "defense", "flipped", "mitigations", "extra latency", "denied")

	for _, name := range []string{
		"None", "PARA", "CounterPerRow", "Graphene", "Hydra",
		"CounterTree", "TWiCE", "RRS", "SHADOW",
	} {
		flipped, st, err := runBaseline(name)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-16s %8v %12d %14v %10d\n",
			name, flipped, st.Mitigations, st.ExtraLatency, st.Denials)
	}

	// DRAM-Locker goes through the real controller.
	flipped, denied, lat, err := runLocker()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %8v %12d %14v %10d\n", "DRAM-Locker", flipped, 0, lat, denied)
	fmt.Println("\nnote: counter-based mechanisms mitigate reactively (work scales with the")
	fmt.Println("attack); the lock-table denies proactively at pure lookup cost.")
}

// rig builds a fresh device + engine with a registered victim bit.
func rig() (*dram.Device, *rowhammer.Engine, dram.RowAddr, dram.RowAddr, error) {
	dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	if err != nil {
		return nil, nil, dram.RowAddr{}, dram.RowAddr{}, err
	}
	cfg := rowhammer.DefaultConfig()
	cfg.TRH = trh
	eng, err := rowhammer.New(dev, cfg)
	if err != nil {
		return nil, nil, dram.RowAddr{}, dram.RowAddr{}, err
	}
	agg := dram.RowAddr{Bank: 0, Row: 10}
	victim := dram.RowAddr{Bank: 0, Row: 11}
	if err := eng.RegisterTarget(victim, 0); err != nil {
		return nil, nil, dram.RowAddr{}, dram.RowAddr{}, err
	}
	return dev, eng, agg, victim, nil
}

func buildDefense(name string, dev *dram.Device, eng *rowhammer.Engine) (defense.Defense, error) {
	geom := dev.Geometry()
	switch name {
	case "None":
		return defense.NewNone(), nil
	case "PARA":
		return defense.NewPARA(eng, 0.02, 1)
	case "CounterPerRow":
		return defense.NewCounterPerRow(eng, geom, trh/2)
	case "Graphene":
		return defense.NewGraphene(eng, geom, trh, 16)
	case "Hydra":
		return defense.NewHydra(eng, geom, trh/2, 8)
	case "CounterTree":
		return defense.NewCounterTree(eng, geom, trh/2, 6)
	case "TWiCE":
		return defense.NewTWiCE(eng, geom, trh/2)
	case "RRS":
		return defense.NewRowSwap(eng, geom, trh/2, false, 2)
	case "SHADOW":
		return defense.NewShadow(eng, geom, defense.DefaultShadowConfig(trh))
	default:
		return nil, fmt.Errorf("unknown defense %q", name)
	}
}

func runBaseline(name string) (bool, defense.Stats, error) {
	dev, eng, agg, victim, err := rig()
	if err != nil {
		return false, defense.Stats{}, err
	}
	d, err := buildDefense(name, dev, eng)
	if err != nil {
		return false, defense.Stats{}, err
	}
	for i := 0; i < activations; i++ {
		dec := d.OnActivate(agg, false)
		if !dec.Allow {
			continue
		}
		if _, err := dev.Activate(agg); err != nil {
			return false, defense.Stats{}, err
		}
		if _, err := dev.Precharge(agg.Bank); err != nil {
			return false, defense.Stats{}, err
		}
	}
	flipped, err := dev.PeekBit(victim, 0)
	return flipped, d.Stats(), err
}

func runLocker() (flipped bool, denied int64, lat dram.Picoseconds, err error) {
	dev, _, agg, victim, err := rig()
	if err != nil {
		return false, 0, 0, err
	}
	ctl, err := controller.New(dev, controller.DefaultConfig())
	if err != nil {
		return false, 0, 0, err
	}
	if err := ctl.LockRow(agg); err != nil {
		return false, 0, 0, err
	}
	for i := 0; i < activations; i++ {
		if _, _, err := ctl.HammerAttempt(agg); err != nil {
			return false, 0, 0, err
		}
	}
	flipped, err = dev.PeekBit(victim, 0)
	st := ctl.Stats()
	return flipped, st.Denied, st.LookupLatency, err
}
