// Defense comparison: runs the same single-sided RowHammer campaign
// against every implemented mitigation — no defense, PARA, counter-per-row,
// Graphene, Hydra, CounterTree, TWiCE, RRS, SHADOW, and DRAM-Locker — as
// an engine job and reports whether the victim bit flipped and what each
// mechanism spent. The campaign itself lives in
// experiments.DefenseComparison; this example consumes it through the
// job registry like any other experiment.
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/experiments"
)

func main() {
	reg := engine.NewRegistry()
	// Small's TRH of 200 gives the classic 2000-activation campaign.
	if err := experiments.RegisterJobs(reg, experiments.Small()); err != nil {
		log.Fatal(err)
	}
	rep, err := engine.Run(reg, engine.Options{Filter: []string{"*/defense"}})
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		log.Fatal(err)
	}
	for _, r := range rep.Results {
		fmt.Print(r.Text)
	}
}
