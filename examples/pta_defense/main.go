// PTA defense demo: the attacker corrupts page-table entries (Fig. 3(b))
// to redirect its own virtual page onto the victim's weight frames and
// overwrite them. DRAM-Locker locks the rows adjacent to the page-table
// rows, so the PTE bits can never be hammered.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	p := experiments.Tiny()

	fmt.Println("training victim and building page tables in DRAM...")
	r, err := experiments.Fig8PTA(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatFig8PTA(r))

	fmt.Println()
	fmt.Println("interpretation:")
	fmt.Printf("  - undefended, each PTE redirect lets the attacker overwrite a whole\n")
	fmt.Printf("    weight row; accuracy collapsed to %.1f%%\n", r.Without.FinalAccuracy()*100)
	fmt.Printf("  - with DRAM-Locker on the page-table rows (%d rows locked), all %d\n",
		r.LockedRows, r.With.TotalDenied)
	fmt.Printf("    redirect attempts were denied; accuracy stayed at %.1f%%\n",
		r.With.FinalAccuracy()*100)
}
