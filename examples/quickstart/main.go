// Quickstart: build a DRAM-Locker system, store a secret in a DRAM row,
// lock its aggressor-candidate neighbors, and watch a RowHammer campaign
// bounce off the lock-table while the victim program keeps full access.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dram"
)

func main() {
	sys, err := core.NewSystem(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	ctl := sys.Controller()
	geom := sys.Device().Geometry()

	// The victim stores critical data (say, DNN weights) in row 10 of
	// bank 0. With 256-byte rows, physical address = rowIndex * rowBytes
	// under the bank-interleaved map; use the mapper to be exact.
	victimRow := dram.RowAddr{Bank: 0, Row: 10}
	phys, err := ctl.Mapper().Untranslate(victimRow, 0)
	if err != nil {
		log.Fatal(err)
	}
	secret := []byte("weights that must not flip")
	if _, err := ctl.Write(phys, secret); err != nil {
		log.Fatal(err)
	}

	// Lock the rows physically adjacent to the victim row — the only rows
	// an attacker could hammer to disturb it.
	locked, err := ctl.LockNeighborsOf(phys, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("locked %d aggressor-candidate rows: %v\n", len(locked), locked)

	// The attacker hammers those neighbors far past the threshold.
	attempts, denied := 0, 0
	for _, agg := range geom.Neighbors(victimRow, 1) {
		for i := 0; i < sys.Hammer().Config().TRH*2; i++ {
			activated, _, err := ctl.HammerAttempt(agg)
			if err != nil {
				log.Fatal(err)
			}
			attempts++
			if !activated {
				denied++
			}
		}
	}
	fmt.Printf("hammer attempts: %d, denied by lock-table: %d\n", attempts, denied)
	fmt.Printf("disturbance flips injected: %d\n", sys.Hammer().History().TotalFlips)

	// The victim still reads its data intact.
	got, _, err := ctl.Read(phys, len(secret))
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		log.Fatalf("secret corrupted: %q", got)
	}
	fmt.Printf("victim read back intact: %q\n", got)

	st := ctl.Stats()
	fmt.Printf("controller: %d instructions, %d denied, %d swaps, total latency %v\n",
		st.Instructions, st.Denied, st.Swaps, st.TotalLatency)
}
