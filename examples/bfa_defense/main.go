// BFA defense demo: trains a quantized ResNet-20 on synthetic CIFAR-like
// data, places its weights into simulated DRAM, and runs the gradient-
// guided Bit-Flip Attack twice — against an unprotected system and against
// DRAM-Locker — printing the Fig. 8-style accuracy traces.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	p := experiments.Tiny()
	p.AttackIters = 12

	fmt.Println("training victim ResNet-20 (synthetic CIFAR-10-like)...")
	r, err := experiments.Fig8(p, experiments.ArchResNet20, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatFig8(r))

	fmt.Println()
	fmt.Println("interpretation:")
	fmt.Printf("  - undefended, the attacker landed %d targeted flips and pushed accuracy\n", r.Without.TotalFlips)
	fmt.Printf("    from %.1f%% to %.1f%%\n", r.CleanAcc*100, r.Without.FinalAccuracy()*100)
	fmt.Printf("  - with DRAM-Locker, %d of %d attempts were denied at the lock-table;\n",
		r.With.TotalDenied, r.With.TotalDenied+r.With.TotalFlips)
	fmt.Printf("    accuracy stayed at %.1f%%\n", r.With.FinalAccuracy()*100)
}
