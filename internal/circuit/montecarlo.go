// Package circuit replaces the paper's Cadence Spectre Monte-Carlo study
// (§IV.D) with an analytic charge-sharing model of the in-DRAM SWAP.
//
// A RowClone copy succeeds when, for the worst-case cell of the row, the
// bit-line deviation developed during charge sharing exceeds the sense
// amplifier's offset. The deviation is
//
//	dV = (VDD/2) * Cc/(Cc+Cb) * eta
//
// where eta = 1 - exp(-tShare/tau) is the charge-transfer efficiency and
// tau = R_on * Cc the access time constant. R_on degrades quadratically
// with lost gate overdrive, R_on = R0 * (Vov0/Vov)^2, which is what makes
// failure probability grow super-linearly with process variation — the
// effect the paper observes (0% at nominal, 0.14% at +-10%, 9.6% at +-20%).
//
// Process variation of +-X% is modelled as independent Gaussian variation
// with 3*sigma = X% on every component the paper lists: cell capacitance,
// bit-line capacitance, word-line (gate overdrive) level and the access
// transistor threshold voltage, plus a fixed sense-amplifier offset spread.
package circuit

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Params holds the nominal 45nm-class operating point of the model.
type Params struct {
	VDD  float64 // supply voltage (V)
	Cc   float64 // cell capacitance (F)
	Cb   float64 // bit-line capacitance (F)
	Vpp  float64 // boosted word-line voltage (V)
	Vth  float64 // access transistor threshold (V)
	R0   float64 // nominal access transistor on-resistance (Ohm)
	Tsh  float64 // charge-sharing window (s)
	Voff float64 // sense amplifier offset the margin must beat (V)
	// SenseSigma is the fixed (variation-independent) sigma of the sense
	// amplifier offset in volts.
	SenseSigma float64
	// CopiesPerSwap is the number of RowClone copies per SWAP (three).
	CopiesPerSwap int
}

// Default45nm returns the calibrated 45nm NCSU-PDK-class operating point.
func Default45nm() Params {
	return Params{
		VDD:           1.1,
		Cc:            22e-15,
		Cb:            85e-15,
		Vpp:           2.2,
		Vth:           0.46,
		R0:            9.0e4,
		Tsh:           4.0e-9,
		Voff:          0.0758,
		SenseSigma:    0.004,
		CopiesPerSwap: 3,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.VDD <= 0 || p.Cc <= 0 || p.Cb <= 0 || p.R0 <= 0 || p.Tsh <= 0 {
		return fmt.Errorf("circuit: non-positive electrical parameter: %+v", p)
	}
	if p.Vpp <= p.Vth+p.VDD/2 {
		return fmt.Errorf("circuit: word-line boost too low: Vpp=%g Vth=%g", p.Vpp, p.Vth)
	}
	if p.CopiesPerSwap <= 0 {
		return fmt.Errorf("circuit: CopiesPerSwap must be positive, got %d", p.CopiesPerSwap)
	}
	return nil
}

// overdrive returns the access transistor gate overdrive for a threshold.
func (p Params) overdrive(vth float64) float64 { return p.Vpp - vth - p.VDD/2 }

// Margin computes the bit-line sense margin for one sampled cell instance.
func (p Params) Margin(cc, cb, vth, vwlScale float64) float64 {
	vov0 := p.overdrive(p.Vth)
	vov := p.Vpp*vwlScale - vth - p.VDD/2
	if vov <= 0.02 {
		// Transistor effectively off within the sharing window.
		return 0
	}
	ron := p.R0 * (vov0 / vov) * (vov0 / vov)
	tau := ron * cc
	eta := 1 - math.Exp(-p.Tsh/tau)
	return (p.VDD / 2) * cc / (cc + cb) * eta
}

// NominalMargin returns the margin with every parameter at nominal.
func (p Params) NominalMargin() float64 { return p.Margin(p.Cc, p.Cb, p.Vth, 1.0) }

// Result reports one Monte-Carlo run.
type Result struct {
	Variation  float64 // the +-X variation fraction (0.0, 0.1, 0.2)
	Trials     int
	CopyErrors int     // erroneous single row copies
	SwapErrors int     // swaps with >= 1 erroneous copy
	CopyRate   float64 // CopyErrors / total copies
	SwapRate   float64 // SwapErrors / Trials
	MeanMargin float64 // mean sampled margin (V)
	MinMargin  float64 // minimum sampled margin (V)
}

// MonteCarlo runs `trials` SWAP instances at the given +-variation fraction
// (e.g. 0.20 for +-20%) and returns error statistics. Each of the three
// copies in a SWAP samples an independent worst-case cell, matching the
// paper's per-operation error accounting.
func MonteCarlo(p Params, variation float64, trials int, seed uint64) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if variation < 0 || variation > 0.5 {
		return Result{}, fmt.Errorf("circuit: variation must be in [0, 0.5], got %g", variation)
	}
	if trials <= 0 {
		return Result{}, fmt.Errorf("circuit: trials must be positive, got %d", trials)
	}
	rng := stats.NewRNG(seed)
	res := Result{Variation: variation, Trials: trials, MinMargin: math.Inf(1)}
	sigma := variation / 3 // +-X% interpreted as 3-sigma bounds
	var marginSum float64
	var copies int
	for t := 0; t < trials; t++ {
		swapErred := false
		for c := 0; c < p.CopiesPerSwap; c++ {
			cc := p.Cc * (1 + rng.Normal(0, sigma))
			cb := p.Cb * (1 + rng.Normal(0, sigma))
			vth := p.Vth * (1 + rng.Normal(0, sigma))
			vwl := 1 + rng.Normal(0, sigma)
			if cc < p.Cc*0.1 {
				cc = p.Cc * 0.1
			}
			if cb < p.Cb*0.1 {
				cb = p.Cb * 0.1
			}
			m := p.Margin(cc, cb, vth, vwl)
			off := p.Voff + rng.Normal(0, p.SenseSigma)
			marginSum += m
			copies++
			if m < res.MinMargin {
				res.MinMargin = m
			}
			if m < off {
				res.CopyErrors++
				swapErred = true
			}
		}
		if swapErred {
			res.SwapErrors++
		}
	}
	res.CopyRate = float64(res.CopyErrors) / float64(copies)
	res.SwapRate = float64(res.SwapErrors) / float64(trials)
	res.MeanMargin = marginSum / float64(copies)
	return res, nil
}

// PaperVariations returns the §IV.D process-variation sweep (±0/10/20%).
func PaperVariations() []float64 {
	return []float64{0.0, 0.10, 0.20}
}

// PaperPoint runs the i-th variation of the §IV.D sweep under the exact
// seed PaperSweep would hand it, so computing points independently (e.g.
// as shards) reproduces the sweep bit-for-bit.
func PaperPoint(p Params, i, trials int, seed uint64) (Result, error) {
	vs := PaperVariations()
	if i < 0 || i >= len(vs) {
		return Result{}, fmt.Errorf("circuit: sweep point %d out of range [0,%d)", i, len(vs))
	}
	return MonteCarlo(p, vs[i], trials, seed+uint64(i)*7919)
}

// PaperSweep reproduces the §IV.D experiment: 10,000 trials at +-0%, +-10%
// and +-20% variation. The paper reports erroneous SWAP percentages of
// 0%, 0.14% and 9.6% respectively.
func PaperSweep(p Params, trials int, seed uint64) ([]Result, error) {
	var out []Result
	for i := range PaperVariations() {
		r, err := PaperPoint(p, i, trials, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// PaperReportedSwapRates returns the paper's §IV.D numbers for comparison.
func PaperReportedSwapRates() map[float64]float64 {
	return map[float64]float64{0.0: 0.0, 0.10: 0.0014, 0.20: 0.096}
}
