package circuit

import (
	"math"
	"testing"
)

func TestNominalCornerIsErrorFree(t *testing.T) {
	r, err := MonteCarlo(Default45nm(), 0, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.SwapErrors != 0 || r.CopyErrors != 0 {
		t.Fatalf("nominal corner produced errors: %+v", r)
	}
}

func TestErrorRateGrowsWithVariation(t *testing.T) {
	p := Default45nm()
	var prev float64
	for _, v := range []float64{0, 0.05, 0.10, 0.15, 0.20} {
		r, err := MonteCarlo(p, v, 20000, 7)
		if err != nil {
			t.Fatal(err)
		}
		if r.SwapRate < prev {
			t.Fatalf("swap rate at %.0f%% (%.4f) below rate at smaller variation (%.4f)",
				v*100, r.SwapRate, prev)
		}
		prev = r.SwapRate
	}
}

func TestMatchesPaperBands(t *testing.T) {
	rs, err := PaperSweep(Default45nm(), 10000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("sweep length %d", len(rs))
	}
	// Paper: 0%, 0.14%, 9.6%. Accept the statistical neighborhood.
	if rs[0].SwapRate != 0 {
		t.Errorf("±0%%: rate %.4f, want 0", rs[0].SwapRate)
	}
	if rs[1].SwapRate < 0.0003 || rs[1].SwapRate > 0.005 {
		t.Errorf("±10%%: rate %.4f, want ~0.0014", rs[1].SwapRate)
	}
	if rs[2].SwapRate < 0.07 || rs[2].SwapRate > 0.125 {
		t.Errorf("±20%%: rate %.4f, want ~0.096", rs[2].SwapRate)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, _ := MonteCarlo(Default45nm(), 0.2, 5000, 99)
	b, _ := MonteCarlo(Default45nm(), 0.2, 5000, 99)
	if a.SwapErrors != b.SwapErrors || a.CopyErrors != b.CopyErrors {
		t.Fatal("Monte-Carlo must be deterministic per seed")
	}
	c, _ := MonteCarlo(Default45nm(), 0.2, 5000, 100)
	if a.SwapErrors == c.SwapErrors && a.MinMargin == c.MinMargin {
		t.Fatal("different seeds should differ")
	}
}

func TestMarginDecreasesWithWeakerTransistor(t *testing.T) {
	p := Default45nm()
	nominal := p.Margin(p.Cc, p.Cb, p.Vth, 1.0)
	weak := p.Margin(p.Cc, p.Cb, p.Vth*1.2, 0.9) // higher Vth, sagging WL
	if weak >= nominal {
		t.Fatalf("weak cell margin %.4f must be below nominal %.4f", weak, nominal)
	}
	// Transistor effectively off.
	if m := p.Margin(p.Cc, p.Cb, 10, 1.0); m != 0 {
		t.Fatalf("cut-off transistor margin = %g, want 0", m)
	}
}

func TestMarginIncreasesWithCellCap(t *testing.T) {
	p := Default45nm()
	small := p.Margin(p.Cc*0.8, p.Cb, p.Vth, 1)
	big := p.Margin(p.Cc*1.2, p.Cb, p.Vth, 1)
	if big <= small {
		t.Fatalf("more cell charge must give more margin: %g vs %g", big, small)
	}
}

func TestValidation(t *testing.T) {
	p := Default45nm()
	p.VDD = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero VDD must fail")
	}
	p = Default45nm()
	p.Vpp = 0.5
	if err := p.Validate(); err == nil {
		t.Fatal("insufficient WL boost must fail")
	}
	if _, err := MonteCarlo(Default45nm(), -0.1, 100, 1); err == nil {
		t.Fatal("negative variation must fail")
	}
	if _, err := MonteCarlo(Default45nm(), 0.1, 0, 1); err == nil {
		t.Fatal("zero trials must fail")
	}
}

func TestResultBookkeeping(t *testing.T) {
	p := Default45nm()
	r, err := MonteCarlo(p, 0.2, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Trials != 1000 {
		t.Fatalf("trials = %d", r.Trials)
	}
	if r.SwapErrors > r.CopyErrors {
		t.Fatal("swap errors cannot exceed copy errors")
	}
	if r.CopyErrors > 3*r.Trials {
		t.Fatal("copy errors cannot exceed copies")
	}
	if math.IsInf(r.MinMargin, 1) {
		t.Fatal("min margin never updated")
	}
	if r.MeanMargin < r.MinMargin {
		t.Fatal("mean below min")
	}
	wantRate := float64(r.SwapErrors) / 1000
	if math.Abs(r.SwapRate-wantRate) > 1e-12 {
		t.Fatal("swap rate inconsistent with counts")
	}
}

func TestPaperReportedRates(t *testing.T) {
	rates := PaperReportedSwapRates()
	if rates[0.0] != 0 || rates[0.10] != 0.0014 || rates[0.20] != 0.096 {
		t.Fatalf("paper rates = %v", rates)
	}
}
