package isa

import (
	"errors"
	"fmt"

	"repro/internal/dram"
	"repro/internal/rowclone"
)

// Errors returned by the sequencer.
var (
	ErrNoTerminator = errors.New("isa: program ran off the end without DONE")
	ErrBranchRange  = errors.New("isa: branch target outside program")
	ErrStepBudget   = errors.New("isa: step budget exhausted (runaway loop?)")
	ErrUnboundReg   = errors.New("isa: micro-register holds no row address")
)

// Sequencer executes DRAM-Locker programs against a RowClone engine.
// Micro-registers hold either a row address (for AAP operands) or a scalar
// counter (for BNEZ). The controller binds registers before Run.
type Sequencer struct {
	clone *rowclone.Engine

	rows    [NumMicroRegs]dram.RowAddr
	bound   [NumMicroRegs]bool
	counter [NumMicroRegs]int64

	// MaxSteps bounds execution to catch runaway loops; 0 means default.
	MaxSteps int

	stats SequencerStats
}

// SequencerStats counts executed micro-operations.
type SequencerStats struct {
	Programs   int64
	Steps      int64
	Copies     int64
	CopyErrors int64
	Branches   int64
	Latency    dram.Picoseconds
}

// DefaultMaxSteps bounds one program run.
const DefaultMaxSteps = 1 << 20

// NewSequencer builds a sequencer over a RowClone engine.
func NewSequencer(clone *rowclone.Engine) *Sequencer {
	return &Sequencer{clone: clone, MaxSteps: DefaultMaxSteps}
}

// BindRow loads a row address into a micro-register.
func (s *Sequencer) BindRow(reg uint8, addr dram.RowAddr) error {
	if reg >= NumMicroRegs {
		return fmt.Errorf("%w: R%d", ErrBadRegister, reg)
	}
	s.rows[reg] = addr
	s.bound[reg] = true
	return nil
}

// BindCounter loads a scalar counter into a micro-register.
func (s *Sequencer) BindCounter(reg uint8, v int64) error {
	if reg >= NumMicroRegs {
		return fmt.Errorf("%w: R%d", ErrBadRegister, reg)
	}
	s.counter[reg] = v
	return nil
}

// Row returns the row address bound to a register.
func (s *Sequencer) Row(reg uint8) (dram.RowAddr, bool) {
	if reg >= NumMicroRegs || !s.bound[reg] {
		return dram.RowAddr{}, false
	}
	return s.rows[reg], true
}

// Counter returns the scalar value of a register.
func (s *Sequencer) Counter(reg uint8) int64 {
	if reg >= NumMicroRegs {
		return 0
	}
	return s.counter[reg]
}

// Stats returns accumulated execution statistics.
func (s *Sequencer) Stats() SequencerStats { return s.stats }

// RunResult reports one program execution.
type RunResult struct {
	Steps      int
	Copies     int
	CopyErrors int
	Latency    dram.Picoseconds
}

// Run executes the program until DONE. AAP copies rows through the RowClone
// engine (inheriting its error injection); BNEZ decrements its counter
// register and branches while non-zero.
func (s *Sequencer) Run(prog []Instruction) (RunResult, error) {
	var res RunResult
	maxSteps := s.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	pc := 0
	for {
		if res.Steps >= maxSteps {
			return res, fmt.Errorf("%w after %d steps", ErrStepBudget, res.Steps)
		}
		if pc < 0 || pc >= len(prog) {
			return res, fmt.Errorf("%w: pc=%d len=%d", ErrNoTerminator, pc, len(prog))
		}
		in := prog[pc]
		res.Steps++
		s.stats.Steps++
		switch in.Op {
		case OpDONE:
			s.stats.Programs++
			s.stats.Copies += int64(res.Copies)
			s.stats.CopyErrors += int64(res.CopyErrors)
			s.stats.Latency += res.Latency
			return res, nil
		case OpNOP:
			pc++
		case OpAAP:
			src := uint8(in.B)
			if !s.bound[in.A] {
				return res, fmt.Errorf("%w: dst R%d", ErrUnboundReg, in.A)
			}
			if src >= NumMicroRegs || !s.bound[src] {
				return res, fmt.Errorf("%w: src R%d", ErrUnboundReg, src)
			}
			erred, lat, err := s.clone.Copy(s.rows[src], s.rows[in.A])
			if err != nil {
				return res, err
			}
			res.Copies++
			res.Latency += lat
			if erred {
				res.CopyErrors++
			}
			pc++
		case OpBNEZ:
			s.stats.Branches++
			if s.counter[in.A] > 0 {
				s.counter[in.A]--
			}
			if s.counter[in.A] != 0 {
				target := pc + 1 + int(in.B)
				if target < 0 || target >= len(prog) {
					return res, fmt.Errorf("%w: pc=%d offset=%d", ErrBranchRange, pc, in.B)
				}
				pc = target
			} else {
				pc++
			}
		default:
			return res, fmt.Errorf("%w: opcode %d", ErrBadMnemonic, in.Op)
		}
	}
}
