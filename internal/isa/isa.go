// Package isa implements the DRAM-Locker instruction set of paper Fig. 5:
// 16-bit instructions with a 2-bit opcode.
//
//	OP=01  AAP   dst, src   row copy (ACT-ACT-PRE / RowClone) between the
//	                        rows named by two 7-bit micro-registers
//	OP=10  BNEZ  reg, off   decrement-and-branch-if-not-zero loop control
//	OP=11  DONE             terminate the program
//	OP=00  NOP              reserved / padding
//
// Layout (bit 15 is the MSB):
//
//	[15:14] opcode
//	[13:7]  operand A (AAP: dst µReg, BNEZ: counter µReg)
//	[6:0]   operand B (AAP: src µReg, BNEZ: signed 7-bit branch offset)
//
// The memory controller loads row addresses into micro-registers, then runs
// a small program (e.g. the three-copy SWAP) on the sequencer. The package
// provides the encoder/decoder, a text assembler/disassembler, and program
// builders for the canonical SWAP sequence.
package isa

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Opcode is the 2-bit operation field.
type Opcode uint8

// Instruction opcodes (Fig. 5).
const (
	OpNOP  Opcode = 0b00
	OpAAP  Opcode = 0b01 // row copy via back-to-back activates
	OpBNEZ Opcode = 0b10
	OpDONE Opcode = 0b11
)

// String returns the assembler mnemonic.
func (o Opcode) String() string {
	switch o {
	case OpNOP:
		return "NOP"
	case OpAAP:
		return "AAP"
	case OpBNEZ:
		return "BNEZ"
	case OpDONE:
		return "DONE"
	default:
		return fmt.Sprintf("OP(%d)", uint8(o))
	}
}

// NumMicroRegs is the micro-register file size (7-bit operand fields).
const NumMicroRegs = 128

// Instruction is one decoded 16-bit DRAM-Locker instruction.
type Instruction struct {
	Op Opcode
	// A is the first operand: AAP destination µReg, or BNEZ counter µReg.
	A uint8
	// B is the second operand: AAP source µReg, or BNEZ branch offset
	// (signed, in instructions, relative to the next instruction).
	B int8
}

// Errors returned by encoding and decoding.
var (
	ErrBadRegister = errors.New("isa: micro-register out of range")
	ErrBadOffset   = errors.New("isa: branch offset out of 7-bit range")
	ErrBadMnemonic = errors.New("isa: unknown mnemonic")
	ErrBadOperands = errors.New("isa: wrong operands")
)

// Copy builds an AAP row-copy instruction dst <- src.
func Copy(dst, src uint8) Instruction { return Instruction{Op: OpAAP, A: dst, B: int8(src)} }

// Bnez builds a decrement-and-branch instruction on µReg reg.
func Bnez(reg uint8, offset int8) Instruction {
	return Instruction{Op: OpBNEZ, A: reg, B: offset}
}

// Done builds the terminator instruction.
func Done() Instruction { return Instruction{Op: OpDONE} }

// Nop builds a no-op.
func Nop() Instruction { return Instruction{Op: OpNOP} }

// Encode packs the instruction into its 16-bit wire format.
func (in Instruction) Encode() (uint16, error) {
	if in.A >= NumMicroRegs {
		return 0, fmt.Errorf("%w: A=%d", ErrBadRegister, in.A)
	}
	var b uint8
	switch in.Op {
	case OpAAP:
		if uint8(in.B) >= NumMicroRegs {
			return 0, fmt.Errorf("%w: B=%d", ErrBadRegister, uint8(in.B))
		}
		b = uint8(in.B)
	case OpBNEZ:
		if in.B < -64 || in.B > 63 {
			return 0, fmt.Errorf("%w: %d", ErrBadOffset, in.B)
		}
		b = uint8(in.B) & 0x7f
	case OpNOP, OpDONE:
		b = 0
	default:
		return 0, fmt.Errorf("%w: %d", ErrBadMnemonic, in.Op)
	}
	word := uint16(in.Op)<<14 | uint16(in.A&0x7f)<<7 | uint16(b)
	return word, nil
}

// Decode unpacks a 16-bit word into an Instruction.
func Decode(word uint16) Instruction {
	op := Opcode(word >> 14)
	a := uint8(word>>7) & 0x7f
	braw := uint8(word) & 0x7f
	in := Instruction{Op: op, A: a}
	switch op {
	case OpBNEZ:
		// Sign-extend the 7-bit offset.
		if braw&0x40 != 0 {
			in.B = int8(braw | 0x80)
		} else {
			in.B = int8(braw)
		}
	case OpAAP:
		in.B = int8(braw)
	}
	return in
}

// String renders the instruction in assembler syntax.
func (in Instruction) String() string {
	switch in.Op {
	case OpAAP:
		return fmt.Sprintf("AAP R%d R%d", in.A, uint8(in.B))
	case OpBNEZ:
		return fmt.Sprintf("BNEZ R%d %d", in.A, in.B)
	case OpDONE:
		return "DONE"
	case OpNOP:
		return "NOP"
	default:
		return fmt.Sprintf("OP(%d) %d %d", uint8(in.Op), in.A, in.B)
	}
}

// Assemble parses a program in assembler syntax, one instruction per line.
// Blank lines and ";"-comments are ignored. Registers are written R0..R127.
func Assemble(src string) ([]Instruction, error) {
	var prog []Instruction
	for lineNo, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		in, err := assembleLine(fields)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		prog = append(prog, in)
	}
	return prog, nil
}

func assembleLine(fields []string) (Instruction, error) {
	mnem := strings.ToUpper(fields[0])
	switch mnem {
	case "AAP":
		if len(fields) != 3 {
			return Instruction{}, fmt.Errorf("%w: AAP needs 2 registers", ErrBadOperands)
		}
		dst, err := parseReg(fields[1])
		if err != nil {
			return Instruction{}, err
		}
		src, err := parseReg(fields[2])
		if err != nil {
			return Instruction{}, err
		}
		return Copy(dst, src), nil
	case "BNEZ":
		if len(fields) != 3 {
			return Instruction{}, fmt.Errorf("%w: BNEZ needs register and offset", ErrBadOperands)
		}
		reg, err := parseReg(fields[1])
		if err != nil {
			return Instruction{}, err
		}
		off, err := strconv.Atoi(fields[2])
		if err != nil || off < -64 || off > 63 {
			return Instruction{}, fmt.Errorf("%w: %q", ErrBadOffset, fields[2])
		}
		return Bnez(reg, int8(off)), nil
	case "DONE":
		if len(fields) != 1 {
			return Instruction{}, fmt.Errorf("%w: DONE takes no operands", ErrBadOperands)
		}
		return Done(), nil
	case "NOP":
		if len(fields) != 1 {
			return Instruction{}, fmt.Errorf("%w: NOP takes no operands", ErrBadOperands)
		}
		return Nop(), nil
	default:
		return Instruction{}, fmt.Errorf("%w: %q", ErrBadMnemonic, fields[0])
	}
}

func parseReg(s string) (uint8, error) {
	if len(s) < 2 || (s[0] != 'R' && s[0] != 'r') {
		return 0, fmt.Errorf("%w: %q", ErrBadRegister, s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumMicroRegs {
		return 0, fmt.Errorf("%w: %q", ErrBadRegister, s)
	}
	return uint8(n), nil
}

// Disassemble renders a program back to assembler text.
func Disassemble(prog []Instruction) string {
	var b strings.Builder
	for i, in := range prog {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(in.String())
	}
	return b.String()
}

// EncodeProgram encodes a whole program to wire words.
func EncodeProgram(prog []Instruction) ([]uint16, error) {
	out := make([]uint16, len(prog))
	for i, in := range prog {
		w, err := in.Encode()
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d (%v): %w", i, in, err)
		}
		out[i] = w
	}
	return out, nil
}

// DecodeProgram decodes wire words to instructions.
func DecodeProgram(words []uint16) []Instruction {
	out := make([]Instruction, len(words))
	for i, w := range words {
		out[i] = Decode(w)
	}
	return out
}

// Canonical micro-register assignments used by the controller's built-in
// programs. The controller loads row addresses into these before running.
const (
	RegLocked   uint8 = 0 // the locked row being pulled out
	RegUnlocked uint8 = 1 // the free row receiving the data
	RegBuffer   uint8 = 2 // the reserved buffer row
	RegCounter  uint8 = 3 // loop counter for repeated sequences
)

// SwapProgram returns the canonical three-copy SWAP of paper Fig. 4(b):
//
//	AAP Rbuffer  Rlocked    ; step 1: locked -> buffer
//	AAP Rlocked  Runlocked  ; step 2: unlocked -> locked
//	AAP Runlocked Rbuffer   ; step 3: buffer -> unlocked
//	DONE
func SwapProgram() []Instruction {
	return []Instruction{
		Copy(RegBuffer, RegLocked),
		Copy(RegLocked, RegUnlocked),
		Copy(RegUnlocked, RegBuffer),
		Done(),
	}
}

// RepeatedSwapProgram returns a SWAP wrapped in a BNEZ loop. The sequencer
// must preload RegCounter with the desired iteration count; the loop body
// runs once per count (used for stress and ablation benches).
func RepeatedSwapProgram() []Instruction {
	return []Instruction{
		Copy(RegBuffer, RegLocked),
		Copy(RegLocked, RegUnlocked),
		Copy(RegUnlocked, RegBuffer),
		Bnez(RegCounter, -4),
		Done(),
	}
}
