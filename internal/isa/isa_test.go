package isa

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/rowclone"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	// Property: every valid instruction survives the 16-bit wire format.
	f := func(op uint8, a uint8, b int8) bool {
		in := Instruction{Op: Opcode(op % 4), A: a % NumMicroRegs}
		switch in.Op {
		case OpAAP:
			in.B = int8(uint8(b) % NumMicroRegs)
		case OpBNEZ:
			v := int8(b)
			if v < -64 {
				v = -64
			}
			if v > 63 {
				v = 63
			}
			in.B = v
		}
		w, err := in.Encode()
		if err != nil {
			return false
		}
		return Decode(w) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsBadOperands(t *testing.T) {
	if _, err := (Instruction{Op: OpAAP, A: 200}).Encode(); !errors.Is(err, ErrBadRegister) {
		t.Fatal("A >= 128 must be rejected")
	}
	if _, err := Copy(1, 200).Encode(); !errors.Is(err, ErrBadRegister) {
		t.Fatal("src >= 128 must be rejected")
	}
	if _, err := Bnez(1, -65).Encode(); !errors.Is(err, ErrBadOffset) {
		t.Fatal("offset < -64 must be rejected")
	}
}

func TestBnezNegativeOffsetSignExtension(t *testing.T) {
	in := Bnez(3, -4)
	w, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out := Decode(w)
	if out.B != -4 {
		t.Fatalf("decoded offset %d, want -4", out.B)
	}
}

func TestOpcodeBitsMatchFig5(t *testing.T) {
	// Fig. 5: OP=01 row copy, OP=10 bnez, OP=11 done.
	w, _ := Copy(0, 0).Encode()
	if w>>14 != 0b01 {
		t.Fatalf("AAP opcode bits = %02b, want 01", w>>14)
	}
	w, _ = Bnez(0, 0).Encode()
	if w>>14 != 0b10 {
		t.Fatalf("BNEZ opcode bits = %02b, want 10", w>>14)
	}
	w, _ = Done().Encode()
	if w>>14 != 0b11 {
		t.Fatalf("DONE opcode bits = %02b, want 11", w>>14)
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	src := "AAP R2 R0\nAAP R0 R1\nBNEZ R3 -2\nNOP\nDONE"
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if Disassemble(prog) != src {
		t.Fatalf("round trip:\n%s\nvs\n%s", Disassemble(prog), src)
	}
}

func TestAssembleCommentsAndBlankLines(t *testing.T) {
	prog, err := Assemble("; full comment line\n\n  AAP R1 R2  ; inline\n\nDONE\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 2 || prog[0].Op != OpAAP || prog[1].Op != OpDONE {
		t.Fatalf("prog = %v", prog)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"FROB R1 R2",
		"AAP R1",
		"AAP R1 R200",
		"BNEZ R1 99",
		"DONE R1",
		"AAP X1 R2",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestSwapProgramIsPaperSequence(t *testing.T) {
	prog := SwapProgram()
	want := []Instruction{
		Copy(RegBuffer, RegLocked),
		Copy(RegLocked, RegUnlocked),
		Copy(RegUnlocked, RegBuffer),
		Done(),
	}
	if len(prog) != len(want) {
		t.Fatalf("len = %d", len(prog))
	}
	for i := range want {
		if prog[i] != want[i] {
			t.Fatalf("step %d = %v, want %v", i, prog[i], want[i])
		}
	}
}

func newSeq(t *testing.T) (*dram.Device, *Sequencer) {
	t.Helper()
	dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	if err != nil {
		t.Fatal(err)
	}
	clone, err := rowclone.New(dev, rowclone.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return dev, NewSequencer(clone)
}

func TestSequencerRunsSwap(t *testing.T) {
	dev, seq := newSeq(t)
	locked := dram.RowAddr{Bank: 0, Row: 5}
	unlocked := dram.RowAddr{Bank: 0, Row: 9}
	buffer := dram.RowAddr{Bank: 0, Row: 62}
	dev.PokeRow(locked, []byte("L"))
	dev.PokeRow(unlocked, []byte("U"))
	seq.BindRow(RegLocked, locked)
	seq.BindRow(RegUnlocked, unlocked)
	seq.BindRow(RegBuffer, buffer)
	res, err := seq.Run(SwapProgram())
	if err != nil {
		t.Fatal(err)
	}
	if res.Copies != 3 || res.Steps != 4 {
		t.Fatalf("res = %+v", res)
	}
	a, _ := dev.PeekRow(locked)
	b, _ := dev.PeekRow(unlocked)
	if a[0] != 'U' || b[0] != 'L' {
		t.Fatalf("swap failed: %c %c", a[0], b[0])
	}
}

func TestSequencerBnezLoopCount(t *testing.T) {
	dev, seq := newSeq(t)
	src := dram.RowAddr{Bank: 0, Row: 2}
	dst := dram.RowAddr{Bank: 0, Row: 4}
	dev.PokeRow(src, []byte("X"))
	seq.BindRow(10, dst)
	seq.BindRow(11, src)
	seq.BindCounter(RegCounter, 5)
	prog := []Instruction{
		Copy(10, 11),
		Bnez(RegCounter, -2),
		Done(),
	}
	res, err := seq.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Counter 5: copies run 5 times (loop body re-entered while counter
	// decrements to zero).
	if res.Copies != 5 {
		t.Fatalf("copies = %d, want 5", res.Copies)
	}
	if seq.Counter(RegCounter) != 0 {
		t.Fatalf("counter = %d, want 0", seq.Counter(RegCounter))
	}
}

func TestSequencerUnboundRegisterFails(t *testing.T) {
	_, seq := newSeq(t)
	_, err := seq.Run([]Instruction{Copy(1, 2), Done()})
	if !errors.Is(err, ErrUnboundReg) {
		t.Fatalf("err = %v, want ErrUnboundReg", err)
	}
}

func TestSequencerNoTerminator(t *testing.T) {
	dev, seq := newSeq(t)
	dev.PokeRow(dram.RowAddr{Bank: 0, Row: 2}, []byte("X"))
	seq.BindRow(0, dram.RowAddr{Bank: 0, Row: 2})
	seq.BindRow(1, dram.RowAddr{Bank: 0, Row: 4})
	_, err := seq.Run([]Instruction{Copy(1, 0)})
	if !errors.Is(err, ErrNoTerminator) {
		t.Fatalf("err = %v, want ErrNoTerminator", err)
	}
}

func TestSequencerRunawayLoopBounded(t *testing.T) {
	_, seq := newSeq(t)
	seq.MaxSteps = 100
	seq.BindCounter(3, 1<<40) // effectively infinite
	prog := []Instruction{
		Nop(),
		Bnez(3, -2),
		Done(),
	}
	_, err := seq.Run(prog)
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
}

func TestSequencerBranchOutOfRange(t *testing.T) {
	_, seq := newSeq(t)
	seq.BindCounter(3, 5)
	_, err := seq.Run([]Instruction{Bnez(3, -10), Done()})
	if !errors.Is(err, ErrBranchRange) {
		t.Fatalf("err = %v, want ErrBranchRange", err)
	}
}

func TestEncodeProgramDecodeProgram(t *testing.T) {
	prog := SwapProgram()
	words, err := EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	back := DecodeProgram(words)
	for i := range prog {
		if back[i] != prog[i] {
			t.Fatalf("instruction %d: %v != %v", i, back[i], prog[i])
		}
	}
}

func TestInstructionStrings(t *testing.T) {
	if s := Copy(2, 0).String(); !strings.Contains(s, "AAP R2 R0") {
		t.Fatalf("String = %q", s)
	}
	if s := Bnez(3, -2).String(); !strings.Contains(s, "BNEZ R3 -2") {
		t.Fatalf("String = %q", s)
	}
}
