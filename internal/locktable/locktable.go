// Package locktable implements the DRAM-Locker lock-table: a small SRAM
// structure at the memory controller recording the physical row addresses
// that must not be activated (paper §IV-A/B).
//
// Unlike the count-tables of counter-based RowHammer trackers, the
// lock-table stores no activation counters — only row addresses plus a
// small re-lock countdown — which is where the paper's 56KB SRAM / 0.02%
// area overhead comes from (Table I).
package locktable

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dram"
)

// Errors returned by table operations.
var (
	ErrFull      = errors.New("locktable: table full")
	ErrNotLocked = errors.New("locktable: row is not locked")
	ErrLocked    = errors.New("locktable: row already locked")
)

// EntryBytes is the SRAM cost of one lock-table entry: a 32-bit physical
// row address, a 16-bit re-lock countdown and a valid/state byte.
const EntryBytes = 7

// Entry is one lock-table record.
type Entry struct {
	Row dram.RowAddr
	// Pending indicates the row was unlocked by a SWAP and will re-lock
	// when Countdown reaches zero.
	Pending bool
	// Countdown is the number of R/W instructions remaining until re-lock
	// when Pending.
	Countdown int
}

// Config sizes the table.
type Config struct {
	// CapacityEntries bounds the number of simultaneously tracked rows.
	// The paper's 56KB SRAM at 7B/entry is 8192 entries.
	CapacityEntries int
}

// DefaultConfig returns the paper's 56KB SRAM sizing.
func DefaultConfig() Config { return Config{CapacityEntries: 56 * 1024 / EntryBytes} }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.CapacityEntries <= 0 {
		return fmt.Errorf("locktable: CapacityEntries must be positive, got %d", c.CapacityEntries)
	}
	return nil
}

// Stats aggregates table activity.
type Stats struct {
	Lookups     int64
	Hits        int64
	Locks       int64
	Unlocks     int64
	Relocks     int64
	MaxOccupied int
}

// Table is the lock-table. It is a plain associative map bounded by
// capacity; a hardware implementation would be a set-associative SRAM, but
// lookup semantics are identical.
type Table struct {
	cfg     Config
	entries map[int]*Entry // geometry linear index -> entry
	geom    dram.Geometry
	stats   Stats
}

// New creates an empty table for rows of the given geometry.
func New(geom dram.Geometry, cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Table{cfg: cfg, entries: make(map[int]*Entry), geom: geom}, nil
}

// Capacity returns the configured entry capacity.
func (t *Table) Capacity() int { return t.cfg.CapacityEntries }

// Len returns the number of occupied entries.
func (t *Table) Len() int { return len(t.entries) }

// SRAMBytes returns the SRAM footprint of the configured capacity.
func (t *Table) SRAMBytes() int { return t.cfg.CapacityEntries * EntryBytes }

// Stats returns a copy of the activity counters.
func (t *Table) Stats() Stats { return t.stats }

// Lock inserts a row into the table in the locked state.
func (t *Table) Lock(row dram.RowAddr) error {
	if !t.geom.Valid(row) {
		return fmt.Errorf("locktable: invalid row %v", row)
	}
	idx := t.geom.LinearIndex(row)
	if e, ok := t.entries[idx]; ok {
		if !e.Pending {
			return fmt.Errorf("%w: %v", ErrLocked, row)
		}
		// Re-arming a pending entry locks it immediately.
		e.Pending = false
		e.Countdown = 0
		t.stats.Locks++
		return nil
	}
	if len(t.entries) >= t.cfg.CapacityEntries {
		return fmt.Errorf("%w: capacity %d", ErrFull, t.cfg.CapacityEntries)
	}
	t.entries[idx] = &Entry{Row: row}
	t.stats.Locks++
	if len(t.entries) > t.stats.MaxOccupied {
		t.stats.MaxOccupied = len(t.entries)
	}
	return nil
}

// IsLocked reports whether a row is currently locked (present and not
// pending re-lock). Every call models one SRAM lookup.
func (t *Table) IsLocked(row dram.RowAddr) bool {
	t.stats.Lookups++
	e, ok := t.entries[t.geom.LinearIndex(row)]
	if ok && !e.Pending {
		t.stats.Hits++
		return true
	}
	return false
}

// Contains reports whether the row has any entry, locked or pending.
func (t *Table) Contains(row dram.RowAddr) bool {
	_, ok := t.entries[t.geom.LinearIndex(row)]
	return ok
}

// Unlock transitions a locked row to the pending state with the given
// re-lock countdown (the paper re-locks after 1k R/W instructions).
func (t *Table) Unlock(row dram.RowAddr, countdown int) error {
	e, ok := t.entries[t.geom.LinearIndex(row)]
	if !ok || e.Pending {
		return fmt.Errorf("%w: %v", ErrNotLocked, row)
	}
	e.Pending = true
	e.Countdown = countdown
	t.stats.Unlocks++
	return nil
}

// Remove deletes a row's entry entirely.
func (t *Table) Remove(row dram.RowAddr) error {
	idx := t.geom.LinearIndex(row)
	if _, ok := t.entries[idx]; !ok {
		return fmt.Errorf("%w: %v", ErrNotLocked, row)
	}
	delete(t.entries, idx)
	return nil
}

// Retarget atomically moves an entry from one row to another, preserving
// state. Used after a SWAP when the protected data now lives elsewhere
// (paper Fig. 4(d): the lock-table is updated to the row that holds the
// data).
func (t *Table) Retarget(from, to dram.RowAddr) error {
	if !t.geom.Valid(to) {
		return fmt.Errorf("locktable: invalid row %v", to)
	}
	fromIdx := t.geom.LinearIndex(from)
	e, ok := t.entries[fromIdx]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotLocked, from)
	}
	toIdx := t.geom.LinearIndex(to)
	if _, exists := t.entries[toIdx]; exists {
		return fmt.Errorf("%w: %v", ErrLocked, to)
	}
	delete(t.entries, fromIdx)
	e.Row = to
	t.entries[toIdx] = e
	return nil
}

// TickRW advances every pending countdown by one R/W instruction and
// re-locks entries whose countdown expires. It returns the rows that
// re-locked on this tick.
func (t *Table) TickRW() []dram.RowAddr {
	var relocked []dram.RowAddr
	for _, e := range t.entries {
		if !e.Pending {
			continue
		}
		e.Countdown--
		if e.Countdown <= 0 {
			e.Pending = false
			e.Countdown = 0
			t.stats.Relocks++
			relocked = append(relocked, e.Row)
		}
	}
	sort.Slice(relocked, func(i, j int) bool {
		return t.geom.LinearIndex(relocked[i]) < t.geom.LinearIndex(relocked[j])
	})
	return relocked
}

// LockedRows returns all currently locked (non-pending) rows in
// deterministic order.
func (t *Table) LockedRows() []dram.RowAddr {
	var out []dram.RowAddr
	for _, e := range t.entries {
		if !e.Pending {
			out = append(out, e.Row)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return t.geom.LinearIndex(out[i]) < t.geom.LinearIndex(out[j])
	})
	return out
}

// PendingRows returns all pending (unlocked awaiting re-lock) rows.
func (t *Table) PendingRows() []dram.RowAddr {
	var out []dram.RowAddr
	for _, e := range t.entries {
		if e.Pending {
			out = append(out, e.Row)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return t.geom.LinearIndex(out[i]) < t.geom.LinearIndex(out[j])
	})
	return out
}
