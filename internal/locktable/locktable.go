// Package locktable implements the DRAM-Locker lock-table: a small SRAM
// structure at the memory controller recording the physical row addresses
// that must not be activated (paper §IV-A/B).
//
// Unlike the count-tables of counter-based RowHammer trackers, the
// lock-table stores no activation counters — only row addresses plus a
// small re-lock countdown — which is where the paper's 56KB SRAM / 0.02%
// area overhead comes from (Table I).
//
// The simulator keeps the occupied entries in a compact slice plus a
// dense per-row slot index (Geometry.LinearIndex -> entry), so the lookup
// on every memory request is one array access instead of a map probe and
// countdown ticks touch only occupied entries. The slot index costs 4
// bytes per geometry row, allocated once at construction.
package locktable

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dram"
)

// Errors returned by table operations.
var (
	ErrFull      = errors.New("locktable: table full")
	ErrNotLocked = errors.New("locktable: row is not locked")
	ErrLocked    = errors.New("locktable: row already locked")
)

// EntryBytes is the SRAM cost of one lock-table entry: a 32-bit physical
// row address, a 16-bit re-lock countdown and a valid/state byte.
const EntryBytes = 7

// Entry is one lock-table record.
type Entry struct {
	Row dram.RowAddr
	// Pending indicates the row was unlocked by a SWAP and will re-lock
	// when Countdown reaches zero.
	Pending bool
	// Countdown is the number of R/W instructions remaining until re-lock
	// when Pending.
	Countdown int
}

// Config sizes the table.
type Config struct {
	// CapacityEntries bounds the number of simultaneously tracked rows.
	// The paper's 56KB SRAM at 7B/entry is 8192 entries.
	CapacityEntries int
}

// DefaultConfig returns the paper's 56KB SRAM sizing.
func DefaultConfig() Config { return Config{CapacityEntries: 56 * 1024 / EntryBytes} }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.CapacityEntries <= 0 {
		return fmt.Errorf("locktable: CapacityEntries must be positive, got %d", c.CapacityEntries)
	}
	return nil
}

// Stats aggregates table activity.
type Stats struct {
	Lookups     int64
	Hits        int64
	Locks       int64
	Unlocks     int64
	Relocks     int64
	MaxOccupied int
}

// Table is the lock-table. Lookup semantics are identical to the paper's
// set-associative SRAM; occupancy is bounded by the configured capacity.
type Table struct {
	cfg  Config
	geom dram.Geometry
	// slot maps a geometry linear row index to its position in entries,
	// -1 when the row has no entry.
	slot []int32
	// entries holds the occupied records compactly (swap-removal keeps it
	// gap-free; order is not meaningful).
	entries []Entry
	stats   Stats
}

// New creates an empty table for rows of the given geometry.
func New(geom dram.Geometry, cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{cfg: cfg, geom: geom, slot: make([]int32, geom.TotalRows())}
	for i := range t.slot {
		t.slot[i] = -1
	}
	return t, nil
}

// Capacity returns the configured entry capacity.
func (t *Table) Capacity() int { return t.cfg.CapacityEntries }

// Len returns the number of occupied entries.
func (t *Table) Len() int { return len(t.entries) }

// SRAMBytes returns the SRAM footprint of the configured capacity.
func (t *Table) SRAMBytes() int { return t.cfg.CapacityEntries * EntryBytes }

// Stats returns a copy of the activity counters.
func (t *Table) Stats() Stats { return t.stats }

// entryOf returns the entry for a row, or nil. Rows outside the geometry
// have no entry by definition.
func (t *Table) entryOf(row dram.RowAddr) *Entry {
	if !t.geom.Valid(row) {
		return nil
	}
	si := t.slot[t.geom.LinearIndex(row)]
	if si < 0 {
		return nil
	}
	return &t.entries[si]
}

// Lock inserts a row into the table in the locked state.
func (t *Table) Lock(row dram.RowAddr) error {
	if !t.geom.Valid(row) {
		return fmt.Errorf("locktable: invalid row %v", row)
	}
	idx := t.geom.LinearIndex(row)
	if si := t.slot[idx]; si >= 0 {
		e := &t.entries[si]
		if !e.Pending {
			return fmt.Errorf("%w: %v", ErrLocked, row)
		}
		// Re-arming a pending entry locks it immediately.
		e.Pending = false
		e.Countdown = 0
		t.stats.Locks++
		return nil
	}
	if len(t.entries) >= t.cfg.CapacityEntries {
		return fmt.Errorf("%w: capacity %d", ErrFull, t.cfg.CapacityEntries)
	}
	t.entries = append(t.entries, Entry{Row: row})
	t.slot[idx] = int32(len(t.entries) - 1)
	t.stats.Locks++
	if len(t.entries) > t.stats.MaxOccupied {
		t.stats.MaxOccupied = len(t.entries)
	}
	return nil
}

// IsLocked reports whether a row is currently locked (present and not
// pending re-lock). Every call models one SRAM lookup.
func (t *Table) IsLocked(row dram.RowAddr) bool {
	t.stats.Lookups++
	if e := t.entryOf(row); e != nil && !e.Pending {
		t.stats.Hits++
		return true
	}
	return false
}

// Contains reports whether the row has any entry, locked or pending.
func (t *Table) Contains(row dram.RowAddr) bool {
	return t.entryOf(row) != nil
}

// Unlock transitions a locked row to the pending state with the given
// re-lock countdown (the paper re-locks after 1k R/W instructions).
func (t *Table) Unlock(row dram.RowAddr, countdown int) error {
	e := t.entryOf(row)
	if e == nil || e.Pending {
		return fmt.Errorf("%w: %v", ErrNotLocked, row)
	}
	e.Pending = true
	e.Countdown = countdown
	t.stats.Unlocks++
	return nil
}

// Remove deletes a row's entry entirely.
func (t *Table) Remove(row dram.RowAddr) error {
	if !t.geom.Valid(row) {
		return fmt.Errorf("%w: %v", ErrNotLocked, row)
	}
	idx := t.geom.LinearIndex(row)
	si := t.slot[idx]
	if si < 0 {
		return fmt.Errorf("%w: %v", ErrNotLocked, row)
	}
	last := len(t.entries) - 1
	if int(si) != last {
		t.entries[si] = t.entries[last]
		t.slot[t.geom.LinearIndex(t.entries[si].Row)] = si
	}
	t.entries = t.entries[:last]
	t.slot[idx] = -1
	return nil
}

// Retarget atomically moves an entry from one row to another, preserving
// state. Used after a SWAP when the protected data now lives elsewhere
// (paper Fig. 4(d): the lock-table is updated to the row that holds the
// data).
func (t *Table) Retarget(from, to dram.RowAddr) error {
	if !t.geom.Valid(to) {
		return fmt.Errorf("locktable: invalid row %v", to)
	}
	if !t.geom.Valid(from) {
		return fmt.Errorf("%w: %v", ErrNotLocked, from)
	}
	fromIdx := t.geom.LinearIndex(from)
	si := t.slot[fromIdx]
	if si < 0 {
		return fmt.Errorf("%w: %v", ErrNotLocked, from)
	}
	toIdx := t.geom.LinearIndex(to)
	if t.slot[toIdx] >= 0 {
		return fmt.Errorf("%w: %v", ErrLocked, to)
	}
	t.slot[fromIdx] = -1
	t.entries[si].Row = to
	t.slot[toIdx] = si
	return nil
}

// TickRW advances every pending countdown by one R/W instruction and
// re-locks entries whose countdown expires. It returns the rows that
// re-locked on this tick.
func (t *Table) TickRW() []dram.RowAddr {
	var relocked []dram.RowAddr
	for i := range t.entries {
		e := &t.entries[i]
		if !e.Pending {
			continue
		}
		e.Countdown--
		if e.Countdown <= 0 {
			e.Pending = false
			e.Countdown = 0
			t.stats.Relocks++
			relocked = append(relocked, e.Row)
		}
	}
	sort.Slice(relocked, func(i, j int) bool {
		return t.geom.LinearIndex(relocked[i]) < t.geom.LinearIndex(relocked[j])
	})
	return relocked
}

// LockedRows returns all currently locked (non-pending) rows in
// deterministic order.
func (t *Table) LockedRows() []dram.RowAddr {
	var out []dram.RowAddr
	for i := range t.entries {
		if !t.entries[i].Pending {
			out = append(out, t.entries[i].Row)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return t.geom.LinearIndex(out[i]) < t.geom.LinearIndex(out[j])
	})
	return out
}

// PendingRows returns all pending (unlocked awaiting re-lock) rows.
func (t *Table) PendingRows() []dram.RowAddr {
	var out []dram.RowAddr
	for i := range t.entries {
		if t.entries[i].Pending {
			out = append(out, t.entries[i].Row)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return t.geom.LinearIndex(out[i]) < t.geom.LinearIndex(out[j])
	})
	return out
}
