package locktable

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/stats"
)

func newTable(t *testing.T, capacity int) *Table {
	t.Helper()
	tab, err := New(dram.SmallGeometry(), Config{CapacityEntries: capacity})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestLockLookupUnlockLifecycle(t *testing.T) {
	tab := newTable(t, 16)
	row := dram.RowAddr{Bank: 0, Row: 5}
	if tab.IsLocked(row) {
		t.Fatal("row locked before Lock")
	}
	if err := tab.Lock(row); err != nil {
		t.Fatal(err)
	}
	if !tab.IsLocked(row) {
		t.Fatal("row not locked after Lock")
	}
	if err := tab.Lock(row); !errors.Is(err, ErrLocked) {
		t.Fatalf("double lock err = %v", err)
	}
	if err := tab.Unlock(row, 3); err != nil {
		t.Fatal(err)
	}
	if tab.IsLocked(row) {
		t.Fatal("pending row must not report locked")
	}
	if !tab.Contains(row) {
		t.Fatal("pending row must still have an entry")
	}
}

func TestRelockAfterCountdown(t *testing.T) {
	tab := newTable(t, 16)
	row := dram.RowAddr{Bank: 0, Row: 5}
	tab.Lock(row)
	tab.Unlock(row, 3)
	for i := 0; i < 2; i++ {
		if relocked := tab.TickRW(); len(relocked) != 0 {
			t.Fatalf("tick %d relocked %v too early", i, relocked)
		}
	}
	relocked := tab.TickRW()
	if len(relocked) != 1 || relocked[0] != row {
		t.Fatalf("relocked = %v, want [%v]", relocked, row)
	}
	if !tab.IsLocked(row) {
		t.Fatal("row must be locked after countdown expiry")
	}
	if tab.Stats().Relocks != 1 {
		t.Fatalf("relock stat = %d", tab.Stats().Relocks)
	}
}

func TestLockWhilePendingReArmsImmediately(t *testing.T) {
	tab := newTable(t, 16)
	row := dram.RowAddr{Bank: 0, Row: 5}
	tab.Lock(row)
	tab.Unlock(row, 100)
	if err := tab.Lock(row); err != nil {
		t.Fatal(err)
	}
	if !tab.IsLocked(row) {
		t.Fatal("re-armed entry must be locked")
	}
}

func TestCapacityEnforced(t *testing.T) {
	tab := newTable(t, 2)
	tab.Lock(dram.RowAddr{Bank: 0, Row: 1})
	tab.Lock(dram.RowAddr{Bank: 0, Row: 2})
	if err := tab.Lock(dram.RowAddr{Bank: 0, Row: 3}); !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	if tab.Len() != 2 {
		t.Fatalf("len = %d", tab.Len())
	}
}

func TestRemove(t *testing.T) {
	tab := newTable(t, 4)
	row := dram.RowAddr{Bank: 1, Row: 9}
	tab.Lock(row)
	if err := tab.Remove(row); err != nil {
		t.Fatal(err)
	}
	if tab.Contains(row) {
		t.Fatal("removed row still present")
	}
	if err := tab.Remove(row); !errors.Is(err, ErrNotLocked) {
		t.Fatalf("err = %v, want ErrNotLocked", err)
	}
}

func TestRetargetMovesEntry(t *testing.T) {
	tab := newTable(t, 4)
	from := dram.RowAddr{Bank: 0, Row: 1}
	to := dram.RowAddr{Bank: 0, Row: 2}
	tab.Lock(from)
	if err := tab.Retarget(from, to); err != nil {
		t.Fatal(err)
	}
	if tab.Contains(from) || !tab.IsLocked(to) {
		t.Fatal("retarget did not move the entry")
	}
	// Retarget onto an occupied row fails.
	other := dram.RowAddr{Bank: 0, Row: 3}
	tab.Lock(other)
	if err := tab.Retarget(other, to); !errors.Is(err, ErrLocked) {
		t.Fatalf("err = %v, want ErrLocked", err)
	}
}

func TestLockedAndPendingRowsSorted(t *testing.T) {
	tab := newTable(t, 8)
	rows := []dram.RowAddr{{Bank: 1, Row: 3}, {Bank: 0, Row: 7}, {Bank: 0, Row: 1}}
	for _, r := range rows {
		tab.Lock(r)
	}
	locked := tab.LockedRows()
	g := dram.SmallGeometry()
	for i := 1; i < len(locked); i++ {
		if g.LinearIndex(locked[i-1]) >= g.LinearIndex(locked[i]) {
			t.Fatalf("LockedRows not sorted: %v", locked)
		}
	}
	tab.Unlock(rows[0], 5)
	if len(tab.PendingRows()) != 1 || len(tab.LockedRows()) != 2 {
		t.Fatal("pending/locked partition wrong")
	}
}

func TestSRAMBudgetMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	tab, err := New(dram.DefaultGeometry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Table I row: 56KB of SRAM.
	if got := tab.SRAMBytes(); got > 56*1024 || got < 50*1024 {
		t.Fatalf("SRAM = %d bytes, want ~56KB", got)
	}
}

func TestStatsCounters(t *testing.T) {
	tab := newTable(t, 8)
	row := dram.RowAddr{Bank: 0, Row: 5}
	tab.Lock(row)
	tab.IsLocked(row)                           // hit
	tab.IsLocked(dram.RowAddr{Bank: 0, Row: 6}) // miss
	st := tab.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Locks != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxOccupied != 1 {
		t.Fatalf("MaxOccupied = %d", st.MaxOccupied)
	}
}

// TestModelConformance drives the table with random operations and checks
// it against a plain map reference model.
func TestModelConformance(t *testing.T) {
	type ref struct {
		locked  bool
		pending bool
	}
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		geom := dram.SmallGeometry()
		tab, err := New(geom, Config{CapacityEntries: 8})
		if err != nil {
			return false
		}
		model := make(map[int]*ref)
		countPresent := func() int { return len(model) }
		for op := 0; op < 200; op++ {
			row := dram.RowAddr{Bank: rng.Intn(geom.Banks()), Row: rng.Intn(16)}
			idx := geom.LinearIndex(row)
			switch rng.Intn(4) {
			case 0: // Lock
				err := tab.Lock(row)
				m := model[idx]
				switch {
				case m == nil && countPresent() < 8:
					if err != nil {
						return false
					}
					model[idx] = &ref{locked: true}
				case m == nil:
					if !errors.Is(err, ErrFull) {
						return false
					}
				case m.pending:
					if err != nil {
						return false
					}
					m.pending = false
					m.locked = true
				default:
					if !errors.Is(err, ErrLocked) {
						return false
					}
				}
			case 1: // Unlock
				err := tab.Unlock(row, 2)
				m := model[idx]
				if m != nil && m.locked && !m.pending {
					if err != nil {
						return false
					}
					m.locked = false
					m.pending = true
				} else if err == nil {
					return false
				}
			case 2: // IsLocked
				m := model[idx]
				want := m != nil && m.locked
				if tab.IsLocked(row) != want {
					return false
				}
			case 3: // Remove
				err := tab.Remove(row)
				if _, ok := model[idx]; ok {
					if err != nil {
						return false
					}
					delete(model, idx)
				} else if err == nil {
					return false
				}
			}
			if tab.Len() != countPresent() || tab.Len() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{CapacityEntries: 0}).Validate(); err == nil {
		t.Fatal("zero capacity must fail")
	}
	if _, err := New(dram.SmallGeometry(), Config{CapacityEntries: -1}); err == nil {
		t.Fatal("negative capacity must fail")
	}
}

func TestLockInvalidRow(t *testing.T) {
	tab := newTable(t, 4)
	if err := tab.Lock(dram.RowAddr{Bank: 99, Row: 0}); err == nil {
		t.Fatal("invalid row must be rejected")
	}
}
