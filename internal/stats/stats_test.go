package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministicPerSeed(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds overlap in %d of 100 draws", same)
	}
}

func TestFloat64InUnitInterval(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g outside [0,1)", v)
		}
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestBernoulliEdgesAndRate(t *testing.T) {
	r := NewRNG(9)
	if r.Bernoulli(0) || !r.Bernoulli(1) {
		t.Fatal("edge probabilities wrong")
	}
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.25) > 0.02 {
		t.Fatalf("Bernoulli(0.25) rate = %.3f", rate)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(10)
	const n = 50000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Normal(3, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("mean = %.3f, want 3", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Fatalf("std = %.3f, want 2", std)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	a := NewRNG(11)
	child := a.Fork()
	if child.Uint64() == a.Uint64() {
		t.Fatal("fork should diverge from parent")
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || m != 5 {
		t.Fatalf("mean = %g err=%v", m, err)
	}
	v, _ := Variance(xs)
	if v != 4 {
		t.Fatalf("variance = %g, want 4", v)
	}
	s, _ := StdDev(xs)
	if s != 2 {
		t.Fatalf("stddev = %g, want 2", s)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty mean must error")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	} {
		got, err := Percentile(xs, tc.p)
		if err != nil || got != tc.want {
			t.Fatalf("p%.0f = %g, want %g (err %v)", tc.p, got, tc.want, err)
		}
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("out-of-range percentile must error")
	}
	// Property: percentile stays within [min, max] and is monotone in p.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		xs := make([]float64, 17)
		for i := range xs {
			xs[i] = r.Normal(0, 10)
		}
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		prev := lo
		for p := 0.0; p <= 100; p += 10 {
			v, err := Percentile(xs, p)
			if err != nil || v < lo || v > hi || v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	if mn != -1 || mx != 7 {
		t.Fatalf("min/max = %g/%g", mn, mx)
	}
	if _, err := Max(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty max must error")
	}
}

func TestBinomialTail(t *testing.T) {
	// P(X >= 1) for n=2, p=0.5 is 0.75.
	if got := BinomialTail(2, 0.5, 1); math.Abs(got-0.75) > 1e-6 {
		t.Fatalf("tail = %g, want 0.75", got)
	}
	if BinomialTail(10, 0.3, 0) != 1 {
		t.Fatal("k=0 tail must be 1")
	}
	if BinomialTail(10, 0.3, 11) != 0 {
		t.Fatal("k>n tail must be 0")
	}
	if BinomialTail(10, 0, 1) != 0 || BinomialTail(10, 1, 10) != 1 {
		t.Fatal("degenerate p handling wrong")
	}
	// Monotone decreasing in k.
	prev := 1.0
	for k := 0; k <= 20; k++ {
		v := BinomialTail(20, 0.4, k)
		if v > prev+1e-12 {
			t.Fatalf("tail not monotone at k=%d", k)
		}
		prev = v
	}
}

func TestHistogram(t *testing.T) {
	// Bins: [0, 0.5) and [0.5, 1]. 0.1, 0.2 and clamped -5 land low;
	// 0.5, 0.9 and clamped 99 land high.
	xs := []float64{0.1, 0.2, 0.5, 0.9, -5, 99}
	h := Histogram(xs, 0, 1, 2)
	if h[0] != 3 || h[1] != 3 {
		t.Fatalf("histogram = %v", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != len(xs) {
		t.Fatal("histogram must count every value (clamped)")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(12)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 8)
	for _, v := range xs {
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("value %d lost in shuffle", i)
		}
	}
}
