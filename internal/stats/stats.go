// Package stats provides deterministic random number generation and small
// statistics helpers used throughout the DRAM-Locker simulator.
//
// Every stochastic component in the simulator (fault injection, Monte-Carlo
// process variation, synthetic datasets, attack sampling) draws from an
// explicitly seeded RNG so that experiments are reproducible run-to-run.
package stats

import (
	"errors"
	"math"
	"sort"
)

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** by Blackman and Vigna). It is intentionally independent of
// math/rand so that stream contents are stable across Go releases.
type RNG struct {
	s [4]uint64
	// cached spare normal deviate for Box-Muller
	hasSpare bool
	spare    float64
}

// NewRNG returns an RNG seeded from a single 64-bit seed using SplitMix64
// to fill the internal state, as recommended by the xoshiro authors.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// Avoid the (astronomically unlikely) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return mean + stddev*u*m
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly shuffles the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent child RNG from this one. Forked streams are
// used to give each subsystem its own stream while staying deterministic.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }

// ErrEmpty is returned by aggregate statistics on empty inputs.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Max returns the maximum of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Min returns the minimum of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// BinomialTail returns P(X >= k) for X ~ Binomial(n, p), computed by direct
// summation in log space for numerical stability. Used by the defense-time
// model to decide when an attacker's cumulative flip probability exceeds a
// target bound.
func BinomialTail(n int, p float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > n || p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	// Sum P(X = i) for i in [k, n].
	logP := math.Log(p)
	logQ := math.Log(1 - p)
	var tail float64
	for i := k; i <= n; i++ {
		lg := logChoose(n, i) + float64(i)*logP + float64(n-i)*logQ
		tail += math.Exp(lg)
	}
	if tail > 1 {
		tail = 1
	}
	return tail
}

func logChoose(n, k int) float64 {
	return logFactorial(n) - logFactorial(k) - logFactorial(n-k)
}

func logFactorial(n int) float64 {
	if n < 2 {
		return 0
	}
	// Exact summation for small n; Stirling with correction beyond.
	if n <= 64 {
		var s float64
		for i := 2; i <= n; i++ {
			s += math.Log(float64(i))
		}
		return s
	}
	x := float64(n)
	return x*math.Log(x) - x + 0.5*math.Log(2*math.Pi*x) + 1/(12*x)
}

// Histogram bins xs into nbins equal-width bins over [lo, hi] and returns
// the counts. Values outside the range are clamped into the edge bins.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	counts := make([]int, nbins)
	if nbins == 0 || hi <= lo {
		return counts
	}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}
