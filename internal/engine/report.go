package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Result records one job's execution.
type Result struct {
	Name     string        `json:"name"`
	Title    string        `json:"title,omitempty"`
	Text     string        `json:"text,omitempty"`
	Data     any           `json:"data,omitempty"`
	Err      string        `json:"error,omitempty"`
	Seed     uint64        `json:"seed"`
	Duration time.Duration `json:"duration_ns"`
	// Cached is true when the result was replayed from the cache; the
	// Duration then is the original computation's, not the lookup's.
	Cached bool `json:"cached,omitempty"`
}

// Failed reports whether the job errored.
func (r Result) Failed() bool { return r.Err != "" }

// Report is the outcome of one Runner pass: every selected job's Result
// in registration order plus wall-clock accounting.
type Report struct {
	Workers int           `json:"workers"`
	Wall    time.Duration `json:"wall_ns"`
	Results []Result      `json:"results"`
}

// Err joins every job failure into one error (nil when all succeeded).
func (rep *Report) Err() error {
	var errs []error
	for _, r := range rep.Results {
		if r.Failed() {
			errs = append(errs, fmt.Errorf("%s: %s", r.Name, r.Err))
		}
	}
	return errors.Join(errs...)
}

// Failed counts failed jobs.
func (rep *Report) Failed() int {
	n := 0
	for _, r := range rep.Results {
		if r.Failed() {
			n++
		}
	}
	return n
}

// CachedCount counts results replayed from the cache (for sharded jobs:
// merged entirely from cached shards or replayed whole).
func (rep *Report) CachedCount() int {
	n := 0
	for _, r := range rep.Results {
		if r.Cached {
			n++
		}
	}
	return n
}

// JSON renders the report as indented JSON.
func (rep *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}

// Text renders every job section followed by a timing summary, in
// registration order — identical regardless of worker count.
func (rep *Report) Text() string {
	var b strings.Builder
	for _, r := range rep.Results {
		cached := ""
		if r.Cached {
			cached = ", cached"
		}
		fmt.Fprintf(&b, "=== %s (%v%s) ===\n", r.Name, r.Duration.Round(time.Millisecond), cached)
		if r.Failed() {
			fmt.Fprintf(&b, "ERROR: %s\n\n", r.Err)
			continue
		}
		b.WriteString(r.Text)
		if !strings.HasSuffix(r.Text, "\n") {
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%d jobs, %d failed, %d cached, %d workers, wall %v (cpu %v)\n",
		len(rep.Results), rep.Failed(), rep.CachedCount(), rep.Workers,
		rep.Wall.Round(time.Millisecond), rep.CPUTime().Round(time.Millisecond))
	return b.String()
}

// CPUTime sums per-job durations — the serial cost the worker pool
// amortised. Cached replays are excluded: their Duration records the
// original computation, which this run never paid for.
func (rep *Report) CPUTime() time.Duration {
	var total time.Duration
	for _, r := range rep.Results {
		if !r.Cached {
			total += r.Duration
		}
	}
	return total
}
