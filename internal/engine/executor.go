package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
)

// Executor runs one task — a monolithic job or a single shard — and is
// the seam between the scheduler and a transport. Implementations must be
// safe for concurrent use: the scheduler dispatches up to Options.Workers
// tasks at once.
//
// The two error channels are distinct on purpose. A non-nil Go error
// means the execution attempt itself failed (unknown job, protocol or
// cache-key mismatch, network failure) — the task may be retried
// elsewhere. A populated TaskResult.Err means the task ran and failed
// deterministically (job error or panic); retrying would reproduce it, so
// the scheduler records it as the job's outcome.
type Executor interface {
	Execute(ctx context.Context, spec api.TaskSpec) (api.TaskResult, error)
}

// ProgressFunc receives progress heartbeats during a streaming execute.
// Implementations are called from the task's goroutine and must be
// cheap; heartbeats are advisory and may be dropped.
type ProgressFunc func(api.TaskProgress)

// StreamExecutor is an Executor that can additionally report progress
// while a task runs — the seam the streaming execute transport and the
// fleet view build on. Transports probe for it with a type assertion,
// so plain Executors keep working unchanged.
type StreamExecutor interface {
	Executor
	ExecuteStream(ctx context.Context, spec api.TaskSpec, onProgress ProgressFunc) (api.TaskResult, error)
}

// LocalExecutor resolves tasks against an in-process Registry and runs
// them on the calling goroutine. It is the default executor of Run and
// the execution core the remote worker daemon wraps.
type LocalExecutor struct {
	reg *Registry
	// name stamps TaskResult.Worker (diagnostics); empty means local.
	name string
}

// NewLocalExecutor returns an executor over reg.
func NewLocalExecutor(reg *Registry) *LocalExecutor {
	return &LocalExecutor{reg: reg}
}

// NewNamedLocalExecutor returns an executor over reg that stamps results
// with the worker name (the daemon uses its hostname).
func NewNamedLocalExecutor(reg *Registry, name string) *LocalExecutor {
	return &LocalExecutor{reg: reg, name: name}
}

// Execute resolves spec against the registry and runs the named job (or
// shard). Panics inside the job surface as TaskResult.Err; resolution
// failures — unknown job, shard out of range, protocol or cache-key
// mismatch — surface as typed *api.Error values so a scheduler (or the
// worker daemon wrapping this executor) can tell "this worker cannot
// run the task" from "the task failed", and key retry policy off
// api.Error.Retryable.
func (e *LocalExecutor) Execute(ctx context.Context, spec api.TaskSpec) (api.TaskResult, error) {
	return e.ExecuteStream(ctx, spec, nil)
}

// progressInterval floors the gap between forwarded heartbeats so a
// tight training loop reporting every iteration does not flood the
// stream. Terminal heartbeats (done == total) always pass.
const progressInterval = 100 * time.Millisecond

// ExecuteStream is Execute with progress: heartbeats the job emits via
// Context.Report are throttled and forwarded to onProgress (nil
// disables forwarding, making this identical to Execute).
func (e *LocalExecutor) ExecuteStream(ctx context.Context, spec api.TaskSpec, onProgress ProgressFunc) (api.TaskResult, error) {
	if err := spec.Validate(); err != nil {
		return api.TaskResult{}, err
	}
	j, ok := e.reg.Get(spec.Job)
	if !ok {
		return api.TaskResult{}, api.Errf(api.CodeUnknownJob, "unknown job %q (executor registry out of sync with scheduler?)", spec.Job)
	}
	if spec.Key != j.Key {
		return api.TaskResult{}, api.Errf(api.CodeKeyMismatch, "job %q cache-key mismatch: scheduler sent %q, this registry derived %q (different preset knobs or code version)",
			spec.Job, spec.Key, j.Key)
	}
	name, run := j.Name, j.Run
	if spec.Shard != api.MonolithShard {
		if spec.Shard >= len(j.Shards) {
			return api.TaskResult{}, api.Errf(api.CodeBadRequest, "job %q has %d shards, task wants shard %d", spec.Job, len(j.Shards), spec.Shard)
		}
		sh := j.Shards[spec.Shard]
		name, run = j.Name+"/"+sh.Name, sh.Run
	} else if run == nil {
		return api.TaskResult{}, api.Errf(api.CodeBadRequest, "job %q is sharded; it cannot run as a monolithic task", spec.Job)
	}
	if err := ctx.Err(); err != nil {
		return api.TaskResult{}, err
	}

	res := api.TaskResult{Proto: api.Version, Job: spec.Job, Shard: spec.Shard, Key: j.Key, Worker: e.name}
	start := time.Now()
	jctx := Context{Name: name, Seed: spec.Seed, Ctx: ctx}
	if onProgress != nil {
		var mu sync.Mutex
		var last time.Time
		jctx.Progress = func(stage string, done, total int) {
			now := time.Now()
			mu.Lock()
			if now.Sub(last) < progressInterval && !(total > 0 && done >= total) {
				mu.Unlock()
				return
			}
			last = now
			mu.Unlock()
			onProgress(api.TaskProgress{
				Job: spec.Job, Shard: spec.Shard, Stage: stage,
				Done: done, Total: total, ElapsedNS: time.Since(start).Nanoseconds(),
			})
		}
		// Library code below the job (training loops) sees only the
		// cancellation context, so carry the reporter on it too.
		jctx.Ctx = WithProgress(ctx, jctx.Progress)
	}
	out, err := runProtected(run, jctx)
	res.DurationNS = time.Since(start).Nanoseconds()
	if err != nil {
		res.Err = err.Error()
		return res, nil
	}
	res.Text = out.Text
	res.Data, err = marshalPayload(out.Data)
	if err != nil {
		res.Err = err.Error()
		res.Text, res.Data = "", nil
	}
	return res, nil
}

// CachingExecutor wraps an executor with a Cache consulted under the
// task's fully seeded CacheKey — the worker-side cache stack. With a
// disk-backed Cache carrying a remote tier this gives a daemon the full
// plane → local disk → compute lookup order, single-flighted both
// in-process and fleet-wide, with computed results written through to
// every tier. Tasks without a CacheKey pass straight through.
type CachingExecutor struct {
	// Exec runs tasks that miss; Cache is the stack (never nil).
	Exec  Executor
	Cache *Cache
}

// Execute implements Executor with the cache consulted first.
func (e *CachingExecutor) Execute(ctx context.Context, spec api.TaskSpec) (api.TaskResult, error) {
	return e.ExecuteStream(ctx, spec, nil)
}

// ExecuteStream implements StreamExecutor; replays report no progress.
func (e *CachingExecutor) ExecuteStream(ctx context.Context, spec api.TaskSpec, onProgress ProgressFunc) (api.TaskResult, error) {
	key := spec.CacheKey
	if key == "" || e.Cache == nil {
		return e.dispatch(ctx, spec, onProgress)
	}
	// The seeded key must extend the stem the registry check vouches
	// for; otherwise a confused scheduler could poison the shared cache
	// under a key this worker's code never derived.
	if spec.Key == "" || !strings.HasPrefix(key, spec.Key) {
		return api.TaskResult{}, api.Errf(api.CodeKeyMismatch,
			"task %q cache key %q does not extend stem %q", spec.Job, key, spec.Key)
	}
	if r, hit := e.Cache.begin(ctx, key); hit {
		return replayedTaskResult(spec, r)
	}
	tr, err := e.dispatch(ctx, spec, onProgress)
	if err != nil || tr.Err != "" {
		// Release single-flight waiters without caching the failure.
		msg := tr.Err
		if err != nil {
			msg = err.Error()
		}
		e.Cache.finish(key, Result{Err: msg})
		return tr, err
	}
	e.Cache.finish(key, Result{
		Name: taskName(spec), Seed: spec.Seed, Text: tr.Text,
		Data: tr.Data, Duration: time.Duration(tr.DurationNS),
	})
	return tr, nil
}

func (e *CachingExecutor) dispatch(ctx context.Context, spec api.TaskSpec, onProgress ProgressFunc) (api.TaskResult, error) {
	if se, ok := e.Exec.(StreamExecutor); ok && onProgress != nil {
		return se.ExecuteStream(ctx, spec, onProgress)
	}
	return e.Exec.Execute(ctx, spec)
}

// taskName renders a task's unit name for cached diagnostics. Shard
// names are not resolvable here (the wrapper is registry-agnostic), so
// shards use their index; replays re-stamp names, and plane payload
// equivalence ignores them, so the difference is cosmetic.
func taskName(spec api.TaskSpec) string {
	if spec.Shard == api.MonolithShard {
		return spec.Job
	}
	return fmt.Sprintf("%s/#%d", spec.Job, spec.Shard)
}

// replayedTaskResult renders a cached result as the task's reply.
func replayedTaskResult(spec api.TaskSpec, r Result) (api.TaskResult, error) {
	tr := api.TaskResult{
		Proto: api.Version, Job: spec.Job, Shard: spec.Shard, Key: spec.Key,
		Text: r.Text, Err: r.Err, DurationNS: r.Duration.Nanoseconds(), Worker: "cache",
	}
	data, err := marshalPayload(r.Data)
	if err != nil {
		return api.TaskResult{}, err
	}
	tr.Data = data
	return tr, nil
}

// marshalPayload normalises a job's Data into raw JSON for the wire and
// the report. Already-raw payloads (cache replays) pass through
// unchanged, so byte identity is preserved end to end.
func marshalPayload(v any) (json.RawMessage, error) {
	switch d := v.(type) {
	case nil:
		return nil, nil
	case json.RawMessage:
		return d, nil
	case []byte:
		return json.RawMessage(d), nil
	default:
		b, err := json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("engine: task data not JSON-marshalable: %w", err)
		}
		return b, nil
	}
}

// executeTask dispatches one task through exec, folding every failure
// mode — prior cancellation, executor panic, transport error, task error
// — into the (Output, error-string, duration) shape the scheduler records.
func executeTask(ctx context.Context, exec Executor, spec api.TaskSpec) (Output, string, time.Duration) {
	if err := ctx.Err(); err != nil {
		return Output{}, err.Error(), 0
	}
	start := time.Now()
	tr, err := protectedExecute(ctx, exec, spec)
	if err != nil {
		return Output{}, err.Error(), time.Since(start)
	}
	d := time.Duration(tr.DurationNS)
	if d <= 0 {
		d = time.Since(start)
	}
	if tr.Err != "" {
		return Output{}, tr.Err, d
	}
	out := Output{Text: tr.Text}
	if len(tr.Data) > 0 {
		out.Data = tr.Data
	}
	return out, "", d
}

// protectedExecute guards the scheduler against a panicking Executor
// implementation (job panics are already converted by LocalExecutor; this
// covers the executor itself).
func protectedExecute(ctx context.Context, exec Executor, spec api.TaskSpec) (tr api.TaskResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			tr, err = api.TaskResult{}, fmt.Errorf("executor panic: %v", p)
		}
	}()
	return exec.Execute(ctx, spec)
}
