package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/api"
)

// Executor runs one task — a monolithic job or a single shard — and is
// the seam between the scheduler and a transport. Implementations must be
// safe for concurrent use: the scheduler dispatches up to Options.Workers
// tasks at once.
//
// The two error channels are distinct on purpose. A non-nil Go error
// means the execution attempt itself failed (unknown job, protocol or
// cache-key mismatch, network failure) — the task may be retried
// elsewhere. A populated TaskResult.Err means the task ran and failed
// deterministically (job error or panic); retrying would reproduce it, so
// the scheduler records it as the job's outcome.
type Executor interface {
	Execute(ctx context.Context, spec api.TaskSpec) (api.TaskResult, error)
}

// LocalExecutor resolves tasks against an in-process Registry and runs
// them on the calling goroutine. It is the default executor of Run and
// the execution core the remote worker daemon wraps.
type LocalExecutor struct {
	reg *Registry
	// name stamps TaskResult.Worker (diagnostics); empty means local.
	name string
}

// NewLocalExecutor returns an executor over reg.
func NewLocalExecutor(reg *Registry) *LocalExecutor {
	return &LocalExecutor{reg: reg}
}

// NewNamedLocalExecutor returns an executor over reg that stamps results
// with the worker name (the daemon uses its hostname).
func NewNamedLocalExecutor(reg *Registry, name string) *LocalExecutor {
	return &LocalExecutor{reg: reg, name: name}
}

// Execute resolves spec against the registry and runs the named job (or
// shard). Panics inside the job surface as TaskResult.Err; resolution
// failures — unknown job, shard out of range, protocol or cache-key
// mismatch — surface as typed *api.Error values so a scheduler (or the
// worker daemon wrapping this executor) can tell "this worker cannot
// run the task" from "the task failed", and key retry policy off
// api.Error.Retryable.
func (e *LocalExecutor) Execute(ctx context.Context, spec api.TaskSpec) (api.TaskResult, error) {
	if err := spec.Validate(); err != nil {
		return api.TaskResult{}, err
	}
	j, ok := e.reg.Get(spec.Job)
	if !ok {
		return api.TaskResult{}, api.Errf(api.CodeUnknownJob, "unknown job %q (executor registry out of sync with scheduler?)", spec.Job)
	}
	if spec.Key != j.Key {
		return api.TaskResult{}, api.Errf(api.CodeKeyMismatch, "job %q cache-key mismatch: scheduler sent %q, this registry derived %q (different preset knobs or code version)",
			spec.Job, spec.Key, j.Key)
	}
	name, run := j.Name, j.Run
	if spec.Shard != api.MonolithShard {
		if spec.Shard >= len(j.Shards) {
			return api.TaskResult{}, api.Errf(api.CodeBadRequest, "job %q has %d shards, task wants shard %d", spec.Job, len(j.Shards), spec.Shard)
		}
		sh := j.Shards[spec.Shard]
		name, run = j.Name+"/"+sh.Name, sh.Run
	} else if run == nil {
		return api.TaskResult{}, api.Errf(api.CodeBadRequest, "job %q is sharded; it cannot run as a monolithic task", spec.Job)
	}
	if err := ctx.Err(); err != nil {
		return api.TaskResult{}, err
	}

	res := api.TaskResult{Proto: api.Version, Job: spec.Job, Shard: spec.Shard, Key: j.Key, Worker: e.name}
	start := time.Now()
	out, err := runProtected(run, Context{Name: name, Seed: spec.Seed, Ctx: ctx})
	res.DurationNS = time.Since(start).Nanoseconds()
	if err != nil {
		res.Err = err.Error()
		return res, nil
	}
	res.Text = out.Text
	res.Data, err = marshalPayload(out.Data)
	if err != nil {
		res.Err = err.Error()
		res.Text, res.Data = "", nil
	}
	return res, nil
}

// marshalPayload normalises a job's Data into raw JSON for the wire and
// the report. Already-raw payloads (cache replays) pass through
// unchanged, so byte identity is preserved end to end.
func marshalPayload(v any) (json.RawMessage, error) {
	switch d := v.(type) {
	case nil:
		return nil, nil
	case json.RawMessage:
		return d, nil
	case []byte:
		return json.RawMessage(d), nil
	default:
		b, err := json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("engine: task data not JSON-marshalable: %w", err)
		}
		return b, nil
	}
}

// executeTask dispatches one task through exec, folding every failure
// mode — prior cancellation, executor panic, transport error, task error
// — into the (Output, error-string, duration) shape the scheduler records.
func executeTask(ctx context.Context, exec Executor, spec api.TaskSpec) (Output, string, time.Duration) {
	if err := ctx.Err(); err != nil {
		return Output{}, err.Error(), 0
	}
	start := time.Now()
	tr, err := protectedExecute(ctx, exec, spec)
	if err != nil {
		return Output{}, err.Error(), time.Since(start)
	}
	d := time.Duration(tr.DurationNS)
	if d <= 0 {
		d = time.Since(start)
	}
	if tr.Err != "" {
		return Output{}, tr.Err, d
	}
	out := Output{Text: tr.Text}
	if len(tr.Data) > 0 {
		out.Data = tr.Data
	}
	return out, "", d
}

// protectedExecute guards the scheduler against a panicking Executor
// implementation (job panics are already converted by LocalExecutor; this
// covers the executor itself).
func protectedExecute(ctx context.Context, exec Executor, spec api.TaskSpec) (tr api.TaskResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			tr, err = api.TaskResult{}, fmt.Errorf("executor panic: %v", p)
		}
	}()
	return exec.Execute(ctx, spec)
}
