package engine

import (
	"fmt"
	"testing"
)

// benchRegistry: 8 sharded jobs x 8 shards of trivial work, keyed for
// caching.
func benchRegistry(b *testing.B) *Registry {
	b.Helper()
	reg := NewRegistry()
	for j := 0; j < 8; j++ {
		var shards []Shard
		for s := 0; s < 8; s++ {
			s := s
			shards = append(shards, Shard{
				Name: fmt.Sprintf("s%d", s),
				Run: func(ctx Context) (Output, error) {
					return Output{Data: ctx.Seed + uint64(s)}, nil
				},
			})
		}
		err := reg.Register(ShardedJob(
			fmt.Sprintf("job%d", j), "", fmt.Sprintf("job%d@bench", j), shards,
			func(_ Context, outs []Output) (Output, error) {
				var sum uint64
				for _, o := range outs {
					var v uint64
					if err := DecodeData(o.Data, &v); err != nil {
						return Output{}, err
					}
					sum += v
				}
				return Output{Text: fmt.Sprint(sum)}, nil
			}))
		if err != nil {
			b.Fatal(err)
		}
	}
	return reg
}

// BenchmarkShardedRunCold times scheduling + merging 64 shard units with
// no cache (pure engine overhead per pass).
func BenchmarkShardedRunCold(b *testing.B) {
	reg := benchRegistry(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Run(reg, Options{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedRunWarm times a fully warm pass: every job replays from
// the in-memory cache (the steady state of repeated paper-table runs).
func BenchmarkShardedRunWarm(b *testing.B) {
	reg := benchRegistry(b)
	cache := NewCache()
	if _, err := Run(reg, Options{Workers: 4, Cache: cache}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Run(reg, Options{Workers: 4, Cache: cache})
		if err != nil {
			b.Fatal(err)
		}
		if rep.CachedCount() != len(rep.Results) {
			b.Fatalf("warm pass computed %d jobs", len(rep.Results)-rep.CachedCount())
		}
	}
}

// BenchmarkDiskCacheReload times loading a populated cache dir — the
// startup cost a warm process pays before its first replay.
func BenchmarkDiskCacheReload(b *testing.B) {
	dir := b.TempDir()
	cache, err := OpenDiskCache(dir, "bench")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := Run(benchRegistry(b), Options{Workers: 4, Cache: cache}); err != nil {
		b.Fatal(err)
	}
	cache.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := OpenDiskCache(dir, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if c.Len() == 0 {
			b.Fatal("reload found nothing")
		}
		c.Close()
	}
}
