package engine

import "sync"

// Cache memoises successful job results across runs in the same process.
// Keys come from Job.Key (experiment id + preset hash), so editing a
// preset knob invalidates every cached result computed under it. The
// cache also tracks in-flight computations: a keyed job whose key is
// already being computed waits for that computation instead of
// duplicating it (single-flight).
type Cache struct {
	mu       sync.Mutex
	m        map[string]Result
	inflight map[string]chan struct{}
}

// NewCache returns an empty result cache.
func NewCache() *Cache {
	return &Cache{m: make(map[string]Result), inflight: make(map[string]chan struct{})}
}

// Len reports how many results are cached.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// begin claims key for computation. It returns the cached result on a
// hit; otherwise, if another goroutine is already computing the key, it
// waits for that computation and retries. A (Result{}, false) return
// means the caller owns the computation and must call finish(key, ...)
// exactly once.
func (c *Cache) begin(key string) (Result, bool) {
	if c == nil || key == "" {
		return Result{}, false
	}
	for {
		c.mu.Lock()
		if r, ok := c.m[key]; ok {
			c.mu.Unlock()
			return r, true
		}
		ch, busy := c.inflight[key]
		if !busy {
			c.inflight[key] = make(chan struct{})
			c.mu.Unlock()
			return Result{}, false
		}
		c.mu.Unlock()
		<-ch
		// The computation finished: loop to pick up its result, or —
		// if it failed (failures are not cached) — claim the key.
	}
}

// finish records the computation claimed by begin. Failures are not
// cached, so a flaky job re-runs; waiters are released either way.
func (c *Cache) finish(key string, r Result) {
	if c == nil || key == "" {
		return
	}
	c.mu.Lock()
	if r.Err == "" {
		c.m[key] = r
	}
	if ch, ok := c.inflight[key]; ok {
		delete(c.inflight, key)
		close(ch)
	}
	c.mu.Unlock()
}
