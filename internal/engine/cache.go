package engine

import (
	"context"
	"sync"
)

// RemoteCache is a shared result tier behind the process-local Cache —
// the seam the fleet-wide result plane plugs into. Implementations are
// consulted after the local tiers miss and written through on every new
// success, and they must degrade, never fail: an unreachable backend
// looks like a miss (Lookup/Acquire) or a no-op (Store), so the worst
// case is recomputing locally — never a wrong or missing result.
type RemoteCache interface {
	// Lookup fetches key's result without claiming anything.
	Lookup(ctx context.Context, key string) (Result, bool)
	// Acquire resolves who computes key fleet-wide: a true return hands
	// back a stored result (possibly after waiting out another
	// machine's in-flight computation); a false return means the caller
	// now owns the computation — it must compute and Store.
	Acquire(ctx context.Context, key string) (Result, bool)
	// Store writes through one newly computed success.
	Store(ctx context.Context, key string, r Result)
}

// Cache memoises successful job results across runs. Keys come from
// Job.Key (experiment id + preset hash), so editing a preset knob
// invalidates every cached result computed under it. The cache also
// tracks in-flight computations: a keyed job whose key is already being
// computed waits for that computation instead of duplicating it
// (single-flight). A Cache from NewCache lives in one process; one from
// OpenDiskCache is additionally backed by an append-only JSON-lines file
// shared across processes; SetRemote adds a third, fleet-wide tier
// (lookup order: memory, then remote; new successes write through to
// both disk and remote).
type Cache struct {
	mu       sync.Mutex
	m        map[string]Result
	inflight map[string]chan struct{}
	// store, when non-nil, receives every newly cached success (the
	// persistent backend). Appends happen outside mu: the store has its
	// own lock, and a slow disk must not stall in-memory lookups.
	store *diskStore
	// remote, when non-nil, is the fleet-wide tier. All remote calls
	// happen outside mu — they block on the network.
	remote RemoteCache
}

// NewCache returns an empty in-process result cache.
func NewCache() *Cache {
	return &Cache{m: make(map[string]Result), inflight: make(map[string]chan struct{})}
}

// SetRemote attaches the fleet-wide tier (nil detaches it).
func (c *Cache) SetRemote(rc RemoteCache) {
	c.mu.Lock()
	c.remote = rc
	c.mu.Unlock()
}

// remoteTier snapshots the remote backend under the lock.
func (c *Cache) remoteTier() RemoteCache {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remote
}

// Len reports how many results are cached.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Close releases the persistent backend, if any. In-memory lookups keep
// working; further successes are no longer persisted.
func (c *Cache) Close() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	s := c.store
	c.store = nil
	c.mu.Unlock()
	if s == nil {
		return nil
	}
	return s.close()
}

// peek returns the cached result for key without claiming the key for
// computation (no single-flight bookkeeping). A local miss consults the
// remote tier; a remote hit is admitted into the local tiers so the
// next lookup is local.
func (c *Cache) peek(ctx context.Context, key string) (Result, bool) {
	if c == nil || key == "" {
		return Result{}, false
	}
	c.mu.Lock()
	r, ok := c.m[key]
	rem := c.remote
	c.mu.Unlock()
	if ok {
		return r, true
	}
	if rem == nil {
		return Result{}, false
	}
	r, ok = rem.Lookup(ctx, key)
	if !ok {
		return Result{}, false
	}
	c.admit(key, r)
	return r, true
}

// admit records a remote-fetched result in the local tiers (memory and
// disk) without touching single-flight state and without echoing it
// back to the remote.
func (c *Cache) admit(key string, r Result) {
	if r.Err != "" {
		return
	}
	c.mu.Lock()
	var store *diskStore
	if _, dup := c.m[key]; !dup {
		store = c.store
		c.m[key] = r
	}
	c.mu.Unlock()
	if store != nil {
		store.append(key, r)
	}
}

// begin claims key for computation. It returns the cached result on a
// hit; otherwise, if another goroutine is already computing the key, it
// waits for that computation and retries. Once the claim is won locally
// the remote tier arbitrates fleet-wide: a stored result (or one
// another machine finishes while we wait on its claim) comes back as a
// hit, and only a fleet-wide claim falls through to compute. A
// (Result{}, false) return means the caller owns the computation and
// must call finish(key, ...) exactly once.
func (c *Cache) begin(ctx context.Context, key string) (Result, bool) {
	if c == nil || key == "" {
		return Result{}, false
	}
	for {
		c.mu.Lock()
		if r, ok := c.m[key]; ok {
			c.mu.Unlock()
			return r, true
		}
		ch, busy := c.inflight[key]
		if !busy {
			rem := c.remote
			c.inflight[key] = make(chan struct{})
			c.mu.Unlock()
			if rem != nil {
				if r, ok := rem.Acquire(ctx, key); ok {
					// Another machine's result: admit it locally and
					// release our waiters through the normal path. The
					// remote is not re-written — finishLocal never
					// touches it.
					c.finishLocal(key, r)
					return r, true
				}
			}
			return Result{}, false
		}
		c.mu.Unlock()
		<-ch
		// The computation finished: loop to pick up its result, or —
		// if it failed (failures are not cached) — claim the key.
	}
}

// finish records a computed result under key. Failures are not cached,
// so a flaky job re-runs; waiters claimed via begin are released either
// way. finish is also safe without a prior begin (sharded merges store
// their assembled result directly). New successes write through to the
// remote tier, making them visible fleet-wide.
func (c *Cache) finish(key string, r Result) {
	if c == nil || key == "" {
		return
	}
	if c.finishLocal(key, r) {
		if rem := c.remoteTier(); rem != nil {
			rem.Store(context.Background(), key, r)
		}
	}
}

// finishLocal is finish without the remote write-through (used to admit
// results that came from the remote). It reports whether the result was
// newly stored (a success not previously cached).
func (c *Cache) finishLocal(key string, r Result) bool {
	if c == nil || key == "" {
		return false
	}
	c.mu.Lock()
	var store *diskStore
	stored := false
	if r.Err == "" {
		if _, dup := c.m[key]; !dup {
			store = c.store
			stored = true
		}
		c.m[key] = r
	}
	if ch, ok := c.inflight[key]; ok {
		delete(c.inflight, key)
		close(ch)
	}
	c.mu.Unlock()
	if store != nil {
		store.append(key, r)
	}
	return stored
}
