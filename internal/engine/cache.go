package engine

import "sync"

// Cache memoises successful job results across runs. Keys come from
// Job.Key (experiment id + preset hash), so editing a preset knob
// invalidates every cached result computed under it. The cache also
// tracks in-flight computations: a keyed job whose key is already being
// computed waits for that computation instead of duplicating it
// (single-flight). A Cache from NewCache lives in one process; one from
// OpenDiskCache is additionally backed by an append-only JSON-lines file
// shared across processes.
type Cache struct {
	mu       sync.Mutex
	m        map[string]Result
	inflight map[string]chan struct{}
	// store, when non-nil, receives every newly cached success (the
	// persistent backend). Appends happen outside mu: the store has its
	// own lock, and a slow disk must not stall in-memory lookups.
	store *diskStore
}

// NewCache returns an empty in-process result cache.
func NewCache() *Cache {
	return &Cache{m: make(map[string]Result), inflight: make(map[string]chan struct{})}
}

// Len reports how many results are cached.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Close releases the persistent backend, if any. In-memory lookups keep
// working; further successes are no longer persisted.
func (c *Cache) Close() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	s := c.store
	c.store = nil
	c.mu.Unlock()
	if s == nil {
		return nil
	}
	return s.close()
}

// peek returns the cached result for key without claiming the key for
// computation (no single-flight bookkeeping).
func (c *Cache) peek(key string) (Result, bool) {
	if c == nil || key == "" {
		return Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[key]
	return r, ok
}

// begin claims key for computation. It returns the cached result on a
// hit; otherwise, if another goroutine is already computing the key, it
// waits for that computation and retries. A (Result{}, false) return
// means the caller owns the computation and must call finish(key, ...)
// exactly once.
func (c *Cache) begin(key string) (Result, bool) {
	if c == nil || key == "" {
		return Result{}, false
	}
	for {
		c.mu.Lock()
		if r, ok := c.m[key]; ok {
			c.mu.Unlock()
			return r, true
		}
		ch, busy := c.inflight[key]
		if !busy {
			c.inflight[key] = make(chan struct{})
			c.mu.Unlock()
			return Result{}, false
		}
		c.mu.Unlock()
		<-ch
		// The computation finished: loop to pick up its result, or —
		// if it failed (failures are not cached) — claim the key.
	}
}

// finish records a computed result under key. Failures are not cached,
// so a flaky job re-runs; waiters claimed via begin are released either
// way. finish is also safe without a prior begin (sharded merges store
// their assembled result directly).
func (c *Cache) finish(key string, r Result) {
	if c == nil || key == "" {
		return
	}
	c.mu.Lock()
	var store *diskStore
	if r.Err == "" {
		if _, dup := c.m[key]; !dup {
			store = c.store
		}
		c.m[key] = r
	}
	if ch, ok := c.inflight[key]; ok {
		delete(c.inflight, key)
		close(ch)
	}
	c.mu.Unlock()
	if store != nil {
		store.append(key, r)
	}
}
