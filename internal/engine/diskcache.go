package engine

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/api"
)

// The persistent cache is one append-only JSON-lines file,
// <dir>/results.jsonl. Each line is an api.CacheEntry: a version stamp,
// the cache key (already embedding experiment id, preset hash and base
// seed), and the result. The same entry shape travels to the result
// plane (internal/resultplane), so a plane object and a disk-cache line
// are interchangeable records. Invalidation is by construction, never
// by mutation: a changed preset hashes to a new key, and a bumped code
// version makes the loader skip every older line. Corrupt lines —
// truncated tails from a killed process, editor damage, garbage — are
// skipped on load, so damage degrades to cache misses, never to errors.
//
// Appends are serialised per process by diskStore.mu and written with
// O_APPEND, so concurrent processes sharing one cache dir interleave
// whole lines rather than corrupting each other.

// diskFormatVersion stamps the file layout itself; bump on any change to
// api.CacheEntry. Callers compose their own code-version on top via the
// version argument of OpenDiskCache.
const diskFormatVersion = "rescache1"

// diskCacheFile is the JSON-lines file name inside the cache dir.
const diskCacheFile = "results.jsonl"

// CacheVersionTag composes the full version stamp cache entries carry:
// the entry-layout version plus the caller's code version. Disk caches
// and the result plane must agree on it, so both derive it here.
func CacheVersionTag(version string) string {
	return diskFormatVersion + "/" + version
}

// ToCachedResult converts a Result into its persisted wire form,
// normalising Data to raw JSON so a replayed payload re-marshals
// byte-identically to the original.
func ToCachedResult(r Result) (api.CachedResult, error) {
	cr := api.CachedResult{
		Name: r.Name, Title: r.Title, Text: r.Text,
		Err: r.Err, Seed: r.Seed, DurationNS: r.Duration.Nanoseconds(),
	}
	switch d := r.Data.(type) {
	case nil:
	case json.RawMessage:
		cr.Data = d
	default:
		b, err := json.Marshal(d)
		if err != nil {
			return api.CachedResult{}, err
		}
		cr.Data = b
	}
	return cr, nil
}

// FromCachedResult converts a persisted result back into the scheduler's
// in-memory form.
func FromCachedResult(cr api.CachedResult) Result {
	r := Result{
		Name: cr.Name, Title: cr.Title, Text: cr.Text,
		Err: cr.Err, Seed: cr.Seed, Duration: time.Duration(cr.DurationNS),
	}
	if len(cr.Data) > 0 {
		r.Data = json.RawMessage(cr.Data)
	}
	return r
}

// diskStore is the append side of the persistent backend.
type diskStore struct {
	mu      sync.Mutex
	f       *os.File
	version string
}

// append persists one successful result. Failures to serialise or write
// are swallowed: the result stays cached in memory and the run proceeds;
// persistence is an optimisation, never a correctness dependency.
func (s *diskStore) append(key string, r Result) {
	if r.Err != "" {
		return
	}
	cr, err := ToCachedResult(r)
	if err != nil {
		return
	}
	line, err := json.Marshal(api.CacheEntry{Version: s.version, Key: key, Result: cr})
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		s.f.Write(line)
	}
}

func (s *diskStore) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// OpenDiskCache returns a Cache preloaded from dir (created if missing)
// that persists every new success to <dir>/results.jsonl. version is the
// caller's code-version stamp: entries written under a different version
// are ignored on load, so bumping it after a change that affects
// experiment output invalidates the whole directory without touching it.
// Single-flight semantics and the in-memory fast path are identical to
// NewCache. Close the cache when done to flush the backing file handle.
func OpenDiskCache(dir, version string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("engine: disk cache needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: create cache dir: %w", err)
	}
	full := CacheVersionTag(version)
	path := filepath.Join(dir, diskCacheFile)

	c := NewCache()
	loadDiskCache(c, path, full)

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("engine: open cache file: %w", err)
	}
	c.store = &diskStore{f: f, version: full}
	return c, nil
}

// loadDiskCache best-effort loads path into c. Every malformed, stale or
// failed entry is treated as a miss: a missing file, a garbage file, a
// truncated final line or a mid-file corruption all simply shrink the
// warm set. Later lines win, matching append order.
func loadDiskCache(c *Cache, path, version string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e api.CacheEntry
		if err := json.Unmarshal(line, &e); err != nil {
			continue
		}
		if e.Version != version || e.Key == "" || e.Result.Err != "" {
			continue
		}
		c.m[e.Key] = FromCachedResult(e.Result)
	}
	// A scanner error (e.g. an over-long corrupt line) abandons the rest
	// of the file; everything loaded so far stays usable.
}
