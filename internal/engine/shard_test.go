package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/api"
)

// gridShards builds n shards whose payloads are (index, seed-derived)
// rows, plus a merge that formats them in shard order.
func gridJob(name string, n int, key string) Job {
	var shards []Shard
	for i := 0; i < n; i++ {
		i := i
		shards = append(shards, Shard{
			Name: fmt.Sprintf("pt%02d", i),
			Run: func(ctx Context) (Output, error) {
				return Output{Data: map[string]any{"i": i, "seed": ctx.Seed}}, nil
			},
		})
	}
	merge := func(_ Context, outs []Output) (Output, error) {
		var b strings.Builder
		for _, o := range outs {
			var row struct {
				I    int    `json:"i"`
				Seed uint64 `json:"seed"`
			}
			if err := DecodeData(o.Data, &row); err != nil {
				return Output{}, err
			}
			fmt.Fprintf(&b, "%d:%d\n", row.I, row.Seed)
		}
		return Output{Text: b.String(), Data: b.String()}, nil
	}
	return ShardedJob(name, "grid", key, shards, merge)
}

func TestRegistryValidatesShardedJobs(t *testing.T) {
	run := func(Context) (Output, error) { return Output{}, nil }
	merge := func(Context, []Output) (Output, error) { return Output{}, nil }
	cases := []struct {
		desc string
		job  Job
	}{
		{"both Run and Shards", Job{Name: "x", Run: run, Shards: []Shard{{Name: "a", Run: run}}, Merge: merge}},
		{"missing Merge", Job{Name: "x", Shards: []Shard{{Name: "a", Run: run}}}},
		{"unnamed shard", Job{Name: "x", Shards: []Shard{{Run: run}}, Merge: merge}},
		{"nil shard Run", Job{Name: "x", Shards: []Shard{{Name: "a"}}, Merge: merge}},
		{"duplicate shard", Job{Name: "x", Shards: []Shard{{Name: "a", Run: run}, {Name: "a", Run: run}}, Merge: merge}},
	}
	for _, c := range cases {
		if err := NewRegistry().Register(c.job); err == nil {
			t.Errorf("%s: registration must fail", c.desc)
		}
	}
	ok := gridJob("ok", 3, "")
	if err := NewRegistry().Register(ok); err != nil {
		t.Fatalf("valid sharded job rejected: %v", err)
	}
}

func TestShardedJobDeterministicAcrossWorkerCounts(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry()
		for _, name := range []string{"gridA", "gridB"} {
			if err := reg.Register(gridJob(name, 7, "")); err != nil {
				t.Fatal(err)
			}
		}
		return reg
	}
	serial, err := Run(build(), Options{Workers: 1, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.Err(); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		par, err := Run(build(), Options{Workers: workers, BaseSeed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if textOf(par) != textOf(serial) {
			t.Fatalf("workers=%d diverged:\n%s\nvs\n%s", workers, textOf(par), textOf(serial))
		}
	}
}

func TestShardedJobShardsRunInParallel(t *testing.T) {
	const n = 4
	var barrier sync.WaitGroup
	barrier.Add(n)
	var shards []Shard
	for i := 0; i < n; i++ {
		shards = append(shards, Shard{
			Name: fmt.Sprintf("s%d", i),
			Run: func(Context) (Output, error) {
				barrier.Done()
				barrier.Wait() // deadlocks unless all shards overlap
				return Output{Data: "met"}, nil
			},
		})
	}
	reg := NewRegistry()
	err := reg.Register(ShardedJob("wide", "", "", shards,
		func(_ Context, outs []Output) (Output, error) {
			return Output{Text: fmt.Sprintf("%d shards", len(outs))}, nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(reg, Options{Workers: n})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Text != "4 shards" {
		t.Fatalf("merge output: %q", rep.Results[0].Text)
	}
}

func TestShardErrorsAndPanicsFailTheJob(t *testing.T) {
	reg := NewRegistry()
	shards := []Shard{
		{Name: "good", Run: func(Context) (Output, error) { return Output{Data: 1}, nil }},
		{Name: "bad", Run: func(Context) (Output, error) { return Output{}, errors.New("boom") }},
		{Name: "panics", Run: func(Context) (Output, error) { panic("kaboom") }},
	}
	err := reg.Register(ShardedJob("mixed", "", "", shards,
		func(Context, []Output) (Output, error) {
			t.Error("merge must not run when a shard failed")
			return Output{}, nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(Job{Name: "sibling", Run: func(Context) (Output, error) {
		return Output{Text: "fine"}, nil
	}}); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(reg, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 1 {
		t.Fatalf("failed = %d, want 1", rep.Failed())
	}
	got := rep.Results[0].Err
	for _, frag := range []string{"shard bad: boom", "shard panics: panic: kaboom"} {
		if !strings.Contains(got, frag) {
			t.Fatalf("job error missing %q: %q", frag, got)
		}
	}
	if rep.Results[1].Failed() {
		t.Fatalf("sibling corrupted: %+v", rep.Results[1])
	}
}

func TestMergeErrorAndPanicAreCaptured(t *testing.T) {
	reg := NewRegistry()
	one := []Shard{{Name: "a", Run: func(Context) (Output, error) { return Output{Data: 1}, nil }}}
	must := func(j Job) {
		if err := reg.Register(j); err != nil {
			t.Fatal(err)
		}
	}
	must(ShardedJob("mergeerr", "", "", one, func(Context, []Output) (Output, error) {
		return Output{}, errors.New("cannot assemble")
	}))
	must(ShardedJob("mergepanic", "", "", one, func(Context, []Output) (Output, error) {
		panic("merge kaboom")
	}))
	rep, err := Run(reg, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Results[0].Err, "merge: cannot assemble") {
		t.Fatalf("merge error: %q", rep.Results[0].Err)
	}
	if !strings.Contains(rep.Results[1].Err, "merge: panic: merge kaboom") {
		t.Fatalf("merge panic: %q", rep.Results[1].Err)
	}
}

// TestShardedJobCaching: second pass replays the whole job from the
// merged cache entry without touching any shard.
func TestShardedJobCaching(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	build := func() *Registry {
		reg := NewRegistry()
		var shards []Shard
		for i := 0; i < 3; i++ {
			shards = append(shards, Shard{
				Name: fmt.Sprintf("s%d", i),
				Run: func(Context) (Output, error) {
					mu.Lock()
					runs++
					mu.Unlock()
					return Output{Data: "x"}, nil
				},
			})
		}
		if err := reg.Register(ShardedJob("grid", "", "grid@hash", shards,
			func(_ Context, outs []Output) (Output, error) {
				return Output{Text: fmt.Sprintf("merged %d", len(outs))}, nil
			})); err != nil {
			t.Fatal(err)
		}
		return reg
	}
	cache := NewCache()
	for pass := 0; pass < 2; pass++ {
		rep, err := Run(build(), Options{Workers: 4, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			t.Fatal(err)
		}
		r := rep.Results[0]
		if r.Text != "merged 3" {
			t.Fatalf("pass %d: text %q", pass, r.Text)
		}
		if want := pass == 1; r.Cached != want {
			t.Fatalf("pass %d: cached = %v, want %v", pass, r.Cached, want)
		}
	}
	if runs != 3 {
		t.Fatalf("shards computed %d times, want 3 (second pass must replay)", runs)
	}
}

// TestShardLevelCacheReuse: two jobs sharing a key reuse each other's
// shard results (single-flight per shard), and a job assembled purely
// from cached shards counts as cached.
func TestShardLevelCacheReuse(t *testing.T) {
	var mu sync.Mutex
	computed := map[string]int{}
	build := func(reg *Registry, jobName string) {
		var shards []Shard
		for i := 0; i < 4; i++ {
			i := i
			shards = append(shards, Shard{
				Name: fmt.Sprintf("s%d", i),
				Run: func(Context) (Output, error) {
					mu.Lock()
					computed[fmt.Sprintf("s%d", i)]++
					mu.Unlock()
					return Output{Data: i * i}, nil
				},
			})
		}
		if err := reg.Register(ShardedJob(jobName, "", "shared@key", shards,
			func(_ Context, outs []Output) (Output, error) {
				var vals []string
				for _, o := range outs {
					var v int
					if err := DecodeData(o.Data, &v); err != nil {
						return Output{}, err
					}
					vals = append(vals, fmt.Sprint(v))
				}
				return Output{Text: strings.Join(vals, ",")}, nil
			})); err != nil {
			t.Fatal(err)
		}
	}
	reg := NewRegistry()
	build(reg, "first")
	build(reg, "second")
	rep, err := Run(reg, Options{Workers: 1, Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	for name, n := range computed {
		if n != 1 {
			t.Fatalf("shard %s computed %d times, want 1", name, n)
		}
	}
	if rep.Results[0].Text != "0,1,4,9" || rep.Results[1].Text != "0,1,4,9" {
		t.Fatalf("texts: %q vs %q", rep.Results[0].Text, rep.Results[1].Text)
	}
	if rep.Results[0].Cached {
		t.Fatal("first job must compute")
	}
	if !rep.Results[1].Cached {
		t.Fatal("second job assembled fully from cached shards must count as cached")
	}
}

// TestDecodeDataRoundTripsThroughWireTypes: a shard payload marshalled
// into api.TaskResult.Data (the executor boundary), shipped as JSON (the
// remote transport), and handed back to a merge must decode to the value
// the shard produced — the property that makes merges transport-agnostic.
func TestDecodeDataRoundTripsThroughWireTypes(t *testing.T) {
	type row struct {
		Curve string    `json:"curve"`
		Pts   []float64 `json:"pts"`
		N     int       `json:"n"`
	}
	want := row{Curve: "fig7a/trr", Pts: []float64{0.5, 1.25, 2}, N: 3}

	// Executor side: live value -> raw payload in a TaskResult.
	payload, err := marshalPayload(want)
	if err != nil {
		t.Fatal(err)
	}
	res := api.TaskResult{Proto: api.Version, Job: "tiny/fig7a", Shard: 0, Data: payload}

	// Transport: the result crosses the wire as JSON.
	wire, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back api.TaskResult
	if err := json.Unmarshal(wire, &back); err != nil {
		t.Fatal(err)
	}

	// Scheduler side: the merge decodes the replayed payload.
	var got row
	if err := DecodeData(back.Data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Curve != want.Curve || got.N != want.N || fmt.Sprint(got.Pts) != fmt.Sprint(want.Pts) {
		t.Fatalf("round-trip changed the payload: %+v vs %+v", got, want)
	}
	// And the bytes themselves survive untouched (byte-identity of
	// reports across transports reduces to this).
	if string(back.Data) != string(payload) {
		t.Fatalf("payload bytes changed: %s vs %s", back.Data, payload)
	}
}

func TestDecodeDataShapes(t *testing.T) {
	type row struct {
		A int     `json:"a"`
		B float64 `json:"b"`
	}
	want := row{A: 3, B: 0.1}
	var fromLive row
	if err := DecodeData(want, &fromLive); err != nil || fromLive != want {
		t.Fatalf("live: %+v, %v", fromLive, err)
	}
	var fromRaw row
	if err := DecodeData([]byte(`{"a":3,"b":0.1}`), &fromRaw); err != nil || fromRaw != want {
		t.Fatalf("raw: %+v, %v", fromRaw, err)
	}
	if err := DecodeData(nil, &fromRaw); err == nil {
		t.Fatal("nil payload must error")
	}
}
