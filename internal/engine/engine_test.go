package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// textOf strips the timing-dependent parts of a report so two runs can be
// compared for determinism.
func textOf(rep *Report) string {
	var b strings.Builder
	for _, r := range rep.Results {
		fmt.Fprintf(&b, "%s seed=%d err=%q\n%s\n", r.Name, r.Seed, r.Err, r.Text)
	}
	return b.String()
}

func TestRegistryRejectsBadJobs(t *testing.T) {
	reg := NewRegistry()
	ok := Job{Name: "a", Run: func(Context) (Output, error) { return Output{}, nil }}
	if err := reg.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(ok); err == nil {
		t.Fatal("duplicate name must fail")
	}
	if err := reg.Register(Job{Run: ok.Run}); err == nil {
		t.Fatal("empty name must fail")
	}
	if err := reg.Register(Job{Name: "b"}); err == nil {
		t.Fatal("nil Run must fail")
	}
	if reg.Len() != 1 {
		t.Fatalf("len = %d", reg.Len())
	}
}

func TestSelectFiltering(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{"tiny/fig8a", "tiny/table2", "small/fig8a", "small/perf"} {
		name := name
		if err := reg.Register(Job{Name: name, Run: func(Context) (Output, error) {
			return Output{Text: name}, nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		patterns []string
		want     []string
	}{
		{nil, []string{"tiny/fig8a", "tiny/table2", "small/fig8a", "small/perf"}},
		{[]string{"all"}, []string{"tiny/fig8a", "tiny/table2", "small/fig8a", "small/perf"}},
		{[]string{"*/fig8a"}, []string{"tiny/fig8a", "small/fig8a"}},
		{[]string{"small/perf"}, []string{"small/perf"}},
		{[]string{"tiny/*", "small/perf"}, []string{"tiny/fig8a", "tiny/table2", "small/perf"}},
	}
	for _, c := range cases {
		jobs, err := reg.Select(c.patterns)
		if err != nil {
			t.Fatalf("%v: %v", c.patterns, err)
		}
		var got []string
		for _, j := range jobs {
			got = append(got, j.Name)
		}
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Fatalf("filter %v: got %v, want %v", c.patterns, got, c.want)
		}
	}
	if _, err := reg.Select([]string{"*/nosuch"}); err == nil {
		t.Fatal("unmatched filter must fail")
	}
}

// TestSelectOverlappingPatterns: a job matched by several patterns must
// be selected exactly once, in registration order — operators predicting
// remote fan-out from -list counts depend on no double scheduling.
func TestSelectOverlappingPatterns(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{"tiny/fig8a", "tiny/fig8b", "small/fig8a"} {
		if err := reg.Register(Job{Name: name, Run: func(Context) (Output, error) {
			return Output{}, nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		patterns []string
		want     []string
	}{
		// Every pattern matches tiny/fig8a; it must appear once.
		{[]string{"*/fig8a", "tiny/*", "tiny/fig8a"}, []string{"tiny/fig8a", "tiny/fig8b", "small/fig8a"}},
		// Later pattern re-matching an earlier selection changes nothing.
		{[]string{"tiny/fig8b", "*/fig8b"}, []string{"tiny/fig8b"}},
		// "all" plus a narrow pattern is still everything, once each.
		{[]string{"all", "small/fig8a"}, []string{"tiny/fig8a", "tiny/fig8b", "small/fig8a"}},
		// Duplicate patterns collapse.
		{[]string{"small/fig8a", "small/fig8a"}, []string{"small/fig8a"}},
	}
	for _, c := range cases {
		jobs, err := reg.Select(c.patterns)
		if err != nil {
			t.Fatalf("%v: %v", c.patterns, err)
		}
		var got []string
		for _, j := range jobs {
			got = append(got, j.Name)
		}
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Fatalf("filter %v: got %v, want %v", c.patterns, got, c.want)
		}
	}
}

// TestSelectNoMatchErrorText: a typo'd filter must fail loudly, naming
// the bad pattern and the available jobs.
func TestSelectNoMatchErrorText(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(Job{Name: "tiny/mc", Run: func(Context) (Output, error) {
		return Output{}, nil
	}}); err != nil {
		t.Fatal(err)
	}
	_, err := reg.Select([]string{"tiny/md"})
	if err == nil {
		t.Fatal("no-match filter must fail")
	}
	for _, frag := range []string{`"tiny/md"`, "matches no job", "tiny/mc"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error %q missing %q", err, frag)
		}
	}
	// One good and one bad pattern still fails: silent partial matches
	// would hide typos in multi-experiment invocations.
	if _, err := reg.Select([]string{"tiny/mc", "tiny/md"}); err == nil {
		t.Fatal("partially matched filter set must still fail")
	}
	// A malformed glob is a distinct, syntax-shaped error.
	if _, err := reg.Select([]string{"[unclosed"}); err == nil || !strings.Contains(err.Error(), "bad filter") {
		t.Fatalf("malformed glob error: %v", err)
	}
}

// seededRegistry builds jobs whose output depends only on ctx.Seed, so a
// report's text is a fingerprint of the seeding and scheduling.
func seededRegistry(t *testing.T, n int) *Registry {
	t.Helper()
	reg := NewRegistry()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("job%02d", i)
		err := reg.Register(Job{Name: name, Run: func(ctx Context) (Output, error) {
			rng := rand.New(rand.NewSource(int64(ctx.Seed)))
			return Output{Text: fmt.Sprintf("%s -> %d %d %d", ctx.Name, rng.Int63(), rng.Int63(), rng.Int63())}, nil
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

func TestConcurrentExecutionIsDeterministic(t *testing.T) {
	reg := seededRegistry(t, 24)
	serial, err := Run(reg, Options{Workers: 1, BaseSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		par, err := Run(reg, Options{Workers: 8, BaseSeed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if textOf(par) != textOf(serial) {
			t.Fatalf("workers=8 run diverged from serial:\n%s\nvs\n%s", textOf(par), textOf(serial))
		}
	}
	other, err := Run(reg, Options{Workers: 8, BaseSeed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if textOf(other) == textOf(serial) {
		t.Fatal("different base seed must change the seeded outputs")
	}
}

func TestResultsKeepRegistrationOrder(t *testing.T) {
	reg := seededRegistry(t, 16)
	rep, err := Run(reg, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rep.Results {
		if want := fmt.Sprintf("job%02d", i); r.Name != want {
			t.Fatalf("result %d is %s, want %s", i, r.Name, want)
		}
	}
}

func TestErrorAndPanicPropagation(t *testing.T) {
	reg := NewRegistry()
	boom := errors.New("boom")
	must := func(j Job) {
		if err := reg.Register(j); err != nil {
			t.Fatal(err)
		}
	}
	must(Job{Name: "ok", Run: func(Context) (Output, error) { return Output{Text: "fine"}, nil }})
	must(Job{Name: "fails", Run: func(Context) (Output, error) { return Output{}, boom }})
	must(Job{Name: "panics", Run: func(Context) (Output, error) { panic("kaboom") }})

	rep, err := Run(reg, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 2 {
		t.Fatalf("failed = %d, want 2", rep.Failed())
	}
	if rep.Results[0].Failed() || rep.Results[0].Text != "fine" {
		t.Fatalf("healthy job corrupted: %+v", rep.Results[0])
	}
	if rep.Results[1].Err != "boom" {
		t.Fatalf("error not captured: %q", rep.Results[1].Err)
	}
	if !strings.Contains(rep.Results[2].Err, "kaboom") {
		t.Fatalf("panic not captured: %q", rep.Results[2].Err)
	}
	joined := rep.Err()
	if joined == nil {
		t.Fatal("Report.Err must be non-nil")
	}
	for _, frag := range []string{"fails: boom", "panics:"} {
		if !strings.Contains(joined.Error(), frag) {
			t.Fatalf("joined error missing %q: %v", frag, joined)
		}
	}
}

func TestWorkerPoolRunsJobsInParallel(t *testing.T) {
	const n = 4
	reg := NewRegistry()
	// Every job blocks until all n are running at once; the run can only
	// finish if the pool really executes them concurrently.
	var barrier sync.WaitGroup
	barrier.Add(n)
	for i := 0; i < n; i++ {
		err := reg.Register(Job{Name: fmt.Sprintf("j%d", i), Run: func(ctx Context) (Output, error) {
			barrier.Done()
			done := make(chan struct{})
			go func() { barrier.Wait(); close(done) }()
			select {
			case <-done:
				return Output{Text: "met"}, nil
			case <-time.After(10 * time.Second):
				return Output{}, errors.New("barrier never met: jobs did not overlap")
			}
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Run(reg, Options{Workers: n})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Workers != n {
		t.Fatalf("workers = %d", rep.Workers)
	}
}

func TestCacheReplaysResults(t *testing.T) {
	reg := NewRegistry()
	var runs, failRuns int32
	var mu sync.Mutex
	must := func(j Job) {
		if err := reg.Register(j); err != nil {
			t.Fatal(err)
		}
	}
	must(Job{Name: "cached", Key: "cached@deadbeef", Run: func(Context) (Output, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		return Output{Text: "expensive"}, nil
	}})
	must(Job{Name: "failing", Key: "failing@deadbeef", Run: func(Context) (Output, error) {
		mu.Lock()
		failRuns++
		mu.Unlock()
		return Output{}, errors.New("transient")
	}})
	must(Job{Name: "unkeyed", Run: func(Context) (Output, error) { return Output{Text: "x"}, nil }})

	cache := NewCache()
	for pass := 0; pass < 2; pass++ {
		rep, err := Run(reg, Options{Workers: 2, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Results[0].Text != "expensive" {
			t.Fatalf("pass %d: text %q", pass, rep.Results[0].Text)
		}
		if want := pass == 1; rep.Results[0].Cached != want {
			t.Fatalf("pass %d: cached = %v", pass, rep.Results[0].Cached)
		}
	}
	if runs != 1 {
		t.Fatalf("cached job ran %d times, want 1", runs)
	}
	if failRuns != 2 {
		t.Fatalf("failing job ran %d times, want 2 (failures must not cache)", failRuns)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", cache.Len())
	}
}

func TestSameKeyJobsSingleFlight(t *testing.T) {
	reg := NewRegistry()
	var mu sync.Mutex
	runs := 0
	for i := 0; i < 4; i++ {
		err := reg.Register(Job{Name: fmt.Sprintf("sf%d", i), Key: "shared@key", Run: func(Context) (Output, error) {
			mu.Lock()
			runs++
			mu.Unlock()
			time.Sleep(30 * time.Millisecond) // widen the overlap window
			return Output{Text: "shared"}, nil
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Run(reg, Options{Workers: 4, Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("shared-key job computed %d times, want 1 (single-flight)", runs)
	}
	cached := 0
	for _, r := range rep.Results {
		if r.Text != "shared" {
			t.Fatalf("%s: text %q", r.Name, r.Text)
		}
		if r.Seed != JobSeed(0, r.Name) {
			t.Fatalf("%s: replay must carry the job's own seed", r.Name)
		}
		if r.Cached {
			cached++
		}
	}
	if cached != 3 {
		t.Fatalf("cached = %d, want 3", cached)
	}
}

func TestSameKeyFailuresDoNotDeadlockOrCache(t *testing.T) {
	reg := NewRegistry()
	var mu sync.Mutex
	runs := 0
	for i := 0; i < 3; i++ {
		err := reg.Register(Job{Name: fmt.Sprintf("bad%d", i), Key: "doomed@key", Run: func(Context) (Output, error) {
			mu.Lock()
			runs++
			mu.Unlock()
			return Output{}, errors.New("always fails")
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Run(reg, Options{Workers: 3, Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 3 {
		t.Fatalf("failed = %d, want 3", rep.Failed())
	}
	if runs != 3 {
		t.Fatalf("runs = %d, want 3 (failures are never replayed)", runs)
	}
}

func TestOnDoneObservesEveryJob(t *testing.T) {
	reg := seededRegistry(t, 10)
	var mu sync.Mutex
	seen := map[string]bool{}
	_, err := Run(reg, Options{Workers: 4, OnDone: func(r Result) {
		mu.Lock()
		seen[r.Name] = true
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 10 {
		t.Fatalf("OnDone saw %d jobs, want 10", len(seen))
	}
}

func TestJobSeedStableAndDistinct(t *testing.T) {
	if JobSeed(1, "a") != JobSeed(1, "a") {
		t.Fatal("seed must be deterministic")
	}
	if JobSeed(1, "a") == JobSeed(1, "b") {
		t.Fatal("different jobs must get different seeds")
	}
	if JobSeed(1, "a") == JobSeed(2, "a") {
		t.Fatal("different base seeds must differ")
	}
}

func TestReportRendering(t *testing.T) {
	reg := NewRegistry()
	must := func(j Job) {
		if err := reg.Register(j); err != nil {
			t.Fatal(err)
		}
	}
	must(Job{Name: "t1", Title: "table one", Run: func(Context) (Output, error) {
		return Output{Text: "row A\n", Data: map[string]int{"rows": 1}}, nil
	}})
	must(Job{Name: "t2", Run: func(Context) (Output, error) { return Output{}, errors.New("nope") }})

	rep, err := Run(reg, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Text()
	for _, frag := range []string{"=== t1", "row A", "=== t2", "ERROR: nope", "2 jobs, 1 failed, 0 cached, 1 workers"} {
		if !strings.Contains(text, frag) {
			t.Fatalf("report text missing %q:\n%s", frag, text)
		}
	}
	buf, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"name": "t1"`, `"rows": 1`, `"error": "nope"`, `"workers": 1`} {
		if !strings.Contains(string(buf), frag) {
			t.Fatalf("JSON missing %q:\n%s", frag, buf)
		}
	}
}
