package engine

import (
	"context"
	"sync"
	"testing"
)

// fakeRemote is an in-memory RemoteCache that counts its calls.
type fakeRemote struct {
	mu       sync.Mutex
	m        map[string]Result
	lookups  int
	acquires int
	stores   int
}

func newFakeRemote() *fakeRemote { return &fakeRemote{m: make(map[string]Result)} }

func (f *fakeRemote) Lookup(_ context.Context, key string) (Result, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lookups++
	r, ok := f.m[key]
	return r, ok
}

func (f *fakeRemote) Acquire(_ context.Context, key string) (Result, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.acquires++
	r, ok := f.m[key]
	return r, ok
}

func (f *fakeRemote) Store(_ context.Context, key string, r Result) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stores++
	f.m[key] = r
}

func (f *fakeRemote) counts() (lookups, acquires, stores int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lookups, f.acquires, f.stores
}

// TestCachePeekConsultsRemoteAndAdmits proves the lookup order memory →
// remote, and that a remote hit is admitted locally so the next peek
// stays local.
func TestCachePeekConsultsRemoteAndAdmits(t *testing.T) {
	rem := newFakeRemote()
	rem.m["k"] = Result{Name: "k", Text: "remote"}
	c := NewCache()
	c.SetRemote(rem)

	r, ok := c.peek(context.Background(), "k")
	if !ok || r.Text != "remote" {
		t.Fatalf("peek via remote: ok=%v r=%+v", ok, r)
	}
	if r, ok = c.peek(context.Background(), "k"); !ok || r.Text != "remote" {
		t.Fatalf("second peek: ok=%v r=%+v", ok, r)
	}
	if lookups, _, _ := rem.counts(); lookups != 1 {
		t.Fatalf("remote lookups %d, want 1 (admitted result must serve locally)", lookups)
	}
}

// TestCacheFinishWritesThroughToRemote proves a locally computed
// success becomes visible fleet-wide exactly once, and that failures
// never reach the remote tier.
func TestCacheFinishWritesThroughToRemote(t *testing.T) {
	rem := newFakeRemote()
	c := NewCache()
	c.SetRemote(rem)

	if _, hit := c.begin(context.Background(), "k"); hit {
		t.Fatal("empty cache must hand the computation to the caller")
	}
	c.finish("k", Result{Name: "k", Text: "computed"})
	if _, acquires, stores := rem.counts(); acquires != 1 || stores != 1 {
		t.Fatalf("acquires=%d stores=%d, want 1/1", acquires, stores)
	}
	// A duplicate finish (sharded merge path) must not re-store.
	c.finish("k", Result{Name: "k", Text: "computed"})
	if _, _, stores := rem.counts(); stores != 1 {
		t.Fatalf("duplicate finish re-stored (stores=%d)", stores)
	}

	if _, hit := c.begin(context.Background(), "fail"); hit {
		t.Fatal("unexpected hit")
	}
	c.finish("fail", Result{Name: "fail", Err: "boom"})
	if _, _, stores := rem.counts(); stores != 1 {
		t.Fatalf("failure was written through (stores=%d)", stores)
	}
}

// TestCacheBeginAdmitsRemoteResultWithoutEcho proves a result another
// machine computed (returned by Acquire) is served as a hit and cached
// locally, without being written back to the remote.
func TestCacheBeginAdmitsRemoteResultWithoutEcho(t *testing.T) {
	rem := newFakeRemote()
	rem.m["k"] = Result{Name: "k", Text: "theirs"}
	c := NewCache()
	c.SetRemote(rem)

	r, hit := c.begin(context.Background(), "k")
	if !hit || r.Text != "theirs" {
		t.Fatalf("begin over remote result: hit=%v r=%+v", hit, r)
	}
	if _, _, stores := rem.counts(); stores != 0 {
		t.Fatalf("remote result echoed back (stores=%d)", stores)
	}
	// Served locally from here on.
	if r, hit = c.begin(context.Background(), "k"); !hit || r.Text != "theirs" {
		t.Fatalf("second begin: hit=%v r=%+v", hit, r)
	}
	if _, acquires, _ := rem.counts(); acquires != 1 {
		t.Fatalf("remote acquires %d, want 1", acquires)
	}
}
