package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// countingRegistry registers n keyed jobs whose executions are tallied.
func countingRegistry(t *testing.T, n int, runs *int, mu *sync.Mutex) *Registry {
	t.Helper()
	reg := NewRegistry()
	for i := 0; i < n; i++ {
		i := i
		err := reg.Register(Job{
			Name: fmt.Sprintf("job%02d", i),
			Key:  fmt.Sprintf("job%02d@hash", i),
			Run: func(ctx Context) (Output, error) {
				mu.Lock()
				*runs++
				mu.Unlock()
				return Output{
					Text: fmt.Sprintf("out-%d", i),
					Data: map[string]any{"i": i, "seed": ctx.Seed},
				}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

// TestDiskCachePersistsAcrossProcesses simulates two processes by opening
// the same cache dir twice: the second run must serve everything from
// disk, computing nothing.
func TestDiskCachePersistsAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	runs := 0

	cold, err := OpenDiskCache(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	coldRep, err := Run(countingRegistry(t, 5, &runs, &mu), Options{Workers: 2, Cache: cold})
	if err != nil {
		t.Fatal(err)
	}
	if err := coldRep.Err(); err != nil {
		t.Fatal(err)
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}
	if runs != 5 {
		t.Fatalf("cold run computed %d jobs, want 5", runs)
	}

	warm, err := OpenDiskCache(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if warm.Len() != 5 {
		t.Fatalf("warm cache loaded %d entries, want 5", warm.Len())
	}
	warmRep, err := Run(countingRegistry(t, 5, &runs, &mu), Options{Workers: 2, Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	if err := warmRep.Err(); err != nil {
		t.Fatal(err)
	}
	if runs != 5 {
		t.Fatalf("warm run recomputed jobs: runs = %d, want 5", runs)
	}
	if warmRep.CachedCount() != 5 {
		t.Fatalf("warm run cached %d of 5", warmRep.CachedCount())
	}
	for i, r := range warmRep.Results {
		if r.Text != coldRep.Results[i].Text {
			t.Fatalf("%s: text diverged: %q vs %q", r.Name, r.Text, coldRep.Results[i].Text)
		}
	}
	// The JSON report must render replayed Data byte-identically (Data is
	// kept as raw JSON, preserving the original field order).
	coldJSON, err := coldRep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	warmJSON, err := warmRep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	strip := func(b []byte) string {
		var rep map[string]any
		if err := json.Unmarshal(b, &rep); err != nil {
			t.Fatal(err)
		}
		// durations/wall/cached differ by construction; compare data+text.
		var keep []string
		for _, r := range rep["results"].([]any) {
			m := r.(map[string]any)
			keep = append(keep, fmt.Sprint(m["name"], m["text"], m["data"]))
		}
		return strings.Join(keep, "\n")
	}
	if strip(coldJSON) != strip(warmJSON) {
		t.Fatalf("JSON payloads diverged:\n%s\nvs\n%s", coldJSON, warmJSON)
	}
}

// TestDiskCacheVersionStampInvalidates: entries written under one code
// version must be invisible to a cache opened under another.
func TestDiskCacheVersionStampInvalidates(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	runs := 0

	c1, err := OpenDiskCache(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(countingRegistry(t, 3, &runs, &mu), Options{Cache: c1}); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	c2, err := OpenDiskCache(dir, "v2")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 0 {
		t.Fatalf("v2 cache loaded %d stale v1 entries", c2.Len())
	}
	rep, err := Run(countingRegistry(t, 3, &runs, &mu), Options{Cache: c2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CachedCount() != 0 || runs != 6 {
		t.Fatalf("stale entries replayed: cached=%d runs=%d", rep.CachedCount(), runs)
	}
}

// TestDiskCacheCorruptionIsAMiss is the corruption regression: truncated
// and garbage cache files must degrade to misses, never to errors.
func TestDiskCacheCorruptionIsAMiss(t *testing.T) {
	var mu sync.Mutex

	seedDir := func(t *testing.T) string {
		dir := t.TempDir()
		runs := 0
		c, err := OpenDiskCache(dir, "v1")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(countingRegistry(t, 4, &runs, &mu), Options{Cache: c}); err != nil {
			t.Fatal(err)
		}
		c.Close()
		return dir
	}
	path := func(dir string) string { return filepath.Join(dir, "results.jsonl") }

	cases := []struct {
		desc     string
		corrupt  func(t *testing.T, p string)
		wantWarm int // entries that must survive
	}{
		{
			desc: "truncated mid-line tail",
			corrupt: func(t *testing.T, p string) {
				b, err := os.ReadFile(p)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(p, b[:len(b)-len(b)/3], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantWarm: 1, // at least the first full lines survive
		},
		{
			desc: "pure garbage file",
			corrupt: func(t *testing.T, p string) {
				if err := os.WriteFile(p, []byte("\x00\xff not json at all\n{half"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantWarm: 0,
		},
		{
			desc: "garbage lines interleaved with good ones",
			corrupt: func(t *testing.T, p string) {
				b, err := os.ReadFile(p)
				if err != nil {
					t.Fatal(err)
				}
				lines := strings.Split(strings.TrimSpace(string(b)), "\n")
				var out []string
				for i, l := range lines {
					out = append(out, l)
					if i == 0 {
						out = append(out, `{"version":`, "** binary junk **")
					}
				}
				if err := os.WriteFile(p, []byte(strings.Join(out, "\n")+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantWarm: 4,
		},
	}
	for _, c := range cases {
		t.Run(c.desc, func(t *testing.T) {
			dir := seedDir(t)
			c.corrupt(t, path(dir))
			cache, err := OpenDiskCache(dir, "v1")
			if err != nil {
				t.Fatalf("corrupt cache must open cleanly: %v", err)
			}
			defer cache.Close()
			if cache.Len() < c.wantWarm {
				t.Fatalf("loaded %d entries, want >= %d", cache.Len(), c.wantWarm)
			}
			// The damaged dir must still work end to end: misses recompute
			// and the run succeeds.
			runs := 0
			rep, err := Run(countingRegistry(t, 4, &runs, &mu), Options{Cache: cache})
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Err(); err != nil {
				t.Fatalf("run over corrupt cache failed: %v", err)
			}
			if rep.CachedCount()+runs != 4 {
				t.Fatalf("cached %d + computed %d != 4", rep.CachedCount(), runs)
			}
		})
	}
}

// TestDiskCacheShardReuse: a warm process replays a sharded job wholesale;
// deleting the merged entry still leaves per-shard entries, so only the
// merge recomputes.
func TestDiskCacheShardedWarmRun(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	runs := 0
	build := func() *Registry {
		reg := NewRegistry()
		var shards []Shard
		for i := 0; i < 3; i++ {
			i := i
			shards = append(shards, Shard{
				Name: fmt.Sprintf("s%d", i),
				Run: func(Context) (Output, error) {
					mu.Lock()
					runs++
					mu.Unlock()
					return Output{Data: []int{i, i * i}}, nil
				},
			})
		}
		err := reg.Register(ShardedJob("grid", "", "grid@hash", shards,
			func(_ Context, outs []Output) (Output, error) {
				var b strings.Builder
				for _, o := range outs {
					var v []int
					if err := DecodeData(o.Data, &v); err != nil {
						return Output{}, err
					}
					fmt.Fprintf(&b, "%v\n", v)
				}
				return Output{Text: b.String()}, nil
			}))
		if err != nil {
			t.Fatal(err)
		}
		return reg
	}

	cold, err := OpenDiskCache(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	coldRep, err := Run(build(), Options{Workers: 3, Cache: cold})
	if err != nil {
		t.Fatal(err)
	}
	if err := coldRep.Err(); err != nil {
		t.Fatal(err)
	}
	cold.Close()
	if runs != 3 {
		t.Fatalf("cold computed %d shards, want 3", runs)
	}

	warm, err := OpenDiskCache(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	// 3 shard entries + 1 merged entry.
	if warm.Len() != 4 {
		t.Fatalf("warm cache holds %d entries, want 4", warm.Len())
	}
	warmRep, err := Run(build(), Options{Workers: 3, Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 3 {
		t.Fatalf("warm run recomputed shards: %d", runs)
	}
	if !warmRep.Results[0].Cached {
		t.Fatal("warm sharded job must report cached")
	}
	if warmRep.Results[0].Text != coldRep.Results[0].Text {
		t.Fatalf("warm text diverged:\n%q\nvs\n%q", warmRep.Results[0].Text, coldRep.Results[0].Text)
	}
}
