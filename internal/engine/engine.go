// Package engine schedules the repository's experiments as named,
// independent jobs and dispatches them through a pluggable Executor.
//
// The harness in internal/experiments regenerates every table and figure
// of the paper; each (preset, experiment) pair is registered here as one
// Job. Run executes the selected jobs concurrently with up to
// runtime.NumCPU() workers, captures per-job timing and errors, and
// collects everything into a Report that renders as text or JSON. Jobs
// must be self-contained — each builds its own victim model and
// DefendedSystem — so any subset can run in parallel without shared
// mutable state.
//
// Scheduling vs execution: Run owns selection, seeding, caching, shard
// fan-out and the deterministic merge; the Executor interface owns only
// the execution of one task (a monolithic job or a single shard),
// addressed by the api wire types. LocalExecutor resolves tasks against
// an in-process Registry; internal/remote ships the same TaskSpecs to
// worker daemons over HTTP. Because ordering, merging and caching never
// leave the scheduler, the determinism guarantees below hold under any
// executor — local pool, remote fleet, or a mix via fallback.
//
// Determinism: a job receives a Context whose Seed is derived from the
// runner's BaseSeed and the job name, so a given (BaseSeed, job) pair
// always sees the same RNG stream regardless of worker count or
// scheduling order. Results are reported in registration order, never in
// completion order.
//
// Caching: a Job may carry a Key (the experiments layer uses
// "<experiment>@<preset hash>"). When the Runner is given a Cache,
// successful results are memoised under that key and replayed on the next
// run instead of recomputed.
//
// Worker budget: the pool shares the process-wide budget of internal/par
// with the tensor/nn compute kernels. A worker reserves one budget token
// per unit of work (non-blocking, so an explicit Workers count is always
// honoured), and the kernels inside a job claim only the remainder: a
// saturated pool runs serial kernels, while a lone job fans its GEMMs
// out across every idle core.
package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"path"
	"sort"
	"sync"
)

// Context carries per-job execution metadata into a Job's Run function.
type Context struct {
	// Name is the registered job name, e.g. "small/fig8a".
	Name string
	// Seed is the deterministic per-job RNG seed: a hash of the
	// runner's BaseSeed and Name. Two runs with the same BaseSeed hand
	// every job the same seed no matter how many workers execute.
	Seed uint64
	// Ctx is the run's cancellation context. The engine always populates
	// it (falling back to context.Background() when Options.Ctx is nil);
	// a Context built by hand in tests may leave it nil, so poll via
	// Canceled rather than Ctx directly.
	Ctx context.Context
	// Progress, when non-nil, receives coarse heartbeats from long
	// phases (epochs, search iterations). Jobs report via Report, which
	// tolerates a nil callback, so instrumented code costs nothing when
	// nobody is listening. Callbacks must be cheap and non-blocking —
	// they run on the job's goroutine.
	Progress func(stage string, done, total int)
}

// Report emits one progress heartbeat, if anyone is listening. done of
// total units of the named stage are complete (total 0 = unknown).
func (c Context) Report(stage string, done, total int) {
	if c.Progress != nil {
		c.Progress(stage, done, total)
	}
}

// progressKey keys the progress reporter in a context.Context.
type progressKey struct{}

// WithProgress returns a context carrying a progress reporter. The
// executor attaches the job's reporter to Context.Ctx with it, so
// library code that only receives the cancellation context (e.g. a
// training loop behind several call layers) can still heartbeat.
func WithProgress(ctx context.Context, f func(stage string, done, total int)) context.Context {
	if ctx == nil || f == nil {
		return ctx
	}
	return context.WithValue(ctx, progressKey{}, f)
}

// ProgressFromContext extracts the reporter installed by WithProgress,
// or nil when nobody is listening.
func ProgressFromContext(ctx context.Context) func(stage string, done, total int) {
	if ctx == nil {
		return nil
	}
	f, _ := ctx.Value(progressKey{}).(func(stage string, done, total int))
	return f
}

// Canceled reports the run's cancellation error, if any. Long-running
// jobs should poll it between iterations so Ctrl-C on the CLI stops
// in-flight work instead of only the not-yet-started tail.
func (c Context) Canceled() error {
	if c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

// Output is what a job produces: a human-readable rendering and an
// optional structured payload for the JSON report.
type Output struct {
	// Text is the paper-style table or curve data.
	Text string
	// Data is marshalled into the JSON report verbatim.
	Data any
}

// Job is one independent, schedulable unit of work. A job is either
// monolithic (Run set) or sharded (Shards + Merge set): a sharded job's
// shards are scheduled as independent units on the same worker pool, and
// once the last shard finishes Merge deterministically assembles the
// shard outputs — in shard order, never completion order — into the
// job's single Result, so reports are byte-identical at any worker count.
type Job struct {
	// Name is the unique identifier, conventionally "<preset>/<experiment>".
	Name string
	// Title is a one-line human description shown by listings.
	Title string
	// Key is the result-cache key; empty disables caching for this job.
	// The experiments layer keys by experiment id + preset hash so a
	// preset change invalidates the cached result. Sharded jobs
	// additionally cache each shard under Key + "/" + shard name, so a
	// partial re-run recomputes only the missing shards.
	Key string
	// Run executes a monolithic job. It must be safe to call concurrently
	// with every other registered job's Run. Mutually exclusive with
	// Shards.
	Run func(Context) (Output, error)
	// Shards, when non-empty, split the job into independently scheduled
	// slices (per curve, per grid point). Every shard must be safe to run
	// concurrently with every other shard and job.
	Shards []Shard
	// Merge combines the shard outputs (indexed like Shards) into the
	// job's Output. It must be deterministic: shard Data may arrive as
	// the live typed value or as json.RawMessage replayed from the
	// persistent cache — decode it with DecodeData, which normalises
	// both. Required when Shards is non-empty.
	Merge func(Context, []Output) (Output, error)
}

// Shard is one independent slice of a sharded job.
type Shard struct {
	// Name suffixes the job name ("<job>/<shard>") for seeding and the
	// cache key; it must be unique within the job and stable across runs.
	Name string
	// Run computes the shard. Output.Data is the payload handed to the
	// job's Merge; it must be JSON-marshalable so it can persist.
	Run func(Context) (Output, error)
}

// ShardedJob assembles a sharded Job (the grid-experiment constructor).
func ShardedJob(name, title, key string, shards []Shard, merge func(Context, []Output) (Output, error)) Job {
	return Job{Name: name, Title: title, Key: key, Shards: shards, Merge: merge}
}

// Registry holds an ordered set of uniquely named jobs.
type Registry struct {
	mu     sync.Mutex
	jobs   []Job
	byName map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// Register adds a job. Names must be unique; a job carries either Run
// (monolithic) or Shards+Merge (sharded), never both.
func (r *Registry) Register(j Job) error {
	if j.Name == "" {
		return fmt.Errorf("engine: job has no name")
	}
	if len(j.Shards) > 0 {
		if j.Run != nil {
			return fmt.Errorf("engine: job %q sets both Run and Shards", j.Name)
		}
		if j.Merge == nil {
			return fmt.Errorf("engine: sharded job %q has no Merge function", j.Name)
		}
		seen := make(map[string]bool, len(j.Shards))
		for _, s := range j.Shards {
			if s.Name == "" {
				return fmt.Errorf("engine: job %q has an unnamed shard", j.Name)
			}
			if s.Run == nil {
				return fmt.Errorf("engine: job %q shard %q has no Run function", j.Name, s.Name)
			}
			if seen[s.Name] {
				return fmt.Errorf("engine: job %q has duplicate shard %q", j.Name, s.Name)
			}
			seen[s.Name] = true
		}
	} else if j.Run == nil {
		return fmt.Errorf("engine: job %q has no Run function", j.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[j.Name]; dup {
		return fmt.Errorf("engine: duplicate job %q", j.Name)
	}
	r.byName[j.Name] = len(r.jobs)
	r.jobs = append(r.jobs, j)
	return nil
}

// Get returns the job registered under name, resolving a TaskSpec's job
// field to its closures (the LocalExecutor and the worker daemon both
// depend on this lookup).
func (r *Registry) Get(name string) (Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.byName[name]
	if !ok {
		return Job{}, false
	}
	return r.jobs[i], true
}

// Jobs returns the registered jobs in registration order.
func (r *Registry) Jobs() []Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Job, len(r.jobs))
	copy(out, r.jobs)
	return out
}

// Names returns the registered job names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.jobs))
	for i, j := range r.jobs {
		names[i] = j.Name
	}
	return names
}

// Len reports how many jobs are registered.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.jobs)
}

// Select returns the jobs matched by the filter patterns, in registration
// order. Each pattern is an exact name, a path.Match glob ("*/fig8*"), or
// the keyword "all". Empty patterns select everything. Unknown patterns —
// ones matching no job — are reported as an error so typos fail loudly.
func (r *Registry) Select(patterns []string) ([]Job, error) {
	jobs := r.Jobs()
	if len(patterns) == 0 {
		return jobs, nil
	}
	picked := make([]bool, len(jobs))
	for _, pat := range patterns {
		if pat == "" || pat == "all" {
			for i := range picked {
				picked[i] = true
			}
			continue
		}
		hit := false
		for i, j := range jobs {
			ok, err := path.Match(pat, j.Name)
			if err != nil {
				return nil, fmt.Errorf("engine: bad filter %q: %w", pat, err)
			}
			if ok || pat == j.Name {
				picked[i] = true
				hit = true
			}
		}
		if !hit {
			return nil, fmt.Errorf("engine: filter %q matches no job (have: %v)", pat, r.Names())
		}
	}
	var out []Job
	for i, j := range jobs {
		if picked[i] {
			out = append(out, j)
		}
	}
	return out, nil
}

// JobSeed derives the deterministic per-job seed from a base seed and the
// job name (FNV-1a over both).
func JobSeed(base uint64, name string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(base >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(name))
	return h.Sum64()
}

// SortedNames returns job names sorted lexically (for stable listings).
func SortedNames(jobs []Job) []string {
	names := make([]string, len(jobs))
	for i, j := range jobs {
		names[i] = j.Name
	}
	sort.Strings(names)
	return names
}
