package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
)

// DecodeData extracts a shard payload into dst. A Merge function sees
// shard Data in one of two shapes: the live typed value a shard just
// produced (or replayed from the in-process cache), or json.RawMessage
// replayed from the persistent cache. Both are normalised through one
// JSON round-trip, so a merge observes identical values either way and
// its output stays byte-identical between cold and warm runs.
func DecodeData(v any, dst any) error {
	var raw []byte
	switch d := v.(type) {
	case nil:
		return fmt.Errorf("engine: shard produced no data")
	case json.RawMessage:
		raw = d
	case []byte:
		raw = d
	default:
		b, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("engine: shard data not JSON-marshalable: %w", err)
		}
		raw = b
	}
	return json.Unmarshal(raw, dst)
}

// shardState accumulates one sharded job's in-flight shard outcomes.
type shardState struct {
	mu      sync.Mutex
	pending int
	outs    []Output
	errs    []string
	durs    []time.Duration
	hits    int
}

func newShardState(n int) *shardState {
	return &shardState{
		pending: n,
		outs:    make([]Output, n),
		errs:    make([]string, n),
		durs:    make([]time.Duration, n),
	}
}

// record stores shard i's outcome and reports whether it was the last
// shard to finish (the caller then owns the merge).
func (st *shardState) record(i int, out Output, errStr string, d time.Duration, hit bool) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.outs[i], st.errs[i], st.durs[i] = out, errStr, d
	if hit {
		st.hits++
	}
	st.pending--
	return st.pending == 0
}

// runShard executes (or replays from cache) shard si of job j through the
// executor and records the outcome. The return value is true when this
// was the job's last outstanding shard. Shards are cached individually
// under "<job key>/<shard name>", so a job whose preset hash is unchanged
// recomputes only the shards missing from the cache.
func runShard(ctx context.Context, exec Executor, j Job, si int, st *shardState, opts Options) bool {
	sh := j.Shards[si]
	name := j.Name + "/" + sh.Name
	seed := JobSeed(opts.BaseSeed, name)
	var key string
	if j.Key != "" {
		key = seededKey(j.Key+"/"+sh.Name, opts.BaseSeed)
	}
	if cached, hit := opts.Cache.begin(ctx, key); hit {
		return st.record(si, Output{Text: cached.Text, Data: cached.Data}, "", cached.Duration, true)
	}

	spec := api.TaskSpec{Proto: api.Version, Job: j.Name, Shard: si, Seed: seed, Key: j.Key, CacheKey: key}
	out, errStr, d := executeTask(ctx, exec, spec)
	res := Result{Name: name, Seed: seed, Duration: d, Err: errStr}
	if errStr == "" {
		res.Text, res.Data = out.Text, out.Data
	}
	opts.Cache.finish(key, res)
	return st.record(si, out, res.Err, res.Duration, false)
}

// mergeShards assembles the completed shards of j into its single Result.
// Shard outputs are passed to Merge in shard order regardless of which
// worker finished when, so the merged result — and therefore the report —
// is identical at any worker count. A successful merge is cached under
// the job's own key, giving the next run an O(1) whole-job replay; the
// result counts as Cached when every shard was replayed (no new compute).
func mergeShards(ctx context.Context, j Job, st *shardState, opts Options) Result {
	res := Result{Name: j.Name, Title: j.Title, Seed: JobSeed(opts.BaseSeed, j.Name)}
	var total time.Duration
	for _, d := range st.durs {
		total += d
	}
	var errs []string
	for i, e := range st.errs {
		if e != "" {
			errs = append(errs, fmt.Sprintf("shard %s: %s", j.Shards[i].Name, e))
		}
	}
	if len(errs) > 0 {
		res.Err = strings.Join(errs, "; ")
		res.Duration = total
		return res
	}

	start := time.Now()
	out, err := runProtected(func(c Context) (Output, error) {
		return j.Merge(c, st.outs)
	}, Context{Name: j.Name, Seed: res.Seed, Ctx: ctx})
	res.Duration = total + time.Since(start)
	if err != nil {
		res.Err = fmt.Sprintf("merge: %s", err)
		return res
	}
	res.Text, res.Data = out.Text, out.Data
	res.Cached = st.hits == len(j.Shards)

	stored := res
	stored.Cached = false // replays set the flag; the stored form is canonical
	opts.Cache.finish(seededKey(j.Key, opts.BaseSeed), stored)
	return res
}

// runProtected invokes a shard or merge function converting panics to
// errors.
func runProtected(run func(Context) (Output, error), ctx Context) (out Output, err error) {
	defer func() {
		if p := recover(); p != nil {
			out, err = Output{}, fmt.Errorf("panic: %v", p)
		}
	}()
	return run(ctx)
}
