package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/par"
)

// Options configures one Runner pass.
type Options struct {
	// Workers bounds pool size; <=0 means runtime.NumCPU().
	Workers int
	// Filter selects jobs by exact name or path.Match glob; empty runs
	// everything (see Registry.Select).
	Filter []string
	// BaseSeed feeds the per-job seed derivation (JobSeed).
	BaseSeed uint64
	// Cache, when non-nil, replays previously computed results for jobs
	// with a non-empty Key and stores new successes. Use NewCache for a
	// process-local cache or OpenDiskCache for one persisted across
	// processes.
	Cache *Cache
	// OnDone, when non-nil, is invoked once per job as it finishes (a
	// sharded job reports once, after its merge). Calls are serialised;
	// the callback must not invoke the Runner re-entrantly.
	OnDone func(Result)
	// Ctx cancels the pass: in-flight tasks observe it through
	// Context.Ctx (and remote dispatches abort their HTTP calls), queued
	// tasks fail fast with the cancellation error instead of starting.
	// Nil means context.Background() (never cancelled).
	Ctx context.Context
	// Executor runs the individual tasks. Nil means a LocalExecutor over
	// the registry — the in-process worker-pool behavior. Scheduling,
	// seeding, caching and merging stay in Run regardless, so reports are
	// byte-identical under any executor.
	Executor Executor
}

// Run executes the selected jobs from reg on a bounded worker pool and
// returns the Report. Monolithic jobs are one schedulable unit each;
// sharded jobs contribute one unit per shard, all interleaved on the same
// pool, with the last shard to finish running the job's merge. Each unit
// is dispatched through the Executor; job errors (including panics, which
// the executor converts) do not abort the pass — every selected job runs,
// and the failures surface in the Report and via Report.Err. The returned
// error is reserved for configuration problems (bad filter).
func Run(reg *Registry, opts Options) (*Report, error) {
	jobs, err := reg.Select(opts.Filter)
	if err != nil {
		return nil, err
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	exec := opts.Executor
	if exec == nil {
		exec = NewLocalExecutor(reg)
	}

	rep := &Report{Results: make([]Result, len(jobs))}

	var doneMu sync.Mutex
	done := func(r Result) {
		if opts.OnDone == nil {
			return
		}
		doneMu.Lock()
		defer doneMu.Unlock()
		opts.OnDone(r)
	}

	// Expand the selection into schedulable units. Whole sharded jobs
	// already present in the cache replay here, before any unit is
	// enqueued, so a fully warm run schedules nothing for them.
	var units []func()
	for i := range jobs {
		i := i
		j := jobs[i]
		if len(j.Shards) == 0 {
			units = append(units, func() {
				rep.Results[i] = runOne(ctx, exec, j, opts)
				done(rep.Results[i])
			})
			continue
		}
		if cached, hit := opts.Cache.peek(ctx, seededKey(j.Key, opts.BaseSeed)); hit {
			cached.Name, cached.Title, cached.Cached = j.Name, j.Title, true
			cached.Seed = JobSeed(opts.BaseSeed, j.Name)
			rep.Results[i] = cached
			done(rep.Results[i])
			continue
		}
		st := newShardState(len(j.Shards))
		for si := range j.Shards {
			si := si
			units = append(units, func() {
				if runShard(ctx, exec, j, si, st, opts) {
					rep.Results[i] = mergeShards(ctx, j, st, opts)
					done(rep.Results[i])
				}
			})
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(units) {
		workers = len(units)
	}
	if workers < 1 {
		workers = 1
	}
	rep.Workers = workers

	start := time.Now()
	unitCh := make(chan func())
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range unitCh {
				// Each computing worker reserves one token from the
				// global worker budget (internal/par) while it runs a
				// unit. The tensor/nn kernels inside the job draw *extra*
				// tokens from the same budget, so job-level and
				// kernel-level parallelism together do not oversubscribe
				// NumCPU: with the pool saturated the kernels run
				// serially, and with few jobs in flight they pick up the
				// idle cores. The reservation is non-blocking — an
				// explicit Workers above the budget oversubscribes
				// exactly as requested, it just leaves nothing spare for
				// the kernels.
				got := par.TryAcquire(1)
				u()
				par.ReleaseN(got)
			}
		}()
	}
	for _, u := range units {
		unitCh <- u
	}
	close(unitCh)
	wg.Wait()

	rep.Wall = time.Since(start)
	return rep, nil
}

// seededKey folds the BaseSeed into a cache key so results computed under
// one seeding regime are never replayed under another. Empty keys stay
// empty (caching disabled).
func seededKey(key string, base uint64) string {
	if key == "" {
		return ""
	}
	return fmt.Sprintf("%s#%016x", key, base)
}

// runOne executes a single monolithic job through the executor, with
// cache lookup on this side of the dispatch. Jobs that share a Key
// (preset-independent experiments) must produce identical output for a
// given BaseSeed. Same-key jobs running concurrently are single-flight:
// one computes, the others wait and replay.
func runOne(ctx context.Context, exec Executor, j Job, opts Options) Result {
	res := Result{Name: j.Name, Title: j.Title, Seed: JobSeed(opts.BaseSeed, j.Name)}

	key := seededKey(j.Key, opts.BaseSeed)
	if cached, hit := opts.Cache.begin(ctx, key); hit {
		// Replay under this job's own identity; the payload is shared,
		// the metadata is not.
		cached.Name, cached.Title, cached.Seed, cached.Cached = j.Name, j.Title, res.Seed, true
		return cached
	}

	spec := api.TaskSpec{Proto: api.Version, Job: j.Name, Shard: api.MonolithShard, Seed: res.Seed, Key: j.Key, CacheKey: key}
	out, errStr, d := executeTask(ctx, exec, spec)
	res.Duration = d
	if errStr != "" {
		res.Err = errStr
	} else {
		res.Text, res.Data = out.Text, out.Data
	}
	opts.Cache.finish(key, res)
	return res
}
