package engine

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Options configures one Runner pass.
type Options struct {
	// Workers bounds pool size; <=0 means runtime.NumCPU().
	Workers int
	// Filter selects jobs by exact name or path.Match glob; empty runs
	// everything (see Registry.Select).
	Filter []string
	// BaseSeed feeds the per-job seed derivation (JobSeed).
	BaseSeed uint64
	// Cache, when non-nil, replays previously computed results for jobs
	// with a non-empty Key and stores new successes.
	Cache *Cache
	// OnDone, when non-nil, is invoked once per job as it finishes.
	// Calls are serialised; the callback must not invoke the Runner
	// re-entrantly.
	OnDone func(Result)
}

// Run executes the selected jobs from reg on a bounded worker pool and
// returns the Report. Job errors (including panics, which are recovered
// and converted) do not abort the pass — every selected job runs, and the
// failures surface in the Report and via Report.Err. The returned error
// is reserved for configuration problems (bad filter).
func Run(reg *Registry, opts Options) (*Report, error) {
	jobs, err := reg.Select(opts.Filter)
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	rep := &Report{Workers: workers, Results: make([]Result, len(jobs))}
	start := time.Now()

	var doneMu sync.Mutex
	done := func(r Result) {
		if opts.OnDone == nil {
			return
		}
		doneMu.Lock()
		defer doneMu.Unlock()
		opts.OnDone(r)
	}

	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				rep.Results[i] = runOne(jobs[i], opts)
				done(rep.Results[i])
			}
		}()
	}
	for i := range jobs {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	rep.Wall = time.Since(start)
	return rep, nil
}

// runOne executes a single job with cache lookup and panic recovery.
// The effective cache key folds in the BaseSeed so results computed under
// one seeding regime are never replayed under another; jobs that share a
// Key (preset-independent experiments) must produce identical output for
// a given BaseSeed. Same-key jobs running concurrently are single-flight:
// one computes, the others wait and replay.
func runOne(j Job, opts Options) (res Result) {
	res = Result{Name: j.Name, Title: j.Title, Seed: JobSeed(opts.BaseSeed, j.Name)}

	key := j.Key
	if key != "" {
		key = fmt.Sprintf("%s#%016x", j.Key, opts.BaseSeed)
	}
	if cached, hit := opts.Cache.begin(key); hit {
		// Replay under this job's own identity; the payload is shared,
		// the metadata is not.
		cached.Name, cached.Title, cached.Seed, cached.Cached = j.Name, j.Title, res.Seed, true
		return cached
	}

	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			res.Err = fmt.Sprintf("panic: %v", p)
			res.Duration = time.Since(start)
		}
		opts.Cache.finish(key, res)
	}()

	out, err := j.Run(Context{Name: j.Name, Seed: res.Seed})
	res.Duration = time.Since(start)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Text, res.Data = out.Text, out.Data
	return res
}
