package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/api"
)

func execRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	must := func(j Job) {
		if err := reg.Register(j); err != nil {
			t.Fatal(err)
		}
	}
	must(Job{Name: "mono", Key: "mono@hash", Run: func(ctx Context) (Output, error) {
		return Output{Text: fmt.Sprintf("seed=%d", ctx.Seed), Data: map[string]uint64{"seed": ctx.Seed}}, nil
	}})
	must(Job{Name: "panics", Run: func(Context) (Output, error) { panic("kaboom") }})
	must(ShardedJob("grid", "", "grid@hash", []Shard{
		{Name: "s0", Run: func(ctx Context) (Output, error) { return Output{Data: ctx.Seed}, nil }},
		{Name: "s1", Run: func(ctx Context) (Output, error) { return Output{Data: ctx.Seed}, nil }},
	}, func(_ Context, outs []Output) (Output, error) {
		return Output{Text: fmt.Sprintf("%d shards", len(outs))}, nil
	}))
	return reg
}

func TestLocalExecutorRunsMonolith(t *testing.T) {
	exec := NewLocalExecutor(execRegistry(t))
	spec := api.TaskSpec{Proto: api.Version, Job: "mono", Shard: api.MonolithShard, Seed: 42, Key: "mono@hash"}
	res, err := exec.Execute(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(spec); err != nil {
		t.Fatal(err)
	}
	if res.Text != "seed=42" {
		t.Fatalf("text %q", res.Text)
	}
	var data struct {
		Seed uint64 `json:"seed"`
	}
	if err := DecodeData(res.Data, &data); err != nil || data.Seed != 42 {
		t.Fatalf("data %s (%v)", res.Data, err)
	}
	if res.DurationNS <= 0 {
		t.Fatalf("duration %d", res.DurationNS)
	}
}

func TestLocalExecutorRunsShard(t *testing.T) {
	exec := NewLocalExecutor(execRegistry(t))
	spec := api.TaskSpec{Proto: api.Version, Job: "grid", Shard: 1, Seed: 9, Key: "grid@hash"}
	res, err := exec.Execute(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var seed uint64
	if err := DecodeData(res.Data, &seed); err != nil || seed != 9 {
		t.Fatalf("shard data %s (%v)", res.Data, err)
	}
}

func TestLocalExecutorResolutionErrors(t *testing.T) {
	exec := NewLocalExecutor(execRegistry(t))
	cases := []struct {
		desc string
		spec api.TaskSpec
		frag string
	}{
		{"bad proto", api.TaskSpec{Proto: "old", Job: "mono", Shard: api.MonolithShard}, "protocol version"},
		{"unknown job", api.TaskSpec{Proto: api.Version, Job: "nosuch", Shard: api.MonolithShard}, "unknown job"},
		{"key mismatch", api.TaskSpec{Proto: api.Version, Job: "mono", Shard: api.MonolithShard, Key: "mono@OTHER"}, "cache-key mismatch"},
		{"shard out of range", api.TaskSpec{Proto: api.Version, Job: "grid", Shard: 7, Key: "grid@hash"}, "2 shards"},
		{"monolith task on sharded job", api.TaskSpec{Proto: api.Version, Job: "grid", Shard: api.MonolithShard, Key: "grid@hash"}, "cannot run as a monolithic task"},
	}
	for _, c := range cases {
		_, err := exec.Execute(context.Background(), c.spec)
		if err == nil {
			t.Errorf("%s: must fail", c.desc)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q missing %q", c.desc, err, c.frag)
		}
	}
}

// Resolution failures are Go errors (retryable elsewhere); job failures
// ride inside the TaskResult (deterministic, never retried).
func TestLocalExecutorSeparatesFailureChannels(t *testing.T) {
	exec := NewLocalExecutor(execRegistry(t))
	res, err := exec.Execute(context.Background(), api.TaskSpec{
		Proto: api.Version, Job: "panics", Shard: api.MonolithShard,
	})
	if err != nil {
		t.Fatalf("a panicking job is a task failure, not a transport error: %v", err)
	}
	if !strings.Contains(res.Err, "kaboom") {
		t.Fatalf("panic not captured in result: %q", res.Err)
	}
}

// fakeExecutor proves the scheduler is executor-agnostic: it resolves
// tasks against the registry but stamps every output, and the stamp must
// surface in the report.
type fakeExecutor struct{ local *LocalExecutor }

func (f *fakeExecutor) Execute(ctx context.Context, spec api.TaskSpec) (api.TaskResult, error) {
	res, err := f.local.Execute(ctx, spec)
	res.Text = "[via fake] " + res.Text
	return res, err
}

func TestRunWithCustomExecutor(t *testing.T) {
	reg := seededRegistry(t, 4)
	rep, err := Run(reg, Options{Workers: 2, Executor: &fakeExecutor{local: NewLocalExecutor(reg)}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if !strings.HasPrefix(r.Text, "[via fake] ") {
			t.Fatalf("%s: executor not consulted: %q", r.Name, r.Text)
		}
	}
}

// A panicking executor implementation must not take down the scheduler.
type bombExecutor struct{}

func (bombExecutor) Execute(context.Context, api.TaskSpec) (api.TaskResult, error) {
	panic("executor bug")
}

func TestRunSurvivesPanickingExecutor(t *testing.T) {
	reg := seededRegistry(t, 3)
	rep, err := Run(reg, Options{Workers: 2, Executor: bombExecutor{}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 3 {
		t.Fatalf("failed = %d, want 3", rep.Failed())
	}
	for _, r := range rep.Results {
		if !strings.Contains(r.Err, "executor panic") {
			t.Fatalf("%s: %q", r.Name, r.Err)
		}
	}
}

// TestRunReportsIdenticalAcrossExecutors is the executor-independence
// guarantee at the report level: the same registry produces identical
// normalised reports under the default local executor and a custom one.
func TestRunReportsIdenticalAcrossExecutors(t *testing.T) {
	build := func() *Registry {
		reg := seededRegistry(t, 6)
		if err := reg.Register(gridJob("grid", 5, "")); err != nil {
			t.Fatal(err)
		}
		return reg
	}
	local, err := Run(build(), Options{Workers: 4, BaseSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	reg := build()
	viaExec, err := Run(reg, Options{Workers: 4, BaseSeed: 11, Executor: NewNamedLocalExecutor(reg, "elsewhere")})
	if err != nil {
		t.Fatal(err)
	}
	if textOf(local) != textOf(viaExec) {
		t.Fatalf("reports diverged across executors:\n%s\nvs\n%s", textOf(local), textOf(viaExec))
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	reg := NewRegistry()
	must := func(j Job) {
		if err := reg.Register(j); err != nil {
			t.Fatal(err)
		}
	}
	// First job cancels the run mid-flight; with one worker the rest are
	// still queued and must fail fast without running.
	ran := 0
	must(Job{Name: "canceller", Run: func(c Context) (Output, error) {
		close(started)
		cancel()
		<-c.Ctx.Done()
		return Output{}, c.Canceled()
	}})
	for i := 0; i < 3; i++ {
		must(Job{Name: fmt.Sprintf("queued%d", i), Run: func(Context) (Output, error) {
			ran++
			return Output{Text: "should not run"}, nil
		}})
	}
	rep, err := Run(reg, Options{Workers: 1, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if rep.Failed() != 4 {
		t.Fatalf("failed = %d, want 4", rep.Failed())
	}
	if ran != 0 {
		t.Fatalf("%d queued jobs ran after cancellation", ran)
	}
	for _, r := range rep.Results {
		if !strings.Contains(r.Err, context.Canceled.Error()) {
			t.Fatalf("%s: %q", r.Name, r.Err)
		}
	}
}

func TestContextCanceledHelper(t *testing.T) {
	if err := (Context{}).Canceled(); err != nil {
		t.Fatalf("nil Ctx must read as not cancelled: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := Context{Ctx: ctx}
	if err := c.Canceled(); err != nil {
		t.Fatal(err)
	}
	cancel()
	if !errors.Is(c.Canceled(), context.Canceled) {
		t.Fatal("cancellation must surface through Canceled")
	}
}

// TestMarshalPayloadShapes pins the wire normalisation: raw payloads pass
// through byte-identically, live values marshal once.
func TestMarshalPayloadShapes(t *testing.T) {
	if b, err := marshalPayload(nil); err != nil || b != nil {
		t.Fatalf("nil: %s, %v", b, err)
	}
	raw := json.RawMessage(`{"a": 1}`)
	if b, err := marshalPayload(raw); err != nil || string(b) != string(raw) {
		t.Fatalf("raw: %s, %v", b, err)
	}
	if b, err := marshalPayload(map[string]int{"a": 1}); err != nil || string(b) != `{"a":1}` {
		t.Fatalf("live: %s, %v", b, err)
	}
	if _, err := marshalPayload(make(chan int)); err == nil {
		t.Fatal("unmarshalable payload must error")
	}
}
