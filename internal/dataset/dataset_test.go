package dataset

import (
	"math"
	"testing"
)

func TestGenerateShapesAndLabels(t *testing.T) {
	cfg := Tiny(5)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.TrainSplit.N != cfg.Train || ds.TestSplit.N != cfg.Test {
		t.Fatalf("split sizes %d/%d", ds.TrainSplit.N, ds.TestSplit.N)
	}
	per := 3 * cfg.Size * cfg.Size
	if len(ds.TrainSplit.X) != cfg.Train*per {
		t.Fatalf("X length %d", len(ds.TrainSplit.X))
	}
	for _, y := range ds.TrainSplit.Y {
		if y < 0 || y >= cfg.Classes {
			t.Fatalf("label %d out of range", y)
		}
	}
}

func TestLabelBalance(t *testing.T) {
	cfg := Tiny(4)
	cfg.Train = 400
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, cfg.Classes)
	for _, y := range ds.TrainSplit.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n != 100 {
			t.Fatalf("class %d count %d, want 100 (balanced)", c, n)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	cfg := Tiny(3)
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	for i := range a.TrainSplit.X {
		if a.TrainSplit.X[i] != b.TrainSplit.X[i] {
			t.Fatal("same seed must generate identical data")
		}
	}
	cfg.Seed++
	c, _ := Generate(cfg)
	same := true
	for i := range a.TrainSplit.X {
		if a.TrainSplit.X[i] != c.TrainSplit.X[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
}

func TestSliceReturnsViews(t *testing.T) {
	ds, _ := Generate(Tiny(3))
	b := ds.TrainSplit.Slice(4, 8)
	if b.X.Shape[0] != 4 || b.X.Shape[1] != 3 {
		t.Fatalf("batch shape %v", b.X.Shape)
	}
	if len(b.Y) != 4 {
		t.Fatalf("labels %d", len(b.Y))
	}
	// Views share storage with the split.
	per := 3 * ds.Cfg.Size * ds.Cfg.Size
	b.X.Data[0] = 42
	if ds.TrainSplit.X[4*per] != 42 {
		t.Fatal("Slice must be a view, not a copy")
	}
}

func TestSlicePanicsOnBadRange(t *testing.T) {
	ds, _ := Generate(Tiny(3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ds.TrainSplit.Slice(5, 3)
}

func TestSubset(t *testing.T) {
	ds, _ := Generate(Tiny(3))
	s := Subset(&ds.TestSplit, 10)
	if s.NumExamples() != 10 {
		t.Fatalf("subset size %d", s.NumExamples())
	}
	big := Subset(&ds.TestSplit, 1<<20)
	if big.NumExamples() != ds.TestSplit.N {
		t.Fatal("oversized subset must clamp")
	}
}

func TestSamplesCenterNearPrototypes(t *testing.T) {
	cfg := Tiny(2)
	cfg.NoiseStd = 0.05
	cfg.MaxShift = 0
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	per := 3 * cfg.Size * cfg.Size
	// With almost no noise and no shift, same-class samples are nearly
	// identical while cross-class samples differ markedly.
	var iA, iB = -1, -1
	for i, y := range ds.TrainSplit.Y {
		if y == 0 && iA < 0 {
			iA = i
		} else if y == 0 && iB < 0 {
			iB = i
		}
		if iA >= 0 && iB >= 0 {
			break
		}
	}
	dist := func(i, j int) float64 {
		var s float64
		for k := 0; k < per; k++ {
			d := float64(ds.TrainSplit.X[i*per+k] - ds.TrainSplit.X[j*per+k])
			s += d * d
		}
		return math.Sqrt(s / float64(per))
	}
	intra := dist(iA, iB)
	var iC int
	for i, y := range ds.TrainSplit.Y {
		if y == 1 {
			iC = i
			break
		}
	}
	inter := dist(iA, iC)
	if intra >= inter {
		t.Fatalf("intra-class distance %.3f must be below inter-class %.3f", intra, inter)
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{Classes: 1, Size: 16, Train: 10, Test: 10, ProtoRes: 4},
		{Classes: 3, Size: 2, Train: 10, Test: 10, ProtoRes: 2},
		{Classes: 3, Size: 16, Train: 0, Test: 10, ProtoRes: 4},
		{Classes: 3, Size: 16, Train: 10, Test: 10, NoiseStd: -1, ProtoRes: 4},
		{Classes: 3, Size: 16, Train: 10, Test: 10, ProtoRes: 32},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestStandardConfigs(t *testing.T) {
	if c := CIFAR10Like(); c.Classes != 10 || c.Size != 32 {
		t.Fatalf("CIFAR10Like = %+v", c)
	}
	if c := CIFAR100Like(); c.Classes != 100 || c.Size != 32 {
		t.Fatalf("CIFAR100Like = %+v", c)
	}
}
