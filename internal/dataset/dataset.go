// Package dataset generates the synthetic CIFAR-like data that replaces
// the real CIFAR-10/100 images (which cannot be downloaded in this offline
// reproduction; see DESIGN.md §2).
//
// Each class has a smooth random prototype image (low-resolution Gaussian
// noise bilinearly upsampled, which gives conv-friendly spatial structure).
// A sample is its class prototype plus per-sample Gaussian noise and a
// small random translation. The task difficulty is controlled by the noise
// level; the defaults give well-trained models headroom to collapse under
// attack, which is the property the BFA experiments need.
package dataset

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Config parameterises generation.
type Config struct {
	Classes int
	// Size is the square image side (CIFAR: 32).
	Size int
	// Train and Test are the split sizes.
	Train, Test int
	// NoiseStd is the per-pixel Gaussian noise added to prototypes.
	NoiseStd float64
	// MaxShift is the maximum absolute translation in pixels.
	MaxShift int
	// ProtoRes is the low resolution at which prototypes are drawn before
	// upsampling (controls spatial smoothness).
	ProtoRes int
	Seed     uint64
}

// CIFAR10Like returns a 10-class, 32x32 configuration.
func CIFAR10Like() Config {
	return Config{Classes: 10, Size: 32, Train: 2000, Test: 512,
		NoiseStd: 0.45, MaxShift: 2, ProtoRes: 8, Seed: 0xC1FA10}
}

// CIFAR100Like returns a 100-class, 32x32 configuration.
func CIFAR100Like() Config {
	return Config{Classes: 100, Size: 32, Train: 4000, Test: 1000,
		NoiseStd: 0.35, MaxShift: 2, ProtoRes: 8, Seed: 0xC1FA100}
}

// Tiny returns a fast configuration for unit tests.
func Tiny(classes int) Config {
	return Config{Classes: classes, Size: 16, Train: 160, Test: 80,
		NoiseStd: 0.35, MaxShift: 1, ProtoRes: 4, Seed: 0x7e57}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Classes <= 1:
		return fmt.Errorf("dataset: Classes must be > 1, got %d", c.Classes)
	case c.Size < 4:
		return fmt.Errorf("dataset: Size must be >= 4, got %d", c.Size)
	case c.Train <= 0 || c.Test <= 0:
		return fmt.Errorf("dataset: Train and Test must be positive")
	case c.NoiseStd < 0:
		return fmt.Errorf("dataset: NoiseStd must be >= 0")
	case c.ProtoRes < 2 || c.ProtoRes > c.Size:
		return fmt.Errorf("dataset: ProtoRes must be in [2, Size]")
	}
	return nil
}

// Split is one labelled set of images with contiguous storage.
type Split struct {
	X       []float32 // (N, 3, Size, Size) flattened
	Y       []int
	N, Size int
}

// NumExamples implements nn.BatchSource.
func (s *Split) NumExamples() int { return s.N }

// Slice implements nn.BatchSource.
func (s *Split) Slice(i, j int) nn.Batch {
	if i < 0 || j > s.N || i >= j {
		panic(fmt.Sprintf("dataset: bad slice [%d,%d) of %d", i, j, s.N))
	}
	per := 3 * s.Size * s.Size
	x := tensor.FromData(s.X[i*per:j*per], j-i, 3, s.Size, s.Size)
	return nn.Batch{X: x, Y: s.Y[i:j]}
}

// Dataset is a generated train/test pair plus the class prototypes.
type Dataset struct {
	Cfg        Config
	TrainSplit Split
	TestSplit  Split
	prototypes []float32 // (Classes, 3, Size, Size)
}

// Generate builds the dataset deterministically from the config seed.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	d := &Dataset{Cfg: cfg}
	per := 3 * cfg.Size * cfg.Size
	d.prototypes = make([]float32, cfg.Classes*per)
	for c := 0; c < cfg.Classes; c++ {
		drawPrototype(d.prototypes[c*per:(c+1)*per], cfg, rng)
	}
	d.TrainSplit = d.sample(cfg.Train, rng.Fork())
	d.TestSplit = d.sample(cfg.Test, rng.Fork())
	return d, nil
}

// drawPrototype fills dst with a smooth random image in [-1, 1].
func drawPrototype(dst []float32, cfg Config, rng *stats.RNG) {
	lowPer := cfg.ProtoRes * cfg.ProtoRes
	low := make([]float64, 3*lowPer)
	for i := range low {
		low[i] = rng.Normal(0, 1)
	}
	// Bilinear upsample each channel to Size x Size.
	scale := float64(cfg.ProtoRes-1) / float64(cfg.Size-1)
	for ch := 0; ch < 3; ch++ {
		lp := low[ch*lowPer : (ch+1)*lowPer]
		for y := 0; y < cfg.Size; y++ {
			fy := float64(y) * scale
			y0 := int(fy)
			y1 := y0 + 1
			if y1 >= cfg.ProtoRes {
				y1 = cfg.ProtoRes - 1
			}
			wy := fy - float64(y0)
			for x := 0; x < cfg.Size; x++ {
				fx := float64(x) * scale
				x0 := int(fx)
				x1 := x0 + 1
				if x1 >= cfg.ProtoRes {
					x1 = cfg.ProtoRes - 1
				}
				wx := fx - float64(x0)
				v := lp[y0*cfg.ProtoRes+x0]*(1-wy)*(1-wx) +
					lp[y0*cfg.ProtoRes+x1]*(1-wy)*wx +
					lp[y1*cfg.ProtoRes+x0]*wy*(1-wx) +
					lp[y1*cfg.ProtoRes+x1]*wy*wx
				dst[(ch*cfg.Size+y)*cfg.Size+x] = float32(v)
			}
		}
	}
}

// sample draws n examples with balanced class labels.
func (d *Dataset) sample(n int, rng *stats.RNG) Split {
	cfg := d.Cfg
	per := 3 * cfg.Size * cfg.Size
	s := Split{X: make([]float32, n*per), Y: make([]int, n), N: n, Size: cfg.Size}
	for i := 0; i < n; i++ {
		c := i % cfg.Classes
		s.Y[i] = c
		proto := d.prototypes[c*per : (c+1)*per]
		dst := s.X[i*per : (i+1)*per]
		dy := rng.Intn(2*cfg.MaxShift+1) - cfg.MaxShift
		dx := rng.Intn(2*cfg.MaxShift+1) - cfg.MaxShift
		for ch := 0; ch < 3; ch++ {
			for y := 0; y < cfg.Size; y++ {
				sy := y + dy
				for x := 0; x < cfg.Size; x++ {
					sx := x + dx
					var v float32
					if sy >= 0 && sy < cfg.Size && sx >= 0 && sx < cfg.Size {
						v = proto[(ch*cfg.Size+sy)*cfg.Size+sx]
					}
					dst[(ch*cfg.Size+y)*cfg.Size+x] = v + float32(rng.Normal(0, cfg.NoiseStd))
				}
			}
		}
	}
	// Shuffle example order so minibatches mix classes.
	rng.Shuffle(n, func(i, j int) {
		s.Y[i], s.Y[j] = s.Y[j], s.Y[i]
		xi := s.X[i*per : (i+1)*per]
		xj := s.X[j*per : (j+1)*per]
		for k := range xi {
			xi[k], xj[k] = xj[k], xi[k]
		}
	})
	return s
}

// Subset returns a view of the first n examples of a split as a
// BatchSource (used for attack sample batches).
func Subset(s *Split, n int) *Split {
	if n > s.N {
		n = s.N
	}
	per := 3 * s.Size * s.Size
	return &Split{X: s.X[:n*per], Y: s.Y[:n], N: n, Size: s.Size}
}
