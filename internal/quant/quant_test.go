package quant

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

func TestQuantizeDequantizeBounds(t *testing.T) {
	s := float32(0.01)
	for _, w := range []float32{-1.27, -0.5, 0, 0.004, 0.005, 1.27, 5} {
		q := Quantize(w, s)
		if q > QMax || q < -QMax {
			t.Fatalf("q(%g) = %d outside ±127", w, q)
		}
	}
	if Quantize(5, 0.01) != 127 {
		t.Fatal("positive clamp failed")
	}
	if Quantize(-5, 0.01) != -127 {
		t.Fatal("negative clamp failed")
	}
	if Quantize(0.3, 0) != 0 {
		t.Fatal("zero scale must give zero")
	}
}

func TestQuantizationErrorBounded(t *testing.T) {
	f := func(w float32, seed uint8) bool {
		if math.IsNaN(float64(w)) || math.IsInf(float64(w), 0) {
			return true
		}
		// Clamp to a plausible weight range.
		if w > 10 {
			w = 10
		}
		if w < -10 {
			w = -10
		}
		s := float32(10.0 / QMax)
		q := Quantize(w, s)
		back := Dequantize(q, s)
		return math.Abs(float64(back-w)) <= float64(s)/2+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFlipBitInvolution(t *testing.T) {
	f := func(q int8, k uint8) bool {
		bit := int(k) % Bits
		return FlipBit(FlipBit(q, bit), bit) == q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFlipMSBIsLargeDelta(t *testing.T) {
	// Flipping the sign bit of a two's-complement int8 moves the value by
	// exactly ±128 — the catastrophic flip BFA exploits.
	for _, q := range []int8{0, 1, -1, 100, -100} {
		d := BitDelta(q, 7)
		if d != 128 && d != -128 {
			t.Fatalf("MSB delta of %d = %d, want ±128", q, d)
		}
	}
	if d := BitDelta(0, 0); d != 1 {
		t.Fatalf("LSB delta of 0 = %d, want 1", d)
	}
}

func newTinyNet() *nn.Model { return nn.NewResNet20(4, 0.125, 3) }

func TestNewModelSnapsWeightsToGrid(t *testing.T) {
	net := newTinyNet()
	qm := NewModel(net)
	if qm.Bits != 8 {
		t.Fatalf("bits = %d", qm.Bits)
	}
	if qm.TotalWeights() == 0 {
		t.Fatal("no weights quantized")
	}
	if qm.TotalBits() != qm.TotalWeights()*8 {
		t.Fatal("bit count wrong")
	}
	for _, qp := range qm.Params {
		for i, q := range qp.Q {
			want := Dequantize(q, qp.Scale)
			if qp.Param.W.Data[i] != want {
				t.Fatalf("%s[%d]: float %g != dequant %g", qp.Param.Name, i, qp.Param.W.Data[i], want)
			}
		}
	}
}

func TestBinaryModel(t *testing.T) {
	net := newTinyNet()
	qm := NewModelBits(net, 1)
	if qm.Bits != 1 {
		t.Fatalf("bits = %d", qm.Bits)
	}
	for _, qp := range qm.Params {
		if qp.Scale <= 0 {
			t.Fatalf("%s scale = %g", qp.Param.Name, qp.Scale)
		}
		for i, q := range qp.Q {
			if q != 1 && q != -1 {
				t.Fatalf("binary weight = %d", q)
			}
			if qp.BitDelta(i, 0) != int(-2*q) {
				t.Fatal("binary delta wrong")
			}
		}
	}
	// Flip negates.
	qp := qm.Params[0]
	before := qp.Q[0]
	qp.Flip(0, 0)
	if qp.Q[0] != -before {
		t.Fatal("binary flip must negate")
	}
}

func TestLocateGlobalIndexInverse(t *testing.T) {
	qm := NewModel(newTinyNet())
	f := func(w uint32) bool {
		g := int(w) % qm.TotalWeights()
		pi, li := qm.Locate(g)
		return qm.GlobalIndex(pi, li) == g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Boundary conditions: first and last weight of each param.
	for pi, qp := range qm.Params {
		g := qm.GlobalIndex(pi, 0)
		p2, l2 := qm.Locate(g)
		if p2 != pi || l2 != 0 {
			t.Fatalf("locate(first of %d) = (%d,%d)", pi, p2, l2)
		}
		g = qm.GlobalIndex(pi, len(qp.Q)-1)
		p2, l2 = qm.Locate(g)
		if p2 != pi || l2 != len(qp.Q)-1 {
			t.Fatalf("locate(last of %d) = (%d,%d)", pi, p2, l2)
		}
	}
}

func TestFlipGlobalChangesInference(t *testing.T) {
	qm := NewModel(newTinyNet())
	pi, li := qm.Locate(0)
	before := qm.Params[pi].Q[li]
	qm.FlipGlobal(0, 7)
	after := qm.Params[pi].Q[li]
	if before == after {
		t.Fatal("flip did not change the weight")
	}
	wantFloat := Dequantize(after, qm.Params[pi].Scale)
	if qm.Params[pi].Param.W.Data[li] != wantFloat {
		t.Fatal("float view not refreshed")
	}
}

func TestSnapshotRestoreAndHamming(t *testing.T) {
	qm := NewModel(newTinyNet())
	snap := qm.Snapshot()
	if qm.HammingDistance(snap) != 0 {
		t.Fatal("fresh snapshot distance must be 0")
	}
	qm.FlipGlobal(3, 7)
	qm.FlipGlobal(10, 0)
	if got := qm.HammingDistance(snap); got != 2 {
		t.Fatalf("hamming = %d, want 2", got)
	}
	qm.Restore(snap)
	if qm.HammingDistance(snap) != 0 {
		t.Fatal("restore must return to snapshot")
	}
	// Float views must also be restored.
	for _, qp := range qm.Params {
		for i, q := range qp.Q {
			if qp.Param.W.Data[i] != Dequantize(q, qp.Scale) {
				t.Fatal("float view stale after restore")
			}
		}
	}
}

func TestBitDeltaMatchesFlip(t *testing.T) {
	f := func(q int8, k uint8) bool {
		bit := int(k) % Bits
		return int(FlipBit(q, bit))-int(q) == BitDelta(q, bit)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizationPreservesAccuracyApproximately(t *testing.T) {
	// 8-bit symmetric quantization should change logits only slightly:
	// compare pre/post forward outputs.
	net := newTinyNet()
	x := makeInput()
	before := net.Forward(x, false).Clone()
	NewModel(net)
	after := net.Forward(x, false)
	var maxDiff float64
	for i := range before.Data {
		d := math.Abs(float64(before.Data[i] - after.Data[i]))
		if d > maxDiff {
			maxDiff = d
		}
	}
	var scale float64
	for _, v := range before.Data {
		if math.Abs(float64(v)) > scale {
			scale = math.Abs(float64(v))
		}
	}
	if maxDiff > 0.25*(scale+1) {
		t.Fatalf("quantization moved logits too much: %g vs scale %g", maxDiff, scale)
	}
}

func makeInput() *tensor.Tensor {
	x := tensor.New(2, 3, 8, 8)
	x.RandNormal(stats.NewRNG(77), 1)
	return x
}
