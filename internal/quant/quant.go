// Package quant implements the 8-bit weight quantization the paper's
// evaluation assumes ("weights are quantized to 8-bit width", §V) and the
// bit-level accessors the Bit-Flip Attack manipulates.
//
// Quantization is symmetric per-tensor: q = clamp(round(w/s), -127..127)
// with s = max|w|/127, stored as two's-complement int8. The dequantized
// weights s*q are what the network computes with, so flipping a stored bit
// changes inference exactly the way a RowHammer flip in DRAM would.
package quant

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/nn"
	"repro/internal/par"
)

// Bits is the quantized weight width.
const Bits = 8

// QMax is the maximum magnitude of a quantized weight.
const QMax = 127

// Quantize converts a float weight to int8 under scale s.
func Quantize(w float32, s float32) int8 {
	if s == 0 {
		return 0
	}
	q := math.Round(float64(w) / float64(s))
	if q > QMax {
		q = QMax
	}
	if q < -QMax {
		q = -QMax
	}
	return int8(q)
}

// Dequantize converts an int8 weight back to float under scale s.
func Dequantize(q int8, s float32) float32 { return float32(q) * s }

// FlipBit flips bit k (0 = LSB, 7 = sign) of a two's-complement int8.
func FlipBit(q int8, k int) int8 {
	if k < 0 || k >= Bits {
		panic(fmt.Sprintf("quant: bit %d out of range", k))
	}
	return int8(uint8(q) ^ (1 << uint(k)))
}

// BitDelta returns the signed change in quantized value from flipping bit
// k of q: FlipBit(q,k) - q as an int.
func BitDelta(q int8, k int) int {
	return int(FlipBit(q, k)) - int(q)
}

// QuantizedParam is the quantized image of one weight tensor.
type QuantizedParam struct {
	Param *nn.Param
	Scale float32
	Q     []int8
	// Bits is the stored width: 8 for int8 weights, 1 for binary weights
	// (Q in {-1, +1}, one attackable sign bit).
	Bits int
}

// BitDelta returns the signed change in quantized value from flipping bit
// k of weight i under this parameter's bit width.
func (qp *QuantizedParam) BitDelta(i, k int) int {
	if qp.Bits == 1 {
		return int(-2 * qp.Q[i])
	}
	return BitDelta(qp.Q[i], k)
}

// NumWeights returns the number of quantized weights.
func (qp *QuantizedParam) NumWeights() int { return len(qp.Q) }

// dequantMinWork is the minimum chunk size before Apply fans out; the
// kernel is one multiply per element.
const dequantMinWork = 1 << 14

// Apply writes the dequantized weights back into the parameter tensor.
// Large tensors dequantize in parallel under the worker budget — each
// element is independent, so the result is identical at any budget. This
// is the hot path of Restore, which the attack loops call to undo trial
// flips.
func (qp *QuantizedParam) Apply() {
	w := qp.Param.W.Data
	if grain := par.Grain(1, dequantMinWork); par.WorthIt(len(qp.Q), grain) {
		par.For(len(qp.Q), grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				w[i] = Dequantize(qp.Q[i], qp.Scale)
			}
		})
		return
	}
	for i, q := range qp.Q {
		w[i] = Dequantize(q, qp.Scale)
	}
}

// Get returns the quantized value at index i.
func (qp *QuantizedParam) Get(i int) int8 { return qp.Q[i] }

// Flip flips bit k of weight i and refreshes the float view of that
// single weight. For binary parameters the only bit (k=0) negates the
// sign.
func (qp *QuantizedParam) Flip(i, k int) {
	if qp.Bits == 1 {
		if k != 0 {
			panic(fmt.Sprintf("quant: binary weight has only bit 0, got %d", k))
		}
		qp.Q[i] = -qp.Q[i]
	} else {
		qp.Q[i] = FlipBit(qp.Q[i], k)
	}
	qp.Param.W.Data[i] = Dequantize(qp.Q[i], qp.Scale)
}

// Model is a quantized view over a network's attack surface: every
// quantizable parameter with its integer image, plus bookkeeping to map a
// global weight index to (param, weight) and back.
type Model struct {
	Net    *nn.Model
	Params []*QuantizedParam
	// Bits is the per-weight storage width (8 or 1).
	Bits int
	// offsets[i] is the global weight index of Params[i]'s first weight.
	offsets []int
	total   int
}

// NewModel quantizes the network's attack surface in place to 8-bit
// weights: each quantizable parameter is snapped to its int8 grid, so
// inference runs on exactly the values stored in (simulated) DRAM.
func NewModel(net *nn.Model) *Model { return NewModelBits(net, Bits) }

// NewModelBits quantizes to the given width: 8 (int8) or 1 (binary sign
// weights with a per-tensor mean-magnitude scale, the "binary weight"
// defense of Table II).
func NewModelBits(net *nn.Model, bits int) *Model {
	if bits != 8 && bits != 1 {
		panic(fmt.Sprintf("quant: unsupported width %d", bits))
	}
	m := &Model{Net: net, Bits: bits}
	for _, p := range net.QuantizableParams() {
		qp := &QuantizedParam{Param: p, Q: make([]int8, p.W.Len()), Bits: bits}
		if bits == 1 {
			var sum float64
			for _, w := range p.W.Data {
				if w < 0 {
					sum -= float64(w)
				} else {
					sum += float64(w)
				}
			}
			qp.Scale = float32(sum / float64(p.W.Len()))
			for i, w := range p.W.Data {
				if w < 0 {
					qp.Q[i] = -1
				} else {
					qp.Q[i] = 1
				}
			}
		} else {
			qp.Scale = p.W.MaxAbs() / QMax
			for i, w := range p.W.Data {
				qp.Q[i] = Quantize(w, qp.Scale)
			}
		}
		qp.Apply()
		m.offsets = append(m.offsets, m.total)
		m.total += len(qp.Q)
		m.Params = append(m.Params, qp)
	}
	return m
}

// TotalWeights returns the number of quantized weights across all params.
func (m *Model) TotalWeights() int { return m.total }

// TotalBits returns the number of attackable bits.
func (m *Model) TotalBits() int { return m.total * m.Bits }

// Locate maps a global weight index to (param index, local weight index).
func (m *Model) Locate(globalW int) (int, int) {
	if globalW < 0 || globalW >= m.total {
		panic(fmt.Sprintf("quant: weight index %d out of range %d", globalW, m.total))
	}
	lo, hi := 0, len(m.offsets)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if m.offsets[mid] <= globalW {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, globalW - m.offsets[lo]
}

// GlobalIndex maps (param index, local weight index) to the global index.
func (m *Model) GlobalIndex(param, local int) int { return m.offsets[param] + local }

// FlipGlobal flips bit k of the global weight index and refreshes floats.
func (m *Model) FlipGlobal(globalW, k int) {
	pi, li := m.Locate(globalW)
	m.Params[pi].Flip(li, k)
}

// Snapshot captures all quantized weights for later restore (attacks use
// this to undo trial flips).
func (m *Model) Snapshot() [][]int8 {
	out := make([][]int8, len(m.Params))
	for i, qp := range m.Params {
		out[i] = append([]int8(nil), qp.Q...)
	}
	return out
}

// Restore rewrites all quantized weights from a snapshot and refreshes the
// float views.
func (m *Model) Restore(snap [][]int8) {
	if len(snap) != len(m.Params) {
		panic("quant: snapshot shape mismatch")
	}
	for i, qp := range m.Params {
		copy(qp.Q, snap[i])
		qp.Apply()
	}
}

// HammingDistance counts differing bits between the current weights and a
// snapshot (the "# bit-flips" the paper reports).
func (m *Model) HammingDistance(snap [][]int8) int {
	d := 0
	for i, qp := range m.Params {
		for j, q := range qp.Q {
			d += bits.OnesCount8(uint8(q) ^ uint8(snap[i][j]))
		}
	}
	return d
}
