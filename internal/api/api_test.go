package api

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCheckProto(t *testing.T) {
	if err := CheckProto(Version); err != nil {
		t.Fatal(err)
	}
	if err := CheckProto("dlexec0"); err == nil {
		t.Fatal("foreign protocol version must be rejected")
	}
	if err := CheckProto(""); err == nil {
		t.Fatal("missing protocol version must be rejected")
	}
}

func TestTaskSpecValidate(t *testing.T) {
	ok := TaskSpec{Proto: Version, Job: "tiny/mc", Shard: 0, Seed: 7, Key: "mc@abc"}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	mono := TaskSpec{Proto: Version, Job: "tiny/fig8a", Shard: MonolithShard}
	if err := mono.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		desc string
		spec TaskSpec
	}{
		{"wrong proto", TaskSpec{Proto: "nope", Job: "j", Shard: 0}},
		{"no job", TaskSpec{Proto: Version, Shard: 0}},
		{"shard below monolith", TaskSpec{Proto: Version, Job: "j", Shard: -2}},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err == nil {
			t.Errorf("%s: must fail validation", c.desc)
		}
	}
}

func TestTaskResultValidateEcho(t *testing.T) {
	spec := TaskSpec{Proto: Version, Job: "tiny/mc", Shard: 2, Seed: 9, Key: "mc@abc"}
	ok := TaskResult{Proto: Version, Job: "tiny/mc", Shard: 2, Key: "mc@abc"}
	if err := ok.Validate(spec); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		desc string
		res  TaskResult
		frag string
	}{
		{"wrong proto", TaskResult{Proto: "old", Job: "tiny/mc", Shard: 2, Key: "mc@abc"}, "protocol version"},
		{"wrong job", TaskResult{Proto: Version, Job: "tiny/fig8a", Shard: 2, Key: "mc@abc"}, "answers"},
		{"wrong shard", TaskResult{Proto: Version, Job: "tiny/mc", Shard: 0, Key: "mc@abc"}, "answers"},
		{"key mismatch", TaskResult{Proto: Version, Job: "tiny/mc", Shard: 2, Key: "mc@OTHER"}, "cache-key echo mismatch"},
	}
	for _, c := range cases {
		err := c.res.Validate(spec)
		if err == nil {
			t.Errorf("%s: must fail validation", c.desc)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q missing %q", c.desc, err, c.frag)
		}
	}
}

// TestWireRoundTrip pins the JSON shape: a spec/result survives a
// marshal/unmarshal cycle unchanged, and the raw Data payload keeps its
// exact bytes (the byte-identity guarantee depends on it).
func TestWireRoundTrip(t *testing.T) {
	spec := TaskSpec{Proto: Version, Job: "tiny/table2", Shard: 3, Seed: 0xfeed, Key: "table2@1234"}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var spec2 TaskSpec
	if err := json.Unmarshal(b, &spec2); err != nil {
		t.Fatal(err)
	}
	if spec2 != spec {
		t.Fatalf("spec round-trip changed: %+v vs %+v", spec2, spec)
	}

	raw := json.RawMessage(`{"rows":[1,2,3],"label":"x"}`)
	res := TaskResult{
		Proto: Version, Job: "tiny/table2", Shard: 3,
		Text: "row\n", Data: raw, DurationNS: 12345, Key: "table2@1234", Worker: "w1",
	}
	b, err = json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var res2 TaskResult
	if err := json.Unmarshal(b, &res2); err != nil {
		t.Fatal(err)
	}
	if string(res2.Data) != string(raw) {
		t.Fatalf("Data bytes changed across the wire: %s vs %s", res2.Data, raw)
	}
	if res2.Text != res.Text || res2.DurationNS != res.DurationNS || res2.Worker != res.Worker {
		t.Fatalf("result round-trip changed: %+v vs %+v", res2, res)
	}
}

func TestJobSubmitBatchValidate(t *testing.T) {
	ok := JobSubmit{Proto: Version, Tasks: []TaskSpec{
		{Proto: Version, Job: "j", Seed: 1, Key: "j@hash"},
	}}
	if err := (JobSubmitBatch{Proto: Version, Jobs: []JobSubmit{ok}}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (JobSubmitBatch{Proto: "dlexec0", Jobs: []JobSubmit{ok}}).Validate(); err == nil {
		t.Fatal("foreign proto must be rejected")
	}
	if err := (JobSubmitBatch{Proto: Version}).Validate(); err == nil {
		t.Fatal("empty batch must be rejected")
	}
	// A bad job fails the envelope and names its index, so the submitter
	// can see which of its jobs is malformed.
	err := (JobSubmitBatch{Proto: Version, Jobs: []JobSubmit{ok, {Proto: Version}}}).Validate()
	if err == nil || !strings.Contains(err.Error(), "job 1") {
		t.Fatalf("want the bad job's index in the error, got %v", err)
	}
}

func TestCodesEnumerationComplete(t *testing.T) {
	// Codes() is the wire-contract enumeration; every code must have an
	// explicit retry decision and appear exactly once.
	seen := make(map[Code]bool)
	for _, c := range Codes() {
		if seen[c] {
			t.Fatalf("code %s listed twice", c)
		}
		seen[c] = true
		if _, ok := retryableByCode[c]; !ok {
			t.Fatalf("code %s has no retryability entry", c)
		}
	}
	if len(seen) != len(retryableByCode) {
		t.Fatalf("Codes() lists %d codes, retryableByCode has %d", len(seen), len(retryableByCode))
	}
}
