package api

// Queue messages: the broker half of dlexec2. A scheduler submits jobs
// (task lists) to a broker; workers register, pull leases, and report
// results. All dispatch is pull-based — the broker never connects to a
// worker — so membership is dynamic: a worker exists exactly as long as
// it keeps polling or heartbeating.

// DefaultTenant is the fairness bucket of submissions that name none.
const DefaultTenant = "default"

// JobSubmit asks a broker to enqueue a job: an ordered list of tasks
// sharing a tenant (the fairness bucket) and a priority.
type JobSubmit struct {
	// Proto must equal Version.
	Proto string `json:"proto"`
	// Tenant is the fairness bucket; empty means DefaultTenant. The
	// broker shares dispatch capacity across tenants by configured
	// weight, so one tenant's burst cannot starve the others.
	Tenant string `json:"tenant,omitempty"`
	// Priority orders tasks within a tenant: higher dispatches first;
	// ties dispatch in submission order. It never crosses tenant
	// boundaries — fairness outranks priority.
	Priority int `json:"priority,omitempty"`
	// Tasks are the units to execute, each a complete TaskSpec.
	Tasks []TaskSpec `json:"tasks"`
}

// Validate checks the submission and every task in it.
func (s JobSubmit) Validate() error {
	if err := CheckProto(s.Proto); err != nil {
		return err
	}
	if len(s.Tasks) == 0 {
		return Errf(CodeBadRequest, "job submits no tasks")
	}
	for i, t := range s.Tasks {
		if err := t.Validate(); err != nil {
			return Errf(CodeBadRequest, "task %d: %v", i, err)
		}
	}
	return nil
}

// SubmitReply acknowledges a JobSubmit with the broker-assigned job id.
type SubmitReply struct {
	Proto string `json:"proto"`
	ID    string `json:"id"`
}

// JobSubmitBatch submits several jobs in one request, cutting the
// per-task round-trips of a sharded run to one POST per submission
// wave. Jobs are admitted independently: each gets its own SubmitItem,
// so one tenant hitting its queue-depth limit fails only its own jobs.
type JobSubmitBatch struct {
	// Proto must equal Version (each enclosed JobSubmit echoes it too).
	Proto string      `json:"proto"`
	Jobs  []JobSubmit `json:"jobs"`
}

// Validate checks the envelope and every enclosed submission.
func (bt JobSubmitBatch) Validate() error {
	if err := CheckProto(bt.Proto); err != nil {
		return err
	}
	if len(bt.Jobs) == 0 {
		return Errf(CodeBadRequest, "batch submits no jobs")
	}
	for i, s := range bt.Jobs {
		if err := s.Validate(); err != nil {
			return Errf(CodeBadRequest, "job %d: %v", i, err)
		}
	}
	return nil
}

// SubmitItem is one job's outcome inside a SubmitBatchReply: the
// assigned id, or that job's own typed error (e.g. queue_full).
type SubmitItem struct {
	ID  string `json:"id,omitempty"`
	Err *Error `json:"error,omitempty"`
}

// SubmitBatchReply answers a JobSubmitBatch with per-job outcomes,
// indexed like the submitted Jobs.
type SubmitBatchReply struct {
	Proto string       `json:"proto"`
	Jobs  []SubmitItem `json:"jobs"`
}

// JobState is the lifecycle of a submitted job.
type JobState string

const (
	// JobQueued: no task has completed yet.
	JobQueued JobState = "queued"
	// JobRunning: some tasks completed or leased, not all.
	JobRunning JobState = "running"
	// JobDone: every task has a result (success or deterministic
	// failure); Results is populated.
	JobDone JobState = "done"
	// JobCanceled: the job was canceled; unfinished tasks never run.
	JobCanceled JobState = "canceled"
)

// JobStatus reports a job's progress (the submit/poll/cancel API's read
// side). Results is populated only once State is JobDone, indexed like
// the submitted Tasks.
type JobStatus struct {
	Proto    string       `json:"proto"`
	ID       string       `json:"id"`
	Tenant   string       `json:"tenant"`
	Priority int          `json:"priority,omitempty"`
	State    JobState     `json:"state"`
	Total    int          `json:"total"`
	Done     int          `json:"done"`
	Failed   int          `json:"failed"`
	Results  []TaskResult `json:"results,omitempty"`
}

// CancelRequest cancels a job: queued tasks are dropped, in-flight
// leases are allowed to finish but their results are discarded.
type CancelRequest struct {
	Proto string `json:"proto"`
	ID    string `json:"id"`
}

// WorkerHello registers a worker with a broker. Registration is where a
// mixed-fleet upgrade fails loudly: a worker built from a different
// protocol revision is rejected here, before it ever holds a lease.
type WorkerHello struct {
	// Proto must equal Version.
	Proto string `json:"proto"`
	// Name identifies the worker in logs and stats (hostname by default).
	Name string `json:"name"`
	// Capacity is the worker's concurrent task limit (advisory; the
	// worker enforces it by bounding how many leases it requests).
	Capacity int `json:"capacity"`
}

// Validate checks the registration.
func (h WorkerHello) Validate() error {
	if err := CheckProto(h.Proto); err != nil {
		return err
	}
	if h.Name == "" {
		return Errf(CodeBadRequest, "worker registers with no name")
	}
	return nil
}

// HelloReply assigns the worker its id and the broker's lease terms.
type HelloReply struct {
	Proto string `json:"proto"`
	// WorkerID is the broker-assigned membership handle; every
	// subsequent message carries it.
	WorkerID string `json:"worker_id"`
	// LeaseTTLNS is the lease duration: a worker must renew (or finish)
	// a lease within this window or the broker requeues the task.
	LeaseTTLNS int64 `json:"lease_ttl_ns"`
}

// Heartbeat keeps a worker's membership alive between polls (polling
// itself also counts). A worker silent for several TTLs is expired: its
// leases requeue and its registration is dropped.
type Heartbeat struct {
	Proto    string `json:"proto"`
	WorkerID string `json:"worker_id"`
}

// DrainRequest announces a worker is shutting down: the broker stops
// offering it leases; in-flight leases finish normally.
type DrainRequest struct {
	Proto    string `json:"proto"`
	WorkerID string `json:"worker_id"`
}

// PollRequest asks the broker for up to Max leases. WaitNS > 0 turns
// the poll into a long poll: the broker holds the request until work
// arrives or the wait elapses, so an idle fleet costs one parked
// request per worker instead of a busy loop.
type PollRequest struct {
	Proto    string `json:"proto"`
	WorkerID string `json:"worker_id"`
	Max      int    `json:"max"`
	WaitNS   int64  `json:"wait_ns,omitempty"`
}

// Lease hands one task to one worker for a bounded time.
type Lease struct {
	// ID names the lease; TaskDone and LeaseRenew reference it.
	ID string `json:"id"`
	// Task is the unit to execute.
	Task TaskSpec `json:"task"`
	// DeadlineNS (unix nanos, broker clock) is when the lease expires
	// and the task requeues unless renewed or finished.
	DeadlineNS int64 `json:"deadline_ns"`
	// Hedged marks a duplicate dispatch of a straggling task already
	// leased elsewhere. Safe because tasks are deterministic and
	// cache-keyed: first result wins, the loser is a byte-identical
	// duplicate.
	Hedged bool `json:"hedged,omitempty"`
}

// PollReply carries the granted leases (possibly none).
type PollReply struct {
	Proto  string  `json:"proto"`
	Leases []Lease `json:"leases,omitempty"`
}

// LeaseRenew extends the named leases for another TTL. Long tasks renew
// periodically (TTL/3 is a sensible cadence) so only dead workers — not
// slow tasks — trip the expiry requeue.
type LeaseRenew struct {
	Proto    string   `json:"proto"`
	WorkerID string   `json:"worker_id"`
	LeaseIDs []string `json:"lease_ids"`
	// Progress, keyed by lease id, piggybacks the worker's latest
	// per-task heartbeat on the renewal it was already sending — live
	// progress costs zero extra requests. Optional; leases absent from
	// the map keep their previous progress.
	Progress map[string]*TaskProgress `json:"progress,omitempty"`
}

// RenewReply maps each still-active lease id to its new deadline. A
// lease missing from the map expired (its task may already be requeued
// or finished elsewhere); the worker should finish the work anyway —
// the broker accepts the first result from any holder.
type RenewReply struct {
	Proto     string           `json:"proto"`
	Deadlines map[string]int64 `json:"deadlines,omitempty"`
}

// TaskDone reports a lease's result.
type TaskDone struct {
	Proto    string     `json:"proto"`
	WorkerID string     `json:"worker_id"`
	LeaseID  string     `json:"lease_id"`
	Result   TaskResult `json:"result"`
}

// DoneReply acknowledges a TaskDone. First result wins: a result for an
// already-finished task is reported back as a duplicate, with CacheHit
// set when its bytes match the recorded winner — the determinism
// guarantee observable on the wire.
type DoneReply struct {
	Proto string `json:"proto"`
	// Accepted: this result was recorded as the task's outcome.
	Accepted bool `json:"accepted"`
	// Duplicate: the task already had a result (hedged or requeued
	// dispatch finished elsewhere first).
	Duplicate bool `json:"duplicate,omitempty"`
	// CacheHit: the duplicate's bytes matched the recorded result —
	// the expected outcome for deterministic, cache-keyed tasks.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// JobInfo is one row of a registry listing: the job's name, shard
// count and cache-key stem, as shown by `dramlocker -list` and consumed
// by broker tooling.
type JobInfo struct {
	Name  string `json:"name"`
	Title string `json:"title,omitempty"`
	// Units is the number of schedulable units (shards, or 1 for a
	// monolith) — the fan-out a remote run will produce.
	Units int `json:"units"`
	// Key is the cache-key stem ("<experiment>@<preset hash>"); empty
	// means the job is uncacheable.
	Key string `json:"key,omitempty"`
}

// Listing is a full registry listing (`dramlocker -list -json`): the
// same schema whether rendered by the CLI, a worker daemon, or the
// broker UI.
type Listing struct {
	Proto string    `json:"proto"`
	Jobs  []JobInfo `json:"jobs"`
}

// LeaseNotFound is the broker's reply to a TaskDone or LeaseRenew
// referencing a lease it never granted (or swept long ago).
func LeaseNotFound(id string) *Error {
	return Errf(CodeNotFound, "unknown lease %q (expired and swept, or never granted)", id)
}

// WorkerNotFound is the broker's reply to messages from an expired or
// never-registered worker; the worker should re-register with a fresh
// WorkerHello.
func WorkerNotFound(id string) *Error {
	return Errf(CodeNotFound, "unknown worker %q (registration expired? re-register with a new hello)", id)
}

// JobNotFound is the broker's reply to status/cancel for an unknown id.
func JobNotFound(id string) *Error {
	return Errf(CodeNotFound, "unknown job id %q", id)
}
