package api

// Replication wire messages. A standby broker follows its primary by
// long-polling /v2/replicate with a (generation, segment, offset)
// cursor into the primary's segmented journal; the primary answers with
// raw journal bytes — whole lines only, and never past its fsync
// watermark, so a follower can only ever see records the primary has
// already made durable. Promotion and fencing ride alongside: /v2/promote
// turns a follower into the new primary under a fresh fencing epoch, and
// /v2/fence tells a (possibly restarted) ex-primary that the epoch has
// moved on so its late mutations are refused instead of forking history.

// ReplicateRequest asks the primary for the next span of journal bytes
// at the follower's cursor. A zero-valued cursor (generation 0,
// segment 0) means "start from the beginning"; the primary answers with
// Restart set and the cursor rebased onto its oldest segment.
type ReplicateRequest struct {
	Proto string `json:"proto"`
	// Generation identifies the journal history the cursor points into;
	// compaction rewrites history and bumps it, invalidating cursors
	// minted against the previous layout.
	Generation int   `json:"generation"`
	Segment    int   `json:"segment"`
	Offset     int64 `json:"offset"`
	// MaxBytes caps the reply's Data (0 = server default).
	MaxBytes int64 `json:"max_bytes,omitempty"`
	// WaitNS long-polls: when the cursor is at the durable tip, the
	// primary parks until new bytes are fsynced or the wait elapses.
	WaitNS int64 `json:"wait_ns,omitempty"`
	// Epoch and Follower are diagnostic: the follower's current fencing
	// epoch and name, logged by the primary.
	Epoch    int64  `json:"epoch,omitempty"`
	Follower string `json:"follower,omitempty"`
}

// ReplicateReply carries raw journal lines and the cursor to resume
// from. Data is always a whole number of records (cut at line
// boundaries) and never extends past the primary's fsync watermark.
type ReplicateReply struct {
	Proto string `json:"proto"`
	// Data holds verbatim journal lines (base64 over JSON). Empty when
	// the long poll timed out with the follower already caught up.
	Data []byte `json:"data,omitempty"`
	// Generation/Segment/Offset is the cursor after consuming Data.
	Generation int   `json:"generation"`
	Segment    int   `json:"segment"`
	Offset     int64 `json:"offset"`
	// Restart means the follower's cursor no longer resolves (journal
	// compacted since): the returned cursor has been rebased to the
	// oldest live segment and the follower must re-apply from there —
	// application is idempotent, so no state reset is needed.
	Restart bool `json:"restart,omitempty"`
	// PrimarySegment/PrimaryOffset is the primary's durable watermark at
	// reply time; the distance to the follower's cursor is its lag.
	PrimarySegment int    `json:"primary_segment"`
	PrimaryOffset  int64  `json:"primary_offset"`
	Epoch          int64  `json:"epoch"`
	Role           string `json:"role"`
}

// PromoteRequest asks a follower to take over as primary. Token is the
// shared HA secret: a broker started with -ha-token refuses promote and
// fence requests whose token does not match, so a promotion/fencing —
// a durable, cluster-wide role flip — cannot be triggered by anything
// that merely reaches the port.
type PromoteRequest struct {
	Proto string `json:"proto"`
	Token string `json:"token,omitempty"`
}

// PromoteReply reports the outcome: the new fencing epoch (stamped into
// the journal before the reply is sent) and how many previously-granted
// tasks were returned to the pending queue — leases never transfer
// across a takeover, they surface as expiry→requeue on the new primary.
type PromoteReply struct {
	Proto    string `json:"proto"`
	Epoch    int64  `json:"epoch"`
	Requeued int    `json:"requeued"`
	Role     string `json:"role"`
}

// FenceRequest is sent by a freshly promoted primary to the broker it
// was following: adopt the (strictly higher) epoch and refuse mutations
// from now on, directing clients at Primary. A stale epoch (≤ the
// receiver's) is refused with bad_request.
type FenceRequest struct {
	Proto   string `json:"proto"`
	Epoch   int64  `json:"epoch"`
	Primary string `json:"primary"`
	// Token is the shared HA secret (see PromoteRequest).
	Token string `json:"token,omitempty"`
}

// FenceReply acknowledges a fence with the receiver's resulting state.
type FenceReply struct {
	Proto string `json:"proto"`
	Epoch int64  `json:"epoch"`
	Role  string `json:"role"`
}
