package api

// Broker metrics: the GET /v2/metrics read side. One schema serves
// every consumer — the broker renders it as JSON (and derives the
// Prometheus text exposition from the same struct), `dramlocker
// -broker -stats` pretty-prints it, and the e2e crash-recovery gate
// scrapes it to decide when to SIGKILL the broker.

// BrokerMetrics is a point-in-time census of a broker plus its
// lifetime counters, journal state and per-tenant gauges.
type BrokerMetrics struct {
	// Proto must equal Version.
	Proto string `json:"proto"`

	// Gauges: current queue census.
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Workers int `json:"workers"`
	Jobs    int `json:"jobs"`

	// Counters over the broker's lifetime (a journal-backed broker
	// restores Submitted/Completed/Failed across restarts on replay).
	Submitted    int `json:"submitted"`
	Completed    int `json:"completed"`
	Failed       int `json:"failed"`
	Requeues     int `json:"requeues"`
	Hedges       int `json:"hedges"`
	Duplicates   int `json:"duplicates"`
	DupCacheHits int `json:"dup_cache_hits"`
	// Rejected counts job submissions refused by admission control
	// (queue_full).
	Rejected int `json:"rejected"`
	// RateLimited counts job submissions refused by the token-bucket
	// rate limiter (rate_limited; the client retries after Retry-After).
	RateLimited int `json:"rate_limited"`
	// PlaneHits counts tasks the broker completed straight from the
	// result plane at submit time — no lease was ever granted.
	PlaneHits int `json:"plane_hits"`

	// Goroutines is the broker process's current goroutine count; the
	// chaos gate compares it before and after a soak to catch leaks.
	Goroutines int `json:"goroutines"`

	// Journal is present only when the broker runs with a journal.
	Journal *JournalMetrics `json:"journal,omitempty"`
	// Plane is present only when a result plane is co-hosted with the
	// broker (its counters; a standalone plane serves the same shape
	// from its own /v2/metrics).
	Plane *PlaneMetrics `json:"plane,omitempty"`
	// Tenants lists every tenant the broker has seen, sorted by name.
	Tenants []TenantMetrics `json:"tenants,omitempty"`
	// Leases lists every active lease with its progress age, oldest
	// lease first — the scrape-side "stuck task" signal.
	Leases []LeaseMetrics `json:"leases,omitempty"`
}

// LeaseMetrics is one active lease's age gauges.
type LeaseMetrics struct {
	// Lease is the lease id; Worker the holder's advertised name; Task
	// the "<job>[<shard>]" it covers.
	Lease  string `json:"lease"`
	Worker string `json:"worker"`
	Task   string `json:"task"`
	// AgeNS is time since the grant; ProgressAgeNS time since the
	// worker's latest progress heartbeat (equals AgeNS before the
	// first heartbeat).
	AgeNS         int64 `json:"age_ns"`
	ProgressAgeNS int64 `json:"progress_age_ns"`
}

// JournalMetrics counts journal activity: write-side totals since the
// broker started, and what the startup replay found.
type JournalMetrics struct {
	// Appends / Fsyncs count journal writes and the subset followed by
	// an fsync (submissions, completions and cancels sync; lease grants
	// don't — losing one only costs a redundant re-execution).
	Appends int `json:"appends"`
	Fsyncs  int `json:"fsyncs"`
	// ReplayedJobs / ReplayedTasks count what startup replay restored.
	ReplayedJobs  int `json:"replayed_jobs"`
	ReplayedTasks int `json:"replayed_tasks"`
	// Requeued counts replayed tasks that were leased-but-unfinished at
	// crash time and went back to pending.
	Requeued int `json:"requeued"`
	// Skipped counts corrupt or stale journal lines dropped during
	// replay (corruption degrades to skip-with-warning, like the disk
	// result cache).
	Skipped int `json:"skipped"`
	// Compactions counts journal rewrites: one after each successful
	// replay, plus every background fold of sealed segments.
	Compactions int `json:"compactions"`
	// Rotations counts live segment rollovers (active segment exceeded
	// its byte budget and a fresh one was opened).
	Rotations int `json:"rotations"`
	// Segments is the current on-disk segment count (sealed + active).
	Segments int `json:"segments"`
	// ActiveBytes is the size of the active (append) segment.
	ActiveBytes int64 `json:"active_bytes"`
}

// TenantMetrics is one tenant's queue gauges.
type TenantMetrics struct {
	Tenant string `json:"tenant"`
	// Weight is the fairness weight; Served the stride-scheduling
	// numerator (tasks dispatched to date).
	Weight int `json:"weight"`
	Served int `json:"served"`
	// Pending is the current queue depth; MaxQueued its admission limit
	// (0 = unlimited).
	Pending   int `json:"pending"`
	MaxQueued int `json:"max_queued,omitempty"`
	// OldestAgeNS is how long the oldest pending task has been queued
	// (0 when the queue is empty).
	OldestAgeNS int64 `json:"oldest_age_ns,omitempty"`
}
