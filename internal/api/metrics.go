package api

// Broker metrics: the GET /v2/metrics read side. One schema serves
// every consumer — the broker renders it as JSON (and derives the
// Prometheus text exposition from the same struct), `dramlocker
// -broker -stats` pretty-prints it, and the e2e crash-recovery gate
// scrapes it to decide when to SIGKILL the broker.

// BrokerMetrics is a point-in-time census of a broker plus its
// lifetime counters, journal state and per-tenant gauges.
type BrokerMetrics struct {
	// Proto must equal Version.
	Proto string `json:"proto"`

	// Gauges: current queue census.
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Workers int `json:"workers"`
	Jobs    int `json:"jobs"`

	// Counters over the broker's lifetime (a journal-backed broker
	// restores Submitted/Completed/Failed across restarts on replay).
	Submitted    int `json:"submitted"`
	Completed    int `json:"completed"`
	Failed       int `json:"failed"`
	Requeues     int `json:"requeues"`
	Hedges       int `json:"hedges"`
	Duplicates   int `json:"duplicates"`
	DupCacheHits int `json:"dup_cache_hits"`
	// Rejected counts job submissions refused by admission control
	// (queue_full).
	Rejected int `json:"rejected"`
	// RateLimited counts job submissions refused by the token-bucket
	// rate limiter (rate_limited; the client retries after Retry-After).
	RateLimited int `json:"rate_limited"`
	// PlaneHits counts tasks the broker completed straight from the
	// result plane at submit time — no lease was ever granted.
	PlaneHits int `json:"plane_hits"`

	// Goroutines is the broker process's current goroutine count; the
	// chaos gate compares it before and after a soak to catch leaks.
	Goroutines int `json:"goroutines"`

	// Role is the broker's replication role: "primary" accepts
	// mutations, "follower" replays a primary's journal and answers
	// reads only, "fenced" is an ex-primary refusing everything but
	// reads after a takeover.
	Role string `json:"role,omitempty"`
	// Epoch is the fencing epoch the broker last stamped into (or
	// adopted from) its journal; mutations under an older epoch are
	// refused after a takeover.
	Epoch int64 `json:"epoch,omitempty"`
	// Replication is present on brokers that follow (or followed) a
	// primary: the replay cursor and lag against the primary's durable
	// watermark.
	Replication *ReplicationMetrics `json:"replication,omitempty"`

	// Journal is present only when the broker runs with a journal.
	Journal *JournalMetrics `json:"journal,omitempty"`
	// Plane is present only when a result plane is co-hosted with the
	// broker (its counters; a standalone plane serves the same shape
	// from its own /v2/metrics).
	Plane *PlaneMetrics `json:"plane,omitempty"`
	// Tenants lists every tenant the broker has seen, sorted by name.
	Tenants []TenantMetrics `json:"tenants,omitempty"`
	// Leases lists every active lease with its progress age, oldest
	// lease first — the scrape-side "stuck task" signal.
	Leases []LeaseMetrics `json:"leases,omitempty"`
}

// LeaseMetrics is one active lease's age gauges.
type LeaseMetrics struct {
	// Lease is the lease id; Worker the holder's advertised name; Task
	// the "<job>[<shard>]" it covers.
	Lease  string `json:"lease"`
	Worker string `json:"worker"`
	Task   string `json:"task"`
	// AgeNS is time since the grant; ProgressAgeNS time since the
	// worker's latest progress heartbeat (equals AgeNS before the
	// first heartbeat).
	AgeNS         int64 `json:"age_ns"`
	ProgressAgeNS int64 `json:"progress_age_ns"`
}

// JournalMetrics counts journal activity: write-side totals since the
// broker started, and what the startup replay found.
type JournalMetrics struct {
	// Appends / Fsyncs count journal writes and the subset followed by
	// an fsync (submissions, completions and cancels sync; lease grants
	// don't — losing one only costs a redundant re-execution).
	Appends int `json:"appends"`
	Fsyncs  int `json:"fsyncs"`
	// ReplayedJobs / ReplayedTasks count what startup replay restored.
	ReplayedJobs  int `json:"replayed_jobs"`
	ReplayedTasks int `json:"replayed_tasks"`
	// Requeued counts replayed tasks that were leased-but-unfinished at
	// crash time and went back to pending.
	Requeued int `json:"requeued"`
	// Skipped counts corrupt or stale journal lines dropped during
	// replay (corruption degrades to skip-with-warning, like the disk
	// result cache).
	Skipped int `json:"skipped"`
	// Compactions counts journal rewrites: one after each successful
	// replay, plus every background fold of sealed segments.
	Compactions int `json:"compactions"`
	// Rotations counts live segment rollovers (active segment exceeded
	// its byte budget and a fresh one was opened).
	Rotations int `json:"rotations"`
	// Segments is the current on-disk segment count (sealed + active).
	Segments int `json:"segments"`
	// ActiveBytes is the size of the active (append) segment.
	ActiveBytes int64 `json:"active_bytes"`
	// StreamReads / StreamBytes count replication serves: chunks handed
	// to followers over /v2/replicate and the raw bytes they carried.
	StreamReads int   `json:"stream_reads,omitempty"`
	StreamBytes int64 `json:"stream_bytes,omitempty"`
}

// ReplicationMetrics is the follower-side view of journal streaming:
// where the replay cursor sits in the primary's journal, how far behind
// the primary's durable watermark it is, and what application did with
// the records seen so far.
type ReplicationMetrics struct {
	// Segment/Offset is the follower's resume cursor into the primary's
	// journal (the position after the last applied batch).
	Segment int   `json:"segment"`
	Offset  int64 `json:"offset"`
	// PrimarySegment/PrimaryOffset is the primary's durable watermark as
	// of the last replicate reply.
	PrimarySegment int   `json:"primary_segment"`
	PrimaryOffset  int64 `json:"primary_offset"`
	// LagBytes is watermark minus cursor when both sit in the same
	// segment, else -1 (whole segments behind; see SegmentsBehind).
	LagBytes int64 `json:"lag_bytes"`
	// SegmentsBehind counts primary segments the cursor has not reached.
	SegmentsBehind int `json:"segments_behind"`
	// Applied / Duplicates / Skipped classify replicated records:
	// applied to state, already present (idempotent re-delivery after a
	// resume or restart), or undecodable and dropped.
	Applied    int `json:"applied"`
	Duplicates int `json:"duplicates"`
	Skipped    int `json:"skipped"`
	// Batches counts replicate replies applied; Restarts counts cursor
	// resets forced by primary-side compaction.
	Batches  int `json:"batches"`
	Restarts int `json:"restarts"`
	// LastContactAgeNS is time since the last successful replicate
	// reply; the silence-timeout takeover triggers off the same signal.
	LastContactAgeNS int64 `json:"last_contact_age_ns,omitempty"`
}

// TenantMetrics is one tenant's queue gauges.
type TenantMetrics struct {
	Tenant string `json:"tenant"`
	// Weight is the fairness weight; Served the stride-scheduling
	// numerator (tasks dispatched to date).
	Weight int `json:"weight"`
	Served int `json:"served"`
	// Pending is the current queue depth; MaxQueued its admission limit
	// (0 = unlimited).
	Pending   int `json:"pending"`
	MaxQueued int `json:"max_queued,omitempty"`
	// OldestAgeNS is how long the oldest pending task has been queued
	// (0 when the queue is empty).
	OldestAgeNS int64 `json:"oldest_age_ns,omitempty"`
}
