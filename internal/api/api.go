// Package api defines the versioned JSON wire types of the executor
// protocol (dlexec2): the contract between the engine's scheduler and
// anything that can execute a task, in-process or across the network.
//
// The protocol has two halves. The direct half (this file) is the push
// transport: TaskSpec/TaskResult exchanged over one request, plus
// WorkerStatus introspection. The queue half (queue.go) is the broker
// service: JobSubmit/JobStatus on the submitting side and
// WorkerHello/PollRequest/Lease/LeaseRenew/TaskDone on the pulling
// side, for pull-based dispatch with dynamic worker membership.
// Failures travel as typed Errors (error.go): a stable code plus a
// Retryable flag, so clients decide retry/exclusion policy from the
// error itself instead of guessing from transport status codes.
//
// A task is one schedulable unit — a monolithic job or a single shard of
// a sharded job. Jobs carry Go closures that cannot cross a process
// boundary, so a TaskSpec never ships code: it names the job, the shard
// index, and the pre-derived seed, and the executing side re-resolves the
// closure from its own registry. Two safety rails make that sound:
//
//   - Proto stamps every message with Version; either side rejects a
//     message stamped with a different protocol revision, so a scheduler
//     and a worker built from incompatible code fail loudly instead of
//     exchanging misshapen payloads.
//   - Key carries the scheduler's cache key stem for the job
//     ("<experiment>@<preset hash>"). The worker refuses the task unless
//     its own registry derived the identical key, and echoes it back in
//     the TaskResult for the client to double-check — a worker built from
//     different preset knobs or experiment code can never poison the
//     scheduler's result cache.
//
// The package has no dependencies beyond encoding/json so every layer
// (engine, remote transport, daemons, tests) can share it.
package api

import (
	"encoding/json"
)

// Version identifies the executor protocol revision. Bump it whenever a
// wire type changes shape or meaning; mismatched peers reject each other.
//
// dlexec2 added the queue service (broker, leases, dynamic membership),
// the typed Error taxonomy, and the Draining/Role status fields.
const Version = "dlexec2"

// MonolithShard is the TaskSpec.Shard value for a monolithic job (no
// shard indexing).
const MonolithShard = -1

// TaskSpec describes one task for an executor: a monolithic job
// (Shard == MonolithShard) or one shard of a sharded job.
type TaskSpec struct {
	// Proto must equal Version.
	Proto string `json:"proto"`
	// Job is the fully qualified job name, e.g. "tiny/fig8a".
	Job string `json:"job"`
	// Shard is the shard index within the job, or MonolithShard.
	Shard int `json:"shard"`
	// Seed is the pre-derived execution seed. The scheduler computes it
	// from its own base seed and the unit name; executors use it verbatim
	// so results are identical no matter where the task runs.
	Seed uint64 `json:"seed"`
	// Key is the scheduler's cache key stem for the job (Job.Key,
	// typically "<experiment>@<preset hash>"). The executing side must
	// verify its registry derived the same key before running.
	Key string `json:"key,omitempty"`
	// CacheKey is the fully seeded cache key this task's result is
	// stored under ("<stem>[/<shard>]#<base seed>"). Optional: when
	// set, a cache-aware broker can answer the task from the result
	// plane without granting a lease, and a plane-attached worker can
	// check/populate the shared cache. It must extend Key — executors
	// refuse a CacheKey whose stem their registry did not derive.
	CacheKey string `json:"cache_key,omitempty"`
}

// Validate checks the spec is well-formed and speaks this protocol
// revision.
func (s TaskSpec) Validate() error {
	if err := CheckProto(s.Proto); err != nil {
		return err
	}
	if s.Job == "" {
		return Errf(CodeBadRequest, "task spec names no job")
	}
	if s.Shard < MonolithShard {
		return Errf(CodeBadRequest, "task %q has invalid shard index %d", s.Job, s.Shard)
	}
	return nil
}

// TaskResult is the outcome of executing one TaskSpec. A populated Err
// means the task itself failed (deterministically — retrying elsewhere
// would fail the same way); transport-level failures are reported out of
// band as Go errors and are retryable.
type TaskResult struct {
	// Proto must equal Version.
	Proto string `json:"proto"`
	// Job and Shard echo the spec.
	Job   string `json:"job"`
	Shard int    `json:"shard"`
	// Text is the task's human-readable rendering.
	Text string `json:"text,omitempty"`
	// Data is the structured payload, already marshalled. Keeping it raw
	// preserves the producer's exact bytes, so reports assembled from
	// local, remote and cache-replayed payloads render identically.
	Data json.RawMessage `json:"data,omitempty"`
	// Err is the task's own failure, empty on success.
	Err string `json:"error,omitempty"`
	// DurationNS is the compute time on the executing side, excluding
	// transport.
	DurationNS int64 `json:"duration_ns"`
	// Key echoes the executing side's cache key stem for the job; the
	// client verifies it matches what it sent.
	Key string `json:"key,omitempty"`
	// Worker names the executing worker (diagnostics only; never part of
	// cached state).
	Worker string `json:"worker,omitempty"`
}

// Validate checks the result is well-formed, speaks this protocol
// revision, and answers the given spec.
func (r TaskResult) Validate(spec TaskSpec) error {
	if err := CheckProto(r.Proto); err != nil {
		return err
	}
	if r.Job != spec.Job || r.Shard != spec.Shard {
		return Errf(CodeBadRequest, "result for task %s[%d] answers %s[%d]",
			spec.Job, spec.Shard, r.Job, r.Shard)
	}
	if r.Key != spec.Key {
		return Errf(CodeKeyMismatch, "task %q cache-key echo mismatch: sent %q, worker has %q (worker built from different presets or code?)",
			spec.Job, spec.Key, r.Key)
	}
	return nil
}

// WorkerStatus describes one daemon (the /v1/status payload). Proto and
// Draining let operators and schedulers see, before dispatching or
// registering anything, whether the daemon is compatible and accepting
// work — a mixed-fleet upgrade fails at dial/registration, not
// mid-lease.
type WorkerStatus struct {
	// Proto must equal Version.
	Proto string `json:"proto"`
	// Name identifies the worker (hostname by default).
	Name string `json:"name"`
	// Role is what the daemon does: "worker" (executes tasks, push or
	// pull) or "broker" (queues and dispatches them).
	Role string `json:"role,omitempty"`
	// Draining reports the daemon is shutting down: it finishes in-flight
	// work but refuses new tasks and registrations.
	Draining bool `json:"draining,omitempty"`
	// Jobs counts the jobs resolvable from the worker's registry.
	Jobs int `json:"jobs"`
	// JobNames lists them (registration order) so operators can see what
	// the worker will accept.
	JobNames []string `json:"job_names,omitempty"`
	// Capacity is the worker's concurrent task limit.
	Capacity int `json:"capacity"`
	// Inflight counts tasks currently executing.
	Inflight int `json:"inflight"`
	// Completed counts tasks finished since the daemon started.
	Completed uint64 `json:"completed"`
}

// CheckProto verifies a message's protocol stamp.
func CheckProto(proto string) error {
	if proto != Version {
		return Errf(CodeProtoMismatch, "protocol version mismatch: got %q, want %q", proto, Version)
	}
	return nil
}
