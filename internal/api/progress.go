package api

// Streaming progress and fleet-view messages. A worker executing a
// task over the streaming execute path emits ExecuteEvent lines
// (NDJSON: one JSON object per line) — progress heartbeats while the
// task runs, then exactly one terminal line carrying the result or a
// typed error. Pull workers piggyback their latest per-lease progress
// on lease renewals, and the broker aggregates it into the /v2/fleet
// snapshot that `dramlocker -fleet` renders.

// TaskProgress is one progress heartbeat for a running task.
type TaskProgress struct {
	// Job and Shard identify the task (Shard is MonolithShard for a
	// monolithic job).
	Job   string `json:"job"`
	Shard int    `json:"shard"`
	// Stage names what the task is doing ("train", "search", or the
	// generic "running" heartbeat).
	Stage string `json:"stage,omitempty"`
	// Done/Total report stage progress (epochs, iterations, grid
	// points); Total 0 means unknown.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// ElapsedNS is time since the task started on the worker.
	ElapsedNS int64 `json:"elapsed_ns,omitempty"`
}

// ExecuteEvent is one NDJSON line of a streaming execute response.
// Exactly one field is set: Progress for heartbeats, Result or Err for
// the single terminal line.
type ExecuteEvent struct {
	Progress *TaskProgress `json:"progress,omitempty"`
	Result   *TaskResult   `json:"result,omitempty"`
	Err      *Error        `json:"error,omitempty"`
}

// FleetStatus is the broker's live per-worker view (GET /v2/fleet).
type FleetStatus struct {
	// Proto must equal Version.
	Proto string `json:"proto"`
	// Workers lists every registered worker, stable-sorted by name.
	Workers []FleetWorker `json:"workers"`
}

// FleetWorker is one worker's slice of the fleet view.
type FleetWorker struct {
	// ID is the broker-assigned worker id; Name the advertised one.
	ID   string `json:"id"`
	Name string `json:"name"`
	// Capacity is the worker's concurrent task limit.
	Capacity int `json:"capacity"`
	// Draining reports the worker announced shutdown.
	Draining bool `json:"draining,omitempty"`
	// LastSeenAgeNS is time since the worker's last poll/renew/done.
	LastSeenAgeNS int64 `json:"last_seen_age_ns"`
	// Leases lists the worker's active leases, oldest first.
	Leases []FleetLease `json:"leases,omitempty"`
}

// FleetLease is one active lease in the fleet view.
type FleetLease struct {
	// ID is the lease id.
	ID string `json:"id"`
	// Job/Shard identify the leased task; Tenant its fairness bucket.
	Job    string `json:"job"`
	Shard  int    `json:"shard"`
	Tenant string `json:"tenant,omitempty"`
	// AgeNS is time since the lease was granted.
	AgeNS int64 `json:"age_ns"`
	// Progress is the worker's latest reported heartbeat, if any.
	Progress *TaskProgress `json:"progress,omitempty"`
	// ProgressAgeNS is time since that heartbeat arrived (equals AgeNS
	// when the worker has not reported progress yet). A large value on
	// a live lease is the "stuck task" signal.
	ProgressAgeNS int64 `json:"progress_age_ns"`
}
