package api

import "encoding/json"

// Result-plane messages. The plane is a content-addressed HTTP object
// store for the engine's cache entries: GET/PUT keyed by the engine's
// fully seeded cache key, ETag conditional fetches, and a claim
// protocol for cross-machine single-flight (only one worker in the
// fleet computes a key; everyone else waits for the stored result).
//
// Consistency model: keys are content addresses — a key embeds the
// experiment id, preset hash, shard name, code version and base seed,
// so two correct producers writing the same key must produce the same
// payload. The plane therefore keeps the first stored entry when a
// duplicate PUT carries an equivalent payload (byte-stable replays),
// and resolves a genuinely differing PUT as last-write-wins while
// counting it as a conflict (an equivalence violation worth alerting
// on, never silently absorbed).

// CachedResult is the persisted form of one task result — the same
// shape, field order and JSON tags as the engine's disk-cache lines,
// so plane entries and results.jsonl lines are interchangeable.
type CachedResult struct {
	// Name is the producing unit's full name ("<job>" or
	// "<job>/<shard>"); replays re-stamp it, so it is diagnostic.
	Name string `json:"name"`
	// Title is the job's one-line description (monolithic jobs only).
	Title string `json:"title,omitempty"`
	// Text is the human-readable rendering.
	Text string `json:"text,omitempty"`
	// Data is the structured payload, kept raw for byte identity.
	Data json.RawMessage `json:"data,omitempty"`
	// Err is the task's own failure; failed results are never stored.
	Err string `json:"error,omitempty"`
	// Seed is the deterministic seed the result was computed under.
	Seed uint64 `json:"seed"`
	// DurationNS is the original compute time.
	DurationNS int64 `json:"duration_ns"`
}

// CacheEntry is one versioned cache record — the engine's disk-cache
// line and the result plane's object payload.
type CacheEntry struct {
	// Version stamps the cache layout and code version
	// ("rescache1/<code version>"); mismatched entries are misses.
	Version string `json:"version"`
	// Key is the fully seeded cache key the entry is stored under.
	Key string `json:"key"`
	// Result is the stored outcome.
	Result CachedResult `json:"result"`
}

// SamePayload reports whether two entries are equivalent results for
// the same key: everything but the producer-dependent fields (compute
// duration, diagnostic name/title) must match. The plane uses it to
// tell a duplicate PUT (benign, keep the original bytes so ETags stay
// stable) from a conflicting one (equivalence violation).
func (e CacheEntry) SamePayload(o CacheEntry) bool {
	return e.Version == o.Version && e.Key == o.Key &&
		e.Result.Text == o.Result.Text &&
		e.Result.Err == o.Result.Err &&
		e.Result.Seed == o.Result.Seed &&
		string(e.Result.Data) == string(o.Result.Data)
}

// PutReply answers a plane PUT.
type PutReply struct {
	// Proto must equal Version.
	Proto string `json:"proto"`
	// ETag is the stored entry's tag after the write (the original
	// entry's tag when the PUT was an equivalent duplicate).
	ETag string `json:"etag"`
	// Conflict reports the PUT carried a payload that differs from an
	// existing entry under the same key (last write wins).
	Conflict bool `json:"conflict,omitempty"`
}

// ClaimRequest asks the plane for the right to compute a key.
type ClaimRequest struct {
	// Proto must equal Version.
	Proto string `json:"proto"`
	// Key is the cache key the caller wants to compute.
	Key string `json:"key"`
	// Owner identifies the claimant (worker name; diagnostics).
	Owner string `json:"owner,omitempty"`
	// TTLNS is the requested claim duration; the plane clamps it.
	TTLNS int64 `json:"ttl_ns,omitempty"`
}

// ClaimReply answers a ClaimRequest. Exactly one of Done, Granted, or
// neither (denied) describes the outcome.
type ClaimReply struct {
	// Proto must equal Version.
	Proto string `json:"proto"`
	// Done reports the result is already stored — fetch it instead of
	// computing.
	Done bool `json:"done,omitempty"`
	// Granted reports the caller now owns the computation and should
	// PUT the result within the TTL.
	Granted bool `json:"granted,omitempty"`
	// TTLNS is the granted claim duration.
	TTLNS int64 `json:"ttl_ns,omitempty"`
	// Owner names the current claim holder when the claim was denied.
	Owner string `json:"owner,omitempty"`
	// RetryAfterNS is the denied claim's remaining lifetime — the
	// longest a waiter could have to poll before the key resolves or
	// the claim expires.
	RetryAfterNS int64 `json:"retry_after_ns,omitempty"`
}

// PlaneMetrics is the result plane's counter snapshot, nested in
// BrokerMetrics when a plane is being served (or consulted) alongside
// the broker.
type PlaneMetrics struct {
	// Hits / Misses count GET outcomes (conditional 304s are hits).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Puts counts first-time stores; DupPuts equivalent re-stores;
	// Conflicts differing re-stores (last write wins).
	Puts      int64 `json:"puts"`
	DupPuts   int64 `json:"dup_puts"`
	Conflicts int64 `json:"conflicts"`
	// ClaimsGranted / ClaimsDenied count single-flight outcomes: a
	// denied claim is one deduplicated computation (the caller waits
	// for the holder's result instead of computing).
	ClaimsGranted int64 `json:"claims_granted"`
	ClaimsDenied  int64 `json:"claims_denied"`
	// WaitHits counts long-poll GETs answered by a PUT arriving while
	// the request was parked.
	WaitHits int64 `json:"wait_hits"`
	// Entries and BytesStored describe the current store contents.
	Entries     int64 `json:"entries"`
	BytesStored int64 `json:"bytes_stored"`
	// Evictions / EvictedBytes count entries dropped by the byte-budget
	// LRU or the idle TTL; Rewrites counts the plane.jsonl compactions
	// that made those drops durable.
	Evictions    int64 `json:"evictions,omitempty"`
	EvictedBytes int64 `json:"evicted_bytes,omitempty"`
	Rewrites     int64 `json:"rewrites,omitempty"`
}
