package api

import (
	"errors"
	"fmt"
)

// Code classifies a protocol-level failure. Codes are part of the wire
// contract: peers key behavior off the code (and the Retryable flag),
// never off message text or HTTP status, so error handling survives
// message rewording and transport changes.
type Code string

const (
	// CodeBadRequest: the message itself is malformed (unparsable JSON,
	// invalid field values). The sender is broken; retrying the same
	// message anywhere reproduces the failure.
	CodeBadRequest Code = "bad_request"
	// CodeProtoMismatch: the peer speaks a different protocol revision.
	// Another peer (built from matching code) may accept the message.
	CodeProtoMismatch Code = "proto_mismatch"
	// CodeUnknownJob: this executor's registry does not resolve the named
	// job. A worker serving different presets may.
	CodeUnknownJob Code = "unknown_job"
	// CodeKeyMismatch: the executor's registry derived a different cache
	// key for the job (different preset knobs or experiment code). The
	// task must not run here — it would poison the scheduler's cache —
	// but a matching worker can serve it.
	CodeKeyMismatch Code = "key_mismatch"
	// CodeNotFound: the referenced entity (job id, lease, worker
	// registration) does not exist on this peer — typically because it
	// expired. Re-establish it (e.g. a worker re-registers) rather than
	// retrying the same message.
	CodeNotFound Code = "not_found"
	// CodeDraining: the peer is shutting down and refuses new work;
	// dispatch elsewhere.
	CodeDraining Code = "draining"
	// CodeUnavailable: a transient condition (overload, startup); retry
	// later or elsewhere.
	CodeUnavailable Code = "unavailable"
	// CodeCanceled: the referenced job was canceled; its tasks will never
	// produce results.
	CodeCanceled Code = "canceled"
	// CodeQueueFull: admission control rejected the submission because
	// the tenant's pending queue is at its depth limit. Back off and
	// resubmit once the backlog drains.
	CodeQueueFull Code = "queue_full"
	// CodeRateLimited: admission control rejected the submission because
	// the tenant exceeded its sustained submission rate (token bucket).
	// Unlike queue_full — a statement about standing backlog — this is a
	// statement about arrival speed: the same submission succeeds after
	// the RetryAfterNS hint, without anything needing to drain.
	CodeRateLimited Code = "rate_limited"
	// CodeNotLeader: the peer is a replication follower (or a fenced
	// ex-primary) and refuses mutations. The Primary field carries the
	// current leader's address when known; retry there after the
	// RetryAfterNS floor.
	CodeNotLeader Code = "not_leader"
	// CodeInternal: an unexpected failure on the serving side.
	CodeInternal Code = "internal"
)

// retryableByCode is the canonical retry semantics of each code:
// whether the same message may succeed against a different peer (or the
// same peer later). Clients key retry/exclusion policy off
// Error.Retryable, which constructors seed from this table.
var retryableByCode = map[Code]bool{
	CodeBadRequest:    false,
	CodeProtoMismatch: true,
	CodeUnknownJob:    true,
	CodeKeyMismatch:   true,
	CodeNotFound:      false,
	CodeDraining:      true,
	CodeUnavailable:   true,
	CodeCanceled:      false,
	CodeQueueFull:     true,
	CodeRateLimited:   true,
	CodeNotLeader:     true,
	CodeInternal:      true,
}

// Codes lists every defined Code (wire-contract enumeration, handy for
// exhaustive round-trip tests and metrics label allow-lists).
func Codes() []Code {
	return []Code{
		CodeBadRequest, CodeProtoMismatch, CodeUnknownJob, CodeKeyMismatch,
		CodeNotFound, CodeDraining, CodeUnavailable, CodeCanceled,
		CodeQueueFull, CodeRateLimited, CodeNotLeader, CodeInternal,
	}
}

// Error is the typed protocol error: a stable code, a human-readable
// message, and the retry decision already made by the side that knows
// why the request failed. It marshals as JSON and is the body of every
// non-200 HTTP response in the dlexec2 transport.
type Error struct {
	Code      Code   `json:"code"`
	Msg       string `json:"message"`
	Retryable bool   `json:"retryable"`
	// RetryAfterNS, when > 0, is the serving side's own estimate of how
	// long the condition lasts (rate_limited sets it to the token
	// bucket's refill time). Clients floor their backoff at it; the HTTP
	// transport mirrors it as a Retry-After header.
	RetryAfterNS int64 `json:"retry_after_ns,omitempty"`
	// Primary, set on not_leader errors, is the address of the broker
	// currently accepting mutations (as far as the refusing peer knows).
	// Clients fail over to it instead of blind-rotating their list.
	Primary string `json:"primary,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string { return string(e.Code) + ": " + e.Msg }

// Errf builds an Error with the code's canonical retryability.
func Errf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...), Retryable: retryableByCode[code]}
}

// AsError extracts a typed protocol error from an error chain; ok is
// false for plain Go errors (which callers should treat as transport
// failures — retryable, but counting against the peer's health).
func AsError(err error) (*Error, bool) {
	var ae *Error
	if errors.As(err, &ae) {
		return ae, true
	}
	return nil, false
}

// Retryable reports whether err may succeed against a different peer:
// typed errors answer from their flag, untyped errors default to true
// (transport failures are the canonical retry-elsewhere case).
func Retryable(err error) bool {
	if ae, ok := AsError(err); ok {
		return ae.Retryable
	}
	return true
}
