package faultinject

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func mustPlan(t *testing.T, p Plan) *Injector {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return New(&p)
}

// TestLoadPlanValidates: the loader rejects malformed plans with a
// pointed message, accepts a good one.
func TestLoadPlanValidates(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	good := write("good.json", `{"seed": 7, "rules": [
		{"point": "server.poll", "kind": "drop", "prob": 0.5, "count": 3},
		{"point": "client.*", "kind": "delay", "delay_ms": 10}
	]}`)
	p, err := LoadPlan(good)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.Rules) != 2 {
		t.Fatalf("loaded plan %+v", p)
	}
	for name, body := range map[string]string{
		"empty.json":   `{"seed": 1, "rules": []}`,
		"badkind.json": `{"rules": [{"point": "a", "kind": "explode"}]}`,
		"nodelay.json": `{"rules": [{"point": "a", "kind": "delay"}]}`,
		"badprob.json": `{"rules": [{"point": "a", "kind": "drop", "prob": 2}]}`,
		"noparse.json": `{`,
	} {
		if _, err := LoadPlan(write(name, body)); err == nil {
			t.Fatalf("%s: loaded without error", name)
		}
	}
	if _, err := LoadPlan(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded without error")
	}
}

// TestEvalCountAfterProb: After skips, Count caps, and Prob draws are
// deterministic for a fixed seed.
func TestEvalCountAfterProb(t *testing.T) {
	in := mustPlan(t, Plan{Rules: []Rule{
		{Point: "p", Kind: KindDrop, After: 2, Count: 3},
	}})
	var fires []bool
	for i := 0; i < 8; i++ {
		_, ok := in.Eval("p")
		fires = append(fires, ok)
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("event %d: fired=%v, want %v (full: %v)", i, fires[i], want[i], fires)
		}
	}
	if got := in.Fired()["p/drop"]; got != 3 {
		t.Fatalf("fired count %d, want 3", got)
	}

	// Prob with a fixed seed is reproducible: two injectors built from
	// the same plan fire on exactly the same event indices.
	plan := Plan{Seed: 99, Rules: []Rule{{Point: "p", Kind: KindDrop, Prob: 0.5}}}
	a, b := New(&plan), New(&plan)
	fired := 0
	for i := 0; i < 200; i++ {
		_, oa := a.Eval("p")
		_, ob := b.Eval("p")
		if oa != ob {
			t.Fatalf("event %d: same plan diverged", i)
		}
		if oa {
			fired++
		}
	}
	if fired < 60 || fired > 140 {
		t.Fatalf("prob 0.5 fired %d/200 — RNG wired wrong", fired)
	}
}

// TestEvalGlobs: rules match points by glob; non-matching points never
// consume rule state.
func TestEvalGlobs(t *testing.T) {
	in := mustPlan(t, Plan{Rules: []Rule{
		{Point: "server.*", Kind: KindError, Count: 1},
	}})
	if _, ok := in.Eval("client.poll"); ok {
		t.Fatal("client point matched a server glob")
	}
	act, ok := in.Eval("server.done")
	if !ok || act.Kind != KindError {
		t.Fatalf("server point: %+v fired=%v", act, ok)
	}
	if _, ok := in.Eval("server.poll"); ok {
		t.Fatal("count=1 rule fired twice")
	}
}

// TestNilInjectorIsInert: call sites need no nil guards.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if _, ok := in.Eval("anything"); ok {
		t.Fatal("nil injector fired")
	}
	if in.Fired() != nil {
		t.Fatal("nil injector reported fires")
	}
}

// TestPointFromPath strips routes to their verb.
func TestPointFromPath(t *testing.T) {
	for in, want := range map[string]string{
		"/v2/poll": "poll", "/v1/execute": "execute", "/": "root", "poll": "poll",
	} {
		if got := PointFromPath(in); got != want {
			t.Fatalf("PointFromPath(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestTransportFaults exercises drop, error, disconnect and delay at
// the RoundTripper seam against a live test server.
func TestTransportFaults(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	in := mustPlan(t, Plan{Rules: []Rule{
		{Point: "client.drop", Kind: KindDrop, Count: 1},
		{Point: "client.err", Kind: KindError, Count: 1},
		{Point: "client.lost", Kind: KindDisconnect, Count: 1},
		{Point: "client.slow", Kind: KindDelay, DelayMS: 30, Count: 1},
	}})
	client := &http.Client{Transport: &Transport{Inj: in}}

	// drop: fails without touching the server.
	before := hits
	if _, err := client.Get(ts.URL + "/v2/drop"); err == nil {
		t.Fatal("dropped request succeeded")
	}
	if hits != before {
		t.Fatal("dropped request reached the server")
	}
	// error: same client-visible shape.
	if _, err := client.Get(ts.URL + "/v2/err"); err == nil {
		t.Fatal("errored request succeeded")
	}
	// disconnect: the server DID act, the client still errors.
	before = hits
	if _, err := client.Get(ts.URL + "/v2/lost"); err == nil {
		t.Fatal("disconnected request succeeded")
	}
	if hits != before+1 {
		t.Fatal("disconnect did not reach the server")
	}
	// delay: succeeds, measurably later.
	start := time.Now()
	resp, err := client.Get(ts.URL + "/v2/slow")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delayed request returned in %v, want >= 30ms", d)
	}
	// Faults exhausted (count=1 each): everything passes through now.
	resp, err = client.Get(ts.URL + "/v2/drop")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

// TestMiddlewareFaults: server-side drop severs the connection (client
// sees a transport error, not a status), error answers 503, delay
// stalls, and untouched routes pass through.
func TestMiddlewareFaults(t *testing.T) {
	in := mustPlan(t, Plan{Rules: []Rule{
		{Point: "server.drop", Kind: KindDrop, Count: 1},
		{Point: "server.err", Kind: KindError, Count: 1},
		{Point: "server.slow", Kind: KindDelay, DelayMS: 30, Count: 1},
	}})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	ts := httptest.NewServer(Middleware(inner, in))
	defer ts.Close()

	if _, err := http.Get(ts.URL + "/v2/drop"); err == nil {
		t.Fatal("dropped request got a response")
	}
	resp, err := http.Get(ts.URL + "/v2/err")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "injected") {
		t.Fatalf("error fault: %d %q", resp.StatusCode, body)
	}
	start := time.Now()
	resp, err = http.Get(ts.URL + "/v2/slow")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delayed request answered in %v, want >= 30ms", d)
	}
	// Pass-through for unmatched routes and exhausted rules.
	resp, err = http.Get(ts.URL + "/v2/other")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("pass-through body %q", body)
	}
}

// TestSummary renders a sorted receipt line.
func TestSummary(t *testing.T) {
	in := mustPlan(t, Plan{Rules: []Rule{
		{Point: "b", Kind: KindDrop, Count: 1},
		{Point: "a", Kind: KindTorn, Count: 1},
	}})
	if got := in.Summary(); got != "-" {
		t.Fatalf("idle summary %q", got)
	}
	in.Eval("b")
	in.Eval("a")
	if got := in.Summary(); got != "a/torn=1 b/drop=1" {
		t.Fatalf("summary %q", got)
	}
}
