// Package faultinject perturbs the distributed stack on purpose.
//
// The BFA lineage frames an adversary as "what breaks under
// perturbation"; this package applies the same doctrine to our own
// fleet. A fault plan — a small JSON file of rules bound to named
// fault points — is loaded by the daemons (test-only, behind
// -allow-faults) and injected at three seams:
//
//   - the client side, as an http.RoundTripper wrapper (Transport):
//     requests are dropped before sending, delayed, failed
//     synthetically, or sent-then-disconnected (the reply is lost but
//     the server acted — the nastiest distributed-systems case);
//   - the server side, as a middleware (Middleware) over the push
//     worker's and the broker's handlers: requests are dropped (the
//     connection is severed with no response), delayed or failed;
//   - the journal's write path (queue.Journal consults an Injector):
//     appends are torn mid-record (the SIGKILL wound, without the
//     SIGKILL), dropped or delayed.
//
// Fault points are dotted names: "client.poll", "server.done",
// "journal.append.submit" — the verb is the last HTTP path segment or
// journal entry kind. Rules match points by glob (path.Match), so
// "server.*" perturbs a whole side and "journal.append.done" exactly
// one record type.
//
// Determinism: the plan carries a seed, and each rule owns a private
// RNG derived from (seed, rule index). Whether a given matching event
// fires depends only on how many matching events that rule has seen —
// not on wall time or goroutine interleaving — so a single-threaded
// sequence of events replays exactly, and concurrent runs stay
// statistically stable. Chaos gates pin the plan, not the schedule.
//
// This is test tooling, not a resilience feature: daemons refuse a
// fault plan unless -allow-faults is also set, so a stray flag in a
// production unit file fails loudly instead of silently corrupting a
// fleet.
package faultinject

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind is a fault flavor.
type Kind string

const (
	// KindDrop loses the event: a client request is never sent, a
	// server request gets its connection severed with no response, a
	// journal append is silently skipped.
	KindDrop Kind = "drop"
	// KindDelay stalls the event by DelayMS before letting it proceed.
	KindDelay Kind = "delay"
	// KindError fails the event synthetically: a client request errors
	// without touching the network, a server answers 503.
	KindError Kind = "error"
	// KindDisconnect (client side) sends the request but loses the
	// reply — the server-acted-but-client-doesn't-know case. On the
	// server and journal sides it degrades to drop.
	KindDisconnect Kind = "disconnect"
	// KindTorn (journal side) writes only the first half of the record
	// — the torn-write wound a power cut or SIGKILL leaves on the
	// journal tail.
	KindTorn Kind = "torn"
)

// Rule binds one fault to a set of points. A rule fires on a matching
// event when (a) more than After matching events have been seen, (b)
// fewer than Count faults have fired (0 = unlimited), and (c) the
// rule's seeded RNG draw clears Prob (0 or 1 = always).
type Rule struct {
	// Point is a glob over fault-point names ("server.poll",
	// "client.*", "journal.append.done").
	Point string `json:"point"`
	Kind  Kind   `json:"kind"`
	// Prob is the per-event fire probability; 0 means 1 (always).
	Prob float64 `json:"prob,omitempty"`
	// Count caps how many times this rule fires; 0 = unlimited.
	Count int `json:"count,omitempty"`
	// After skips the first N matching events (lets a run warm up
	// before the faults start).
	After int `json:"after,omitempty"`
	// DelayMS is the stall for KindDelay.
	DelayMS int `json:"delay_ms,omitempty"`
}

// Plan is a parsed fault plan.
type Plan struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

// LoadPlan reads and validates a plan file.
func LoadPlan(file string) (*Plan, error) {
	buf, err := os.ReadFile(file)
	if err != nil {
		return nil, fmt.Errorf("faultinject: %w", err)
	}
	var p Plan
	if err := json.Unmarshal(buf, &p); err != nil {
		return nil, fmt.Errorf("faultinject: parse %s: %w", file, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("faultinject: %s: %w", file, err)
	}
	return &p, nil
}

// Validate checks every rule is well-formed.
func (p *Plan) Validate() error {
	if len(p.Rules) == 0 {
		return fmt.Errorf("plan has no rules")
	}
	for i, r := range p.Rules {
		if r.Point == "" {
			return fmt.Errorf("rule %d: empty point", i)
		}
		if _, err := path.Match(r.Point, "x"); err != nil {
			return fmt.Errorf("rule %d: bad point glob %q: %v", i, r.Point, err)
		}
		switch r.Kind {
		case KindDrop, KindDelay, KindError, KindDisconnect, KindTorn:
		default:
			return fmt.Errorf("rule %d: unknown kind %q", i, r.Kind)
		}
		if r.Kind == KindDelay && r.DelayMS <= 0 {
			return fmt.Errorf("rule %d: delay rule needs delay_ms > 0", i)
		}
		if r.Prob < 0 || r.Prob > 1 {
			return fmt.Errorf("rule %d: prob %v outside [0, 1]", i, r.Prob)
		}
	}
	return nil
}

// Action is what a fault point must do: nothing (zero value), or the
// Kind with its parameters.
type Action struct {
	Kind  Kind
	Delay time.Duration
}

// ruleState is one rule plus its private RNG and counters.
type ruleState struct {
	Rule
	rng   *rand.Rand
	seen  int // matching events observed
	fired int // faults actually injected
}

// Injector evaluates a plan at fault points. All methods are safe for
// concurrent use; a nil *Injector never fires (so call sites need no
// guards).
type Injector struct {
	mu    sync.Mutex
	rules []*ruleState
}

// New builds an Injector from a validated plan. Each rule's RNG is
// seeded from (plan seed, rule index), so rules draw independent but
// reproducible streams.
func New(p *Plan) *Injector {
	in := &Injector{}
	for i, r := range p.Rules {
		in.rules = append(in.rules, &ruleState{
			Rule: r,
			rng:  rand.New(rand.NewSource(p.Seed + int64(i)*1_000_003)),
		})
	}
	return in
}

// Eval reports whether a fault fires at the named point, and which.
// The first matching rule that fires wins; rules that match but do not
// fire still consume one "seen" event (their After/Prob state
// advances).
func (in *Injector) Eval(point string) (Action, bool) {
	if in == nil {
		return Action{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if ok, _ := path.Match(r.Point, point); !ok {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && r.rng.Float64() >= r.Prob {
			continue
		}
		r.fired++
		return Action{Kind: r.Kind, Delay: time.Duration(r.DelayMS) * time.Millisecond}, true
	}
	return Action{}, false
}

// Fired snapshots how many faults each rule has injected, keyed
// "point/kind" (merged across rules sharing both). Daemons log it on
// exit so a chaos run's receipt shows which perturbations actually
// landed.
func (in *Injector) Fired() map[string]int {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int)
	for _, r := range in.rules {
		if r.fired > 0 {
			out[r.Point+"/"+string(r.Kind)] += r.fired
		}
	}
	return out
}

// Summary renders Fired as one sorted, log-friendly line ("-" when
// nothing fired).
func (in *Injector) Summary() string {
	fired := in.Fired()
	if len(fired) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(fired))
	for k := range fired {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, fired[k])
	}
	return strings.Join(parts, " ")
}

// PointFromPath derives the verb of a fault point from an HTTP route:
// the last path segment ("/v2/poll" -> "poll", "/v1/execute" ->
// "execute"). Client and server sides prefix it with their side name.
func PointFromPath(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		p = p[i+1:]
	}
	if p == "" {
		return "root"
	}
	return p
}

// errInjected marks synthetic transport failures so logs distinguish
// them from real ones.
type errInjected struct{ point, kind string }

func (e errInjected) Error() string {
	return fmt.Sprintf("faultinject: injected %s at %s", e.kind, e.point)
}

// Transport wraps an http.RoundTripper with client-side faults at
// points "client.<verb>". Drop fails before the request is sent;
// disconnect sends it and then loses the reply; error fails
// synthetically; delay stalls, honoring the request context.
type Transport struct {
	// Base is the wrapped transport; nil uses http.DefaultTransport.
	Base http.RoundTripper
	// Inj evaluates the plan; nil passes everything through.
	Inj *Injector
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	point := "client." + PointFromPath(req.URL.Path)
	act, ok := t.Inj.Eval(point)
	if !ok {
		return base.RoundTrip(req)
	}
	switch act.Kind {
	case KindDrop, KindError:
		// The request never reaches the wire; the caller sees a
		// transport error, exactly like a lost packet or refused
		// connection.
		return nil, errInjected{point, string(act.Kind)}
	case KindDelay:
		if err := sleepCtx(req.Context(), act.Delay); err != nil {
			return nil, err
		}
		return base.RoundTrip(req)
	case KindDisconnect:
		// The server processes the request; the reply is lost. This is
		// the case retries must be idempotent against.
		resp, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body.Close()
		return nil, errInjected{point, string(act.Kind)}
	default:
		return base.RoundTrip(req)
	}
}

// Middleware wraps a handler with server-side faults at points
// "server.<verb>". Drop/disconnect sever the connection with no
// response (the client sees EOF); error answers 503 (an untyped body,
// which dlexec2 clients treat as a retryable transport failure);
// delay stalls before handling.
func Middleware(h http.Handler, in *Injector) http.Handler {
	if in == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		point := "server." + PointFromPath(r.URL.Path)
		act, ok := in.Eval(point)
		if !ok {
			h.ServeHTTP(w, r)
			return
		}
		switch act.Kind {
		case KindDrop, KindDisconnect:
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			// No hijack support (HTTP/2, recorders): degrade to an
			// empty 503, still a retryable failure to the client.
			w.WriteHeader(http.StatusServiceUnavailable)
		case KindDelay:
			if err := sleepCtx(r.Context(), act.Delay); err != nil {
				return
			}
			h.ServeHTTP(w, r)
		case KindError:
			http.Error(w, "faultinject: injected error at "+point,
				http.StatusServiceUnavailable)
		default:
			h.ServeHTTP(w, r)
		}
	})
}

// sleepCtx pauses for d or until ctx cancels.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
