package attack

// Attack-layer hot-path gauges (make bench-attack): the per-iteration
// cost of the BFA progressive bit search and of candidate selection
// alone, with allocation stats. BenchmarkBFASearchIter's allocs/op is
// the zero-alloc steady-state gate; BenchmarkRankCandidates tracks the
// bounded top-k selector against the pre-optimization full sort
// (README's Performance table records the before/after).

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/quant"
)

// benchVictim builds the ResNet-20 attack surface at the tiny preset
// scale without training (the gradient landscape's shape, not its
// quality, is what the search cost depends on).
func benchVictim(b *testing.B) (*quant.Model, nn.Batch) {
	b.Helper()
	ds, err := dataset.Generate(dataset.Tiny(4))
	if err != nil {
		b.Fatal(err)
	}
	qm := quant.NewModel(nn.NewResNet20(4, 0.25, 21))
	return qm, ds.TestSplit.Slice(0, 16)
}

// BenchmarkBFASearchIter times one steady-state search iteration —
// gradient pass, top-k selection, trial forward passes — on a reused
// Searcher. Allocs/op must stay at a small constant: no per-iteration
// candidate slices, map churn or activation buffers.
func BenchmarkBFASearchIter(b *testing.B) {
	qm, ab := benchVictim(b)
	cfg := DefaultBFAConfig()
	s, err := NewSearcher(qm, cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.step(ab) // warm scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step(ab)
	}
}

// BenchmarkRankCandidates times candidate selection alone (the part the
// bounded top-k selector replaced): one scan of the scored attack
// surface returning the top CandidatesPerIter untried bits.
func BenchmarkRankCandidates(b *testing.B) {
	qm, ab := benchVictim(b)
	cfg := DefaultBFAConfig()
	s, err := NewSearcher(qm, cfg)
	if err != nil {
		b.Fatal(err)
	}
	nn.GradientPass(qm.Net, ab)
	s.selectTopK() // warm scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.selectTopK()
	}
}
