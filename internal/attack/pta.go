package attack

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/dram"
	"repro/internal/memmap"
	"repro/internal/nn"
	"repro/internal/pagetable"
	"repro/internal/rowhammer"
	"repro/internal/stats"
)

// PTAConfig parameterises the page-table attack.
type PTAConfig struct {
	// Iterations is the number of attack rounds; each tries to corrupt
	// one weight page.
	Iterations int
	// AttackerPage is the attacker-controlled virtual page index.
	AttackerPage int
	// PayloadByte is the replacement value written over hijacked weight
	// frames (0x80 = -128, the most damaging int8 value).
	PayloadByte byte
	// Leak is the probability a denied PTE flip lands anyway (erroneous
	// SWAP exposure), as in Fig. 8's 9.6% accounting.
	Leak float64
	Seed uint64
}

// DefaultPTAConfig returns the paper-style PTA setup.
func DefaultPTAConfig() PTAConfig {
	return PTAConfig{
		Iterations:   100,
		AttackerPage: 0,
		PayloadByte:  0x80,
		Leak:         0,
		Seed:         0x97a,
	}
}

// PTA is the page-table attack of Fig. 3(b): the attacker flips a PFN bit
// in its *own* PTE (via RowHammer on the page-table row's neighbor) so the
// entry points at a victim weight frame, then overwrites that frame
// through its now-redirected virtual page.
type PTA struct {
	cfg    PTAConfig
	table  *pagetable.Table
	layout *memmap.Layout
	ctl    *controller.Controller
	engine *rowhammer.Engine
	rng    *stats.RNG

	// Stats
	Redirects int64
	Denied    int64
	Leaked    int64
}

// NewPTA wires the attack over the substrate.
func NewPTA(table *pagetable.Table, layout *memmap.Layout, ctl *controller.Controller, eng *rowhammer.Engine, cfg PTAConfig) (*PTA, error) {
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("attack: PTA iterations must be positive")
	}
	if cfg.Leak < 0 || cfg.Leak > 1 {
		return nil, fmt.Errorf("attack: PTA leak must be in [0,1]")
	}
	if cfg.AttackerPage < 0 || cfg.AttackerPage >= table.NumPages() {
		return nil, fmt.Errorf("attack: attacker page %d outside table", cfg.AttackerPage)
	}
	return &PTA{
		cfg: cfg, table: table, layout: layout, ctl: ctl, engine: eng,
		rng: stats.NewRNG(cfg.Seed),
	}, nil
}

// Run executes the attack, evaluating victim accuracy after each round.
func (p *PTA) Run(eval nn.BatchSource) (Result, error) {
	var res Result
	targets := p.layout.WeightRows()
	if len(targets) == 0 {
		return res, fmt.Errorf("attack: no weight rows to target")
	}
	geom := p.ctl.Device().Geometry()
	for iter := 0; iter < p.cfg.Iterations; iter++ {
		target := targets[iter%len(targets)]
		ok, denied, err := p.round(target, geom)
		if err != nil {
			return res, err
		}
		if ok {
			res.TotalFlips++
			p.Redirects++
		}
		if denied {
			res.TotalDenied++
			p.Denied++
		}
		rec := IterationRecord{Iteration: iter + 1, Flips: res.TotalFlips, Denied: res.TotalDenied}
		if eval != nil {
			rec.Accuracy = nn.Evaluate(p.layout.QM.Net, eval, 64)
		}
		res.Records = append(res.Records, rec)
	}
	return res, nil
}

// round performs one PTE corruption + payload write against one target
// weight frame.
func (p *PTA) round(target dram.RowAddr, geom dram.Geometry) (succeeded, denied bool, err error) {
	// 1. Attacker re-maps its own page (legitimate OS operation) so the
	//    stored PFN is one bit away from the target frame. The threat
	//    model grants VA->PA knowledge and memory massaging (§III).
	targetPFN := uint64(geom.LinearIndex(target))
	bit := p.rng.Intn(8) // flip within the PFN low byte
	setupPFN := targetPFN ^ (1 << uint(bit))
	if int(setupPFN) >= geom.TotalRows() {
		setupPFN = targetPFN ^ 1
		bit = 0
	}
	if err := p.table.Map(p.cfg.AttackerPage, geom.FromLinearIndex(int(setupPFN))); err != nil {
		return false, false, err
	}

	// 2. Hammer the PT row's neighbor to flip that PFN bit.
	pteRow, pteBit, err := p.table.PFNBitOf(p.cfg.AttackerPage, bit)
	if err != nil {
		return false, false, err
	}
	if err := p.engine.RegisterTarget(pteRow, pteBit); err != nil {
		return false, false, err
	}
	defer p.engine.ClearTargets()
	p.engine.ResetWindow(p.ctl.Device().Now())

	aggressors := geom.Neighbors(pteRow, 1)
	if len(aggressors) == 0 {
		return false, false, fmt.Errorf("attack: PT row %v has no neighbors", pteRow)
	}
	trh := p.engine.Config().TRH
	flipped := false
	deniedAll := true
	for _, agg := range aggressors {
		wasDenied := false
		for i := 0; i < trh+1; i++ {
			activated, _, err := p.ctl.HammerAttempt(agg)
			if err != nil {
				return false, false, err
			}
			if !activated {
				wasDenied = true
				break
			}
		}
		if wasDenied {
			continue
		}
		deniedAll = false
		frame, err := p.table.FrameOf(p.cfg.AttackerPage)
		if err == nil && frame == target {
			flipped = true
			break
		}
	}
	if !flipped && deniedAll {
		if p.rng.Bernoulli(p.cfg.Leak) {
			// Erroneous-SWAP exposure: the flip lands despite the lock.
			if err := p.ctl.Device().FlipBit(pteRow, pteBit); err != nil {
				return false, false, err
			}
			p.Leaked++
			flipped = true
		} else {
			return false, true, nil
		}
	}
	if !flipped {
		return false, false, nil
	}

	// 3. The attacker's page now maps to the victim frame: overwrite it
	//    with the payload through the page table, then let the victim's
	//    next inference read the corrupted weights.
	frame, err := p.table.FrameOf(p.cfg.AttackerPage)
	if err != nil {
		return false, false, err
	}
	payload := make([]byte, geom.RowBytes)
	for i := range payload {
		payload[i] = p.cfg.PayloadByte
	}
	if err := p.ctl.Device().PokeRow(frame, payload); err != nil {
		return false, false, err
	}
	if _, err := p.layout.SyncFromDRAM(); err != nil {
		return false, false, err
	}
	// Clean up: restore the attacker mapping legitimately for next round.
	if err := p.table.Unmap(p.cfg.AttackerPage); err != nil {
		return false, false, err
	}
	return true, false, nil
}
