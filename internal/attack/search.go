package attack

import (
	"sync"

	"repro/internal/nn"
	"repro/internal/par"
	"repro/internal/quant"
)

// searchMinChunk is the minimum number of weights one scoring worker
// takes; below that the fan-out bookkeeping costs more than the scan.
const searchMinChunk = 4096

// better is the total order the bit search selects under: higher score
// first, ties broken on (GlobalW, Bit) so the top-k set — and therefore
// the committed flip sequence — is a pure function of the candidate set,
// independent of scan partitioning or worker count.
func better(a, b Candidate) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.GlobalW != b.GlobalW {
		return a.GlobalW < b.GlobalW
	}
	return a.Bit < b.Bit
}

// topK is a bounded selector: a fixed-capacity min-heap under the better
// order whose root is the worst kept candidate, so a full heap admits a
// new candidate with one comparison against the root and no allocation.
type topK struct {
	items []Candidate // heap-ordered: items[0] loses to every other kept item
	k     int
}

func (h *topK) reset(k int) {
	if cap(h.items) < k {
		h.items = make([]Candidate, 0, k)
	}
	h.items = h.items[:0]
	h.k = k
}

// full reports whether the heap holds k candidates, in which case
// items[0] is the admission bar.
func (h *topK) full() bool { return len(h.items) == h.k }

// push admits c, which the caller has already checked beats the bar.
func (h *topK) push(c Candidate) {
	if len(h.items) < h.k {
		h.items = append(h.items, c)
		// Sift up: a child must beat its parent (parent is worse).
		i := len(h.items) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !better(h.items[p], h.items[i]) {
				break
			}
			h.items[p], h.items[i] = h.items[i], h.items[p]
			i = p
		}
		return
	}
	// Replace the worst kept candidate and sift down.
	h.items[0] = c
	i := 0
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && better(h.items[worst], h.items[l]) {
			worst = l
		}
		if r < n && better(h.items[worst], h.items[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.items[i], h.items[worst] = h.items[worst], h.items[i]
		i = worst
	}
}

// Searcher runs the progressive bit search with all scratch state held
// for reuse, so steady-state iterations are allocation-free.
//
// Reuse contract: a Searcher is bound to one quantized model and one
// configuration. Run may be called any number of times (each call starts
// a fresh attack and clears the tried-bit set), but the Searcher must
// not be shared between goroutines — the scoring fan-out inside one call
// is the only concurrency it manages. Scratch grows to the high-water
// mark of CandidatesPerIter and the worker budget and is never released.
type Searcher struct {
	qm  *quant.Model
	cfg BFAConfig

	// tried records (globalW, bit) pairs already committed or denied so
	// the search never proposes the same flip twice.
	tried map[[2]int]bool

	// heaps[w] is scoring worker w's bounded selector; heaps[0] belongs
	// to the calling goroutine and is the only one used serially.
	heaps []topK
	// sel is the merged selection, reused every iteration.
	sel []Candidate
}

// NewSearcher validates the configuration and builds a Searcher over the
// quantized model.
func NewSearcher(qm *quant.Model, cfg BFAConfig) (*Searcher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Searcher{
		qm:    qm,
		cfg:   cfg,
		tried: make(map[[2]int]bool, cfg.Iterations),
		sel:   make([]Candidate, 0, cfg.CandidatesPerIter),
	}, nil
}

// reset clears per-attack state, keeping scratch capacity.
func (s *Searcher) reset() {
	clear(s.tried)
}

// offer funnels one scored (weight, bit) into a worker's selector. The
// admission test runs before the tried-set lookup so the map is only
// consulted for candidates that would actually be kept (at most k per
// worker per scan, instead of once per scored bit).
func (s *Searcher) offer(h *topK, globalW, bit int, score float64) {
	c := Candidate{GlobalW: globalW, Bit: bit, Score: score}
	if h.full() && !better(c, h.items[0]) {
		return
	}
	if s.tried[[2]int{globalW, bit}] {
		return
	}
	h.push(c)
}

// scoreRange scores every untried (weight, bit) with global weight index
// in [glo, ghi) by the first-order loss increase grad*deltaW, keeping the
// best in h. A flip whose estimate is <= 0 would reduce the loss and is
// never a candidate.
func (s *Searcher) scoreRange(glo, ghi int, h *topK) {
	pi, li := s.qm.Locate(glo)
	base := glo - li // global index of Params[pi].Q[0]
	for base < ghi && pi < len(s.qm.Params) {
		qp := s.qm.Params[pi]
		end := qp.NumWeights()
		if base+end > ghi {
			end = ghi - base
		}
		grads := qp.Param.Grad.Data
		scale := float64(qp.Scale)
		lo, hi := 0, qp.Bits
		if s.cfg.MSBOnly {
			lo = qp.Bits - 1
		}
		for i := li; i < end; i++ {
			g := float64(grads[i])
			if g == 0 {
				continue
			}
			for k := lo; k < hi; k++ {
				score := g * float64(qp.BitDelta(i, k)) * scale
				if score <= 0 {
					continue
				}
				s.offer(h, base+i, k, score)
			}
		}
		base += qp.NumWeights()
		li = 0
		pi++
	}
}

// selectTopK scans the gradient-scored attack surface and returns the
// top CandidatesPerIter untried candidates, best first. The scan fans
// out over the weight range under the par token budget; each worker
// keeps its own bounded selector and the merge re-ranks the union under
// the same total order, so the result is bit-identical at any
// parallelism. The returned slice is Searcher-owned scratch, valid until
// the next call.
func (s *Searcher) selectTopK() []Candidate {
	k := s.cfg.CandidatesPerIter
	total := s.qm.TotalWeights()
	workers := 1
	if maxW := total / searchMinChunk; maxW > 1 {
		if cap := par.Budget(); maxW > cap {
			maxW = cap
		}
		if maxW > 1 {
			workers = 1 + par.TryAcquire(maxW-1)
		}
	}
	for len(s.heaps) < workers {
		s.heaps = append(s.heaps, topK{})
	}
	if workers == 1 {
		s.heaps[0].reset(k)
		s.scoreRange(0, total, &s.heaps[0])
	} else {
		s.scoreParallel(total, workers, k)
	}
	// Merge: the union of per-worker keeps is at most workers*k
	// candidates; insertion-sort it under the total order and keep k.
	s.sel = s.sel[:0]
	for w := 0; w < workers; w++ {
		for _, c := range s.heaps[w].items {
			s.sel = append(s.sel, c)
		}
	}
	for i := 1; i < len(s.sel); i++ {
		c := s.sel[i]
		j := i - 1
		for j >= 0 && better(c, s.sel[j]) {
			s.sel[j+1] = s.sel[j]
			j--
		}
		s.sel[j+1] = c
	}
	if len(s.sel) > k {
		s.sel = s.sel[:k]
	}
	return s.sel
}

// scoreParallel fans the scoring scan out over workers contiguous chunks
// (the calling goroutine takes chunk 0 and the tokens are returned when
// every worker finishes). Chunk boundaries only decide which heap a
// candidate lands in; the merge erases that.
func (s *Searcher) scoreParallel(total, workers, k int) {
	defer par.ReleaseN(workers - 1)
	chunk := (total + workers - 1) / workers
	var wg sync.WaitGroup
	defer wg.Wait()
	for w := 1; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		h := &s.heaps[w]
		h.reset(k)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int, h *topK) {
			defer wg.Done()
			s.scoreRange(lo, hi, h)
		}(lo, hi, h)
	}
	s.heaps[0].reset(k)
	s.scoreRange(0, chunk, &s.heaps[0])
}

// step runs one search iteration: a gradient pass on the attacker's
// batch, top-k candidate selection, and a real-forward-pass trial of
// each candidate. It returns the candidate whose trial flip raised the
// batch loss most, or ok=false when the surface is exhausted. The model
// is left unmodified — committing the flip is the caller's call to make
// through a FlipExecutor.
func (s *Searcher) step(batch nn.Batch) (Candidate, bool) {
	nn.GradientPass(s.qm.Net, batch)
	cands := s.selectTopK()
	if len(cands) == 0 {
		return Candidate{}, false
	}
	best := -1
	bestLoss := -1.0
	for i := range cands {
		c := cands[i]
		s.qm.FlipGlobal(c.GlobalW, c.Bit)
		loss := nn.BatchLoss(s.qm.Net, batch)
		s.qm.FlipGlobal(c.GlobalW, c.Bit) // undo the trial flip
		if loss > bestLoss {
			bestLoss = loss
			best = i
		}
	}
	return cands[best], true
}

// Run executes the progressive bit search against the model, committing
// flips through the executor and evaluating accuracy on eval after every
// iteration. It starts a fresh attack: the tried-bit set is cleared.
func (s *Searcher) Run(attackBatch nn.Batch, eval nn.BatchSource, exec FlipExecutor) (Result, error) {
	s.reset()
	res := Result{Records: make([]IterationRecord, 0, s.cfg.Iterations)}
	for iter := 0; iter < s.cfg.Iterations; iter++ {
		if s.cfg.Stop != nil {
			if err := s.cfg.Stop(); err != nil {
				return res, err
			}
		}
		chosen, ok := s.step(attackBatch)
		if !ok {
			break
		}
		s.tried[[2]int{chosen.GlobalW, chosen.Bit}] = true
		out, err := exec.TryFlip(chosen.GlobalW, chosen.Bit)
		if err != nil {
			return res, err
		}
		if out.Succeeded {
			res.TotalFlips++
		}
		if out.Denied {
			res.TotalDenied++
		}
		rec := IterationRecord{
			Iteration: iter + 1,
			Flips:     res.TotalFlips,
			Denied:    res.TotalDenied,
			Loss:      nn.BatchLoss(s.qm.Net, attackBatch),
		}
		if eval != nil {
			rec.Accuracy = nn.Evaluate(s.qm.Net, eval, 64)
		}
		res.Records = append(res.Records, rec)
	}
	if len(res.Records) == 0 {
		// Match the pre-Searcher trace exactly: a run that never found a
		// candidate reports nil (JSON null), not an empty array.
		res.Records = nil
	}
	return res, nil
}
