package attack

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dram"
	"repro/internal/memmap"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/stats"
)

// The victim is trained once and restored from a pristine snapshot for
// each test, since training dominates test time on one core.
var (
	victimOnce sync.Once
	victimQM   *quant.Model
	victimSnap [][]int8
	victimAB   nn.Batch
	victimEval nn.BatchSource
)

// trainedVictim returns a small trained, quantized model with its data,
// with weights reset to their post-training state.
func trainedVictim(t *testing.T) (*quant.Model, nn.Batch, nn.BatchSource) {
	t.Helper()
	victimOnce.Do(func() {
		cfg := dataset.Tiny(4)
		cfg.Train = 160
		ds, err := dataset.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		net := nn.NewResNet20(4, 0.25, 21)
		tc := nn.DefaultTrainConfig()
		tc.Epochs = 5
		nn.Fit(net, &ds.TrainSplit, tc)
		victimQM = quant.NewModel(net)
		victimSnap = victimQM.Snapshot()
		victimEval = dataset.Subset(&ds.TestSplit, 60)
		victimAB = ds.TestSplit.Slice(0, 16)
	})
	victimQM.Restore(victimSnap)
	return victimQM, victimAB, victimEval
}

func TestBFADegradesAccuracy(t *testing.T) {
	qm, ab, eval := trainedVictim(t)
	clean := nn.Evaluate(qm.Net, eval, 32)
	if clean < 0.7 {
		t.Fatalf("victim too weak to attack: clean acc %.2f", clean)
	}
	cfg := DefaultBFAConfig()
	cfg.Iterations = 10
	cfg.CandidatesPerIter = 3
	res, err := BFA(qm, ab, eval, &DirectExecutor{QM: qm}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFlips != 10 {
		t.Fatalf("flips = %d, want 10 (direct executor always lands)", res.TotalFlips)
	}
	if res.FinalAccuracy() >= clean {
		t.Fatalf("BFA did not degrade accuracy: %.3f -> %.3f", clean, res.FinalAccuracy())
	}
	// Records must be cumulative and monotone in flips.
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i].Flips < res.Records[i-1].Flips {
			t.Fatal("flip count must be cumulative")
		}
	}
}

func TestBFABeatsRandomAttack(t *testing.T) {
	qm, ab, eval := trainedVictim(t)
	snap := qm.Snapshot()
	cfg := DefaultBFAConfig()
	cfg.Iterations = 10
	cfg.CandidatesPerIter = 3
	bfa, err := BFA(qm, ab, eval, &DirectExecutor{QM: qm}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	qm.Restore(snap)
	rnd, err := RandomAttack(qm, eval, &DirectExecutor{QM: qm}, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	qm.Restore(snap)
	// The paper's Fig. 1(a): same flip budget, targeted must hurt much more.
	if bfa.FinalAccuracy() >= rnd.FinalAccuracy() {
		t.Fatalf("targeted BFA (%.3f) must beat random (%.3f)",
			bfa.FinalAccuracy(), rnd.FinalAccuracy())
	}
}

func TestLeakyExecutorStatistics(t *testing.T) {
	qm, _, _ := trainedVictim(t)
	exec := &LeakyExecutor{QM: qm, Leak: 0.25, RNG: stats.NewRNG(9)}
	succ := 0
	const n = 2000
	for i := 0; i < n; i++ {
		out, err := exec.TryFlip(i%qm.TotalWeights(), i%8)
		if err != nil {
			t.Fatal(err)
		}
		if out.Succeeded {
			succ++
		} else if !out.Denied {
			t.Fatal("must be succeeded or denied")
		}
	}
	rate := float64(succ) / n
	if rate < 0.2 || rate > 0.3 {
		t.Fatalf("leak rate %.3f, want ~0.25", rate)
	}
}

func TestBFAUntilCollapse(t *testing.T) {
	qm, ab, eval := trainedVictim(t)
	cfg := DefaultBFAConfig()
	cfg.CandidatesPerIter = 3
	flips, acc, err := BFAUntilCollapse(qm, ab, eval, &DirectExecutor{QM: qm}, cfg, 0.45, 25)
	if err != nil {
		t.Fatal(err)
	}
	if acc > 0.45 && flips < 25 {
		t.Fatalf("stopped early without collapse: flips=%d acc=%.3f", flips, acc)
	}
	if flips == 0 {
		t.Fatal("no flips committed")
	}
}

// TestBFAStopHookAbortsAttack: a tripped Stop surfaces its error with
// the partial trace — how Ctrl-C interrupts an in-flight attack.
func TestBFAStopHookAbortsAttack(t *testing.T) {
	qm, ab, eval := trainedVictim(t)
	cfg := DefaultBFAConfig()
	cfg.Iterations = 10
	cfg.CandidatesPerIter = 2
	iters := 0
	stopErr := errors.New("attack cancelled")
	cfg.Stop = func() error {
		iters++
		if iters > 3 {
			return stopErr
		}
		return nil
	}
	res, err := BFA(qm, ab, eval, &DirectExecutor{QM: qm}, cfg)
	if err != stopErr {
		t.Fatalf("err = %v, want the stop error", err)
	}
	if len(res.Records) != 3 {
		t.Fatalf("partial trace has %d records, want 3", len(res.Records))
	}
}

func TestBFAConfigValidation(t *testing.T) {
	qm, ab, eval := trainedVictim(t)
	bad := BFAConfig{}
	if _, err := BFA(qm, ab, eval, &DirectExecutor{QM: qm}, bad); err == nil {
		t.Fatal("zero config must fail")
	}
	if _, err := RandomAttack(qm, eval, &DirectExecutor{QM: qm}, 0, 1); err == nil {
		t.Fatal("zero iterations must fail")
	}
}

// buildStack assembles the full DRAM substrate around a quantized model.
func buildStack(t *testing.T, qm *quant.Model, protect bool, leak float64) (*core.System, *memmap.Layout, *DRAMExecutor) {
	t.Helper()
	ccfg := core.DefaultConfig()
	ccfg.Hammer.TRH = 30
	sys, err := core.NewSystem(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := memmap.DefaultOptions()
	opts.StartRow = 1
	opts.Avoid = func(a dram.RowAddr) bool { return sys.Controller().IsReserved(a) }
	layout, err := memmap.New(qm, sys.Device(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if protect {
		if _, err := sys.ProtectWeights(layout); err != nil {
			t.Fatal(err)
		}
	}
	exec, err := NewDRAMExecutor(layout, sys.Controller(), sys.Hammer(), leak, 77)
	if err != nil {
		t.Fatal(err)
	}
	return sys, layout, exec
}

func TestDRAMExecutorFlipsThroughHammering(t *testing.T) {
	qm, _, _ := trainedVictim(t)
	_, _, exec := buildStack(t, qm, false, 0)
	pi, li := qm.Locate(3)
	before := qm.Params[pi].Get(li)
	out, err := exec.TryFlip(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Succeeded || out.Denied {
		t.Fatalf("undefended flip outcome: %+v", out)
	}
	after := qm.Params[pi].Get(li)
	if after == before {
		t.Fatal("weight unchanged after hammering flip")
	}
	if exec.Activations == 0 {
		t.Fatal("no activations recorded")
	}
}

func TestDRAMExecutorDeniedUnderProtection(t *testing.T) {
	qm, _, _ := trainedVictim(t)
	_, _, exec := buildStack(t, qm, true, 0)
	snap := qm.Snapshot()
	for w := 0; w < 5; w++ {
		out, err := exec.TryFlip(w*3, 7)
		if err != nil {
			t.Fatal(err)
		}
		if out.Succeeded || !out.Denied {
			t.Fatalf("defended flip outcome: %+v", out)
		}
	}
	if qm.HammingDistance(snap) != 0 {
		t.Fatal("weights changed despite full denial")
	}
	if exec.DeniedActs == 0 {
		t.Fatal("denials not recorded")
	}
}

func TestDRAMExecutorLeakLandsFlips(t *testing.T) {
	qm, _, _ := trainedVictim(t)
	_, _, exec := buildStack(t, qm, true, 1.0) // always leak
	out, err := exec.TryFlip(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Succeeded {
		t.Fatalf("leak=1 must land the flip: %+v", out)
	}
	if exec.LeakedFlips != 1 {
		t.Fatalf("leaked = %d", exec.LeakedFlips)
	}
}

func TestDRAMExecutorLeakValidation(t *testing.T) {
	qm, _, _ := trainedVictim(t)
	sys, layout, _ := buildStack(t, qm, false, 0)
	if _, err := NewDRAMExecutor(layout, sys.Controller(), sys.Hammer(), 1.5, 1); err == nil {
		t.Fatal("leak > 1 must be rejected")
	}
}
