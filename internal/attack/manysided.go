package attack

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/defense"
	"repro/internal/dram"
	"repro/internal/rowhammer"
)

// ManySided implements Threshold-Breaker-class access patterns (Zhou et
// al. 2023, cited by the paper as the attack that defeats counter-based
// trackers): instead of concentrating activations on one aggressor, the
// attacker distributes sub-threshold activation counts over many aggressor
// rows whose victims overlap, so no single row's counter ever crosses the
// tracker's trigger while the victims still accumulate disturbance.
//
// In this simulator's fault model, each victim accumulates disturbance
// from *each* adjacent aggressor independently (a crossing by either
// neighbor flips it), so the many-sided pattern uses both neighbors of the
// victim, interleaved, and exploits trackers whose mitigation trigger is
// above the device threshold.
type ManySided struct {
	// AggressorBatch is the set of rows hammered round-robin.
	AggressorBatch []dram.RowAddr
	// RoundLength is how many activations each aggressor receives per
	// round before rotating.
	RoundLength int
}

// NewManySided plans a many-sided pattern around a victim row: both
// distance-1 neighbors plus the distance-2 rows (Half-Double helpers).
func NewManySided(geom dram.Geometry, victim dram.RowAddr) (*ManySided, error) {
	aggs := append(geom.Neighbors(victim, 1), geom.Neighbors(victim, 2)...)
	if len(aggs) == 0 {
		return nil, fmt.Errorf("attack: victim %v has no aggressors", victim)
	}
	return &ManySided{AggressorBatch: aggs, RoundLength: 64}, nil
}

// RunResult summarises a many-sided campaign.
type ManySidedResult struct {
	Activations int
	Denied      int
	Mitigations int64
}

// RunAgainstDefense drives the pattern through a counter-based defense
// (defense.Defense) for totalActivations, activating the device directly
// when allowed. This is the configuration that breaks trackers: the
// per-row counts stay below the tracker trigger.
func (m *ManySided) RunAgainstDefense(dev *dram.Device, d defense.Defense, totalActivations int) (ManySidedResult, error) {
	var res ManySidedResult
	n := len(m.AggressorBatch)
	i := 0
	for res.Activations < totalActivations {
		agg := m.AggressorBatch[(i/m.RoundLength)%n]
		i++
		dec := d.OnActivate(agg, false)
		if !dec.Allow {
			res.Denied++
			continue
		}
		if _, err := dev.Activate(agg); err != nil {
			return res, err
		}
		if _, err := dev.Precharge(agg.Bank); err != nil {
			return res, err
		}
		res.Activations++
	}
	res.Mitigations = d.Stats().Mitigations
	return res, nil
}

// RunAgainstLocker drives the pattern through the DRAM-Locker controller.
// Locked aggressors are denied outright, so the pattern's stealth buys
// nothing: the lock-table does not count, it forbids.
func (m *ManySided) RunAgainstLocker(ctl *controller.Controller, totalAttempts int) (ManySidedResult, error) {
	var res ManySidedResult
	n := len(m.AggressorBatch)
	for i := 0; i < totalAttempts; i++ {
		agg := m.AggressorBatch[(i/m.RoundLength)%n]
		activated, _, err := ctl.HammerAttempt(agg)
		if err != nil {
			return res, err
		}
		if activated {
			res.Activations++
		} else {
			res.Denied++
		}
	}
	return res, nil
}

// VictimFlipped reports whether any registered victim bit of the engine
// flipped during the campaign.
func VictimFlipped(eng *rowhammer.Engine) bool {
	return eng.History().TotalFlips > 0
}
