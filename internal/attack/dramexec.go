package attack

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/memmap"
	"repro/internal/rowhammer"
	"repro/internal/stats"
)

// DRAMExecutor commits flips the way a real attacker must: by hammering an
// aggressor row adjacent to the DRAM row holding the target bit, through
// the memory controller — where the lock-table can deny the activations.
//
// The executor registers the intended victim bit with the RowHammer engine
// (the threat model grants the attacker data-pattern control, §III
// assumptions 4-5), hammers until the threshold is crossed or the defense
// denies, then syncs the victim model from DRAM.
type DRAMExecutor struct {
	Layout *memmap.Layout
	Ctl    *controller.Controller
	Engine *rowhammer.Engine
	// Leak is the probability that a denied flip lands anyway, modelling
	// the erroneous-SWAP exposure of §IV.D (0.096 at ±20% variation).
	// Zero models an ideal, error-free DRAM-Locker.
	Leak float64
	RNG  *stats.RNG

	// HammerBudgetFactor bounds hammering per attempt to factor*TRH
	// activations (the attacker stops once the flip should have landed).
	HammerBudgetFactor int

	// Stats
	Activations int64
	DeniedActs  int64
	LeakedFlips int64
}

// NewDRAMExecutor wires an executor over the full substrate.
func NewDRAMExecutor(layout *memmap.Layout, ctl *controller.Controller, eng *rowhammer.Engine, leak float64, seed uint64) (*DRAMExecutor, error) {
	if leak < 0 || leak > 1 {
		return nil, fmt.Errorf("attack: leak must be in [0,1], got %g", leak)
	}
	return &DRAMExecutor{
		Layout:             layout,
		Ctl:                ctl,
		Engine:             eng,
		Leak:               leak,
		RNG:                stats.NewRNG(seed),
		HammerBudgetFactor: 2,
	}, nil
}

// TryFlip implements FlipExecutor.
func (e *DRAMExecutor) TryFlip(globalW, k int) (FlipOutcome, error) {
	victim, bitInRow, err := e.Layout.LocationOfBit(globalW, k)
	if err != nil {
		return FlipOutcome{}, err
	}
	geom := e.Ctl.Device().Geometry()
	aggressors := geom.Neighbors(victim, 1)
	if len(aggressors) == 0 {
		return FlipOutcome{}, fmt.Errorf("attack: victim %v has no aggressor rows", victim)
	}
	if err := e.Engine.RegisterTarget(victim, bitInRow); err != nil {
		return FlipOutcome{}, err
	}
	defer e.Engine.ClearTargets()

	// Each attack iteration spans at least one refresh interval in real
	// time (hammering T_RH rows takes ~T_RH*tRC); start a fresh window so
	// prior iterations' residual counts do not mask the crossing.
	e.Engine.ResetWindow(e.Ctl.Device().Now())

	trh := e.Engine.Config().TRH
	budget := e.HammerBudgetFactor * trh
	flipped := false
	deniedAll := true
	for _, agg := range aggressors {
		already := e.Engine.Count(agg)
		needed := trh + 1 - already
		if needed < 1 {
			needed = 1
		}
		if needed > budget {
			needed = budget
		}
		denied := false
		for i := 0; i < needed; i++ {
			activated, _, err := e.Ctl.HammerAttempt(agg)
			if err != nil {
				return FlipOutcome{}, err
			}
			if !activated {
				e.DeniedActs++
				denied = true
				break
			}
			e.Activations++
		}
		if denied {
			continue
		}
		deniedAll = false
		// The threshold crossing (if any) has injected the flip; sync the
		// victim model from DRAM and see whether any weight changed.
		if changed, err := e.Layout.SyncFromDRAM(); err != nil {
			return FlipOutcome{}, err
		} else if changed > 0 {
			flipped = true
			break
		}
	}
	if flipped {
		return FlipOutcome{Succeeded: true}, nil
	}
	if deniedAll {
		// Defense blocked every aggressor. Model the erroneous-SWAP
		// exposure window: with probability Leak the row was silently
		// left unprotected and the flip lands.
		if e.RNG != nil && e.RNG.Bernoulli(e.Leak) {
			if err := e.Ctl.Device().FlipBit(victim, bitInRow); err != nil {
				return FlipOutcome{}, err
			}
			if _, err := e.Layout.SyncFromDRAM(); err != nil {
				return FlipOutcome{}, err
			}
			e.LeakedFlips++
			return FlipOutcome{Succeeded: true, Denied: false}, nil
		}
		return FlipOutcome{Denied: true}, nil
	}
	return FlipOutcome{}, nil
}
