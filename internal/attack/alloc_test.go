//go:build !race

package attack

// The zero-alloc steady-state pin is excluded from -race builds: race
// instrumentation allocates, which is noise, not a regression.

import (
	"testing"

	"repro/internal/par"
)

// TestSearchIterationSteadyStateAllocs pins the zero-alloc contract of
// the reused Searcher: once warm, a full search iteration (gradient
// pass, top-k selection, candidate trials) stays off the allocator.
func TestSearchIterationSteadyStateAllocs(t *testing.T) {
	qm, ab, _ := trainedVictim(t)
	cfg := DefaultBFAConfig()
	cfg.CandidatesPerIter = 3
	s, err := NewSearcher(qm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	origBudget := par.Budget()
	defer par.SetBudget(origBudget)
	par.SetBudget(1) // serial: goroutine spawns would count as allocs
	s.step(ab)       // warm the scratch
	allocs := testing.AllocsPerRun(5, func() { s.step(ab) })
	if allocs > 2 {
		t.Fatalf("steady-state search iteration allocates %.1f objects/op, want <= 2", allocs)
	}
}
