package attack

import (
	"testing"

	"repro/internal/defense"
	"repro/internal/dram"
	"repro/internal/rowhammer"
)

func manySidedRig(t *testing.T, trh int) (*dram.Device, *rowhammer.Engine) {
	t.Helper()
	dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	if err != nil {
		t.Fatal(err)
	}
	cfg := rowhammer.DefaultConfig()
	cfg.TRH = trh
	cfg.BlastRadius = 2
	cfg.DistantFlipProb = 1
	eng, err := rowhammer.New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev, eng
}

func TestManySidedPlansAllAggressors(t *testing.T) {
	geom := dram.SmallGeometry()
	victim := dram.RowAddr{Bank: 0, Row: 10}
	ms, err := NewManySided(geom, victim)
	if err != nil {
		t.Fatal(err)
	}
	// Interior victim: two distance-1 plus two distance-2 aggressors.
	if len(ms.AggressorBatch) != 4 {
		t.Fatalf("aggressors = %v", ms.AggressorBatch)
	}
}

// TestManySidedDefeatsLooseTracker reproduces the Threshold Breaker
// observation the paper cites: a counter-based tracker with its trigger
// set above the true device threshold misses the distributed pattern, and
// the victim flips anyway.
func TestManySidedDefeatsLooseTracker(t *testing.T) {
	dev, eng := manySidedRig(t, 100)
	victim := dram.RowAddr{Bank: 0, Row: 10}
	eng.RegisterTarget(victim, 0)
	// Tracker believes the threshold is 4x the real one — exactly the
	// miscalibration Threshold Breaker exploits.
	tracker, err := defense.NewCounterPerRow(eng, dev.Geometry(), 400)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := NewManySided(dev.Geometry(), victim)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ms.RunAgainstDefense(dev, tracker, 800)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mitigations != 0 {
		t.Fatalf("loose tracker mitigated %d times; pattern should stay below its trigger", res.Mitigations)
	}
	if !VictimFlipped(eng) {
		t.Fatal("many-sided pattern should defeat the loose tracker")
	}
}

// TestManySidedStoppedByTightTracker: with a correctly calibrated trigger
// the tracker catches each aggressor before the device threshold.
func TestManySidedStoppedByTightTracker(t *testing.T) {
	dev, eng := manySidedRig(t, 100)
	victim := dram.RowAddr{Bank: 0, Row: 10}
	eng.RegisterTarget(victim, 0)
	tracker, err := defense.NewCounterPerRow(eng, dev.Geometry(), 50)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := NewManySided(dev.Geometry(), victim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.RunAgainstDefense(dev, tracker, 800); err != nil {
		t.Fatal(err)
	}
	if VictimFlipped(eng) {
		t.Fatal("tight tracker should stop the many-sided pattern")
	}
}

// TestManySidedStoppedByLocker: the lock-table forbids rather than counts,
// so the distributed pattern gains nothing regardless of calibration.
func TestManySidedStoppedByLocker(t *testing.T) {
	qm, _, _ := trainedVictim(t)
	snap := qm.Snapshot()
	sys, layout, _ := buildStack(t, qm, true, 0)
	victim := layout.WeightRows()[0]
	ms, err := NewManySided(sys.Device().Geometry(), victim)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ms.RunAgainstLocker(sys.Controller(), 500)
	if err != nil {
		t.Fatal(err)
	}
	// Distance-1 aggressors are locked and denied. With stride-2
	// placement the distance-2 "aggressors" are other weight rows: the
	// attacker may activate them, but their disturbance lands in the
	// locked gap rows, which hold no data. Whatever happens, the weights
	// themselves must be intact.
	if res.Denied == 0 {
		t.Fatal("locked aggressors must deny")
	}
	if _, err := layout.SyncFromDRAM(); err != nil {
		t.Fatal(err)
	}
	if d := qm.HammingDistance(snap); d != 0 {
		t.Fatalf("victim weights corrupted despite lock-table: %d bits", d)
	}
}
