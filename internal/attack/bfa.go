// Package attack implements the adversarial DNN weight attacks of the
// paper's threat model (§III): the gradient-guided Bit-Flip Attack (BFA,
// Rakin et al. ICCV'19 progressive bit search), the random bit-flip
// baseline of Fig. 1(a), and the Page Table Attack (PTA, after PT-Guard).
//
// Attacks commit flips through a FlipExecutor, which is where the DRAM
// substrate and the defense come in: the executor may hammer real
// simulated rows (and be denied by the lock-table) rather than mutate the
// model directly.
//
// The BFA hot path is built around Searcher, which owns every piece of
// per-iteration scratch (bounded top-k selectors, the merged candidate
// slice, the tried-bit set) so steady-state search iterations allocate
// nothing and candidate scoring parallelises under the internal/par
// worker budget with bit-identical selections at any budget. See the
// Searcher type for the reuse contract.
package attack

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/stats"
)

// FlipOutcome reports one committed flip attempt.
type FlipOutcome struct {
	// Succeeded is true when the target bit actually changed in the
	// victim's weights.
	Succeeded bool
	// Denied is true when a defense blocked the hammering.
	Denied bool
}

// FlipExecutor commits a bit flip on the victim. Implementations range
// from direct model mutation (no defense) to full DRAM RowHammer with a
// lock-table in the way.
type FlipExecutor interface {
	// TryFlip attempts to flip bit k of the global weight index.
	TryFlip(globalW, k int) (FlipOutcome, error)
}

// DirectExecutor mutates the quantized model immediately: the undefended
// upper bound used by Fig. 1(a) and the software-defense rows of Table II.
type DirectExecutor struct{ QM *quant.Model }

// TryFlip implements FlipExecutor.
func (e *DirectExecutor) TryFlip(globalW, k int) (FlipOutcome, error) {
	e.QM.FlipGlobal(globalW, k)
	return FlipOutcome{Succeeded: true}, nil
}

// LeakyExecutor models a defense that blocks flips except with a leak
// probability (the paper's Fig. 8 accounting: under ±20% process variation
// the SWAP-based defense fails 9.6% of the time, letting the BFA through).
type LeakyExecutor struct {
	QM   *quant.Model
	Leak float64
	RNG  *stats.RNG
}

// TryFlip implements FlipExecutor.
func (e *LeakyExecutor) TryFlip(globalW, k int) (FlipOutcome, error) {
	if e.RNG.Bernoulli(e.Leak) {
		e.QM.FlipGlobal(globalW, k)
		return FlipOutcome{Succeeded: true}, nil
	}
	return FlipOutcome{Denied: true}, nil
}

// Candidate is one ranked flip option.
type Candidate struct {
	GlobalW int
	Bit     int
	// Score is the first-order loss increase estimate grad * deltaW.
	Score float64
}

// BFAConfig parameterises the progressive bit search.
type BFAConfig struct {
	// Iterations is the number of attack iterations (each commits at most
	// one flip).
	Iterations int
	// CandidatesPerIter is how many top-ranked bits are evaluated with a
	// real forward pass before committing the best.
	CandidatesPerIter int
	// AttackBatch is the number of examples in the attacker's sample
	// batch (paper: 128).
	AttackBatch int
	// MSBOnly restricts the search to sign bits (bit 7), the practical
	// BFA variant; when false all 8 bits are scored.
	MSBOnly bool
	Seed    uint64
	// Stop, if non-nil, is polled before every iteration; a non-nil
	// return aborts the attack, surfacing that error with the partial
	// trace. The experiment harness wires it to the run's cancellation
	// context.
	Stop func() error
}

// DefaultBFAConfig returns the paper's attack setup scaled to the
// simulator (100 iterations, 128-sample batch).
func DefaultBFAConfig() BFAConfig {
	return BFAConfig{
		Iterations:        100,
		CandidatesPerIter: 5,
		AttackBatch:       128,
		MSBOnly:           false,
		Seed:              0xbfa,
	}
}

// Validate checks the configuration.
func (c BFAConfig) Validate() error {
	if c.Iterations <= 0 || c.CandidatesPerIter <= 0 || c.AttackBatch <= 0 {
		return fmt.Errorf("attack: BFAConfig fields must be positive: %+v", c)
	}
	return nil
}

// IterationRecord tracks one attack iteration for the Fig. 8 curves.
type IterationRecord struct {
	Iteration int
	// Flips is the cumulative number of successful bit flips.
	Flips int
	// Denied is the cumulative number of defense denials.
	Denied int
	// Loss is the attacker's batch loss after the iteration.
	Loss float64
	// Accuracy is the victim's accuracy after the iteration (evaluated on
	// the provided eval source; NaN if not evaluated).
	Accuracy float64
}

// Result is a full attack trace.
type Result struct {
	Records []IterationRecord
	// TotalFlips is the number of bits actually flipped.
	TotalFlips int
	// TotalDenied counts denied attempts.
	TotalDenied int
}

// FinalAccuracy returns the accuracy after the last iteration.
func (r Result) FinalAccuracy() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	return r.Records[len(r.Records)-1].Accuracy
}

// BFA runs the progressive bit search against the quantized model,
// committing flips through the executor, and evaluating accuracy on eval
// after every iteration.
//
// Each iteration: (1) one gradient pass on the attacker's batch ranks all
// bits by the first-order loss increase of flipping them; (2) the top
// CandidatesPerIter candidates are each trial-flipped in place and scored
// with a real forward pass; (3) the best candidate is committed through
// the executor — which a defense may deny.
//
// BFA is a convenience wrapper that builds a one-shot Searcher; callers
// that attack repeatedly (the Table II sweeps, the benchmarks) should
// hold a Searcher and call Run to reuse its scratch.
func BFA(qm *quant.Model, attackBatch nn.Batch, eval nn.BatchSource, exec FlipExecutor, cfg BFAConfig) (Result, error) {
	s, err := NewSearcher(qm, cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Run(attackBatch, eval, exec)
}

// RandomAttack flips one uniformly random bit per iteration through the
// executor — the Fig. 1(a) baseline showing targeted flips are what makes
// BFA dangerous.
func RandomAttack(qm *quant.Model, eval nn.BatchSource, exec FlipExecutor, iterations int, seed uint64) (Result, error) {
	if iterations <= 0 {
		return Result{}, fmt.Errorf("attack: iterations must be positive, got %d", iterations)
	}
	rng := stats.NewRNG(seed)
	var res Result
	for iter := 0; iter < iterations; iter++ {
		gw := rng.Intn(qm.TotalWeights())
		k := rng.Intn(qm.Bits)
		out, err := exec.TryFlip(gw, k)
		if err != nil {
			return res, err
		}
		if out.Succeeded {
			res.TotalFlips++
		}
		if out.Denied {
			res.TotalDenied++
		}
		rec := IterationRecord{Iteration: iter + 1, Flips: res.TotalFlips, Denied: res.TotalDenied}
		if eval != nil {
			rec.Accuracy = nn.Evaluate(qm.Net, eval, 64)
		}
		res.Records = append(res.Records, rec)
	}
	return res, nil
}

// BFAUntilCollapse runs BFA until accuracy falls to the threshold or the
// flip budget is exhausted, returning the number of flips used (the
// "Bit-Flips #" column of Table II).
func BFAUntilCollapse(qm *quant.Model, attackBatch nn.Batch, eval nn.BatchSource, exec FlipExecutor, cfg BFAConfig, accThreshold float64, maxFlips int) (int, float64, error) {
	cfg.Iterations = maxFlips
	res, err := BFA(qm, attackBatch, eval, exec, cfg)
	if err != nil {
		return 0, 0, err
	}
	for _, rec := range res.Records {
		if rec.Accuracy <= accThreshold {
			return rec.Flips, rec.Accuracy, nil
		}
	}
	return res.TotalFlips, res.FinalAccuracy(), nil
}
