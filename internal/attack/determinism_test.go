package attack

import (
	"math"
	"sort"
	"testing"

	"repro/internal/nn"
	"repro/internal/par"
	"repro/internal/quant"
)

// referenceRankCandidates is the pre-optimization scalar ranker kept as
// the golden model: score every (weight, bit) by grad*deltaW, sort the
// whole surface, take the top CandidatesPerIter untried candidates.
func referenceRankCandidates(qm *quant.Model, cfg BFAConfig, tried map[[2]int]bool) []Candidate {
	var cands []Candidate
	for pi, qp := range qm.Params {
		grads := qp.Param.Grad.Data
		for li := range qp.Q {
			g := float64(grads[li])
			if g == 0 {
				continue
			}
			lo, hi := 0, qp.Bits
			if cfg.MSBOnly {
				lo = qp.Bits - 1
			}
			for k := lo; k < hi; k++ {
				delta := float64(qp.BitDelta(li, k)) * float64(qp.Scale)
				score := g * delta
				if score <= 0 {
					continue
				}
				gw := qm.GlobalIndex(pi, li)
				if tried[[2]int{gw, k}] {
					continue
				}
				cands = append(cands, Candidate{GlobalW: gw, Bit: k, Score: score})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Score > cands[j].Score })
	if len(cands) > cfg.CandidatesPerIter {
		cands = cands[:cfg.CandidatesPerIter]
	}
	return cands
}

// referenceBFA is the pre-optimization scalar attack loop, preserved
// verbatim so the optimized Searcher can be checked against the exact
// flip sequence and trace the original produced.
func referenceBFA(qm *quant.Model, attackBatch nn.Batch, eval nn.BatchSource, exec FlipExecutor, cfg BFAConfig) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	var res Result
	tried := make(map[[2]int]bool)
	for iter := 0; iter < cfg.Iterations; iter++ {
		nn.GradientPass(qm.Net, attackBatch)
		cands := referenceRankCandidates(qm, cfg, tried)
		if len(cands) == 0 {
			break
		}
		best := -1
		bestLoss := -1.0
		for i, c := range cands {
			qm.FlipGlobal(c.GlobalW, c.Bit)
			loss := nn.BatchLoss(qm.Net, attackBatch)
			qm.FlipGlobal(c.GlobalW, c.Bit)
			if loss > bestLoss {
				bestLoss = loss
				best = i
			}
		}
		chosen := cands[best]
		tried[[2]int{chosen.GlobalW, chosen.Bit}] = true
		out, err := exec.TryFlip(chosen.GlobalW, chosen.Bit)
		if err != nil {
			return res, err
		}
		if out.Succeeded {
			res.TotalFlips++
		}
		if out.Denied {
			res.TotalDenied++
		}
		rec := IterationRecord{
			Iteration: iter + 1,
			Flips:     res.TotalFlips,
			Denied:    res.TotalDenied,
			Loss:      nn.BatchLoss(qm.Net, attackBatch),
		}
		if eval != nil {
			rec.Accuracy = nn.Evaluate(qm.Net, eval, 64)
		}
		res.Records = append(res.Records, rec)
	}
	return res, nil
}

// recordingExecutor commits through the direct executor while logging the
// flip sequence, which is the attack's externally visible behavior.
type recordingExecutor struct {
	qm    *quant.Model
	flips [][2]int
}

func (e *recordingExecutor) TryFlip(globalW, k int) (FlipOutcome, error) {
	e.flips = append(e.flips, [2]int{globalW, k})
	e.qm.FlipGlobal(globalW, k)
	return FlipOutcome{Succeeded: true}, nil
}

// TestSearcherMatchesScalarReference is the determinism suite for the
// optimized BFA: at par budgets 1 and 4 the Searcher must produce the
// identical flip sequence and Result trace (bit-for-bit losses and
// accuracies) as the pre-optimization scalar path at a fixed seed.
func TestSearcherMatchesScalarReference(t *testing.T) {
	qm, ab, eval := trainedVictim(t)
	snap := qm.Snapshot()
	cfg := DefaultBFAConfig()
	cfg.Iterations = 6
	cfg.CandidatesPerIter = 3

	golden := &recordingExecutor{qm: qm}
	want, err := referenceBFA(qm, ab, eval, golden, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(golden.flips) != cfg.Iterations {
		t.Fatalf("reference committed %d flips, want %d", len(golden.flips), cfg.Iterations)
	}

	origBudget := par.Budget()
	defer par.SetBudget(origBudget)
	for _, budget := range []int{1, 4} {
		par.SetBudget(budget)
		qm.Restore(snap)
		rec := &recordingExecutor{qm: qm}
		got, err := BFA(qm, ab, eval, rec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.flips) != len(golden.flips) {
			t.Fatalf("budget %d: %d flips vs reference %d", budget, len(rec.flips), len(golden.flips))
		}
		for i := range rec.flips {
			if rec.flips[i] != golden.flips[i] {
				t.Fatalf("budget %d: flip %d = %v, reference %v", budget, i, rec.flips[i], golden.flips[i])
			}
		}
		if len(got.Records) != len(want.Records) {
			t.Fatalf("budget %d: %d records vs reference %d", budget, len(got.Records), len(want.Records))
		}
		for i := range got.Records {
			g, w := got.Records[i], want.Records[i]
			if g.Iteration != w.Iteration || g.Flips != w.Flips || g.Denied != w.Denied {
				t.Fatalf("budget %d: record %d = %+v, reference %+v", budget, i, g, w)
			}
			if math.Float64bits(g.Loss) != math.Float64bits(w.Loss) ||
				math.Float64bits(g.Accuracy) != math.Float64bits(w.Accuracy) {
				t.Fatalf("budget %d: record %d loss/acc (%v, %v) != reference (%v, %v)",
					budget, i, g.Loss, g.Accuracy, w.Loss, w.Accuracy)
			}
		}
		if got.TotalFlips != want.TotalFlips || got.TotalDenied != want.TotalDenied {
			t.Fatalf("budget %d: totals (%d, %d) != reference (%d, %d)",
				budget, got.TotalFlips, got.TotalDenied, want.TotalFlips, want.TotalDenied)
		}
	}
}

// TestSelectTopKMatchesReferenceRanking checks the bounded selector
// against the full-sort reference on a fresh gradient landscape, with
// and without an exclusion set.
func TestSelectTopKMatchesReferenceRanking(t *testing.T) {
	qm, ab, _ := trainedVictim(t)
	cfg := DefaultBFAConfig()
	cfg.CandidatesPerIter = 5
	nn.GradientPass(qm.Net, ab)

	tried := map[[2]int]bool{}
	for round := 0; round < 3; round++ {
		want := referenceRankCandidates(qm, cfg, tried)
		s, err := NewSearcher(qm, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for k := range tried {
			s.tried[k] = true
		}
		got := s.selectTopK()
		if len(got) != len(want) {
			t.Fatalf("round %d: %d candidates, want %d", round, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: candidate %d = %+v, want %+v", round, i, got[i], want[i])
			}
		}
		// Exclude this round's winners so the next round exercises the
		// tried-set filter at the selection frontier.
		for _, c := range want {
			tried[[2]int{c.GlobalW, c.Bit}] = true
		}
	}
}
