package pagetable

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/stats"
)

func newTable(t *testing.T, pages int) (*dram.Device, *Table) {
	t.Helper()
	dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	if err != nil {
		t.Fatal(err)
	}
	var ptRows []dram.RowAddr
	for r := 0; r < 8; r++ {
		ptRows = append(ptRows, dram.RowAddr{Bank: 1, Row: r * 2})
	}
	tab, err := New(dev, ptRows, pages)
	if err != nil {
		t.Fatal(err)
	}
	return dev, tab
}

func TestPTEEncodeDecodeRoundTrip(t *testing.T) {
	f := func(pfn uint64, valid bool) bool {
		p := PTE{Valid: valid, PFN: pfn & ((1 << 52) - 1)}
		return DecodePTE(p.Encode()) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMapWalkRoundTrip(t *testing.T) {
	dev, tab := newTable(t, 16)
	frame := dram.RowAddr{Bank: 0, Row: 33}
	if err := tab.Map(3, frame); err != nil {
		t.Fatal(err)
	}
	va := int64(3)*int64(tab.PageSize()) + 17
	row, off, err := tab.Walk(va)
	if err != nil {
		t.Fatal(err)
	}
	if row != frame || off != 17 {
		t.Fatalf("walk = (%v, %d), want (%v, 17)", row, off, frame)
	}
	_ = dev
}

func TestWalkUnmappedFails(t *testing.T) {
	_, tab := newTable(t, 16)
	if _, _, err := tab.Walk(100); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("err = %v, want ErrUnmapped", err)
	}
	tab.Map(0, dram.RowAddr{Bank: 0, Row: 5})
	tab.Unmap(0)
	if _, _, err := tab.Walk(0); !errors.Is(err, ErrUnmapped) {
		t.Fatal("unmapped page must not walk")
	}
}

func TestWalkRandomMappingProperty(t *testing.T) {
	dev, tab := newTable(t, 32)
	_ = dev
	rng := stats.NewRNG(3)
	geom := dram.SmallGeometry()
	frames := make(map[int]dram.RowAddr)
	for p := 0; p < 32; p++ {
		f := dram.RowAddr{Bank: rng.Intn(geom.Banks()), Row: rng.Intn(geom.RowsPerBank())}
		if err := tab.Map(p, f); err != nil {
			t.Fatal(err)
		}
		frames[p] = f
	}
	for p, f := range frames {
		va := int64(p) * int64(tab.PageSize())
		row, off, err := tab.Walk(va)
		if err != nil {
			t.Fatal(err)
		}
		if row != f || off != 0 {
			t.Fatalf("page %d walks to %v, want %v", p, row, f)
		}
	}
}

func TestPFNBitFlipRedirects(t *testing.T) {
	dev, tab := newTable(t, 16)
	geom := dev.Geometry()
	frame := dram.RowAddr{Bank: 0, Row: 8}
	if err := tab.Map(2, frame); err != nil {
		t.Fatal(err)
	}
	// Flip PFN bit 0: the page now points at linear index ^ 1.
	row, bit, err := tab.PFNBitOf(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.FlipBit(row, bit); err != nil {
		t.Fatal(err)
	}
	got, err := tab.FrameOf(2)
	if err != nil {
		t.Fatal(err)
	}
	want := geom.FromLinearIndex(geom.LinearIndex(frame) ^ 1)
	if got != want {
		t.Fatalf("redirected frame %v, want %v", got, want)
	}
}

func TestCorruptPFNBeyondRowsDetected(t *testing.T) {
	dev, tab := newTable(t, 16)
	tab.Map(1, dram.RowAddr{Bank: 0, Row: 1})
	// Flip a high PFN bit pushing it past the row count.
	row, bit, err := tab.PFNBitOf(1, 40)
	if err != nil {
		t.Fatal(err)
	}
	dev.FlipBit(row, bit)
	if _, err := tab.FrameOf(1); err == nil {
		t.Fatal("corrupt out-of-range PFN must be detected")
	}
	if _, _, err := tab.Walk(int64(tab.PageSize())); err == nil {
		t.Fatal("walk through corrupt PTE must fail")
	}
}

func TestEntryRowAssignment(t *testing.T) {
	dev, tab := newTable(t, 64)
	per := dev.Geometry().RowBytes / PTESize
	r0, err := tab.EntryRowOf(0)
	if err != nil {
		t.Fatal(err)
	}
	rLast, err := tab.EntryRowOf(per - 1)
	if err != nil {
		t.Fatal(err)
	}
	if r0 != rLast {
		t.Fatal("entries within one row's capacity must share the row")
	}
	if per < 64 {
		rNext, _ := tab.EntryRowOf(per)
		if rNext == r0 {
			t.Fatal("entry past row capacity must move to the next PT row")
		}
	}
}

func TestTableCapacityValidation(t *testing.T) {
	dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	if err != nil {
		t.Fatal(err)
	}
	one := []dram.RowAddr{{Bank: 0, Row: 0}}
	per := dev.Geometry().RowBytes / PTESize
	if _, err := New(dev, one, per+1); !errors.Is(err, ErrTableFull) {
		t.Fatalf("err = %v, want ErrTableFull", err)
	}
	if _, err := New(dev, one, 0); err == nil {
		t.Fatal("zero pages must fail")
	}
	if _, err := New(dev, []dram.RowAddr{{Bank: 99, Row: 0}}, 1); err == nil {
		t.Fatal("invalid PT row must fail")
	}
}

func TestMapValidation(t *testing.T) {
	_, tab := newTable(t, 8)
	if err := tab.Map(99, dram.RowAddr{Bank: 0, Row: 0}); !errors.Is(err, ErrBadVirtual) {
		t.Fatalf("err = %v, want ErrBadVirtual", err)
	}
	if err := tab.Map(0, dram.RowAddr{Bank: 99, Row: 0}); err == nil {
		t.Fatal("invalid frame must be rejected")
	}
	if _, _, err := tab.PFNBitOf(0, 60); err == nil {
		t.Fatal("PFN bit beyond field width must be rejected")
	}
}
