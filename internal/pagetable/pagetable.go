// Package pagetable implements the OS page-table substrate the Page Table
// Attack (PTA) threat model needs (paper §III, Fig. 3(b)): page-table
// entries that live inside simulated DRAM rows, a virtual-to-physical
// walker, and the PFN bit layout whose corruption redirects a virtual page
// to a different physical frame.
//
// Pages are DRAM-row sized, so a page frame number (PFN) is exactly a
// linear row index; this matches the paper's row-granularity attack.
// Translation path:
//
//	VA -> [pageIdx | offset] -> PTE (8 bytes, stored in a PT row)
//	PTE -> [valid | PFN] -> physical row -> byte
package pagetable

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/dram"
)

// PTESize is the size of one page-table entry in bytes.
const PTESize = 8

// PTE field layout within the 64-bit entry.
const (
	pteValidBit = 63
	pfnMask     = (uint64(1) << 52) - 1
)

// Errors returned by the walker.
var (
	ErrUnmapped   = errors.New("pagetable: virtual page not mapped")
	ErrBadVirtual = errors.New("pagetable: virtual address out of range")
	ErrTableFull  = errors.New("pagetable: page-table rows exhausted")
)

// PTE is a decoded page-table entry.
type PTE struct {
	Valid bool
	// PFN is the physical frame number = linear row index in the device
	// geometry.
	PFN uint64
}

// Encode packs the entry.
func (p PTE) Encode() uint64 {
	v := p.PFN & pfnMask
	if p.Valid {
		v |= 1 << pteValidBit
	}
	return v
}

// DecodePTE unpacks an entry.
func DecodePTE(v uint64) PTE {
	return PTE{Valid: v&(1<<pteValidBit) != 0, PFN: v & pfnMask}
}

// Table is a single-level page table stored in reserved DRAM rows.
// (The paper's attack corrupts leaf PTEs; multi-level indirection adds
// nothing to the threat model, so the substrate keeps one level.)
type Table struct {
	dev  *dram.Device
	geom dram.Geometry
	// ptRows are the rows holding PTEs, in order.
	ptRows []dram.RowAddr
	// entriesPerRow is RowBytes / PTESize.
	entriesPerRow int
	// numPages is the virtual page count the table covers.
	numPages int
}

// New builds a page table covering numPages virtual pages, storing PTEs in
// the given reserved rows. Rows must provide capacity for all entries.
func New(dev *dram.Device, ptRows []dram.RowAddr, numPages int) (*Table, error) {
	if numPages <= 0 {
		return nil, fmt.Errorf("pagetable: numPages must be positive, got %d", numPages)
	}
	geom := dev.Geometry()
	per := geom.RowBytes / PTESize
	need := (numPages + per - 1) / per
	if need > len(ptRows) {
		return nil, fmt.Errorf("%w: need %d rows, have %d", ErrTableFull, need, len(ptRows))
	}
	for _, r := range ptRows {
		if !geom.Valid(r) {
			return nil, fmt.Errorf("pagetable: invalid PT row %v", r)
		}
	}
	return &Table{dev: dev, geom: geom, ptRows: ptRows[:need], entriesPerRow: per, numPages: numPages}, nil
}

// NumPages returns the covered virtual page count.
func (t *Table) NumPages() int { return t.numPages }

// PTRows returns the rows holding page-table entries — the rows a
// PTA-aware defense must protect.
func (t *Table) PTRows() []dram.RowAddr { return t.ptRows }

// PageSize returns the page size in bytes (one DRAM row).
func (t *Table) PageSize() int { return t.geom.RowBytes }

// entryLocation returns the row and byte offset of a virtual page's PTE.
func (t *Table) entryLocation(page int) (dram.RowAddr, int, error) {
	if page < 0 || page >= t.numPages {
		return dram.RowAddr{}, 0, fmt.Errorf("%w: page %d", ErrBadVirtual, page)
	}
	return t.ptRows[page/t.entriesPerRow], (page % t.entriesPerRow) * PTESize, nil
}

// EntryRowOf returns the DRAM row holding the PTE of a virtual page.
func (t *Table) EntryRowOf(page int) (dram.RowAddr, error) {
	row, _, err := t.entryLocation(page)
	return row, err
}

// Map installs a mapping virtual page -> physical row.
func (t *Table) Map(page int, frame dram.RowAddr) error {
	if !t.geom.Valid(frame) {
		return fmt.Errorf("pagetable: invalid frame %v", frame)
	}
	row, off, err := t.entryLocation(page)
	if err != nil {
		return err
	}
	pte := PTE{Valid: true, PFN: uint64(t.geom.LinearIndex(frame))}
	return t.writeEntry(row, off, pte.Encode())
}

// Unmap invalidates a mapping.
func (t *Table) Unmap(page int) error {
	row, off, err := t.entryLocation(page)
	if err != nil {
		return err
	}
	return t.writeEntry(row, off, 0)
}

func (t *Table) writeEntry(row dram.RowAddr, off int, v uint64) error {
	data, err := t.dev.PeekRow(row)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(data[off:off+PTESize], v)
	return t.dev.PokeRow(row, data)
}

// readEntry reads the raw PTE bits from DRAM (including any RowHammer
// corruption).
func (t *Table) readEntry(page int) (PTE, error) {
	row, off, err := t.entryLocation(page)
	if err != nil {
		return PTE{}, err
	}
	data, err := t.dev.PeekRow(row)
	if err != nil {
		return PTE{}, err
	}
	return DecodePTE(binary.LittleEndian.Uint64(data[off : off+PTESize])), nil
}

// Walk translates a virtual address to (physical row, byte offset).
func (t *Table) Walk(va int64) (dram.RowAddr, int, error) {
	if va < 0 {
		return dram.RowAddr{}, 0, fmt.Errorf("%w: va 0x%x", ErrBadVirtual, va)
	}
	page := int(va / int64(t.geom.RowBytes))
	off := int(va % int64(t.geom.RowBytes))
	pte, err := t.readEntry(page)
	if err != nil {
		return dram.RowAddr{}, 0, err
	}
	if !pte.Valid {
		return dram.RowAddr{}, 0, fmt.Errorf("%w: page %d", ErrUnmapped, page)
	}
	if pte.PFN >= uint64(t.geom.TotalRows()) {
		return dram.RowAddr{}, 0, fmt.Errorf("pagetable: corrupt PFN %d beyond %d rows",
			pte.PFN, t.geom.TotalRows())
	}
	return t.geom.FromLinearIndex(int(pte.PFN)), off, nil
}

// PFNBitOf returns the in-row bit index of PFN bit `bit` of a page's PTE —
// the precise bit a PTA flip targets.
func (t *Table) PFNBitOf(page, bit int) (dram.RowAddr, int, error) {
	if bit < 0 || bit >= 52 {
		return dram.RowAddr{}, 0, fmt.Errorf("pagetable: PFN bit %d out of range", bit)
	}
	row, off, err := t.entryLocation(page)
	if err != nil {
		return dram.RowAddr{}, 0, err
	}
	return row, off*8 + bit, nil
}

// FrameOf returns the current physical frame of a page (after any
// corruption).
func (t *Table) FrameOf(page int) (dram.RowAddr, error) {
	pte, err := t.readEntry(page)
	if err != nil {
		return dram.RowAddr{}, err
	}
	if !pte.Valid {
		return dram.RowAddr{}, fmt.Errorf("%w: page %d", ErrUnmapped, page)
	}
	if pte.PFN >= uint64(t.geom.TotalRows()) {
		return dram.RowAddr{}, fmt.Errorf("pagetable: corrupt PFN %d", pte.PFN)
	}
	return t.geom.FromLinearIndex(int(pte.PFN)), nil
}
