// Package par is the process-wide worker budget shared by every source of
// parallelism in the repository: the experiment engine's job pool and the
// goroutine-parallel tensor/nn compute kernels.
//
// The problem it solves is oversubscription. The engine schedules up to
// NumCPU experiment jobs concurrently, and each job trains and evaluates
// DNNs whose GEMM/BatchNorm kernels can themselves fan out across cores.
// Without coordination a full sharded run would put NumCPU jobs times
// NumCPU kernel goroutines onto NumCPU cores. Instead, both layers draw
// from one token budget of size Budget() (default runtime.NumCPU()):
//
//   - The engine's workers each *reserve* one token while executing a
//     unit of work (TryAcquire/ReleaseN — non-blocking, so an explicit
//     worker count above the budget still runs as many jobs as
//     requested; they just leave no tokens spare).
//   - Kernels ask for *extra* tokens non-blockingly (For/TryAcquire). When
//     the engine has the machine saturated they get none and run serially
//     inside their job's reservation; when few jobs are running — a single
//     victim training, a direct CLI call — they pick up the idle cores.
//
// Acquire/Release provide the blocking variant for callers that want a
// hard cap instead of a reservation.
//
// Determinism: the budget changes only *which goroutine* computes which
// slice of work, never the floating-point evaluation order inside a
// slice. Kernels built on For partition output elements disjointly and
// keep each element's accumulation order fixed, so results are
// bit-identical at any budget, worker count, or GOMAXPROCS.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// avail (guarded by mu) is the token count of record; total and
// availHint are atomic mirrors so the hot-path reads — WorthIt/Budget on
// every kernel call, TryAcquire's drained check under a saturated pool —
// never touch the mutex.
var (
	mu        sync.Mutex
	cond      = sync.NewCond(&mu)
	total     atomic.Int64
	avail     int
	availHint atomic.Int64
)

func init() {
	n := runtime.NumCPU()
	total.Store(int64(n))
	avail = n
	availHint.Store(int64(n))
}

// Budget returns the total worker-token budget (lock-free).
func Budget() int { return int(total.Load()) }

// SetBudget resizes the budget (minimum 1). Outstanding tokens are
// honoured: shrinking takes effect as tokens are released. Tests use this
// to pin kernels to a known parallelism; production code leaves the
// NumCPU default.
func SetBudget(n int) {
	if n < 1 {
		n = 1
	}
	mu.Lock()
	avail += n - int(total.Load())
	total.Store(int64(n))
	availHint.Store(int64(avail))
	mu.Unlock()
	cond.Broadcast()
}

// Acquire blocks until one worker token is free and takes it. Long-lived
// workers (the engine pool) hold a token per unit of work so that kernel
// parallelism inside the unit sees the remaining budget.
func Acquire() {
	mu.Lock()
	for avail < 1 {
		cond.Wait()
	}
	avail--
	availHint.Store(int64(avail))
	mu.Unlock()
}

// Release returns one token taken by Acquire.
func Release() { ReleaseN(1) }

// TryAcquire takes up to n tokens without blocking and returns how many
// it got (possibly zero). Kernels use it to claim idle cores for extra
// goroutines beyond the calling one.
func TryAcquire(n int) int {
	if n <= 0 || availHint.Load() < 1 {
		// Lock-free fast path: a drained budget (the norm under a
		// saturated engine pool) answers without the mutex. The hint may
		// be momentarily stale, but a false zero only costs a serial
		// kernel pass and a false positive is re-checked under the lock.
		return 0
	}
	mu.Lock()
	got := avail // may be negative after a shrinking SetBudget
	if got > n {
		got = n
	}
	if got > 0 {
		avail -= got
		availHint.Store(int64(avail))
	} else {
		got = 0
	}
	mu.Unlock()
	return got
}

// ReleaseN returns n tokens taken by TryAcquire/Acquire.
func ReleaseN(n int) {
	if n <= 0 {
		return
	}
	mu.Lock()
	avail += n
	if avail > int(total.Load()) {
		panic("par: released more worker tokens than acquired")
	}
	availHint.Store(int64(avail))
	mu.Unlock()
	cond.Broadcast()
}

// Grain converts a per-item cost estimate into a chunking grain: the
// number of consecutive items one worker should take so a chunk is worth
// at least minWork units. It never returns less than 1.
func Grain(perItem, minWork int) int {
	if perItem < 1 {
		perItem = 1
	}
	g := (minWork + perItem - 1) / perItem
	if g < 1 {
		g = 1
	}
	return g
}

// WorthIt reports whether a loop of items at the given grain could use
// more than one worker under the current budget. Hot kernels check it
// before constructing the escaping closure For needs, so their serial
// path stays allocation-free:
//
//	if par.WorthIt(rows, grain) {
//		par.For(rows, grain, func(lo, hi int) { kernel(lo, hi) })
//	} else {
//		kernel(0, rows)
//	}
func WorthIt(items, grain int) bool {
	if grain < 1 {
		grain = 1
	}
	return items >= 2*grain && Budget() > 1
}

// For runs fn over the range [0, n) split into contiguous chunks of at
// least grain items, on the calling goroutine plus as many extra workers
// as TryAcquire grants. fn(lo, hi) must handle its half-open slice
// independently of the others; chunks never overlap and cover [0, n)
// exactly. With no spare tokens (or n <= grain) the whole range runs on
// the caller, so For never blocks and never deadlocks under nesting.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	maxWorkers := n / grain
	if cap := Budget(); maxWorkers > cap {
		// The calling goroutine is one of the workers, so it claims the
		// budget share a token would otherwise represent.
		maxWorkers = cap
	}
	if maxWorkers > 1 {
		if extra := TryAcquire(maxWorkers - 1); extra > 0 {
			forParallel(n, extra, fn)
			return
		}
	}
	fn(0, n)
}

// forParallel fans fn out over extra+1 workers. The deferred wait and
// release keep the shared budget panic-safe: a panic in the caller's
// chunk (recovered further up, e.g. by the engine) still waits for the
// spawned workers and returns the tokens.
func forParallel(n, extra int, fn func(lo, hi int)) {
	defer ReleaseN(extra)
	workers := extra + 1
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	defer wg.Wait()
	for w := 1; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	fn(0, chunk)
}
