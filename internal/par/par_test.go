package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// withBudget runs f under a temporary budget, restoring the default.
func withBudget(t *testing.T, n int, f func()) {
	t.Helper()
	old := Budget()
	SetBudget(n)
	defer SetBudget(old)
	f()
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, budget := range []int{1, 2, 8} {
		withBudget(t, budget, func() {
			for _, n := range []int{0, 1, 7, 64, 1000, 1023} {
				counts := make([]int32, n)
				For(n, 3, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("budget %d n %d: bad chunk [%d,%d)", budget, n, lo, hi)
						return
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&counts[i], 1)
					}
				})
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("budget %d n %d: index %d visited %d times", budget, n, i, c)
					}
				}
			}
		})
	}
}

func TestForSerialWhenBudgetExhausted(t *testing.T) {
	withBudget(t, 1, func() {
		var calls int32
		For(100, 1, func(lo, hi int) { atomic.AddInt32(&calls, 1) })
		if calls != 1 {
			t.Fatalf("budget 1 must run one serial chunk, got %d", calls)
		}
	})
}

func TestForRespectsGrain(t *testing.T) {
	withBudget(t, 16, func() {
		var chunks int32
		For(10, 5, func(lo, hi int) { atomic.AddInt32(&chunks, 1) })
		// 10 items at grain 5 allows at most 2 workers.
		if chunks > 2 {
			t.Fatalf("grain 5 over 10 items produced %d chunks, want <= 2", chunks)
		}
	})
}

func TestTryAcquireAccounting(t *testing.T) {
	withBudget(t, 4, func() {
		if got := TryAcquire(10); got != 4 {
			t.Fatalf("TryAcquire(10) = %d with budget 4", got)
		}
		if got := TryAcquire(1); got != 0 {
			t.Fatalf("TryAcquire on drained budget = %d, want 0", got)
		}
		ReleaseN(4)
		if got := TryAcquire(2); got != 2 {
			t.Fatalf("TryAcquire(2) after release = %d", got)
		}
		ReleaseN(2)
	})
}

func TestTryAcquireAfterShrink(t *testing.T) {
	withBudget(t, 4, func() {
		if got := TryAcquire(4); got != 4 {
			t.Fatalf("TryAcquire(4) = %d", got)
		}
		SetBudget(2) // avail is now negative until tokens come back
		if got := TryAcquire(1); got != 0 {
			t.Fatalf("TryAcquire after shrink = %d, want 0", got)
		}
		ReleaseN(4)
		if got := TryAcquire(5); got != 2 {
			t.Fatalf("TryAcquire(5) at budget 2 = %d, want 2", got)
		}
		ReleaseN(2)
	})
}

func TestAcquireBlocksUntilRelease(t *testing.T) {
	withBudget(t, 1, func() {
		Acquire()
		done := make(chan struct{})
		go func() {
			Acquire()
			Release()
			close(done)
		}()
		select {
		case <-done:
			t.Fatal("second Acquire must block while the token is held")
		default:
		}
		Release()
		<-done
	})
}

func TestGrain(t *testing.T) {
	if g := Grain(10, 100); g != 10 {
		t.Fatalf("Grain(10,100) = %d, want 10", g)
	}
	if g := Grain(1000, 100); g != 1 {
		t.Fatalf("Grain(1000,100) = %d, want 1", g)
	}
	if g := Grain(0, 0); g != 1 {
		t.Fatalf("Grain(0,0) = %d, want 1", g)
	}
}

// TestBudgetUnderContention exercises the token budget from many
// goroutines at once; run with -race this is the worker-budget race
// check. It also asserts the budget invariant: concurrently held tokens
// never exceed the budget.
func TestBudgetUnderContention(t *testing.T) {
	withBudget(t, 3, func() {
		var inFlight, maxSeen int32
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					Acquire()
					cur := atomic.AddInt32(&inFlight, 1)
					for {
						m := atomic.LoadInt32(&maxSeen)
						if cur <= m || atomic.CompareAndSwapInt32(&maxSeen, m, cur) {
							break
						}
					}
					// Nested kernel-style parallelism under the held token.
					For(32, 4, func(lo, hi int) {
						runtime.Gosched()
					})
					atomic.AddInt32(&inFlight, -1)
					Release()
				}
			}()
		}
		wg.Wait()
		if maxSeen > 3 {
			t.Fatalf("budget 3 exceeded: %d tokens held at once", maxSeen)
		}
	})
}
