package resultplane

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/api"
)

// entryBytes builds a valid plane object for key with the given text.
func entryBytes(t *testing.T, version, key, text string, dur int64) []byte {
	t.Helper()
	b, err := json.Marshal(api.CacheEntry{
		Version: version, Key: key,
		Result: api.CachedResult{Name: key, Text: text, Seed: 7, DurationNS: dur},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestStorePutGet(t *testing.T) {
	s := NewStore()
	if _, _, ok := s.Get("k"); ok {
		t.Fatal("empty store must miss")
	}
	data := entryBytes(t, "v1", "k", "hello", 10)
	etag, conflict := s.Put("k", data)
	if conflict {
		t.Fatal("first put must not conflict")
	}
	got, tag, ok := s.Get("k")
	if !ok || string(got) != string(data) || tag != etag {
		t.Fatalf("get after put: ok=%v tag=%q want %q", ok, tag, etag)
	}
	m := s.Metrics()
	if m.Puts != 1 || m.Hits != 1 || m.Misses != 1 || m.Entries != 1 || m.BytesStored != int64(len(data)) {
		t.Fatalf("metrics off: %+v", m)
	}
}

func TestStoreDupAndConflictPuts(t *testing.T) {
	s := NewStore()
	data := entryBytes(t, "v1", "k", "hello", 10)
	etag, _ := s.Put("k", data)

	// Byte-identical duplicate: original kept.
	if tag, conflict := s.Put("k", data); conflict || tag != etag {
		t.Fatalf("identical dup put: conflict=%v tag=%q want %q", conflict, tag, etag)
	}
	// Equivalent payload from another producer (duration differs):
	// first write wins so the ETag stays stable.
	equiv := entryBytes(t, "v1", "k", "hello", 99)
	if tag, conflict := s.Put("k", equiv); conflict || tag != etag {
		t.Fatalf("equivalent dup put: conflict=%v tag=%q want %q", conflict, tag, etag)
	}
	if got, _, _ := s.Get("k"); string(got) != string(data) {
		t.Fatal("equivalent dup put must keep the original bytes")
	}
	// Genuinely differing payload: conflict counted, last write wins.
	diff := entryBytes(t, "v1", "k", "DIFFERENT", 10)
	tag, conflict := s.Put("k", diff)
	if !conflict || tag == etag {
		t.Fatalf("differing put: conflict=%v tag=%q", conflict, tag)
	}
	if got, _, _ := s.Get("k"); string(got) != string(diff) {
		t.Fatal("differing put must overwrite (last write wins)")
	}
	m := s.Metrics()
	if m.DupPuts != 2 || m.Conflicts != 1 || m.Puts != 1 || m.Entries != 1 {
		t.Fatalf("metrics off: %+v", m)
	}
	if m.BytesStored != int64(len(diff)) {
		t.Fatalf("bytes stored %d, want %d", m.BytesStored, len(diff))
	}
}

func TestStoreClaimArbitration(t *testing.T) {
	s := NewStore()
	now := time.Unix(1000, 0)
	s.SetNow(func() time.Time { return now })

	// First claimant wins.
	rep := s.Claim("k", "alice", 10*time.Second)
	if !rep.Granted || rep.Done {
		t.Fatalf("first claim: %+v", rep)
	}
	// Second claimant is denied with the holder and a retry hint.
	rep = s.Claim("k", "bob", 10*time.Second)
	if rep.Granted || rep.Done || rep.Owner != "alice" || rep.RetryAfterNS != (10*time.Second).Nanoseconds() {
		t.Fatalf("competing claim: %+v", rep)
	}
	// The holder re-claiming extends its TTL.
	now = now.Add(5 * time.Second)
	if rep = s.Claim("k", "alice", 10*time.Second); !rep.Granted {
		t.Fatalf("holder re-claim: %+v", rep)
	}
	if rep = s.Claim("k", "bob", 10*time.Second); rep.Granted || rep.RetryAfterNS != (10*time.Second).Nanoseconds() {
		t.Fatalf("claim after extension: %+v", rep)
	}
	// An expired claim (crashed holder) re-arbitrates.
	now = now.Add(11 * time.Second)
	if rep = s.Claim("k", "bob", 10*time.Second); !rep.Granted {
		t.Fatalf("claim after expiry: %+v", rep)
	}
	// A stored result beats every claim.
	s.Put("k", entryBytes(t, "v1", "k", "done", 1))
	if rep = s.Claim("k", "carol", 10*time.Second); !rep.Done || rep.Granted {
		t.Fatalf("claim over stored entry: %+v", rep)
	}
	m := s.Metrics()
	if m.ClaimsGranted != 3 || m.ClaimsDenied != 2 {
		t.Fatalf("claim metrics off: %+v", m)
	}
}

func TestStoreClaimTTLClamps(t *testing.T) {
	s := NewStore()
	if rep := s.Claim("a", "x", 0); time.Duration(rep.TTLNS) != DefaultClaimTTL {
		t.Fatalf("zero ttl → %v, want default %v", time.Duration(rep.TTLNS), DefaultClaimTTL)
	}
	if rep := s.Claim("b", "x", time.Millisecond); time.Duration(rep.TTLNS) != MinClaimTTL {
		t.Fatalf("tiny ttl → %v, want min %v", time.Duration(rep.TTLNS), MinClaimTTL)
	}
	if rep := s.Claim("c", "x", time.Hour); time.Duration(rep.TTLNS) != MaxClaimTTL {
		t.Fatalf("huge ttl → %v, want max %v", time.Duration(rep.TTLNS), MaxClaimTTL)
	}
}

func TestStoreWaitWokenByPut(t *testing.T) {
	s := NewStore()
	data := entryBytes(t, "v1", "k", "late", 1)
	type res struct {
		data []byte
		ok   bool
	}
	ch := make(chan res, 1)
	go func() {
		d, _, ok := s.Wait(context.Background(), "k", 30*time.Second)
		ch <- res{d, ok}
	}()
	// Give the waiter a moment to park, then publish.
	time.Sleep(20 * time.Millisecond)
	s.Put("k", data)
	select {
	case r := <-ch:
		if !r.ok || string(r.data) != string(data) {
			t.Fatalf("wait woke with ok=%v data=%q", r.ok, r.data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke after put")
	}
	if m := s.Metrics(); m.WaitHits != 1 {
		t.Fatalf("wait hits %d, want 1", m.WaitHits)
	}
}

func TestStoreWaitTimeoutAndCancel(t *testing.T) {
	s := NewStore()
	if _, _, ok := s.Wait(context.Background(), "k", 10*time.Millisecond); ok {
		t.Fatal("wait on an empty key must time out to a miss")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, ok := s.Wait(ctx, "k", time.Hour); ok {
		t.Fatal("cancelled wait must miss")
	}
}

func TestStorePersistenceReload(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := entryBytes(t, "v1", "a", "alpha", 1)
	b := entryBytes(t, "v1", "b", "beta", 2)
	s.Put("a", a)
	s.Put("b", b)
	// Overwrite a: later lines must win on reload.
	a2 := entryBytes(t, "v1", "a", "alpha-2", 3)
	s.Put("a", a2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, _, ok := s2.Get("a")
	if !ok || string(got) != string(a2) {
		t.Fatalf("reloaded a: ok=%v data=%q", ok, got)
	}
	if got, _, ok := s2.Get("b"); !ok || string(got) != string(b) {
		t.Fatalf("reloaded b: ok=%v data=%q", ok, got)
	}
	if m := s2.Metrics(); m.Entries != 2 {
		t.Fatalf("reloaded entries %d, want 2", m.Entries)
	}
}

// TestStoreTTLEviction: entries idle past the TTL are dropped on the
// next write; a Get refreshes idleness, so recently-read entries stay.
func TestStoreTTLEviction(t *testing.T) {
	s := NewStore()
	now := time.Unix(1_700_000_000, 0)
	s.SetNow(func() time.Time { return now })
	s.SetLimits(0, time.Minute)
	old := entryBytes(t, "v1", "old", "a", 1)
	s.Put("old", old)
	s.Put("warm", entryBytes(t, "v1", "warm", "b", 1))
	now = now.Add(45 * time.Second)
	if _, _, ok := s.Get("warm"); !ok {
		t.Fatal("warm entry missing before TTL")
	}
	// old is now 75s idle, warm only 30s — the next Put sweeps.
	now = now.Add(30 * time.Second)
	s.Put("new", entryBytes(t, "v1", "new", "c", 1))
	if _, _, ok := s.Get("old"); ok {
		t.Fatal("idle entry survived the TTL sweep")
	}
	if _, _, ok := s.Get("warm"); !ok {
		t.Fatal("recently-read entry was TTL-evicted")
	}
	m := s.Metrics()
	if m.Evictions != 1 || m.EvictedBytes != int64(len(old)) || m.Entries != 2 {
		t.Fatalf("TTL eviction metrics off: %+v", m)
	}
}

// TestStoreLRUEviction: over the byte budget, the least-recently-used
// entries go first and the just-inserted entry is never the victim.
func TestStoreLRUEviction(t *testing.T) {
	s := NewStore()
	now := time.Unix(1_700_000_000, 0)
	s.SetNow(func() time.Time { return now })
	a := entryBytes(t, "v1", "a", "alpha", 1)
	s.SetLimits(int64(len(a))*2+2, 0) // room for two entries, barely
	s.Put("a", a)
	now = now.Add(time.Second)
	s.Put("b", entryBytes(t, "v1", "b", "bravo", 1))
	now = now.Add(time.Second)
	if _, _, ok := s.Get("a"); !ok { // a is now fresher than b
		t.Fatal("a missing before eviction")
	}
	now = now.Add(time.Second)
	s.Put("c", entryBytes(t, "v1", "c", "charl", 1))
	if _, _, ok := s.Get("b"); ok {
		t.Fatal("LRU eviction took the wrong victim: b should be gone")
	}
	if _, _, ok := s.Get("a"); !ok {
		t.Fatal("recently-read a was evicted ahead of b")
	}
	if _, _, ok := s.Get("c"); !ok {
		t.Fatal("the just-inserted entry was evicted")
	}
	if m := s.Metrics(); m.Evictions != 1 || m.Entries != 2 {
		t.Fatalf("LRU eviction metrics off: %+v", m)
	}
}

// TestStoreEvictionRewriteSurvivesReload: an eviction on a disk-backed
// store compacts plane.jsonl in place, so a restart does not resurrect
// the evicted entry — and entries written after the rewrite persist
// through the swapped append handle.
func TestStoreEvictionRewriteSurvivesReload(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0)
	s.SetNow(func() time.Time { return now })
	a := entryBytes(t, "v1", "a", "alpha", 1)
	s.SetLimits(int64(len(a))*2+2, 0)
	s.Put("a", a)
	now = now.Add(time.Second)
	s.Put("b", entryBytes(t, "v1", "b", "bravo", 1))
	now = now.Add(time.Second)
	s.Put("c", entryBytes(t, "v1", "c", "charl", 1)) // evicts a, rewrites
	if m := s.Metrics(); m.Rewrites != 1 {
		t.Fatalf("eviction did not compact the file: %+v", m)
	}
	now = now.Add(time.Second)
	if _, _, ok := s.Get("b"); !ok { // keep b fresher than c
		t.Fatal("b missing after rewrite")
	}
	now = now.Add(time.Second)
	s.Put("d", entryBytes(t, "v1", "d", "delta", 1)) // evicts c via the new handle
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, key := range []string{"a", "c"} {
		if _, _, ok := s2.Get(key); ok {
			t.Fatalf("evicted entry %q resurrected on reload", key)
		}
	}
	for _, key := range []string{"b", "d"} {
		if _, _, ok := s2.Get(key); !ok {
			t.Fatalf("live entry %q lost across the rewrite", key)
		}
	}
}
