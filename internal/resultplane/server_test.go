package resultplane

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/engine"
)

func newTestPlane(t *testing.T) (*Store, *httptest.Server) {
	t.Helper()
	store := NewStore()
	srv := httptest.NewServer(NewServer(store, "test-plane").Handler())
	t.Cleanup(srv.Close)
	return store, srv
}

func TestServerETagRoundTrip(t *testing.T) {
	_, srv := newTestPlane(t)
	c := NewClient(srv.URL, "v1")

	cr := api.CachedResult{Name: "mc", Text: "table", Seed: 3, DurationNS: 5}
	entry := api.CacheEntry{Version: engine.CacheVersionTag("v1"), Key: "mc@abc", Result: cr}
	if err := c.Put(context.Background(), entry); err != nil {
		t.Fatal(err)
	}

	// Plain GET: entry plus a quoted ETag header.
	u := srv.URL + GetPath + "?key=" + WireKey("v1", "mc@abc")
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	etag := resp.Header.Get("ETag")
	var got api.CacheEntry
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("get: status=%d etag=%q", resp.StatusCode, etag)
	}
	if got.Key != "mc@abc" || got.Result.Text != "table" {
		t.Fatalf("got entry %+v", got)
	}

	// Conditional GET with the tag: 304, no body.
	req, _ := http.NewRequest(http.MethodGet, u, nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || body.Len() != 0 {
		t.Fatalf("conditional get: status=%d body=%q", resp.StatusCode, body)
	}

	// A stale tag re-downloads.
	req, _ = http.NewRequest(http.MethodGet, u, nil)
	req.Header.Set("If-None-Match", `"deadbeef"`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale conditional get: status=%d", resp.StatusCode)
	}
}

func TestServerGetMissIsTypedNotFound(t *testing.T) {
	_, srv := newTestPlane(t)
	resp, err := http.Get(srv.URL + GetPath + "?key=nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("miss status %d", resp.StatusCode)
	}
	var ae api.Error
	if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil || ae.Code != api.CodeNotFound {
		t.Fatalf("miss body: err=%v code=%q", err, ae.Code)
	}
}

func TestServerClaimEndpoint(t *testing.T) {
	_, srv := newTestPlane(t)
	c1 := NewClient(srv.URL, "v1")
	c1.Owner = "alice"
	c2 := NewClient(srv.URL, "v1")
	c2.Owner = "bob"

	rep, err := c1.Claim(context.Background(), "k")
	if err != nil || !rep.Granted {
		t.Fatalf("first claim: %+v err=%v", rep, err)
	}
	rep, err = c2.Claim(context.Background(), "k")
	if err != nil || rep.Granted || rep.Owner != "alice" {
		t.Fatalf("competing claim: %+v err=%v", rep, err)
	}
}

func TestServerMetricsEndpoint(t *testing.T) {
	store, srv := newTestPlane(t)
	store.Put("k", []byte(`{"x":1}`))

	resp, err := http.Get(srv.URL + "/v2/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m api.BrokerMetrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Plane == nil || m.Plane.Puts != 1 || m.Plane.Entries != 1 {
		t.Fatalf("metrics json: %+v", m.Plane)
	}

	resp, err = http.Get(srv.URL + "/v2/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	text := new(bytes.Buffer)
	text.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(text.String(), "dramlocker_plane_puts_total 1") {
		t.Fatalf("prometheus text missing plane series:\n%s", text)
	}
}

// TestCrossProcessSingleFlight races two engine caches — two
// "machines" — on one key through a shared plane: exactly one may
// compute; the other must observe the claim, park, and receive the
// winner's stored result.
func TestCrossProcessSingleFlight(t *testing.T) {
	_, srv := newTestPlane(t)

	var computes atomic.Int64
	started := make(chan struct{}) // winner reached its compute
	finish := make(chan struct{})  // release the winner
	results := make(chan engine.Result, 2)

	run := func(owner string) {
		c := NewClient(srv.URL, "v1")
		c.Owner = owner
		ec := &EngineCache{C: c}
		r, ok := ec.Acquire(context.Background(), "k")
		if !ok {
			// We own the fleet-wide computation.
			if computes.Add(1) == 1 {
				close(started)
			}
			<-finish
			r = engine.Result{Name: "k", Text: "computed", Seed: 1, Duration: time.Millisecond}
			ec.Store(context.Background(), "k", r)
		}
		results <- r
	}

	go run("alice")
	// Don't start bob until alice holds the claim, so the race is the
	// interesting one: claim-held, result pending.
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("no worker ever claimed the computation")
	}
	go run("bob")
	// Give bob time to fetch-miss, get denied, and park on the long
	// poll before the winner publishes.
	time.Sleep(100 * time.Millisecond)
	close(finish)

	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if r.Text != "computed" {
				t.Fatalf("worker %d got %+v", i, r)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("worker never finished")
		}
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("%d computations ran, want exactly 1", n)
	}
}

// TestAcquireFallsBackOnDeadPlane proves a vanished plane degrades to
// local compute rather than stalling.
func TestAcquireFallsBackOnDeadPlane(t *testing.T) {
	_, srv := newTestPlane(t)
	c := NewClient(srv.URL, "v1")
	c.OpTimeout = time.Second
	srv.Close()

	ec := &EngineCache{C: c}
	if _, ok := ec.Acquire(context.Background(), "k"); ok {
		t.Fatal("dead plane must fall back to local compute, not hit")
	}
	// Store against a dead plane is a silent no-op.
	ec.Store(context.Background(), "k", engine.Result{Name: "k", Text: "x"})
}

// TestClientValidatesEntries proves a plane answering the wrong version
// or key is treated as a miss, never a wrong result.
func TestClientValidatesEntries(t *testing.T) {
	store, srv := newTestPlane(t)
	wrong, _ := json.Marshal(api.CacheEntry{
		Version: engine.CacheVersionTag("OTHER"), Key: "k",
		Result: api.CachedResult{Text: "poison"},
	})
	store.Put(WireKey("v1", "k"), wrong)

	c := NewClient(srv.URL, "v1")
	if _, ok, err := c.Fetch(context.Background(), "k"); err != nil || ok {
		t.Fatalf("version-mismatched entry must be a clean miss (ok=%v err=%v)", ok, err)
	}
}
