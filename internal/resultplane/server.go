package resultplane

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/remote"
)

// HTTP routes of the result plane. Flat paths with the key as a query
// parameter, so the fault-injection point names derived from the last
// path segment (server.get / server.put / server.claim and their
// client.* mirrors) stay clean.
const (
	GetPath   = "/v3/get"   // GET  ?key=K[&wait=seconds]; ETag / If-None-Match
	PutPath   = "/v3/put"   // POST ?key=K, body = api.CacheEntry JSON
	ClaimPath = "/v3/claim" // POST api.ClaimRequest
)

// maxEntryBytes bounds one PUT body (a cache entry is a rendered table
// plus a JSON payload — far below this; the bound is a hygiene limit).
const maxEntryBytes = 64 << 20

// maxWait clamps a long-poll GET's park time, mirroring the broker's
// status long-poll window.
const maxWait = 30 * time.Second

// Server serves the plane over HTTP: the /v3 object routes plus the
// standard /v1/status and /v2/metrics introspection endpoints, so a
// standalone plane daemon answers the same operational surface as a
// broker (dramlocker -stats works against either).
type Server struct {
	store *Store
	name  string
}

// NewServer wraps store; name is the daemon's advertised identity.
func NewServer(store *Store, name string) *Server {
	return &Server{store: store, name: name}
}

// Routes registers only the /v3 object routes on mux — the co-hosting
// shape, where a broker already serves /v1/status and /v2/metrics.
func (s *Server) Routes(mux *http.ServeMux) {
	mux.HandleFunc(GetPath, s.handleGet)
	mux.HandleFunc(PutPath, s.handlePut)
	mux.HandleFunc(ClaimPath, s.handleClaim)
}

// Handler returns the standalone plane daemon's full handler: the /v3
// routes plus status and metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Routes(mux)
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/v2/metrics", s.handleMetrics)
	return mux
}

// handleGet answers a conditional, optionally long-polling fetch.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		remote.WriteError(w, api.Errf(api.CodeBadRequest, "%s needs GET", GetPath))
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		remote.WriteError(w, api.Errf(api.CodeBadRequest, "get needs a key"))
		return
	}
	data, etag, ok := s.store.Get(key)
	if !ok {
		if wait := parseWait(r.URL.Query().Get("wait")); wait > 0 {
			data, etag, ok = s.store.Wait(r.Context(), key, wait)
		}
	}
	if !ok {
		remote.WriteError(w, api.Errf(api.CodeNotFound, "no entry for key %q", key))
		return
	}
	quoted := `"` + etag + `"`
	w.Header().Set("ETag", quoted)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// parseWait parses a long-poll window in whole seconds, clamped.
func parseWait(s string) time.Duration {
	if s == "" {
		return 0
	}
	secs, err := strconv.Atoi(s)
	if err != nil || secs <= 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > maxWait {
		d = maxWait
	}
	return d
}

// etagMatch checks an If-None-Match header against the entry tag,
// tolerating quoting, weak validators and comma-separated lists.
func etagMatch(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		t := strings.TrimSpace(part)
		t = strings.TrimPrefix(t, "W/")
		t = strings.Trim(t, `"`)
		if t == etag || t == "*" {
			return true
		}
	}
	return false
}

// handlePut stores one entry.
func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		remote.WriteError(w, api.Errf(api.CodeBadRequest, "%s needs POST", PutPath))
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		remote.WriteError(w, api.Errf(api.CodeBadRequest, "put needs a key"))
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxEntryBytes+1))
	if err != nil {
		remote.WriteError(w, api.Errf(api.CodeBadRequest, "read entry: %v", err))
		return
	}
	if len(data) == 0 || len(data) > maxEntryBytes {
		remote.WriteError(w, api.Errf(api.CodeBadRequest, "entry must be 1..%d bytes, got %d", maxEntryBytes, len(data)))
		return
	}
	etag, conflict := s.store.Put(key, data)
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, api.PutReply{Proto: api.Version, ETag: etag, Conflict: conflict})
}

// handleClaim arbitrates single-flight.
func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		remote.WriteError(w, api.Errf(api.CodeBadRequest, "%s needs POST", ClaimPath))
		return
	}
	var req api.ClaimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		remote.WriteError(w, api.Errf(api.CodeBadRequest, "decode claim: %v", err))
		return
	}
	if err := api.CheckProto(req.Proto); err != nil {
		remote.WriteError(w, err)
		return
	}
	if req.Key == "" {
		remote.WriteError(w, api.Errf(api.CodeBadRequest, "claim needs a key"))
		return
	}
	rep := s.store.Claim(req.Key, req.Owner, time.Duration(req.TTLNS))
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, rep)
}

// handleStatus answers the standard daemon introspection probe.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, api.WorkerStatus{Proto: api.Version, Name: s.name, Role: "result-plane"})
}

// handleMetrics serves the plane's counters in the broker metrics
// schema (Plane populated, queue fields zero) as JSON or Prometheus
// text, so -stats and scrapers treat plane and broker uniformly.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	pm := s.store.Metrics()
	m := api.BrokerMetrics{Proto: api.Version, Plane: &pm}
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		remote.WritePrometheus(w, m)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, m)
}

// writeJSON encodes v; by this point headers are committed, so encode
// errors (a dying connection) have nowhere useful to go.
func writeJSON(w http.ResponseWriter, v any) {
	json.NewEncoder(w).Encode(v)
}
