package resultplane

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/engine"
	"repro/internal/remote"
)

// WireKey folds the engine's code-version stamp into a cache key the
// way plane objects are addressed: one plane can hold entries from
// several code versions without cross-talk, and a version bump
// invalidates the fleet's shared results exactly like it invalidates a
// local cache dir.
func WireKey(version, key string) string {
	return engine.CacheVersionTag(version) + "|" + key
}

// Client talks to a result plane over HTTP. The zero OpTimeout and
// ClaimTTL default sensibly; every method degrades on transport
// failure (miss or no-op), never blocking a computation on plane
// health.
type Client struct {
	// Base is the plane address, e.g. "http://host:9321".
	Base string
	// Version is the engine code-version stamp folded into every key.
	Version string
	// Owner identifies this process in claim arbitration.
	Owner string
	// HTTPClient, when non-nil, overrides http.DefaultClient (the seam
	// fault-injection transports hook into).
	HTTPClient *http.Client
	// ClaimTTL is requested on Claim (0 → server default).
	ClaimTTL time.Duration
	// OpTimeout bounds one plane round-trip (0 → 10s). Long-poll waits
	// get their own window on top.
	OpTimeout time.Duration
}

// NewClient returns a plane client with a host-and-pid claim owner.
func NewClient(base, version string) *Client {
	host, _ := os.Hostname()
	if host == "" {
		host = "anon"
	}
	return &Client{
		Base:    strings.TrimRight(base, "/"),
		Version: version,
		Owner:   fmt.Sprintf("%s/%d", host, os.Getpid()),
	}
}

func (c *Client) client() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) opTimeout() time.Duration {
	if c.OpTimeout > 0 {
		return c.OpTimeout
	}
	return 10 * time.Second
}

// get runs one GET against the plane and returns the decoded entry.
// ok=false with a nil error is a clean miss; an error is a transport
// or protocol failure (callers treat both as misses, but claim loops
// use the distinction to stop talking to a sick plane).
func (c *Client) get(ctx context.Context, key string, wait time.Duration) (api.CacheEntry, bool, error) {
	wire := WireKey(c.Version, key)
	u := c.Base + GetPath + "?key=" + url.QueryEscape(wire)
	window := c.opTimeout()
	if wait > 0 {
		secs := int(wait / time.Second)
		if secs < 1 {
			secs = 1
		}
		u += fmt.Sprintf("&wait=%d", secs)
		window += time.Duration(secs) * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, window)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return api.CacheEntry{}, false, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return api.CacheEntry{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := remote.DecodeError(resp)
		if ae, ok := api.AsError(err); ok && ae.Code == api.CodeNotFound {
			return api.CacheEntry{}, false, nil
		}
		return api.CacheEntry{}, false, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes+1))
	if err != nil {
		return api.CacheEntry{}, false, err
	}
	var e api.CacheEntry
	if err := json.Unmarshal(body, &e); err != nil {
		return api.CacheEntry{}, false, fmt.Errorf("resultplane: decode entry: %w", err)
	}
	// Entries are validated client-side: a plane answering the wrong
	// version or key (a proxy mixup, a poisoned store) is a miss, not a
	// wrong result.
	if e.Version != engine.CacheVersionTag(c.Version) || e.Key != key || e.Result.Err != "" {
		return api.CacheEntry{}, false, nil
	}
	return e, true, nil
}

// Fetch returns key's entry if the plane has it now.
func (c *Client) Fetch(ctx context.Context, key string) (api.CacheEntry, bool, error) {
	return c.get(ctx, key, 0)
}

// WaitFetch long-polls up to wait for key's entry to appear.
func (c *Client) WaitFetch(ctx context.Context, key string, wait time.Duration) (api.CacheEntry, bool, error) {
	return c.get(ctx, key, wait)
}

// Put stores entry under its key.
func (c *Client) Put(ctx context.Context, e api.CacheEntry) error {
	body, err := json.Marshal(e)
	if err != nil {
		return err
	}
	wire := WireKey(c.Version, e.Key)
	u := c.Base + PutPath + "?key=" + url.QueryEscape(wire)
	ctx, cancel := context.WithTimeout(ctx, c.opTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return remote.DecodeError(resp)
	}
	var rep api.PutReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return fmt.Errorf("resultplane: decode put reply: %w", err)
	}
	return nil
}

// Claim asks the plane who computes key.
func (c *Client) Claim(ctx context.Context, key string) (api.ClaimReply, error) {
	req := api.ClaimRequest{
		Proto: api.Version, Key: WireKey(c.Version, key),
		Owner: c.Owner, TTLNS: c.ClaimTTL.Nanoseconds(),
	}
	ctx, cancel := context.WithTimeout(ctx, c.opTimeout())
	defer cancel()
	var rep api.ClaimReply
	if err := remote.PostJSON(ctx, c.client(), c.Base+ClaimPath, req, &rep); err != nil {
		return api.ClaimReply{}, err
	}
	return rep, nil
}

// Lookup implements the broker's result-plane seam: a plain fetch
// returning the persisted result form. Any failure is a miss.
func (c *Client) Lookup(ctx context.Context, key string) (api.CachedResult, bool) {
	e, ok, err := c.Fetch(ctx, key)
	if err != nil || !ok {
		return api.CachedResult{}, false
	}
	return e.Result, true
}

// Status probes the plane daemon's identity endpoint.
func (c *Client) Status(ctx context.Context) (api.WorkerStatus, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/status", nil)
	if err != nil {
		return api.WorkerStatus{}, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return api.WorkerStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return api.WorkerStatus{}, remote.DecodeError(resp)
	}
	var ws api.WorkerStatus
	if err := json.NewDecoder(resp.Body).Decode(&ws); err != nil {
		return api.WorkerStatus{}, err
	}
	return ws, nil
}

// EngineCache adapts a plane Client to the engine's RemoteCache seam:
// the fleet-wide tier behind a process-local engine.Cache.
type EngineCache struct {
	C *Client
}

var _ engine.RemoteCache = (*EngineCache)(nil)

// Lookup fetches without claiming.
func (ec *EngineCache) Lookup(ctx context.Context, key string) (engine.Result, bool) {
	e, ok, err := ec.C.Fetch(ctx, key)
	if err != nil || !ok {
		return engine.Result{}, false
	}
	return engine.FromCachedResult(e.Result), true
}

// Acquire arbitrates fleet-wide single-flight for key. The loop is:
// fetch (hit wins immediately) → claim → on Done re-fetch, on Granted
// own the computation, on denial long-poll the holder's computation
// and go around. Every transport failure drops out to local compute —
// a sick plane costs duplicated work, never a stall or a wrong result.
func (ec *EngineCache) Acquire(ctx context.Context, key string) (engine.Result, bool) {
	doneMisses := 0
	for ctx.Err() == nil {
		e, ok, err := ec.C.Fetch(ctx, key)
		if err != nil {
			return engine.Result{}, false
		}
		if ok {
			return engine.FromCachedResult(e.Result), true
		}
		rep, err := ec.C.Claim(ctx, key)
		if err != nil {
			return engine.Result{}, false
		}
		switch {
		case rep.Granted:
			return engine.Result{}, false
		case rep.Done:
			// Entry exists server-side but our fetch missed (version or
			// key validation rejected it, or a freak race). Retry a
			// couple of times, then compute locally rather than spin.
			doneMisses++
			if doneMisses >= 3 {
				return engine.Result{}, false
			}
		default:
			// Denied: another machine is computing. Park on its result
			// for the claim's remaining lifetime; a timeout loops back
			// to re-arbitrate (the holder may have crashed — its expired
			// claim then grants to us).
			wait := time.Duration(rep.RetryAfterNS)
			if wait < time.Second {
				wait = time.Second
			}
			if wait > maxWait {
				wait = maxWait
			}
			e, ok, err := ec.C.WaitFetch(ctx, key, wait)
			if err != nil {
				return engine.Result{}, false
			}
			if ok {
				return engine.FromCachedResult(e.Result), true
			}
		}
	}
	return engine.Result{}, false
}

// Store writes through one newly computed success; failures are
// dropped (the result is safe in the local tiers).
func (ec *EngineCache) Store(ctx context.Context, key string, r engine.Result) {
	if r.Err != "" {
		return
	}
	cr, err := engine.ToCachedResult(r)
	if err != nil {
		return
	}
	e := api.CacheEntry{Version: engine.CacheVersionTag(ec.C.Version), Key: key, Result: cr}
	ec.C.Put(ctx, e)
}

// StorePlane adapts an in-process Store to the broker's result-plane
// seam — the co-hosted shape (-broker -result-plane in one daemon)
// where broker prefetches must not loop through HTTP.
type StorePlane struct {
	S *Store
	// Version is the engine code-version stamp folded into keys.
	Version string
}

// Lookup fetches key's persisted result straight from the store.
func (sp *StorePlane) Lookup(ctx context.Context, key string) (api.CachedResult, bool) {
	data, _, ok := sp.S.Get(WireKey(sp.Version, key))
	if !ok {
		return api.CachedResult{}, false
	}
	var e api.CacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return api.CachedResult{}, false
	}
	if e.Version != engine.CacheVersionTag(sp.Version) || e.Key != key || e.Result.Err != "" {
		return api.CachedResult{}, false
	}
	return e.Result, true
}
