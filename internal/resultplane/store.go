// Package resultplane is the fleet-wide result plane: a content-
// addressed HTTP object store speaking the engine's versioned
// cache-entry format (api.CacheEntry), with ETag conditional GETs,
// long-poll waits, and a claim protocol for cross-machine single-flight
// — a 100-worker fleet computes each cache key exactly once.
//
// The plane is an optimisation, never a correctness dependency: every
// consumer (scheduler cache tier, worker cache stack, cache-aware
// broker) treats plane errors as misses and falls back to local
// compute, so a dead or flaky plane degrades throughput, not results.
//
// Consistency model: keys are content addresses (experiment id, preset
// hash, shard, code version and base seed are all folded in), so two
// correct producers of one key must produce equivalent payloads. A
// duplicate PUT with an equivalent payload keeps the original bytes
// (ETags and replays stay byte-stable — first write wins); a PUT whose
// payload genuinely differs is an equivalence violation: the plane
// counts it as a conflict and lets the last write win, so a fixed
// producer can repair a poisoned key by re-putting.
package resultplane

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/api"
)

// planeFile is the JSON-lines persistence file inside the plane dir.
const planeFile = "plane.jsonl"

// Claim TTL clamps: a claimant that asks for nothing gets DefaultClaimTTL,
// and nobody may park a key longer than MaxClaimTTL — an abandoned claim
// (crashed worker) must expire fast enough that waiters reclaim and
// compute instead of stalling the fleet.
const (
	DefaultClaimTTL = 30 * time.Second
	MinClaimTTL     = time.Second
	MaxClaimTTL     = 2 * time.Minute
)

// entry is one stored object.
type entry struct {
	data []byte
	etag string // hex sha256 of data
	// lastUsed is the entry's last hit (or its store time), the LRU
	// eviction order and the idle-TTL clock.
	lastUsed time.Time
}

// claim is one in-flight computation registration.
type claim struct {
	owner   string
	expires time.Time
}

// planeLine is the persistence record: the key and the entry bytes
// verbatim (kept raw so reloaded entries are byte-identical).
type planeLine struct {
	Key  string          `json:"key"`
	Data json.RawMessage `json:"data"`
}

// Store is the plane's in-memory object store, optionally backed by an
// append-only JSON-lines file. All methods are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	entries map[string]entry
	claims  map[string]claim
	// waiters holds one broadcast channel per key with parked long-poll
	// GETs; Put closes it. Created lazily, recreated after each close.
	waiters map[string]chan struct{}
	f       *os.File
	path    string // persistence file path ("" when memory-only)
	// rewriteMu serializes plane.jsonl compactions. It is separate from
	// mu so the full-file write+fsync never runs inside the critical
	// section — at the byte budget most PUTs evict, and holding mu for
	// the rewrite would stall every Get/Wait/Put for a write
	// proportional to the plane size.
	rewriteMu sync.Mutex
	m         api.PlaneMetrics
	// Eviction limits (SetLimits): maxBytes caps BytesStored via LRU
	// eviction, ttl drops entries idle longer than ttl. Zero disables.
	maxBytes int64
	ttl      time.Duration
	// now is the clock (injectable so claim-expiry tests don't sleep).
	now func() time.Time
}

// NewStore returns an empty, memory-only store.
func NewStore() *Store {
	return &Store{
		entries: make(map[string]entry),
		claims:  make(map[string]claim),
		waiters: make(map[string]chan struct{}),
		now:     time.Now,
	}
}

// Open returns a store persisted under dir (created if missing):
// existing entries are reloaded (later lines win, corrupt lines are
// skipped — damage degrades to misses) and every accepted PUT is
// appended. An empty dir means memory-only.
func Open(dir string) (*Store, error) {
	s := NewStore()
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultplane: create plane dir: %w", err)
	}
	path := filepath.Join(dir, planeFile)
	s.load(path)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultplane: open plane file: %w", err)
	}
	s.f = f
	s.path = path
	return s, nil
}

// SetLimits caps the store: maxBytes bounds BytesStored (least recently
// used entries are evicted past it) and ttl drops entries idle longer
// than ttl. Zero disables either limit. Limits are enforced at PUT time
// — the plane is an optimisation, so an eviction merely costs a future
// recompute — and each eviction batch compacts plane.jsonl so reclaimed
// entries do not resurrect on restart.
func (s *Store) SetLimits(maxBytes int64, ttl time.Duration) {
	s.mu.Lock()
	s.maxBytes = maxBytes
	s.ttl = ttl
	evicted := s.maybeEvictLocked("")
	s.mu.Unlock()
	if evicted {
		s.rewrite()
	}
}

// load best-effort replays path into the store.
func (s *Store) load(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var pl planeLine
		if err := json.Unmarshal(line, &pl); err != nil || pl.Key == "" || len(pl.Data) == 0 {
			continue
		}
		data := append([]byte(nil), pl.Data...)
		// Reloaded entries start their idle clock now — mtimes are not
		// persisted, and nuking the whole store at boot would be worse
		// than letting survivors age out over the next TTL window.
		s.entries[pl.Key] = entry{data: data, etag: etagOf(data), lastUsed: s.now()}
	}
	s.m.Entries = int64(len(s.entries))
	for _, e := range s.entries {
		s.m.BytesStored += int64(len(e.data))
	}
}

// SetNow injects the clock (tests drive claim expiry with a fake one).
func (s *Store) SetNow(now func() time.Time) {
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

// Close releases the persistence file, if any.
func (s *Store) Close() error {
	s.mu.Lock()
	f := s.f
	s.f = nil
	s.mu.Unlock()
	if f == nil {
		return nil
	}
	return f.Close()
}

// etagOf is the entry tag: hex sha256 of the stored bytes.
func etagOf(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Get returns key's entry bytes and ETag. A miss is counted.
func (s *Store) Get(key string) ([]byte, string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		s.m.Misses++
		return nil, "", false
	}
	s.m.Hits++
	s.touchLocked(key, e)
	return e.data, e.etag, true
}

// touchLocked refreshes key's LRU position (mu held).
func (s *Store) touchLocked(key string, e entry) {
	e.lastUsed = s.now()
	s.entries[key] = e
}

// Wait long-polls for key: it returns immediately on a hit and
// otherwise parks until a PUT lands, d elapses, or ctx cancels. A wake
// by PUT counts as a WaitHit.
func (s *Store) Wait(ctx context.Context, key string, d time.Duration) ([]byte, string, bool) {
	deadline := time.NewTimer(d)
	defer deadline.Stop()
	for {
		s.mu.Lock()
		if e, ok := s.entries[key]; ok {
			s.m.Hits++
			s.touchLocked(key, e)
			s.mu.Unlock()
			return e.data, e.etag, true
		}
		ch := s.waiters[key]
		if ch == nil {
			ch = make(chan struct{})
			s.waiters[key] = ch
		}
		s.mu.Unlock()
		select {
		case <-ch:
			s.mu.Lock()
			if e, ok := s.entries[key]; ok {
				s.m.WaitHits++
				s.touchLocked(key, e)
				s.mu.Unlock()
				return e.data, e.etag, true
			}
			s.mu.Unlock()
			// Spurious wake (no entry): loop and park again.
		case <-deadline.C:
			s.mu.Lock()
			s.m.Misses++
			s.mu.Unlock()
			return nil, "", false
		case <-ctx.Done():
			return nil, "", false
		}
	}
}

// Put stores data under key and releases the key's claim and waiters.
// An equivalent duplicate keeps the original bytes (first write wins,
// so ETags stay stable); a differing payload is counted as a conflict
// and overwrites (last write wins). The returned ETag tags whatever the
// store now holds.
func (s *Store) Put(key string, data []byte) (string, bool) {
	data = append([]byte(nil), data...)
	s.mu.Lock()
	old, exists := s.entries[key]
	conflict := false
	switch {
	case exists && bytes.Equal(old.data, data):
		s.m.DupPuts++
		s.releaseLocked(key)
		s.mu.Unlock()
		return old.etag, false
	case exists && samePayload(old.data, data):
		// Equivalent result from a different producer (durations and
		// diagnostic names differ): keep the original bytes.
		s.m.DupPuts++
		s.releaseLocked(key)
		s.mu.Unlock()
		return old.etag, false
	case exists:
		s.m.Conflicts++
		s.m.BytesStored -= int64(len(old.data))
		conflict = true
	default:
		s.m.Puts++
		s.m.Entries++
	}
	e := entry{data: data, etag: etagOf(data), lastUsed: s.now()}
	s.entries[key] = e
	s.m.BytesStored += int64(len(data))
	s.releaseLocked(key)
	// Enforce the byte budget and idle TTL now that the write landed; a
	// triggered eviction batch rewrites plane.jsonl — outside the lock,
	// and with the new entry included (it is in s.entries before the
	// rewrite snapshots), making the append below redundant.
	evicted := s.maybeEvictLocked(key)
	f := s.f
	var line []byte
	if f != nil && !evicted {
		line, _ = json.Marshal(planeLine{Key: key, Data: data})
		line = append(line, '\n')
	}
	s.mu.Unlock()
	if evicted {
		s.rewrite()
	} else if line != nil {
		// Swallow write errors like the disk cache: persistence is an
		// optimisation; the entry is live in memory regardless.
		f.Write(line)
	}
	return e.etag, conflict
}

// maybeEvictLocked enforces the idle TTL and the byte budget (mu held),
// sparing keep (the entry whose write triggered the check — evicting
// what was just stored would thrash). It reports whether anything was
// evicted; the caller runs rewrite() after releasing mu so the evicted
// entries do not resurrect from plane.jsonl on restart.
func (s *Store) maybeEvictLocked(keep string) bool {
	if s.maxBytes <= 0 && s.ttl <= 0 {
		return false
	}
	now := s.now()
	evicted := 0
	if s.ttl > 0 {
		for key, e := range s.entries {
			if key != keep && now.Sub(e.lastUsed) > s.ttl {
				s.dropLocked(key, e)
				evicted++
			}
		}
	}
	if s.maxBytes > 0 && s.m.BytesStored > s.maxBytes {
		type cand struct {
			key      string
			lastUsed time.Time
		}
		cands := make([]cand, 0, len(s.entries))
		for key, e := range s.entries {
			if key != keep {
				cands = append(cands, cand{key, e.lastUsed})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if !cands[i].lastUsed.Equal(cands[j].lastUsed) {
				return cands[i].lastUsed.Before(cands[j].lastUsed)
			}
			return cands[i].key < cands[j].key // deterministic tie-break
		})
		for _, c := range cands {
			if s.m.BytesStored <= s.maxBytes {
				break
			}
			s.dropLocked(c.key, s.entries[c.key])
			evicted++
		}
	}
	return evicted > 0
}

// dropLocked removes one entry, counting the eviction (mu held).
func (s *Store) dropLocked(key string, e entry) {
	delete(s.entries, key)
	s.m.Entries--
	s.m.BytesStored -= int64(len(e.data))
	s.m.Evictions++
	s.m.EvictedBytes += int64(len(e.data))
}

// rewrite compacts the persistence file to the live entries — snapshot
// the map under mu, then (outside mu, serialized by rewriteMu) write a
// temp file, fsync, rename over plane.jsonl, and swap the append handle
// to the new inode. Entry data slices are immutable once stored, so the
// snapshot is a map copy, not a deep copy. A PUT that appends to the
// old handle while the rename lands loses that one line on disk (the
// entry stays live in memory and the next rewrite re-captures it);
// errors leave the old file in place — in both cases the worst case is
// entries resurrecting or missing on the next restart, which the plane
// already tolerates as recomputes. Both are strictly better than
// stalling every Get/Wait/Put behind a full-file fsync.
func (s *Store) rewrite() {
	s.rewriteMu.Lock()
	defer s.rewriteMu.Unlock()
	s.mu.Lock()
	if s.f == nil || s.path == "" {
		s.mu.Unlock()
		return
	}
	snap := make(map[string][]byte, len(s.entries))
	for key, e := range s.entries {
		snap[key] = e.data
	}
	path := s.path
	s.mu.Unlock()

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return
	}
	w := bufio.NewWriter(f)
	for key, data := range snap {
		line, err := json.Marshal(planeLine{Key: key, Data: data})
		if err != nil {
			continue
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if w.Flush() != nil || f.Sync() != nil || f.Close() != nil || os.Rename(tmp, path) != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	nf, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)

	s.mu.Lock()
	s.m.Rewrites++
	if err != nil {
		// The compact landed but we lost the append handle; keep the old
		// one — its appends vanish with the renamed-over inode, degrading
		// to cache misses after restart.
		s.mu.Unlock()
		return
	}
	if s.f == nil {
		// Closed mid-rewrite: the compacted file is on disk, but the
		// store is sealed — do not resurrect an append handle.
		s.mu.Unlock()
		nf.Close()
		return
	}
	s.f.Close()
	s.f = nf
	s.mu.Unlock()
}

// releaseLocked drops key's claim and wakes its waiters (mu held).
func (s *Store) releaseLocked(key string) {
	delete(s.claims, key)
	if ch, ok := s.waiters[key]; ok {
		delete(s.waiters, key)
		close(ch)
	}
}

// samePayload reports whether two entry byte slices decode to
// equivalent cache entries (same key, version and result payload;
// producer-dependent fields ignored). Undecodable bytes never match.
func samePayload(a, b []byte) bool {
	var ea, eb api.CacheEntry
	if json.Unmarshal(a, &ea) != nil || json.Unmarshal(b, &eb) != nil {
		return false
	}
	return ea.SamePayload(eb)
}

// Claim resolves who computes key. Results win over claims: a stored
// entry answers Done. Otherwise the first claimant (or any claimant
// after the previous claim expired) is Granted for the clamped TTL;
// everyone else is denied with the holder and the claim's remaining
// lifetime as a retry hint. A denied claim is one deduplicated
// computation.
func (s *Store) Claim(key, owner string, ttl time.Duration) api.ClaimReply {
	if ttl <= 0 {
		ttl = DefaultClaimTTL
	}
	if ttl < MinClaimTTL {
		ttl = MinClaimTTL
	}
	if ttl > MaxClaimTTL {
		ttl = MaxClaimTTL
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		return api.ClaimReply{Proto: api.Version, Done: true}
	}
	now := s.now()
	if c, ok := s.claims[key]; ok && now.Before(c.expires) && c.owner != owner {
		s.m.ClaimsDenied++
		return api.ClaimReply{
			Proto: api.Version, Owner: c.owner,
			RetryAfterNS: c.expires.Sub(now).Nanoseconds(),
		}
	}
	// Unclaimed, expired, or the holder re-claiming (extends its TTL).
	s.claims[key] = claim{owner: owner, expires: now.Add(ttl)}
	s.m.ClaimsGranted++
	return api.ClaimReply{Proto: api.Version, Granted: true, TTLNS: ttl.Nanoseconds()}
}

// Metrics snapshots the counters.
func (s *Store) Metrics() api.PlaneMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m
}
