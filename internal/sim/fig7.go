// Package sim implements the system-level models behind the paper's
// Fig. 7: (a) mitigation latency per refresh window as a function of
// attack intensity, and (b) the sustained defense time until an attacker's
// cumulative flip probability exceeds 1%.
//
// The latency model is command-level (replacing the paper's gem5+CACTI
// stack): every quantity is derived from DDR4 timing parameters and the
// mitigation mechanics, with the calibration constants documented next to
// each formula and recorded in EXPERIMENTS.md.
package sim

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/rowclone"
)

// LatencyConfig parameterises the Fig. 7(a) model.
type LatencyConfig struct {
	Timing dram.Timing
	// ProtectedRows is the size of the protection working set (weight-
	// adjacent rows for DRAM-Locker, potential target rows for SHADOW).
	// The default (1000) corresponds to a VGG-scale model footprint.
	ProtectedRows int
	// RelockInterval is DRAM-Locker's re-lock cadence in R/W instructions.
	RelockInterval int
	// PendingRows is the typical number of concurrently unlocked
	// (pending re-lock) rows per re-lock cycle in DRAM-Locker.
	PendingRows int
	// ShadowCeilingFactor bounds SHADOW: its shuffle throughput is
	// exceeded once one row sees CeilingFactor*TRH activations per window.
	ShadowCeilingFactor int
	// Thresholds are the device TRH values swept for the SHADOW curves;
	// DRAM-Locker's single curve is evaluated at the smallest (its worst
	// case). Empty means PaperThresholds() (1k/2k/4k/8k).
	Thresholds []int
}

// DefaultLatencyConfig returns the Fig. 7(a) operating point.
func DefaultLatencyConfig() LatencyConfig {
	return LatencyConfig{
		Timing:              dram.DDR4Timing(),
		ProtectedRows:       1000,
		RelockInterval:      1000,
		PendingRows:         64,
		ShadowCeilingFactor: 40,
		Thresholds:          PaperThresholds(),
	}
}

// PaperThresholds returns the TRH sweep of Fig. 7 (1k, 2k, 4k, 8k).
func PaperThresholds() []int {
	return []int{1000, 2000, 4000, 8000}
}

// Validate checks the configuration.
func (c LatencyConfig) Validate() error {
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if c.ProtectedRows <= 0 || c.RelockInterval <= 0 || c.PendingRows <= 0 || c.ShadowCeilingFactor <= 0 {
		return fmt.Errorf("sim: LatencyConfig fields must be positive: %+v", c)
	}
	return validateThresholds(c.Thresholds)
}

// thresholdsOrDefault substitutes the paper sweep for an unset field, so
// configs built as literals keep the pre-Thresholds behavior.
func thresholdsOrDefault(trhs []int) []int {
	if len(trhs) == 0 {
		return PaperThresholds()
	}
	return trhs
}

// validateThresholds requires a positive, strictly increasing TRH sweep
// (empty is allowed — it means the default).
func validateThresholds(trhs []int) error {
	prev := 0
	for _, trh := range trhs {
		if trh <= prev {
			return fmt.Errorf("sim: Thresholds must be positive and strictly increasing, got %v", trhs)
		}
		prev = trh
	}
	return nil
}

// LatencyPoint is one (x, y) sample of a Fig. 7(a) curve.
type LatencyPoint struct {
	BFA int
	// Latency is the mitigation latency accumulated in one refresh window.
	Latency dram.Picoseconds
	// Compromised is true for SHADOW points beyond its defense threshold
	// (the paper halts the curve there).
	Compromised bool
}

// ShadowLatency returns SHADOW's per-window mitigation latency at the given
// attack intensity (activations per refresh window) for device threshold
// trh.
//
// Mechanics: SHADOW must shuffle each potential target row before it
// accumulates trh activations (period trh/2 for a 2x safety factor), and a
// shuffle trigger relocates the whole protected group of rows (SHADOW's
// "unintelligent" shuffling), each relocation being a full three-copy row
// exchange: latency = (n / (trh/2)) * group * tSwap.
// Its defense threshold is ceilingFactor*trh activations per window —
// beyond that the shuffle throughput is exceeded, integrity is lost, and
// delay escalation halts (the curve plateaus, as in the paper).
func ShadowLatency(cfg LatencyConfig, trh, nBFA int) LatencyPoint {
	pt := LatencyPoint{BFA: nBFA}
	ceiling := cfg.ShadowCeilingFactor * trh
	n := nBFA
	if n > ceiling {
		n = ceiling
		pt.Compromised = true
	}
	period := trh / 2
	if period < 1 {
		period = 1
	}
	shuffles := int64(n / period)
	perShuffle := int64(cfg.ProtectedRows) * int64(cfg.Timing.SwapLatency())
	pt.Latency = dram.Picoseconds(shuffles * perShuffle)
	return pt
}

// LockerLatency returns DRAM-Locker's per-window mitigation latency at the
// given attack intensity.
//
// Mechanics: every attacker R/W instruction costs one lock-table lookup
// (the instruction itself is then skipped, so no array latency); every
// RelockInterval instructions the controller runs a re-lock cycle that
// swaps back the pending rows (three RowClone copies each). There is no
// defense threshold: the lock holds at any intensity.
func LockerLatency(cfg LatencyConfig, nBFA int) LatencyPoint {
	lookups := dram.Picoseconds(int64(nBFA) * int64(cfg.Timing.LockLookup))
	cycles := int64(nBFA / cfg.RelockInterval)
	swaps := cycles * int64(cfg.PendingRows)
	swapLat := dram.Picoseconds(swaps * int64(cfg.Timing.SwapLatency()))
	return LatencyPoint{BFA: nBFA, Latency: lookups + swapLat}
}

// Fig7aCurve is one labelled latency curve.
type Fig7aCurve struct {
	Label  string
	TRH    int
	Points []LatencyPoint
}

// ShadowCurve computes SHADOW's latency curve at one device threshold for
// nBFA = 0..maxBFA in steps — one shard of the Fig. 7(a) grid.
func ShadowCurve(cfg LatencyConfig, trh, maxBFA, step int) (Fig7aCurve, error) {
	if err := cfg.Validate(); err != nil {
		return Fig7aCurve{}, err
	}
	if maxBFA <= 0 || step <= 0 {
		return Fig7aCurve{}, fmt.Errorf("sim: maxBFA and step must be positive")
	}
	if trh <= 0 {
		return Fig7aCurve{}, fmt.Errorf("sim: trh must be positive, got %d", trh)
	}
	c := Fig7aCurve{Label: fmt.Sprintf("SHADOW%d", trh), TRH: trh}
	for n := 0; n <= maxBFA; n += step {
		c.Points = append(c.Points, ShadowLatency(cfg, trh, n))
	}
	return c, nil
}

// LockerCurve computes DRAM-Locker's latency curve (labelled with its
// worst case, the smallest configured threshold) — the final shard of the
// Fig. 7(a) grid.
func LockerCurve(cfg LatencyConfig, maxBFA, step int) (Fig7aCurve, error) {
	if err := cfg.Validate(); err != nil {
		return Fig7aCurve{}, err
	}
	if maxBFA <= 0 || step <= 0 {
		return Fig7aCurve{}, fmt.Errorf("sim: maxBFA and step must be positive")
	}
	dl := Fig7aCurve{Label: "DL", TRH: thresholdsOrDefault(cfg.Thresholds)[0]}
	for n := 0; n <= maxBFA; n += step {
		dl.Points = append(dl.Points, LockerLatency(cfg, n))
	}
	return dl, nil
}

// Fig7a computes the full figure: SHADOW at each configured threshold and
// DRAM-Locker at its worst case (the smallest threshold), for
// nBFA = 0..maxBFA in steps.
func Fig7a(cfg LatencyConfig, maxBFA, step int) ([]Fig7aCurve, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var curves []Fig7aCurve
	for _, trh := range thresholdsOrDefault(cfg.Thresholds) {
		c, err := ShadowCurve(cfg, trh, maxBFA, step)
		if err != nil {
			return nil, err
		}
		curves = append(curves, c)
	}
	dl, err := LockerCurve(cfg, maxBFA, step)
	if err != nil {
		return nil, err
	}
	return append(curves, dl), nil
}

// --- Fig. 7(b): defense time -------------------------------------------------

// DefenseTimeConfig parameterises the defense-duration model.
type DefenseTimeConfig struct {
	Timing dram.Timing
	// CopyErrorProb is the per-row-copy error probability (paper assumes
	// 10% for this experiment).
	CopyErrorProb float64
	// TargetProb is the cumulative attacker success probability defining
	// "defense holds" (paper: 1%).
	TargetProb float64
	// UnlockRatePerDay is the rate of legitimate SWAP (unlock) events on
	// the victim-adjacent locked row. Locked rows are chosen *because*
	// they are cold (paper §IV-A), so this is small.
	UnlockRatePerDay float64
	// ExposureAlignProb is the probability that, given a silently
	// erroneous SWAP, the attacker's continuous hammering both coincides
	// with the brief exposure (the ~50us re-lock window out of the 64ms
	// refresh window, ~7.8e-4) and defeats the residual redirect
	// bookkeeping. Calibrated so DRAM-Locker at TRH=1k sustains >500
	// days, the paper's reported operating point.
	ExposureAlignProb float64
	// ShadowEvadePerWindow is the per-refresh-window probability that the
	// attacker defeats SHADOW's randomized shuffle (guesses the shuffle
	// destination and completes the hammer inside the window) at TRH=1k.
	// Calibrated so SHADOW at TRH=1k holds for tens of days.
	ShadowEvadePerWindow float64
	// Thresholds are the device TRH values the bars are computed at.
	// Empty means PaperThresholds() (1k/2k/4k/8k).
	Thresholds []int
}

// DefaultDefenseTimeConfig returns the calibrated Fig. 7(b) model.
func DefaultDefenseTimeConfig() DefenseTimeConfig {
	return DefenseTimeConfig{
		Timing:               dram.DDR4Timing(),
		CopyErrorProb:        0.10,
		TargetProb:           0.01,
		UnlockRatePerDay:     24,     // one legitimate unlock per hour
		ExposureAlignProb:    2.7e-5, // see field comment
		ShadowEvadePerWindow: 1.23e-10,
		Thresholds:           PaperThresholds(),
	}
}

// Validate checks the configuration.
func (c DefenseTimeConfig) Validate() error {
	if c.CopyErrorProb < 0 || c.CopyErrorProb > 1 {
		return fmt.Errorf("sim: CopyErrorProb must be in [0,1]")
	}
	if c.TargetProb <= 0 || c.TargetProb >= 1 {
		return fmt.Errorf("sim: TargetProb must be in (0,1)")
	}
	if c.UnlockRatePerDay <= 0 || c.ExposureAlignProb <= 0 || c.ShadowEvadePerWindow <= 0 {
		return fmt.Errorf("sim: rates must be positive")
	}
	if err := validateThresholds(c.Thresholds); err != nil {
		return err
	}
	return c.Timing.Validate()
}

// WindowsPerDay returns refresh windows per day under the configured
// timing (64ms windows -> 1.35e6 windows/day).
func (c DefenseTimeConfig) WindowsPerDay() float64 {
	return (24 * 3600) / c.Timing.TREFW.Seconds()
}

// SilentExposureProb returns the probability that one SWAP silently
// exposes the protected row: at least two of the three copies must err
// (the data stays in place while the redirect bookkeeping believes it
// moved; a single-copy error corrupts data but does not expose the row).
func SilentExposureProb(perCopy float64) float64 {
	e := perCopy
	return 3*e*e*(1-e) + e*e*e
}

// LockerDefenseDays returns how many days DRAM-Locker sustains the attack
// at device threshold trh before the attacker's cumulative success
// probability reaches TargetProb.
//
// Per-day success probability:
//
//	p/day = UnlockRate * P(silent exposure) * P(align) * min(1, 1000/trh)
//
// The last factor is the chance the attacker completes trh activations
// inside the fixed-size exposure window (~1000 activations fit), which is
// what makes higher thresholds *easier* to defend — the paper's Fig. 7(b)
// trend.
func LockerDefenseDays(cfg DefenseTimeConfig, trh int) float64 {
	pFit := 1000.0 / float64(trh)
	if pFit > 1 {
		pFit = 1
	}
	perDay := cfg.UnlockRatePerDay * SilentExposureProb(cfg.CopyErrorProb) *
		cfg.ExposureAlignProb * pFit
	return cfg.TargetProb / perDay
}

// ShadowDefenseDays returns SHADOW's sustained defense time at device
// threshold trh:
//
//	p/day = WindowsPerDay * ShadowEvadePerWindow * (1000/trh)
//
// Higher thresholds shrink the attacker's per-window evasion chance
// (fewer complete hammer rounds fit), so defense time grows linearly in
// trh — but from a far lower base than DRAM-Locker because every refresh
// window is an independent evasion opportunity.
func ShadowDefenseDays(cfg DefenseTimeConfig, trh int) float64 {
	perDay := cfg.WindowsPerDay() * cfg.ShadowEvadePerWindow * 1000 / float64(trh)
	return cfg.TargetProb / perDay
}

// Fig7bBar is one bar of the defense-time chart.
type Fig7bBar struct {
	Threshold  int
	ShadowDays float64
	LockerDays float64
}

// Fig7bBarAt computes the defense-time comparison at one device threshold
// — one shard of the Fig. 7(b) grid.
func Fig7bBarAt(cfg DefenseTimeConfig, trh int) (Fig7bBar, error) {
	if err := cfg.Validate(); err != nil {
		return Fig7bBar{}, err
	}
	if trh <= 0 {
		return Fig7bBar{}, fmt.Errorf("sim: trh must be positive, got %d", trh)
	}
	return Fig7bBar{
		Threshold:  trh,
		ShadowDays: ShadowDefenseDays(cfg, trh),
		LockerDays: LockerDefenseDays(cfg, trh),
	}, nil
}

// Fig7b computes the defense-time comparison at the configured thresholds.
func Fig7b(cfg DefenseTimeConfig) ([]Fig7bBar, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var out []Fig7bBar
	for _, trh := range thresholdsOrDefault(cfg.Thresholds) {
		bar, err := Fig7bBarAt(cfg, trh)
		if err != nil {
			return nil, err
		}
		out = append(out, bar)
	}
	return out, nil
}

// SwapErrorProbability re-exports the three-copy SWAP failure law so the
// Fig. 7 models and the RowClone engine cannot drift apart.
func SwapErrorProbability(perCopy float64) float64 {
	return rowclone.SwapErrorProb(perCopy)
}
