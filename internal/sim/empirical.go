package sim

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/defense"
	"repro/internal/dram"
	"repro/internal/rowhammer"
)

// EmpiricalPoint is one measured latency sample: unlike the closed-form
// model in fig7.go, these numbers come from executing the mechanisms — the
// lock-table denying real activations, SHADOW performing real shuffles —
// against the device model inside one refresh window.
type EmpiricalPoint struct {
	BFA     int
	Latency dram.Picoseconds
}

// EmpiricalConfig parameterises the measured Fig. 7(a) companion.
type EmpiricalConfig struct {
	Geometry dram.Geometry
	Timing   dram.Timing
	// ProtectedRows is the number of victim rows whose aggressors the
	// attacker rotates over.
	ProtectedRows int
	// ShadowGroup is the SHADOW protected-group size (matches
	// LatencyConfig.ProtectedRows in spirit but kept small so the
	// in-window execution stays fast).
	ShadowGroup int
	Seed        uint64
}

// DefaultEmpiricalConfig returns a measurement setup small enough to
// execute per point but structurally faithful.
func DefaultEmpiricalConfig() EmpiricalConfig {
	return EmpiricalConfig{
		Geometry:      dram.SmallGeometry(),
		Timing:        dram.DDR4Timing(),
		ProtectedRows: 8,
		ShadowGroup:   50,
		Seed:          0xe3p1,
	}
}

// EmpiricalShadow measures SHADOW's mitigation latency for an attack
// stream of nBFA activations rotating over the aggressors of the
// protected rows, at device threshold trh.
func EmpiricalShadow(cfg EmpiricalConfig, trh, nBFA int) (EmpiricalPoint, error) {
	dev, err := dram.NewDevice(cfg.Geometry, cfg.Timing)
	if err != nil {
		return EmpiricalPoint{}, err
	}
	hcfg := rowhammer.DefaultConfig()
	hcfg.TRH = trh
	eng, err := rowhammer.New(dev, hcfg)
	if err != nil {
		return EmpiricalPoint{}, err
	}
	shCfg := defense.DefaultShadowConfig(trh)
	shCfg.GroupSize = cfg.ShadowGroup
	sh, err := defense.NewShadow(eng, cfg.Geometry, shCfg)
	if err != nil {
		return EmpiricalPoint{}, err
	}
	aggressors := attackRows(cfg)
	var extra dram.Picoseconds
	for i := 0; i < nBFA; i++ {
		agg := aggressors[i%len(aggressors)]
		dec := sh.OnActivate(agg, false)
		extra += dec.ExtraLatency
		if !dec.Allow {
			continue
		}
		if _, err := dev.Activate(agg); err != nil {
			return EmpiricalPoint{}, err
		}
		if _, err := dev.Precharge(agg.Bank); err != nil {
			return EmpiricalPoint{}, err
		}
	}
	return EmpiricalPoint{BFA: nBFA, Latency: extra}, nil
}

// EmpiricalLocker measures DRAM-Locker's mitigation latency for the same
// attack stream: the aggressor rows are locked, every attempt costs one
// lock-table lookup, and the periodic re-lock cycle's swap traffic is
// charged from the controller's own accounting.
func EmpiricalLocker(cfg EmpiricalConfig, nBFA int) (EmpiricalPoint, error) {
	dev, err := dram.NewDevice(cfg.Geometry, cfg.Timing)
	if err != nil {
		return EmpiricalPoint{}, err
	}
	if _, err := rowhammer.New(dev, rowhammer.DefaultConfig()); err != nil {
		return EmpiricalPoint{}, err
	}
	ctl, err := controller.New(dev, controller.DefaultConfig())
	if err != nil {
		return EmpiricalPoint{}, err
	}
	aggressors := attackRows(cfg)
	for _, a := range aggressors {
		if err := ctl.LockRow(a); err != nil {
			return EmpiricalPoint{}, fmt.Errorf("sim: locking %v: %w", a, err)
		}
	}
	var extra dram.Picoseconds
	for i := 0; i < nBFA; i++ {
		_, lat, err := ctl.HammerAttempt(aggressors[i%len(aggressors)])
		if err != nil {
			return EmpiricalPoint{}, err
		}
		extra += lat
	}
	extra += ctl.Stats().SwapLatency
	return EmpiricalPoint{BFA: nBFA, Latency: extra}, nil
}

// attackRows builds the rotating aggressor set: the deduplicated neighbors
// of interleaved victim rows in bank 0 (stride-2 victims share aggressors).
func attackRows(cfg EmpiricalConfig) []dram.RowAddr {
	seen := make(map[int]bool)
	var out []dram.RowAddr
	for i := 0; i < cfg.ProtectedRows; i++ {
		victim := dram.RowAddr{Bank: 0, Row: 1 + 2*i}
		for _, n := range cfg.Geometry.Neighbors(victim, 1) {
			li := cfg.Geometry.LinearIndex(n)
			if !seen[li] {
				seen[li] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// EmpiricalComparison measures both mechanisms over a BFA sweep. The
// returned curves carry the same qualitative content as Fig. 7(a): SHADOW
// latency grows with attack intensity and shrinks with threshold,
// DRAM-Locker stays near the lookup floor.
type EmpiricalComparison struct {
	ShadowTRH map[int][]EmpiricalPoint
	Locker    []EmpiricalPoint
}

// Empirical runs the comparison for nBFA = step..max in steps.
func Empirical(cfg EmpiricalConfig, max, step int, thresholds []int) (*EmpiricalComparison, error) {
	if max <= 0 || step <= 0 {
		return nil, fmt.Errorf("sim: max and step must be positive")
	}
	out := &EmpiricalComparison{ShadowTRH: make(map[int][]EmpiricalPoint)}
	for _, trh := range thresholds {
		for n := step; n <= max; n += step {
			pt, err := EmpiricalShadow(cfg, trh, n)
			if err != nil {
				return nil, err
			}
			out.ShadowTRH[trh] = append(out.ShadowTRH[trh], pt)
		}
	}
	for n := step; n <= max; n += step {
		pt, err := EmpiricalLocker(cfg, n)
		if err != nil {
			return nil, err
		}
		out.Locker = append(out.Locker, pt)
	}
	return out, nil
}
