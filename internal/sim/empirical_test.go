package sim

import "testing"

func TestEmpiricalShadowGrowsWithIntensity(t *testing.T) {
	cfg := DefaultEmpiricalConfig()
	var prev EmpiricalPoint
	for _, n := range []int{500, 1000, 2000, 4000} {
		pt, err := EmpiricalShadow(cfg, 100, n)
		if err != nil {
			t.Fatal(err)
		}
		if pt.Latency < prev.Latency {
			t.Fatalf("measured latency fell at n=%d", n)
		}
		prev = pt
	}
	if prev.Latency == 0 {
		t.Fatal("SHADOW never paid any shuffle latency")
	}
}

func TestEmpiricalShadowSlopeInverseInThreshold(t *testing.T) {
	cfg := DefaultEmpiricalConfig()
	lo, err := EmpiricalShadow(cfg, 100, 4000)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := EmpiricalShadow(cfg, 400, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Latency <= hi.Latency {
		t.Fatalf("TRH=100 latency (%v) must exceed TRH=400 (%v)", lo.Latency, hi.Latency)
	}
}

func TestEmpiricalLockerBelowShadow(t *testing.T) {
	cfg := DefaultEmpiricalConfig()
	for _, n := range []int{1000, 4000} {
		dl, err := EmpiricalLocker(cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := EmpiricalShadow(cfg, 100, n)
		if err != nil {
			t.Fatal(err)
		}
		// The measured mechanisms must agree with the analytic model's
		// headline: the lock-table's lookup-and-deny is far cheaper than
		// SHADOW's shuffle traffic.
		if dl.Latency >= sh.Latency {
			t.Fatalf("n=%d: locker %v not below shadow %v", n, dl.Latency, sh.Latency)
		}
	}
}

func TestEmpiricalLockerIsLookupBound(t *testing.T) {
	cfg := DefaultEmpiricalConfig()
	pt, err := EmpiricalLocker(cfg, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// All attempts denied: latency = 2000 lookups, no swap traffic.
	want := 2000 * cfg.Timing.LockLookup
	if pt.Latency != want {
		t.Fatalf("latency %v, want pure lookup cost %v", pt.Latency, want)
	}
}

func TestEmpiricalComparison(t *testing.T) {
	cfg := DefaultEmpiricalConfig()
	cmp, err := Empirical(cfg, 2000, 1000, []int{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Locker) != 2 || len(cmp.ShadowTRH[100]) != 2 || len(cmp.ShadowTRH[200]) != 2 {
		t.Fatalf("unexpected curve sizes: %+v", cmp)
	}
	if _, err := Empirical(cfg, 0, 1, nil); err == nil {
		t.Fatal("zero max must fail")
	}
}
