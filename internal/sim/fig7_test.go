package sim

import (
	"math"
	"testing"
)

func TestShadowLatencyMonotoneInAttackIntensity(t *testing.T) {
	cfg := DefaultLatencyConfig()
	var prev LatencyPoint
	for n := 0; n <= 80000; n += 5000 {
		pt := ShadowLatency(cfg, 1000, n)
		if pt.Latency < prev.Latency {
			t.Fatalf("latency decreased at n=%d", n)
		}
		prev = pt
	}
}

func TestShadowSlopeInverseInThreshold(t *testing.T) {
	cfg := DefaultLatencyConfig()
	n := 8000 // below every ceiling
	l1 := ShadowLatency(cfg, 1000, n).Latency
	l8 := ShadowLatency(cfg, 8000, n).Latency
	if l1 <= l8 {
		t.Fatalf("SHADOW1000 (%v) must cost more than SHADOW8000 (%v)", l1, l8)
	}
	// The ratio should be roughly the threshold ratio (8x).
	ratio := float64(l1) / float64(l8)
	if ratio < 6 || ratio > 10 {
		t.Fatalf("slope ratio %.1f, want ~8", ratio)
	}
}

func TestShadowDefenseThresholdPlateaus(t *testing.T) {
	cfg := DefaultLatencyConfig()
	trh := 1000
	ceiling := cfg.ShadowCeilingFactor * trh
	below := ShadowLatency(cfg, trh, ceiling)
	above := ShadowLatency(cfg, trh, ceiling*2)
	if !above.Compromised {
		t.Fatal("beyond the ceiling SHADOW must be compromised")
	}
	if below.Compromised {
		t.Fatal("at the ceiling SHADOW is not yet compromised")
	}
	if above.Latency != below.Latency {
		t.Fatal("past the ceiling, delay escalation must halt (plateau)")
	}
}

func TestLockerLatencyBelowShadowAndUnbounded(t *testing.T) {
	cfg := DefaultLatencyConfig()
	for n := 10000; n <= 80000; n += 10000 {
		dl := LockerLatency(cfg, n)
		if dl.Compromised {
			t.Fatal("DRAM-Locker has no defense threshold")
		}
		for _, trh := range []int{1000, 2000, 4000, 8000} {
			sh := ShadowLatency(cfg, trh, n)
			if dl.Latency >= sh.Latency {
				t.Fatalf("n=%d trh=%d: DL latency %v not below SHADOW %v",
					n, trh, dl.Latency, sh.Latency)
			}
		}
	}
}

func TestFig7aCurveSet(t *testing.T) {
	curves, err := Fig7a(DefaultLatencyConfig(), 80000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 5 {
		t.Fatalf("curves = %d, want 4 SHADOW + 1 DL", len(curves))
	}
	labels := map[string]bool{}
	for _, c := range curves {
		labels[c.Label] = true
		if len(c.Points) != 5 {
			t.Fatalf("%s has %d points", c.Label, len(c.Points))
		}
		if c.Points[0].Latency != 0 {
			t.Fatalf("%s latency at 0 BFA = %v", c.Label, c.Points[0].Latency)
		}
	}
	for _, want := range []string{"SHADOW1000", "SHADOW2000", "SHADOW4000", "SHADOW8000", "DL"} {
		if !labels[want] {
			t.Fatalf("missing curve %s", want)
		}
	}
}

func TestFig7ThresholdsConfigurable(t *testing.T) {
	cfg := DefaultLatencyConfig()
	cfg.Thresholds = []int{500, 3000}
	curves, err := Fig7a(cfg, 80000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 3 {
		t.Fatalf("curves = %d, want 2 SHADOW + 1 DL", len(curves))
	}
	if curves[0].Label != "SHADOW500" || curves[2].Label != "DL" {
		t.Fatalf("labels: %s, %s", curves[0].Label, curves[2].Label)
	}
	if curves[2].TRH != 500 {
		t.Fatalf("DL must use the smallest threshold, got %d", curves[2].TRH)
	}

	// An unset field keeps the pre-Thresholds behavior (paper sweep).
	cfg.Thresholds = nil
	curves, err = Fig7a(cfg, 80000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 5 {
		t.Fatalf("default sweep gave %d curves", len(curves))
	}

	cfg.Thresholds = []int{2000, 1000} // not increasing
	if _, err := Fig7a(cfg, 80000, 20000); err == nil {
		t.Fatal("decreasing thresholds must fail")
	}

	dcfg := DefaultDefenseTimeConfig()
	dcfg.Thresholds = []int{4000}
	bars, err := Fig7b(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 1 || bars[0].Threshold != 4000 {
		t.Fatalf("bars: %+v", bars)
	}
}

func TestFig7aValidation(t *testing.T) {
	if _, err := Fig7a(DefaultLatencyConfig(), 0, 10); err == nil {
		t.Fatal("zero max must fail")
	}
	bad := DefaultLatencyConfig()
	bad.ProtectedRows = 0
	if _, err := Fig7a(bad, 100, 10); err == nil {
		t.Fatal("bad config must fail")
	}
}

func TestLockerDefenseDaysCalibration(t *testing.T) {
	cfg := DefaultDefenseTimeConfig()
	// The paper's headline numbers: >500 days at TRH=1k, >4000 at 8k.
	if d := LockerDefenseDays(cfg, 1000); d < 500 || d > 700 {
		t.Fatalf("DL @1k = %.1f days, want >500 (calibrated ~550)", d)
	}
	if d := LockerDefenseDays(cfg, 8000); d < 4000 {
		t.Fatalf("DL @8k = %.1f days, want >4000", d)
	}
}

func TestDefenseDaysGrowWithThreshold(t *testing.T) {
	cfg := DefaultDefenseTimeConfig()
	var prevDL, prevSh float64
	for _, trh := range []int{1000, 2000, 4000, 8000} {
		dl := LockerDefenseDays(cfg, trh)
		sh := ShadowDefenseDays(cfg, trh)
		if dl <= prevDL || sh <= prevSh {
			t.Fatalf("defense time must grow with threshold")
		}
		if dl <= sh {
			t.Fatalf("trh=%d: DL (%.1f) must outlast SHADOW (%.1f)", trh, dl, sh)
		}
		prevDL, prevSh = dl, sh
	}
}

func TestFig7bBars(t *testing.T) {
	bars, err := Fig7b(DefaultDefenseTimeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 4 {
		t.Fatalf("bars = %d", len(bars))
	}
	for i, trh := range []int{1000, 2000, 4000, 8000} {
		if bars[i].Threshold != trh {
			t.Fatalf("bar %d threshold %d", i, bars[i].Threshold)
		}
	}
}

func TestSilentExposureProb(t *testing.T) {
	if p := SilentExposureProb(0); p != 0 {
		t.Fatalf("p(0) = %g", p)
	}
	if p := SilentExposureProb(1); p != 1 {
		t.Fatalf("p(1) = %g", p)
	}
	// e=0.1: 3*0.01*0.9 + 0.001 = 0.028.
	if p := SilentExposureProb(0.1); math.Abs(p-0.028) > 1e-12 {
		t.Fatalf("p(0.1) = %g, want 0.028", p)
	}
}

func TestSwapErrorProbabilityReExport(t *testing.T) {
	if got := SwapErrorProbability(0.1); math.Abs(got-(1-0.9*0.9*0.9)) > 1e-12 {
		t.Fatalf("SwapErrorProbability(0.1) = %g", got)
	}
}

func TestDefenseTimeValidation(t *testing.T) {
	bad := DefaultDefenseTimeConfig()
	bad.TargetProb = 0
	if _, err := Fig7b(bad); err == nil {
		t.Fatal("zero target probability must fail")
	}
	bad = DefaultDefenseTimeConfig()
	bad.CopyErrorProb = 2
	if _, err := Fig7b(bad); err == nil {
		t.Fatal("invalid copy error probability must fail")
	}
}

func TestWindowsPerDay(t *testing.T) {
	cfg := DefaultDefenseTimeConfig()
	// 64ms windows: 86400/0.064 = 1.35e6.
	got := cfg.WindowsPerDay()
	if math.Abs(got-1.35e6) > 1e4 {
		t.Fatalf("windows/day = %g", got)
	}
}
