package rowclone

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dram"
)

func newRig(t *testing.T, cfg Config) (*dram.Device, *Engine) {
	t.Helper()
	dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev, eng
}

func TestCopyPreservesData(t *testing.T) {
	dev, eng := newRig(t, DefaultConfig())
	src := dram.RowAddr{Bank: 0, Row: 3}
	dst := dram.RowAddr{Bank: 0, Row: 30}
	dev.PokeRow(src, []byte("rowclone-fpm"))
	erred, lat, err := eng.Copy(src, dst)
	if err != nil || erred {
		t.Fatalf("copy: erred=%v err=%v", erred, err)
	}
	if lat != dev.Timing().RowCloneFPM {
		t.Fatalf("latency %v, want %v", lat, dev.Timing().RowCloneFPM)
	}
	got, _ := dev.PeekRow(dst)
	if string(got[:12]) != "rowclone-fpm" {
		t.Fatalf("dst = %q", got[:12])
	}
}

func TestCopyCrossSubarrayRejected(t *testing.T) {
	_, eng := newRig(t, DefaultConfig())
	_, _, err := eng.Copy(dram.RowAddr{Bank: 0, Row: 3}, dram.RowAddr{Bank: 0, Row: 100})
	if !errors.Is(err, ErrCrossSubarray) {
		t.Fatalf("err = %v, want ErrCrossSubarray", err)
	}
}

func TestSwapExchangesRows(t *testing.T) {
	dev, eng := newRig(t, DefaultConfig())
	a := dram.RowAddr{Bank: 0, Row: 3}
	b := dram.RowAddr{Bank: 0, Row: 7}
	buf := dram.RowAddr{Bank: 0, Row: 63}
	dev.PokeRow(a, []byte("AAAA"))
	dev.PokeRow(b, []byte("BBBB"))
	res, err := eng.Swap(a, b, buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Erred || res.CopyErrors != 0 {
		t.Fatalf("unexpected errors: %+v", res)
	}
	if res.Latency != 3*dev.Timing().RowCloneFPM {
		t.Fatalf("swap latency %v, want 3 copies", res.Latency)
	}
	ra, _ := dev.PeekRow(a)
	rb, _ := dev.PeekRow(b)
	if string(ra[:4]) != "BBBB" || string(rb[:4]) != "AAAA" {
		t.Fatalf("swap failed: a=%q b=%q", ra[:4], rb[:4])
	}
}

// TestSwapIsInvolution: swapping twice restores the original contents for
// arbitrary row data (property-based).
func TestSwapIsInvolution(t *testing.T) {
	f := func(dataA, dataB []byte) bool {
		dev, eng := newRig(t, DefaultConfig())
		a := dram.RowAddr{Bank: 1, Row: 5}
		b := dram.RowAddr{Bank: 1, Row: 9}
		buf := dram.RowAddr{Bank: 1, Row: 60}
		if len(dataA) > dev.Geometry().RowBytes {
			dataA = dataA[:dev.Geometry().RowBytes]
		}
		if len(dataB) > dev.Geometry().RowBytes {
			dataB = dataB[:dev.Geometry().RowBytes]
		}
		dev.PokeRow(a, dataA)
		dev.PokeRow(b, dataB)
		origA, _ := dev.PeekRow(a)
		origB, _ := dev.PeekRow(b)
		if _, err := eng.Swap(a, b, buf); err != nil {
			return false
		}
		if _, err := eng.Swap(a, b, buf); err != nil {
			return false
		}
		nowA, _ := dev.PeekRow(a)
		nowB, _ := dev.PeekRow(b)
		return string(nowA) == string(origA) && string(nowB) == string(origB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSwapRowsMustBeDistinct(t *testing.T) {
	_, eng := newRig(t, DefaultConfig())
	a := dram.RowAddr{Bank: 0, Row: 3}
	buf := dram.RowAddr{Bank: 0, Row: 63}
	if _, err := eng.Swap(a, a, buf); err == nil {
		t.Fatal("swap of a row with itself must fail")
	}
	if _, err := eng.Swap(a, buf, buf); err == nil {
		t.Fatal("buffer overlapping an operand must fail")
	}
}

func TestErrorInjectionRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CopyErrorProb = 0.2
	dev, eng := newRig(t, cfg)
	src := dram.RowAddr{Bank: 0, Row: 3}
	dst := dram.RowAddr{Bank: 0, Row: 30}
	dev.PokeRow(src, []byte{0xAA})
	const n = 5000
	errs := 0
	for i := 0; i < n; i++ {
		erred, _, err := eng.Copy(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if erred {
			errs++
		}
	}
	rate := float64(errs) / n
	if math.Abs(rate-0.2) > 0.03 {
		t.Fatalf("error rate %.3f, want ~0.2", rate)
	}
	st := eng.Stats()
	if st.Copies != n || st.CopyErrors != int64(errs) {
		t.Fatalf("stats mismatch: %+v", st)
	}
}

func TestErroneousCopyCorruptsBits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CopyErrorProb = 1.0
	cfg.ErrorBits = 1
	dev, eng := newRig(t, cfg)
	src := dram.RowAddr{Bank: 0, Row: 3}
	dst := dram.RowAddr{Bank: 0, Row: 30}
	dev.PokeRow(src, make([]byte, dev.Geometry().RowBytes)) // all zeros
	erred, _, err := eng.Copy(src, dst)
	if err != nil || !erred {
		t.Fatalf("expected forced error, got erred=%v err=%v", erred, err)
	}
	got, _ := dev.PeekRow(dst)
	ones := 0
	for _, b := range got {
		for ; b != 0; b &= b - 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Fatalf("corrupted bits = %d, want exactly 1", ones)
	}
}

func TestSwapErrorAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CopyErrorProb = 1.0
	dev, eng := newRig(t, cfg)
	a := dram.RowAddr{Bank: 0, Row: 3}
	b := dram.RowAddr{Bank: 0, Row: 7}
	buf := dram.RowAddr{Bank: 0, Row: 63}
	dev.PokeRow(a, []byte{1})
	res, err := eng.Swap(a, b, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Erred || res.CopyErrors != 3 {
		t.Fatalf("forced swap errors: %+v", res)
	}
	if eng.Stats().SwapErrors != 1 {
		t.Fatalf("swap error stat = %d", eng.Stats().SwapErrors)
	}
}

func TestSwapErrorProbFormula(t *testing.T) {
	cases := map[float64]float64{
		0:    0,
		1:    1,
		0.1:  1 - 0.9*0.9*0.9,
		0.02: 1 - 0.98*0.98*0.98,
	}
	for p, want := range cases {
		if got := SwapErrorProb(p); math.Abs(got-want) > 1e-12 {
			t.Errorf("SwapErrorProb(%g) = %g, want %g", p, got, want)
		}
	}
}

func TestSetCopyErrorProbValidation(t *testing.T) {
	_, eng := newRig(t, DefaultConfig())
	if err := eng.SetCopyErrorProb(0.5); err != nil {
		t.Fatal(err)
	}
	if eng.Config().CopyErrorProb != 0.5 {
		t.Fatal("probability not updated")
	}
	if err := eng.SetCopyErrorProb(1.5); err == nil {
		t.Fatal("out-of-range probability must be rejected")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := Config{CopyErrorProb: -0.1, ErrorBits: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative probability must fail")
	}
	bad = Config{CopyErrorProb: 0.1, ErrorBits: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative ErrorBits must fail")
	}
}
