// Package rowclone implements the in-DRAM bulk copy (RowClone FPM, Seshadri
// et al. MICRO'13) and the DRAM-Locker SWAP operation built from it: three
// row copies through a reserved buffer row that exchange a locked row's data
// with a free unlocked row (paper Fig. 4(b)).
//
// SWAP is the paper's key primitive, so the package also carries the
// process-variation failure model from §IV.D: each row copy independently
// fails with a configurable probability (0.14% at ±10% variation, 9.6% at
// ±20%); a failed copy leaves the destination row with sporadic bit errors,
// exactly as charge-sharing failures in the array would.
package rowclone

import (
	"errors"
	"fmt"

	"repro/internal/dram"
	"repro/internal/stats"
)

// ErrCrossSubarray is returned when a copy or swap spans subarrays, which
// RowClone's fast parallel mode cannot do.
var ErrCrossSubarray = errors.New("rowclone: rows not in the same subarray")

// Config parameterises the copy engine.
type Config struct {
	// CopyErrorProb is the probability that a single row copy is erroneous
	// (paper §IV.D: 0 at nominal, 0.0014 at ±10%, 0.096 at ±20% variation).
	CopyErrorProb float64
	// ErrorBits is how many bit positions are corrupted by an erroneous
	// copy. The Monte-Carlo study shows failures are isolated cells, so
	// the default is 1.
	ErrorBits int
	// Seed drives error injection.
	Seed uint64
}

// DefaultConfig returns an error-free engine (nominal process corner).
func DefaultConfig() Config {
	return Config{CopyErrorProb: 0, ErrorBits: 1, Seed: 0xc10e}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.CopyErrorProb < 0 || c.CopyErrorProb > 1 {
		return fmt.Errorf("rowclone: CopyErrorProb must be in [0,1], got %g", c.CopyErrorProb)
	}
	if c.ErrorBits < 0 {
		return fmt.Errorf("rowclone: ErrorBits must be >= 0, got %d", c.ErrorBits)
	}
	return nil
}

// Stats counts copy operations and injected failures.
type Stats struct {
	Copies      int64
	CopyErrors  int64
	Swaps       int64
	SwapErrors  int64 // swaps in which at least one copy erred
	TotalTimePs dram.Picoseconds
}

// Engine performs RowClone copies and SWAPs on a device.
type Engine struct {
	dev   *dram.Device
	cfg   Config
	rng   *stats.RNG
	stats Stats
}

// New builds an engine over the device.
func New(dev *dram.Device, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{dev: dev, cfg: cfg, rng: stats.NewRNG(cfg.Seed)}, nil
}

// Stats returns a copy of the operation counters.
func (e *Engine) Stats() Stats { return e.stats }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// SetCopyErrorProb adjusts the per-copy error probability at run time
// (experiments sweep the process corner).
func (e *Engine) SetCopyErrorProb(p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("rowclone: CopyErrorProb must be in [0,1], got %g", p)
	}
	e.cfg.CopyErrorProb = p
	return nil
}

// Copy performs one RowClone FPM copy src -> dst, injecting an error with
// the configured probability. It reports whether the copy was erroneous
// and the latency spent.
func (e *Engine) Copy(src, dst dram.RowAddr) (erred bool, lat dram.Picoseconds, err error) {
	geom := e.dev.Geometry()
	if !geom.SameSubarray(src, dst) {
		return false, 0, fmt.Errorf("%w: %v -> %v", ErrCrossSubarray, src, dst)
	}
	lat, err = e.dev.RowCloneCopy(src, dst)
	if err != nil {
		return false, lat, err
	}
	e.stats.Copies++
	e.stats.TotalTimePs += lat
	if e.rng.Bernoulli(e.cfg.CopyErrorProb) {
		e.stats.CopyErrors++
		for i := 0; i < e.cfg.ErrorBits; i++ {
			bit := e.rng.Intn(geom.RowBytes * 8)
			if ferr := e.dev.FlipBit(dst, bit); ferr != nil {
				return true, lat, ferr
			}
		}
		return true, lat, nil
	}
	return false, lat, nil
}

// SwapResult reports the outcome of one SWAP operation.
type SwapResult struct {
	// Erred is true when any of the three copies was erroneous.
	Erred bool
	// CopyErrors is how many of the three copies erred.
	CopyErrors int
	// Latency is the total SWAP latency (three RowClone copies).
	Latency dram.Picoseconds
}

// Swap exchanges the contents of rows a and b through the buffer row
// (paper Fig. 4(b)): (1) a -> buffer, (2) b -> a, (3) buffer -> b.
// All three rows must share a subarray.
func (e *Engine) Swap(a, b, buffer dram.RowAddr) (SwapResult, error) {
	geom := e.dev.Geometry()
	if !geom.SameSubarray(a, b) || !geom.SameSubarray(a, buffer) {
		return SwapResult{}, fmt.Errorf("%w: swap %v <-> %v via %v", ErrCrossSubarray, a, b, buffer)
	}
	if a == b || a == buffer || b == buffer {
		return SwapResult{}, fmt.Errorf("rowclone: swap rows must be distinct: %v, %v, %v", a, b, buffer)
	}
	var res SwapResult
	steps := [][2]dram.RowAddr{{a, buffer}, {b, a}, {buffer, b}}
	for _, s := range steps {
		erred, lat, err := e.Copy(s[0], s[1])
		if err != nil {
			return res, err
		}
		res.Latency += lat
		if erred {
			res.CopyErrors++
		}
	}
	res.Erred = res.CopyErrors > 0
	e.stats.Swaps++
	if res.Erred {
		e.stats.SwapErrors++
	}
	return res, nil
}

// SwapErrorProb returns the probability that a SWAP (three copies) has at
// least one erroneous copy under per-copy error probability p.
func SwapErrorProb(p float64) float64 {
	q := 1 - p
	return 1 - q*q*q
}
