package queue

import (
	"testing"
	"time"

	"repro/internal/api"
)

// wantQueueFull asserts err is the typed retryable admission rejection.
func wantQueueFull(t *testing.T, err error) {
	t.Helper()
	ae, ok := api.AsError(err)
	if !ok || ae.Code != api.CodeQueueFull {
		t.Fatalf("want queue_full, got %v", err)
	}
	if !ae.Retryable {
		t.Fatal("queue_full must be retryable (the client backs off and resubmits)")
	}
}

// TestAdmissionQueueDepthLimit: the limit gates pending depth only —
// leasing drains admission headroom back, and lease-expiry requeues are
// never rejected even when they push the queue past the limit.
func TestAdmissionQueueDepthLimit(t *testing.T) {
	clk := newClock()
	b := newBroker(t, Config{MaxQueued: 2}, clk)

	submit(t, b, "", 0, spec("a", 0), spec("a", 1))
	_, err := b.Submit(api.JobSubmit{Proto: api.Version, Tasks: []api.TaskSpec{spec("b", 0)}})
	wantQueueFull(t, err)
	if got := b.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}

	// Leased tasks do not count against the limit.
	w := hello(t, b, "w1")
	if got := len(poll(t, b, w, 2)); got != 2 {
		t.Fatalf("want 2 leases, got %d", got)
	}
	submit(t, b, "", 0, spec("c", 0), spec("c", 1))

	// Expiry requeues the two leased tasks: pending is now 4, over the
	// limit — requeued work was already admitted and must never bounce.
	clk.advance(DefaultLeaseTTL + 1)
	if st := b.Stats(); st.Pending != 4 {
		t.Fatalf("pending after requeue = %d, want 4", st.Pending)
	}
	// But new submissions see the full queue.
	_, err = b.Submit(api.JobSubmit{Proto: api.Version, Tasks: []api.TaskSpec{spec("d", 0)}})
	wantQueueFull(t, err)
}

// TestAdmissionPerTenantOverride: -max-queued-tenant semantics — an
// override replaces the global limit, and an override of 0 lifts it.
func TestAdmissionPerTenantOverride(t *testing.T) {
	b := newBroker(t, Config{
		MaxQueued:       1,
		MaxQueuedTenant: map[string]int{"bulk": 3, "free": 0},
	}, newClock())

	submit(t, b, "", 0, spec("a", 0))
	_, err := b.Submit(api.JobSubmit{Proto: api.Version, Tasks: []api.TaskSpec{spec("a", 1)}})
	wantQueueFull(t, err)

	submit(t, b, "bulk", 0, spec("b", 0), spec("b", 1), spec("b", 2))
	_, err = b.Submit(api.JobSubmit{Proto: api.Version, Tenant: "bulk", Tasks: []api.TaskSpec{spec("b", 3)}})
	wantQueueFull(t, err)

	for i := 0; i < 5; i++ {
		submit(t, b, "free", 0, spec("f", i))
	}
}

// TestSubmitBatchPerJobOutcomes: one POST, independent admissions — a
// full tenant fails only its own jobs, and accepted ids are usable.
func TestSubmitBatchPerJobOutcomes(t *testing.T) {
	b := newBroker(t, Config{MaxQueuedTenant: map[string]int{"capped": 1}}, newClock())
	rep, err := b.SubmitBatch(api.JobSubmitBatch{Proto: api.Version, Jobs: []api.JobSubmit{
		{Proto: api.Version, Tenant: "capped", Tasks: []api.TaskSpec{spec("a", 0)}},
		{Proto: api.Version, Tenant: "capped", Tasks: []api.TaskSpec{spec("b", 0)}},
		{Proto: api.Version, Tasks: []api.TaskSpec{spec("c", 0)}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 3 {
		t.Fatalf("batch answered %d jobs, want 3", len(rep.Jobs))
	}
	if rep.Jobs[0].ID == "" || rep.Jobs[0].Err != nil {
		t.Fatalf("job 0 should be admitted: %+v", rep.Jobs[0])
	}
	if rep.Jobs[1].Err == nil || rep.Jobs[1].Err.Code != api.CodeQueueFull {
		t.Fatalf("job 1 should bounce off the capped tenant: %+v", rep.Jobs[1])
	}
	if rep.Jobs[2].ID == "" || rep.Jobs[2].Err != nil {
		t.Fatalf("job 2 (other tenant) should be admitted: %+v", rep.Jobs[2])
	}
	for _, id := range []string{rep.Jobs[0].ID, rep.Jobs[2].ID} {
		if st, err := b.Status(id); err != nil || st.State != api.JobQueued {
			t.Fatalf("accepted batch job %s: %v %v", id, st, err)
		}
	}
	if got := b.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
}

// TestSubmitBatchValidatesEnvelope: the envelope (proto, non-empty,
// per-job shapes) fails as a whole — per-job errors are reserved for
// admission, where retry makes sense.
func TestSubmitBatchValidatesEnvelope(t *testing.T) {
	b := newBroker(t, Config{}, newClock())
	if _, err := b.SubmitBatch(api.JobSubmitBatch{Proto: "dlexec0"}); err == nil {
		t.Fatal("foreign proto must be rejected")
	}
	if _, err := b.SubmitBatch(api.JobSubmitBatch{Proto: api.Version}); err == nil {
		t.Fatal("empty batch must be rejected")
	}
	_, err := b.SubmitBatch(api.JobSubmitBatch{Proto: api.Version, Jobs: []api.JobSubmit{
		{Proto: api.Version, Tasks: []api.TaskSpec{spec("ok", 0)}},
		{Proto: api.Version}, // no tasks
	}})
	ae, ok := api.AsError(err)
	if !ok || ae.Code != api.CodeBadRequest {
		t.Fatalf("malformed job must fail the envelope typed: %v", err)
	}
	if st := b.Stats(); st.Pending != 0 {
		t.Fatalf("a rejected envelope must admit nothing, pending = %d", st.Pending)
	}
}

// TestMetricsSnapshot covers the /v2/metrics payload: queue gauges,
// lifetime counters, and per-tenant depth/age (driven by the fake
// clock, so ages are exact).
func TestMetricsSnapshot(t *testing.T) {
	clk := newClock()
	b := newBroker(t, Config{Weights: map[string]int{"ci": 2}, MaxQueued: 10}, clk)
	submit(t, b, "ci", 0, spec("a", 0), spec("a", 1))
	clk.advance(3 * time.Second)
	submit(t, b, "adhoc", 0, spec("b", 0))

	m := b.Metrics()
	if m.Proto != api.Version {
		t.Fatalf("metrics proto = %q", m.Proto)
	}
	if m.Pending != 3 || m.Workers != 0 || m.Jobs != 2 {
		t.Fatalf("gauges = pending %d workers %d jobs %d, want 3/0/2", m.Pending, m.Workers, m.Jobs)
	}
	if m.Submitted != 3 || m.Completed != 0 {
		t.Fatalf("counters = submitted %d completed %d, want 3/0", m.Submitted, m.Completed)
	}
	if len(m.Tenants) != 2 || m.Tenants[0].Tenant != "adhoc" || m.Tenants[1].Tenant != "ci" {
		t.Fatalf("tenants must be sorted by name: %+v", m.Tenants)
	}
	ci := m.Tenants[1]
	if ci.Weight != 2 || ci.MaxQueued != 10 || ci.Pending != 2 {
		t.Fatalf("ci tenant = %+v, want weight 2, limit 10, 2 pending", ci)
	}
	if want := (3 * time.Second).Nanoseconds(); ci.OldestAgeNS != want {
		t.Fatalf("ci oldest age = %dns, want %d (enqueued 3s before the snapshot)", ci.OldestAgeNS, want)
	}
	if m.Tenants[0].OldestAgeNS != 0 {
		t.Fatalf("adhoc just enqueued, oldest age = %dns", m.Tenants[0].OldestAgeNS)
	}

	// Drain the queue and snapshot again: gauges return to zero while
	// the lifetime counters keep counting.
	w := hello(t, b, "w1")
	for _, l := range poll(t, b, w, 4) {
		done(t, b, w, l, "r")
	}
	m = b.Metrics()
	if m.Pending != 0 || m.Leased != 0 || m.Workers != 1 {
		t.Fatalf("drained gauges = pending %d leased %d workers %d", m.Pending, m.Leased, m.Workers)
	}
	if m.Submitted != 3 || m.Completed != 3 {
		t.Fatalf("drained counters = submitted %d completed %d, want 3/3", m.Submitted, m.Completed)
	}
}
