package queue

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
)

// fakeClock is the injected broker clock; all expiry in these tests is
// driven by advancing it — no sleeps anywhere.
type fakeClock struct{ t time.Time }

func newClock() *fakeClock                   { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newBroker(t *testing.T, cfg Config, clk *fakeClock) *Broker {
	t.Helper()
	cfg.Now = clk.now
	return New(cfg)
}

func spec(job string, shard int) api.TaskSpec {
	return api.TaskSpec{Proto: api.Version, Job: job, Shard: shard, Seed: 7, Key: job + "@hash"}
}

func submit(t *testing.T, b *Broker, tenant string, prio int, specs ...api.TaskSpec) string {
	t.Helper()
	rep, err := b.Submit(api.JobSubmit{Proto: api.Version, Tenant: tenant, Priority: prio, Tasks: specs})
	if err != nil {
		t.Fatal(err)
	}
	return rep.ID
}

func hello(t *testing.T, b *Broker, name string) string {
	t.Helper()
	rep, err := b.Hello(api.WorkerHello{Proto: api.Version, Name: name, Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	return rep.WorkerID
}

func poll(t *testing.T, b *Broker, worker string, max int) []api.Lease {
	t.Helper()
	rep, err := b.Poll(context.Background(), api.PollRequest{Proto: api.Version, WorkerID: worker, Max: max})
	if err != nil {
		t.Fatal(err)
	}
	return rep.Leases
}

func done(t *testing.T, b *Broker, worker string, l api.Lease, text string) api.DoneReply {
	t.Helper()
	rep, err := b.Done(api.TaskDone{
		Proto: api.Version, WorkerID: worker, LeaseID: l.ID,
		Result: resultFor(l.Task, text),
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// resultFor builds the deterministic result of a task: same task, same
// bytes, whoever computes it.
func resultFor(ts api.TaskSpec, text string) api.TaskResult {
	data, _ := json.Marshal(map[string]any{"job": ts.Job, "shard": ts.Shard, "seed": ts.Seed})
	return api.TaskResult{
		Proto: api.Version, Job: ts.Job, Shard: ts.Shard, Key: ts.Key,
		Text: text, Data: data, DurationNS: 1,
	}
}

func TestSubmitValidates(t *testing.T) {
	b := newBroker(t, Config{}, newClock())
	if _, err := b.Submit(api.JobSubmit{Proto: "dlexec0", Tasks: []api.TaskSpec{spec("j", 0)}}); err == nil {
		t.Fatal("foreign proto must be rejected")
	}
	if _, err := b.Submit(api.JobSubmit{Proto: api.Version}); err == nil {
		t.Fatal("empty task list must be rejected")
	}
	_, err := b.Submit(api.JobSubmit{Proto: api.Version, Tasks: []api.TaskSpec{{Proto: api.Version}}})
	ae, ok := api.AsError(err)
	if !ok || ae.Code != api.CodeBadRequest || ae.Retryable {
		t.Fatalf("invalid task must fail typed and non-retryable: %v", err)
	}
}

func TestHelloRejectsForeignProtoAtRegistration(t *testing.T) {
	// The mixed-fleet upgrade gate: an incompatible worker is refused at
	// hello, before it can ever hold a lease.
	b := newBroker(t, Config{}, newClock())
	_, err := b.Hello(api.WorkerHello{Proto: "dlexec1", Name: "old"})
	ae, ok := api.AsError(err)
	if !ok || ae.Code != api.CodeProtoMismatch {
		t.Fatalf("want proto_mismatch at registration, got %v", err)
	}
}

// TestSingleJobLifecycle walks submit -> poll -> done -> status.
func TestSingleJobLifecycle(t *testing.T) {
	b := newBroker(t, Config{}, newClock())
	id := submit(t, b, "", 0, spec("tiny/mc", 0), spec("tiny/mc", 1))
	w := hello(t, b, "w1")

	st, err := b.Status(id)
	if err != nil || st.State != api.JobQueued || st.Total != 2 {
		t.Fatalf("fresh status: %+v (%v)", st, err)
	}

	leases := poll(t, b, w, 8)
	if len(leases) != 2 {
		t.Fatalf("leases = %d, want 2", len(leases))
	}
	if leases[0].Task.Shard != 0 || leases[1].Task.Shard != 1 {
		t.Fatalf("dispatch out of submission order: %+v", leases)
	}
	if st, _ = b.Status(id); st.State != api.JobRunning {
		t.Fatalf("leased status: %+v", st)
	}

	for _, l := range leases {
		if rep := done(t, b, w, l, "ok"); !rep.Accepted || rep.Duplicate {
			t.Fatalf("done reply %+v", rep)
		}
	}
	st, _ = b.Status(id)
	if st.State != api.JobDone || st.Done != 2 || st.Failed != 0 || len(st.Results) != 2 {
		t.Fatalf("final status: %+v", st)
	}
	if st.Results[1].Shard != 1 {
		t.Fatal("results must be indexed like the submitted tasks")
	}
}

// TestWeightedTenantFairness is the contention test: three tenants keep
// the queue saturated, and the dispatch schedule must honor the
// configured weights exactly (the stride scheduler is deterministic).
func TestWeightedTenantFairness(t *testing.T) {
	b := newBroker(t, Config{Weights: map[string]int{"gold": 2}}, newClock())
	const perTenant = 24
	for _, tenant := range []string{"alice", "bob", "gold"} {
		for i := 0; i < perTenant; i++ {
			submit(t, b, tenant, 0, spec(fmt.Sprintf("%s/job%d", tenant, i), api.MonolithShard))
		}
	}
	w := hello(t, b, "w1")

	counts := map[string]int{}
	for i := 0; i < 32; i++ {
		leases := poll(t, b, w, 1)
		if len(leases) != 1 {
			t.Fatalf("dispatch %d: got %d leases", i, len(leases))
		}
		tenant := strings.SplitN(leases[0].Task.Job, "/", 2)[0]
		counts[tenant]++
		done(t, b, w, leases[0], "ok")
	}
	// Weight 1:1:2 over 32 dispatches with everyone backlogged → 8:8:16.
	if counts["alice"] != 8 || counts["bob"] != 8 || counts["gold"] != 16 {
		t.Fatalf("weighted share violated: %v", counts)
	}
}

// TestPriorityOrdersWithinTenantOnly: priority reorders one tenant's
// queue but must not let a high-priority tenant starve the others.
func TestPriorityOrdersWithinTenantOnly(t *testing.T) {
	b := newBroker(t, Config{}, newClock())
	submit(t, b, "a", 0, spec("a/low", api.MonolithShard))
	submit(t, b, "a", 5, spec("a/high", api.MonolithShard))
	submit(t, b, "b", 0, spec("b/only", api.MonolithShard))
	w := hello(t, b, "w1")

	var order []string
	for i := 0; i < 3; i++ {
		l := poll(t, b, w, 1)[0]
		order = append(order, l.Task.Job)
		done(t, b, w, l, "ok")
	}
	// Tenant a dispatches its priority-5 job first; tenant b is
	// interleaved by fairness despite priority 0.
	want := []string{"a/high", "b/only", "a/low"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

// TestLeaseExpiryRequeues: an unrenewed lease expires at TTL and the
// task goes back to the queue; the late result from the original holder
// still wins if it lands before the re-dispatch finishes.
func TestLeaseExpiryRequeues(t *testing.T) {
	clk := newClock()
	b := newBroker(t, Config{LeaseTTL: time.Minute}, clk)
	id := submit(t, b, "", 0, spec("tiny/mc", 0))
	w1 := hello(t, b, "w1")
	w2 := hello(t, b, "w2")

	l1 := poll(t, b, w1, 1)
	if len(l1) != 1 {
		t.Fatal("w1 got no lease")
	}
	// Within the TTL nothing requeues: w2 sees an empty queue.
	clk.advance(30 * time.Second)
	if ls := poll(t, b, w2, 1); len(ls) != 0 {
		t.Fatalf("task requeued before TTL: %+v", ls)
	}
	// Past the TTL the task is back; w2 leases it.
	clk.advance(31 * time.Second)
	l2 := poll(t, b, w2, 1)
	if len(l2) != 1 || l2[0].Task.Job != "tiny/mc" {
		t.Fatalf("expired lease did not requeue: %+v", l2)
	}
	if s := b.Stats(); s.Requeues != 1 {
		t.Fatalf("requeues = %d, want 1", s.Requeues)
	}

	// The original holder finishes late: first result wins (accepted),
	// and w2's duplicate is a byte-identical cache hit.
	if rep := done(t, b, w1, l1[0], "ok"); !rep.Accepted {
		t.Fatalf("late result from expired lease must still win: %+v", rep)
	}
	rep := done(t, b, w2, l2[0], "ok")
	if rep.Accepted || !rep.Duplicate || !rep.CacheHit {
		t.Fatalf("re-dispatch result must be a duplicate cache hit: %+v", rep)
	}
	st, _ := b.Status(id)
	if st.State != api.JobDone || st.Done != 1 {
		t.Fatalf("status after expiry cycle: %+v", st)
	}
}

// TestRenewKeepsLeaseAlive: a renewed lease survives past the original
// TTL; renewal answers only still-active leases.
func TestRenewKeepsLeaseAlive(t *testing.T) {
	clk := newClock()
	b := newBroker(t, Config{LeaseTTL: time.Minute}, clk)
	submit(t, b, "", 0, spec("tiny/mc", 0))
	w1 := hello(t, b, "w1")
	w2 := hello(t, b, "w2")

	l := poll(t, b, w1, 1)[0]
	for i := 0; i < 4; i++ {
		clk.advance(40 * time.Second)
		rep, err := b.Renew(api.LeaseRenew{Proto: api.Version, WorkerID: w1, LeaseIDs: []string{l.ID}})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := rep.Deadlines[l.ID]; !ok {
			t.Fatalf("renew %d dropped an active lease", i)
		}
		if ls := poll(t, b, w2, 1); len(ls) != 0 {
			t.Fatalf("renewed lease requeued anyway at cycle %d", i)
		}
	}
	// Stop renewing: the lease expires and renewal goes silent on it.
	clk.advance(2 * time.Minute)
	rep, err := b.Renew(api.LeaseRenew{Proto: api.Version, WorkerID: w1, LeaseIDs: []string{l.ID}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Deadlines) != 0 {
		t.Fatalf("expired lease renewed: %+v", rep)
	}
}

// TestCancelWhileLeased: cancel drops the queued tasks immediately, and
// the in-flight lease's result is discarded on arrival.
func TestCancelWhileLeased(t *testing.T) {
	b := newBroker(t, Config{}, newClock())
	id := submit(t, b, "", 0, spec("tiny/mc", 0), spec("tiny/mc", 1))
	w := hello(t, b, "w1")

	leases := poll(t, b, w, 1) // shard 0 leased, shard 1 still queued
	if err := b.Cancel(api.CancelRequest{Proto: api.Version, ID: id}); err != nil {
		t.Fatal(err)
	}
	st, _ := b.Status(id)
	if st.State != api.JobCanceled {
		t.Fatalf("state %q after cancel", st.State)
	}
	// The queued shard must never dispatch.
	if ls := poll(t, b, w, 4); len(ls) != 0 {
		t.Fatalf("canceled job still dispatching: %+v", ls)
	}
	// The in-flight result is discarded, not recorded.
	if rep := done(t, b, w, leases[0], "ok"); rep.Accepted || rep.Duplicate {
		t.Fatalf("canceled task's result must be discarded: %+v", rep)
	}
	st, _ = b.Status(id)
	if st.State != api.JobCanceled || st.Done != 0 || len(st.Results) != 0 {
		t.Fatalf("cancel did not stick: %+v", st)
	}
	// Cancel is idempotent; canceling a finished job is a typed error.
	if err := b.Cancel(api.CancelRequest{Proto: api.Version, ID: id}); err != nil {
		t.Fatalf("re-cancel: %v", err)
	}
}

// TestHedgedDispatchDeterminism is the straggler scenario end to end: a
// slow worker holds the only lease past the hedge threshold, an idle
// worker gets a duplicate lease, and whichever finishes second is
// observed as a byte-identical cache hit. First result wins.
func TestHedgedDispatchDeterminism(t *testing.T) {
	clk := newClock()
	b := newBroker(t, Config{LeaseTTL: 10 * time.Minute, HedgeAfter: time.Minute}, clk)
	id := submit(t, b, "", 0, spec("tiny/mc", 3))
	slow := hello(t, b, "slow")
	fast := hello(t, b, "fast")

	ls := poll(t, b, slow, 1)
	if len(ls) != 1 || ls[0].Hedged {
		t.Fatalf("primary lease: %+v", ls)
	}
	// Before the hedge threshold the idle worker gets nothing.
	clk.advance(30 * time.Second)
	if hs := poll(t, b, fast, 1); len(hs) != 0 {
		t.Fatalf("hedged too early: %+v", hs)
	}
	// Past it, the straggler is duplicated to the idle worker.
	clk.advance(45 * time.Second)
	hs := poll(t, b, fast, 1)
	if len(hs) != 1 || !hs[0].Hedged || hs[0].Task != ls[0].Task {
		t.Fatalf("hedge lease: %+v (primary %+v)", hs, ls)
	}
	// Only one hedge at a time: a third poll gets nothing.
	if extra := poll(t, b, fast, 1); len(extra) != 0 {
		t.Fatalf("double hedge: %+v", extra)
	}

	// Both workers compute the same deterministic task. The fast worker
	// lands first and wins; the slow original is a duplicate whose bytes
	// match — a cache hit, exactly as if it had been replayed.
	if rep := done(t, b, fast, hs[0], "ok"); !rep.Accepted {
		t.Fatalf("hedge result must win when first: %+v", rep)
	}
	rep := done(t, b, slow, ls[0], "ok")
	if rep.Accepted || !rep.Duplicate || !rep.CacheHit {
		t.Fatalf("straggler result must be a duplicate cache hit: %+v", rep)
	}

	st, _ := b.Status(id)
	if st.State != api.JobDone || st.Done != 1 || st.Failed != 0 {
		t.Fatalf("status after hedge: %+v", st)
	}
	s := b.Stats()
	if s.Hedges != 1 || s.Duplicates != 1 || s.DupCacheHits != 1 {
		t.Fatalf("hedge stats: %+v", s)
	}
}

// TestHedgeDivergenceDetected: if a duplicate's bytes differ (a
// non-deterministic or corrupted worker), the broker flags it — the
// duplicate is not counted as a cache hit.
func TestHedgeDivergenceDetected(t *testing.T) {
	clk := newClock()
	b := newBroker(t, Config{LeaseTTL: 10 * time.Minute, HedgeAfter: time.Minute}, clk)
	submit(t, b, "", 0, spec("tiny/mc", 0))
	w1 := hello(t, b, "w1")
	w2 := hello(t, b, "w2")
	l1 := poll(t, b, w1, 1)[0]
	clk.advance(2 * time.Minute)
	l2 := poll(t, b, w2, 1)[0]

	done(t, b, w2, l2, "ok")
	rep := done(t, b, w1, l1, "DIVERGED")
	if !rep.Duplicate || rep.CacheHit {
		t.Fatalf("divergent duplicate must not read as a cache hit: %+v", rep)
	}
	if s := b.Stats(); s.DupCacheHits != 0 || s.Duplicates != 1 {
		t.Fatalf("divergence stats: %+v", s)
	}
}

// TestHedgeNeverOnSameWorker: the straggler's own worker polling again
// must not be handed a duplicate of its own lease.
func TestHedgeNeverOnSameWorker(t *testing.T) {
	clk := newClock()
	b := newBroker(t, Config{LeaseTTL: 10 * time.Minute, HedgeAfter: time.Minute}, clk)
	submit(t, b, "", 0, spec("tiny/mc", 0))
	w := hello(t, b, "w1")
	if ls := poll(t, b, w, 1); len(ls) != 1 {
		t.Fatalf("lease: %+v", ls)
	}
	clk.advance(5 * time.Minute)
	if ls := poll(t, b, w, 1); len(ls) != 0 {
		t.Fatalf("worker hedged against itself: %+v", ls)
	}
}

// TestDrainStopsDispatch: a draining worker gets no leases; its
// in-flight lease still completes normally.
func TestDrainStopsDispatch(t *testing.T) {
	b := newBroker(t, Config{}, newClock())
	id := submit(t, b, "", 0, spec("tiny/mc", 0), spec("tiny/mc", 1))
	w := hello(t, b, "w1")
	l := poll(t, b, w, 1)
	if err := b.Drain(api.DrainRequest{Proto: api.Version, WorkerID: w}); err != nil {
		t.Fatal(err)
	}
	if ls := poll(t, b, w, 4); len(ls) != 0 {
		t.Fatalf("draining worker still dispatched: %+v", ls)
	}
	if rep := done(t, b, w, l[0], "ok"); !rep.Accepted {
		t.Fatalf("draining worker's in-flight result rejected: %+v", rep)
	}
	st, _ := b.Status(id)
	if st.Done != 1 {
		t.Fatalf("status: %+v", st)
	}
}

// TestSilentWorkerExpiresAndTasksRequeue: a worker that stops polling,
// heartbeating and renewing is dropped after the membership timeout and
// its leases requeue to the live fleet.
func TestSilentWorkerExpiresAndTasksRequeue(t *testing.T) {
	clk := newClock()
	b := newBroker(t, Config{LeaseTTL: time.Minute}, clk) // worker expiry 3m
	submit(t, b, "", 0, spec("tiny/mc", 0))
	dead := hello(t, b, "dead")
	live := hello(t, b, "live")
	if ls := poll(t, b, dead, 1); len(ls) != 1 {
		t.Fatalf("lease: %+v", ls)
	}
	// The live worker heartbeats; the dead one goes silent.
	for i := 0; i < 4; i++ {
		clk.advance(time.Minute)
		if err := b.Heartbeat(api.Heartbeat{Proto: api.Version, WorkerID: live}); err != nil {
			t.Fatal(err)
		}
	}
	ls := poll(t, b, live, 1)
	if len(ls) != 1 {
		t.Fatal("dead worker's task never requeued to the live fleet")
	}
	// The dead worker's registration is gone: it must re-hello.
	_, err := b.Poll(context.Background(), api.PollRequest{Proto: api.Version, WorkerID: dead})
	ae, ok := api.AsError(err)
	if !ok || ae.Code != api.CodeNotFound {
		t.Fatalf("expired worker must be told to re-register: %v", err)
	}
	if s := b.Stats(); s.Workers != 1 {
		t.Fatalf("workers = %d, want 1", s.Workers)
	}
}

// TestLongPollWakesOnSubmit: a parked poll returns as soon as work
// arrives (bounded real-time wait, the one place wall clock is used).
func TestLongPollWakesOnSubmit(t *testing.T) {
	b := newBroker(t, Config{}, newClock())
	w := hello(t, b, "w1")
	got := make(chan []api.Lease, 1)
	go func() {
		rep, err := b.Poll(context.Background(), api.PollRequest{
			Proto: api.Version, WorkerID: w, Max: 1, WaitNS: int64(10 * time.Second),
		})
		if err != nil {
			t.Error(err)
		}
		got <- rep.Leases
	}()
	// Give the poller a moment to park, then submit.
	time.Sleep(20 * time.Millisecond)
	submit(t, b, "", 0, spec("tiny/mc", 0))
	select {
	case leases := <-got:
		if len(leases) != 1 {
			t.Fatalf("woken poll got %d leases", len(leases))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long poll never woke on submit")
	}
}

// TestWaitStatusUnblocksOnCompletion: the submit-side long poll parks
// until the last task lands.
func TestWaitStatusUnblocksOnCompletion(t *testing.T) {
	b := newBroker(t, Config{}, newClock())
	id := submit(t, b, "", 0, spec("tiny/mc", 0))
	w := hello(t, b, "w1")
	l := poll(t, b, w, 1)[0]

	got := make(chan api.JobStatus, 1)
	go func() {
		st, err := b.WaitStatus(context.Background(), id, 10*time.Second)
		if err != nil {
			t.Error(err)
		}
		got <- st
	}()
	time.Sleep(20 * time.Millisecond)
	done(t, b, w, l, "ok")
	select {
	case st := <-got:
		if st.State != api.JobDone {
			t.Fatalf("wait returned %q", st.State)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitStatus never unblocked")
	}
}

func TestUnknownIDsAreTypedNotFound(t *testing.T) {
	b := newBroker(t, Config{}, newClock())
	if _, err := b.Status("j999"); !isCode(err, api.CodeNotFound) {
		t.Fatalf("status: %v", err)
	}
	if err := b.Heartbeat(api.Heartbeat{Proto: api.Version, WorkerID: "w999"}); !isCode(err, api.CodeNotFound) {
		t.Fatalf("heartbeat: %v", err)
	}
	w := hello(t, b, "w1")
	_, err := b.Done(api.TaskDone{Proto: api.Version, WorkerID: w, LeaseID: "l999",
		Result: api.TaskResult{Proto: api.Version}})
	if !isCode(err, api.CodeNotFound) {
		t.Fatalf("done: %v", err)
	}
}

func isCode(err error, code api.Code) bool {
	ae, ok := api.AsError(err)
	return ok && ae.Code == code
}

// TestDoneValidatesResultAgainstLease: a result answering a different
// task (or echoing a foreign cache key) is rejected, not recorded.
func TestDoneValidatesResultAgainstLease(t *testing.T) {
	b := newBroker(t, Config{}, newClock())
	id := submit(t, b, "", 0, spec("tiny/mc", 0))
	w := hello(t, b, "w1")
	l := poll(t, b, w, 1)[0]
	bad := resultFor(l.Task, "ok")
	bad.Key = "mc@OTHER"
	if _, err := b.Done(api.TaskDone{Proto: api.Version, WorkerID: w, LeaseID: l.ID, Result: bad}); err == nil {
		t.Fatal("foreign cache-key echo must be rejected")
	}
	if st, _ := b.Status(id); st.Done != 0 {
		t.Fatalf("rejected result was recorded: %+v", st)
	}
}
