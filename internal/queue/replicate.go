package queue

import (
	"bytes"
	"context"
	"encoding/json"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/api"
)

// Broker high availability: primary/standby journal streaming.
//
// The primary's journal is the replication log — nothing is journaled
// twice. A follower long-polls ReadStream/WaitStream with a
// (generation, segment, offset) cursor and receives raw journal bytes,
// whole lines only and never past the primary's fsync watermark, so
// the follower can only ever apply records the primary already made
// durable (an acked submit can survive the primary's disk, or it was
// never streamed — there is no in-between). The follower appends the
// same bytes verbatim to its own journal, folds them into live state
// through the same applyEntryLocked that startup replay uses, and
// records its cursor so a crash resumes where it left off; overlap
// after a torn-tail restart is re-applied idempotently.
//
// Compaction rewrites history, so each fold bumps the journal's
// generation; a cursor minted before the fold into a folded segment no
// longer resolves and the primary answers Restart with the cursor
// rebased to its oldest segment. The follower simply re-applies from
// there — idempotence makes a restart a no-op on state. Generations are
// persisted (journal.meta) and strictly monotonic across primary
// restarts, so a cursor minted against a previous incarnation — whose
// startup replay refolds the snapshot segment under the same segment
// number — can never coincidentally validate; it is below the restarted
// journal's base generation and forces Restart.
//
// Fencing: every broker carries an epoch (starting at 1). Promotion
// bumps it and fsyncs an epoch stamp into the new primary's journal
// before it accepts a single mutation; the promoted broker then tells
// its ex-primary to fence itself (Fence), which stamps the higher
// epoch with Fenced set — durably, so a zombie primary stays fenced
// across its own restarts — and refuses all mutations with a typed
// retryable not_leader error carrying the new primary's address.

// Role is a broker's replication role.
type Role uint8

const (
	// RolePrimary accepts mutations (the default for a standalone
	// broker — HA is strictly additive).
	RolePrimary Role = iota
	// RoleFollower applies a primary's journal stream and answers
	// read-only endpoints; mutations get not_leader.
	RoleFollower
	// RoleFenced is an ex-primary that has adopted a higher epoch: it
	// keeps answering reads (useful for post-mortems) but refuses
	// mutations forever, pointing clients at the new primary.
	RoleFenced
)

func (r Role) String() string {
	switch r {
	case RoleFollower:
		return "follower"
	case RoleFenced:
		return "fenced"
	default:
		return "primary"
	}
}

// notLeaderRetryAfter is the backoff floor stamped on not_leader
// errors: long enough to stop a tight redirect loop, short enough that
// failover latency stays invisible next to a promotion.
const notLeaderRetryAfter = 250 * time.Millisecond

// defaultStreamChunk caps one replicate reply's payload.
const defaultStreamChunk int64 = 1 << 20

// replState is the follower-side replication bookkeeping.
type replState struct {
	cursorGen int
	cursorSeg int
	cursorOff int64

	primarySeg int
	primaryOff int64

	applied    int
	duplicates int
	skipped    int
	batches    int
	restarts   int

	lastContact time.Time
}

// StreamChunk is one span of raw journal bytes plus the cursor to
// resume from after applying it.
type StreamChunk struct {
	// Data is zero or more whole journal lines, verbatim.
	Data []byte
	// Gen/Seg/Off is the cursor after Data.
	Gen int
	Seg int
	Off int64
	// Restart reports the request cursor no longer resolved (compaction
	// folded it away); the returned cursor was rebased to the oldest
	// live segment.
	Restart bool
	// PrimarySeg/PrimaryOff is the serving journal's durable watermark.
	PrimarySeg int
	PrimaryOff int64
}

// ReadStream reads the next span of durable journal bytes at the given
// cursor, without blocking. An empty Data with an unchanged cursor
// means the follower is caught up to the fsync watermark.
func (jl *Journal) ReadStream(gen, seg int, off, maxBytes int64) StreamChunk {
	if maxBytes <= 0 {
		maxBytes = defaultStreamChunk
	}
	jl.mu.Lock()
	ck := StreamChunk{
		Gen: jl.generation, Seg: seg, Off: off,
		PrimarySeg: jl.activeSeg, PrimaryOff: jl.syncedBytes,
	}
	if jl.f == nil {
		jl.mu.Unlock()
		return ck
	}
	segs := make([]int, 0, len(jl.claimed)+len(jl.sealed)+1)
	segs = append(segs, jl.claimed...)
	segs = append(segs, jl.sealed...)
	segs = append(segs, jl.activeSeg)
	sort.Ints(segs)
	found := false
	for _, n := range segs {
		if n == seg {
			found = true
			break
		}
	}
	// A cursor is stale if its segment is gone, if it predates a fold
	// that rewrote that segment's content (same number, new bytes), or
	// if it was minted by another incarnation of this journal (below
	// baseGen: an earlier incarnation whose folds may have rewritten
	// anything; above generation: a different journal entirely, e.g. a
	// wiped-and-recreated directory). Only segments above foldedThrough
	// minted under this incarnation are append-only history that stays
	// valid across generations.
	if !found || (gen != jl.generation &&
		(seg <= jl.foldedThrough || gen < jl.baseGen || gen > jl.generation)) {
		ck.Restart = true
		seg, off = segs[0], 0
		ck.Seg, ck.Off = seg, off
	}
	// Walk to the first segment with readable bytes at or past the
	// cursor. Sealed segments read to their full size; the active one
	// only to the fsync watermark.
	var limit int64
	for {
		if seg == jl.activeSeg {
			limit = jl.syncedBytes
		} else if st, err := os.Stat(jl.segmentPath(seg)); err == nil {
			limit = st.Size()
		} else {
			log.Printf("queue: journal: stream stat segment %d: %v", seg, err)
			limit = 0
		}
		if off < limit {
			break
		}
		next, ok := 0, false
		for _, n := range segs {
			if n > seg {
				next, ok = n, true
				break
			}
		}
		if !ok {
			// Caught up.
			ck.Seg, ck.Off = seg, off
			jl.mu.Unlock()
			return ck
		}
		seg, off = next, 0
	}
	// Open under the lock: a concurrent compaction rename cannot swap
	// the inode between the limit decision and the read, and an open fd
	// keeps reading the old bytes even if it does land right after.
	f, err := os.Open(jl.segmentPath(seg))
	jl.mu.Unlock()
	ck.Seg, ck.Off = seg, off
	if err != nil {
		log.Printf("queue: journal: stream open segment %d: %v", seg, err)
		return ck
	}
	defer f.Close()
	n := limit - off
	if n > maxBytes {
		n = maxBytes
	}
	for {
		buf := make([]byte, n)
		rd, err := f.ReadAt(buf, off)
		if rd < int(n) {
			log.Printf("queue: journal: stream read segment %d: %v", seg, err)
			return ck
		}
		if cut := bytes.LastIndexByte(buf, '\n'); cut >= 0 {
			ck.Data = buf[:cut+1]
			ck.Off = off + int64(cut+1)
			break
		}
		if n == limit-off {
			// No newline all the way to the limit: an unterminated crash
			// tail in a sealed segment (OpenJournal seals the pre-crash
			// segment as-is). The bytes cannot decode; step past them so
			// the cursor can move on to the next segment.
			ck.Off = limit
			break
		}
		// One record overflowed the cap; grow until it fits.
		n *= 2
		if n > limit-off {
			n = limit - off
		}
	}
	if len(ck.Data) > 0 {
		jl.mu.Lock()
		jl.streamReads++
		jl.streamBytes += int64(len(ck.Data))
		jl.mu.Unlock()
	}
	return ck
}

// WaitStream is ReadStream with a long poll: when the cursor is at the
// durable tip it parks until an fsync moves the watermark, the wait
// elapses, or ctx cancels.
func (jl *Journal) WaitStream(ctx context.Context, gen, seg int, off, maxBytes int64, wait time.Duration) StreamChunk {
	deadline := time.Now().Add(wait)
	for {
		// Capture the wake channel before reading: an fsync landing
		// between the read and the park closes-and-replaces the channel,
		// and a waiter that captured afterwards would sleep out its full
		// deadline with bytes already available. Captured first, that
		// fsync closes this channel and the select returns immediately.
		jl.mu.Lock()
		wake := jl.syncWake
		jl.mu.Unlock()
		ck := jl.ReadStream(gen, seg, off, maxBytes)
		if len(ck.Data) > 0 || ck.Restart || ck.Seg != seg || ck.Off != off {
			return ck
		}
		jl.mu.Lock()
		closed := jl.f == nil
		jl.mu.Unlock()
		if closed || wait <= 0 || !time.Now().Before(deadline) || ctx.Err() != nil {
			return ck
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-wake:
			timer.Stop()
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return ck
		}
	}
}

// Journal exposes the broker's journal to the transport layer (the
// /v2/replicate handler streams from it); nil when not journaled.
func (b *Broker) Journal() *Journal { return b.cfg.Journal }

// Role reports the broker's current replication role.
func (b *Broker) Role() Role {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.role
}

// Epoch reports the broker's current fencing epoch.
func (b *Broker) Epoch() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.epoch
}

// ReplCursor reports the follower's replication resume cursor (zero
// values on a broker that never followed).
func (b *Broker) ReplCursor() (gen, seg int, off int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.repl.cursorGen, b.repl.cursorSeg, b.repl.cursorOff
}

// roleGateLocked refuses mutations on a non-primary with a typed
// retryable not_leader error carrying the primary's address (when
// known) and a backoff floor.
func (b *Broker) roleGateLocked() error {
	if b.role == RolePrimary {
		return nil
	}
	ae := api.Errf(api.CodeNotLeader,
		"broker is a %s at epoch %d; mutations go to the primary", b.role, b.epoch)
	ae.Primary = b.primaryAddr
	ae.RetryAfterNS = int64(notLeaderRetryAfter)
	return ae
}

// roleGate is roleGateLocked for callers outside b.mu (the cheap
// pre-lock fast path).
func (b *Broker) roleGate() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.roleGateLocked()
}

// ApplyReplicated folds one replicate reply into the follower: every
// well-formed record is applied through applyEntryLocked and appended
// verbatim to the follower's own journal, then the cursor is journaled
// and the batch fsynced once. Undecodable records are counted and
// dropped — never re-journaled, where they would poison a future
// strict sealed-segment replay. Duplicate records (resume overlap,
// compaction leftovers) are idempotently skipped.
func (b *Broker) ApplyReplicated(ck StreamChunk) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.role != RoleFollower {
		return api.Errf(api.CodeUnavailable, "broker is a %s, not a follower", b.role)
	}
	if ck.Restart && b.repl.batches > 0 {
		b.repl.restarts++
	}
	data := ck.Data
	for len(data) > 0 {
		var line []byte
		if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
			line, data = data[:nl+1], data[nl+1:]
		} else {
			line, data = data, nil
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(trimmed, &e); err != nil || e.V != journalFormatVersion {
			b.repl.skipped++
			continue
		}
		if e.Kind == entryCursor {
			// The upstream's own resume bookkeeping (it followed someone
			// once); meaningless here and never re-journaled.
			continue
		}
		switch b.applyEntryLocked(e) {
		case applyApplied:
			b.repl.applied++
			b.journalAppendRawLocked(line)
		case applyDuplicate:
			b.repl.duplicates++
		default:
			b.repl.skipped++
		}
	}
	moved := ck.Gen != b.repl.cursorGen || ck.Seg != b.repl.cursorSeg || ck.Off != b.repl.cursorOff
	b.repl.cursorGen, b.repl.cursorSeg, b.repl.cursorOff = ck.Gen, ck.Seg, ck.Off
	b.repl.primarySeg, b.repl.primaryOff = ck.PrimarySeg, ck.PrimaryOff
	b.repl.lastContact = b.now()
	if len(ck.Data) > 0 || ck.Restart {
		b.repl.batches++
	}
	if moved && b.cfg.Journal != nil {
		b.journalAppendLocked(journalEntry{
			Kind: entryCursor, Gen: ck.Gen, Seg: ck.Seg, Off: ck.Off,
		}, false)
		// One fsync covers the whole batch plus its cursor.
		b.journalSyncLocked()
	}
	return nil
}

// journalAppendRawLocked writes one verbatim replicated line to the
// follower's journal, claiming sealed segments for compaction when the
// append rolls the active segment over (same contract as
// journalAppendLocked).
func (b *Broker) journalAppendRawLocked(line []byte) {
	jl := b.cfg.Journal
	if jl == nil {
		return
	}
	if line[len(line)-1] != '\n' {
		line = append(append([]byte(nil), line...), '\n')
	}
	if !jl.appendRaw(line) {
		return
	}
	if claimed := jl.claimSealed(); claimed != nil {
		jl.compactAsync(claimed, b.liveEntriesLocked())
	}
}

// Promote turns a follower into the primary: the fencing epoch is
// bumped and fsynced into the journal before the first mutation can be
// accepted, and every task the dead primary had out on a lease is
// reported as requeued (it is already pending here — grants never
// transfer, they surface as expiry→requeue). Idempotent on a broker
// that is already primary; refused on a fenced ex-primary, which would
// otherwise split the brain it was fenced to protect.
func (b *Broker) Promote() (epoch int64, requeued int, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.role {
	case RolePrimary:
		return b.epoch, 0, nil
	case RoleFenced:
		return 0, 0, api.Errf(api.CodeUnavailable,
			"broker is fenced at epoch %d (primary %s); a fenced ex-primary cannot promote",
			b.epoch, b.primaryAddr)
	}
	b.epoch++
	b.role = RolePrimary
	b.primaryAddr = ""
	for _, j := range b.jobs {
		if j.canceled {
			continue
		}
		for _, t := range j.tasks {
			if t.state == taskPending && t.granted {
				requeued++
				t.granted = false
			}
		}
	}
	b.journalAppendLocked(journalEntry{Kind: entryEpoch, Epoch: b.epoch}, true)
	b.wakeAll()
	return b.epoch, requeued, nil
}

// Fence tells this broker a higher epoch exists. A primary (or an
// already-fenced ex-primary at a lower epoch) adopts it, journals it
// (fsynced, with the Fenced stamp, so the fence survives restarts) and
// refuses mutations from now on, pointing clients at primary. A
// configured follower adopts the epoch and the redirect hint but stays
// a follower — it is already read-only, must keep replicating, and must
// stay promotable; flipping it to fenced would race the fencer's
// retries against the replicated epoch entry and silently freeze a
// standby the operator believes is hot. A stale epoch — at or below the
// broker's own, on a non-follower — is refused with bad_request: the
// caller is the zombie, not this broker.
func (b *Broker) Fence(epoch int64, primary string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if epoch < b.epoch {
		return api.Errf(api.CodeBadRequest,
			"stale fencing epoch %d (broker at epoch %d)", epoch, b.epoch)
	}
	if b.role == RoleFollower {
		if epoch > b.epoch {
			b.epoch = epoch
			b.journalAppendLocked(journalEntry{
				Kind: entryEpoch, Epoch: epoch, Primary: primary,
			}, true)
		}
		if primary != "" {
			b.primaryAddr = primary
		}
		return nil
	}
	if epoch == b.epoch {
		if b.role != RoleFenced {
			return api.Errf(api.CodeBadRequest,
				"stale fencing epoch %d (broker at epoch %d)", epoch, b.epoch)
		}
		if primary != "" {
			b.primaryAddr = primary
		}
		return nil // idempotent fence retry
	}
	b.epoch = epoch
	b.role = RoleFenced
	b.primaryAddr = primary
	b.journalAppendLocked(journalEntry{
		Kind: entryEpoch, Epoch: epoch, Fenced: true, Primary: primary,
	}, true)
	// Unpark long polls so waiting workers hear not_leader now, not at
	// their deadline.
	b.wakeAll()
	return nil
}
