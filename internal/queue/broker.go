// Package queue implements the dlexec2 job broker: a persistent
// in-daemon queue that takes job submissions from schedulers and hands
// the individual tasks to workers through pull-based leases.
//
// The broker is transport-agnostic — internal/remote wraps it in HTTP —
// and deliberately knows nothing about experiments: a task is an opaque
// api.TaskSpec routed by (tenant, priority, submission order). Four
// mechanisms make it a service rather than a dispatcher:
//
//   - Weighted per-tenant fairness. Pending tasks queue per tenant, and
//     dispatch picks the tenant with the lowest virtual time
//     (served/weight, stride scheduling), so a tenant that floods the
//     queue still only gets its weighted share while others have work.
//     Priority orders tasks within a tenant, never across tenants.
//
//   - Leases. A dispatched task is not gone, it is leased: the worker
//     must finish or renew within the TTL or the task requeues. Worker
//     death needs no failure detector beyond the clock.
//
//   - Dynamic membership. Workers register (Hello), stay alive by
//     polling or heartbeating, and leave by draining. A silent worker
//     expires after a few TTLs and its leases requeue.
//
//   - Hedged re-dispatch. When a poller has capacity and the queue is
//     empty, a task whose lease has been outstanding longer than the
//     hedge threshold is dispatched a second time. This is safe — not
//     merely tolerable — because tasks are deterministic and
//     cache-keyed: the first result wins and the loser is verified to
//     be a byte-identical duplicate (observable in Stats and DoneReply
//     as a cache hit).
//
// Every public method is safe for concurrent use. Time is injectable
// (Config.Now) and all expiry is evaluated lazily on access, so tests
// drive lease expiry, hedging and membership timeouts with a fake clock
// and zero sleeps.
package queue

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/api"
)

// Defaults for Config zero values.
const (
	DefaultLeaseTTL = 30 * time.Second
	// defaultWorkerExpiryTTLs scales LeaseTTL into how long a worker may
	// stay completely silent (no poll, heartbeat, renew or done) before
	// its registration and leases are dropped.
	defaultWorkerExpiryTTLs = 3
	// defaultJobRetention is how long a finished job's status (and its
	// leases, for duplicate detection) stay queryable.
	defaultJobRetention = 10 * time.Minute
)

// Config tunes a Broker. The zero value is usable.
type Config struct {
	// LeaseTTL is the lease duration; 0 means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// HedgeAfter is how long a task's oldest lease may be outstanding
	// before an idle poller is offered a duplicate lease for it; 0
	// disables hedging. Each task gets at most one hedge at a time, and
	// never on the worker already holding it.
	HedgeAfter time.Duration
	// Weights assigns per-tenant fairness weights; tenants absent from
	// the map (and the map being nil) weigh 1. Weights below 1 read
	// as 1.
	Weights map[string]int
	// WorkerExpiry is how long a silent worker stays registered;
	// 0 means 3×LeaseTTL.
	WorkerExpiry time.Duration
	// JobRetention is how long finished/canceled jobs stay queryable;
	// 0 means 10 minutes.
	JobRetention time.Duration
	// Now is the clock; nil means time.Now. Tests inject a fake.
	Now func() time.Time
}

// Stats is a point-in-time broker census.
type Stats struct {
	// Pending tasks are queued, waiting for a poller.
	Pending int
	// Leased tasks are out on at least one active lease.
	Leased int
	// Workers counts live registrations.
	Workers int
	// Jobs counts retained jobs (queued, running and recently done).
	Jobs int
	// Submitted / Completed / Failed count tasks over the broker's
	// lifetime; Failed is the subset of Completed with a task error.
	Submitted, Completed, Failed int
	// Requeues counts lease expiries that put a task back in the queue.
	Requeues int
	// Hedges counts duplicate leases granted for stragglers.
	Hedges int
	// Duplicates counts results that arrived after the task was already
	// done; DupCacheHits is the subset whose bytes matched the recorded
	// winner (all of them, when tasks are deterministic).
	Duplicates, DupCacheHits int
}

type taskState uint8

const (
	taskPending taskState = iota
	taskLeased
	taskDone
	taskCanceled
)

// task is one queued unit.
type task struct {
	id    string // "<job id>/<index>", for logs
	job   *job
	idx   int
	spec  api.TaskSpec
	seq   uint64 // global submission order, the FIFO tie-breaker
	state taskState
	// leases holds the active leases (normally one; two while hedged).
	leases map[string]*lease
	result *api.TaskResult
}

// job is one submission: tasks sharing tenant and priority.
type job struct {
	id       string
	tenant   string
	priority int
	tasks    []*task
	done     int
	failed   int
	canceled bool
	// finished closes when the job reaches JobDone or JobCanceled
	// (WaitStatus parks on it).
	finished   chan struct{}
	finishedAt time.Time
}

func (j *job) complete() bool { return j.canceled || j.done == len(j.tasks) }

func (j *job) state() api.JobState {
	switch {
	case j.canceled:
		return api.JobCanceled
	case j.done == len(j.tasks):
		return api.JobDone
	case j.done > 0 || j.running():
		return api.JobRunning
	default:
		return api.JobQueued
	}
}

func (j *job) running() bool {
	for _, t := range j.tasks {
		if t.state == taskLeased {
			return true
		}
	}
	return false
}

// lease is one grant of one task to one worker.
type lease struct {
	id       string
	t        *task
	worker   string
	start    time.Time
	deadline time.Time
	hedged   bool
	// active is false once the lease expired, was superseded by a
	// recorded result, or its worker died. Inactive leases are kept (until
	// their job is swept) so a late TaskDone is recognised as a duplicate
	// instead of an unknown lease.
	active bool
}

// workerRec is one live registration.
type workerRec struct {
	id       string
	name     string
	capacity int
	lastSeen time.Time
	draining bool
	leases   map[string]*lease
}

// tenantQ is one tenant's pending queue plus its fairness state.
type tenantQ struct {
	name   string
	weight int
	served uint64 // tasks dispatched, the stride-scheduling numerator
	q      []*task
}

// insert places t keeping the dispatch order invariant: priority
// descending, then submission sequence ascending. A requeued task
// re-enters at its original position relative to its peers.
func (tq *tenantQ) insert(t *task) {
	i := sort.Search(len(tq.q), func(i int) bool {
		if tq.q[i].job.priority != t.job.priority {
			return tq.q[i].job.priority < t.job.priority
		}
		return tq.q[i].seq > t.seq
	})
	tq.q = append(tq.q, nil)
	copy(tq.q[i+1:], tq.q[i:])
	tq.q[i] = t
}

// Broker is the queue service. See the package comment for semantics.
type Broker struct {
	mu  sync.Mutex
	cfg Config
	now func() time.Time

	seq     uint64 // id source (jobs, leases, workers, task order)
	jobs    map[string]*job
	leases  map[string]*lease
	workers map[string]*workerRec
	tenants map[string]*tenantQ

	// wake is closed and replaced whenever new work becomes available;
	// long-polls park on it.
	wake chan struct{}

	stats Stats
}

// New builds a Broker from cfg (zero value fine).
func New(cfg Config) *Broker {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.WorkerExpiry <= 0 {
		cfg.WorkerExpiry = defaultWorkerExpiryTTLs * cfg.LeaseTTL
	}
	if cfg.JobRetention <= 0 {
		cfg.JobRetention = defaultJobRetention
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Broker{
		cfg:     cfg,
		now:     now,
		jobs:    make(map[string]*job),
		leases:  make(map[string]*lease),
		workers: make(map[string]*workerRec),
		tenants: make(map[string]*tenantQ),
		wake:    make(chan struct{}),
	}
}

// LeaseTTL reports the configured lease duration (advertised in
// HelloReply).
func (b *Broker) LeaseTTL() time.Duration { return b.cfg.LeaseTTL }

// nextID mints a prefixed sequential id. Sequential — not random — ids
// keep broker behavior fully deterministic under test.
func (b *Broker) nextID(prefix string) string {
	b.seq++
	return fmt.Sprintf("%s%d", prefix, b.seq)
}

// wakeAll releases every parked long-poll (new work arrived).
func (b *Broker) wakeAll() {
	close(b.wake)
	b.wake = make(chan struct{})
}

// tenantFor returns (creating on demand) the tenant's queue.
func (b *Broker) tenantFor(name string) *tenantQ {
	tq := b.tenants[name]
	if tq == nil {
		w := 1
		if b.cfg.Weights != nil && b.cfg.Weights[name] > 1 {
			w = b.cfg.Weights[name]
		}
		tq = &tenantQ{name: name, weight: w}
		b.tenants[name] = tq
	}
	return tq
}

// Submit enqueues a job and returns its id.
func (b *Broker) Submit(s api.JobSubmit) (api.SubmitReply, error) {
	if err := s.Validate(); err != nil {
		return api.SubmitReply{}, err
	}
	tenant := s.Tenant
	if tenant == "" {
		tenant = api.DefaultTenant
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sweep()

	j := &job{
		id:       b.nextID("j"),
		tenant:   tenant,
		priority: s.Priority,
		finished: make(chan struct{}),
	}
	tq := b.tenantFor(tenant)
	for i, spec := range s.Tasks {
		t := &task{
			id:     fmt.Sprintf("%s/%d", j.id, i),
			job:    j,
			idx:    i,
			spec:   spec,
			seq:    b.seq + uint64(i) + 1,
			leases: make(map[string]*lease),
		}
		j.tasks = append(j.tasks, t)
		tq.insert(t)
	}
	b.seq += uint64(len(s.Tasks))
	b.jobs[j.id] = j
	b.stats.Submitted += len(j.tasks)
	b.wakeAll()
	return api.SubmitReply{Proto: api.Version, ID: j.id}, nil
}

// Status reports a job's progress; Results is populated once done.
func (b *Broker) Status(id string) (api.JobStatus, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sweep()
	j := b.jobs[id]
	if j == nil {
		return api.JobStatus{}, api.JobNotFound(id)
	}
	return b.statusLocked(j), nil
}

func (b *Broker) statusLocked(j *job) api.JobStatus {
	st := api.JobStatus{
		Proto:    api.Version,
		ID:       j.id,
		Tenant:   j.tenant,
		Priority: j.priority,
		State:    j.state(),
		Total:    len(j.tasks),
		Done:     j.done,
		Failed:   j.failed,
	}
	if st.State == api.JobDone {
		st.Results = make([]api.TaskResult, len(j.tasks))
		for i, t := range j.tasks {
			st.Results[i] = *t.result
		}
	}
	return st
}

// WaitStatus blocks until the job finishes (done or canceled), the wait
// elapses, or ctx cancels, then reports its status — the long-poll
// backing of the submit side. wait <= 0 degrades to Status.
func (b *Broker) WaitStatus(ctx context.Context, id string, wait time.Duration) (api.JobStatus, error) {
	b.mu.Lock()
	b.sweep()
	j := b.jobs[id]
	if j == nil {
		b.mu.Unlock()
		return api.JobStatus{}, api.JobNotFound(id)
	}
	if wait <= 0 || j.complete() {
		st := b.statusLocked(j)
		b.mu.Unlock()
		return st, nil
	}
	fin := j.finished
	b.mu.Unlock()

	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-fin:
	case <-timer.C:
	case <-ctx.Done():
		return api.JobStatus{}, ctx.Err()
	}
	return b.Status(id)
}

// Cancel cancels a job: pending tasks leave the queue immediately;
// leased tasks keep running on their workers but their results are
// discarded on arrival (the lease is already paid for — the broker just
// stops caring).
func (b *Broker) Cancel(req api.CancelRequest) error {
	if err := api.CheckProto(req.Proto); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sweep()
	j := b.jobs[req.ID]
	if j == nil {
		return api.JobNotFound(req.ID)
	}
	if j.complete() {
		if j.canceled {
			return nil // idempotent
		}
		return api.Errf(api.CodeCanceled, "job %s already finished; cancel has no effect", j.id)
	}
	j.canceled = true
	j.finishedAt = b.now()
	tq := b.tenants[j.tenant]
	for _, t := range j.tasks {
		switch t.state {
		case taskPending:
			tq.remove(t)
			t.state = taskCanceled
		case taskLeased:
			t.state = taskCanceled
			b.releaseLeases(t)
		}
	}
	close(j.finished)
	return nil
}

// remove drops t from the pending queue (cancel path).
func (tq *tenantQ) remove(t *task) {
	for i, q := range tq.q {
		if q == t {
			tq.q = append(tq.q[:i], tq.q[i+1:]...)
			return
		}
	}
}

// Hello registers a worker. This is where a mixed-fleet upgrade fails
// loudly: an incompatible protocol revision is rejected before the
// worker ever holds a lease.
func (b *Broker) Hello(h api.WorkerHello) (api.HelloReply, error) {
	if err := h.Validate(); err != nil {
		return api.HelloReply{}, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sweep()
	w := &workerRec{
		id:       b.nextID("w"),
		name:     h.Name,
		capacity: h.Capacity,
		lastSeen: b.now(),
		leases:   make(map[string]*lease),
	}
	b.workers[w.id] = w
	return api.HelloReply{
		Proto:      api.Version,
		WorkerID:   w.id,
		LeaseTTLNS: int64(b.cfg.LeaseTTL),
	}, nil
}

// Heartbeat refreshes a worker's liveness.
func (b *Broker) Heartbeat(hb api.Heartbeat) error {
	if err := api.CheckProto(hb.Proto); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sweep()
	w := b.workers[hb.WorkerID]
	if w == nil {
		return api.WorkerNotFound(hb.WorkerID)
	}
	w.lastSeen = b.now()
	return nil
}

// Drain marks a worker as leaving: no new leases are offered to it; its
// in-flight leases finish normally.
func (b *Broker) Drain(d api.DrainRequest) error {
	if err := api.CheckProto(d.Proto); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	w := b.workers[d.WorkerID]
	if w == nil {
		return api.WorkerNotFound(d.WorkerID)
	}
	w.draining = true
	w.lastSeen = b.now()
	return nil
}

// Poll grants up to req.Max leases to the worker. With req.WaitNS > 0
// and nothing to dispatch, the call parks until work arrives, the wait
// elapses, or ctx cancels (long poll).
func (b *Broker) Poll(ctx context.Context, req api.PollRequest) (api.PollReply, error) {
	if err := api.CheckProto(req.Proto); err != nil {
		return api.PollReply{}, err
	}
	max := req.Max
	if max <= 0 {
		max = 1
	}
	deadline := time.Time{}
	if req.WaitNS > 0 {
		deadline = time.Now().Add(time.Duration(req.WaitNS))
	}
	for {
		b.mu.Lock()
		b.sweep()
		w := b.workers[req.WorkerID]
		if w == nil {
			b.mu.Unlock()
			return api.PollReply{}, api.WorkerNotFound(req.WorkerID)
		}
		w.lastSeen = b.now()
		var leases []api.Lease
		if !w.draining {
			for len(leases) < max {
				l := b.dispatchOne(w)
				if l == nil {
					break
				}
				leases = append(leases, api.Lease{
					ID:         l.id,
					Task:       l.t.spec,
					DeadlineNS: l.deadline.UnixNano(),
					Hedged:     l.hedged,
				})
			}
		}
		wake := b.wake
		next := b.nextEventLocked()
		b.mu.Unlock()
		if len(leases) > 0 || deadline.IsZero() || !time.Now().Before(deadline) {
			return api.PollReply{Proto: api.Version, Leases: leases}, nil
		}
		// Park until new work (wake), the long-poll deadline, or the next
		// time-triggered dispatch change — a lease expiring into a requeue
		// or a straggler becoming hedge-eligible. Without the latter a
		// parked poll would sit out the whole wait while a requeued task
		// sat in the queue (expiry is evaluated lazily, on entry).
		until := time.Until(deadline)
		if !next.IsZero() {
			if d := next.Sub(b.now()) + time.Millisecond; d < until {
				until = d
			}
			if until < time.Millisecond {
				until = time.Millisecond
			}
		}
		timer := time.NewTimer(until)
		select {
		case <-wake:
			timer.Stop()
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return api.PollReply{}, ctx.Err()
		}
	}
}

// nextEventLocked returns the earliest instant (broker clock) at which
// the passage of time alone could make new dispatch possible: an active
// lease expiring (requeue) or a single-leased task crossing the hedge
// threshold. Zero when no such instant is pending.
func (b *Broker) nextEventLocked() time.Time {
	var next time.Time
	sooner := func(t time.Time) {
		if next.IsZero() || t.Before(next) {
			next = t
		}
	}
	for _, l := range b.leases {
		if !l.active {
			continue
		}
		sooner(l.deadline)
		if b.cfg.HedgeAfter > 0 && len(l.t.leases) == 1 {
			sooner(l.start.Add(b.cfg.HedgeAfter))
		}
	}
	return next
}

// dispatchOne picks the next task for w, preferring fresh pending work
// (weighted-fair across tenants, priority-then-FIFO within one) and
// falling back to hedging a straggler. Returns nil when there is
// nothing for this worker.
func (b *Broker) dispatchOne(w *workerRec) *lease {
	// Weighted fair pick: among tenants with pending work, the lowest
	// virtual time served/weight wins; ties break on tenant name so the
	// schedule is deterministic.
	var pick *tenantQ
	for _, tq := range b.tenants {
		if len(tq.q) == 0 {
			continue
		}
		if pick == nil {
			pick = tq
			continue
		}
		a, c := tq.served*uint64(pick.weight), pick.served*uint64(tq.weight)
		if a < c || (a == c && tq.name < pick.name) {
			pick = tq
		}
	}
	if pick != nil {
		t := pick.q[0]
		pick.q = pick.q[1:]
		pick.served++
		return b.grantLocked(t, w, false)
	}
	return b.hedgeOne(w)
}

// hedgeOne grants a duplicate lease for the longest-outstanding
// straggler, if hedging is on and one qualifies: its oldest active
// lease is older than HedgeAfter, it has no hedge out already, and this
// worker doesn't hold it. Candidates are scanned in task submission
// order so the choice is deterministic.
func (b *Broker) hedgeOne(w *workerRec) *lease {
	if b.cfg.HedgeAfter <= 0 {
		return nil
	}
	now := b.now()
	var cand *task
	var candStart time.Time
	for _, j := range b.jobs {
		if j.canceled {
			continue
		}
		for _, t := range j.tasks {
			if t.state != taskLeased || len(t.leases) != 1 {
				continue
			}
			var start time.Time
			mine := false
			for _, l := range t.leases {
				start = l.start
				mine = l.worker == w.id
			}
			if mine || now.Sub(start) < b.cfg.HedgeAfter {
				continue
			}
			if cand == nil || start.Before(candStart) ||
				(start.Equal(candStart) && t.seq < cand.seq) {
				cand, candStart = t, start
			}
		}
	}
	if cand == nil {
		return nil
	}
	b.stats.Hedges++
	return b.grantLocked(cand, w, true)
}

// grantLocked creates and indexes a lease of t to w.
func (b *Broker) grantLocked(t *task, w *workerRec, hedged bool) *lease {
	now := b.now()
	l := &lease{
		id:       b.nextID("l"),
		t:        t,
		worker:   w.id,
		start:    now,
		deadline: now.Add(b.cfg.LeaseTTL),
		hedged:   hedged,
		active:   true,
	}
	t.state = taskLeased
	t.leases[l.id] = l
	w.leases[l.id] = l
	b.leases[l.id] = l
	return l
}

// Renew extends the still-active leases named in req; expired or
// superseded leases are simply absent from the reply.
func (b *Broker) Renew(req api.LeaseRenew) (api.RenewReply, error) {
	if err := api.CheckProto(req.Proto); err != nil {
		return api.RenewReply{}, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sweep()
	w := b.workers[req.WorkerID]
	if w == nil {
		return api.RenewReply{}, api.WorkerNotFound(req.WorkerID)
	}
	w.lastSeen = b.now()
	reply := api.RenewReply{Proto: api.Version}
	for _, id := range req.LeaseIDs {
		l := w.leases[id]
		if l == nil || !l.active {
			continue
		}
		l.deadline = b.now().Add(b.cfg.LeaseTTL)
		if reply.Deadlines == nil {
			reply.Deadlines = make(map[string]int64)
		}
		reply.Deadlines[id] = l.deadline.UnixNano()
	}
	return reply, nil
}

// Done records a lease's result. First result wins: if the task already
// finished (a hedge or an expired-lease re-dispatch got there first),
// the reply flags a duplicate and whether its bytes matched the winner.
// Results for canceled jobs are discarded.
func (b *Broker) Done(req api.TaskDone) (api.DoneReply, error) {
	if err := api.CheckProto(req.Proto); err != nil {
		return api.DoneReply{}, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sweep()
	if w := b.workers[req.WorkerID]; w != nil {
		w.lastSeen = b.now()
	}
	l := b.leases[req.LeaseID]
	if l == nil {
		return api.DoneReply{}, api.LeaseNotFound(req.LeaseID)
	}
	t := l.t
	if err := req.Result.Validate(t.spec); err != nil {
		return api.DoneReply{}, err
	}
	b.dropLease(l)
	switch t.state {
	case taskDone:
		b.stats.Duplicates++
		hit := sameResult(*t.result, req.Result)
		if hit {
			b.stats.DupCacheHits++
		}
		return api.DoneReply{Proto: api.Version, Duplicate: true, CacheHit: hit}, nil
	case taskCanceled:
		return api.DoneReply{Proto: api.Version}, nil
	case taskPending:
		// The lease expired and the task requeued, but the original
		// holder finished anyway — first result wins, so pull the task
		// back out of the queue before recording it.
		b.tenantFor(t.job.tenant).remove(t)
	}
	res := req.Result
	t.result = &res
	t.state = taskDone
	b.releaseLeases(t)
	j := t.job
	j.done++
	b.stats.Completed++
	if res.Err != "" {
		j.failed++
		b.stats.Failed++
	}
	if j.done == len(j.tasks) {
		j.finishedAt = b.now()
		close(j.finished)
	}
	return api.DoneReply{Proto: api.Version, Accepted: true}, nil
}

// sameResult reports byte-identity of the fields that constitute a
// task's payload (the determinism contract: Text, Data and Err; never
// timings or worker stamps).
func sameResult(a, c api.TaskResult) bool {
	return a.Text == c.Text && a.Err == c.Err && bytes.Equal(a.Data, c.Data)
}

// dropLease deactivates l and unlinks it from its worker and task (it
// stays in b.leases for duplicate detection until its job is swept).
func (b *Broker) dropLease(l *lease) {
	if !l.active {
		return
	}
	l.active = false
	delete(l.t.leases, l.id)
	if w := b.workers[l.worker]; w != nil {
		delete(w.leases, l.id)
	}
}

// releaseLeases deactivates every remaining active lease of t (its
// result just landed, or its job was canceled). The holders keep
// computing — their TaskDone will be answered as duplicate/discarded.
func (b *Broker) releaseLeases(t *task) {
	for _, l := range t.leases {
		l.active = false
		if w := b.workers[l.worker]; w != nil {
			delete(w.leases, l.id)
		}
	}
	clear(t.leases)
}

// sweep (callers hold mu) applies the clock: expired leases requeue
// their tasks, silent workers are dropped, finished jobs past retention
// are forgotten. Lazy sweeping on every entry point keeps the broker
// timer-free and fully deterministic under an injected clock.
func (b *Broker) sweep() {
	now := b.now()
	// Silent workers first: dropping one releases all its leases.
	for id, w := range b.workers {
		if now.Sub(w.lastSeen) > b.cfg.WorkerExpiry {
			for _, l := range w.leases {
				l.active = false
				delete(l.t.leases, l.id)
				b.requeue(l.t)
			}
			delete(b.workers, id)
		}
	}
	for _, l := range b.leases {
		if l.active && now.After(l.deadline) {
			b.dropLease(l)
			b.requeue(l.t)
		}
	}
	for id, j := range b.jobs {
		if j.complete() && now.Sub(j.finishedAt) > b.cfg.JobRetention {
			for lid, l := range b.leases {
				if l.t.job == j {
					delete(b.leases, lid)
				}
			}
			delete(b.jobs, id)
		}
	}
}

// requeue returns a leased task to its tenant queue after its last
// active lease vanished (expiry or worker death). Tasks still covered
// by another lease (a hedge) stay leased.
func (b *Broker) requeue(t *task) {
	if t.state != taskLeased || len(t.leases) > 0 {
		return
	}
	t.state = taskPending
	b.tenantFor(t.job.tenant).insert(t)
	b.stats.Requeues++
	b.wakeAll()
}

// Stats snapshots the broker.
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sweep()
	s := b.stats
	for _, tq := range b.tenants {
		s.Pending += len(tq.q)
	}
	seen := make(map[*task]bool)
	for _, l := range b.leases {
		if l.active && !seen[l.t] {
			seen[l.t] = true
			s.Leased++
		}
	}
	s.Workers = len(b.workers)
	s.Jobs = len(b.jobs)
	return s
}
