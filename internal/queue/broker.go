// Package queue implements the dlexec2 job broker: a persistent
// in-daemon queue that takes job submissions from schedulers and hands
// the individual tasks to workers through pull-based leases.
//
// The broker is transport-agnostic — internal/remote wraps it in HTTP —
// and deliberately knows nothing about experiments: a task is an opaque
// api.TaskSpec routed by (tenant, priority, submission order). Four
// mechanisms make it a service rather than a dispatcher:
//
//   - Weighted per-tenant fairness. Pending tasks queue per tenant, and
//     dispatch picks the tenant with the lowest virtual time
//     (served/weight, stride scheduling), so a tenant that floods the
//     queue still only gets its weighted share while others have work.
//     Priority orders tasks within a tenant, never across tenants.
//
//   - Leases. A dispatched task is not gone, it is leased: the worker
//     must finish or renew within the TTL or the task requeues. Worker
//     death needs no failure detector beyond the clock.
//
//   - Dynamic membership. Workers register (Hello), stay alive by
//     polling or heartbeating, and leave by draining. A silent worker
//     expires after a few TTLs and its leases requeue.
//
//   - Hedged re-dispatch. When a poller has capacity and the queue is
//     empty, a task whose lease has been outstanding longer than the
//     hedge threshold is dispatched a second time. This is safe — not
//     merely tolerable — because tasks are deterministic and
//     cache-keyed: the first result wins and the loser is verified to
//     be a byte-identical duplicate (observable in Stats and DoneReply
//     as a cache hit).
//
// Every public method is safe for concurrent use. Time is injectable
// (Config.Now) and all expiry is evaluated lazily on access, so tests
// drive lease expiry, hedging and membership timeouts with a fake clock
// and zero sleeps.
package queue

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
)

// Defaults for Config zero values.
const (
	DefaultLeaseTTL = 30 * time.Second
	// defaultWorkerExpiryTTLs scales LeaseTTL into how long a worker may
	// stay completely silent (no poll, heartbeat, renew or done) before
	// its registration and leases are dropped.
	defaultWorkerExpiryTTLs = 3
	// defaultJobRetention is how long a finished job's status (and its
	// leases, for duplicate detection) stay queryable.
	defaultJobRetention = 10 * time.Minute
)

// ResultPlane is the broker's read-side view of the fleet result store
// (internal/resultplane): Lookup answers a task's fully seeded cache
// key with the persisted result, if the plane holds one. The broker
// consults it at submit time and completes already-computed tasks
// without ever granting a lease. Implementations must degrade — a dead
// plane looks like a miss — and must tolerate being called outside any
// broker lock (lookups block on the network).
type ResultPlane interface {
	Lookup(ctx context.Context, key string) (api.CachedResult, bool)
}

// Config tunes a Broker. The zero value is usable.
type Config struct {
	// LeaseTTL is the lease duration; 0 means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// HedgeAfter is how long a task's oldest lease may be outstanding
	// before an idle poller is offered a duplicate lease for it; 0
	// disables hedging. Each task gets at most one hedge at a time, and
	// never on the worker already holding it.
	HedgeAfter time.Duration
	// Weights assigns per-tenant fairness weights; tenants absent from
	// the map (and the map being nil) weigh 1. Weights below 1 read
	// as 1.
	Weights map[string]int
	// WorkerExpiry is how long a silent worker stays registered;
	// 0 means 3×LeaseTTL.
	WorkerExpiry time.Duration
	// JobRetention is how long finished/canceled jobs stay queryable;
	// 0 means 10 minutes.
	JobRetention time.Duration
	// MaxQueued caps every tenant's pending queue depth (admission
	// control): a submission that would push the queue past the limit is
	// rejected with queue_full. 0 means unlimited. Requeues of
	// already-admitted tasks are never gated, and neither is journal
	// replay — limits apply to new work only.
	MaxQueued int
	// MaxQueuedTenant overrides MaxQueued per tenant (0 or negative =
	// unlimited for that tenant).
	MaxQueuedTenant map[string]int
	// MaxSubmitRate caps every tenant's sustained submission rate in
	// tasks per second (token bucket with a one-second burst): a
	// submission the bucket cannot cover is rejected with rate_limited
	// and a Retry-After hint. 0 means unlimited. Where MaxQueued bounds
	// standing backlog, this bounds arrival speed — a fleet of clients
	// in a retry storm is shed here before it can saturate the journal.
	MaxSubmitRate int
	// MaxSubmitRateTenant overrides MaxSubmitRate per tenant (0 or
	// negative = unlimited for that tenant).
	MaxSubmitRateTenant map[string]int
	// Journal, when non-nil, makes the backlog crash-safe: submissions,
	// grants, completions and cancels are journaled (see OpenJournal),
	// and New replays + compacts the journal before serving.
	Journal *Journal
	// Plane, when non-nil, makes the broker cache-aware: cache-keyed
	// tasks are looked up in the result plane at submit time, and hits
	// complete immediately (journaled like worker results) without a
	// lease. A fully plane-resident job finishes with zero workers.
	Plane ResultPlane
	// Follower starts the broker as a replication follower: read-only,
	// continuously applying a primary's journal stream (ApplyReplicated)
	// until promoted. Mutations are refused with not_leader.
	Follower bool
	// PrimaryAddr is the address a follower redirects mutations to (the
	// Primary hint on not_leader errors) while it is not the leader.
	PrimaryAddr string
	// Now is the clock; nil means time.Now. Tests inject a fake.
	Now func() time.Time
}

// Stats is a point-in-time broker census.
type Stats struct {
	// Pending tasks are queued, waiting for a poller.
	Pending int
	// Leased tasks are out on at least one active lease.
	Leased int
	// Workers counts live registrations.
	Workers int
	// Jobs counts retained jobs (queued, running and recently done).
	Jobs int
	// Submitted / Completed / Failed count tasks over the broker's
	// lifetime; Failed is the subset of Completed with a task error.
	Submitted, Completed, Failed int
	// Requeues counts lease expiries that put a task back in the queue.
	Requeues int
	// Hedges counts duplicate leases granted for stragglers.
	Hedges int
	// Duplicates counts results that arrived after the task was already
	// done; DupCacheHits is the subset whose bytes matched the recorded
	// winner (all of them, when tasks are deterministic).
	Duplicates, DupCacheHits int
	// Rejected counts job submissions refused by admission control
	// (queue_full).
	Rejected int
	// RateLimited counts job submissions refused by the token-bucket
	// rate limiter (rate_limited).
	RateLimited int
	// PlaneHits counts tasks completed straight from the result plane at
	// submit time (no lease ever granted).
	PlaneHits int
}

type taskState uint8

const (
	taskPending taskState = iota
	taskLeased
	taskDone
	taskCanceled
)

// task is one queued unit.
type task struct {
	id    string // "<job id>/<index>", for logs
	job   *job
	idx   int
	spec  api.TaskSpec
	seq   uint64 // global submission order, the FIFO tie-breaker
	state taskState
	// enqueued is when the task last entered the pending queue (submit,
	// replay or requeue); the metrics queue-age gauge reads it.
	enqueued time.Time
	// granted records that a grant entry was seen during replay or
	// replication while the task was pending: the primary had it out on
	// a lease that did not survive. Promote reports these as requeued —
	// a takeover turns live leases into expiry→requeue.
	granted bool
	// leases holds the active leases (normally one; two while hedged).
	leases map[string]*lease
	result *api.TaskResult
}

// job is one submission: tasks sharing tenant and priority.
type job struct {
	id       string
	tenant   string
	priority int
	tasks    []*task
	done     int
	failed   int
	canceled bool
	// finished closes when the job reaches JobDone or JobCanceled
	// (WaitStatus parks on it).
	finished   chan struct{}
	finishedAt time.Time
}

func (j *job) complete() bool { return j.canceled || j.done == len(j.tasks) }

func (j *job) state() api.JobState {
	switch {
	case j.canceled:
		return api.JobCanceled
	case j.done == len(j.tasks):
		return api.JobDone
	case j.done > 0 || j.running():
		return api.JobRunning
	default:
		return api.JobQueued
	}
}

func (j *job) running() bool {
	for _, t := range j.tasks {
		if t.state == taskLeased {
			return true
		}
	}
	return false
}

// lease is one grant of one task to one worker.
type lease struct {
	id       string
	t        *task
	worker   string
	start    time.Time
	deadline time.Time
	hedged   bool
	// active is false once the lease expired, was superseded by a
	// recorded result, or its worker died. Inactive leases are kept (until
	// their job is swept) so a late TaskDone is recognised as a duplicate
	// instead of an unknown lease.
	active bool
	// progress is the worker's latest heartbeat for this lease
	// (piggybacked on renewals); progressAt is when it arrived, seeded
	// with the grant time so progress age starts at lease age.
	progress   *api.TaskProgress
	progressAt time.Time
}

// workerRec is one live registration.
type workerRec struct {
	id       string
	name     string
	capacity int
	lastSeen time.Time
	draining bool
	leases   map[string]*lease
}

// tenantQ is one tenant's pending queue plus its fairness state and
// submission token bucket.
type tenantQ struct {
	name   string
	weight int
	limit  int    // admission cap on len(q); 0 = unlimited
	served uint64 // tasks dispatched, the stride-scheduling numerator
	q      []*task

	// Token bucket (rate > 0 only): refills at rate tokens/second up to
	// a one-second burst; each submitted task costs one token.
	rate     int
	tokens   float64
	refilled time.Time
}

// takeTokens refills the bucket for the time elapsed and tries to pay
// for need tasks. A full bucket always admits — even a job larger than
// the burst — letting its balance go negative (debt), so oversized
// jobs are delayed, not starved. The return value is 0 on admission,
// otherwise how long until the bucket can cover the job (the
// Retry-After hint).
func (tq *tenantQ) takeTokens(need int, now time.Time) time.Duration {
	burst := float64(tq.rate)
	if el := now.Sub(tq.refilled).Seconds(); el > 0 {
		tq.tokens += el * float64(tq.rate)
		if tq.tokens > burst {
			tq.tokens = burst
		}
	}
	tq.refilled = now
	if tq.tokens >= float64(need) || tq.tokens >= burst {
		tq.tokens -= float64(need)
		return 0
	}
	// Wait until either need tokens exist or the bucket fills, whichever
	// comes first.
	deficit := float64(need) - tq.tokens
	if full := burst - tq.tokens; full < deficit {
		deficit = full
	}
	wait := time.Duration(deficit / float64(tq.rate) * float64(time.Second))
	if wait <= 0 {
		wait = time.Millisecond
	}
	return wait
}

// insert places t keeping the dispatch order invariant: priority
// descending, then submission sequence ascending. A requeued task
// re-enters at its original position relative to its peers.
func (tq *tenantQ) insert(t *task) {
	i := sort.Search(len(tq.q), func(i int) bool {
		if tq.q[i].job.priority != t.job.priority {
			return tq.q[i].job.priority < t.job.priority
		}
		return tq.q[i].seq > t.seq
	})
	tq.q = append(tq.q, nil)
	copy(tq.q[i+1:], tq.q[i:])
	tq.q[i] = t
}

// Broker is the queue service. See the package comment for semantics.
type Broker struct {
	mu  sync.Mutex
	cfg Config
	now func() time.Time

	seq     uint64 // id source (jobs, leases, workers, task order)
	jobs    map[string]*job
	leases  map[string]*lease
	workers map[string]*workerRec
	tenants map[string]*tenantQ

	// wake is closed and replaced whenever new work becomes available;
	// long-polls park on it.
	wake chan struct{}

	// Replication role state. role gates mutations (only a primary
	// accepts them); epoch is the fencing epoch (see Promote/Fence);
	// primaryAddr is the redirect hint carried on not_leader errors;
	// repl is the follower-side cursor and application counters.
	role        Role
	epoch       int64
	primaryAddr string
	repl        replState

	stats Stats
}

// New builds a Broker from cfg (zero value fine).
func New(cfg Config) *Broker {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.WorkerExpiry <= 0 {
		cfg.WorkerExpiry = defaultWorkerExpiryTTLs * cfg.LeaseTTL
	}
	if cfg.JobRetention <= 0 {
		cfg.JobRetention = defaultJobRetention
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	b := &Broker{
		cfg:     cfg,
		now:     now,
		jobs:    make(map[string]*job),
		leases:  make(map[string]*lease),
		workers: make(map[string]*workerRec),
		tenants: make(map[string]*tenantQ),
		wake:    make(chan struct{}),
		// Every broker starts at epoch 1 (the implicit pre-HA epoch), so
		// the first promotion anywhere mints epoch 2 and strictly
		// outranks a zombie primary that never saw an epoch entry.
		epoch:       1,
		primaryAddr: cfg.PrimaryAddr,
	}
	if cfg.Follower {
		b.role = RoleFollower
	}
	if cfg.Journal != nil {
		b.replayJournal(cfg.Journal)
	}
	return b
}

// LeaseTTL reports the configured lease duration (advertised in
// HelloReply).
func (b *Broker) LeaseTTL() time.Duration { return b.cfg.LeaseTTL }

// nextID mints a prefixed sequential id. Sequential — not random — ids
// keep broker behavior fully deterministic under test.
func (b *Broker) nextID(prefix string) string {
	b.seq++
	return fmt.Sprintf("%s%d", prefix, b.seq)
}

// wakeAll releases every parked long-poll (new work arrived).
func (b *Broker) wakeAll() {
	close(b.wake)
	b.wake = make(chan struct{})
}

// tenantFor returns (creating on demand) the tenant's queue.
func (b *Broker) tenantFor(name string) *tenantQ {
	tq := b.tenants[name]
	if tq == nil {
		w := 1
		if b.cfg.Weights != nil && b.cfg.Weights[name] > 1 {
			w = b.cfg.Weights[name]
		}
		limit := b.cfg.MaxQueued
		if l, ok := b.cfg.MaxQueuedTenant[name]; ok {
			limit = l
		}
		if limit < 0 {
			limit = 0
		}
		rate := b.cfg.MaxSubmitRate
		if r, ok := b.cfg.MaxSubmitRateTenant[name]; ok {
			rate = r
		}
		if rate < 0 {
			rate = 0
		}
		tq = &tenantQ{name: name, weight: w, limit: limit, rate: rate}
		if rate > 0 {
			// Start full: the first second's burst is free.
			tq.tokens = float64(rate)
			tq.refilled = b.now()
		}
		b.tenants[name] = tq
	}
	return tq
}

// Submit enqueues a job and returns its id. Admission control may
// reject it with queue_full (retryable); journaled brokers fsync the
// submission before replying, so an acknowledged job survives a crash.
// On a cache-aware broker, tasks the result plane already holds are
// completed at submit and never queue.
func (b *Broker) Submit(s api.JobSubmit) (api.SubmitReply, error) {
	if err := s.Validate(); err != nil {
		return api.SubmitReply{}, err
	}
	if err := b.roleGate(); err != nil {
		return api.SubmitReply{}, err
	}
	hits := b.prefetchPlane(s)
	b.mu.Lock()
	defer b.mu.Unlock()
	// Re-check under the lock: the role may have flipped (a fence
	// landing) between the fast-path gate and here.
	if err := b.roleGateLocked(); err != nil {
		return api.SubmitReply{}, err
	}
	b.sweep()
	id, err := b.submitLocked(s, hits)
	if err != nil {
		return api.SubmitReply{}, err
	}
	b.journalSyncLocked()
	b.wakeAll()
	return api.SubmitReply{Proto: api.Version, ID: id}, nil
}

// prefetchPlane consults the result plane for every cache-keyed task of
// a validated submission. It runs outside b.mu — lookups block on the
// network — and any failure (or an error-carrying entry) is a miss.
func (b *Broker) prefetchPlane(s api.JobSubmit) map[int]api.CachedResult {
	p := b.cfg.Plane
	if p == nil {
		return nil
	}
	var hits map[int]api.CachedResult
	for i, spec := range s.Tasks {
		if spec.CacheKey == "" {
			continue
		}
		cr, ok := p.Lookup(context.Background(), spec.CacheKey)
		if !ok || cr.Err != "" {
			continue
		}
		if hits == nil {
			hits = make(map[int]api.CachedResult)
		}
		hits[i] = cr
	}
	return hits
}

// planeResult synthesizes the TaskResult for a submit-time plane hit:
// spec fields are echoed (so Validate passes on the scheduler side) and
// the worker stamp names the plane, making replayed completions
// distinguishable in reports and logs.
func planeResult(spec api.TaskSpec, cr api.CachedResult) api.TaskResult {
	return api.TaskResult{
		Proto: api.Version, Job: spec.Job, Shard: spec.Shard, Key: spec.Key,
		Text: cr.Text, Data: cr.Data, Err: cr.Err,
		DurationNS: cr.DurationNS, Worker: "result-plane",
	}
}

// SubmitBatch enqueues several jobs in one call with per-job outcomes:
// admission control rejects jobs individually, so one full tenant fails
// only its own submissions, and a single fsync covers the whole batch —
// the round-trip (and durability) cost of a sharded run's submission
// wave is O(1), not O(tasks).
func (b *Broker) SubmitBatch(bt api.JobSubmitBatch) (api.SubmitBatchReply, error) {
	if err := bt.Validate(); err != nil {
		return api.SubmitBatchReply{}, err
	}
	if err := b.roleGate(); err != nil {
		return api.SubmitBatchReply{}, err
	}
	hits := make([]map[int]api.CachedResult, len(bt.Jobs))
	for i, s := range bt.Jobs {
		hits[i] = b.prefetchPlane(s)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.roleGateLocked(); err != nil {
		return api.SubmitBatchReply{}, err
	}
	b.sweep()
	rep := api.SubmitBatchReply{Proto: api.Version, Jobs: make([]api.SubmitItem, len(bt.Jobs))}
	accepted := false
	for i, s := range bt.Jobs {
		id, err := b.submitLocked(s, hits[i])
		if err != nil {
			ae, ok := api.AsError(err)
			if !ok {
				ae = api.Errf(api.CodeInternal, "%v", err)
			}
			rep.Jobs[i] = api.SubmitItem{Err: ae}
			continue
		}
		rep.Jobs[i] = api.SubmitItem{ID: id}
		accepted = true
	}
	if accepted {
		b.journalSyncLocked()
		b.wakeAll()
	}
	return rep, nil
}

// submitLocked admits one validated submission against its tenant's
// depth limit, enqueues it, and journals it (unsynced — the caller
// fsyncs once per submission wave before replying). hits maps task
// indices to prefetched plane results: those tasks complete at submit,
// so admission control and the rate limiter charge only the tasks that
// actually queue — cached work is free.
func (b *Broker) submitLocked(s api.JobSubmit, hits map[int]api.CachedResult) (string, error) {
	tenant := s.Tenant
	if tenant == "" {
		tenant = api.DefaultTenant
	}
	uncached := len(s.Tasks) - len(hits)
	tq := b.tenantFor(tenant)
	if tq.limit > 0 && len(tq.q)+uncached > tq.limit {
		b.stats.Rejected++
		return "", api.Errf(api.CodeQueueFull,
			"tenant %q queue is full (%d pending, limit %d, job adds %d tasks); back off and resubmit",
			tenant, len(tq.q), tq.limit, uncached)
	}
	if tq.rate > 0 && uncached > 0 {
		if wait := tq.takeTokens(uncached, b.now()); wait > 0 {
			b.stats.RateLimited++
			ae := api.Errf(api.CodeRateLimited,
				"tenant %q is over its submission rate (%d tasks/s, job adds %d); retry in %v",
				tenant, tq.rate, uncached, wait)
			ae.RetryAfterNS = int64(wait)
			return "", ae
		}
	}
	j := &job{
		id:       b.nextID("j"),
		tenant:   tenant,
		priority: s.Priority,
		finished: make(chan struct{}),
	}
	now := b.now()
	for i, spec := range s.Tasks {
		t := &task{
			id:       fmt.Sprintf("%s/%d", j.id, i),
			job:      j,
			idx:      i,
			spec:     spec,
			seq:      b.seq + uint64(i) + 1,
			enqueued: now,
			leases:   make(map[string]*lease),
		}
		j.tasks = append(j.tasks, t)
		if cr, ok := hits[i]; ok {
			res := planeResult(spec, cr)
			t.result = &res
			t.state = taskDone
			j.done++
			b.stats.Completed++
			b.stats.PlaneHits++
			continue
		}
		tq.insert(t)
	}
	b.seq += uint64(len(s.Tasks))
	b.jobs[j.id] = j
	b.stats.Submitted += len(j.tasks)
	b.journalAppendLocked(journalEntry{
		Kind: entrySubmit, Job: j.id,
		Tenant: tenant, Priority: s.Priority, Tasks: s.Tasks,
	}, false)
	// Plane completions are journaled like worker results, so a replay
	// restores them done instead of re-queueing the tasks. The caller's
	// single fsync covers the whole wave.
	for _, t := range j.tasks {
		if t.state == taskDone {
			b.journalAppendLocked(journalEntry{
				Kind: entryDone, Job: j.id, Task: t.idx, Result: t.result,
			}, false)
		}
	}
	if j.complete() {
		// Every task was plane-resident: the job is born finished —
		// zero leases, zero workers.
		j.finishedAt = now
		close(j.finished)
	}
	return j.id, nil
}

// journalSyncLocked makes everything appended so far durable (no-op
// without a journal).
func (b *Broker) journalSyncLocked() {
	if b.cfg.Journal != nil {
		b.cfg.Journal.sync()
	}
}

// journalAppendLocked writes one journal entry (no-op without a
// journal) and, when the append rolled the active segment over, kicks
// off background compaction. The snapshot must be taken here, under
// b.mu in the same critical section as the rotating append: every
// journal write happens after the state change it records and under
// this lock, so right now the live state equals exactly the sealed
// segments' effect (the fresh active segment is empty) — folding the
// snapshot over them neither loses nor double-counts an entry.
func (b *Broker) journalAppendLocked(e journalEntry, sync bool) {
	jl := b.cfg.Journal
	if jl == nil {
		return
	}
	if !jl.append(e, sync) {
		return
	}
	if claimed := jl.claimSealed(); claimed != nil {
		jl.compactAsync(claimed, b.liveEntriesLocked())
	}
}

// Status reports a job's progress; Results is populated once done.
func (b *Broker) Status(id string) (api.JobStatus, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sweep()
	j := b.jobs[id]
	if j == nil {
		return api.JobStatus{}, api.JobNotFound(id)
	}
	return b.statusLocked(j), nil
}

func (b *Broker) statusLocked(j *job) api.JobStatus {
	st := api.JobStatus{
		Proto:    api.Version,
		ID:       j.id,
		Tenant:   j.tenant,
		Priority: j.priority,
		State:    j.state(),
		Total:    len(j.tasks),
		Done:     j.done,
		Failed:   j.failed,
	}
	if st.State == api.JobDone {
		st.Results = make([]api.TaskResult, len(j.tasks))
		for i, t := range j.tasks {
			st.Results[i] = *t.result
		}
	}
	return st
}

// WaitStatus blocks until the job finishes (done or canceled), the wait
// elapses, or ctx cancels, then reports its status — the long-poll
// backing of the submit side. wait <= 0 degrades to Status.
func (b *Broker) WaitStatus(ctx context.Context, id string, wait time.Duration) (api.JobStatus, error) {
	b.mu.Lock()
	b.sweep()
	j := b.jobs[id]
	if j == nil {
		b.mu.Unlock()
		return api.JobStatus{}, api.JobNotFound(id)
	}
	if wait <= 0 || j.complete() {
		st := b.statusLocked(j)
		b.mu.Unlock()
		return st, nil
	}
	fin := j.finished
	b.mu.Unlock()

	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-fin:
	case <-timer.C:
	case <-ctx.Done():
		return api.JobStatus{}, ctx.Err()
	}
	return b.Status(id)
}

// Cancel cancels a job: pending tasks leave the queue immediately;
// leased tasks keep running on their workers but their results are
// discarded on arrival (the lease is already paid for — the broker just
// stops caring).
func (b *Broker) Cancel(req api.CancelRequest) error {
	if err := api.CheckProto(req.Proto); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.roleGateLocked(); err != nil {
		return err
	}
	b.sweep()
	j := b.jobs[req.ID]
	if j == nil {
		return api.JobNotFound(req.ID)
	}
	if j.complete() {
		if j.canceled {
			return nil // idempotent
		}
		return api.Errf(api.CodeCanceled, "job %s already finished; cancel has no effect", j.id)
	}
	j.canceled = true
	j.finishedAt = b.now()
	tq := b.tenants[j.tenant]
	for _, t := range j.tasks {
		switch t.state {
		case taskPending:
			tq.remove(t)
			t.state = taskCanceled
		case taskLeased:
			t.state = taskCanceled
			b.releaseLeases(t)
		}
	}
	close(j.finished)
	b.journalAppendLocked(journalEntry{Kind: entryCancel, Job: j.id}, true)
	return nil
}

// remove drops t from the pending queue (cancel path).
func (tq *tenantQ) remove(t *task) {
	for i, q := range tq.q {
		if q == t {
			tq.q = append(tq.q[:i], tq.q[i+1:]...)
			return
		}
	}
}

// Hello registers a worker. This is where a mixed-fleet upgrade fails
// loudly: an incompatible protocol revision is rejected before the
// worker ever holds a lease.
func (b *Broker) Hello(h api.WorkerHello) (api.HelloReply, error) {
	if err := h.Validate(); err != nil {
		return api.HelloReply{}, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.roleGateLocked(); err != nil {
		return api.HelloReply{}, err
	}
	b.sweep()
	w := &workerRec{
		id:       b.nextID("w"),
		name:     h.Name,
		capacity: h.Capacity,
		lastSeen: b.now(),
		leases:   make(map[string]*lease),
	}
	b.workers[w.id] = w
	return api.HelloReply{
		Proto:      api.Version,
		WorkerID:   w.id,
		LeaseTTLNS: int64(b.cfg.LeaseTTL),
	}, nil
}

// Heartbeat refreshes a worker's liveness.
func (b *Broker) Heartbeat(hb api.Heartbeat) error {
	if err := api.CheckProto(hb.Proto); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.roleGateLocked(); err != nil {
		return err
	}
	b.sweep()
	w := b.workers[hb.WorkerID]
	if w == nil {
		return api.WorkerNotFound(hb.WorkerID)
	}
	w.lastSeen = b.now()
	return nil
}

// Drain marks a worker as leaving: no new leases are offered to it; its
// in-flight leases finish normally.
func (b *Broker) Drain(d api.DrainRequest) error {
	if err := api.CheckProto(d.Proto); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.roleGateLocked(); err != nil {
		return err
	}
	w := b.workers[d.WorkerID]
	if w == nil {
		return api.WorkerNotFound(d.WorkerID)
	}
	w.draining = true
	w.lastSeen = b.now()
	return nil
}

// Poll grants up to req.Max leases to the worker. With req.WaitNS > 0
// and nothing to dispatch, the call parks until work arrives, the wait
// elapses, or ctx cancels (long poll).
func (b *Broker) Poll(ctx context.Context, req api.PollRequest) (api.PollReply, error) {
	if err := api.CheckProto(req.Proto); err != nil {
		return api.PollReply{}, err
	}
	max := req.Max
	if max <= 0 {
		max = 1
	}
	deadline := time.Time{}
	if req.WaitNS > 0 {
		deadline = time.Now().Add(time.Duration(req.WaitNS))
	}
	for {
		b.mu.Lock()
		if err := b.roleGateLocked(); err != nil {
			b.mu.Unlock()
			return api.PollReply{}, err
		}
		b.sweep()
		w := b.workers[req.WorkerID]
		if w == nil {
			b.mu.Unlock()
			return api.PollReply{}, api.WorkerNotFound(req.WorkerID)
		}
		w.lastSeen = b.now()
		var leases []api.Lease
		if !w.draining {
			for len(leases) < max {
				l := b.dispatchOne(w)
				if l == nil {
					break
				}
				leases = append(leases, api.Lease{
					ID:         l.id,
					Task:       l.t.spec,
					DeadlineNS: l.deadline.UnixNano(),
					Hedged:     l.hedged,
				})
			}
		}
		wake := b.wake
		next := b.nextEventLocked()
		b.mu.Unlock()
		if len(leases) > 0 || deadline.IsZero() || !time.Now().Before(deadline) {
			return api.PollReply{Proto: api.Version, Leases: leases}, nil
		}
		// Park until new work (wake), the long-poll deadline, or the next
		// time-triggered dispatch change — a lease expiring into a requeue
		// or a straggler becoming hedge-eligible. Without the latter a
		// parked poll would sit out the whole wait while a requeued task
		// sat in the queue (expiry is evaluated lazily, on entry).
		until := time.Until(deadline)
		if !next.IsZero() {
			if d := next.Sub(b.now()) + time.Millisecond; d < until {
				until = d
			}
			if until < time.Millisecond {
				until = time.Millisecond
			}
		}
		timer := time.NewTimer(until)
		select {
		case <-wake:
			timer.Stop()
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return api.PollReply{}, ctx.Err()
		}
	}
}

// nextEventLocked returns the earliest instant (broker clock) at which
// the passage of time alone could make new dispatch possible: an active
// lease expiring (requeue) or a single-leased task crossing the hedge
// threshold. Zero when no such instant is pending.
func (b *Broker) nextEventLocked() time.Time {
	var next time.Time
	sooner := func(t time.Time) {
		if next.IsZero() || t.Before(next) {
			next = t
		}
	}
	for _, l := range b.leases {
		if !l.active {
			continue
		}
		sooner(l.deadline)
		if b.cfg.HedgeAfter > 0 && len(l.t.leases) == 1 {
			sooner(l.start.Add(b.cfg.HedgeAfter))
		}
	}
	return next
}

// dispatchOne picks the next task for w, preferring fresh pending work
// (weighted-fair across tenants, priority-then-FIFO within one) and
// falling back to hedging a straggler. Returns nil when there is
// nothing for this worker.
func (b *Broker) dispatchOne(w *workerRec) *lease {
	// Weighted fair pick: among tenants with pending work, the lowest
	// virtual time served/weight wins; ties break on tenant name so the
	// schedule is deterministic.
	var pick *tenantQ
	for _, tq := range b.tenants {
		if len(tq.q) == 0 {
			continue
		}
		if pick == nil {
			pick = tq
			continue
		}
		a, c := tq.served*uint64(pick.weight), pick.served*uint64(tq.weight)
		if a < c || (a == c && tq.name < pick.name) {
			pick = tq
		}
	}
	if pick != nil {
		t := pick.q[0]
		pick.q = pick.q[1:]
		pick.served++
		return b.grantLocked(t, w, false)
	}
	return b.hedgeOne(w)
}

// hedgeOne grants a duplicate lease for the longest-outstanding
// straggler, if hedging is on and one qualifies: its oldest active
// lease is older than HedgeAfter, it has no hedge out already, and this
// worker doesn't hold it. Candidates are scanned in task submission
// order so the choice is deterministic.
func (b *Broker) hedgeOne(w *workerRec) *lease {
	if b.cfg.HedgeAfter <= 0 {
		return nil
	}
	now := b.now()
	var cand *task
	var candStart time.Time
	for _, j := range b.jobs {
		if j.canceled {
			continue
		}
		for _, t := range j.tasks {
			if t.state != taskLeased || len(t.leases) != 1 {
				continue
			}
			var start time.Time
			mine := false
			for _, l := range t.leases {
				start = l.start
				mine = l.worker == w.id
			}
			if mine || now.Sub(start) < b.cfg.HedgeAfter {
				continue
			}
			if cand == nil || start.Before(candStart) ||
				(start.Equal(candStart) && t.seq < cand.seq) {
				cand, candStart = t, start
			}
		}
	}
	if cand == nil {
		return nil
	}
	b.stats.Hedges++
	return b.grantLocked(cand, w, true)
}

// grantLocked creates and indexes a lease of t to w.
func (b *Broker) grantLocked(t *task, w *workerRec, hedged bool) *lease {
	now := b.now()
	l := &lease{
		id:         b.nextID("l"),
		t:          t,
		worker:     w.id,
		start:      now,
		deadline:   now.Add(b.cfg.LeaseTTL),
		hedged:     hedged,
		active:     true,
		progressAt: now,
	}
	t.state = taskLeased
	t.leases[l.id] = l
	w.leases[l.id] = l
	b.leases[l.id] = l
	// Unsynced: losing a grant record only costs a redundant,
	// byte-identical re-execution after replay.
	b.journalAppendLocked(journalEntry{
		Kind: entryGrant, Job: t.job.id, Task: t.idx, Worker: w.name,
	}, false)
	return l
}

// Renew extends the still-active leases named in req; expired or
// superseded leases are simply absent from the reply.
func (b *Broker) Renew(req api.LeaseRenew) (api.RenewReply, error) {
	if err := api.CheckProto(req.Proto); err != nil {
		return api.RenewReply{}, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.roleGateLocked(); err != nil {
		return api.RenewReply{}, err
	}
	b.sweep()
	w := b.workers[req.WorkerID]
	if w == nil {
		return api.RenewReply{}, api.WorkerNotFound(req.WorkerID)
	}
	w.lastSeen = b.now()
	reply := api.RenewReply{Proto: api.Version}
	for _, id := range req.LeaseIDs {
		l := w.leases[id]
		if l == nil || !l.active {
			continue
		}
		l.deadline = b.now().Add(b.cfg.LeaseTTL)
		if p := req.Progress[id]; p != nil {
			cp := *p
			l.progress = &cp
			l.progressAt = b.now()
		}
		if reply.Deadlines == nil {
			reply.Deadlines = make(map[string]int64)
		}
		reply.Deadlines[id] = l.deadline.UnixNano()
	}
	return reply, nil
}

// Fleet snapshots the live per-worker view: every registered worker
// with its active leases and their latest progress heartbeats. Workers
// sort by name (id as tie-breaker), leases oldest first, so the
// rendering is stable across polls.
func (b *Broker) Fleet() api.FleetStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sweep()
	now := b.now()
	fs := api.FleetStatus{Proto: api.Version, Workers: []api.FleetWorker{}}
	for _, w := range b.workers {
		fw := api.FleetWorker{
			ID: w.id, Name: w.name, Capacity: w.capacity,
			Draining:      w.draining,
			LastSeenAgeNS: now.Sub(w.lastSeen).Nanoseconds(),
		}
		for _, l := range w.leases {
			if !l.active {
				continue
			}
			fl := api.FleetLease{
				ID: l.id, Job: l.t.spec.Job, Shard: l.t.spec.Shard,
				Tenant:        l.t.job.tenant,
				AgeNS:         now.Sub(l.start).Nanoseconds(),
				ProgressAgeNS: now.Sub(l.progressAt).Nanoseconds(),
			}
			if l.progress != nil {
				cp := *l.progress
				fl.Progress = &cp
			}
			fw.Leases = append(fw.Leases, fl)
		}
		sort.Slice(fw.Leases, func(i, k int) bool {
			if fw.Leases[i].AgeNS != fw.Leases[k].AgeNS {
				return fw.Leases[i].AgeNS > fw.Leases[k].AgeNS
			}
			return fw.Leases[i].ID < fw.Leases[k].ID
		})
		fs.Workers = append(fs.Workers, fw)
	}
	sort.Slice(fs.Workers, func(i, k int) bool {
		if fs.Workers[i].Name != fs.Workers[k].Name {
			return fs.Workers[i].Name < fs.Workers[k].Name
		}
		return fs.Workers[i].ID < fs.Workers[k].ID
	})
	return fs
}

// Done records a lease's result. First result wins: if the task already
// finished (a hedge or an expired-lease re-dispatch got there first),
// the reply flags a duplicate and whether its bytes matched the winner.
// Results for canceled jobs are discarded.
func (b *Broker) Done(req api.TaskDone) (api.DoneReply, error) {
	if err := api.CheckProto(req.Proto); err != nil {
		return api.DoneReply{}, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.roleGateLocked(); err != nil {
		return api.DoneReply{}, err
	}
	b.sweep()
	if w := b.workers[req.WorkerID]; w != nil {
		w.lastSeen = b.now()
	}
	l := b.leases[req.LeaseID]
	if l == nil {
		return api.DoneReply{}, api.LeaseNotFound(req.LeaseID)
	}
	t := l.t
	if err := req.Result.Validate(t.spec); err != nil {
		return api.DoneReply{}, err
	}
	b.dropLease(l)
	switch t.state {
	case taskDone:
		b.stats.Duplicates++
		hit := sameResult(*t.result, req.Result)
		if hit {
			b.stats.DupCacheHits++
		}
		return api.DoneReply{Proto: api.Version, Duplicate: true, CacheHit: hit}, nil
	case taskCanceled:
		return api.DoneReply{Proto: api.Version}, nil
	case taskPending:
		// The lease expired and the task requeued, but the original
		// holder finished anyway — first result wins, so pull the task
		// back out of the queue before recording it.
		b.tenantFor(t.job.tenant).remove(t)
	}
	res := req.Result
	t.result = &res
	t.state = taskDone
	b.releaseLeases(t)
	j := t.job
	j.done++
	b.stats.Completed++
	if res.Err != "" {
		j.failed++
		b.stats.Failed++
	}
	if j.done == len(j.tasks) {
		j.finishedAt = b.now()
		close(j.finished)
	}
	// Synced before the reply: once the worker hears Accepted it
	// will never re-run this task, so the result must outlive a
	// crash.
	b.journalAppendLocked(journalEntry{
		Kind: entryDone, Job: j.id, Task: t.idx, Result: &res,
	}, true)
	return api.DoneReply{Proto: api.Version, Accepted: true}, nil
}

// sameResult reports byte-identity of the fields that constitute a
// task's payload (the determinism contract: Text, Data and Err; never
// timings or worker stamps).
func sameResult(a, c api.TaskResult) bool {
	return a.Text == c.Text && a.Err == c.Err && bytes.Equal(a.Data, c.Data)
}

// dropLease deactivates l and unlinks it from its worker and task (it
// stays in b.leases for duplicate detection until its job is swept).
func (b *Broker) dropLease(l *lease) {
	if !l.active {
		return
	}
	l.active = false
	delete(l.t.leases, l.id)
	if w := b.workers[l.worker]; w != nil {
		delete(w.leases, l.id)
	}
}

// releaseLeases deactivates every remaining active lease of t (its
// result just landed, or its job was canceled). The holders keep
// computing — their TaskDone will be answered as duplicate/discarded.
func (b *Broker) releaseLeases(t *task) {
	for _, l := range t.leases {
		l.active = false
		if w := b.workers[l.worker]; w != nil {
			delete(w.leases, l.id)
		}
	}
	clear(t.leases)
}

// sweep (callers hold mu) applies the clock: expired leases requeue
// their tasks, silent workers are dropped, finished jobs past retention
// are forgotten. Lazy sweeping on every entry point keeps the broker
// timer-free and fully deterministic under an injected clock.
func (b *Broker) sweep() {
	now := b.now()
	// Silent workers first: dropping one releases all its leases.
	for id, w := range b.workers {
		if now.Sub(w.lastSeen) > b.cfg.WorkerExpiry {
			for _, l := range w.leases {
				l.active = false
				delete(l.t.leases, l.id)
				b.requeue(l.t)
			}
			delete(b.workers, id)
		}
	}
	for _, l := range b.leases {
		if l.active && now.After(l.deadline) {
			b.dropLease(l)
			b.requeue(l.t)
		}
	}
	for id, j := range b.jobs {
		if j.complete() && now.Sub(j.finishedAt) > b.cfg.JobRetention {
			for lid, l := range b.leases {
				if l.t.job == j {
					delete(b.leases, lid)
				}
			}
			delete(b.jobs, id)
		}
	}
}

// requeue returns a leased task to its tenant queue after its last
// active lease vanished (expiry or worker death). Tasks still covered
// by another lease (a hedge) stay leased.
func (b *Broker) requeue(t *task) {
	if t.state != taskLeased || len(t.leases) > 0 {
		return
	}
	t.state = taskPending
	t.enqueued = b.now()
	b.tenantFor(t.job.tenant).insert(t)
	b.stats.Requeues++
	b.wakeAll()
}

// Stats snapshots the broker.
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sweep()
	s := b.stats
	for _, tq := range b.tenants {
		s.Pending += len(tq.q)
	}
	s.Leased = b.leasedLocked()
	s.Workers = len(b.workers)
	s.Jobs = len(b.jobs)
	return s
}

// leasedLocked counts tasks out on at least one active lease.
func (b *Broker) leasedLocked() int {
	n := 0
	seen := make(map[*task]bool)
	for _, l := range b.leases {
		if l.active && !seen[l.t] {
			seen[l.t] = true
			n++
		}
	}
	return n
}

// Metrics snapshots the broker as the /v2/metrics payload: the Stats
// counters plus per-tenant depth/age gauges and, on a journaled
// broker, the journal's counters.
func (b *Broker) Metrics() api.BrokerMetrics {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sweep()
	now := b.now()
	m := api.BrokerMetrics{
		Proto:        api.Version,
		Leased:       b.leasedLocked(),
		Workers:      len(b.workers),
		Jobs:         len(b.jobs),
		Submitted:    b.stats.Submitted,
		Completed:    b.stats.Completed,
		Failed:       b.stats.Failed,
		Requeues:     b.stats.Requeues,
		Hedges:       b.stats.Hedges,
		Duplicates:   b.stats.Duplicates,
		DupCacheHits: b.stats.DupCacheHits,
		Rejected:     b.stats.Rejected,
		RateLimited:  b.stats.RateLimited,
		PlaneHits:    b.stats.PlaneHits,
		Goroutines:   runtime.NumGoroutine(),
		Role:         b.role.String(),
		Epoch:        b.epoch,
	}
	if b.role == RoleFollower || b.repl.batches > 0 {
		rm := api.ReplicationMetrics{
			Segment: b.repl.cursorSeg, Offset: b.repl.cursorOff,
			PrimarySegment: b.repl.primarySeg, PrimaryOffset: b.repl.primaryOff,
			Applied: b.repl.applied, Duplicates: b.repl.duplicates,
			Skipped: b.repl.skipped, Batches: b.repl.batches,
			Restarts: b.repl.restarts,
		}
		if b.repl.primarySeg == b.repl.cursorSeg {
			rm.LagBytes = b.repl.primaryOff - b.repl.cursorOff
		} else {
			rm.LagBytes = -1 // whole segments behind; byte distance unknowable
		}
		if behind := b.repl.primarySeg - b.repl.cursorSeg; behind > 0 {
			rm.SegmentsBehind = behind
		}
		if !b.repl.lastContact.IsZero() {
			rm.LastContactAgeNS = now.Sub(b.repl.lastContact).Nanoseconds()
		}
		m.Replication = &rm
	}
	for _, l := range b.leases {
		if !l.active {
			continue
		}
		worker := l.worker
		if w := b.workers[l.worker]; w != nil {
			worker = w.name
		}
		m.Leases = append(m.Leases, api.LeaseMetrics{
			Lease: l.id, Worker: worker,
			Task:          fmt.Sprintf("%s[%d]", l.t.spec.Job, l.t.spec.Shard),
			AgeNS:         now.Sub(l.start).Nanoseconds(),
			ProgressAgeNS: now.Sub(l.progressAt).Nanoseconds(),
		})
	}
	sort.Slice(m.Leases, func(i, k int) bool {
		if m.Leases[i].AgeNS != m.Leases[k].AgeNS {
			return m.Leases[i].AgeNS > m.Leases[k].AgeNS
		}
		return m.Leases[i].Lease < m.Leases[k].Lease
	})
	names := make([]string, 0, len(b.tenants))
	for name := range b.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tq := b.tenants[name]
		tm := api.TenantMetrics{
			Tenant:    name,
			Weight:    tq.weight,
			Served:    int(tq.served),
			Pending:   len(tq.q),
			MaxQueued: tq.limit,
		}
		// Queue order is priority-then-FIFO, not age, so scan for the
		// oldest resident.
		for _, t := range tq.q {
			if d := now.Sub(t.enqueued).Nanoseconds(); d > tm.OldestAgeNS {
				tm.OldestAgeNS = d
			}
		}
		m.Pending += len(tq.q)
		m.Tenants = append(m.Tenants, tm)
	}
	if b.cfg.Journal != nil {
		jm := b.cfg.Journal.metrics()
		m.Journal = &jm
	}
	return m
}

// replayJournal rebuilds broker state from the journal, then compacts
// it. Runs inside New, before the broker is shared, so no locking.
//
// Each entry folds through applyEntryLocked — the same idempotent
// incremental application the replication follower uses live, so a
// broker restart and a journal stream land on identical state. Jobs
// are restored in journal (submission) order with fresh task sequence
// numbers, preserving the original FIFO; recorded results are
// reattached verbatim (byte-identical replies across the restart);
// tasks that were pending or leased-but-unfinished at crash time
// re-enter their tenant queue — a lease without a completion record is
// exactly the work a crashed broker must hand out again. Admission
// limits do not gate replay: everything in the journal was already
// admitted.
func (b *Broker) replayJournal(jl *Journal) {
	for _, e := range jl.load() {
		res := b.applyEntryLocked(e)
		// Skip accounting mirrors the wire contract: duplicate submits
		// (compaction leftovers) and undecodable/unresolvable submit or
		// done entries count, stale grants/cancels and re-delivered
		// results are silently idempotent.
		switch e.Kind {
		case entrySubmit:
			if res != applyApplied {
				jl.noteSkip("unusable submit entry for job %q", e.Job)
			}
		case entryDone:
			if res == applySkipped {
				jl.noteSkip("unusable done entry for job %q task %d", e.Job, e.Task)
			}
		case entryGrant, entryCancel, entryEpoch, entryCursor:
		default:
			jl.noteSkip("entry of unknown kind %q", e.Kind)
		}
	}
	jobs, tasks, requeued := 0, 0, 0
	for _, j := range b.jobs {
		jobs++
		tasks += len(j.tasks)
		for _, t := range j.tasks {
			if t.state == taskPending && t.granted {
				requeued++
			}
		}
	}
	jl.noteReplay(jobs, tasks, requeued)
	// Fold everything replayed into one snapshot segment, synchronously:
	// the next crash replays snapshot + whatever the fresh active
	// segment accumulates, not the whole history.
	if claimed := jl.claimSealed(); claimed != nil {
		jl.compactSegments(claimed, b.liveEntriesLocked())
	}
}

// applyResult classifies one journal entry's application.
type applyResult uint8

const (
	// applyApplied: the entry changed state (and is worth re-journaling
	// on a follower).
	applyApplied applyResult = iota
	// applyDuplicate: the state already reflects the entry — a
	// compaction leftover, a resume overlap, or a grant/result that a
	// recorded winner superseded. Idempotently skipped.
	applyDuplicate
	// applySkipped: the entry is unusable (unknown kind, bad indices,
	// missing fields, or referencing a job never seen).
	applySkipped
)

// applyEntryLocked folds one journal entry into live state. It is the
// single application path shared by startup replay and live journal
// streaming, and it is idempotent: re-applying any prefix (or the whole
// journal) after a resume leaves the state unchanged. Callers hold b.mu
// (or run before the broker is shared).
func (b *Broker) applyEntryLocked(e journalEntry) applyResult {
	switch e.Kind {
	case entrySubmit:
		if e.Job == "" || len(e.Tasks) == 0 {
			return applySkipped
		}
		if b.jobs[e.Job] != nil {
			return applyDuplicate
		}
		j := &job{
			id: e.Job, tenant: e.Tenant, priority: e.Priority,
			finished: make(chan struct{}),
		}
		tq := b.tenantFor(j.tenant)
		now := b.now()
		for i, spec := range e.Tasks {
			t := &task{
				id:       fmt.Sprintf("%s/%d", e.Job, i),
				job:      j,
				idx:      i,
				spec:     spec,
				seq:      b.seq + uint64(i) + 1,
				enqueued: now,
				leases:   make(map[string]*lease),
			}
			j.tasks = append(j.tasks, t)
			tq.insert(t)
		}
		b.seq += uint64(len(e.Tasks))
		// Keep the id sequence ahead of every applied job id so new ids
		// never collide with journaled ones.
		if n, ok := numericID(e.Job, "j"); ok && n > b.seq {
			b.seq = n
		}
		b.jobs[e.Job] = j
		b.stats.Submitted += len(j.tasks)
		return applyApplied
	case entryGrant:
		j := b.jobs[e.Job]
		if j == nil || e.Task < 0 || e.Task >= len(j.tasks) {
			return applySkipped
		}
		t := j.tasks[e.Task]
		if t.state != taskPending {
			return applyDuplicate
		}
		t.granted = true
		return applyApplied
	case entryDone:
		j := b.jobs[e.Job]
		if j == nil || e.Result == nil || e.Task < 0 || e.Task >= len(j.tasks) {
			return applySkipped
		}
		t := j.tasks[e.Task]
		if t.state == taskDone || t.state == taskCanceled {
			return applyDuplicate
		}
		if t.state == taskPending {
			b.tenantFor(j.tenant).remove(t)
		} else {
			b.releaseLeases(t)
		}
		res := *e.Result
		t.result = &res
		t.state = taskDone
		j.done++
		b.stats.Completed++
		if res.Err != "" {
			j.failed++
			b.stats.Failed++
		}
		if j.done == len(j.tasks) && !j.canceled {
			j.finishedAt = b.now()
			close(j.finished)
		}
		return applyApplied
	case entryCancel:
		j := b.jobs[e.Job]
		if j == nil {
			return applySkipped
		}
		if j.complete() {
			return applyDuplicate
		}
		j.canceled = true
		j.finishedAt = b.now()
		tq := b.tenantFor(j.tenant)
		for _, t := range j.tasks {
			switch t.state {
			case taskPending:
				tq.remove(t)
				t.state = taskCanceled
			case taskLeased:
				t.state = taskCanceled
				b.releaseLeases(t)
			}
		}
		close(j.finished)
		return applyApplied
	case entryEpoch:
		if e.Epoch <= 0 {
			return applySkipped
		}
		res := applyDuplicate
		if e.Epoch > b.epoch {
			b.epoch = e.Epoch
			res = applyApplied
		}
		// A fenced stamp re-fences this broker on replay — but never
		// demotes a configured follower, which is already read-only and
		// must stay promotable.
		if e.Fenced && b.role == RolePrimary {
			b.role = RoleFenced
			if e.Primary != "" {
				b.primaryAddr = e.Primary
			}
			res = applyApplied
		}
		return res
	case entryCursor:
		// Own bookkeeping from a previous follower incarnation: restore
		// the replication resume point.
		b.repl.cursorGen, b.repl.cursorSeg, b.repl.cursorOff = e.Gen, e.Seg, e.Off
		return applyApplied
	default:
		return applySkipped
	}
}

// liveEntriesLocked serialises the broker's retained state as a
// minimal journal — one submit per job, its recorded results, a cancel
// marker where needed — in numeric job-id order, so compaction is
// deterministic and sheds grants and swept jobs. An epoch stamp (when
// the broker has moved past the implicit epoch 1, or is fenced) leads,
// and a follower's replication cursor trails, so neither survives only
// in segments a fold just deleted.
func (b *Broker) liveEntriesLocked() []journalEntry {
	ids := make([]string, 0, len(b.jobs))
	for id := range b.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool {
		a, aok := numericID(ids[i], "j")
		c, cok := numericID(ids[k], "j")
		if aok && cok && a != c {
			return a < c
		}
		return ids[i] < ids[k]
	})
	var out []journalEntry
	if b.epoch > 1 || b.role == RoleFenced {
		out = append(out, journalEntry{
			Kind: entryEpoch, Epoch: b.epoch,
			Fenced: b.role == RoleFenced, Primary: b.fencedPrimaryLocked(),
		})
	}
	for _, id := range ids {
		j := b.jobs[id]
		specs := make([]api.TaskSpec, len(j.tasks))
		for i, t := range j.tasks {
			specs[i] = t.spec
		}
		out = append(out, journalEntry{
			Kind: entrySubmit, Job: id,
			Tenant: j.tenant, Priority: j.priority, Tasks: specs,
		})
		for _, t := range j.tasks {
			if t.state == taskDone && t.result != nil {
				out = append(out, journalEntry{Kind: entryDone, Job: id, Task: t.idx, Result: t.result})
			}
		}
		if j.canceled {
			out = append(out, journalEntry{Kind: entryCancel, Job: id})
		}
	}
	if b.role == RoleFollower && (b.repl.cursorSeg > 0 || b.repl.cursorGen > 0) {
		out = append(out, journalEntry{
			Kind: entryCursor,
			Gen:  b.repl.cursorGen, Seg: b.repl.cursorSeg, Off: b.repl.cursorOff,
		})
	}
	return out
}

// fencedPrimaryLocked is the redirect hint worth persisting: only a
// fenced broker's primaryAddr is journal state (a follower's is config).
func (b *Broker) fencedPrimaryLocked() string {
	if b.role == RoleFenced {
		return b.primaryAddr
	}
	return ""
}

// numericID parses a "<prefix><n>" broker id; replay uses it to keep
// the id sequence ahead of journaled ids and to order compacted jobs.
func numericID(id, prefix string) (uint64, bool) {
	rest, ok := strings.CutPrefix(id, prefix)
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
