package queue

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/api"
)

// followerFor opens a journaled follower broker pointed (nominally) at
// the given primary address. The journal lives in its own temp dir so
// primary and standby never share a disk — exactly the deployment
// topology.
func followerFor(t *testing.T, clk *fakeClock, primary string) (*Broker, string) {
	t.Helper()
	dir := t.TempDir()
	b := newBroker(t, Config{
		Journal:     journalFor(t, dir),
		Follower:    true,
		PrimaryAddr: primary,
	}, clk)
	return b, dir
}

// replicateAll pumps the primary's journal stream into the follower
// until the cursor stops moving — the in-process equivalent of the
// /v2/replicate long-poll loop, minus HTTP.
func replicateAll(t *testing.T, pj *Journal, fb *Broker) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		gen, seg, off := fb.ReplCursor()
		ck := pj.ReadStream(gen, seg, off, 0)
		if len(ck.Data) == 0 && !ck.Restart {
			g2, s2, o2 := ck.Gen, ck.Seg, ck.Off
			if g2 == gen && s2 == seg && o2 == off {
				return
			}
		}
		if err := fb.ApplyReplicated(ck); err != nil {
			t.Fatalf("ApplyReplicated: %v", err)
		}
	}
	t.Fatal("replication never converged")
}

// TestReplicationStreamToFollower drives the full HA arc in-process:
// the standby replays the primary's journal stream into an identical
// view, refuses mutations with a typed redirect while following, and
// after promotion owns the backlog — leased-but-unfinished work
// requeues and drains to completion.
func TestReplicationStreamToFollower(t *testing.T) {
	clk := newClock()
	p := newBroker(t, Config{Journal: journalFor(t, t.TempDir())}, clk)
	idA := submit(t, p, "acme", 0, spec("jobA", 0), spec("jobA", 1))
	idB := submit(t, p, "acme", 0, spec("jobB", 0))
	w := hello(t, p, "w1")
	leases := poll(t, p, w, 2)
	if len(leases) != 2 {
		t.Fatalf("primary granted %d leases, want 2", len(leases))
	}
	done(t, p, w, leases[0], "alpha")

	f, _ := followerFor(t, clk, "primary:7001")
	replicateAll(t, p.Journal(), f)

	// Read-only view matches the primary byte for byte (results
	// included) — status is served locally, never proxied.
	for _, id := range []string{idA, idB} {
		stP, err := p.Status(id)
		if err != nil {
			t.Fatalf("primary status %s: %v", id, err)
		}
		stF, err := f.Status(id)
		if err != nil {
			t.Fatalf("follower status %s: %v", id, err)
		}
		if !reflect.DeepEqual(stP, stF) {
			t.Fatalf("follower status diverged:\nprimary  %+v\nfollower %+v", stP, stF)
		}
	}

	// Mutations are refused with a retryable redirect at the primary.
	_, err := f.Submit(api.JobSubmit{Proto: api.Version, Tenant: "acme", Tasks: []api.TaskSpec{spec("jobC", 0)}})
	ae, ok := api.AsError(err)
	if !ok || ae.Code != api.CodeNotLeader {
		t.Fatalf("follower submit error = %v, want %s", err, api.CodeNotLeader)
	}
	if !ae.Retryable || ae.Primary != "primary:7001" || ae.RetryAfterNS <= 0 {
		t.Fatalf("not_leader lacks redirect/backoff hints: %+v", ae)
	}

	// Promotion: epoch bumps past every value the dead primary could
	// have journaled, and the one leased-but-unfinished task (jobA
	// shard 1 — its grant replicated, its result never arrived) is
	// reported requeued.
	epoch, requeued, err := f.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if epoch != 2 || requeued != 1 {
		t.Fatalf("promote = (epoch %d, requeued %d), want (2, 1)", epoch, requeued)
	}
	if f.Role() != RolePrimary {
		t.Fatalf("role after promote = %s, want primary", f.Role())
	}
	if e2, r2, err := f.Promote(); err != nil || e2 != 2 || r2 != 0 {
		t.Fatalf("second promote = (%d, %d, %v), want idempotent (2, 0, nil)", e2, r2, err)
	}

	// The new primary owns the backlog: a fresh worker drains the two
	// open tasks and both jobs complete.
	w2 := hello(t, f, "w2")
	got := poll(t, f, w2, 4)
	if len(got) != 2 {
		t.Fatalf("new primary granted %d leases, want 2", len(got))
	}
	for _, l := range got {
		done(t, f, w2, l, "beta")
	}
	for _, id := range []string{idA, idB} {
		st, err := f.Status(id)
		if err != nil || st.Done != st.Total {
			t.Fatalf("job %s after takeover: %+v (%v)", id, st, err)
		}
	}
	// And accepts brand-new work.
	if _, err := f.Submit(api.JobSubmit{Proto: api.Version, Tenant: "acme", Tasks: []api.TaskSpec{spec("jobC", 0)}}); err != nil {
		t.Fatalf("submit after promote: %v", err)
	}
}

// TestFollowerReplayTornLiveTail is the crash the cursor protocol
// exists for: the follower dies mid-batch, its journal holding one
// fully-applied record and a torn prefix of the next, with no cursor
// entry for either. The restarted follower must resume from the last
// durable cursor, re-apply the overlap idempotently (no duplicate
// journal entries) and pick up the torn record — nothing lost, nothing
// doubled.
func TestFollowerReplayTornLiveTail(t *testing.T) {
	clk := newClock()
	p := newBroker(t, Config{Journal: journalFor(t, t.TempDir())}, clk)
	idA := submit(t, p, "acme", 0, spec("jobA", 0))

	f1, dirF := followerFor(t, clk, "primary:7001")
	replicateAll(t, p.Journal(), f1) // cursor for jobA is durable

	idB := submit(t, p, "acme", 0, spec("jobB", 0))
	idC := submit(t, p, "acme", 0, spec("jobC", 0))
	gen, seg, off := f1.ReplCursor()
	ck := p.Journal().ReadStream(gen, seg, off, 0)
	nl := bytes.IndexByte(ck.Data, '\n')
	if nl < 0 || nl+1 >= len(ck.Data) {
		t.Fatalf("expected two journal lines in chunk, got %q", ck.Data)
	}
	// Crash mid-ApplyReplicated: jobB's line landed whole, jobC's was
	// cut mid-record, and the batch cursor was never written. Written
	// straight to the follower's active segment, bypassing f1, which is
	// dead from here on.
	torn := ck.Data[:nl+1+(len(ck.Data)-nl-1)/2]
	fh, err := os.OpenFile(filepath.Join(dirF, segmentName(1)), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Write(torn); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	// Restart over the same dir. Replay applies jobA and jobB, skips
	// the torn jobC prefix, and restores the cursor to the last durable
	// position — before jobB.
	f2 := newBroker(t, Config{
		Journal:     journalFor(t, dirF),
		Follower:    true,
		PrimaryAddr: "primary:7001",
	}, clk)
	if g, s, o := f2.ReplCursor(); g != gen || s != seg || o != off {
		t.Fatalf("restart cursor = (%d, %d, %d), want durable (%d, %d, %d)", g, s, o, gen, seg, off)
	}

	// Resume: the overlap (jobB) re-arrives and must be recognised as a
	// duplicate, jobC applies fresh.
	replicateAll(t, p.Journal(), f2)
	for _, id := range []string{idA, idB, idC} {
		if _, err := f2.Status(id); err != nil {
			t.Fatalf("job %s lost across torn-tail restart: %v", id, err)
		}
	}
	if st := f2.Stats(); st.Jobs != 3 || st.Submitted != 3 {
		t.Fatalf("follower census after resume: jobs %d submitted %d, want 3/3", st.Jobs, st.Submitted)
	}
	rm := f2.Metrics().Replication
	if rm == nil || rm.Duplicates < 1 {
		t.Fatalf("resume overlap not counted as duplicate: %+v", rm)
	}
	// The duplicate must not have been journaled twice: exactly one
	// whole submit record for jobB across the follower's segments.
	if n := countJournalLines(t, dirF, `"kind":"submit"`, idB); n != 1 {
		t.Fatalf("follower journal holds %d submit records for %s, want exactly 1", n, idB)
	}
}

// countJournalLines counts newline-terminated journal records across
// every segment in dir containing all the given substrings.
func countJournalLines(t *testing.T, dir string, needles ...string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range ents {
		if !strings.HasPrefix(de.Name(), "journal-") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			hit := true
			for _, nd := range needles {
				if !strings.Contains(line, nd) {
					hit = false
					break
				}
			}
			if hit {
				n++
			}
		}
	}
	return n
}

// TestPromoteFencesZombiePrimary covers the split-brain edge: the old
// primary comes back after the standby promoted. The fence at the new
// epoch flips it to a redirecting read-only replica — durably, across
// its own restart — and every stale-epoch path is refused.
func TestPromoteFencesZombiePrimary(t *testing.T) {
	clk := newClock()
	dirP := t.TempDir()
	p := newBroker(t, Config{Journal: journalFor(t, dirP)}, clk)
	idA := submit(t, p, "acme", 0, spec("jobA", 0))

	f, _ := followerFor(t, clk, "primary:7001")
	replicateAll(t, p.Journal(), f)
	epoch, _, err := f.Promote()
	if err != nil || epoch != 2 {
		t.Fatalf("promote = (%d, %v), want epoch 2", epoch, err)
	}

	// The new primary refuses a fence at its own epoch or below: the
	// caller holding a stale epoch is the zombie, not this broker.
	if err := f.Fence(1, "nobody:1"); err == nil {
		t.Fatal("stale fence accepted")
	} else if ae, ok := api.AsError(err); !ok || ae.Code != api.CodeBadRequest {
		t.Fatalf("stale fence error = %v, want %s", err, api.CodeBadRequest)
	}
	if err := f.Fence(2, "nobody:1"); err == nil {
		t.Fatal("same-epoch fence accepted by the promoting primary")
	}

	// Fence the zombie at the new epoch. Its late mutation is refused
	// with a typed redirect at the new primary.
	if err := p.Fence(epoch, "standby:7002"); err != nil {
		t.Fatalf("fence zombie: %v", err)
	}
	if p.Role() != RoleFenced || p.Epoch() != epoch {
		t.Fatalf("zombie after fence: role %s epoch %d", p.Role(), p.Epoch())
	}
	_, err = p.Submit(api.JobSubmit{Proto: api.Version, Tenant: "acme", Tasks: []api.TaskSpec{spec("late", 0)}})
	ae, ok := api.AsError(err)
	if !ok || ae.Code != api.CodeNotLeader || ae.Primary != "standby:7002" {
		t.Fatalf("fenced submit error = %v, want not_leader → standby:7002", err)
	}
	// Reads still work on the fenced replica; promotion does not.
	if _, err := p.Status(idA); err != nil {
		t.Fatalf("fenced status: %v", err)
	}
	if _, _, err := p.Promote(); err == nil {
		t.Fatal("fenced ex-primary promoted itself")
	} else if ae, ok := api.AsError(err); !ok || ae.Code != api.CodeUnavailable {
		t.Fatalf("fenced promote error = %v, want %s", err, api.CodeUnavailable)
	}
	// Fencer retries are idempotent.
	if err := p.Fence(epoch, "standby:7002"); err != nil {
		t.Fatalf("idempotent re-fence: %v", err)
	}

	// The fence is journaled: a restart over the zombie's dir comes
	// back fenced at the new epoch, still redirecting.
	p2 := newBroker(t, Config{Journal: journalFor(t, dirP)}, clk)
	if p2.Role() != RoleFenced || p2.Epoch() != epoch {
		t.Fatalf("restarted zombie: role %s epoch %d, want fenced at %d", p2.Role(), p2.Epoch(), epoch)
	}
	if _, err := p2.Submit(api.JobSubmit{Proto: api.Version, Tenant: "acme", Tasks: []api.TaskSpec{spec("late2", 0)}}); err == nil {
		t.Fatal("restarted fenced broker accepted a mutation")
	}
}

// TestReplicationCursorStaleAcrossPrimaryRestart is the silent-
// divergence trap: a follower's cursor sits mid-way through the
// primary's snapshot segment when the primary restarts, and the startup
// fold rewrites that same segment number with different bytes. If the
// restarted journal re-minted the old generation number, the cursor
// would validate against the new bytes, land mid-record and silently
// skip history. Generations are persisted (journal.meta) and strictly
// monotonic across incarnations, so the cursor must be forced to
// Restart instead.
func TestReplicationCursorStaleAcrossPrimaryRestart(t *testing.T) {
	clk := newClock()
	dirP := t.TempDir()
	p := newBroker(t, Config{Journal: rotatingJournal(t, dirP, 512)}, clk)
	for _, j := range []string{"jobA", "jobB", "jobC", "jobD"} {
		submit(t, p, "acme", 0, spec(j, 0), spec(j, 1))
	}
	waitCompacted(t, p.Journal())

	// Park a cursor mid-way through the snapshot segment: rebase from
	// zero, then read one tiny chunk.
	ck := p.Journal().ReadStream(0, 0, 0, 0)
	if !ck.Restart {
		t.Fatalf("zero cursor did not rebase: %+v", ck)
	}
	ck = p.Journal().ReadStream(ck.Gen, ck.Seg, ck.Off, 64)
	gen1, seg1, off1 := ck.Gen, ck.Seg, ck.Off
	if len(ck.Data) == 0 || off1 <= 0 {
		t.Fatalf("tiny read returned no progress: %+v", ck)
	}

	// More history, then a restart: the startup replay folds everything
	// into a rewritten snapshot — same segment number, new bytes.
	submit(t, p, "acme", 0, spec("jobE", 0))
	p2 := newBroker(t, Config{Journal: rotatingJournal(t, dirP, 512)}, clk)

	ck2 := p2.Journal().ReadStream(gen1, seg1, off1, 0)
	if !ck2.Restart {
		t.Fatalf("pre-restart cursor (%d, %d, %d) validated against the rewritten journal: %+v",
			gen1, seg1, off1, ck2)
	}
	if ck2.Gen <= gen1 {
		t.Fatalf("generation did not advance across restart: %d → %d", gen1, ck2.Gen)
	}
}

// TestFenceAdoptedByConfiguredFollower covers the fencer-races-
// replication edge: a fence at the new epoch reaches a broker that is
// already configured as a follower (the ex-primary restarted with
// -follow pointing at the new primary) before the epoch record arrives
// through replication. Flipping it to fenced would freeze the hot
// standby; instead it adopts the epoch and primary address and keeps
// following — still promotable.
func TestFenceAdoptedByConfiguredFollower(t *testing.T) {
	clk := newClock()
	p := newBroker(t, Config{Journal: journalFor(t, t.TempDir())}, clk)
	submit(t, p, "acme", 0, spec("jobA", 0))

	f, _ := followerFor(t, clk, "primary:7001")
	replicateAll(t, p.Journal(), f)

	if err := f.Fence(2, "newprimary:7002"); err != nil {
		t.Fatalf("fence on follower: %v", err)
	}
	if f.Role() != RoleFollower {
		t.Fatalf("fenced follower role = %s, want still follower", f.Role())
	}
	if f.Epoch() != 2 {
		t.Fatalf("follower epoch after fence = %d, want 2", f.Epoch())
	}
	// The fencer's retries stay idempotent.
	if err := f.Fence(2, "newprimary:7002"); err != nil {
		t.Fatalf("re-fence on follower: %v", err)
	}
	// Mutations now redirect at the fence's primary.
	_, err := f.Submit(api.JobSubmit{Proto: api.Version, Tenant: "acme", Tasks: []api.TaskSpec{spec("jobB", 0)}})
	if ae, ok := api.AsError(err); !ok || ae.Code != api.CodeNotLeader || ae.Primary != "newprimary:7002" {
		t.Fatalf("follower submit after fence = %v, want not_leader → newprimary:7002", err)
	}
	// And the standby stayed hot: still promotable, past the adopted
	// epoch.
	epoch, _, err := f.Promote()
	if err != nil {
		t.Fatalf("promote after fence: %v", err)
	}
	if epoch != 3 {
		t.Fatalf("promote epoch = %d, want 3 (past the adopted fence epoch)", epoch)
	}
}

// TestReplicationRestartAfterCompaction: the primary restarts and its
// startup replay folds the journal history the follower's cursor
// pointed into. The stream must answer with a rebased Restart chunk and
// the follower must converge by re-applying the fold — no state wipe,
// no divergence.
func TestReplicationRestartAfterCompaction(t *testing.T) {
	clk := newClock()
	dirP := t.TempDir()
	p := newBroker(t, Config{Journal: rotatingJournal(t, dirP, 512)}, clk)
	var ids []string
	for _, j := range []string{"jobA", "jobB", "jobC", "jobD"} {
		ids = append(ids, submit(t, p, "acme", 0, spec(j, 0), spec(j, 1)))
	}
	waitCompacted(t, p.Journal())

	f, _ := followerFor(t, clk, "primary:7001")
	replicateAll(t, p.Journal(), f)

	// Primary restarts: startup replay folds every sealed segment into
	// one snapshot under a new generation.
	p2 := newBroker(t, Config{Journal: rotatingJournal(t, dirP, 512)}, clk)
	gen, seg, off := f.ReplCursor()
	ck := p2.Journal().ReadStream(gen, seg, off, 0)
	if !ck.Restart {
		t.Fatalf("stream over folded history did not restart: cursor (%d, %d, %d) → %+v", gen, seg, off, ck)
	}

	replicateAll(t, p2.Journal(), f)
	for _, id := range ids {
		stP, err := p2.Status(id)
		if err != nil {
			t.Fatalf("primary status %s: %v", id, err)
		}
		stF, err := f.Status(id)
		if err != nil {
			t.Fatalf("follower status %s after restart: %v", id, err)
		}
		if !reflect.DeepEqual(stP, stF) {
			t.Fatalf("follower diverged after fold:\nprimary  %+v\nfollower %+v", stP, stF)
		}
	}
	if st := f.Stats(); st.Jobs != len(ids) {
		t.Fatalf("follower jobs after fold = %d, want %d", st.Jobs, len(ids))
	}
	rm := f.Metrics().Replication
	if rm == nil || rm.Restarts != 1 {
		t.Fatalf("fold restart not counted once: %+v", rm)
	}
}
