package queue

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/api"
)

// BenchmarkBrokerSubmitDone measures one full broker round-trip —
// submit, lease, done — the unit the fleet's throughput is built from.
// Pinned in BENCH_<sha>.json so hardening (journal rotation, rate
// limiting, fault hooks on the append path) can't silently tax it.
// The injected clock advances past the (shortened) retention each
// iteration so finished jobs are swept as they would be in steady
// state — otherwise the lazy sweep walks an ever-growing job map and
// the benchmark measures b.N, not the broker.
func BenchmarkBrokerSubmitDone(b *testing.B) {
	clk := newClock()
	br := New(Config{JobRetention: time.Millisecond, Now: clk.now})
	rep, err := br.Hello(api.WorkerHello{Proto: api.Version, Name: "bench", Capacity: 1})
	if err != nil {
		b.Fatal(err)
	}
	w := rep.WorkerID
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := fmt.Sprintf("bench-%d", i)
		sub, err := br.Submit(api.JobSubmit{Proto: api.Version, Tasks: []api.TaskSpec{
			{Proto: api.Version, Job: job, Shard: 0, Seed: 7, Key: job + "@hash"},
		}})
		if err != nil {
			b.Fatal(err)
		}
		poll, err := br.Poll(ctx, api.PollRequest{Proto: api.Version, WorkerID: w, Max: 1})
		if err != nil || len(poll.Leases) != 1 {
			b.Fatalf("poll: %v (%d leases)", err, len(poll.Leases))
		}
		l := poll.Leases[0]
		_, err = br.Done(api.TaskDone{
			Proto: api.Version, WorkerID: w, LeaseID: l.ID,
			Result: api.TaskResult{
				Proto: api.Version, Job: l.Task.Job, Shard: l.Task.Shard,
				Key: l.Task.Key, Text: "r", DurationNS: 1,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = sub
		clk.advance(2 * time.Millisecond)
	}
}

// BenchmarkJournalReplicateAppend measures the HA hot path per
// replicated round-trip: a journaled submit/lease/done on the primary,
// the batch served through ReadStream, and the follower folding it in
// via ApplyReplicated — raw journal append, cursor record and fsync
// included. Pinned in BENCH_<sha>.json so the replication layer's cost
// per record stays visible to scripts/bench_diff.sh.
func BenchmarkJournalReplicateAppend(b *testing.B) {
	clk := newClock()
	pj, err := OpenJournal(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer pj.Close()
	p := New(Config{Journal: pj, JobRetention: time.Millisecond, Now: clk.now})
	fj, err := OpenJournal(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer fj.Close()
	f := New(Config{Journal: fj, Follower: true, PrimaryAddr: "primary:7001",
		JobRetention: time.Millisecond, Now: clk.now})
	rep, err := p.Hello(api.WorkerHello{Proto: api.Version, Name: "bench", Capacity: 1})
	if err != nil {
		b.Fatal(err)
	}
	w := rep.WorkerID
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := fmt.Sprintf("bench-%d", i)
		if _, err := p.Submit(api.JobSubmit{Proto: api.Version, Tasks: []api.TaskSpec{
			{Proto: api.Version, Job: job, Shard: 0, Seed: 7, Key: job + "@hash"},
		}}); err != nil {
			b.Fatal(err)
		}
		poll, err := p.Poll(ctx, api.PollRequest{Proto: api.Version, WorkerID: w, Max: 1})
		if err != nil || len(poll.Leases) != 1 {
			b.Fatalf("poll: %v (%d leases)", err, len(poll.Leases))
		}
		l := poll.Leases[0]
		if _, err := p.Done(api.TaskDone{
			Proto: api.Version, WorkerID: w, LeaseID: l.ID,
			Result: api.TaskResult{
				Proto: api.Version, Job: l.Task.Job, Shard: l.Task.Shard,
				Key: l.Task.Key, Text: "r", DurationNS: 1,
			},
		}); err != nil {
			b.Fatal(err)
		}
		gen, seg, off := f.ReplCursor()
		ck := pj.ReadStream(gen, seg, off, 0)
		if len(ck.Data) == 0 && !ck.Restart {
			b.Fatal("nothing to replicate")
		}
		if err := f.ApplyReplicated(ck); err != nil {
			b.Fatal(err)
		}
		clk.advance(2 * time.Millisecond)
	}
}
