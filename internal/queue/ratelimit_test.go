package queue

import (
	"testing"
	"time"

	"repro/internal/api"
)

// wantRateLimited asserts err is the typed retryable rate rejection and
// returns its Retry-After hint.
func wantRateLimited(t *testing.T, err error) time.Duration {
	t.Helper()
	ae, ok := api.AsError(err)
	if !ok || ae.Code != api.CodeRateLimited {
		t.Fatalf("want rate_limited, got %v", err)
	}
	if !ae.Retryable {
		t.Fatal("rate_limited must be retryable (the client waits out Retry-After)")
	}
	if ae.RetryAfterNS <= 0 {
		t.Fatalf("rate_limited without a Retry-After hint: %+v", ae)
	}
	return time.Duration(ae.RetryAfterNS)
}

// TestRateLimitTokenBucket: the first second's burst is free, the
// overflow is rejected with an accurate Retry-After, and refill admits
// again exactly when the hint promised.
func TestRateLimitTokenBucket(t *testing.T) {
	clk := newClock()
	b := newBroker(t, Config{MaxSubmitRate: 4}, clk)

	// Burst: 4 tasks pass immediately.
	submit(t, b, "", 0, spec("a", 0), spec("a", 1))
	submit(t, b, "", 0, spec("b", 0), spec("b", 1))

	// The bucket is empty; a 2-task job needs 2 tokens = 500ms at 4/s.
	_, err := b.Submit(api.JobSubmit{Proto: api.Version, Tasks: []api.TaskSpec{spec("c", 0), spec("c", 1)}})
	wait := wantRateLimited(t, err)
	if wait != 500*time.Millisecond {
		t.Fatalf("Retry-After = %v, want 500ms (2 tokens at 4/s)", wait)
	}
	if got := b.Stats().RateLimited; got != 1 {
		t.Fatalf("RateLimited = %d, want 1", got)
	}
	if got := b.Stats().Rejected; got != 0 {
		t.Fatalf("rate limiting must not count as queue_full rejection, Rejected = %d", got)
	}

	// Too early: still limited, with a shorter remaining wait.
	clk.advance(250 * time.Millisecond)
	_, err = b.Submit(api.JobSubmit{Proto: api.Version, Tasks: []api.TaskSpec{spec("c", 0), spec("c", 1)}})
	if got := wantRateLimited(t, err); got != 250*time.Millisecond {
		t.Fatalf("remaining Retry-After = %v, want 250ms", got)
	}

	// At the promised time the same submission is admitted.
	clk.advance(250 * time.Millisecond)
	submit(t, b, "", 0, spec("c", 0), spec("c", 1))
}

// TestRateLimitOversizedJobRuns: a job larger than the whole burst is
// admitted once the bucket is full (going into debt) rather than being
// rejected forever.
func TestRateLimitOversizedJobRuns(t *testing.T) {
	clk := newClock()
	b := newBroker(t, Config{MaxSubmitRate: 2}, clk)

	// 5 tasks > burst of 2, but the bucket starts full: admitted, bucket
	// goes to -3.
	submit(t, b, "", 0, spec("big", 0), spec("big", 1), spec("big", 2), spec("big", 3), spec("big", 4))

	// The debt is real: even a 1-task job now waits until the bucket is
	// non-negative again ((3+1)/2 = 2s).
	_, err := b.Submit(api.JobSubmit{Proto: api.Version, Tasks: []api.TaskSpec{spec("s", 0)}})
	if wait := wantRateLimited(t, err); wait != 2*time.Second {
		t.Fatalf("Retry-After = %v, want 2s (paying off the oversized job's debt)", wait)
	}
	clk.advance(2 * time.Second)
	submit(t, b, "", 0, spec("s", 0))
}

// TestRateLimitPerTenantOverride: -max-submit-rate-tenant semantics —
// an override replaces the global rate, an override of 0 lifts it, and
// buckets are independent per tenant.
func TestRateLimitPerTenantOverride(t *testing.T) {
	clk := newClock()
	b := newBroker(t, Config{
		MaxSubmitRate:       1,
		MaxSubmitRateTenant: map[string]int{"bulk": 3, "free": 0},
	}, clk)

	// Default tenant: burst of 1.
	submit(t, b, "", 0, spec("a", 0))
	_, err := b.Submit(api.JobSubmit{Proto: api.Version, Tasks: []api.TaskSpec{spec("a", 1)}})
	wantRateLimited(t, err)

	// "bulk" has its own 3-token bucket, untouched by the default
	// tenant's exhaustion.
	submit(t, b, "bulk", 0, spec("b", 0), spec("b", 1), spec("b", 2))
	_, err = b.Submit(api.JobSubmit{Proto: api.Version, Tenant: "bulk", Tasks: []api.TaskSpec{spec("b", 3)}})
	wantRateLimited(t, err)

	// "free" is unlimited.
	for i := 0; i < 20; i++ {
		submit(t, b, "free", 0, spec("f", i))
	}

	if got := b.Metrics().RateLimited; got != 2 {
		t.Fatalf("metrics RateLimited = %d, want 2", got)
	}
}

// TestRateLimitBatchPartial: in a batch, rate limiting rejects jobs
// individually — the batch reply carries per-job rate_limited errors
// while earlier jobs in the same batch are admitted.
func TestRateLimitBatchPartial(t *testing.T) {
	clk := newClock()
	b := newBroker(t, Config{MaxSubmitRate: 2}, clk)
	rep, err := b.SubmitBatch(api.JobSubmitBatch{Proto: api.Version, Jobs: []api.JobSubmit{
		{Proto: api.Version, Tasks: []api.TaskSpec{spec("a", 0), spec("a", 1)}},
		{Proto: api.Version, Tasks: []api.TaskSpec{spec("b", 0)}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs[0].Err != nil || rep.Jobs[0].ID == "" {
		t.Fatalf("first job should be admitted: %+v", rep.Jobs[0])
	}
	if rep.Jobs[1].Err == nil || rep.Jobs[1].Err.Code != api.CodeRateLimited {
		t.Fatalf("second job should be rate limited: %+v", rep.Jobs[1])
	}
}
