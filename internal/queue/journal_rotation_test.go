package queue

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/faultinject"
)

// rotatingJournal opens a journal with a tiny byte budget so a handful
// of submissions forces rotations.
func rotatingJournal(t *testing.T, dir string, maxBytes int64) *Journal {
	t.Helper()
	jl, err := OpenJournal(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jl.Close() })
	return jl
}

// waitCompacted waits for in-flight background compactions to settle:
// metrics stop counting claimed segments once compactSegments releases
// them.
func waitCompacted(t *testing.T, jl *Journal) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		jl.mu.Lock()
		idle := len(jl.claimed) == 0
		jl.mu.Unlock()
		if idle {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("background compaction never settled")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJournalRotationUnderConcurrentSubmission hammers a journaled
// broker from several goroutines with a byte budget small enough to
// rotate mid-batch, then restarts over whatever the (possibly
// mid-compaction) directory holds and requires the identical backlog.
func TestJournalRotationUnderConcurrentSubmission(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	jl := rotatingJournal(t, dir, 2048)
	b1 := newBroker(t, Config{Journal: jl}, clk)

	const writers, jobsPer = 4, 25
	var wg sync.WaitGroup
	ids := make([][]string, writers)
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for k := 0; k < jobsPer; k++ {
				rep, err := b1.Submit(api.JobSubmit{
					Proto: api.Version,
					Tasks: []api.TaskSpec{spec(fmt.Sprintf("w%d-%d", wi, k), 0)},
				})
				if err != nil {
					t.Errorf("writer %d: %v", wi, err)
					return
				}
				ids[wi] = append(ids[wi], rep.ID)
			}
		}(wi)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	waitCompacted(t, jl)
	m1 := jl.metrics()
	if m1.Rotations == 0 {
		t.Fatalf("100 jobs under a 2 KiB budget never rotated: %+v", m1)
	}
	if m1.Compactions == 0 {
		t.Fatalf("rotations without background compaction: %+v", m1)
	}

	// The successor — replaying snapshot + deltas across segments — must
	// serve every submitted job, still queued, no extras. Its startup
	// compaction folds whatever generation 1 left (sealed segments only
	// get claimed on the next rotation, so a few may still be waiting).
	jl2 := rotatingJournal(t, dir, 2048)
	b2 := newBroker(t, Config{Journal: jl2}, clk)
	if m := jl2.metrics(); m.Segments != 2 {
		t.Fatalf("successor settles at %d segments, want 2 (snapshot + active)", m.Segments)
	}
	total := 0
	for _, w := range ids {
		for _, id := range w {
			st, err := b2.Status(id)
			if err != nil || st.State != api.JobQueued || st.Total != 1 {
				t.Fatalf("job %s after rotated replay: %+v %v", id, st, err)
			}
			total++
		}
	}
	if total != writers*jobsPer {
		t.Fatalf("tracked %d ids, want %d", total, writers*jobsPer)
	}
	if m := b2.Metrics(); m.Jobs != writers*jobsPer {
		t.Fatalf("successor carries %d jobs, want %d", m.Jobs, writers*jobsPer)
	}
}

// TestJournalReplayAcrossThreeSegments: a hand-built three-segment
// directory (submit / progress / cancel+submit spread across files)
// replays in segment order to the merged state — and a fourth broker
// generation over the compacted result agrees.
func TestJournalReplayAcrossThreeSegments(t *testing.T) {
	dir := t.TempDir()
	line := func(e journalEntry) string {
		e.V = journalFormatVersion
		return jsonLine(t, e)
	}
	seg := func(n int, lines ...string) {
		if err := os.WriteFile(filepath.Join(dir, segmentName(n)),
			[]byte(strings.Join(lines, "")), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	resA := resultFor(spec("a", 0), "seg2")
	seg(1,
		line(journalEntry{Kind: entrySubmit, Job: "j1", Tasks: []api.TaskSpec{spec("a", 0), spec("a", 1)}}),
		line(journalEntry{Kind: entrySubmit, Job: "j2", Tasks: []api.TaskSpec{spec("b", 0)}}),
	)
	seg(2,
		line(journalEntry{Kind: entryDone, Job: "j1", Task: 0, Result: &resA}),
		line(journalEntry{Kind: entryGrant, Job: "j1", Task: 1, Worker: "w"}),
	)
	seg(3,
		line(journalEntry{Kind: entryCancel, Job: "j2"}),
		line(journalEntry{Kind: entrySubmit, Job: "j3", Tasks: []api.TaskSpec{spec("c", 0)}}),
	)

	clk := newClock()
	b := newBroker(t, Config{Journal: rotatingJournal(t, dir, 0)}, clk)
	st, err := b.Status("j1")
	if err != nil || st.State != api.JobRunning || st.Done != 1 {
		t.Fatalf("j1: %+v %v, want running with 1 done", st, err)
	}
	if st, err = b.Status("j2"); err != nil || st.State != api.JobCanceled {
		t.Fatalf("j2: %+v %v, want canceled (cancel lives two segments after the submit)", st, err)
	}
	if st, err = b.Status("j3"); err != nil || st.State != api.JobQueued {
		t.Fatalf("j3: %+v %v, want queued", st, err)
	}
	m := b.Metrics()
	if m.Journal.ReplayedJobs != 3 || m.Journal.Requeued != 1 {
		t.Fatalf("replay metrics %+v, want 3 jobs / 1 requeued", *m.Journal)
	}
	// Finish the backlog; j1's reply must carry the middle segment's
	// replayed result verbatim alongside the fresh one.
	w := hello(t, b, "w1")
	for _, l := range poll(t, b, w, 4) {
		done(t, b, w, l, "fresh")
	}
	if st, err = b.Status("j1"); err != nil || st.State != api.JobDone {
		t.Fatalf("j1 after finishing: %+v %v", st, err)
	}
	if got := st.Results[0]; got.Text != "seg2" {
		t.Fatalf("j1 result from middle segment lost: %+v", got)
	}

	// Startup folded the three segments into one snapshot; a second
	// generation replays snapshot + the first generation's deltas to the
	// same state.
	b2 := newBroker(t, Config{Journal: rotatingJournal(t, dir, 0)}, clk)
	if st, err = b2.Status("j1"); err != nil || st.State != api.JobDone || st.Results[0].Text != "seg2" {
		t.Fatalf("j1 after compacted replay: %+v %v", st, err)
	}
	if st, err = b2.Status("j2"); err != nil || st.State != api.JobCanceled {
		t.Fatalf("j2 after compacted replay: %+v %v", st, err)
	}
	if st, err = b2.Status("j3"); err != nil || st.State != api.JobDone {
		t.Fatalf("j3 after compacted replay: %+v %v", st, err)
	}
}

// TestJournalCorruptMiddleSegmentFailsLoudly: a torn line is forgiven
// only on the final segment's tail. The same damage in a sealed middle
// segment means history was rewritten — OpenJournal must refuse.
func TestJournalCorruptMiddleSegmentFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	good := jsonLine(t, journalEntry{
		V: journalFormatVersion, Kind: entrySubmit, Job: "j1",
		Tasks: []api.TaskSpec{spec("a", 0)},
	})
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)),
		[]byte(good+`{"v":"qjournal1","kind":"sub`), 0o644); err != nil { // torn tail, sealed
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(2)), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(dir, 0); err == nil || !strings.Contains(err.Error(), "segment 1 corrupt") {
		t.Fatalf("corrupt sealed segment opened anyway: %v", err)
	}

	// The identical tear on the *final* segment stays forgiving.
	if err := os.Remove(filepath.Join(dir, segmentName(1))); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(2)),
		[]byte(good+`{"v":"qjournal1","kind":"sub`), 0o644); err != nil {
		t.Fatal(err)
	}
	jl, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatalf("torn active tail must not refuse startup: %v", err)
	}
	defer jl.Close()
	if got := len(jl.load()); got != 1 {
		t.Fatalf("loaded %d entries, want the 1 intact line", got)
	}
	if m := jl.metrics(); m.Skipped != 1 {
		t.Fatalf("skipped %d, want 1", m.Skipped)
	}
}

// TestJournalLegacyFileAdopted: a pre-segmentation journal.jsonl is
// renamed into segment 1 and replays as before.
func TestJournalLegacyFileAdopted(t *testing.T) {
	dir := t.TempDir()
	entry := jsonLine(t, journalEntry{
		V: journalFormatVersion, Kind: entrySubmit, Job: "j1",
		Tasks: []api.TaskSpec{spec("a", 0)},
	})
	if err := os.WriteFile(filepath.Join(dir, legacyJournalFile), []byte(entry), 0o644); err != nil {
		t.Fatal(err)
	}
	b := newBroker(t, Config{Journal: rotatingJournal(t, dir, 0)}, newClock())
	if st, err := b.Status("j1"); err != nil || st.State != api.JobQueued {
		t.Fatalf("legacy job after adoption: %+v %v", st, err)
	}
	if _, err := os.Stat(filepath.Join(dir, legacyJournalFile)); !os.IsNotExist(err) {
		t.Fatalf("legacy file still present: %v", err)
	}
}

// TestJournalTornWriteInjection: the fault-injection hook tears exactly
// one done record mid-line; the next generation replays the torn tail
// leniently and hands the task out again (re-execution, not data loss).
func TestJournalTornWriteInjection(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	jl := rotatingJournal(t, dir, 0)
	plan := faultinject.Plan{Rules: []faultinject.Rule{
		{Point: "journal.append.done", Kind: faultinject.KindTorn, Count: 1},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	jl.SetFaults(faultinject.New(&plan))
	b1 := newBroker(t, Config{Journal: jl}, clk)

	id := submit(t, b1, "", 0, spec("a", 0))
	w := hello(t, b1, "w1")
	leases := poll(t, b1, w, 1)
	if len(leases) != 1 {
		t.Fatalf("want 1 lease, got %d", len(leases))
	}
	done(t, b1, w, leases[0], "torn-away")
	if st, _ := b1.Status(id); st.State != api.JobDone {
		t.Fatalf("pre-crash broker state: %+v", st)
	}

	b2 := newBroker(t, Config{Journal: rotatingJournal(t, dir, 0)}, clk)
	st, err := b2.Status(id)
	if err != nil || st.State != api.JobQueued {
		t.Fatalf("after torn done record: %+v %v, want the task queued again", st, err)
	}
	if m := b2.Metrics(); m.Journal.Skipped != 1 {
		t.Fatalf("skipped %d, want exactly the 1 torn line", m.Journal.Skipped)
	}
}

// TestJournalRotationFsyncsUnsyncedTail: sealing a segment must fsync
// it first. Grants are the unsynced tier, so a rotation driven purely
// by grant appends would otherwise seal page-cache-only records into a
// segment that strict replay later refuses if a power cut tears it.
func TestJournalRotationFsyncsUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	jl := rotatingJournal(t, dir, 256)
	rotated := false
	for i := 0; i < 100 && !rotated; i++ {
		rotated = jl.append(journalEntry{Kind: entryGrant, Job: "j1", Task: i, Worker: "w"}, false)
	}
	if !rotated {
		t.Fatal("100 grants under a 256-byte budget never rotated")
	}
	m := jl.metrics()
	if m.Rotations != 1 {
		t.Fatalf("rotations = %d, want 1", m.Rotations)
	}
	if m.Fsyncs == 0 {
		t.Fatalf("sealed a segment of unsynced appends without an fsync: %+v", m)
	}
}

// TestJournalLegacyConflictRefusesStartup: a directory holding both a
// pre-segmentation journal.jsonl and segment files is ambiguous
// history; OpenJournal must refuse rather than rename the legacy file
// over an existing segment.
func TestJournalLegacyConflictRefusesStartup(t *testing.T) {
	dir := t.TempDir()
	segLine := jsonLine(t, journalEntry{
		V: journalFormatVersion, Kind: entrySubmit, Job: "jseg",
		Tasks: []api.TaskSpec{spec("a", 0)},
	})
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), []byte(segLine), 0o644); err != nil {
		t.Fatal(err)
	}
	oldLine := jsonLine(t, journalEntry{
		V: journalFormatVersion, Kind: entrySubmit, Job: "jold",
		Tasks: []api.TaskSpec{spec("b", 0)},
	})
	if err := os.WriteFile(filepath.Join(dir, legacyJournalFile), []byte(oldLine), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(dir, 0); err == nil || !strings.Contains(err.Error(), legacyJournalFile) {
		t.Fatalf("legacy/segment conflict opened anyway: %v", err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
	if err != nil || !strings.Contains(string(raw), "jseg") {
		t.Fatalf("segment 1 clobbered by refused adoption: %q %v", raw, err)
	}
}

// TestJournalStaleTmpRemovedAtStartup: a compaction that died between
// Create and Rename leaves a .tmp the next generation must sweep.
func TestJournalStaleTmpRemovedAtStartup(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, segmentName(1)+".tmp")
	if err := os.WriteFile(tmp, []byte("half-written snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	jl, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale compaction tmp survived startup: %v", err)
	}
}

// jsonLine marshals one journal entry the way append would.
func jsonLine(t *testing.T, e journalEntry) string {
	t.Helper()
	buf, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf) + "\n"
}
