package queue

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/api"
)

// journalFor opens a journal under dir, closing it with the test. Two
// journals over the same dir model a broker restart: the "crashed"
// broker's handle stays open (a SIGKILL never closes anything) while
// the successor replays the same file.
func journalFor(t *testing.T, dir string) *Journal {
	t.Helper()
	jl, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jl.Close() })
	return jl
}

// TestJournalReplayRestoresBacklog is the crash-recovery contract: a
// broker rebuilt over the journal of a killed one serves the same job
// ids, keeps recorded results byte-identical, and hands
// leased-but-unfinished tasks out again.
func TestJournalReplayRestoresBacklog(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	b1 := newBroker(t, Config{Journal: journalFor(t, dir)}, clk)

	idA := submit(t, b1, "", 0, spec("a", 0), spec("a", 1))
	idB := submit(t, b1, "", 0, spec("b", 0))
	w1 := hello(t, b1, "w1")
	leases := poll(t, b1, w1, 2)
	if len(leases) != 2 {
		t.Fatalf("want 2 leases before the crash, got %d", len(leases))
	}
	done(t, b1, w1, leases[0], "pre-crash")
	// leases[1] is still out when the broker "dies" here.

	b2 := newBroker(t, Config{Journal: journalFor(t, dir)}, clk)
	st, err := b2.Status(idA)
	if err != nil {
		t.Fatalf("job %s lost across restart: %v", idA, err)
	}
	if st.State != api.JobRunning || st.Done != 1 {
		t.Fatalf("job A after replay: state %s done %d, want running/1", st.State, st.Done)
	}
	if st, err = b2.Status(idB); err != nil || st.State != api.JobQueued {
		t.Fatalf("job B after replay: %v %v, want queued", st, err)
	}
	m := b2.Metrics()
	if m.Journal == nil {
		t.Fatal("journaled broker reports no journal metrics")
	}
	if m.Journal.ReplayedJobs != 2 || m.Journal.ReplayedTasks != 3 || m.Journal.Requeued != 1 {
		t.Fatalf("replay metrics = %+v, want 2 jobs / 3 tasks / 1 requeued", *m.Journal)
	}

	// The successor must be able to finish the run: the interrupted
	// lease's task and job B's task are both pollable again.
	w2 := hello(t, b2, "w2")
	rest := poll(t, b2, w2, 4)
	if len(rest) != 2 {
		t.Fatalf("want the 2 unfinished tasks after replay, got %d leases", len(rest))
	}
	for _, l := range rest {
		done(t, b2, w2, l, "post-crash")
	}
	st, err = b2.Status(idA)
	if err != nil || st.State != api.JobDone {
		t.Fatalf("job A after finishing: %v %v", st, err)
	}
	// The pre-crash result came back verbatim from the journal.
	want := resultFor(leases[0].Task, "pre-crash")
	got := st.Results[leases[0].Task.Shard]
	if got.Text != want.Text || string(got.Data) != string(want.Data) {
		t.Fatalf("replayed result diverged: %+v vs %+v", got, want)
	}
	// New submissions on the successor must not collide with replayed ids.
	idC := submit(t, b2, "", 0, spec("c", 0))
	if idC == idA || idC == idB {
		t.Fatalf("post-replay job id %s collides with a replayed id", idC)
	}
}

// TestJournalReplaySkipsCorruptTail: damage degrades to skipped lines,
// never to a refusal to start — the valid prefix's backlog survives a
// garbage line, a wrong-version entry and the half-written tail a
// SIGKILL mid-append leaves behind.
func TestJournalReplaySkipsCorruptTail(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	b1 := newBroker(t, Config{Journal: journalFor(t, dir)}, clk)
	id := submit(t, b1, "", 0, spec("a", 0), spec("a", 1))

	f, err := os.OpenFile(filepath.Join(dir, segmentName(1)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("not json at all\n")
	f.WriteString(`{"v":"qjournal0","kind":"submit","job":"jX"}` + "\n")
	f.WriteString(`{"v":"qjournal1","kind":"sub`) // truncated mid-record, no newline
	f.Close()

	b2 := newBroker(t, Config{Journal: journalFor(t, dir)}, clk)
	st, err := b2.Status(id)
	if err != nil || st.State != api.JobQueued || st.Total != 2 {
		t.Fatalf("backlog lost to a corrupt tail: %v %v", st, err)
	}
	m := b2.Metrics()
	if m.Journal.Skipped != 3 {
		t.Fatalf("skipped = %d, want 3 (garbage, wrong version, truncated tail)", m.Journal.Skipped)
	}
	if m.Journal.ReplayedJobs != 1 || m.Journal.ReplayedTasks != 2 {
		t.Fatalf("replay metrics = %+v, want the intact job back", *m.Journal)
	}
}

// TestJournalCompactionShedsGrants: replay rewrites the journal to just
// the live state — grant entries (redundant once requeued) disappear,
// cancel markers survive, and a third broker replays the compacted file
// to the same state.
func TestJournalCompactionShedsGrants(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	b1 := newBroker(t, Config{Journal: journalFor(t, dir)}, clk)
	idKeep := submit(t, b1, "", 0, spec("keep", 0))
	idGone := submit(t, b1, "", 0, spec("gone", 0))
	w := hello(t, b1, "w1")
	if got := len(poll(t, b1, w, 1)); got != 1 { // leaves a grant entry behind
		t.Fatalf("want 1 lease, got %d", got)
	}
	if err := b1.Cancel(api.CancelRequest{Proto: api.Version, ID: idGone}); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"kind":"grant"`) {
		t.Fatal("precondition: journal should hold a grant entry before compaction")
	}

	b2 := newBroker(t, Config{Journal: journalFor(t, dir)}, clk)
	if m := b2.Metrics(); m.Journal.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", m.Journal.Compactions)
	}
	raw, err = os.ReadFile(filepath.Join(dir, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"kind":"grant"`) {
		t.Fatalf("compacted journal still holds grant entries:\n%s", raw)
	}
	if !strings.Contains(string(raw), `"kind":"cancel"`) {
		t.Fatalf("compacted journal lost the cancel marker:\n%s", raw)
	}

	b3 := newBroker(t, Config{Journal: journalFor(t, dir)}, clk)
	if st, err := b3.Status(idKeep); err != nil || st.State != api.JobQueued {
		t.Fatalf("live job after double replay: %v %v", st, err)
	}
	if st, err := b3.Status(idGone); err != nil || st.State != api.JobCanceled {
		t.Fatalf("canceled job after double replay: %v %v, want canceled", st, err)
	}
}

// TestJournalSyncTiering: client-visible records (submit, done) are
// fsynced, grants are not — and a whole submission batch shares one
// fsync rather than paying one per job.
func TestJournalSyncTiering(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	jl := journalFor(t, dir)
	b := newBroker(t, Config{Journal: jl}, clk)

	submit(t, b, "", 0, spec("a", 0))
	after1 := jl.metrics()
	if after1.Fsyncs != 1 {
		t.Fatalf("fsyncs after one submit = %d, want 1", after1.Fsyncs)
	}

	batch := api.JobSubmitBatch{Proto: api.Version, Jobs: []api.JobSubmit{
		{Proto: api.Version, Tasks: []api.TaskSpec{spec("b", 0)}},
		{Proto: api.Version, Tasks: []api.TaskSpec{spec("c", 0)}},
		{Proto: api.Version, Tasks: []api.TaskSpec{spec("d", 0)}},
	}}
	if _, err := b.SubmitBatch(batch); err != nil {
		t.Fatal(err)
	}
	after2 := jl.metrics()
	if got := after2.Fsyncs - after1.Fsyncs; got != 1 {
		t.Fatalf("a 3-job batch cost %d fsyncs, want 1", got)
	}

	w := hello(t, b, "w1")
	leases := poll(t, b, w, 4)
	after3 := jl.metrics()
	if after3.Fsyncs != after2.Fsyncs {
		t.Fatalf("granting leases fsynced (%d -> %d); grants are the unsynced tier", after2.Fsyncs, after3.Fsyncs)
	}
	if after3.Appends <= after2.Appends {
		t.Fatal("grants should still be appended, just not fsynced")
	}
	done(t, b, w, leases[0], "r")
	if after4 := jl.metrics(); after4.Fsyncs != after3.Fsyncs+1 {
		t.Fatalf("done must fsync before the reply (%d -> %d)", after3.Fsyncs, after4.Fsyncs)
	}
}
