package queue

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/api"
)

// The journal makes the broker's backlog survive a crash. It is one
// append-only JSON-lines file, <dir>/journal.jsonl, in the same
// versioned cache-entry style as the engine's disk result cache: every
// line is a journalEntry stamped with journalFormatVersion, corrupt or
// stale lines are skipped with a warning on replay (damage degrades to
// lost entries, never to a refusal to start), and a truncated tail —
// the expected wound from SIGKILL mid-write — costs at most the last
// record.
//
// What is written, and how durably, follows from what a loss costs:
//
//   - submit, done, cancel are fsynced before the broker replies. These
//     are the records a client acts on (it stops resubmitting once the
//     SubmitReply arrives, stops polling once results land), so they
//     must survive the crash that immediately follows the reply.
//   - grant (lease) entries are appended without fsync. Losing one
//     re-runs a task that was already leased — wasted work, not lost
//     work — and tasks are deterministic, so the re-run is
//     byte-identical.
//
// On startup the broker replays the journal (rebuilding jobs, recorded
// results and the pending queues; leased-but-unfinished tasks requeue)
// and then compacts it: the replayed live state is rewritten to a
// fresh file that atomically replaces the old one, shedding grants,
// superseded entries and swept jobs.

// journalFormatVersion stamps every entry; bump on any layout change so
// replay skips entries written by incompatible code.
const journalFormatVersion = "qjournal1"

// journalFile is the JSON-lines file name inside the journal dir.
const journalFile = "journal.jsonl"

// Journal entry kinds.
const (
	entrySubmit = "submit"
	entryGrant  = "grant"
	entryDone   = "done"
	entryCancel = "cancel"
)

// journalEntry is one persisted line. Kind selects which fields are
// meaningful: submit carries the job (tenant, priority, tasks), grant
// and done carry a task index (and done a result), cancel only the job
// id.
type journalEntry struct {
	V    string `json:"v"`
	Kind string `json:"kind"`
	Job  string `json:"job"`

	Tenant   string         `json:"tenant,omitempty"`
	Priority int            `json:"priority,omitempty"`
	Tasks    []api.TaskSpec `json:"tasks,omitempty"`

	Task   int             `json:"task,omitempty"`
	Worker string          `json:"worker,omitempty"`
	Result *api.TaskResult `json:"result,omitempty"`
}

// Journal is the broker's write-ahead record. All methods are safe for
// concurrent use; append failures are logged once per cause and
// otherwise swallowed — persistence degrades, the queue keeps serving
// (exactly like the disk result cache).
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File

	appends, fsyncs, compactions  int
	replayJobs, replayTasks       int
	replayRequeued, replaySkipped int
}

// OpenJournal opens (creating as needed) the journal under dir. The
// returned Journal is handed to the broker via Config.Journal; queue
// replay and compaction happen inside New.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("queue: journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("queue: open journal: %w", err)
	}
	return &Journal{path: path, f: f}, nil
}

// Close flushes and closes the backing file.
func (jl *Journal) Close() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return nil
	}
	err := jl.f.Close()
	jl.f = nil
	return err
}

// append writes one entry; with sync it also fsyncs, making the entry
// durable before the caller replies to its client.
func (jl *Journal) append(e journalEntry, sync bool) {
	e.V = journalFormatVersion
	line, err := json.Marshal(e)
	if err != nil {
		log.Printf("queue: journal: marshal %s entry: %v", e.Kind, err)
		return
	}
	line = append(line, '\n')
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return
	}
	if _, err := jl.f.Write(line); err != nil {
		log.Printf("queue: journal: append: %v", err)
		return
	}
	jl.appends++
	if sync {
		if err := jl.f.Sync(); err != nil {
			log.Printf("queue: journal: fsync: %v", err)
			return
		}
		jl.fsyncs++
	}
}

// sync fsyncs everything appended so far; one sync can cover a whole
// batch of appends.
func (jl *Journal) sync() {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return
	}
	if err := jl.f.Sync(); err != nil {
		log.Printf("queue: journal: fsync: %v", err)
		return
	}
	jl.fsyncs++
}

// load reads every well-formed current-version entry, in file order.
// Malformed lines, wrong-version entries and a truncated tail are
// counted as skips and logged; a scanner error abandons the remainder
// of the file but keeps everything read so far.
func (jl *Journal) load() []journalEntry {
	f, err := os.Open(jl.path)
	if err != nil {
		return nil
	}
	defer f.Close()

	var entries []journalEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			jl.noteSkip("line %d: %v", lineNo, err)
			continue
		}
		if e.V != journalFormatVersion {
			jl.noteSkip("line %d: version %q (want %q)", lineNo, e.V, journalFormatVersion)
			continue
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		jl.noteSkip("after line %d: %v", lineNo, err)
	}
	return entries
}

// noteSkip records one unusable journal line (or region) and warns.
func (jl *Journal) noteSkip(format string, args ...any) {
	jl.mu.Lock()
	jl.replaySkipped++
	jl.mu.Unlock()
	log.Printf("queue: journal: skipping %s", fmt.Sprintf(format, args...))
}

// compact atomically replaces the journal with just the live entries:
// written to a sibling temp file, fsynced, then renamed over the
// original. On any failure the old journal (fully replayable) stays in
// place and appends continue against it.
func (jl *Journal) compact(live []journalEntry) {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	tmp := jl.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		log.Printf("queue: journal: compact: %v", err)
		return
	}
	w := bufio.NewWriter(f)
	for _, e := range live {
		e.V = journalFormatVersion
		line, err := json.Marshal(e)
		if err != nil {
			log.Printf("queue: journal: compact: marshal: %v", err)
			f.Close()
			os.Remove(tmp)
			return
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err == nil {
		err = f.Sync()
	}
	if err != nil {
		log.Printf("queue: journal: compact: %v", err)
		f.Close()
		os.Remove(tmp)
		return
	}
	if err := f.Close(); err != nil {
		log.Printf("queue: journal: compact: %v", err)
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, jl.path); err != nil {
		log.Printf("queue: journal: compact: %v", err)
		os.Remove(tmp)
		return
	}
	// Re-point the append handle at the compacted file (the old handle
	// references the replaced inode).
	if jl.f != nil {
		jl.f.Close()
	}
	jl.f, err = os.OpenFile(jl.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		log.Printf("queue: journal: reopen after compact: %v", err)
		jl.f = nil
		return
	}
	jl.compactions++
}

// metrics snapshots the journal's counters.
func (jl *Journal) metrics() api.JournalMetrics {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return api.JournalMetrics{
		Appends:       jl.appends,
		Fsyncs:        jl.fsyncs,
		ReplayedJobs:  jl.replayJobs,
		ReplayedTasks: jl.replayTasks,
		Requeued:      jl.replayRequeued,
		Skipped:       jl.replaySkipped,
		Compactions:   jl.compactions,
	}
}

// noteReplay records what startup replay restored.
func (jl *Journal) noteReplay(jobs, tasks, requeued int) {
	jl.mu.Lock()
	jl.replayJobs = jobs
	jl.replayTasks = tasks
	jl.replayRequeued = requeued
	jl.mu.Unlock()
}
