package queue

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/faultinject"
)

// The journal makes the broker's backlog survive a crash. It is a
// sequence of append-only JSON-lines segments, <dir>/journal-NNNNNN.jsonl,
// in the same versioned cache-entry style as the engine's disk result
// cache: every line is a journalEntry stamped with journalFormatVersion.
//
// Segmentation bounds the damage radius and the disk footprint. Appends
// go to the highest-numbered (active) segment; when it exceeds the
// byte budget the journal seals it and rolls to a fresh one, and the
// broker folds the sealed segments into a single state snapshot in the
// background — compaction now runs under load, not just at startup.
// Replay walks the segments in number order, so a snapshot (always the
// lowest segment) is applied first and later segments layer deltas on
// top.
//
// Corruption policy follows position. The active segment's tail is
// where SIGKILL mid-write tears a record, so damage there is expected
// and degrades to skip-with-warning, costing at most the last record.
// A sealed (non-final) segment was written, fsynced and rolled past —
// damage there means the disk lied or an operator edited history, and
// OpenJournal fails loudly rather than silently serving a backlog with
// a hole in the middle.
//
// Background compaction is crash-safe without a manifest because
// replay is idempotent: the snapshot is written to a temp file,
// fsynced, renamed over the lowest folded segment, and only then are
// the other folded segments deleted. A crash between the rename and
// the deletes leaves stale segments whose entries are a subset of the
// snapshot; replaying them again skips duplicate submits and rewrites
// byte-identical results.
//
// What is written, and how durably, follows from what a loss costs:
//
//   - submit, done, cancel are fsynced before the broker replies. These
//     are the records a client acts on (it stops resubmitting once the
//     SubmitReply arrives, stops polling once results land), so they
//     must survive the crash that immediately follows the reply.
//   - grant (lease) entries are appended without fsync. Losing one
//     re-runs a task that was already leased — wasted work, not lost
//     work — and tasks are deterministic, so the re-run is
//     byte-identical.

// journalFormatVersion stamps every entry; bump on any layout change so
// replay skips entries written by incompatible code.
const journalFormatVersion = "qjournal1"

// legacyJournalFile is the pre-segmentation single-file name; found
// alone, it is adopted as segment 1.
const legacyJournalFile = "journal.jsonl"

// journalMetaFile persists the replication generation across restarts.
// Generations must be monotonic over the journal's whole lifetime — not
// just one process incarnation — or a follower cursor minted before a
// crash could coincidentally match the restarted primary's in-memory
// counter and falsely validate against a snapshot the startup fold
// rewrote (silent standby divergence). Every exposed generation is
// persisted here before it becomes visible, and OpenJournal resumes one
// past the persisted value.
const journalMetaFile = "journal.meta"

// journalMeta is the on-disk layout of journalMetaFile.
type journalMeta struct {
	V   string `json:"v"`
	Gen int    `json:"gen"`
}

// readJournalMeta returns the last persisted generation (0 when the
// file does not exist — a journal that never replicated or predates
// generation persistence). A present-but-unreadable meta is a hard
// error, like corruption in a sealed segment: guessing a generation
// risks serving stale replication cursors as valid.
func readJournalMeta(dir string) (int, error) {
	raw, err := os.ReadFile(filepath.Join(dir, journalMetaFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("queue: journal meta: %w", err)
	}
	var m journalMeta
	if err := json.Unmarshal(bytes.TrimSpace(raw), &m); err != nil || m.V != journalFormatVersion || m.Gen < 0 {
		return 0, fmt.Errorf("queue: journal meta %s corrupt; delete it to reset replication generations (followers will restart their streams)",
			filepath.Join(dir, journalMetaFile))
	}
	return m.Gen, nil
}

// writeJournalMeta durably records gen: temp file, fsync, rename — the
// same crash-safe dance as compaction snapshots.
func writeJournalMeta(dir string, gen int) error {
	path := filepath.Join(dir, journalMetaFile)
	tmp := path + ".tmp"
	raw, err := json.Marshal(journalMeta{V: journalFormatVersion, Gen: gen})
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, err = f.Write(raw)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// segmentName renders the on-disk name of segment n.
func segmentName(n int) string {
	return fmt.Sprintf("journal-%06d.jsonl", n)
}

// segmentNumber parses a segment file name back to its number.
func segmentNumber(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, "journal-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".jsonl")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// Journal entry kinds.
const (
	entrySubmit = "submit"
	entryGrant  = "grant"
	entryDone   = "done"
	entryCancel = "cancel"
	// entryEpoch stamps a fencing epoch: written (fsynced) when a
	// follower promotes, and — with Fenced set — when an ex-primary is
	// told the epoch moved on. Replaying it restores the fence across
	// restarts, so a zombie primary stays fenced.
	entryEpoch = "epoch"
	// entryCursor is follower-only bookkeeping: the replication resume
	// position, appended after each applied batch. It is meaningful only
	// in the journal that wrote it (own=true on replay) — streamed to a
	// downstream follower it is ignored.
	entryCursor = "cursor"
)

// journalEntry is one persisted line. Kind selects which fields are
// meaningful: submit carries the job (tenant, priority, tasks), grant
// and done carry a task index (and done a result), cancel only the job
// id.
type journalEntry struct {
	V    string `json:"v"`
	Kind string `json:"kind"`
	Job  string `json:"job"`

	Tenant   string         `json:"tenant,omitempty"`
	Priority int            `json:"priority,omitempty"`
	Tasks    []api.TaskSpec `json:"tasks,omitempty"`

	Task   int             `json:"task,omitempty"`
	Worker string          `json:"worker,omitempty"`
	Result *api.TaskResult `json:"result,omitempty"`

	// Epoch-entry fields: the fencing epoch, whether this broker is the
	// fenced party (as opposed to the promoting one), and where the new
	// primary lives (the redirect hint for refused mutations).
	Epoch   int64  `json:"epoch,omitempty"`
	Fenced  bool   `json:"fenced,omitempty"`
	Primary string `json:"primary,omitempty"`

	// Cursor-entry fields: the replication resume position (generation,
	// segment, offset) into the primary's journal.
	Seg int   `json:"seg,omitempty"`
	Off int64 `json:"off,omitempty"`
	Gen int   `json:"gen,omitempty"`
}

// Journal is the broker's write-ahead record. All methods are safe for
// concurrent use; append failures are logged once per cause and
// otherwise swallowed — persistence degrades, the queue keeps serving
// (exactly like the disk result cache).
type Journal struct {
	mu       sync.Mutex
	dir      string
	maxBytes int64

	f           *os.File // active segment append handle
	activeSeg   int
	activeBytes int64
	sealed      []int // rolled-past segments awaiting compaction, ascending
	claimed     []int // segments a running compaction owns
	loaded      []journalEntry
	compactWG   sync.WaitGroup // in-flight compactAsync goroutines

	// Replication read side. syncedBytes is the active segment's fsync
	// watermark: streaming never serves bytes past it, so a follower
	// only ever sees records the primary already made durable. syncWake
	// is closed (and replaced) whenever the watermark moves, waking
	// parked long-poll readers. generation counts compaction folds —
	// each fold rewrites history, invalidating cursors into any segment
	// ≤ foldedThrough that were minted under an older generation.
	// Generations are persisted (journalMetaFile) before they are
	// exposed and never repeat across restarts; baseGen is this
	// incarnation's first generation, so any cursor below it was minted
	// against history a previous incarnation may have rewritten.
	syncedBytes   int64
	syncWake      chan struct{}
	generation    int
	baseGen       int
	foldedThrough int

	faults *faultinject.Injector

	appends, fsyncs, compactions  int
	rotations                     int
	replayJobs, replayTasks       int
	replayRequeued, replaySkipped int
	streamReads                   int
	streamBytes                   int64
}

// OpenJournal opens the journal under dir, reading every existing
// segment (adopting a legacy single-file journal as segment 1) and
// starting a fresh active segment above them. maxBytes bounds the
// active segment: appends past it seal the segment and roll to a new
// one (0 disables rotation). Corruption in a sealed segment is a hard
// error; only the final segment's tail is forgiven (see the package
// comment). The returned Journal is handed to the broker via
// Config.Journal; queue replay and compaction happen inside New.
func OpenJournal(dir string, maxBytes int64) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("queue: journal dir: %w", err)
	}
	jl := &Journal{dir: dir, maxBytes: maxBytes, syncWake: make(chan struct{})}

	// Resume one generation past the last one this journal ever exposed
	// and persist the claim before serving: a follower cursor minted by
	// any earlier incarnation is then provably below baseGen, even if
	// the crash landed between a fold's snapshot rename and its meta
	// write.
	gen, err := readJournalMeta(dir)
	if err != nil {
		return nil, err
	}
	jl.generation = gen + 1
	jl.baseGen = jl.generation
	if err := writeJournalMeta(dir, jl.generation); err != nil {
		return nil, fmt.Errorf("queue: persist journal generation: %w", err)
	}

	// A .tmp file is a compaction that died between Create and Rename;
	// its content is still fully covered by the claimed segments it was
	// folding, so it is pure garbage here.
	tmps, _ := filepath.Glob(filepath.Join(dir, "journal-*.jsonl.tmp"))
	for _, tmp := range tmps {
		if err := os.Remove(tmp); err != nil {
			log.Printf("queue: journal: drop stale %s: %v", filepath.Base(tmp), err)
		}
	}

	names, err := filepath.Glob(filepath.Join(dir, "journal-*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("queue: scan journal dir: %w", err)
	}
	var segs []int
	for _, name := range names {
		if n, ok := segmentNumber(filepath.Base(name)); ok {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)

	// Adopt a pre-segmentation journal as the first segment — but only
	// into an otherwise empty directory. If segments already exist (a
	// directory served by both old and new binaries across a downgrade),
	// renaming would clobber a segment and the replay order of the two
	// histories is a guess either way; refuse and let the operator pick.
	legacy := filepath.Join(dir, legacyJournalFile)
	if _, err := os.Stat(legacy); err == nil {
		if len(segs) > 0 {
			return nil, fmt.Errorf("queue: both %s and %d journal segment(s) exist in %s; move one aside before starting",
				legacyJournalFile, len(segs), dir)
		}
		if err := os.Rename(legacy, jl.segmentPath(1)); err != nil {
			return nil, fmt.Errorf("queue: adopt legacy journal: %w", err)
		}
		segs = []int{1}
	}

	for i, n := range segs {
		strict := i < len(segs)-1
		entries, err := jl.readSegment(n, strict)
		if err != nil {
			return nil, err
		}
		jl.loaded = append(jl.loaded, entries...)
	}
	jl.sealed = segs

	jl.activeSeg = 1
	if len(segs) > 0 {
		jl.activeSeg = segs[len(segs)-1] + 1
	}
	jl.f, err = os.OpenFile(jl.segmentPath(jl.activeSeg),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("queue: open journal segment: %w", err)
	}
	return jl, nil
}

// SetFaults installs a fault injector on the append path (points
// "journal.append.<kind>"); nil removes it. Test tooling only.
func (jl *Journal) SetFaults(in *faultinject.Injector) {
	jl.mu.Lock()
	jl.faults = in
	jl.mu.Unlock()
}

// segmentPath is the full path of segment n.
func (jl *Journal) segmentPath(n int) string {
	return filepath.Join(jl.dir, segmentName(n))
}

// Close waits out any in-flight background compaction, then flushes
// and closes the active segment. Waiting first keeps a fold from
// renaming or deleting segments after the process thinks the journal
// is shut (and after a test has torn down the directory).
func (jl *Journal) Close() error {
	jl.compactWG.Wait()
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return nil
	}
	err := jl.f.Close()
	jl.f = nil
	jl.wakeStreamLocked() // unpark long-poll readers so they observe the close
	return err
}

// wakeStreamLocked signals streaming readers that the durable frontier
// moved (or the journal closed). Callers hold jl.mu.
func (jl *Journal) wakeStreamLocked() {
	close(jl.syncWake)
	jl.syncWake = make(chan struct{})
}

// append writes one entry; with sync it also fsyncs, making the entry
// durable before the caller replies to its client. The returned flag
// reports that the active segment rolled over — the caller (the
// broker, holding its own lock) should claim the sealed segments for
// background compaction while its state still exactly matches them.
func (jl *Journal) append(e journalEntry, sync bool) (rotated bool) {
	e.V = journalFormatVersion
	line, err := json.Marshal(e)
	if err != nil {
		log.Printf("queue: journal: marshal %s entry: %v", e.Kind, err)
		return false
	}
	line = append(line, '\n')
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return false
	}
	if act, ok := jl.faults.Eval("journal.append." + e.Kind); ok {
		switch act.Kind {
		case faultinject.KindTorn:
			// Half the record and a newline: exactly the wound a power
			// cut leaves — one corrupt line at the tail.
			torn := append(append([]byte(nil), line[:len(line)/2]...), '\n')
			if _, err := jl.f.Write(torn); err != nil {
				log.Printf("queue: journal: append: %v", err)
			}
			jl.activeBytes += int64(len(torn))
			return false
		case faultinject.KindDelay:
			jl.mu.Unlock()
			time.Sleep(act.Delay)
			jl.mu.Lock()
			if jl.f == nil {
				return false
			}
		default: // drop, error, disconnect: the record is lost
			return false
		}
	}
	if _, err := jl.f.Write(line); err != nil {
		log.Printf("queue: journal: append: %v", err)
		return false
	}
	jl.appends++
	jl.activeBytes += int64(len(line))
	if sync {
		if err := jl.f.Sync(); err != nil {
			log.Printf("queue: journal: fsync: %v", err)
			return false
		}
		jl.fsyncs++
		jl.syncedBytes = jl.activeBytes
		jl.wakeStreamLocked()
	}
	if jl.maxBytes > 0 && jl.activeBytes >= jl.maxBytes {
		return jl.rotateLocked()
	}
	return false
}

// appendRaw appends one already-serialized journal line (newline
// included) verbatim — the follower's write path, which must keep the
// replicated bytes identical to the primary's so the two journals stay
// comparable. The caller vets the line (parsable, current version) and
// fsyncs per batch via sync(). Returns whether the segment rolled over.
func (jl *Journal) appendRaw(line []byte) (rotated bool) {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return false
	}
	if _, err := jl.f.Write(line); err != nil {
		log.Printf("queue: journal: append: %v", err)
		return false
	}
	jl.appends++
	jl.activeBytes += int64(len(line))
	if jl.maxBytes > 0 && jl.activeBytes >= jl.maxBytes {
		return jl.rotateLocked()
	}
	return false
}

// rotateLocked seals the active segment and opens the next one,
// reporting whether the rotation happened. The outgoing segment is
// fsynced before it is sealed: a rotation can land mid-batch, with
// unsynced submit entries still in the page cache, and once a segment
// is sealed replay reads it in strict mode — every record in it must
// be durable, or a power cut would both lose acked submissions and
// leave a torn tail that makes OpenJournal refuse to start.
func (jl *Journal) rotateLocked() bool {
	if err := jl.f.Sync(); err != nil {
		// Can't prove the segment is durable, so don't seal it. Keep
		// appending; the next append over budget retries the rotation.
		log.Printf("queue: journal: fsync before sealing segment %d: %v", jl.activeSeg, err)
		return false
	}
	jl.fsyncs++
	if err := jl.f.Close(); err != nil {
		log.Printf("queue: journal: seal segment %d: %v", jl.activeSeg, err)
	}
	jl.sealed = append(jl.sealed, jl.activeSeg)
	next := jl.activeSeg + 1
	f, err := os.OpenFile(jl.segmentPath(next),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// Rotation failed: reopen the old segment and keep appending to
		// it — durability beats the byte budget.
		log.Printf("queue: journal: open segment %d: %v", next, err)
		jl.sealed = jl.sealed[:len(jl.sealed)-1]
		jl.f, err = os.OpenFile(jl.segmentPath(jl.activeSeg),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Printf("queue: journal: reopen segment %d: %v", jl.activeSeg, err)
			jl.f = nil
		}
		return false
	}
	jl.f = f
	jl.activeSeg = next
	jl.activeBytes = 0
	jl.syncedBytes = 0
	jl.rotations++
	// The sealed segment is now fully durable and readable end to end;
	// wake streamers parked at the old watermark.
	jl.wakeStreamLocked()
	return true
}

// sync fsyncs everything appended so far; one sync can cover a whole
// batch of appends.
func (jl *Journal) sync() {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return
	}
	if err := jl.f.Sync(); err != nil {
		log.Printf("queue: journal: fsync: %v", err)
		return
	}
	jl.fsyncs++
	jl.syncedBytes = jl.activeBytes
	jl.wakeStreamLocked()
}

// load hands over the entries OpenJournal read, in segment order, and
// releases the cached copy.
func (jl *Journal) load() []journalEntry {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	entries := jl.loaded
	jl.loaded = nil
	return entries
}

// readSegment reads every well-formed current-version entry of segment
// n in file order. In strict mode (sealed segments) any unusable line
// is a hard error; otherwise (the final segment, whose tail a SIGKILL
// may have torn) damage is counted as a skip and logged.
func (jl *Journal) readSegment(n int, strict bool) ([]journalEntry, error) {
	f, err := os.Open(jl.segmentPath(n))
	if err != nil {
		return nil, fmt.Errorf("queue: journal segment %d: %w", n, err)
	}
	defer f.Close()

	var entries []journalEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	lineNo := 0
	bad := func(format string, args ...any) error {
		if strict {
			return fmt.Errorf("queue: journal segment %d corrupt: %s (sealed segments must replay cleanly; refusing to serve a backlog with a hole in it)",
				n, fmt.Sprintf(format, args...))
		}
		jl.noteSkip("segment %d "+format, append([]any{n}, args...)...)
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			if err := bad("line %d: %v", lineNo, err); err != nil {
				return nil, err
			}
			continue
		}
		if e.V != journalFormatVersion {
			if err := bad("line %d: version %q (want %q)", lineNo, e.V, journalFormatVersion); err != nil {
				return nil, err
			}
			continue
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		if err := bad("after line %d: %v", lineNo, err); err != nil {
			return nil, err
		}
	}
	return entries, nil
}

// noteSkip records one unusable journal line (or region) and warns.
func (jl *Journal) noteSkip(format string, args ...any) {
	jl.mu.Lock()
	jl.replaySkipped++
	jl.mu.Unlock()
	log.Printf("queue: journal: skipping %s", fmt.Sprintf(format, args...))
}

// claimSealed hands the current sealed segments to a compaction run,
// or nothing if one is already in flight (segments sealed meanwhile
// simply wait for the next claim). The caller must capture the state
// snapshot those segments add up to — under the broker lock, right
// after the rotating append — and then run compactSegments.
func (jl *Journal) claimSealed() []int {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if len(jl.claimed) > 0 || len(jl.sealed) == 0 {
		return nil
	}
	jl.claimed = jl.sealed
	jl.sealed = nil
	return jl.claimed
}

// compactAsync runs compactSegments on its own goroutine, tracked so
// Close can wait for the fold to land (or release) before the active
// segment shuts down under it.
func (jl *Journal) compactAsync(claimed []int, live []journalEntry) {
	jl.compactWG.Add(1)
	go func() {
		defer jl.compactWG.Done()
		jl.compactSegments(claimed, live)
	}()
}

// compactSegments folds the claimed segments into one snapshot
// segment: live is written to a temp file, fsynced, renamed over the
// lowest claimed segment, and the rest are deleted. Safe to run
// concurrently with appends (they target the active segment, which is
// never claimed). On failure the claimed segments return to the sealed
// list untouched — still fully replayable, retried on the next claim.
func (jl *Journal) compactSegments(claimed []int, live []journalEntry) {
	release := func(ok bool) {
		jl.mu.Lock()
		defer jl.mu.Unlock()
		if ok {
			// The snapshot now lives in the lowest claimed slot; it is a
			// sealed segment like any other and folds again next time.
			jl.sealed = append(jl.sealed, claimed[0])
			jl.compactions++
			// History below foldedThrough was rewritten: replication
			// cursors minted before this fold no longer resolve there.
			// Persist the new generation before exposing it, so it can
			// never be re-minted by a restart (see journalMetaFile).
			if err := writeJournalMeta(jl.dir, jl.generation+1); err != nil {
				log.Printf("queue: journal: persist generation %d: %v (a crash before the next successful write may let a restarted primary serve stale replication cursors)",
					jl.generation+1, err)
			}
			jl.generation++
			if last := claimed[len(claimed)-1]; last > jl.foldedThrough {
				jl.foldedThrough = last
			}
		} else {
			jl.sealed = append(jl.sealed, claimed...)
		}
		sort.Ints(jl.sealed)
		jl.claimed = nil
	}

	dst := jl.segmentPath(claimed[0])
	tmp := dst + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		log.Printf("queue: journal: compact: %v", err)
		release(false)
		return
	}
	w := bufio.NewWriter(f)
	for _, e := range live {
		e.V = journalFormatVersion
		line, err := json.Marshal(e)
		if err != nil {
			log.Printf("queue: journal: compact: marshal: %v", err)
			f.Close()
			os.Remove(tmp)
			release(false)
			return
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err == nil {
		err = f.Sync()
	}
	if err != nil {
		log.Printf("queue: journal: compact: %v", err)
		f.Close()
		os.Remove(tmp)
		release(false)
		return
	}
	if err := f.Close(); err != nil {
		log.Printf("queue: journal: compact: %v", err)
		os.Remove(tmp)
		release(false)
		return
	}
	if err := os.Rename(tmp, dst); err != nil {
		log.Printf("queue: journal: compact: %v", err)
		os.Remove(tmp)
		release(false)
		return
	}
	// The snapshot is durable; stale copies of its content can go. A
	// crash mid-loop only leaves segments replay already tolerates.
	for _, n := range claimed[1:] {
		if err := os.Remove(jl.segmentPath(n)); err != nil {
			log.Printf("queue: journal: compact: drop segment %d: %v", n, err)
		}
	}
	release(true)
}

// metrics snapshots the journal's counters.
func (jl *Journal) metrics() api.JournalMetrics {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return api.JournalMetrics{
		Appends:       jl.appends,
		Fsyncs:        jl.fsyncs,
		ReplayedJobs:  jl.replayJobs,
		ReplayedTasks: jl.replayTasks,
		Requeued:      jl.replayRequeued,
		Skipped:       jl.replaySkipped,
		Compactions:   jl.compactions,
		Rotations:     jl.rotations,
		Segments:      len(jl.sealed) + len(jl.claimed) + 1,
		ActiveBytes:   jl.activeBytes,
		StreamReads:   jl.streamReads,
		StreamBytes:   jl.streamBytes,
	}
}

// noteReplay records what startup replay restored.
func (jl *Journal) noteReplay(jobs, tasks, requeued int) {
	jl.mu.Lock()
	jl.replayJobs = jobs
	jl.replayTasks = tasks
	jl.replayRequeued = requeued
	jl.mu.Unlock()
}
