package queue

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/api"
)

// fakePlane is an in-memory ResultPlane keyed by the task's CacheKey.
type fakePlane struct {
	m       map[string]api.CachedResult
	lookups int
}

func (p *fakePlane) Lookup(_ context.Context, key string) (api.CachedResult, bool) {
	p.lookups++
	cr, ok := p.m[key]
	return cr, ok
}

// cachedSpec is spec() plus the fully seeded cache key a scheduler
// would stamp (shard-distinct, like the engine's seededKey).
func cachedSpec(job string, shard int) api.TaskSpec {
	s := spec(job, shard)
	s.CacheKey = fmt.Sprintf("%s/shard%d/seed7", s.Key, shard)
	return s
}

func planeEntryFor(ts api.TaskSpec, text string) api.CachedResult {
	r := resultFor(ts, text)
	return api.CachedResult{Name: ts.Job, Text: r.Text, Data: r.Data, Seed: ts.Seed, DurationNS: 5}
}

// TestPlaneHitCompletesWithoutLease proves the tentpole acceptance
// property: a job whose every task is plane-resident finishes at
// submit with zero leases and zero workers.
func TestPlaneHitCompletesWithoutLease(t *testing.T) {
	s1, s2 := cachedSpec("mc", 0), cachedSpec("mc", 1)
	plane := &fakePlane{m: map[string]api.CachedResult{
		s1.CacheKey: planeEntryFor(s1, "row-0"),
		s2.CacheKey: planeEntryFor(s2, "row-1"),
	}}
	clk := newClock()
	b := newBroker(t, Config{Plane: plane}, clk)

	id := submit(t, b, "", 0, s1, s2)
	st, err := b.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobDone || st.Done != 2 {
		t.Fatalf("fully cached job: state=%s done=%d", st.State, st.Done)
	}
	for i, res := range st.Results {
		if res.Worker != "result-plane" {
			t.Fatalf("result %d worker %q, want result-plane", i, res.Worker)
		}
		if err := res.Validate(shardSpec(res, s1, s2)); err != nil {
			t.Fatalf("result %d invalid: %v", i, err)
		}
	}
	if st.Results[0].Text != "row-0" || st.Results[1].Text != "row-1" {
		t.Fatalf("result text %q / %q", st.Results[0].Text, st.Results[1].Text)
	}
	stats := b.Stats()
	if stats.PlaneHits != 2 || stats.Pending != 0 || stats.Leased != 0 {
		t.Fatalf("stats after cached submit: %+v", stats)
	}
	// No worker ever registered; nothing to poll.
	w := hello(t, b, "late-worker")
	if leases := poll(t, b, w, 4); len(leases) != 0 {
		t.Fatalf("worker got %d leases for a plane-completed job", len(leases))
	}
	if m := b.Metrics(); m.PlaneHits != 2 {
		t.Fatalf("metrics plane hits %d, want 2", m.PlaneHits)
	}
}

// shardSpec picks the matching original spec for a result (test aid).
func shardSpec(r api.TaskResult, specs ...api.TaskSpec) api.TaskSpec {
	for _, s := range specs {
		if s.Job == r.Job && s.Shard == r.Shard {
			return s
		}
	}
	return api.TaskSpec{}
}

// TestPlanePartialHitQueuesOnlyMisses proves a mixed job leases only
// its uncached tasks and admission charges only those.
func TestPlanePartialHitQueuesOnlyMisses(t *testing.T) {
	hit, miss := cachedSpec("t1", 0), cachedSpec("t1", 1)
	plane := &fakePlane{m: map[string]api.CachedResult{
		hit.CacheKey: planeEntryFor(hit, "cached"),
	}}
	clk := newClock()
	// MaxQueued 1: the job only fits because the cached task is free.
	b := newBroker(t, Config{Plane: plane, MaxQueued: 1}, clk)

	id := submit(t, b, "", 0, hit, miss)
	st, _ := b.Status(id)
	if st.State != api.JobRunning || st.Done != 1 {
		t.Fatalf("partial job: state=%s done=%d", st.State, st.Done)
	}
	w := hello(t, b, "w")
	leases := poll(t, b, w, 4)
	if len(leases) != 1 || leases[0].Task.Shard != miss.Shard {
		t.Fatalf("leases %+v, want exactly the uncached shard", leases)
	}
	done(t, b, w, leases[0], "computed")
	st, _ = b.Status(id)
	if st.State != api.JobDone {
		t.Fatalf("after worker done: state=%s", st.State)
	}
	if st.Results[0].Worker != "result-plane" || st.Results[1].Worker == "result-plane" {
		t.Fatalf("worker stamps: %q / %q", st.Results[0].Worker, st.Results[1].Worker)
	}
	if s := b.Stats(); s.PlaneHits != 1 {
		t.Fatalf("plane hits %d, want 1", s.PlaneHits)
	}
}

// TestPlaneHitsSurviveJournalReplay proves plane completions are as
// durable as worker results: a crash between submit and anything else
// replays the job fully done.
func TestPlaneHitsSurviveJournalReplay(t *testing.T) {
	dir := t.TempDir()
	s1, s2 := cachedSpec("mc", 0), cachedSpec("mc", 1)
	plane := &fakePlane{m: map[string]api.CachedResult{
		s1.CacheKey: planeEntryFor(s1, "row-0"),
		s2.CacheKey: planeEntryFor(s2, "row-1"),
	}}
	clk := newClock()

	jl, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := newBroker(t, Config{Plane: plane, Journal: jl}, clk)
	id := submit(t, b, "", 0, s1, s2)
	jl.Close()

	// Restart without a plane: the replayed results must stand alone.
	jl2, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	b2 := newBroker(t, Config{Journal: jl2}, clk)
	st, err := b2.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobDone || st.Done != 2 {
		t.Fatalf("replayed job: state=%s done=%d", st.State, st.Done)
	}
	if st.Results[0].Text != "row-0" || st.Results[1].Worker != "result-plane" {
		t.Fatalf("replayed results: %+v", st.Results)
	}
}

// TestDeadPlaneDegradesToQueue proves a plane returning misses (or
// errors surfaced as misses) leaves the broker exactly as cache-blind.
func TestDeadPlaneDegradesToQueue(t *testing.T) {
	plane := &fakePlane{m: map[string]api.CachedResult{}}
	clk := newClock()
	b := newBroker(t, Config{Plane: plane}, clk)
	id := submit(t, b, "", 0, cachedSpec("mc", 0))
	if st, _ := b.Status(id); st.State != api.JobQueued {
		t.Fatalf("miss-everything plane: state=%s", st.State)
	}
	if plane.lookups != 1 {
		t.Fatalf("lookups %d, want 1", plane.lookups)
	}
	if s := b.Stats(); s.PlaneHits != 0 || s.Pending != 1 {
		t.Fatalf("stats %+v", s)
	}
}

// TestRenewCarriesProgress proves renewal heartbeats land in the fleet
// view and the lease metrics, with progress age driven by the clock.
func TestRenewCarriesProgress(t *testing.T) {
	clk := newClock()
	b := newBroker(t, Config{LeaseTTL: 30 * time.Second}, clk)
	submit(t, b, "", 0, spec("train", 0))
	w := hello(t, b, "w1")
	leases := poll(t, b, w, 1)
	if len(leases) != 1 {
		t.Fatal("no lease granted")
	}
	clk.advance(5 * time.Second)
	_, err := b.Renew(api.LeaseRenew{
		Proto: api.Version, WorkerID: w, LeaseIDs: []string{leases[0].ID},
		Progress: map[string]*api.TaskProgress{
			leases[0].ID: {Job: "train", Shard: 0, Stage: "train", Done: 3, Total: 10},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Second)

	fs := b.Fleet()
	if len(fs.Workers) != 1 || len(fs.Workers[0].Leases) != 1 {
		t.Fatalf("fleet %+v", fs)
	}
	fl := fs.Workers[0].Leases[0]
	if fl.Progress == nil || fl.Progress.Done != 3 || fl.Progress.Stage != "train" {
		t.Fatalf("fleet progress %+v", fl.Progress)
	}
	if fl.AgeNS != (7 * time.Second).Nanoseconds() {
		t.Fatalf("lease age %v", time.Duration(fl.AgeNS))
	}
	if fl.ProgressAgeNS != (2 * time.Second).Nanoseconds() {
		t.Fatalf("progress age %v", time.Duration(fl.ProgressAgeNS))
	}

	m := b.Metrics()
	if len(m.Leases) != 1 || m.Leases[0].ProgressAgeNS != (2*time.Second).Nanoseconds() {
		t.Fatalf("lease metrics %+v", m.Leases)
	}
	if m.Leases[0].Task != "train[0]" || m.Leases[0].Worker != "w1" {
		t.Fatalf("lease metrics labels %+v", m.Leases[0])
	}
}
