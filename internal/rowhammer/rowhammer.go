// Package rowhammer implements the DRAM disturbance fault model used by the
// DRAM-Locker paper's threat model (§III): every row has a hammer threshold
// T_RH; once a row accumulates more than T_RH activations within one refresh
// window, bit-flips are induced in the two physically adjacent victim rows.
//
// The engine observes activations via dram.ActivateObserver, tracks per-row
// counts inside the current refresh window, and injects flips into the
// device's stored bits, so attacks and defenses interact through real state
// rather than bookkeeping flags.
package rowhammer

import (
	"fmt"
	"sort"

	"repro/internal/dram"
	"repro/internal/stats"
)

// Threshold records a published hammer count threshold for a DRAM
// generation (paper Fig. 1(b), after Kim et al. ISCA'20).
type Threshold struct {
	Generation string
	TRH        int
}

// PublishedThresholds reproduces the table in Fig. 1(b) of the paper.
// For LPDDR4 (new) the paper reports a 4.8K-9K range; the midpoint carries
// the range in Note.
func PublishedThresholds() []Threshold {
	return []Threshold{
		{Generation: "DDR3 (old)", TRH: 139_000},
		{Generation: "DDR3 (new)", TRH: 22_400},
		{Generation: "DDR4 (old)", TRH: 17_500},
		{Generation: "DDR4 (new)", TRH: 10_000},
		{Generation: "LPDDR4 (old)", TRH: 16_800},
		{Generation: "LPDDR4 (new)", TRH: 4_800},
	}
}

// FlipEvent describes one injected disturbance flip.
type FlipEvent struct {
	Aggressor dram.RowAddr
	Victim    dram.RowAddr
	Bit       int
	At        dram.Picoseconds
}

// Config parameterises the fault model.
type Config struct {
	// TRH is the activation count within one refresh window beyond which a
	// row disturbs its neighbors.
	TRH int
	// BlastRadius is the neighbor distance affected. 1 reproduces the
	// paper's model; 2 additionally flips distance-2 rows (Half-Double).
	BlastRadius int
	// DistantFlipProb is the per-threshold-crossing probability that a
	// distance-2 victim flips when BlastRadius >= 2. Distance-1 victims
	// always flip on crossing, per the paper's threat model.
	DistantFlipProb float64
	// FlipsPerCrossing is how many bits flip in each victim row per
	// threshold crossing when no targeted bits are registered.
	FlipsPerCrossing int
	// Seed drives victim bit selection for untargeted flips.
	Seed uint64
}

// DefaultConfig returns the paper's worst-case model: T_RH=1k, immediate
// neighbors, one random flip per crossing.
func DefaultConfig() Config {
	return Config{
		TRH:              1000,
		BlastRadius:      1,
		DistantFlipProb:  0.2,
		FlipsPerCrossing: 1,
		Seed:             0x0dd4a11,
	}
}

// Validate checks config sanity.
func (c Config) Validate() error {
	if c.TRH <= 0 {
		return fmt.Errorf("rowhammer: TRH must be positive, got %d", c.TRH)
	}
	if c.BlastRadius < 1 || c.BlastRadius > 2 {
		return fmt.Errorf("rowhammer: BlastRadius must be 1 or 2, got %d", c.BlastRadius)
	}
	if c.DistantFlipProb < 0 || c.DistantFlipProb > 1 {
		return fmt.Errorf("rowhammer: DistantFlipProb must be in [0,1], got %g", c.DistantFlipProb)
	}
	if c.FlipsPerCrossing < 0 {
		return fmt.Errorf("rowhammer: FlipsPerCrossing must be >= 0, got %d", c.FlipsPerCrossing)
	}
	return nil
}

// Engine tracks activations and injects disturbance flips into a device.
//
// Targeted flips: the paper's threat model (assumptions 4-5) grants the
// attacker a DRAM profiling map and control of data patterns, so the
// attacker can steer *which* victim bit flips. RegisterTarget records the
// attacker's intended victim bits; when an adjacent aggressor crosses T_RH,
// those bits flip. Without registered targets, flips hit seeded
// pseudo-random bit positions (the "random attack" of Fig. 1(a)).
type Engine struct {
	cfg  Config
	dev  *dram.Device
	rng  *stats.RNG
	geom dram.Geometry

	counts      map[int]int // LinearIndex -> activations in current window
	windowStart dram.Picoseconds

	targets map[int][]int // victim LinearIndex -> bit positions to flip

	flips   []FlipEvent
	history FlipHistory
}

// FlipHistory aggregates counters across refresh windows.
type FlipHistory struct {
	TotalActivations int64
	ThresholdCrosses int64
	TotalFlips       int64
	Windows          int64
}

// New creates an engine bound to a device and registers it as an
// activation observer.
func New(dev *dram.Device, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		dev:     dev,
		rng:     stats.NewRNG(cfg.Seed),
		geom:    dev.Geometry(),
		counts:  make(map[int]int),
		targets: make(map[int][]int),
	}
	dev.AddActivateObserver(e)
	return e, nil
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// RegisterTarget records attacker-intended flip bits for a victim row.
// Duplicate bits are ignored.
func (e *Engine) RegisterTarget(victim dram.RowAddr, bits ...int) error {
	if !e.geom.Valid(victim) {
		return fmt.Errorf("rowhammer: invalid victim %v", victim)
	}
	idx := e.geom.LinearIndex(victim)
	existing := e.targets[idx]
	for _, b := range bits {
		if b < 0 || b >= e.geom.RowBytes*8 {
			return fmt.Errorf("rowhammer: bit %d outside row", b)
		}
		dup := false
		for _, x := range existing {
			if x == b {
				dup = true
				break
			}
		}
		if !dup {
			existing = append(existing, b)
		}
	}
	e.targets[idx] = existing
	return nil
}

// ClearTargets removes all registered targets.
func (e *Engine) ClearTargets() { e.targets = make(map[int][]int) }

// ObserveActivate implements dram.ActivateObserver.
func (e *Engine) ObserveActivate(addr dram.RowAddr, now dram.Picoseconds) {
	// Close the refresh window if it elapsed.
	if now-e.windowStart >= e.dev.Timing().TREFW {
		e.ResetWindow(now)
	}
	idx := e.geom.LinearIndex(addr)
	e.counts[idx]++
	e.history.TotalActivations++
	if e.counts[idx] == e.cfg.TRH+1 {
		// Threshold crossed in this window: disturb neighbors once. The
		// count keeps rising; a second crossing needs a fresh window.
		e.history.ThresholdCrosses++
		e.disturb(addr, now)
	}
}

// disturb injects flips into the victims adjacent to the aggressor.
func (e *Engine) disturb(aggressor dram.RowAddr, now dram.Picoseconds) {
	for dist := 1; dist <= e.cfg.BlastRadius; dist++ {
		for _, victim := range e.geom.Neighbors(aggressor, dist) {
			if dist > 1 && !e.rng.Bernoulli(e.cfg.DistantFlipProb) {
				continue
			}
			e.flipVictim(aggressor, victim, now)
		}
	}
}

func (e *Engine) flipVictim(aggressor, victim dram.RowAddr, now dram.Picoseconds) {
	idx := e.geom.LinearIndex(victim)
	if bits, ok := e.targets[idx]; ok && len(bits) > 0 {
		for _, b := range bits {
			if err := e.dev.FlipBit(victim, b); err == nil {
				e.recordFlip(aggressor, victim, b, now)
			}
		}
		return
	}
	for i := 0; i < e.cfg.FlipsPerCrossing; i++ {
		b := e.rng.Intn(e.geom.RowBytes * 8)
		if err := e.dev.FlipBit(victim, b); err == nil {
			e.recordFlip(aggressor, victim, b, now)
		}
	}
}

func (e *Engine) recordFlip(aggressor, victim dram.RowAddr, bit int, now dram.Picoseconds) {
	e.flips = append(e.flips, FlipEvent{Aggressor: aggressor, Victim: victim, Bit: bit, At: now})
	e.history.TotalFlips++
}

// ResetRow clears the current-window activation count of one row. Defense
// mechanisms call this to model a targeted mitigation (victim refresh or a
// row relocation): the accumulated disturbance toward the row's neighbors
// is neutralised.
func (e *Engine) ResetRow(a dram.RowAddr) {
	delete(e.counts, e.geom.LinearIndex(a))
}

// ResetWindow starts a new refresh window: all activation counts reset,
// modelling the refresh of every row.
func (e *Engine) ResetWindow(now dram.Picoseconds) {
	e.counts = make(map[int]int)
	e.windowStart = now
	e.history.Windows++
}

// WindowStart returns the start time of the current refresh window.
func (e *Engine) WindowStart() dram.Picoseconds { return e.windowStart }

// Count returns the current-window activation count of a row.
func (e *Engine) Count(a dram.RowAddr) int {
	return e.counts[e.geom.LinearIndex(a)]
}

// Flips returns all injected flip events so far.
func (e *Engine) Flips() []FlipEvent { return e.flips }

// History returns aggregate counters.
func (e *Engine) History() FlipHistory { return e.history }

// HottestRows returns up to n rows with the highest current-window
// activation counts, most active first. Counter-based defense baselines
// (Graphene, Hydra) are evaluated against this ground truth in tests.
func (e *Engine) HottestRows(n int) []dram.RowAddr {
	type rc struct {
		idx, count int
	}
	all := make([]rc, 0, len(e.counts))
	for idx, c := range e.counts {
		all = append(all, rc{idx, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].idx < all[j].idx
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]dram.RowAddr, 0, n)
	for _, x := range all[:n] {
		out = append(out, e.geom.FromLinearIndex(x.idx))
	}
	return out
}
