// Package rowhammer implements the DRAM disturbance fault model used by the
// DRAM-Locker paper's threat model (§III): every row has a hammer threshold
// T_RH; once a row accumulates more than T_RH activations within one refresh
// window, bit-flips are induced in the two physically adjacent victim rows.
//
// The engine observes activations via dram.ActivateObserver, tracks per-row
// counts inside the current refresh window, and injects flips into the
// device's stored bits, so attacks and defenses interact through real state
// rather than bookkeeping flags.
//
// Per-row state is dense — slices indexed by Geometry.LinearIndex with an
// epoch stamp per row — so the activation hot path is two array accesses,
// and closing a refresh window is O(1) (the epoch advances; stale counters
// are invalidated in place rather than freed). The cost is
// O(Geometry.TotalRows()) memory up front: ~9 bytes per row, ~36MB for the
// 32GB DefaultGeometry and a few hundred KB for the test geometries.
package rowhammer

import (
	"fmt"
	"sort"

	"repro/internal/dram"
	"repro/internal/stats"
)

// Threshold records a published hammer count threshold for a DRAM
// generation (paper Fig. 1(b), after Kim et al. ISCA'20).
type Threshold struct {
	Generation string
	TRH        int
}

// PublishedThresholds reproduces the table in Fig. 1(b) of the paper.
// For LPDDR4 (new) the paper reports a 4.8K-9K range; the midpoint carries
// the range in Note.
func PublishedThresholds() []Threshold {
	return []Threshold{
		{Generation: "DDR3 (old)", TRH: 139_000},
		{Generation: "DDR3 (new)", TRH: 22_400},
		{Generation: "DDR4 (old)", TRH: 17_500},
		{Generation: "DDR4 (new)", TRH: 10_000},
		{Generation: "LPDDR4 (old)", TRH: 16_800},
		{Generation: "LPDDR4 (new)", TRH: 4_800},
	}
}

// FlipEvent describes one injected disturbance flip.
type FlipEvent struct {
	Aggressor dram.RowAddr
	Victim    dram.RowAddr
	Bit       int
	At        dram.Picoseconds
}

// Config parameterises the fault model.
type Config struct {
	// TRH is the activation count within one refresh window beyond which a
	// row disturbs its neighbors.
	TRH int
	// BlastRadius is the neighbor distance affected. 1 reproduces the
	// paper's model; 2 additionally flips distance-2 rows (Half-Double).
	BlastRadius int
	// DistantFlipProb is the per-threshold-crossing probability that a
	// distance-2 victim flips when BlastRadius >= 2. Distance-1 victims
	// always flip on crossing, per the paper's threat model.
	DistantFlipProb float64
	// FlipsPerCrossing is how many bits flip in each victim row per
	// threshold crossing when no targeted bits are registered.
	FlipsPerCrossing int
	// Seed drives victim bit selection for untargeted flips.
	Seed uint64
}

// DefaultConfig returns the paper's worst-case model: T_RH=1k, immediate
// neighbors, one random flip per crossing.
func DefaultConfig() Config {
	return Config{
		TRH:              1000,
		BlastRadius:      1,
		DistantFlipProb:  0.2,
		FlipsPerCrossing: 1,
		Seed:             0x0dd4a11,
	}
}

// Validate checks config sanity.
func (c Config) Validate() error {
	if c.TRH <= 0 {
		return fmt.Errorf("rowhammer: TRH must be positive, got %d", c.TRH)
	}
	if c.BlastRadius < 1 || c.BlastRadius > 2 {
		return fmt.Errorf("rowhammer: BlastRadius must be 1 or 2, got %d", c.BlastRadius)
	}
	if c.DistantFlipProb < 0 || c.DistantFlipProb > 1 {
		return fmt.Errorf("rowhammer: DistantFlipProb must be in [0,1], got %g", c.DistantFlipProb)
	}
	if c.FlipsPerCrossing < 0 {
		return fmt.Errorf("rowhammer: FlipsPerCrossing must be >= 0, got %d", c.FlipsPerCrossing)
	}
	return nil
}

// targetEntry holds the attacker-registered flip bits of one victim row.
// Entries live in a compact slice whose bit slices are reused across
// RegisterTarget/ClearTargets cycles, so the per-TryFlip register/clear
// pattern of the DRAM executor allocates nothing in steady state.
type targetEntry struct {
	idx  int32
	bits []int
}

// Engine tracks activations and injects disturbance flips into a device.
//
// Targeted flips: the paper's threat model (assumptions 4-5) grants the
// attacker a DRAM profiling map and control of data patterns, so the
// attacker can steer *which* victim bit flips. RegisterTarget records the
// attacker's intended victim bits; when an adjacent aggressor crosses T_RH,
// those bits flip. Without registered targets, flips hit seeded
// pseudo-random bit positions (the "random attack" of Fig. 1(a)).
type Engine struct {
	cfg  Config
	dev  *dram.Device
	rng  *stats.RNG
	geom dram.Geometry

	// counts[i] is row i's activation count in the current refresh
	// window, valid only when stamp[i] == epoch; touched lists the rows
	// stamped in this window so scans never walk the whole geometry.
	counts      []int32
	stamp       []uint32
	epoch       uint32
	touched     []int32
	windowStart dram.Picoseconds

	// targetSlot[i] indexes targets for victim row i, -1 when absent.
	targetSlot []int32
	targets    []targetEntry

	flips   []FlipEvent
	history FlipHistory
}

// FlipHistory aggregates counters across refresh windows.
type FlipHistory struct {
	TotalActivations int64
	ThresholdCrosses int64
	TotalFlips       int64
	Windows          int64
}

// New creates an engine bound to a device and registers it as an
// activation observer.
func New(dev *dram.Device, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	total := dev.Geometry().TotalRows()
	e := &Engine{
		cfg:        cfg,
		dev:        dev,
		rng:        stats.NewRNG(cfg.Seed),
		geom:       dev.Geometry(),
		counts:     make([]int32, total),
		stamp:      make([]uint32, total),
		epoch:      1,
		targetSlot: make([]int32, total),
	}
	for i := range e.targetSlot {
		e.targetSlot[i] = -1
	}
	dev.AddActivateObserver(e)
	return e, nil
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Epoch returns the current refresh-window epoch (starts at 1; each
// ResetWindow advances it).
func (e *Engine) Epoch() uint32 { return e.epoch }

// RegisterTarget records attacker-intended flip bits for a victim row.
// Duplicate bits are ignored.
func (e *Engine) RegisterTarget(victim dram.RowAddr, bits ...int) error {
	if !e.geom.Valid(victim) {
		return fmt.Errorf("rowhammer: invalid victim %v", victim)
	}
	for _, b := range bits {
		if b < 0 || b >= e.geom.RowBytes*8 {
			return fmt.Errorf("rowhammer: bit %d outside row", b)
		}
	}
	idx := e.geom.LinearIndex(victim)
	en := e.targetFor(idx)
	for _, b := range bits {
		dup := false
		for _, x := range en.bits {
			if x == b {
				dup = true
				break
			}
		}
		if !dup {
			en.bits = append(en.bits, b)
		}
	}
	return nil
}

// targetFor returns the target entry of a victim row, creating it (with a
// recycled bit slice where one is available) when absent.
func (e *Engine) targetFor(idx int) *targetEntry {
	if si := e.targetSlot[idx]; si >= 0 {
		return &e.targets[si]
	}
	n := len(e.targets)
	if n < cap(e.targets) {
		e.targets = e.targets[:n+1]
		e.targets[n].bits = e.targets[n].bits[:0]
	} else {
		e.targets = append(e.targets, targetEntry{})
	}
	e.targets[n].idx = int32(idx)
	e.targetSlot[idx] = int32(n)
	return &e.targets[n]
}

// ClearTargets removes all registered targets, keeping the entry storage
// for reuse.
func (e *Engine) ClearTargets() {
	for i := range e.targets {
		e.targetSlot[e.targets[i].idx] = -1
	}
	e.targets = e.targets[:0]
}

// ObserveActivate implements dram.ActivateObserver.
func (e *Engine) ObserveActivate(addr dram.RowAddr, now dram.Picoseconds) {
	// Close the refresh window if it elapsed.
	if now-e.windowStart >= e.dev.Timing().TREFW {
		e.ResetWindow(now)
	}
	idx := e.geom.LinearIndex(addr)
	if e.stamp[idx] != e.epoch {
		e.stamp[idx] = e.epoch
		e.counts[idx] = 1
		e.touched = append(e.touched, int32(idx))
	} else {
		e.counts[idx]++
	}
	e.history.TotalActivations++
	if int(e.counts[idx]) == e.cfg.TRH+1 {
		// Threshold crossed in this window: disturb neighbors once. The
		// count keeps rising; a second crossing needs a fresh window.
		e.history.ThresholdCrosses++
		e.disturb(addr, now)
	}
}

// disturb injects flips into the victims adjacent to the aggressor.
func (e *Engine) disturb(aggressor dram.RowAddr, now dram.Picoseconds) {
	for dist := 1; dist <= e.cfg.BlastRadius; dist++ {
		for _, victim := range e.geom.Neighbors(aggressor, dist) {
			if dist > 1 && !e.rng.Bernoulli(e.cfg.DistantFlipProb) {
				continue
			}
			e.flipVictim(aggressor, victim, now)
		}
	}
}

func (e *Engine) flipVictim(aggressor, victim dram.RowAddr, now dram.Picoseconds) {
	idx := e.geom.LinearIndex(victim)
	if si := e.targetSlot[idx]; si >= 0 && len(e.targets[si].bits) > 0 {
		for _, b := range e.targets[si].bits {
			if err := e.dev.FlipBit(victim, b); err == nil {
				e.recordFlip(aggressor, victim, b, now)
			}
		}
		return
	}
	for i := 0; i < e.cfg.FlipsPerCrossing; i++ {
		b := e.rng.Intn(e.geom.RowBytes * 8)
		if err := e.dev.FlipBit(victim, b); err == nil {
			e.recordFlip(aggressor, victim, b, now)
		}
	}
}

func (e *Engine) recordFlip(aggressor, victim dram.RowAddr, bit int, now dram.Picoseconds) {
	e.flips = append(e.flips, FlipEvent{Aggressor: aggressor, Victim: victim, Bit: bit, At: now})
	e.history.TotalFlips++
}

// ResetRow clears the current-window activation count of one row. Defense
// mechanisms call this to model a targeted mitigation (victim refresh or a
// row relocation): the accumulated disturbance toward the row's neighbors
// is neutralised.
func (e *Engine) ResetRow(a dram.RowAddr) {
	idx := e.geom.LinearIndex(a)
	if e.stamp[idx] == e.epoch {
		e.counts[idx] = 0
	}
}

// ResetWindow starts a new refresh window: all activation counts reset,
// modelling the refresh of every row. The reset is O(1) — the window
// epoch advances, invalidating every count in place.
func (e *Engine) ResetWindow(now dram.Picoseconds) {
	e.epoch++
	if e.epoch == 0 { // epoch wrapped: stale stamps could collide
		clear(e.stamp)
		e.epoch = 1
	}
	e.touched = e.touched[:0]
	e.windowStart = now
	e.history.Windows++
}

// WindowStart returns the start time of the current refresh window.
func (e *Engine) WindowStart() dram.Picoseconds { return e.windowStart }

// Count returns the current-window activation count of a row.
func (e *Engine) Count(a dram.RowAddr) int {
	idx := e.geom.LinearIndex(a)
	if e.stamp[idx] != e.epoch {
		return 0
	}
	return int(e.counts[idx])
}

// Flips returns all injected flip events so far.
func (e *Engine) Flips() []FlipEvent { return e.flips }

// History returns aggregate counters.
func (e *Engine) History() FlipHistory { return e.history }

// HottestRows returns up to n rows with the highest current-window
// activation counts, most active first. Counter-based defense baselines
// (Graphene, Hydra) are evaluated against this ground truth in tests.
func (e *Engine) HottestRows(n int) []dram.RowAddr {
	type rc struct {
		idx, count int
	}
	all := make([]rc, 0, len(e.touched))
	for _, idx := range e.touched {
		if c := e.counts[idx]; c > 0 {
			all = append(all, rc{int(idx), int(c)})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].idx < all[j].idx
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]dram.RowAddr, 0, n)
	for _, x := range all[:n] {
		out = append(out, e.geom.FromLinearIndex(x.idx))
	}
	return out
}
