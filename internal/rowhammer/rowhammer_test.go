package rowhammer

import (
	"testing"

	"repro/internal/dram"
)

func newRig(t *testing.T, trh int) (*dram.Device, *Engine) {
	t.Helper()
	dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.TRH = trh
	eng, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev, eng
}

// hammer activates the row n times through the command interface.
func hammer(t *testing.T, dev *dram.Device, a dram.RowAddr, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := dev.Activate(a); err != nil {
			t.Fatal(err)
		}
		if _, err := dev.Precharge(a.Bank); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNoFlipAtThreshold(t *testing.T) {
	dev, eng := newRig(t, 20)
	agg := dram.RowAddr{Bank: 0, Row: 10}
	victim := dram.RowAddr{Bank: 0, Row: 11}
	if err := eng.RegisterTarget(victim, 5); err != nil {
		t.Fatal(err)
	}
	hammer(t, dev, agg, 20)
	if set, _ := dev.PeekBit(victim, 5); set {
		t.Fatal("flip at exactly TRH activations; threshold must be exceeded")
	}
	if eng.History().TotalFlips != 0 {
		t.Fatal("no flips expected")
	}
}

func TestFlipPastThresholdHitsBothNeighbors(t *testing.T) {
	dev, eng := newRig(t, 20)
	agg := dram.RowAddr{Bank: 0, Row: 10}
	up := dram.RowAddr{Bank: 0, Row: 9}
	down := dram.RowAddr{Bank: 0, Row: 11}
	eng.RegisterTarget(up, 3)
	eng.RegisterTarget(down, 4)
	hammer(t, dev, agg, 21)
	if set, _ := dev.PeekBit(up, 3); !set {
		t.Fatal("upper victim must flip")
	}
	if set, _ := dev.PeekBit(down, 4); !set {
		t.Fatal("lower victim must flip")
	}
	if got := eng.History().ThresholdCrosses; got != 1 {
		t.Fatalf("threshold crosses = %d, want 1", got)
	}
}

func TestCrossingFiresOncePerWindow(t *testing.T) {
	dev, eng := newRig(t, 10)
	agg := dram.RowAddr{Bank: 0, Row: 10}
	victim := dram.RowAddr{Bank: 0, Row: 11}
	eng.RegisterTarget(victim, 0)
	hammer(t, dev, agg, 40) // far past threshold in one window
	if eng.History().ThresholdCrosses != 1 {
		t.Fatalf("crosses = %d, want 1 (single crossing per window)", eng.History().ThresholdCrosses)
	}
	// The single crossing flipped the bit exactly once.
	if set, _ := dev.PeekBit(victim, 0); !set {
		t.Fatal("victim must be flipped once")
	}
}

func TestWindowResetClearsCounts(t *testing.T) {
	dev, eng := newRig(t, 10)
	agg := dram.RowAddr{Bank: 0, Row: 10}
	hammer(t, dev, agg, 8)
	if eng.Count(agg) != 8 {
		t.Fatalf("count = %d, want 8", eng.Count(agg))
	}
	eng.ResetWindow(dev.Now())
	if eng.Count(agg) != 0 {
		t.Fatal("reset must clear counts")
	}
	// After reset the threshold distance is full again.
	victim := dram.RowAddr{Bank: 0, Row: 11}
	eng.RegisterTarget(victim, 1)
	hammer(t, dev, agg, 10)
	if set, _ := dev.PeekBit(victim, 1); set {
		t.Fatal("flip before re-crossing the threshold")
	}
}

func TestRefreshWindowExpiresAutomatically(t *testing.T) {
	dev, eng := newRig(t, 5)
	agg := dram.RowAddr{Bank: 0, Row: 10}
	hammer(t, dev, agg, 4)
	// Advance past the refresh window; next activation must land in a
	// fresh window with count 1.
	dev.AdvanceClock(dev.Timing().TREFW + 1)
	hammer(t, dev, agg, 1)
	if got := eng.Count(agg); got != 1 {
		t.Fatalf("count after window expiry = %d, want 1", got)
	}
	if eng.History().Windows == 0 {
		t.Fatal("window rollover not recorded")
	}
}

func TestUntargetedFlipsAreRandomButDeterministic(t *testing.T) {
	run := func() []FlipEvent {
		dev, eng := newRig(t, 10)
		hammer(t, dev, dram.RowAddr{Bank: 0, Row: 10}, 11)
		return eng.Flips()
	}
	a := run()
	b := run()
	if len(a) == 0 {
		t.Fatal("expected untargeted flips")
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic flip count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Bit != b[i].Bit || a[i].Victim != b[i].Victim {
			t.Fatal("flip positions must be seed-deterministic")
		}
	}
}

func TestBlastRadius2HitsDistance2(t *testing.T) {
	dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.TRH = 10
	cfg.BlastRadius = 2
	cfg.DistantFlipProb = 1.0
	eng, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	far := dram.RowAddr{Bank: 0, Row: 12}
	eng.RegisterTarget(far, 7)
	hammer(t, dev, dram.RowAddr{Bank: 0, Row: 10}, 11)
	if set, _ := dev.PeekBit(far, 7); !set {
		t.Fatal("Half-Double distance-2 victim must flip with prob 1")
	}
}

func TestResetRowNeutralizesAccumulation(t *testing.T) {
	dev, eng := newRig(t, 10)
	agg := dram.RowAddr{Bank: 0, Row: 10}
	victim := dram.RowAddr{Bank: 0, Row: 11}
	eng.RegisterTarget(victim, 2)
	hammer(t, dev, agg, 9)
	eng.ResetRow(agg) // defense mitigation
	hammer(t, dev, agg, 2)
	if set, _ := dev.PeekBit(victim, 2); set {
		t.Fatal("mitigated row must not flip at 9+2 activations")
	}
}

func TestHottestRowsOrdering(t *testing.T) {
	dev, eng := newRig(t, 1000)
	a := dram.RowAddr{Bank: 0, Row: 10}
	b := dram.RowAddr{Bank: 0, Row: 20}
	hammer(t, dev, a, 5)
	hammer(t, dev, b, 9)
	hot := eng.HottestRows(2)
	if len(hot) != 2 || hot[0] != b || hot[1] != a {
		t.Fatalf("hottest = %v, want [%v %v]", hot, b, a)
	}
}

// TestWindowEpochSemantics pins the epoch-stamped dense reset: a row's
// counter survives arbitrarily many activations within one window,
// clears across a single ResetWindow (without touching other windows'
// history), and History totals keep accumulating across windows.
func TestWindowEpochSemantics(t *testing.T) {
	dev, eng := newRig(t, 1000)
	a := dram.RowAddr{Bank: 0, Row: 10}
	b := dram.RowAddr{Bank: 1, Row: 20}

	hammer(t, dev, a, 7)
	hammer(t, dev, b, 3)
	if eng.Count(a) != 7 || eng.Count(b) != 3 {
		t.Fatalf("counts within window = (%d, %d), want (7, 3)", eng.Count(a), eng.Count(b))
	}
	epoch := eng.Epoch()
	hist := eng.History()
	if hist.TotalActivations != 10 {
		t.Fatalf("TotalActivations = %d, want 10", hist.TotalActivations)
	}

	eng.ResetWindow(dev.Now())
	if eng.Epoch() != epoch+1 {
		t.Fatalf("epoch = %d after reset, want %d", eng.Epoch(), epoch+1)
	}
	if eng.Count(a) != 0 || eng.Count(b) != 0 {
		t.Fatal("one ResetWindow must clear every row's count")
	}
	// History is cumulative across windows: totals are unchanged by the
	// reset, and new activations keep adding to them.
	if got := eng.History().TotalActivations; got != 10 {
		t.Fatalf("TotalActivations changed across reset: %d", got)
	}
	hammer(t, dev, a, 2)
	if eng.Count(a) != 2 {
		t.Fatalf("fresh-window count = %d, want 2", eng.Count(a))
	}
	if got := eng.History().TotalActivations; got != 12 {
		t.Fatalf("TotalActivations = %d, want 12", got)
	}
	if eng.History().Windows == 0 {
		t.Fatal("window rollovers must be counted")
	}
}

// TestEpochWrapClearsStamps drives the window epoch over the uint32 wrap
// and checks a stale stamp from epoch 1 cannot masquerade as current.
func TestEpochWrapClearsStamps(t *testing.T) {
	dev, eng := newRig(t, 1000)
	a := dram.RowAddr{Bank: 0, Row: 10}
	hammer(t, dev, a, 4) // stamps the row at epoch 1
	eng.epoch = ^uint32(0)
	eng.ResetWindow(dev.Now())
	if eng.Epoch() != 1 {
		t.Fatalf("epoch after wrap = %d, want 1 (restart)", eng.Epoch())
	}
	if eng.Count(a) != 0 {
		t.Fatalf("stale epoch-1 stamp leaked a count of %d through the wrap", eng.Count(a))
	}
	hammer(t, dev, a, 2)
	if eng.Count(a) != 2 {
		t.Fatalf("post-wrap count = %d, want 2", eng.Count(a))
	}
}

// TestClearTargetsReusesStorage: the register/clear cycle the DRAM
// executor runs per flip attempt must not leak or misroute targets.
func TestClearTargetsReusesStorage(t *testing.T) {
	dev, eng := newRig(t, 5)
	v1 := dram.RowAddr{Bank: 0, Row: 11}
	v2 := dram.RowAddr{Bank: 0, Row: 21}
	eng.RegisterTarget(v1, 3)
	eng.ClearTargets()
	// After a clear, v1 must be untargeted and a new registration on v2
	// (recycling v1's slot) must only affect v2.
	eng.RegisterTarget(v2, 4)
	hammer(t, dev, dram.RowAddr{Bank: 0, Row: 10}, 6) // crosses next to v1
	hammer(t, dev, dram.RowAddr{Bank: 0, Row: 20}, 6) // crosses next to v2
	if set, _ := dev.PeekBit(v1, 3); set {
		t.Fatal("cleared target must not flip")
	}
	if set, _ := dev.PeekBit(v2, 4); !set {
		t.Fatal("re-registered target must flip")
	}
}

func TestRegisterTargetValidation(t *testing.T) {
	_, eng := newRig(t, 10)
	if err := eng.RegisterTarget(dram.RowAddr{Bank: 99, Row: 0}, 0); err == nil {
		t.Fatal("invalid row must be rejected")
	}
	if err := eng.RegisterTarget(dram.RowAddr{Bank: 0, Row: 0}, 1<<30); err == nil {
		t.Fatal("out-of-range bit must be rejected")
	}
	// Duplicate registrations collapse.
	v := dram.RowAddr{Bank: 0, Row: 3}
	eng.RegisterTarget(v, 5)
	eng.RegisterTarget(v, 5)
	dev, eng2 := newRig(t, 5)
	eng2.RegisterTarget(v, 5)
	eng2.RegisterTarget(v, 5)
	hammer(t, dev, dram.RowAddr{Bank: 0, Row: 2}, 6)
	if set, _ := dev.PeekBit(v, 5); !set {
		t.Fatal("flip expected")
	}
	// A second flip of the same bit would restore it to 0; dedup ensures
	// exactly one flip happened.
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{TRH: 0, BlastRadius: 1},
		{TRH: 10, BlastRadius: 0},
		{TRH: 10, BlastRadius: 3},
		{TRH: 10, BlastRadius: 1, DistantFlipProb: 1.5},
		{TRH: 10, BlastRadius: 1, FlipsPerCrossing: -1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestPublishedThresholdsMatchPaper(t *testing.T) {
	ths := PublishedThresholds()
	want := map[string]int{
		"DDR3 (old)":   139_000,
		"DDR3 (new)":   22_400,
		"DDR4 (old)":   17_500,
		"DDR4 (new)":   10_000,
		"LPDDR4 (old)": 16_800,
		"LPDDR4 (new)": 4_800,
	}
	if len(ths) != len(want) {
		t.Fatalf("got %d generations, want %d", len(ths), len(want))
	}
	for _, th := range ths {
		if want[th.Generation] != th.TRH {
			t.Errorf("%s: TRH %d, want %d", th.Generation, th.TRH, want[th.Generation])
		}
	}
	// The downward trend the paper highlights: LPDDR4(new) needs ~4.5x
	// fewer activations than DDR3(new).
	ratio := float64(want["DDR3 (new)"]) / float64(want["LPDDR4 (new)"])
	if ratio < 4 || ratio > 5 {
		t.Fatalf("DDR3(new)/LPDDR4(new) ratio = %.2f, want ~4.5", ratio)
	}
}
