package overhead

import (
	"strings"
	"testing"

	"repro/internal/dram"
)

func TestTable1HasAllPaperRows(t *testing.T) {
	reports := Table1(DefaultConfig())
	want := []string{
		"Graphene", "Hydra", "TWiCE", "Counter per Row", "Counter Tree",
		"RRS", "SRS", "SHADOW", "P-PIM", "DRAM-Locker",
	}
	if len(reports) != len(want) {
		t.Fatalf("rows = %d, want %d", len(reports), len(want))
	}
	for i, name := range want {
		if reports[i].Framework != name {
			t.Fatalf("row %d = %s, want %s (paper order)", i, reports[i].Framework, name)
		}
	}
}

func TestDRAMLockerRowMatchesPaper(t *testing.T) {
	r := DRAMLocker(DefaultConfig())
	caps := r.CapacityBytesByKind()
	if caps[MemDRAM] != 0 {
		t.Fatalf("DRAM overhead = %d, paper says 0", caps[MemDRAM])
	}
	// 56KB SRAM lock-table.
	if caps[MemSRAM] < 50*1024 || caps[MemSRAM] > 56*1024 {
		t.Fatalf("SRAM overhead = %d, paper says 56KB", caps[MemSRAM])
	}
	if !r.AreaKnown || r.AreaPercent != 0.02 {
		t.Fatalf("area = %v/%v, paper says 0.02%%", r.AreaKnown, r.AreaPercent)
	}
	if r.Counters != 0 {
		t.Fatal("DRAM-Locker needs no counters")
	}
}

func TestDRAMLockerHasSmallestArea(t *testing.T) {
	for _, r := range Table1(DefaultConfig()) {
		if r.AreaKnown && r.Framework != "DRAM-Locker" {
			if r.AreaPercent <= 0.02 {
				t.Fatalf("%s area %.3f%% undercuts DRAM-Locker", r.Framework, r.AreaPercent)
			}
		}
	}
}

func TestCounterPerRowScalesWithGeometry(t *testing.T) {
	cfg := DefaultConfig()
	full := CounterPerRow(cfg).TotalBytes()
	small := cfg
	small.Geometry = dram.SmallGeometry()
	tiny := CounterPerRow(small).TotalBytes()
	if tiny >= full {
		t.Fatal("counter storage must scale with row count")
	}
	// 32MB at the paper's 4Mi rows x 8B.
	if full != int64(cfg.Geometry.TotalRows())*8 {
		t.Fatalf("counter bytes = %d", full)
	}
}

func TestPublishedSizesScaleWithCapacity(t *testing.T) {
	cfg := DefaultConfig()
	half := cfg
	half.Geometry.BanksPerRank = 8 // 16GB
	g, gh := Graphene(cfg).TotalBytes(), Graphene(half).TotalBytes()
	if gh >= g {
		t.Fatalf("Graphene at half capacity should shrink: %d vs %d", gh, g)
	}
}

func TestInvolvedMemoryStrings(t *testing.T) {
	cfg := DefaultConfig()
	cases := map[string]string{
		Graphene(cfg).InvolvedMemory():   "CAM-SRAM",
		Hydra(cfg).InvolvedMemory():      "DRAM-SRAM",
		SHADOW(cfg).InvolvedMemory():     "DRAM",
		DRAMLocker(cfg).InvolvedMemory(): "DRAM-SRAM",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("involved memory %q, want %q", got, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		0:             "0",
		512:           "512B",
		56 * 1024:     "56KB",
		4 << 20:       "4MB",
		1<<20 + 1<<19: "1.50MB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestAreaCells(t *testing.T) {
	cfg := DefaultConfig()
	if got := Graphene(cfg).AreaCell(); got != "1 counter" {
		t.Errorf("Graphene area cell = %q", got)
	}
	if got := CounterPerRow(cfg).AreaCell(); got != "16384 counters" {
		t.Errorf("CounterPerRow area cell = %q", got)
	}
	if got := RRS(cfg).AreaCell(); got != "NULL" {
		t.Errorf("RRS area cell = %q", got)
	}
	if got := DRAMLocker(cfg).AreaCell(); got != "0.02%" {
		t.Errorf("DRAM-Locker area cell = %q", got)
	}
}

func TestCapacityCellMentionsNR(t *testing.T) {
	cfg := DefaultConfig()
	if cell := RRS(cfg).CapacityCell(); !strings.Contains(cell, "NR") {
		t.Errorf("RRS capacity cell %q must flag unreported SRAM", cell)
	}
	if cell := SRS(cfg).CapacityCell(); !strings.Contains(cell, "NR") {
		t.Errorf("SRS capacity cell %q must flag unreported SRAM", cell)
	}
}

func TestHydraMatchesPaperNumbers(t *testing.T) {
	r := Hydra(DefaultConfig())
	caps := r.CapacityBytesByKind()
	if caps[MemSRAM] != 56*1024 {
		t.Fatalf("Hydra SRAM = %d, want 56KB", caps[MemSRAM])
	}
	if caps[MemDRAM] != 4<<20 {
		t.Fatalf("Hydra DRAM = %d, want 4MB", caps[MemDRAM])
	}
}
