// Package overhead reproduces Table I of the paper: the hardware cost of
// DRAM-Locker against prior RowHammer mitigation frameworks, normalised to
// a 32GB, 16-bank DDR4 DIMM.
//
// Each framework's capacity overhead is computed from its published
// structure (counter widths, tracker entry counts, swap-map sizes) rather
// than hard-coded, so the models also answer "what if" questions at other
// DRAM capacities; the default configuration reproduces the paper's rows.
package overhead

import (
	"fmt"
	"sort"

	"repro/internal/dram"
	"repro/internal/locktable"
)

// MemoryKind is the class of memory a framework spends for its metadata.
type MemoryKind string

// Memory kinds found in Table I.
const (
	MemDRAM MemoryKind = "DRAM"
	MemSRAM MemoryKind = "SRAM"
	MemCAM  MemoryKind = "CAM"
)

// Component is one block of metadata storage.
type Component struct {
	Kind  MemoryKind
	Bytes int64
}

// Report is one framework's Table I row.
type Report struct {
	Framework string
	// Components lists each metadata store (kind + size).
	Components []Component
	// Counters is the number of hardware counters ("area overhead" column
	// for counter-based schemes).
	Counters int
	// AreaPercent is the die-area overhead when the paper reports one.
	AreaPercent float64
	// AreaKnown marks frameworks whose area percentage is published.
	AreaKnown bool
	// Notes carries caveats (e.g. "NR" entries in the paper).
	Notes string
}

// CapacityBytesByKind sums component sizes per memory kind.
func (r Report) CapacityBytesByKind() map[MemoryKind]int64 {
	out := make(map[MemoryKind]int64)
	for _, c := range r.Components {
		out[c.Kind] += c.Bytes
	}
	return out
}

// TotalBytes sums all metadata storage.
func (r Report) TotalBytes() int64 {
	var t int64
	for _, c := range r.Components {
		t += c.Bytes
	}
	return t
}

// InvolvedMemory renders the "involved memory" Table I column.
func (r Report) InvolvedMemory() string {
	seen := make(map[MemoryKind]bool)
	var kinds []string
	for _, c := range r.Components {
		if !seen[c.Kind] {
			seen[c.Kind] = true
			kinds = append(kinds, string(c.Kind))
		}
	}
	sort.Strings(kinds)
	s := ""
	for i, k := range kinds {
		if i > 0 {
			s += "-"
		}
		s += k
	}
	return s
}

// Config fixes the DRAM organisation all frameworks are normalised to.
type Config struct {
	Geometry dram.Geometry
	// TRH is the assumed hammer threshold (drives tracker sizing for
	// threshold-dependent schemes such as Graphene and Hydra).
	TRH int
}

// DefaultConfig returns the paper's 32GB 16-bank DDR4 setup.
func DefaultConfig() Config {
	return Config{Geometry: dram.DefaultGeometry(), TRH: 4800}
}

// scale returns the ratio of the configured capacity to the paper's 32GB
// baseline; published absolute sizes scale linearly with capacity.
func (c Config) scale() float64 {
	return float64(c.Geometry.CapacityBytes()) / float64(32<<30)
}

const (
	kb = 1 << 10
	mb = 1 << 20
)

// Graphene models Park et al. MICRO'20: per-bank Misra-Gries tables kept
// in CAM (row ids) + SRAM (counts). Paper row: 0.53MB CAM + 1.12MB SRAM,
// 1 counter adder.
func Graphene(cfg Config) Report {
	s := cfg.scale()
	return Report{
		Framework: "Graphene",
		Components: []Component{
			{Kind: MemCAM, Bytes: int64(0.53 * mb * s)},
			{Kind: MemSRAM, Bytes: int64(1.12 * mb * s)},
		},
		Counters:  1,
		AreaKnown: false,
		Notes:     "Misra-Gries summaries per bank",
	}
}

// Hydra models Qureshi et al. ISCA'22: a small SRAM group-count cache plus
// per-row counters spilled to DRAM. Paper row: 56KB SRAM + 4MB DRAM.
func Hydra(cfg Config) Report {
	s := cfg.scale()
	return Report{
		Framework: "Hydra",
		Components: []Component{
			{Kind: MemSRAM, Bytes: int64(56 * kb * s)},
			{Kind: MemDRAM, Bytes: int64(4 * mb * s)},
		},
		Counters:  1,
		AreaKnown: false,
		Notes:     "hybrid SRAM filter + DRAM counter spill",
	}
}

// TWiCE models Lee et al. ISCA'19 time-window counters:
// 3.16MB SRAM + 1.6MB CAM.
func TWiCE(cfg Config) Report {
	s := cfg.scale()
	return Report{
		Framework: "TWiCE",
		Components: []Component{
			{Kind: MemSRAM, Bytes: int64(3.16 * mb * s)},
			{Kind: MemCAM, Bytes: int64(1.6 * mb * s)},
		},
		Counters:  1,
		AreaKnown: false,
		Notes:     "time-window counter table",
	}
}

// CounterPerRow models the brute-force design: one counter per DRAM row,
// stored in DRAM. With 4Mi rows and 8B per counter entry: 32MB.
func CounterPerRow(cfg Config) Report {
	rows := int64(cfg.Geometry.TotalRows())
	const counterBytes = 8
	return Report{
		Framework: "Counter per Row",
		Components: []Component{
			{Kind: MemDRAM, Bytes: rows * counterBytes},
		},
		Counters:  16384, // paper's per-bank mat-level adders
		AreaKnown: false,
		Notes:     "one counter per row",
	}
}

// CounterTree models Seyedzadeh et al. CAL'16: a tree of shared counters,
// 2MB DRAM, 1024 counters.
func CounterTree(cfg Config) Report {
	s := cfg.scale()
	return Report{
		Framework: "Counter Tree",
		Components: []Component{
			{Kind: MemDRAM, Bytes: int64(2 * mb * s)},
		},
		Counters:  1024,
		AreaKnown: false,
		Notes:     "shared counter tree",
	}
}

// RRS models Saileshwar et al. ASPLOS'22 randomized row-swap: an indirection
// (swap) table in DRAM plus an SRAM cache the paper reports as NR.
func RRS(cfg Config) Report {
	s := cfg.scale()
	return Report{
		Framework: "RRS",
		Components: []Component{
			{Kind: MemDRAM, Bytes: int64(4 * mb * s)},
			{Kind: MemSRAM, Bytes: 0},
		},
		AreaKnown: false,
		Notes:     "SRAM size not reported (NR)",
	}
}

// SRS models Woo et al. secure row-swap: 1.26MB DRAM + unreported SRAM.
func SRS(cfg Config) Report {
	s := cfg.scale()
	return Report{
		Framework: "SRS",
		Components: []Component{
			{Kind: MemDRAM, Bytes: int64(1.26 * mb * s)},
			{Kind: MemSRAM, Bytes: 0},
		},
		AreaKnown: false,
		Notes:     "SRAM size not reported (NR)",
	}
}

// SHADOW models Wi et al. HPCA'23 intra-subarray shuffling: only a small
// DRAM bookkeeping region (0.16MB) and 0.6% area.
func SHADOW(cfg Config) Report {
	s := cfg.scale()
	return Report{
		Framework: "SHADOW",
		Components: []Component{
			{Kind: MemDRAM, Bytes: int64(0.16 * mb * s)},
		},
		AreaPercent: 0.6,
		AreaKnown:   true,
		Notes:       "row shuffle map per subarray",
	}
}

// PPIM models Zhou et al. DATE'23 P-PIM: 4.125MB DRAM, 0.34% area.
func PPIM(cfg Config) Report {
	s := cfg.scale()
	return Report{
		Framework: "P-PIM",
		Components: []Component{
			{Kind: MemDRAM, Bytes: int64(4.125 * mb * s)},
		},
		AreaPercent: 0.34,
		AreaKnown:   true,
		Notes:       "LUT-based in-DRAM protection",
	}
}

// DRAMLocker computes the paper's own row from first principles: zero DRAM
// capacity overhead (buffer rows are reserve rows that already exist) and a
// lock-table SRAM sized by its entry count. With the default 8192-entry
// table at 7B/entry this is the paper's 56KB SRAM, 0.02% area.
func DRAMLocker(cfg Config) Report {
	tableBytes := int64(locktable.DefaultConfig().CapacityEntries * locktable.EntryBytes)
	return Report{
		Framework: "DRAM-Locker",
		Components: []Component{
			{Kind: MemDRAM, Bytes: 0},
			{Kind: MemSRAM, Bytes: tableBytes},
		},
		AreaPercent: 0.02,
		AreaKnown:   true,
		Notes:       "lock-table only, no counters",
	}
}

// Table1 returns every framework's report in the paper's row order.
func Table1(cfg Config) []Report {
	out := make([]Report, 0, len(Table1Frameworks()))
	for _, name := range Table1Frameworks() {
		r, err := Table1Report(cfg, name)
		if err != nil {
			// The fixed framework list cannot miss; keep the signature.
			panic(err)
		}
		out = append(out, r)
	}
	return out
}

// Table1Frameworks lists the Table I rows in paper order — the shard axis
// of the table1 grid job.
func Table1Frameworks() []string {
	return []string{
		"Graphene", "Hydra", "TWiCE", "CounterPerRow", "CounterTree",
		"RRS", "SRS", "SHADOW", "P-PIM", "DRAM-Locker",
	}
}

// Table1Report computes one framework's overhead row.
func Table1Report(cfg Config, name string) (Report, error) {
	switch name {
	case "Graphene":
		return Graphene(cfg), nil
	case "Hydra":
		return Hydra(cfg), nil
	case "TWiCE":
		return TWiCE(cfg), nil
	case "CounterPerRow":
		return CounterPerRow(cfg), nil
	case "CounterTree":
		return CounterTree(cfg), nil
	case "RRS":
		return RRS(cfg), nil
	case "SRS":
		return SRS(cfg), nil
	case "SHADOW":
		return SHADOW(cfg), nil
	case "P-PIM":
		return PPIM(cfg), nil
	case "DRAM-Locker":
		return DRAMLocker(cfg), nil
	default:
		return Report{}, fmt.Errorf("overhead: unknown framework %q", name)
	}
}

// FormatBytes renders a byte count the way the paper does (KB / MB).
func FormatBytes(b int64) string {
	switch {
	case b == 0:
		return "0"
	case b >= mb:
		v := float64(b) / float64(mb)
		if v == float64(int64(v)) {
			return fmt.Sprintf("%dMB", int64(v))
		}
		return fmt.Sprintf("%.2fMB", v)
	case b >= kb:
		v := float64(b) / float64(kb)
		if v == float64(int64(v)) {
			return fmt.Sprintf("%dKB", int64(v))
		}
		return fmt.Sprintf("%.1fKB", v)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// CapacityCell renders the "capacity overhead" Table I cell for a report.
func (r Report) CapacityCell() string {
	var parts []string
	for _, c := range r.Components {
		if c.Bytes == 0 && c.Kind == MemSRAM && (r.Framework == "RRS" || r.Framework == "SRS") {
			parts = append(parts, "NR("+string(c.Kind)+")")
			continue
		}
		parts = append(parts, FormatBytes(c.Bytes)+"("+string(c.Kind)+")")
	}
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += "+"
		}
		s += p
	}
	return s
}

// AreaCell renders the "area overhead" Table I cell.
func (r Report) AreaCell() string {
	if r.AreaKnown {
		return fmt.Sprintf("%.2f%%", r.AreaPercent)
	}
	if r.Counters > 0 {
		if r.Counters == 1 {
			return "1 counter"
		}
		return fmt.Sprintf("%d counters", r.Counters)
	}
	return "NULL"
}
