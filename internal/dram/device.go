package dram

import (
	"errors"
	"fmt"
)

// CommandKind enumerates the DRAM bus commands the model understands.
type CommandKind uint8

// DRAM command kinds.
const (
	CmdACT CommandKind = iota // activate a row into the bank's row buffer
	CmdPRE                    // precharge (close) the bank's open row
	CmdRD                     // read a burst from the open row
	CmdWR                     // write a burst into the open row
	CmdREF                    // refresh; resets RowHammer activation counts
)

// String returns the JEDEC mnemonic of the command.
func (k CommandKind) String() string {
	switch k {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	case CmdREF:
		return "REF"
	default:
		return fmt.Sprintf("CMD(%d)", uint8(k))
	}
}

// Errors returned by the device state machine.
var (
	ErrBankOpen     = errors.New("dram: ACT issued to a bank with an open row")
	ErrBankClosed   = errors.New("dram: RD/WR issued to a bank with no open row")
	ErrBadAddress   = errors.New("dram: address outside geometry")
	ErrBadColumn    = errors.New("dram: column outside row")
	ErrWrongOpenRow = errors.New("dram: RD/WR issued to a different row than the open one")
)

// ActivateObserver is notified of every row activation that reaches the
// array. The RowHammer engine registers itself here; so can tests.
type ActivateObserver interface {
	ObserveActivate(addr RowAddr, now Picoseconds)
}

// bankState tracks the open row of one bank.
type bankState struct {
	open    bool
	openRow int
}

// Device is a command-level DRAM channel model with bit-accurate storage.
//
// Storage is sparse: rows hold nil until first written, and a nil row reads
// as all zeroes. This keeps even 32GB geometries cheap to instantiate.
//
// Device is not safe for concurrent use; the memory controller serialises
// command issue exactly as a real single-channel bus would.
type Device struct {
	geom   Geometry
	timing Timing

	banks []bankState
	rows  map[int][]byte // LinearIndex -> row data

	now Picoseconds // device-local clock, advanced by command latencies

	observers []ActivateObserver

	stats DeviceStats
}

// DeviceStats aggregates command counts and energy.
type DeviceStats struct {
	Activates  int64
	Precharges int64
	Reads      int64
	Writes     int64
	Refreshes  int64
	RowClones  int64
	EnergyPJ   float64
}

// NewDevice constructs a device with the given geometry and timing.
func NewDevice(geom Geometry, timing Timing) (*Device, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := timing.Validate(); err != nil {
		return nil, err
	}
	return &Device{
		geom:   geom,
		timing: timing,
		banks:  make([]bankState, geom.Banks()),
		rows:   make(map[int][]byte),
	}, nil
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geom }

// Timing returns the device timing parameters.
func (d *Device) Timing() Timing { return d.timing }

// Now returns the device-local clock.
func (d *Device) Now() Picoseconds { return d.now }

// AdvanceClock moves the device clock forward by delta without issuing a
// command (e.g. idle time between requests).
func (d *Device) AdvanceClock(delta Picoseconds) {
	if delta > 0 {
		d.now += delta
	}
}

// Stats returns a copy of the accumulated statistics.
func (d *Device) Stats() DeviceStats { return d.stats }

// AddActivateObserver registers an observer for row activations.
func (d *Device) AddActivateObserver(o ActivateObserver) {
	d.observers = append(d.observers, o)
}

// rowData returns the backing slice for a row, allocating it if needed.
func (d *Device) rowData(a RowAddr) []byte {
	idx := d.geom.LinearIndex(a)
	row := d.rows[idx]
	if row == nil {
		row = make([]byte, d.geom.RowBytes)
		d.rows[idx] = row
	}
	return row
}

// rowDataIfPresent returns the row slice or nil if never written.
func (d *Device) rowDataIfPresent(a RowAddr) []byte {
	return d.rows[d.geom.LinearIndex(a)]
}

// AllocatedRows returns how many rows have backing storage (for tests).
func (d *Device) AllocatedRows() int { return len(d.rows) }

// Activate opens a row. The bank must be precharged. The activation is
// reported to observers (RowHammer tracking) before returning.
func (d *Device) Activate(a RowAddr) (Picoseconds, error) {
	if !d.geom.Valid(a) {
		return 0, fmt.Errorf("%w: %v", ErrBadAddress, a)
	}
	b := &d.banks[a.Bank]
	if b.open {
		return 0, fmt.Errorf("%w: bank %d row %d", ErrBankOpen, a.Bank, b.openRow)
	}
	b.open = true
	b.openRow = a.Row
	d.now += d.timing.TRCD
	d.stats.Activates++
	d.stats.EnergyPJ += d.timing.ActEnergyPJ
	for _, o := range d.observers {
		o.ObserveActivate(a, d.now)
	}
	return d.timing.TRCD, nil
}

// Precharge closes the open row of a bank. Precharging an already-closed
// bank is a no-op in real devices and here too.
func (d *Device) Precharge(bank int) (Picoseconds, error) {
	if bank < 0 || bank >= len(d.banks) {
		return 0, fmt.Errorf("%w: bank %d", ErrBadAddress, bank)
	}
	b := &d.banks[bank]
	if !b.open {
		return 0, nil
	}
	b.open = false
	d.now += d.timing.TRP
	d.stats.Precharges++
	d.stats.EnergyPJ += d.timing.PreEnergyPJ
	return d.timing.TRP, nil
}

// OpenRow returns the open row of a bank, or ok=false if precharged.
func (d *Device) OpenRow(bank int) (row int, ok bool) {
	if bank < 0 || bank >= len(d.banks) {
		return 0, false
	}
	b := d.banks[bank]
	return b.openRow, b.open
}

// Read copies n bytes starting at column col from the open row of a.Bank
// into dst. The row must already be activated and match a.Row.
func (d *Device) Read(a RowAddr, col int, dst []byte) (Picoseconds, error) {
	if err := d.checkOpen(a, col, len(dst)); err != nil {
		return 0, err
	}
	src := d.rowDataIfPresent(a)
	if src == nil {
		for i := range dst {
			dst[i] = 0
		}
	} else {
		copy(dst, src[col:col+len(dst)])
	}
	d.now += d.timing.ReadLatency()
	d.stats.Reads++
	d.stats.EnergyPJ += d.timing.RdWrEnergyPJ
	return d.timing.ReadLatency(), nil
}

// Write stores src into the open row of a.Bank at column col.
func (d *Device) Write(a RowAddr, col int, src []byte) (Picoseconds, error) {
	if err := d.checkOpen(a, col, len(src)); err != nil {
		return 0, err
	}
	copy(d.rowData(a)[col:], src)
	d.now += d.timing.WriteLatency()
	d.stats.Writes++
	d.stats.EnergyPJ += d.timing.RdWrEnergyPJ
	return d.timing.WriteLatency(), nil
}

func (d *Device) checkOpen(a RowAddr, col, n int) error {
	if !d.geom.Valid(a) {
		return fmt.Errorf("%w: %v", ErrBadAddress, a)
	}
	if col < 0 || col+n > d.geom.RowBytes {
		return fmt.Errorf("%w: col %d len %d rowBytes %d", ErrBadColumn, col, n, d.geom.RowBytes)
	}
	b := d.banks[a.Bank]
	if !b.open {
		return fmt.Errorf("%w: bank %d", ErrBankClosed, a.Bank)
	}
	if b.openRow != a.Row {
		return fmt.Errorf("%w: open %d want %d", ErrWrongOpenRow, b.openRow, a.Row)
	}
	return nil
}

// Refresh models one REF command. Observers interested in refresh-window
// boundaries track the device clock themselves.
func (d *Device) Refresh() Picoseconds {
	d.now += d.timing.TRFC
	d.stats.Refreshes++
	return d.timing.TRFC
}

// --- Direct (out-of-band) row access -------------------------------------
//
// The functions below bypass the command state machine. They model effects
// that do not travel over the command bus: RowHammer disturbance flips,
// RowClone's in-array copies, and test fixture setup.

// RowCloneCopy performs an in-subarray RowClone FPM copy src -> dst.
// Both rows must be in the same subarray. The copy itself counts as an
// internal operation, not as bus ACTs, so it does not feed RowHammer
// tracking (the rows are opened back-to-back well below any T_RH).
func (d *Device) RowCloneCopy(src, dst RowAddr) (Picoseconds, error) {
	if !d.geom.Valid(src) || !d.geom.Valid(dst) {
		return 0, fmt.Errorf("%w: %v -> %v", ErrBadAddress, src, dst)
	}
	if !d.geom.SameSubarray(src, dst) {
		return 0, fmt.Errorf("dram: RowClone FPM requires same subarray: %v -> %v", src, dst)
	}
	if src == dst {
		d.now += d.timing.RowCloneFPM
		d.stats.RowClones++
		d.stats.EnergyPJ += d.timing.RowCloneEnergyPJ
		return d.timing.RowCloneFPM, nil
	}
	s := d.rowDataIfPresent(src)
	if s == nil {
		// Source row was never written: destination becomes zeroes.
		dstRow := d.rowData(dst)
		for i := range dstRow {
			dstRow[i] = 0
		}
	} else {
		copy(d.rowData(dst), s)
	}
	d.now += d.timing.RowCloneFPM
	d.stats.RowClones++
	d.stats.EnergyPJ += d.timing.RowCloneEnergyPJ
	return d.timing.RowCloneFPM, nil
}

// FlipBit inverts a single stored bit (RowHammer disturbance). bit indexes
// the row's bits little-endian within each byte.
func (d *Device) FlipBit(a RowAddr, bit int) error {
	if !d.geom.Valid(a) {
		return fmt.Errorf("%w: %v", ErrBadAddress, a)
	}
	if bit < 0 || bit >= d.geom.RowBytes*8 {
		return fmt.Errorf("%w: bit %d", ErrBadColumn, bit)
	}
	row := d.rowData(a)
	row[bit/8] ^= 1 << (bit % 8)
	return nil
}

// PeekRow returns a copy of the row's content without timing effects.
func (d *Device) PeekRow(a RowAddr) ([]byte, error) {
	if !d.geom.Valid(a) {
		return nil, fmt.Errorf("%w: %v", ErrBadAddress, a)
	}
	out := make([]byte, d.geom.RowBytes)
	if src := d.rowDataIfPresent(a); src != nil {
		copy(out, src)
	}
	return out, nil
}

// PokeRow overwrites the row's content without timing effects.
func (d *Device) PokeRow(a RowAddr, data []byte) error {
	if !d.geom.Valid(a) {
		return fmt.Errorf("%w: %v", ErrBadAddress, a)
	}
	if len(data) > d.geom.RowBytes {
		return fmt.Errorf("%w: len %d", ErrBadColumn, len(data))
	}
	row := d.rowData(a)
	copy(row, data)
	for i := len(data); i < len(row); i++ {
		row[i] = 0
	}
	return nil
}

// PeekBit returns the value of one stored bit without timing effects.
func (d *Device) PeekBit(a RowAddr, bit int) (bool, error) {
	if !d.geom.Valid(a) {
		return false, fmt.Errorf("%w: %v", ErrBadAddress, a)
	}
	if bit < 0 || bit >= d.geom.RowBytes*8 {
		return false, fmt.Errorf("%w: bit %d", ErrBadColumn, bit)
	}
	row := d.rowDataIfPresent(a)
	if row == nil {
		return false, nil
	}
	return row[bit/8]&(1<<(bit%8)) != 0, nil
}
