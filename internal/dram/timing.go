package dram

import "fmt"

// Picoseconds is the simulator's time unit. All latency accounting is done
// in integer picoseconds to keep accumulation exact and deterministic.
type Picoseconds int64

// Common time unit constants.
const (
	Nanosecond  Picoseconds = 1_000
	Microsecond Picoseconds = 1_000_000
	Millisecond Picoseconds = 1_000_000_000
	Second      Picoseconds = 1_000_000_000_000
)

// Seconds converts a picosecond count to floating-point seconds.
func (p Picoseconds) Seconds() float64 { return float64(p) / float64(Second) }

// Nanoseconds converts a picosecond count to floating-point nanoseconds.
func (p Picoseconds) Nanoseconds() float64 { return float64(p) / float64(Nanosecond) }

// String renders the duration with an adaptive unit.
func (p Picoseconds) String() string {
	switch {
	case p >= Second:
		return fmt.Sprintf("%.3fs", p.Seconds())
	case p >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(p)/float64(Millisecond))
	case p >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(p)/float64(Microsecond))
	case p >= Nanosecond:
		return fmt.Sprintf("%.3fns", p.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(p))
	}
}

// Timing holds the JEDEC-style timing parameters the simulator accounts.
// Values are for one command at the device; the controller composes them.
type Timing struct {
	TRCD Picoseconds // ACT to RD/WR delay
	TRP  Picoseconds // PRE to ACT delay
	TRAS Picoseconds // ACT to PRE minimum
	TCL  Picoseconds // RD to first data
	TCWL Picoseconds // WR to first data
	TBL  Picoseconds // burst transfer time (BL8)
	TWR  Picoseconds // write recovery before PRE
	TRFC Picoseconds // refresh cycle time
	TRC  Picoseconds // ACT-to-ACT same bank (row cycle): tRAS + tRP

	// TREFW is the refresh window (retention time); every row is refreshed
	// once per window and RowHammer activation counts reset.
	TREFW Picoseconds
	// TREFI is the interval between the controller's REF commands.
	TREFI Picoseconds

	// RowCloneFPM is the latency of one in-subarray RowClone copy
	// (back-to-back ACT-ACT then PRE); Seshadri et al. report < 100ns.
	RowCloneFPM Picoseconds
	// LockLookup is the SRAM lock-table lookup latency per instruction.
	LockLookup Picoseconds

	// Energy model (picojoules per operation) for the analytic energy
	// accounting; derived from CACTI-class numbers for DDR4.
	ActEnergyPJ      float64
	PreEnergyPJ      float64
	RdWrEnergyPJ     float64
	RowCloneEnergyPJ float64
}

// DDR4Timing returns DDR4-2400-class timing (tCK = 0.833ns, 18-18-18).
func DDR4Timing() Timing {
	const tck = 833 // ps
	return Timing{
		TRCD:        18 * tck,
		TRP:         18 * tck,
		TRAS:        39 * tck,
		TCL:         18 * tck,
		TCWL:        14 * tck,
		TBL:         4 * tck,
		TWR:         18 * tck,
		TRFC:        350 * Nanosecond,
		TRC:         39*tck + 18*tck,
		TREFW:       64 * Millisecond,
		TREFI:       7800 * Nanosecond,
		RowCloneFPM: 90 * Nanosecond,
		LockLookup:  1 * Nanosecond,

		ActEnergyPJ:      909,
		PreEnergyPJ:      585,
		RdWrEnergyPJ:     1510,
		RowCloneEnergyPJ: 696, // RowClone cuts copy energy ~74x vs CPU copy
	}
}

// Validate checks that all durations are positive and consistent.
func (t Timing) Validate() error {
	check := func(name string, v Picoseconds) error {
		if v <= 0 {
			return fmt.Errorf("dram: timing %s must be positive, got %d", name, v)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		v    Picoseconds
	}{
		{"tRCD", t.TRCD}, {"tRP", t.TRP}, {"tRAS", t.TRAS}, {"tCL", t.TCL},
		{"tCWL", t.TCWL}, {"tBL", t.TBL}, {"tWR", t.TWR}, {"tRFC", t.TRFC},
		{"tRC", t.TRC}, {"tREFW", t.TREFW}, {"tREFI", t.TREFI},
		{"RowCloneFPM", t.RowCloneFPM}, {"LockLookup", t.LockLookup},
	} {
		if err := check(c.name, c.v); err != nil {
			return err
		}
	}
	if t.TRC < t.TRAS+t.TRP {
		return fmt.Errorf("dram: tRC (%d) < tRAS+tRP (%d)", t.TRC, t.TRAS+t.TRP)
	}
	if t.TREFW < t.TREFI {
		return fmt.Errorf("dram: tREFW (%d) < tREFI (%d)", t.TREFW, t.TREFI)
	}
	return nil
}

// ReadLatency returns the latency of an RD on an already-open row.
func (t Timing) ReadLatency() Picoseconds { return t.TCL + t.TBL }

// WriteLatency returns the latency of a WR on an already-open row.
func (t Timing) WriteLatency() Picoseconds { return t.TCWL + t.TBL }

// RowMissLatency returns the latency of a full PRE+ACT+RD row-buffer miss.
func (t Timing) RowMissLatency() Picoseconds {
	return t.TRP + t.TRCD + t.ReadLatency()
}

// SwapLatency returns the latency of a DRAM-Locker SWAP: three RowClone
// copies through the buffer row (locked->buffer, unlocked->locked,
// buffer->unlocked).
func (t Timing) SwapLatency() Picoseconds { return 3 * t.RowCloneFPM }
