package dram

import (
	"errors"
	"testing"
	"testing/quick"
)

func testDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(SmallGeometry(), DDR4Timing())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGeometryValidate(t *testing.T) {
	if err := DefaultGeometry().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultGeometry()
	bad.RowsPerSubarray = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero rows")
	}
}

func TestDefaultGeometryIs32GB(t *testing.T) {
	g := DefaultGeometry()
	if got := g.CapacityBytes(); got != 32<<30 {
		t.Fatalf("capacity = %d, want 32GiB", got)
	}
	if g.Banks() != 16 {
		t.Fatalf("banks = %d, want 16", g.Banks())
	}
}

func TestNeighborsInterior(t *testing.T) {
	g := SmallGeometry()
	a := RowAddr{Bank: 0, Row: 10}
	n := g.Neighbors(a, 1)
	if len(n) != 2 || n[0].Row != 9 || n[1].Row != 11 {
		t.Fatalf("neighbors = %v", n)
	}
}

func TestNeighborsSubarrayBoundary(t *testing.T) {
	g := SmallGeometry() // 64 rows per subarray
	// Row 63 is the last row of subarray 0; row 64 belongs to subarray 1,
	// separated by sense amps, so it is NOT a RowHammer neighbor.
	edge := RowAddr{Bank: 0, Row: 63}
	n := g.Neighbors(edge, 1)
	if len(n) != 1 || n[0].Row != 62 {
		t.Fatalf("neighbors at subarray edge = %v, want only row 62", n)
	}
	first := RowAddr{Bank: 1, Row: 0}
	n = g.Neighbors(first, 1)
	if len(n) != 1 || n[0].Row != 1 {
		t.Fatalf("neighbors at bank edge = %v, want only row 1", n)
	}
}

func TestNeighborsDistance2(t *testing.T) {
	g := SmallGeometry()
	n := g.Neighbors(RowAddr{Bank: 0, Row: 10}, 2)
	if len(n) != 2 || n[0].Row != 8 || n[1].Row != 12 {
		t.Fatalf("distance-2 neighbors = %v", n)
	}
}

func TestLinearIndexRoundTrip(t *testing.T) {
	g := SmallGeometry()
	f := func(bank, row uint16) bool {
		a := RowAddr{Bank: int(bank) % g.Banks(), Row: int(row) % g.RowsPerBank()}
		return g.FromLinearIndex(g.LinearIndex(a)) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSameSubarray(t *testing.T) {
	g := SmallGeometry()
	a := RowAddr{Bank: 0, Row: 0}
	b := RowAddr{Bank: 0, Row: 63}
	c := RowAddr{Bank: 0, Row: 64}
	d := RowAddr{Bank: 1, Row: 0}
	if !g.SameSubarray(a, b) {
		t.Fatal("rows 0 and 63 share subarray 0")
	}
	if g.SameSubarray(a, c) {
		t.Fatal("rows 0 and 64 are different subarrays")
	}
	if g.SameSubarray(a, d) {
		t.Fatal("different banks can never share a subarray")
	}
}

func TestActivateReadWritePrechargeCycle(t *testing.T) {
	d := testDevice(t)
	a := RowAddr{Bank: 1, Row: 5}
	if _, err := d.Activate(a); err != nil {
		t.Fatal(err)
	}
	payload := []byte{1, 2, 3, 4}
	if _, err := d.Write(a, 10, payload); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := d.Read(a, 10, buf); err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if buf[i] != payload[i] {
			t.Fatalf("read back %v, want %v", buf, payload)
		}
	}
	if _, err := d.Precharge(a.Bank); err != nil {
		t.Fatal(err)
	}
	if _, open := d.OpenRow(a.Bank); open {
		t.Fatal("bank still open after precharge")
	}
}

func TestActivateTwiceFails(t *testing.T) {
	d := testDevice(t)
	a := RowAddr{Bank: 0, Row: 1}
	if _, err := d.Activate(a); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Activate(RowAddr{Bank: 0, Row: 2}); !errors.Is(err, ErrBankOpen) {
		t.Fatalf("err = %v, want ErrBankOpen", err)
	}
}

func TestReadClosedBankFails(t *testing.T) {
	d := testDevice(t)
	buf := make([]byte, 1)
	if _, err := d.Read(RowAddr{Bank: 0, Row: 1}, 0, buf); !errors.Is(err, ErrBankClosed) {
		t.Fatalf("err = %v, want ErrBankClosed", err)
	}
}

func TestReadWrongOpenRowFails(t *testing.T) {
	d := testDevice(t)
	if _, err := d.Activate(RowAddr{Bank: 0, Row: 1}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := d.Read(RowAddr{Bank: 0, Row: 2}, 0, buf); !errors.Is(err, ErrWrongOpenRow) {
		t.Fatalf("err = %v, want ErrWrongOpenRow", err)
	}
}

func TestColumnBoundsChecked(t *testing.T) {
	d := testDevice(t)
	a := RowAddr{Bank: 0, Row: 1}
	if _, err := d.Activate(a); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := d.Read(a, d.Geometry().RowBytes-5, buf); !errors.Is(err, ErrBadColumn) {
		t.Fatalf("err = %v, want ErrBadColumn", err)
	}
}

func TestUnwrittenRowsReadZero(t *testing.T) {
	d := testDevice(t)
	a := RowAddr{Bank: 0, Row: 40}
	if _, err := d.Activate(a); err != nil {
		t.Fatal(err)
	}
	buf := []byte{9, 9, 9}
	if _, err := d.Read(a, 0, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten row must read as zeroes")
		}
	}
	if d.AllocatedRows() != 0 {
		t.Fatalf("read must not allocate storage, got %d rows", d.AllocatedRows())
	}
}

func TestLazyAllocationOnWrite(t *testing.T) {
	d := testDevice(t)
	a := RowAddr{Bank: 0, Row: 3}
	if _, err := d.Activate(a); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(a, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if d.AllocatedRows() != 1 {
		t.Fatalf("allocated rows = %d, want 1", d.AllocatedRows())
	}
}

func TestClockAdvancesWithCommands(t *testing.T) {
	d := testDevice(t)
	tm := d.Timing()
	a := RowAddr{Bank: 0, Row: 1}
	d.Activate(a)
	if d.Now() != tm.TRCD {
		t.Fatalf("clock = %v after ACT, want %v", d.Now(), tm.TRCD)
	}
	buf := make([]byte, 1)
	d.Read(a, 0, buf)
	want := tm.TRCD + tm.ReadLatency()
	if d.Now() != want {
		t.Fatalf("clock = %v after RD, want %v", d.Now(), want)
	}
	d.AdvanceClock(100)
	if d.Now() != want+100 {
		t.Fatal("AdvanceClock must add idle time")
	}
}

func TestRowCloneCopySameSubarray(t *testing.T) {
	d := testDevice(t)
	src := RowAddr{Bank: 0, Row: 4}
	dst := RowAddr{Bank: 0, Row: 9}
	if err := d.PokeRow(src, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RowCloneCopy(src, dst); err != nil {
		t.Fatal(err)
	}
	got, _ := d.PeekRow(dst)
	if string(got[:5]) != "hello" {
		t.Fatalf("copy result %q", got[:5])
	}
}

func TestRowCloneCopyCrossSubarrayFails(t *testing.T) {
	d := testDevice(t)
	if _, err := d.RowCloneCopy(RowAddr{Bank: 0, Row: 4}, RowAddr{Bank: 0, Row: 100}); err == nil {
		t.Fatal("cross-subarray RowClone must fail")
	}
}

func TestRowCloneFromUnwrittenSourceZeroesDest(t *testing.T) {
	d := testDevice(t)
	dst := RowAddr{Bank: 0, Row: 9}
	if err := d.PokeRow(dst, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RowCloneCopy(RowAddr{Bank: 0, Row: 4}, dst); err != nil {
		t.Fatal(err)
	}
	got, _ := d.PeekRow(dst)
	for _, b := range got[:3] {
		if b != 0 {
			t.Fatal("copy of unwritten row must zero the destination")
		}
	}
}

func TestFlipBitAndPeekBit(t *testing.T) {
	d := testDevice(t)
	a := RowAddr{Bank: 1, Row: 7}
	if err := d.FlipBit(a, 13); err != nil {
		t.Fatal(err)
	}
	set, err := d.PeekBit(a, 13)
	if err != nil {
		t.Fatal(err)
	}
	if !set {
		t.Fatal("bit must be set after flip from zero")
	}
	if err := d.FlipBit(a, 13); err != nil {
		t.Fatal(err)
	}
	set, _ = d.PeekBit(a, 13)
	if set {
		t.Fatal("double flip must restore the bit")
	}
	row, _ := d.PeekRow(a)
	if row[1] != 0 {
		t.Fatalf("byte 1 = %#x, want 0 after double flip", row[1])
	}
}

func TestActivateObserverSeesActivations(t *testing.T) {
	d := testDevice(t)
	var seen []RowAddr
	d.AddActivateObserver(observerFunc(func(a RowAddr, _ Picoseconds) {
		seen = append(seen, a)
	}))
	a := RowAddr{Bank: 0, Row: 2}
	d.Activate(a)
	d.Precharge(0)
	d.Activate(RowAddr{Bank: 0, Row: 3})
	if len(seen) != 2 || seen[0] != a {
		t.Fatalf("observer saw %v", seen)
	}
}

type observerFunc func(RowAddr, Picoseconds)

func (f observerFunc) ObserveActivate(a RowAddr, now Picoseconds) { f(a, now) }

func TestDeviceStatsAndEnergy(t *testing.T) {
	d := testDevice(t)
	a := RowAddr{Bank: 0, Row: 1}
	d.Activate(a)
	d.Write(a, 0, []byte{1})
	d.Precharge(0)
	d.Refresh()
	st := d.Stats()
	if st.Activates != 1 || st.Writes != 1 || st.Precharges != 1 || st.Refreshes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.EnergyPJ <= 0 {
		t.Fatal("energy must accumulate")
	}
}

func TestTimingValidate(t *testing.T) {
	if err := DDR4Timing().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DDR4Timing()
	bad.TRC = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("tRC < tRAS+tRP must fail validation")
	}
	bad2 := DDR4Timing()
	bad2.TRCD = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero tRCD must fail validation")
	}
}

func TestSwapLatencyIsThreeCopies(t *testing.T) {
	tm := DDR4Timing()
	if tm.SwapLatency() != 3*tm.RowCloneFPM {
		t.Fatalf("swap latency %v, want 3x %v", tm.SwapLatency(), tm.RowCloneFPM)
	}
}

func TestPicosecondsString(t *testing.T) {
	cases := map[Picoseconds]string{
		500:             "500ps",
		2 * Nanosecond:  "2.000ns",
		3 * Microsecond: "3.000us",
		4 * Millisecond: "4.000ms",
		2 * Second:      "2.000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestAddrMapperRoundTrip(t *testing.T) {
	m := NewAddrMapper(SmallGeometry())
	f := func(p uint32) bool {
		phys := int64(p) % m.Geometry().CapacityBytes()
		row, col, err := m.Translate(phys)
		if err != nil {
			return false
		}
		back, err := m.Untranslate(row, col)
		return err == nil && back == phys
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAddrMapperInterleavesBanks(t *testing.T) {
	g := SmallGeometry()
	m := NewAddrMapper(g)
	r0, _, _ := m.Translate(0)
	r1, _, _ := m.Translate(int64(g.RowBytes))
	if r0.Bank == r1.Bank {
		t.Fatal("consecutive rows must map to different banks")
	}
}

func TestAddrMapperRejectsOutOfRange(t *testing.T) {
	m := NewAddrMapper(SmallGeometry())
	if _, _, err := m.Translate(-1); err == nil {
		t.Fatal("negative address must fail")
	}
	if _, _, err := m.Translate(m.Geometry().CapacityBytes()); err == nil {
		t.Fatal("address past capacity must fail")
	}
}
