// Package dram models a DDR4-class DRAM device at command level: geometry
// (channel/rank/bank/subarray/row/column), real bit-accurate row storage,
// JEDEC-style timing parameters, and the ACT/PRE/RD/WR/REF command state
// machine with per-bank row buffers.
//
// The model is the substrate every other part of the DRAM-Locker
// reproduction runs on: RowHammer fault injection observes ACT streams,
// RowClone/SWAP copies rows inside subarrays, and the memory controller
// accounts latency from the timing parameters.
package dram

import "fmt"

// Geometry describes the physical organisation of one DRAM channel.
//
// Row storage is allocated lazily, so large geometries (a 32GB DIMM has
// millions of rows) cost memory only for rows actually touched.
type Geometry struct {
	// Ranks per channel.
	Ranks int
	// Banks per rank.
	BanksPerRank int
	// Subarrays per bank. RowClone fast-parallel-mode copies are only
	// possible between rows of the same subarray.
	SubarraysPerBank int
	// Rows per subarray.
	RowsPerSubarray int
	// RowBytes is the size of one row (one page) in bytes. DDR4 chips
	// typically expose 8KB rows per rank after chip interleaving.
	RowBytes int
}

// DefaultGeometry returns the 32GB, 16-bank DDR4 configuration used for the
// paper's Table I comparison: 16 banks of 2048-row subarrays, 8KB rows.
//
// 32GB / 8KB = 4,194,304 rows = 16 banks x 256 subarrays x 1024 rows.
func DefaultGeometry() Geometry {
	return Geometry{
		Ranks:            1,
		BanksPerRank:     16,
		SubarraysPerBank: 256,
		RowsPerSubarray:  1024,
		RowBytes:         8192,
	}
}

// SmallGeometry returns a geometry small enough for exhaustive tests while
// preserving all structural properties (multiple banks and subarrays).
func SmallGeometry() Geometry {
	return Geometry{
		Ranks:            1,
		BanksPerRank:     2,
		SubarraysPerBank: 4,
		RowsPerSubarray:  64,
		RowBytes:         256,
	}
}

// Validate checks that all geometry fields are positive.
func (g Geometry) Validate() error {
	switch {
	case g.Ranks <= 0:
		return fmt.Errorf("dram: Ranks must be positive, got %d", g.Ranks)
	case g.BanksPerRank <= 0:
		return fmt.Errorf("dram: BanksPerRank must be positive, got %d", g.BanksPerRank)
	case g.SubarraysPerBank <= 0:
		return fmt.Errorf("dram: SubarraysPerBank must be positive, got %d", g.SubarraysPerBank)
	case g.RowsPerSubarray <= 0:
		return fmt.Errorf("dram: RowsPerSubarray must be positive, got %d", g.RowsPerSubarray)
	case g.RowBytes <= 0:
		return fmt.Errorf("dram: RowBytes must be positive, got %d", g.RowBytes)
	}
	return nil
}

// Banks returns the total number of banks in the channel.
func (g Geometry) Banks() int { return g.Ranks * g.BanksPerRank }

// RowsPerBank returns the number of rows in one bank.
func (g Geometry) RowsPerBank() int { return g.SubarraysPerBank * g.RowsPerSubarray }

// TotalRows returns the number of rows in the channel.
func (g Geometry) TotalRows() int { return g.Banks() * g.RowsPerBank() }

// CapacityBytes returns the total channel capacity in bytes.
func (g Geometry) CapacityBytes() int64 {
	return int64(g.TotalRows()) * int64(g.RowBytes)
}

// RowAddr identifies a row within the channel by bank and in-bank row index.
type RowAddr struct {
	Bank int // 0 .. Banks()-1
	Row  int // 0 .. RowsPerBank()-1
}

// String renders the address as "bK:rN".
func (a RowAddr) String() string { return fmt.Sprintf("b%d:r%d", a.Bank, a.Row) }

// Valid reports whether the address is within the geometry.
func (g Geometry) Valid(a RowAddr) bool {
	return a.Bank >= 0 && a.Bank < g.Banks() &&
		a.Row >= 0 && a.Row < g.RowsPerBank()
}

// Subarray returns the subarray index that the row belongs to.
func (g Geometry) Subarray(a RowAddr) int { return a.Row / g.RowsPerSubarray }

// SameSubarray reports whether two rows share a subarray (and bank), which
// is the precondition for RowClone fast-parallel-mode copies.
func (g Geometry) SameSubarray(a, b RowAddr) bool {
	return a.Bank == b.Bank && g.Subarray(a) == g.Subarray(b)
}

// RowInSubarray returns the row index within its subarray.
func (g Geometry) RowInSubarray(a RowAddr) int { return a.Row % g.RowsPerSubarray }

// Neighbors returns the physically adjacent rows at the given distance
// (distance 1 = immediate victims). Rows at subarray edges have fewer
// neighbors; only valid addresses are returned. Adjacency does not cross
// subarray boundaries: the sense-amplifier stripes between subarrays
// isolate RowHammer coupling, matching the paper's intra-subarray model.
func (g Geometry) Neighbors(a RowAddr, distance int) []RowAddr {
	if distance <= 0 {
		return nil
	}
	var out []RowAddr
	sub := g.Subarray(a)
	for _, d := range []int{-distance, distance} {
		n := RowAddr{Bank: a.Bank, Row: a.Row + d}
		if g.Valid(n) && g.Subarray(n) == sub {
			out = append(out, n)
		}
	}
	return out
}

// LinearIndex flattens a RowAddr to a unique integer in [0, TotalRows()).
func (g Geometry) LinearIndex(a RowAddr) int {
	return a.Bank*g.RowsPerBank() + a.Row
}

// FromLinearIndex is the inverse of LinearIndex.
func (g Geometry) FromLinearIndex(i int) RowAddr {
	return RowAddr{Bank: i / g.RowsPerBank(), Row: i % g.RowsPerBank()}
}
