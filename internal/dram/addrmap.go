package dram

import "fmt"

// AddrMapper translates flat physical byte addresses to (bank, row, column)
// coordinates. The simulator uses a row-interleaved map: consecutive rows of
// the physical address space round-robin across banks, which is the common
// open-page mapping and also what gives RowHammer its per-bank locality.
type AddrMapper struct {
	geom Geometry
}

// NewAddrMapper builds a mapper over the geometry.
func NewAddrMapper(geom Geometry) AddrMapper { return AddrMapper{geom: geom} }

// Geometry returns the mapped geometry.
func (m AddrMapper) Geometry() Geometry { return m.geom }

// Translate maps a physical byte address to DRAM coordinates.
func (m AddrMapper) Translate(phys int64) (RowAddr, int, error) {
	if phys < 0 || phys >= m.geom.CapacityBytes() {
		return RowAddr{}, 0, fmt.Errorf("%w: phys 0x%x", ErrBadAddress, phys)
	}
	rowIdx := phys / int64(m.geom.RowBytes)
	col := int(phys % int64(m.geom.RowBytes))
	banks := int64(m.geom.Banks())
	bank := int(rowIdx % banks)
	rowInBank := int(rowIdx / banks)
	return RowAddr{Bank: bank, Row: rowInBank}, col, nil
}

// Untranslate maps DRAM coordinates back to a physical byte address.
func (m AddrMapper) Untranslate(a RowAddr, col int) (int64, error) {
	if !m.geom.Valid(a) {
		return 0, fmt.Errorf("%w: %v", ErrBadAddress, a)
	}
	if col < 0 || col >= m.geom.RowBytes {
		return 0, fmt.Errorf("%w: col %d", ErrBadColumn, col)
	}
	rowIdx := int64(a.Row)*int64(m.geom.Banks()) + int64(a.Bank)
	return rowIdx*int64(m.geom.RowBytes) + int64(col), nil
}

// RowOfPhys returns just the row address of a physical byte address.
func (m AddrMapper) RowOfPhys(phys int64) (RowAddr, error) {
	a, _, err := m.Translate(phys)
	return a, err
}
