package tensor

import (
	"math"
	"testing"

	"repro/internal/par"
	"repro/internal/stats"
)

// The serial references below mirror the kernels' accumulation order
// (ascending k, single accumulator) without blocking or goroutines. The
// equivalence tests require *bit* identity against them — tolerance-free
// — which is the determinism guarantee the experiment reports rely on.

func serialMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a.Data[i*k+p]
			for j := 0; j < n; j++ {
				c.Data[i*n+j] += av * b.Data[p*n+j]
			}
		}
	}
	return c
}

func serialMatMulTransA(a, b *Tensor) *Tensor {
	k, m, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for p := 0; p < k; p++ {
		for i := 0; i < m; i++ {
			av := a.Data[p*m+i]
			for j := 0; j < n; j++ {
				c.Data[i*n+j] += av * b.Data[p*n+j]
			}
		}
	}
	return c
}

func serialMatMulTransB(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[j*k+p]
			}
			c.Data[i*n+j] = s
		}
	}
	return c
}

// requireBitIdentical fails unless got and want match bit for bit
// (including NaN payloads and zero signs).
func requireBitIdentical(t *testing.T, tag string, got, want *Tensor) {
	t.Helper()
	if !SameShape(got, want) {
		t.Fatalf("%s: shape %v, want %v", tag, got.Shape, want.Shape)
	}
	for i := range want.Data {
		g, w := math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i])
		if g != w {
			t.Fatalf("%s: element %d = %g (0x%08x), want %g (0x%08x)",
				tag, i, got.Data[i], g, want.Data[i], w)
		}
	}
}

// kernelShapes covers small, rectangular and deliberately awkward sizes:
// dimensions straddling the k-block boundary (gemmBlockK±1) and sizes not
// divisible by any block or chunk width.
var kernelShapes = [][3]int{
	{1, 1, 1},
	{2, 3, 4},
	{5, 7, 3},
	{17, 13, 19},
	{64, 64, 64},
	{3, gemmBlockK - 1, 5},
	{3, gemmBlockK, 5},
	{3, gemmBlockK + 1, 5},
	{33, 2*gemmBlockK + 7, 9},
	{129, 65, 31},
}

// withBudget runs f under a temporary worker budget.
func withBudget(t *testing.T, n int, f func()) {
	t.Helper()
	old := par.Budget()
	par.SetBudget(n)
	defer par.SetBudget(old)
	f()
}

func TestGEMMBitIdenticalAcrossBudgets(t *testing.T) {
	rng := stats.NewRNG(42)
	for _, dims := range kernelShapes {
		m, k, n := dims[0], dims[1], dims[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		at := transpose(a) // (k, m) for TransA
		bt := transpose(b) // (n, k) for TransB
		wantMM := serialMatMul(a, b)
		wantTA := serialMatMulTransA(at, b)
		wantTB := serialMatMulTransB(a, bt)
		for _, budget := range []int{1, 2, 3, 8} {
			withBudget(t, budget, func() {
				requireBitIdentical(t, "MatMul", MatMul(a, b), wantMM)
				requireBitIdentical(t, "MatMulTransA", MatMulTransA(at, b), wantTA)
				requireBitIdentical(t, "MatMulTransB", MatMulTransB(a, bt), wantTB)
			})
		}
	}
}

func TestIntoVariantsMatchAndReusePooledScratch(t *testing.T) {
	rng := stats.NewRNG(43)
	for _, dims := range [][3]int{{4, 5, 6}, {31, gemmBlockK + 3, 17}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		at := transpose(a)
		bt := transpose(b)

		c := GetScratch(m, n)
		c.Fill(999) // Into must fully overwrite stale scratch contents
		MatMulInto(c, a, b)
		requireBitIdentical(t, "MatMulInto", c, serialMatMul(a, b))

		c = ensureInto(c, []int{m, n})
		c.Fill(999)
		MatMulTransAInto(c, at, b)
		requireBitIdentical(t, "MatMulTransAInto", c, serialMatMulTransA(at, b))

		c.Fill(999)
		MatMulTransBInto(c, a, bt)
		requireBitIdentical(t, "MatMulTransBInto", c, serialMatMulTransB(a, bt))
		PutScratch(c)
	}
}

func TestMatMulTransAAccAccumulates(t *testing.T) {
	rng := stats.NewRNG(44)
	at := randTensor(rng, 6, 4)
	b := randTensor(rng, 6, 5)
	base := randTensor(rng, 4, 5)

	// Reference: base + Aᵀ·B via the allocating kernel and elementwise add,
	// evaluated at budget 1.
	var want *Tensor
	withBudget(t, 1, func() {
		want = base.Clone()
		got := New(4, 5)
		matMulTransAAcc(got.Data, at.Data, b.Data, 4, 6, 5)
		for i := range want.Data {
			want.Data[i] += got.Data[i]
		}
	})

	got := base.Clone()
	MatMulTransAAcc(got, at, b)
	for i := range want.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-5 {
			t.Fatalf("element %d = %g, want %g", i, got.Data[i], want.Data[i])
		}
	}
}

// TestGEMMPropagatesNaN pins the semantics fix for the old
// `if av == 0 { continue }` zero-skip: a zero in A times a NaN in B must
// produce NaN, not silently skip the column.
func TestGEMMPropagatesNaN(t *testing.T) {
	a := FromData([]float32{0, 0}, 1, 2)
	b := FromData([]float32{float32(math.NaN()), 1, 2, 3}, 2, 2)
	c := MatMul(a, b)
	if !math.IsNaN(float64(c.Data[0])) {
		t.Fatalf("0 * NaN column must be NaN, got %g", c.Data[0])
	}
	if c.Data[1] != 0 {
		t.Fatalf("finite column must stay 0, got %g", c.Data[1])
	}

	at := FromData([]float32{0, 0}, 2, 1)
	c2 := MatMulTransA(at, b)
	if !math.IsNaN(float64(c2.Data[0])) {
		t.Fatalf("TransA: 0 * NaN must be NaN, got %g", c2.Data[0])
	}
}

func TestIm2ColIntoMatchesAndParallel(t *testing.T) {
	rng := stats.NewRNG(45)
	for _, tc := range []struct{ n, c, h, w, k, stride, pad int }{
		{1, 1, 4, 4, 3, 1, 1},
		{5, 3, 7, 5, 3, 2, 1},
		{9, 2, 6, 6, 2, 2, 0},
	} {
		x := randTensor(rng, tc.n, tc.c, tc.h, tc.w)
		var want *Tensor
		withBudget(t, 1, func() { want, _, _ = Im2Col(x, tc.k, tc.k, tc.stride, tc.pad) })

		withBudget(t, 8, func() {
			got := Ensure(nil, want.Shape[0], want.Shape[1])
			got.Fill(42) // stale contents must be fully cleared
			Im2ColInto(got, x, tc.k, tc.k, tc.stride, tc.pad)
			requireBitIdentical(t, "Im2ColInto", got, want)

			cols := randTensor(rng, want.Shape[0], want.Shape[1])
			var wantIm *Tensor
			withBudget(t, 1, func() {
				wantIm = Col2Im(cols, tc.n, tc.c, tc.h, tc.w, tc.k, tc.k, tc.stride, tc.pad)
			})
			gotIm := Ensure(nil, tc.n, tc.c, tc.h, tc.w)
			gotIm.Fill(-7)
			Col2ImInto(gotIm, cols, tc.k, tc.k, tc.stride, tc.pad)
			requireBitIdentical(t, "Col2ImInto", gotIm, wantIm)
		})
	}
}

func TestEnsureReusesCapacity(t *testing.T) {
	t1 := Ensure(nil, 4, 4)
	if t1.Len() != 16 {
		t.Fatalf("Ensure(nil) len %d", t1.Len())
	}
	data := &t1.Data[0]
	t2 := Ensure(t1, 2, 3)
	if t2.Len() != 6 || &t2.Data[0] != data {
		t.Fatal("Ensure must reuse capacity when shrinking")
	}
	t3 := Ensure(t2, 8, 8)
	if t3.Len() != 64 {
		t.Fatalf("Ensure grow len %d", t3.Len())
	}
}

func TestZeroAndFill(t *testing.T) {
	x := New(3, 3)
	x.Fill(2.5)
	for _, v := range x.Data {
		if v != 2.5 {
			t.Fatalf("Fill: got %g", v)
		}
	}
	x.Zero()
	for _, v := range x.Data {
		if v != 0 {
			t.Fatalf("Zero: got %g", v)
		}
	}
}
