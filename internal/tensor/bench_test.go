package tensor

import (
	"fmt"
	"testing"

	"repro/internal/par"
	"repro/internal/stats"
)

// benchGEMM runs one C = A·B shape under a fixed worker budget. The
// serial/parallel pair for the same shape is the ≥2x multi-core
// throughput gate tracked by `make bench-kernels` in BENCH_<sha>.json.
func benchGEMM(b *testing.B, m, k, n, budget int) {
	old := par.Budget()
	par.SetBudget(budget)
	defer par.SetBudget(old)
	rng := stats.NewRNG(1)
	a := randTensor(rng, m, k)
	bb := randTensor(rng, k, n)
	c := New(m, n)
	b.SetBytes(int64(2 * m * k * n * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(c, a, bb)
	}
}

func BenchmarkMatMul256Serial(b *testing.B)   { benchGEMM(b, 256, 256, 256, 1) }
func BenchmarkMatMul256Parallel(b *testing.B) { benchGEMM(b, 256, 256, 256, par.Budget()) }
func BenchmarkMatMul512Serial(b *testing.B)   { benchGEMM(b, 512, 512, 512, 1) }
func BenchmarkMatMul512Parallel(b *testing.B) { benchGEMM(b, 512, 512, 512, par.Budget()) }

// Conv-shaped GEMMs: tall-skinny column matrices against small weight
// matrices, the shapes the DNN substrate actually runs.
func BenchmarkMatMulTransBConvShape(b *testing.B) {
	rng := stats.NewRNG(2)
	cols := randTensor(rng, 4096, 144) // (N*oh*ow, inC*k*k)
	w := randTensor(rng, 32, 144)      // (outC, inC*k*k)
	out := New(4096, 32)
	b.SetBytes(int64(2 * 4096 * 144 * 32 * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransBInto(out, cols, w)
	}
}

func BenchmarkMatMulTransAGradShape(b *testing.B) {
	rng := stats.NewRNG(3)
	g := randTensor(rng, 4096, 32)
	cols := randTensor(rng, 4096, 144)
	grad := New(32, 144)
	b.SetBytes(int64(2 * 4096 * 32 * 144 * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransAAcc(grad, g, cols)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	rng := stats.NewRNG(4)
	x := randTensor(rng, 32, 16, 16, 16)
	cols := Ensure(nil, 32*16*16, 16*9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2ColInto(cols, x, 3, 3, 1, 1)
	}
}

func BenchmarkScratchPool(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := GetScratch(64, 64)
		PutScratch(t)
	}
}

// BenchmarkGEMMScaling reports per-budget throughput at a fixed shape so
// the bench artifact captures the scaling curve, not just the endpoints.
func BenchmarkGEMMScaling(b *testing.B) {
	for _, budget := range []int{1, 2, 4, 8} {
		if budget > par.Budget() {
			break
		}
		b.Run(fmt.Sprintf("budget%d", budget), func(b *testing.B) {
			benchGEMM(b, 384, 384, 384, budget)
		})
	}
}
