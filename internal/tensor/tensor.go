// Package tensor provides the dense float32 tensors and kernels that the
// DNN substrate (internal/nn) is built on: matrix multiplication, im2col
// convolution lowering, pooling, and elementwise operations, all in pure Go
// with deterministic results.
package tensor

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %d in %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromData wraps data with a shape; the slice is used directly.
func FromData(data []float32, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if t.Len() != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return t
}

// Len returns the number of elements.
func (t *Tensor) Len() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// Reshape returns a view with a new shape of equal length.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	out := &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
	if out.Len() != t.Len() {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes length", t.Shape, shape))
	}
	return out
}

// Zero sets all elements to zero.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// At returns the element at the given indices (bounds-checked; for tests
// and small-scale code, not inner loops).
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx)] }

// Set stores v at the given indices.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: %d indices for shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for axis %d (%v)", x, i, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// RandNormal fills the tensor with Normal(0, std) values.
func (t *Tensor) RandNormal(rng *stats.RNG, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.Normal(0, std))
	}
}

// KaimingInit fills a weight tensor with He-normal initialisation using
// fanIn input connections.
func (t *Tensor) KaimingInit(rng *stats.RNG, fanIn int) {
	std := math.Sqrt(2 / float64(fanIn))
	t.RandNormal(rng, std)
}

// Add accumulates src into t elementwise.
func (t *Tensor) Add(src *Tensor) {
	if len(src.Data) != len(t.Data) {
		panic("tensor: Add length mismatch")
	}
	for i, v := range src.Data {
		t.Data[i] += v
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// MaxAbs returns the maximum absolute value.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// MatMul computes C = A(mxk) * B(kxn) into a new (mxn) tensor, using an
// ikj loop order so the inner loop streams both B and C rows.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v x %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	matMulInto(c.Data, a.Data, b.Data, m, k, n)
	return c
}

func matMulInto(c, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		ci := c[i*n : (i+1)*n]
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j := range bp {
				ci[j] += av * bp[j]
			}
		}
	}
}

// MatMulTransA computes C = Aᵀ·B where A is (k x m) and B is (k x n),
// giving C (m x n): C[i,j] = sum_p A[p,i] * B[p,j]. Used for weight
// gradients.
func MatMulTransA(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch %v x %v", a.Shape, b.Shape))
	}
	k, m, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for p := 0; p < k; p++ {
		ap := a.Data[p*m : (p+1)*m]
		bp := b.Data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			ci := c.Data[i*n : (i+1)*n]
			for j := range bp {
				ci[j] += av * bp[j]
			}
		}
	}
	return c
}

// MatMulTransB computes C[m,n] = sum_p A[m,p] * B[n,p] (B transposed).
// Used for input gradients.
func MatMulTransB(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch %v x %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	c := New(m, n)
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		ci := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			var s float32
			for p := range ai {
				s += ai[p] * bj[p]
			}
			ci[j] = s
		}
	}
	return c
}

// Im2Col lowers an input image batch (N, C, H, W) into a matrix of shape
// (N*outH*outW, C*kh*kw) for convolution by matmul. Padding is zero-fill.
func Im2Col(x *Tensor, kh, kw, stride, pad int) (*Tensor, int, int) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	cols := New(n*outH*outW, c*kh*kw)
	colStride := c * kh * kw
	for img := 0; img < n; img++ {
		xoff := img * c * h * w
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				row := ((img*outH+oy)*outW + ox) * colStride
				for ch := 0; ch < c; ch++ {
					choff := xoff + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride - pad + ky
						dst := row + (ch*kh+ky)*kw
						if iy < 0 || iy >= h {
							continue // zeros already
						}
						srcRow := choff + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride - pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							cols.Data[dst+kx] = x.Data[srcRow+ix]
						}
					}
				}
			}
		}
	}
	return cols, outH, outW
}

// Col2Im scatters a column matrix (as produced by Im2Col) back into an
// image batch of shape (N, C, H, W), accumulating overlaps. It is the
// adjoint of Im2Col and is used for convolution input gradients.
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	x := New(n, c, h, w)
	colStride := c * kh * kw
	for img := 0; img < n; img++ {
		xoff := img * c * h * w
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				row := ((img*outH+oy)*outW + ox) * colStride
				for ch := 0; ch < c; ch++ {
					choff := xoff + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride - pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						src := row + (ch*kh+ky)*kw
						dstRow := choff + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride - pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							x.Data[dstRow+ix] += cols.Data[src+kx]
						}
					}
				}
			}
		}
	}
	return x
}

// ArgMaxRow returns the index of the maximum element in each row of a 2-D
// tensor (class predictions from logits).
func ArgMaxRow(t *Tensor) []int {
	if len(t.Shape) != 2 {
		panic("tensor: ArgMaxRow needs a 2-D tensor")
	}
	rows, cols := t.Shape[0], t.Shape[1]
	out := make([]int, rows)
	for i := 0; i < rows; i++ {
		row := t.Data[i*cols : (i+1)*cols]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}
