// Package tensor provides the dense float32 tensors and kernels that the
// DNN substrate (internal/nn) is built on: matrix multiplication, im2col
// convolution lowering, pooling, and elementwise operations, all in pure Go
// with deterministic results.
package tensor

import (
	"fmt"
	"math"

	"repro/internal/par"
	"repro/internal/stats"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %d in %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromData wraps data with a shape; the slice is used directly.
func FromData(data []float32, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if t.Len() != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return t
}

// Len returns the number of elements.
func (t *Tensor) Len() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// Reshape returns a view with a new shape of equal length.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	out := &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
	if out.Len() != t.Len() {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes length", t.Shape, shape))
	}
	return out
}

// Zero sets all elements to zero.
func (t *Tensor) Zero() { clear(t.Data) }

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// At returns the element at the given indices (bounds-checked; for tests
// and small-scale code, not inner loops).
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx)] }

// Set stores v at the given indices.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: %d indices for shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for axis %d (%v)", x, i, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// RandNormal fills the tensor with Normal(0, std) values.
func (t *Tensor) RandNormal(rng *stats.RNG, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.Normal(0, std))
	}
}

// KaimingInit fills a weight tensor with He-normal initialisation using
// fanIn input connections.
func (t *Tensor) KaimingInit(rng *stats.RNG, fanIn int) {
	std := math.Sqrt(2 / float64(fanIn))
	t.RandNormal(rng, std)
}

// Add accumulates src into t elementwise.
func (t *Tensor) Add(src *Tensor) {
	if len(src.Data) != len(t.Data) {
		panic("tensor: Add length mismatch")
	}
	for i, v := range src.Data {
		t.Data[i] += v
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// MaxAbs returns the maximum absolute value.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// MatMul computes C = A(mxk) * B(kxn) into a new (mxn) tensor. See
// matmul.go for the blocked, goroutine-parallel kernel underneath.
func MatMul(a, b *Tensor) *Tensor {
	m, _, n := mmShapes("MatMul", a, b, false, false)
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulTransA computes C = Aᵀ·B where A is (k x m) and B is (k x n),
// giving C (m x n): C[i,j] = sum_p A[p,i] * B[p,j]. Used for weight
// gradients.
func MatMulTransA(a, b *Tensor) *Tensor {
	m, _, n := mmShapes("MatMulTransA", a, b, true, false)
	c := New(m, n)
	MatMulTransAAcc(c, a, b)
	return c
}

// MatMulTransB computes C[m,n] = sum_p A[m,p] * B[n,p] (B transposed).
// Used for input gradients.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, _, n := mmShapes("MatMulTransB", a, b, false, true)
	c := New(m, n)
	MatMulTransBInto(c, a, b)
	return c
}

// ConvOutDims returns the spatial output size of a convolution over an
// (H, W) map with the given kernel, stride and padding.
func ConvOutDims(h, w, kh, kw, stride, pad int) (int, int) {
	return (h+2*pad-kh)/stride + 1, (w+2*pad-kw)/stride + 1
}

// Im2Col lowers an input image batch (N, C, H, W) into a matrix of shape
// (N*outH*outW, C*kh*kw) for convolution by matmul. Padding is zero-fill.
func Im2Col(x *Tensor, kh, kw, stride, pad int) (*Tensor, int, int) {
	n, c := x.Shape[0], x.Shape[1]
	outH, outW := ConvOutDims(x.Shape[2], x.Shape[3], kh, kw, stride, pad)
	cols := New(n*outH*outW, c*kh*kw)
	Im2ColInto(cols, x, kh, kw, stride, pad)
	return cols, outH, outW
}

// Im2ColInto lowers x into cols, which must have shape
// (N*outH*outW, C*kh*kw); previous contents are overwritten. Images are
// lowered in parallel — each output row belongs to exactly one image, so
// the result is identical at any worker budget.
func Im2ColInto(cols, x *Tensor, kh, kw, stride, pad int) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH, outW := ConvOutDims(h, w, kh, kw, stride, pad)
	colStride := c * kh * kw
	checkOut("Im2Col", cols, n*outH*outW, colStride)
	if pad > 0 {
		// Padded positions are skipped by the fill and must read as zero;
		// with no padding every element is overwritten, so the (possibly
		// stale) destination needs no clearing.
		clear(cols.Data)
	}
	if grain := par.Grain(outH*outW*colStride, copyMinWork); parallelWorthIt(n, grain) {
		par.For(n, grain, func(lo, hi int) {
			for img := lo; img < hi; img++ {
				im2colImage(cols.Data, x.Data, img, c, h, w, outH, outW, kh, kw, stride, pad)
			}
		})
		return
	}
	for img := 0; img < n; img++ {
		im2colImage(cols.Data, x.Data, img, c, h, w, outH, outW, kh, kw, stride, pad)
	}
}

func im2colImage(cols, x []float32, img, c, h, w, outH, outW, kh, kw, stride, pad int) {
	colStride := c * kh * kw
	xoff := img * c * h * w
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			row := ((img*outH+oy)*outW + ox) * colStride
			for ch := 0; ch < c; ch++ {
				choff := xoff + ch*h*w
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride - pad + ky
					dst := row + (ch*kh+ky)*kw
					if iy < 0 || iy >= h {
						continue // zeros already
					}
					srcRow := choff + iy*w
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride - pad + kx
						if ix < 0 || ix >= w {
							continue
						}
						cols[dst+kx] = x[srcRow+ix]
					}
				}
			}
		}
	}
}

// Col2Im scatters a column matrix (as produced by Im2Col) back into an
// image batch of shape (N, C, H, W), accumulating overlaps. It is the
// adjoint of Im2Col and is used for convolution input gradients.
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	x := New(n, c, h, w)
	Col2ImInto(x, cols, kh, kw, stride, pad)
	return x
}

// Col2ImInto scatters cols into x (shape (N, C, H, W)), overwriting its
// previous contents. Images scatter in parallel: overlapping patch writes
// only ever land within one image, so per-element accumulation order is
// fixed and the result is identical at any worker budget.
func Col2ImInto(x, cols *Tensor, kh, kw, stride, pad int) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH, outW := ConvOutDims(h, w, kh, kw, stride, pad)
	colStride := c * kh * kw
	checkOut("Col2Im", cols, n*outH*outW, colStride)
	clear(x.Data)
	if grain := par.Grain(outH*outW*colStride, copyMinWork); parallelWorthIt(n, grain) {
		par.For(n, grain, func(lo, hi int) {
			for img := lo; img < hi; img++ {
				col2imImage(x.Data, cols.Data, img, c, h, w, outH, outW, kh, kw, stride, pad)
			}
		})
		return
	}
	for img := 0; img < n; img++ {
		col2imImage(x.Data, cols.Data, img, c, h, w, outH, outW, kh, kw, stride, pad)
	}
}

func col2imImage(x, cols []float32, img, c, h, w, outH, outW, kh, kw, stride, pad int) {
	colStride := c * kh * kw
	xoff := img * c * h * w
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			row := ((img*outH+oy)*outW + ox) * colStride
			for ch := 0; ch < c; ch++ {
				choff := xoff + ch*h*w
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						continue
					}
					src := row + (ch*kh+ky)*kw
					dstRow := choff + iy*w
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride - pad + kx
						if ix < 0 || ix >= w {
							continue
						}
						x[dstRow+ix] += cols[src+kx]
					}
				}
			}
		}
	}
}

// ArgMaxRow returns the index of the maximum element in each row of a 2-D
// tensor (class predictions from logits).
func ArgMaxRow(t *Tensor) []int {
	return ArgMaxRowInto(nil, t)
}

// ArgMaxRowInto is ArgMaxRow writing into dst, which is grown only when
// its capacity is short — evaluation loops pass the previous batch's
// slice back in so per-batch predictions cost no allocation.
func ArgMaxRowInto(dst []int, t *Tensor) []int {
	if len(t.Shape) != 2 {
		panic("tensor: ArgMaxRow needs a 2-D tensor")
	}
	rows, cols := t.Shape[0], t.Shape[1]
	out := dst
	if cap(out) < rows {
		out = make([]int, rows)
	}
	out = out[:rows]
	for i := 0; i < rows; i++ {
		row := t.Data[i*cols : (i+1)*cols]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}
