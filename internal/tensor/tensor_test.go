package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapesAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("dims wrong: %v", x.Shape)
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-initialise")
		}
	}
}

func TestNewPanicsOnNonPositiveDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 0)
}

func TestFromDataValidatesLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromData([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if got := x.At(2, 1); got != 7.5 {
		t.Fatalf("At = %g, want 7.5", got)
	}
	if x.Data[2*4+1] != 7.5 {
		t.Fatal("row-major offset wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := New(2, 2)
	x.Fill(1)
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 1 {
		t.Fatal("Clone must not share storage")
	}
	if !SameShape(x, y) {
		t.Fatal("Clone must preserve shape")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	x.Data[3] = 5
	y := x.Reshape(3, 4)
	if y.Data[3] != 5 {
		t.Fatal("Reshape must share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length change")
		}
	}()
	x.Reshape(5, 2)
}

func TestAddScaleMaxAbs(t *testing.T) {
	x := FromData([]float32{1, -4, 2}, 3)
	y := FromData([]float32{1, 1, 1}, 3)
	x.Add(y)
	if x.Data[1] != -3 {
		t.Fatalf("Add wrong: %v", x.Data)
	}
	x.Scale(2)
	if x.Data[2] != 6 {
		t.Fatalf("Scale wrong: %v", x.Data)
	}
	if m := x.MaxAbs(); m != 6 {
		t.Fatalf("MaxAbs = %g, want 6", m)
	}
}

// naiveMatMul is the reference implementation MatMul is tested against.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a.Data[i*k+p]) * float64(b.Data[p*n+j])
			}
			c.Data[i*n+j] = float32(s)
		}
	}
	return c
}

func randTensor(rng *stats.RNG, shape ...int) *Tensor {
	x := New(shape...)
	x.RandNormal(rng, 1)
	return x
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := stats.NewRNG(1)
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 7, 3}, {8, 8, 8}} {
		a := randTensor(rng, dims[0], dims[1])
		b := randTensor(rng, dims[1], dims[2])
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		for i := range got.Data {
			if !almostEqual(float64(got.Data[i]), float64(want.Data[i]), 1e-4) {
				t.Fatalf("dims %v: element %d = %g, want %g", dims, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

// transpose returns a new transposed 2-D tensor.
func transpose(a *Tensor) *Tensor {
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

func TestMatMulTransAEqualsExplicitTranspose(t *testing.T) {
	rng := stats.NewRNG(2)
	a := randTensor(rng, 6, 4) // (k=6, m=4)
	b := randTensor(rng, 6, 5) // (k=6, n=5)
	got := MatMulTransA(a, b)
	want := MatMul(transpose(a), b)
	for i := range got.Data {
		if !almostEqual(float64(got.Data[i]), float64(want.Data[i]), 1e-4) {
			t.Fatalf("element %d = %g, want %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulTransBEqualsExplicitTranspose(t *testing.T) {
	rng := stats.NewRNG(3)
	a := randTensor(rng, 4, 6)
	b := randTensor(rng, 5, 6) // (n=5, k=6)
	got := MatMulTransB(a, b)
	want := MatMul(a, transpose(b))
	for i := range got.Data {
		if !almostEqual(float64(got.Data[i]), float64(want.Data[i]), 1e-4) {
			t.Fatalf("element %d = %g, want %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestIm2ColKnownValues(t *testing.T) {
	// 1x1x3x3 input, 2x2 kernel, stride 1, no pad -> 4 patches of 4.
	x := FromData([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	cols, oh, ow := Im2Col(x, 2, 2, 1, 0)
	if oh != 2 || ow != 2 {
		t.Fatalf("out dims %dx%d, want 2x2", oh, ow)
	}
	want := [][]float32{
		{1, 2, 4, 5},
		{2, 3, 5, 6},
		{4, 5, 7, 8},
		{5, 6, 8, 9},
	}
	for r, row := range want {
		for c, v := range row {
			if cols.Data[r*4+c] != v {
				t.Fatalf("cols[%d][%d] = %g, want %g", r, c, cols.Data[r*4+c], v)
			}
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	x := FromData([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	cols, oh, ow := Im2Col(x, 3, 3, 1, 1)
	if oh != 2 || ow != 2 {
		t.Fatalf("out dims %dx%d, want 2x2", oh, ow)
	}
	// First patch centered at (0,0): top row and left column are padding.
	first := cols.Data[:9]
	wantFirst := []float32{0, 0, 0, 0, 1, 2, 0, 3, 4}
	for i, v := range wantFirst {
		if first[i] != v {
			t.Fatalf("padded patch[%d] = %g, want %g", i, first[i], v)
		}
	}
}

// TestIm2ColCol2ImAdjoint verifies <Im2Col(x), y> == <x, Col2Im(y)> — the
// defining property of an adjoint pair, which is exactly what conv
// backward relies on.
func TestIm2ColCol2ImAdjoint(t *testing.T) {
	rng := stats.NewRNG(4)
	for _, tc := range []struct{ n, c, h, w, k, stride, pad int }{
		{1, 1, 4, 4, 3, 1, 1},
		{2, 3, 5, 5, 3, 2, 1},
		{1, 2, 6, 4, 2, 2, 0},
	} {
		x := randTensor(rng, tc.n, tc.c, tc.h, tc.w)
		cols, _, _ := Im2Col(x, tc.k, tc.k, tc.stride, tc.pad)
		y := randTensor(rng, cols.Shape[0], cols.Shape[1])
		back := Col2Im(y, tc.n, tc.c, tc.h, tc.w, tc.k, tc.k, tc.stride, tc.pad)

		var lhs, rhs float64
		for i := range cols.Data {
			lhs += float64(cols.Data[i]) * float64(y.Data[i])
		}
		for i := range x.Data {
			rhs += float64(x.Data[i]) * float64(back.Data[i])
		}
		if !almostEqual(lhs, rhs, 1e-2*math.Max(1, math.Abs(lhs))) {
			t.Fatalf("%+v: adjoint identity violated: %g vs %g", tc, lhs, rhs)
		}
	}
}

func TestArgMaxRow(t *testing.T) {
	x := FromData([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	got := ArgMaxRow(x)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMaxRow = %v, want [1 0]", got)
	}
}

func TestKaimingInitVariance(t *testing.T) {
	rng := stats.NewRNG(5)
	x := New(200, 50)
	fanIn := 50
	x.KaimingInit(rng, fanIn)
	var sum, sq float64
	for _, v := range x.Data {
		sum += float64(v)
		sq += float64(v) * float64(v)
	}
	n := float64(x.Len())
	variance := sq/n - (sum/n)*(sum/n)
	want := 2.0 / float64(fanIn)
	if !almostEqual(variance, want, want*0.15) {
		t.Fatalf("Kaiming variance = %g, want ~%g", variance, want)
	}
}

// Property: MatMul is linear in its first argument.
func TestMatMulLinearityProperty(t *testing.T) {
	rng := stats.NewRNG(6)
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		a1 := randTensor(r, 3, 4)
		a2 := randTensor(r, 3, 4)
		b := randTensor(r, 4, 2)
		sum := a1.Clone()
		sum.Add(a2)
		lhs := MatMul(sum, b)
		r1 := MatMul(a1, b)
		r2 := MatMul(a2, b)
		for i := range lhs.Data {
			if !almostEqual(float64(lhs.Data[i]), float64(r1.Data[i]+r2.Data[i]), 1e-3) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Values: nil}
	if err := quick.Check(func(s uint64) bool { return f(s) }, cfg); err != nil {
		t.Fatal(err)
	}
	_ = rng
}
