package tensor

import (
	"fmt"

	"repro/internal/par"
)

// The GEMM kernels are cache-blocked and goroutine-parallel with a hard
// determinism guarantee: results are bit-identical to the serial kernel
// at any worker budget. Parallelism only ever partitions *output rows*
// across goroutines — each output element is computed entirely by one
// worker with a fixed accumulation order (ascending k) — and cache
// blocking visits k-panels in ascending order, which preserves that
// per-element order exactly. So neither the budget nor the block size can
// change a single bit of the result.
//
// Zero weights are NOT skipped in the inner loops (the seed kernel had an
// `if av == 0 { continue }` fast path): the skip broke NaN/Inf
// propagation (0*NaN must stay NaN) and cost a branch per element on
// dense data.

const (
	// gemmBlockK is the k-panel height: a panel of B (gemmBlockK x n
	// float32 rows) is streamed against a row block of A so B stays in
	// cache across the rows of the block.
	gemmBlockK = 240

	// gemmMinWork is the minimum number of multiply-adds a chunk must
	// amortise before For fans out another goroutine; below this the
	// spawn overhead dominates.
	gemmMinWork = 1 << 15

	// copyMinWork is the same threshold for memory-bound kernels
	// (im2col/col2im, dequantization), which move one element per unit.
	copyMinWork = 1 << 14
)

// MatMulInto computes C = A(mxk) * B(kxn) into c, which must already have
// shape (m x n). The previous contents of c are overwritten.
func MatMulInto(c, a, b *Tensor) {
	m, k, n := mmShapes("MatMul", a, b, false, false)
	checkOut("MatMul", c, m, n)
	matMulInto(c.Data, a.Data, b.Data, m, k, n)
}

func matMulInto(c, a, b []float32, m, k, n int) {
	clear(c[:m*n])
	if grain := par.Grain(k*n, gemmMinWork); parallelWorthIt(m, grain) {
		par.For(m, grain, func(lo, hi int) {
			matMulRows(c, a, b, lo, hi, k, n)
		})
		return
	}
	matMulRows(c, a, b, 0, m, k, n)
}

// parallelWorthIt reports whether a row-partitioned kernel should go
// through the worker budget at all. The serial path calls the kernel
// directly — without allocating the escaping closure par.For needs — so
// the small GEMMs that dominate a training step stay allocation-free.
func parallelWorthIt(rows, grain int) bool { return par.WorthIt(rows, grain) }

// matMulRows computes rows [i0,i1) of C with ikj order blocked over k:
// each B panel of gemmBlockK rows is reused across every row of the
// block. Per-element accumulation stays ascending in k.
func matMulRows(c, a, b []float32, i0, i1, k, n int) {
	for kb := 0; kb < k; kb += gemmBlockK {
		kEnd := kb + gemmBlockK
		if kEnd > k {
			kEnd = k
		}
		for i := i0; i < i1; i++ {
			ci := c[i*n : i*n+n]
			ai := a[i*k+kb : i*k+kEnd]
			for p, av := range ai {
				axpy(ci, b[(kb+p)*n:(kb+p)*n+n], av)
			}
		}
	}
}

// MatMulTransAInto computes C = Aᵀ·B into c: A is (k x m), B is (k x n),
// c must have shape (m x n). The previous contents of c are overwritten.
func MatMulTransAInto(c, a, b *Tensor) {
	m, k, n := mmShapes("MatMulTransA", a, b, true, false)
	checkOut("MatMulTransA", c, m, n)
	clear(c.Data[:m*n])
	matMulTransAAcc(c.Data, a.Data, b.Data, m, k, n)
}

// MatMulTransAAcc accumulates C += Aᵀ·B into c without clearing it — the
// weight-gradient kernel, writing straight into the gradient tensor with
// no intermediate allocation. When c starts at zero the result is
// bit-identical to computing Aᵀ·B separately and adding it once.
func MatMulTransAAcc(c, a, b *Tensor) {
	m, k, n := mmShapes("MatMulTransA", a, b, true, false)
	checkOut("MatMulTransA", c, m, n)
	matMulTransAAcc(c.Data, a.Data, b.Data, m, k, n)
}

func matMulTransAAcc(c, a, b []float32, m, k, n int) {
	if grain := par.Grain(k*n, gemmMinWork); parallelWorthIt(m, grain) {
		par.For(m, grain, func(lo, hi int) {
			matMulTransARows(c, a, b, lo, hi, k, m, n)
		})
		return
	}
	matMulTransARows(c, a, b, 0, m, k, m, n)
}

// matMulTransARows accumulates rows [i0,i1) of C += Aᵀ·B with the k loop
// outermost, exactly like the serial kernel: per-element accumulation is
// ascending in k, and each B row is reused across the whole row block.
func matMulTransARows(c, a, b []float32, i0, i1, k, m, n int) {
	for p := 0; p < k; p++ {
		ap := a[p*m+i0 : p*m+i1]
		bp := b[p*n : p*n+n]
		for i, av := range ap {
			axpy(c[(i0+i)*n:(i0+i)*n+n], bp, av)
		}
	}
}

// MatMulTransBInto computes C = A·Bᵀ into c: A is (m x k), B is (n x k),
// c must have shape (m x n). The previous contents of c are overwritten.
func MatMulTransBInto(c, a, b *Tensor) { MatMulTransBBiasInto(c, a, b, nil) }

// MatMulTransBBiasInto computes C = A·Bᵀ + bias into c, with bias (one
// value per output column, i.e. per row of B) fused into the GEMM
// epilogue; nil bias gives the plain product. This is the forward kernel
// of both Linear (x·Wᵀ + b) and Conv2D (cols·Wᵀ, bias per out-channel).
func MatMulTransBBiasInto(c, a, b *Tensor, bias []float32) {
	m, k, n := mmShapes("MatMulTransB", a, b, false, true)
	checkOut("MatMulTransB", c, m, n)
	if bias != nil && len(bias) != n {
		panic(fmt.Sprintf("tensor: MatMulTransB bias length %d, want %d", len(bias), n))
	}
	matMulTransBInto(c.Data, a.Data, b.Data, bias, m, k, n)
}

func matMulTransBInto(c, a, b, bias []float32, m, k, n int) {
	if grain := par.Grain(k*n, gemmMinWork); parallelWorthIt(m, grain) {
		par.For(m, grain, func(lo, hi int) {
			matMulTransBRows(c, a, b, bias, lo, hi, k, n)
		})
		return
	}
	matMulTransBRows(c, a, b, bias, 0, m, k, n)
}

// matMulTransBRows computes rows [i0,i1) of C = A·Bᵀ (+ bias) as row-row
// dot products; both operands stream contiguously.
func matMulTransBRows(c, a, b, bias []float32, i0, i1, k, n int) {
	for i := i0; i < i1; i++ {
		ai := a[i*k : i*k+k]
		ci := c[i*n : i*n+n]
		if bias != nil {
			for j := 0; j < n; j++ {
				ci[j] = dot(ai, b[j*k:j*k+k]) + bias[j]
			}
			continue
		}
		for j := 0; j < n; j++ {
			ci[j] = dot(ai, b[j*k:j*k+k])
		}
	}
}

// axpy computes ci += av * bp elementwise. The slice-length hint lets the
// compiler drop per-iteration bounds checks in the unrolled body.
func axpy(ci, bp []float32, av float32) {
	n := len(bp)
	if n == 0 {
		return
	}
	ci = ci[:n]
	j := 0
	for ; j+4 <= n; j += 4 {
		ci[j] += av * bp[j]
		ci[j+1] += av * bp[j+1]
		ci[j+2] += av * bp[j+2]
		ci[j+3] += av * bp[j+3]
	}
	for ; j < n; j++ {
		ci[j] += av * bp[j]
	}
}

// dot computes the inner product with a single accumulator in ascending
// index order — deliberately not multi-accumulator, so the result is
// bit-identical to the naive serial loop.
func dot(x, y []float32) float32 {
	y = y[:len(x)]
	var s float32
	for i, xv := range x {
		s += xv * y[i]
	}
	return s
}

// mmShapes validates a 2-D matmul pair and returns (m, k, n). ta/tb mark
// which operand is transposed.
func mmShapes(op string, a, b *Tensor, ta, tb bool) (m, k, n int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: %s needs 2-D operands, got %v x %v", op, a.Shape, b.Shape))
	}
	m, k = a.Shape[0], a.Shape[1]
	if ta {
		m, k = k, m
	}
	bk, bn := b.Shape[0], b.Shape[1]
	if tb {
		bk, bn = bn, bk
	}
	if k != bk {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v x %v", op, a.Shape, b.Shape))
	}
	return m, k, bn
}

// checkOut validates a destination shape.
func checkOut(op string, c *Tensor, m, n int) {
	if len(c.Shape) != 2 || c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: %s destination %v, want (%d, %d)", op, c.Shape, m, n))
	}
}
