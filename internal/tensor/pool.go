package tensor

import "sync"

// scratchPool recycles the transient tensors of the forward/backward hot
// path (GEMM outputs before rearrangement, gradient column matrices).
// Unlike the layer-held buffers — which persist across training steps —
// scratch lives only within one call, so a single pool bounds the
// footprint by the number of concurrently computing layers instead of the
// number of layers.
var scratchPool = sync.Pool{New: func() any { return new(Tensor) }}

// GetScratch returns a pooled tensor resized to shape. Contents are
// unspecified; every consumer either overwrites or clears it. Return it
// with PutScratch when done.
func GetScratch(shape ...int) *Tensor {
	t := scratchPool.Get().(*Tensor)
	return ensureInto(t, shape)
}

// PutScratch recycles a tensor obtained from GetScratch. The caller must
// not use t afterwards.
func PutScratch(t *Tensor) {
	if t != nil {
		scratchPool.Put(t)
	}
}

// Ensure returns a tensor of the given shape, reusing t's storage when
// its capacity suffices (t may be nil). Contents are unspecified. Layers
// use it for buffers held across steps:
//
//	l.out = tensor.Ensure(l.out, n, c, h, w)
func Ensure(t *Tensor, shape ...int) *Tensor {
	if t == nil {
		t = new(Tensor)
	}
	return ensureInto(t, shape)
}

func ensureInto(t *Tensor, shape []int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if cap(t.Data) < n {
		t.Data = make([]float32, n)
	}
	t.Data = t.Data[:n]
	t.Shape = append(t.Shape[:0], shape...)
	return t
}
