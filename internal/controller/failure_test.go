package controller

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/rowclone"
	"repro/internal/stats"
)

// Failure-injection tests: the controller under a degraded process corner
// (erroneous SWAP copies), lock-table pressure and long mixed request
// streams.

func TestSwapErrorsCorruptDataButKeepProtection(t *testing.T) {
	dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.RelockInterval = 5
	cfg.Clone = rowclone.Config{CopyErrorProb: 1.0, ErrorBits: 1, Seed: 3}
	c, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	row := dram.RowAddr{Bank: 0, Row: 5}
	phys, err := c.Mapper().Untranslate(row, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Write(phys, []byte{0xAA, 0xBB})
	c.LockRow(row)

	// Every copy errs: the swap succeeds mechanically but flags errors.
	_, resp, err := c.Read(phys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Swapped || !resp.SwapErred {
		t.Fatalf("expected erroneous swap, got %+v", resp)
	}
	if c.Stats().SwapErrors == 0 {
		t.Fatal("swap errors not recorded")
	}
	// Protection still holds: attacker is denied regardless of the
	// degraded corner.
	aresp, _ := c.Submit(Request{Kind: ReqRead, Phys: phys, Len: 1})
	if !aresp.Denied {
		t.Fatal("lock must hold under a degraded process corner")
	}
}

func TestRelockSurvivesManyCycles(t *testing.T) {
	dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.RelockInterval = 3
	c, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	row := dram.RowAddr{Bank: 0, Row: 5}
	phys, _ := c.Mapper().Untranslate(row, 0)
	c.Write(phys, []byte{0x5A})
	c.LockRow(row)
	other, _ := c.Mapper().Untranslate(dram.RowAddr{Bank: 1, Row: 40}, 0)

	// 30 unlock/re-lock cycles: data must survive every round trip.
	for cycle := 0; cycle < 30; cycle++ {
		got, resp, err := c.Read(phys, 1)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if got[0] != 0x5A {
			t.Fatalf("cycle %d: data corrupted to %#x", cycle, got[0])
		}
		if cycle > 0 && !resp.Swapped && c.ActiveRedirects() == 0 {
			t.Fatalf("cycle %d: no swap and no redirect", cycle)
		}
		// Let the redirect expire.
		for i := 0; i < cfg.RelockInterval+1; i++ {
			if _, _, err := c.Read(other, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if c.Stats().SwapsBack < 25 {
		t.Fatalf("swaps back = %d, want ~30", c.Stats().SwapsBack)
	}
}

func TestConcurrentRedirectsAcrossSubarrays(t *testing.T) {
	dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.RelockInterval = 1000
	c, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One locked row per subarray of bank 0, all swapped out at once.
	geom := dev.Geometry()
	var physAddrs []int64
	for sub := 0; sub < geom.SubarraysPerBank; sub++ {
		row := dram.RowAddr{Bank: 0, Row: sub*geom.RowsPerSubarray + 5}
		phys, _ := c.Mapper().Untranslate(row, 0)
		c.Write(phys, []byte{byte(sub + 1)})
		if err := c.LockRow(row); err != nil {
			t.Fatal(err)
		}
		physAddrs = append(physAddrs, phys)
	}
	for i, phys := range physAddrs {
		got, resp, err := c.Read(phys, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Swapped || got[0] != byte(i+1) {
			t.Fatalf("subarray %d: swapped=%v data=%#x", i, resp.Swapped, got[0])
		}
	}
	if c.ActiveRedirects() != geom.SubarraysPerBank {
		t.Fatalf("redirects = %d, want %d", c.ActiveRedirects(), geom.SubarraysPerBank)
	}
	// All still readable through their redirects.
	for i, phys := range physAddrs {
		got, _, err := c.Read(phys, 1)
		if err != nil || got[0] != byte(i+1) {
			t.Fatalf("redirected read %d failed: %v %v", i, got, err)
		}
	}
}

// TestRandomizedMixedStreamInvariants drives a long random mix of
// privileged reads/writes, attacker probes and hammer attempts, checking
// global invariants after every step.
func TestRandomizedMixedStreamInvariants(t *testing.T) {
	dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.RelockInterval = 7
	c, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(99)
	geom := dev.Geometry()

	// Shadow model of written data: phys -> byte.
	written := make(map[int64]byte)
	lockedRows := map[int]bool{}
	for r := 5; r < 20; r += 3 {
		row := dram.RowAddr{Bank: 0, Row: r}
		if err := c.LockRow(row); err != nil {
			t.Fatal(err)
		}
		lockedRows[geom.LinearIndex(row)] = true
	}

	for step := 0; step < 3000; step++ {
		row := dram.RowAddr{Bank: rng.Intn(geom.Banks()), Row: rng.Intn(40)}
		if c.IsReserved(row) {
			continue
		}
		phys, err := c.Mapper().Untranslate(row, rng.Intn(geom.RowBytes-1))
		if err != nil {
			t.Fatal(err)
		}
		switch rng.Intn(4) {
		case 0: // privileged write
			v := byte(rng.Intn(256))
			if _, err := c.Write(phys, []byte{v}); err != nil {
				t.Fatalf("step %d: write: %v", step, err)
			}
			written[phys] = v
		case 1: // privileged read must observe last write
			got, _, err := c.Read(phys, 1)
			if err != nil {
				t.Fatalf("step %d: read: %v", step, err)
			}
			if want, ok := written[phys]; ok && got[0] != want {
				t.Fatalf("step %d: phys 0x%x = %#x, want %#x", step, phys, got[0], want)
			}
		case 2: // attacker probe
			resp, err := c.Submit(Request{Kind: ReqRead, Phys: phys, Len: 1})
			if err != nil {
				t.Fatalf("step %d: probe: %v", step, err)
			}
			if lockedRows[geom.LinearIndex(row)] && c.ActiveRedirects() == 0 && !resp.Denied {
				// With no live redirect the locked row must deny.
				if c.Table().IsLocked(row) {
					t.Fatalf("step %d: locked row %v not denied", step, row)
				}
			}
		case 3: // hammer attempt
			activated, _, err := c.HammerAttempt(row)
			if err != nil {
				t.Fatalf("step %d: hammer: %v", step, err)
			}
			if activated && c.Table().IsLocked(row) {
				t.Fatalf("step %d: hammer activated locked row %v", step, row)
			}
		}
	}
}
