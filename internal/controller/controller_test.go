package controller

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/dram"
)

func newCtl(t *testing.T, mut func(*Config)) *Controller {
	t.Helper()
	dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.RelockInterval = 10
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// physOf returns a physical address inside the given row.
func physOf(t *testing.T, c *Controller, row dram.RowAddr, col int) int64 {
	t.Helper()
	p, err := c.Mapper().Untranslate(row, col)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReadWriteRoundTrip(t *testing.T) {
	c := newCtl(t, nil)
	phys := physOf(t, c, dram.RowAddr{Bank: 0, Row: 5}, 16)
	if _, err := c.Write(phys, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, resp, err := c.Read(phys, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("read %q", got)
	}
	if resp.Denied || resp.Swapped {
		t.Fatalf("unexpected flags: %+v", resp)
	}
}

func TestRowHitVsMissLatency(t *testing.T) {
	c := newCtl(t, nil)
	phys := physOf(t, c, dram.RowAddr{Bank: 0, Row: 5}, 0)
	_, first, err := c.Read(phys, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, second, err := c.Read(phys+1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !second.RowHit || first.RowHit {
		t.Fatalf("rowhit flags: first=%v second=%v", first.RowHit, second.RowHit)
	}
	if second.Latency >= first.Latency {
		t.Fatalf("row hit (%v) must be faster than miss (%v)", second.Latency, first.Latency)
	}
}

func TestUnprivilegedDeniedOnLockedRow(t *testing.T) {
	c := newCtl(t, nil)
	row := dram.RowAddr{Bank: 0, Row: 5}
	if err := c.LockRow(row); err != nil {
		t.Fatal(err)
	}
	phys := physOf(t, c, row, 0)
	resp, err := c.Submit(Request{Kind: ReqRead, Phys: phys, Len: 4, Privileged: false})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Denied {
		t.Fatal("unprivileged access to locked row must be denied")
	}
	// Denied instructions cost only the lock-table lookup.
	if resp.Latency != c.Device().Timing().LockLookup {
		t.Fatalf("denied latency = %v, want lookup only", resp.Latency)
	}
	if c.Stats().Denied != 1 {
		t.Fatalf("denied stat = %d", c.Stats().Denied)
	}
}

func TestPrivilegedAccessSwapsOut(t *testing.T) {
	c := newCtl(t, nil)
	row := dram.RowAddr{Bank: 0, Row: 5}
	phys := physOf(t, c, row, 0)
	if _, err := c.Write(phys, []byte("secret!")); err != nil {
		t.Fatal(err)
	}
	if err := c.LockRow(row); err != nil {
		t.Fatal(err)
	}
	got, resp, err := c.Read(phys, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Swapped {
		t.Fatal("first privileged access to a locked row must SWAP")
	}
	if string(got) != "secret!" {
		t.Fatalf("data after swap = %q", got)
	}
	if c.ActiveRedirects() != 1 {
		t.Fatalf("redirects = %d", c.ActiveRedirects())
	}
	// Subsequent access uses the redirect without another swap.
	got2, resp2, err := c.Read(phys, 7)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Swapped {
		t.Fatal("second access must reuse the redirect")
	}
	if string(got2) != "secret!" {
		t.Fatalf("redirected read = %q", got2)
	}
}

func TestRelockSwapsBackAndRestoresData(t *testing.T) {
	c := newCtl(t, func(cfg *Config) { cfg.RelockInterval = 3 })
	row := dram.RowAddr{Bank: 0, Row: 5}
	phys := physOf(t, c, row, 0)
	c.Write(phys, []byte("data"))
	c.LockRow(row)
	if _, _, err := c.Read(phys, 4); err != nil { // triggers swap
		t.Fatal(err)
	}
	// Drive the countdown with unrelated traffic.
	other := physOf(t, c, dram.RowAddr{Bank: 1, Row: 40}, 0)
	for i := 0; i < 4; i++ {
		if _, _, err := c.Read(other, 1); err != nil {
			t.Fatal(err)
		}
	}
	if c.ActiveRedirects() != 0 {
		t.Fatalf("redirect must expire, have %d", c.ActiveRedirects())
	}
	if c.Stats().SwapsBack != 1 {
		t.Fatalf("swaps back = %d", c.Stats().SwapsBack)
	}
	// Data is back in the original (still locked) row.
	raw, err := c.Device().PeekRow(row)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw[:4], []byte("data")) {
		t.Fatalf("original row holds %q after re-lock", raw[:4])
	}
	// And the lock still holds for attackers.
	resp, _ := c.Submit(Request{Kind: ReqRead, Phys: phys, Len: 1})
	if !resp.Denied {
		t.Fatal("lock must persist after re-lock")
	}
}

func TestHammerAttemptDeniedOnLockedRow(t *testing.T) {
	c := newCtl(t, nil)
	row := dram.RowAddr{Bank: 0, Row: 5}
	c.LockRow(row)
	activated, lat, err := c.HammerAttempt(row)
	if err != nil {
		t.Fatal(err)
	}
	if activated {
		t.Fatal("hammer on locked row must be denied")
	}
	if lat != c.Device().Timing().LockLookup {
		t.Fatalf("denied hammer latency = %v", lat)
	}
	// Unlocked rows activate normally.
	activated, _, err = c.HammerAttempt(dram.RowAddr{Bank: 0, Row: 7})
	if err != nil || !activated {
		t.Fatalf("hammer on free row: activated=%v err=%v", activated, err)
	}
	if c.Device().Stats().Activates != 1 {
		t.Fatalf("activations = %d", c.Device().Stats().Activates)
	}
}

func TestReservedRowsRejectLocks(t *testing.T) {
	c := newCtl(t, nil)
	geom := c.Device().Geometry()
	buffer := dram.RowAddr{Bank: 0, Row: geom.RowsPerSubarray - 1}
	if !c.IsReserved(buffer) {
		t.Fatal("last subarray row must be reserved")
	}
	if err := c.LockRow(buffer); !errors.Is(err, ErrReservedRow) {
		t.Fatalf("err = %v, want ErrReservedRow", err)
	}
}

func TestLockNeighborsOf(t *testing.T) {
	c := newCtl(t, nil)
	row := dram.RowAddr{Bank: 0, Row: 10}
	phys := physOf(t, c, row, 0)
	locked, err := c.LockNeighborsOf(phys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(locked) != 2 {
		t.Fatalf("locked %v, want 2 neighbors", locked)
	}
	for _, n := range locked {
		if !c.Table().IsLocked(n) {
			t.Fatalf("%v not locked", n)
		}
	}
	// The data row itself stays unlocked.
	if c.Table().IsLocked(row) {
		t.Fatal("data row must not be locked")
	}
}

func TestFreePoolExhaustion(t *testing.T) {
	c := newCtl(t, func(cfg *Config) {
		cfg.FreeRowsPerSubarray = 2
		cfg.RelockInterval = 1000
	})
	// Lock three rows in the same subarray and touch each: the third
	// swap has no free destination.
	var errSeen error
	for i, r := range []int{5, 7, 9} {
		row := dram.RowAddr{Bank: 0, Row: r}
		if err := c.LockRow(row); err != nil {
			t.Fatal(err)
		}
		phys := physOf(t, c, row, 0)
		_, _, err := c.Read(phys, 1)
		if i < 2 && err != nil {
			t.Fatalf("swap %d failed early: %v", i, err)
		}
		if i == 2 {
			errSeen = err
		}
	}
	if !errors.Is(errSeen, ErrNoFreeRow) {
		t.Fatalf("err = %v, want ErrNoFreeRow", errSeen)
	}
}

func TestDestPolicies(t *testing.T) {
	for _, policy := range []SwapDestPolicy{DestRoundRobin, DestRandom} {
		c := newCtl(t, func(cfg *Config) { cfg.DestPolicy = policy })
		row := dram.RowAddr{Bank: 0, Row: 5}
		phys := physOf(t, c, row, 0)
		c.Write(phys, []byte("z"))
		c.LockRow(row)
		got, resp, err := c.Read(phys, 1)
		if err != nil || !resp.Swapped || got[0] != 'z' {
			t.Fatalf("policy %d: got=%q swapped=%v err=%v", policy, got, resp.Swapped, err)
		}
	}
}

func TestRequestValidation(t *testing.T) {
	c := newCtl(t, nil)
	// Zero-length read.
	if _, err := c.Submit(Request{Kind: ReqRead, Phys: 0, Len: 0, Privileged: true}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	// Crossing a row boundary.
	rb := c.Device().Geometry().RowBytes
	if _, err := c.Submit(Request{Kind: ReqRead, Phys: int64(rb - 2), Len: 4, Privileged: true}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	// Bad physical address.
	if _, err := c.Submit(Request{Kind: ReqRead, Phys: -5, Len: 1, Privileged: true}); err == nil {
		t.Fatal("negative address must fail")
	}
}

func TestConfigValidation(t *testing.T) {
	dev, _ := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	bad := DefaultConfig()
	bad.RelockInterval = 0
	if _, err := New(dev, bad); err == nil {
		t.Fatal("zero relock interval must fail")
	}
	bad = DefaultConfig()
	bad.FreeRowsPerSubarray = 1000 // exceeds subarray
	if _, err := New(dev, bad); err == nil {
		t.Fatal("oversized free pool must fail")
	}
}

func TestStatsAccumulate(t *testing.T) {
	c := newCtl(t, nil)
	row := dram.RowAddr{Bank: 0, Row: 5}
	phys := physOf(t, c, row, 0)
	c.Write(phys, []byte("x"))
	c.LockRow(row)
	c.Read(phys, 1)                                      // swap + read
	c.Submit(Request{Kind: ReqRead, Phys: phys, Len: 1}) // denied
	st := c.Stats()
	// The denied request never completes, so it is not counted as a read.
	if st.Swaps != 1 || st.Denied != 1 || st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TotalLatency <= 0 || st.SwapLatency <= 0 {
		t.Fatal("latency accounting missing")
	}
}
