// Package controller implements the DRAM-Locker memory controller: the
// instruction Sequence, lock-table interception, SWAP orchestration through
// the ISA sequencer, and open-page DDR4 command generation with cycle
// accounting.
//
// Request flow (paper §IV-A/B):
//
//  1. Every R/W instruction entering the Sequence performs a lock-table
//     lookup (SRAM latency).
//  2. If the target row is locked and the request is unprivileged (the
//     attacker), the instruction is *skipped*: no activation reaches the
//     array, so the row can never be hammered, and the request costs only
//     the lookup.
//  3. If the target row is locked and the request is privileged (the
//     victim program), the controller runs the three-copy SWAP program on
//     the ISA sequencer, pulling the data into a free row of the same
//     subarray; the access then proceeds at the new location. The lock
//     entry itself is not changed by the SWAP (Fig. 4(b)).
//  4. A redirect created by a SWAP lives for RelockInterval R/W
//     instructions (1k in the paper); on expiry the controller swaps the
//     data back and re-secures the row (Fig. 4(d)).
package controller

import (
	"errors"
	"fmt"

	"repro/internal/dram"
	"repro/internal/isa"
	"repro/internal/locktable"
	"repro/internal/rowclone"
	"repro/internal/stats"
)

// RequestKind distinguishes reads from writes.
type RequestKind uint8

// Request kinds.
const (
	ReqRead RequestKind = iota
	ReqWrite
)

// String names the request kind.
func (k RequestKind) String() string {
	if k == ReqRead {
		return "RD"
	}
	return "WR"
}

// Request is one R/W instruction entering the controller's Sequence.
type Request struct {
	Kind RequestKind
	// Phys is the physical byte address.
	Phys int64
	// Data is the payload for writes.
	Data []byte
	// Len is the number of bytes to read.
	Len int
	// Privileged marks requests from the victim program, which may unlock
	// rows via SWAP. Attacker requests are unprivileged.
	Privileged bool
	// Buf, when non-nil and at least Len bytes for a read, receives the
	// data and Response.Data aliases it — the trace replayer's fast path,
	// which would otherwise allocate a fresh buffer per request. Callers
	// reusing Buf must consume Response.Data before the next submit.
	Buf []byte
}

// Response reports the outcome of a request.
type Response struct {
	// Denied is true when the lock-table blocked the request.
	Denied bool
	// Data holds read results.
	Data []byte
	// Latency is the total time charged to this request.
	Latency dram.Picoseconds
	// Swapped is true when serving the request required a SWAP.
	Swapped bool
	// SwapErred is true when the SWAP had at least one erroneous copy.
	SwapErred bool
	// RowHit is true when the access hit the open row buffer.
	RowHit bool
}

// Stats aggregates controller activity.
type Stats struct {
	Instructions  int64
	Reads         int64
	Writes        int64
	Denied        int64
	Swaps         int64
	SwapErrors    int64
	SwapsBack     int64
	RowHits       int64
	RowMisses     int64
	Redirected    int64
	TotalLatency  dram.Picoseconds
	LookupLatency dram.Picoseconds
	SwapLatency   dram.Picoseconds
	AccessLatency dram.Picoseconds
}

// SwapDestPolicy selects the destination row for SWAPs.
type SwapDestPolicy uint8

// Swap destination policies (ablation: DESIGN.md §5.3).
const (
	// DestRoundRobin cycles deterministically through the free pool.
	DestRoundRobin SwapDestPolicy = iota
	// DestRandom picks a seeded-random free row.
	DestRandom
)

// Config parameterises the controller.
type Config struct {
	// RelockInterval is the number of R/W instructions after a SWAP until
	// the controller swaps back and re-secures the row (paper: 1k).
	RelockInterval int
	// FreeRowsPerSubarray is the size of the reserved swap-destination
	// pool in each subarray (the buffer row is reserved separately).
	FreeRowsPerSubarray int
	// DestPolicy selects how swap destinations are chosen.
	DestPolicy SwapDestPolicy
	// Seed drives DestRandom.
	Seed uint64
	// Table sizes the lock-table.
	Table locktable.Config
	// Clone configures RowClone error injection.
	Clone rowclone.Config
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		RelockInterval:      1000,
		FreeRowsPerSubarray: 4,
		DestPolicy:          DestRoundRobin,
		Seed:                0x10c4,
		Table:               locktable.DefaultConfig(),
		Clone:               rowclone.DefaultConfig(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.RelockInterval <= 0 {
		return fmt.Errorf("controller: RelockInterval must be positive, got %d", c.RelockInterval)
	}
	if c.FreeRowsPerSubarray <= 0 {
		return fmt.Errorf("controller: FreeRowsPerSubarray must be positive, got %d", c.FreeRowsPerSubarray)
	}
	if c.DestPolicy != DestRoundRobin && c.DestPolicy != DestRandom {
		return fmt.Errorf("controller: unknown DestPolicy %d", c.DestPolicy)
	}
	if err := c.Table.Validate(); err != nil {
		return err
	}
	return c.Clone.Validate()
}

// Errors returned by the controller.
var (
	ErrDenied      = errors.New("controller: access to locked row denied")
	ErrNoFreeRow   = errors.New("controller: no free swap destination in subarray")
	ErrReservedRow = errors.New("controller: address falls in a reserved row")
	ErrOutOfRange  = errors.New("controller: request outside a single row")
)

// redirect records an active SWAP: data of row Orig currently lives in Dest.
type redirect struct {
	Orig      dram.RowAddr
	Dest      dram.RowAddr
	Countdown int
}

// Controller is the DRAM-Locker memory controller.
type Controller struct {
	dev    *dram.Device
	mapper dram.AddrMapper
	table  *locktable.Table
	clone  *rowclone.Engine
	seq    *isa.Sequencer
	cfg    Config
	rng    *stats.RNG

	// redirects maps the linear index of an original row to its redirect.
	redirects map[int]*redirect
	// reverse maps destination rows back to their redirect.
	reverse map[int]*redirect
	// destInUse marks free-pool rows currently holding swapped data.
	destInUse map[int]bool
	// rrCursor implements DestRoundRobin per subarray.
	rrCursor map[int]int

	stats Stats
}

// New builds a controller over the device.
func New(dev *dram.Device, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geom := dev.Geometry()
	if cfg.FreeRowsPerSubarray+1 >= geom.RowsPerSubarray {
		return nil, fmt.Errorf("controller: reserved rows (%d) exceed subarray size (%d)",
			cfg.FreeRowsPerSubarray+1, geom.RowsPerSubarray)
	}
	table, err := locktable.New(geom, cfg.Table)
	if err != nil {
		return nil, err
	}
	clone, err := rowclone.New(dev, cfg.Clone)
	if err != nil {
		return nil, err
	}
	return &Controller{
		dev:       dev,
		mapper:    dram.NewAddrMapper(geom),
		table:     table,
		clone:     clone,
		seq:       isa.NewSequencer(clone),
		cfg:       cfg,
		rng:       stats.NewRNG(cfg.Seed),
		redirects: make(map[int]*redirect),
		reverse:   make(map[int]*redirect),
		destInUse: make(map[int]bool),
		rrCursor:  make(map[int]int),
	}, nil
}

// Device returns the underlying DRAM device.
func (c *Controller) Device() *dram.Device { return c.dev }

// Table returns the lock-table (for inspection and direct policy control).
func (c *Controller) Table() *locktable.Table { return c.table }

// CloneEngine returns the RowClone engine (to adjust the process corner).
func (c *Controller) CloneEngine() *rowclone.Engine { return c.clone }

// Mapper returns the address mapper.
func (c *Controller) Mapper() dram.AddrMapper { return c.mapper }

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns a copy of the activity counters.
func (c *Controller) Stats() Stats { return c.stats }

// --- Reserved row layout ---------------------------------------------------

// bufferRow returns the reserved buffer row of a subarray (its last row).
func (c *Controller) bufferRow(bank, subarray int) dram.RowAddr {
	geom := c.dev.Geometry()
	return dram.RowAddr{Bank: bank, Row: subarray*geom.RowsPerSubarray + geom.RowsPerSubarray - 1}
}

// freePoolRow returns the i-th reserved free row of a subarray.
func (c *Controller) freePoolRow(bank, subarray, i int) dram.RowAddr {
	geom := c.dev.Geometry()
	return dram.RowAddr{Bank: bank, Row: subarray*geom.RowsPerSubarray + geom.RowsPerSubarray - 2 - i}
}

// IsReserved reports whether a row is a buffer or free-pool row.
func (c *Controller) IsReserved(a dram.RowAddr) bool {
	geom := c.dev.Geometry()
	in := geom.RowInSubarray(a)
	return in >= geom.RowsPerSubarray-1-c.cfg.FreeRowsPerSubarray
}

// --- Locking policy entry points -------------------------------------------

// LockRow adds a physical row to the lock-table.
func (c *Controller) LockRow(a dram.RowAddr) error {
	if c.IsReserved(a) {
		return fmt.Errorf("%w: %v", ErrReservedRow, a)
	}
	return c.table.Lock(a)
}

// LockNeighborsOf locks the rows physically adjacent to the row holding the
// given physical address — the paper's recommended policy (lock aggressor
// candidates, not the hot data itself). It returns the rows locked.
func (c *Controller) LockNeighborsOf(phys int64, distance int) ([]dram.RowAddr, error) {
	row, err := c.mapper.RowOfPhys(phys)
	if err != nil {
		return nil, err
	}
	geom := c.dev.Geometry()
	var locked []dram.RowAddr
	for d := 1; d <= distance; d++ {
		for _, n := range geom.Neighbors(row, d) {
			if c.IsReserved(n) || c.table.Contains(n) {
				continue
			}
			if err := c.table.Lock(n); err != nil {
				return locked, err
			}
			locked = append(locked, n)
		}
	}
	return locked, nil
}

// UnlockRow removes a row from the lock-table entirely.
func (c *Controller) UnlockRow(a dram.RowAddr) error { return c.table.Remove(a) }

// --- Request path -----------------------------------------------------------

// Submit processes one R/W instruction through the Sequence.
func (c *Controller) Submit(req Request) (Response, error) {
	var resp Response
	c.stats.Instructions++
	c.tickRedirects()

	row, col, err := c.mapper.Translate(req.Phys)
	if err != nil {
		return resp, err
	}
	n := req.Len
	if req.Kind == ReqWrite {
		n = len(req.Data)
	}
	if n <= 0 || col+n > c.dev.Geometry().RowBytes {
		return resp, fmt.Errorf("%w: phys 0x%x len %d", ErrOutOfRange, req.Phys, n)
	}

	// 1. Lock-table lookup.
	t := c.dev.Timing()
	resp.Latency += t.LockLookup
	c.stats.LookupLatency += t.LockLookup

	target := row
	if c.table.IsLocked(row) {
		if !req.Privileged {
			// 2. Attacker request on a locked row: skipped. The redirect
			// map is controller-internal and never consulted for
			// unprivileged requests.
			resp.Denied = true
			c.stats.Denied++
			c.stats.TotalLatency += resp.Latency
			return resp, nil
		}
		if r, ok := c.redirects[c.dev.Geometry().LinearIndex(row)]; ok {
			// 3a. Already swapped out: serve at the redirect destination.
			target = r.Dest
			c.stats.Redirected++
		} else {
			// 3b. First victim access: SWAP the locked row's data out.
			swapped, erred, lat, dest, err := c.swapOut(row)
			if err != nil {
				return resp, err
			}
			resp.Swapped = swapped
			resp.SwapErred = erred
			resp.Latency += lat
			target = dest
		}
	}

	// 4. Issue the DRAM commands at the (possibly redirected) location.
	accessLat, rowHit, err := c.access(req.Kind, target, col, req.Data, req.Buf, n, &resp)
	if err != nil {
		return resp, err
	}
	resp.Latency += accessLat
	resp.RowHit = rowHit
	c.stats.TotalLatency += resp.Latency
	if req.Kind == ReqRead {
		c.stats.Reads++
	} else {
		c.stats.Writes++
	}
	return resp, nil
}

// Read is a convenience wrapper for privileged reads.
func (c *Controller) Read(phys int64, n int) ([]byte, Response, error) {
	resp, err := c.Submit(Request{Kind: ReqRead, Phys: phys, Len: n, Privileged: true})
	return resp.Data, resp, err
}

// Write is a convenience wrapper for privileged writes.
func (c *Controller) Write(phys int64, data []byte) (Response, error) {
	return c.Submit(Request{Kind: ReqWrite, Phys: phys, Data: data, Privileged: true})
}

// access performs the open-page command sequence for one burst. For reads
// the result lands in buf when it is large enough, else a fresh buffer.
func (c *Controller) access(kind RequestKind, row dram.RowAddr, col int, data, buf []byte, n int, resp *Response) (dram.Picoseconds, bool, error) {
	var lat dram.Picoseconds
	open, isOpen := c.dev.OpenRow(row.Bank)
	rowHit := isOpen && open == row.Row
	if !rowHit {
		if isOpen {
			l, err := c.dev.Precharge(row.Bank)
			if err != nil {
				return lat, false, err
			}
			lat += l
		}
		l, err := c.dev.Activate(row)
		if err != nil {
			return lat, false, err
		}
		lat += l
		c.stats.RowMisses++
	} else {
		c.stats.RowHits++
	}
	switch kind {
	case ReqRead:
		if len(buf) >= n {
			buf = buf[:n]
		} else {
			buf = make([]byte, n)
		}
		l, err := c.dev.Read(row, col, buf)
		if err != nil {
			return lat, rowHit, err
		}
		lat += l
		resp.Data = buf
	case ReqWrite:
		l, err := c.dev.Write(row, col, data)
		if err != nil {
			return lat, rowHit, err
		}
		lat += l
	}
	c.stats.AccessLatency += lat
	return lat, rowHit, nil
}

// swapOut runs the ISA SWAP program to move a locked row's data into a free
// row of the same subarray and records the redirect.
func (c *Controller) swapOut(locked dram.RowAddr) (swapped, erred bool, lat dram.Picoseconds, dest dram.RowAddr, err error) {
	geom := c.dev.Geometry()
	sub := geom.Subarray(locked)
	dest, err = c.pickDest(locked.Bank, sub)
	if err != nil {
		return false, false, 0, dest, err
	}

	// Bind the canonical registers and run the SWAP program, exactly as
	// the hardware sequencer would (paper Fig. 4(b) + Fig. 5).
	buffer := c.bufferRow(locked.Bank, sub)
	if err := c.seq.BindRow(isa.RegLocked, locked); err != nil {
		return false, false, 0, dest, err
	}
	if err := c.seq.BindRow(isa.RegUnlocked, dest); err != nil {
		return false, false, 0, dest, err
	}
	if err := c.seq.BindRow(isa.RegBuffer, buffer); err != nil {
		return false, false, 0, dest, err
	}
	res, err := c.seq.Run(isa.SwapProgram())
	if err != nil {
		return false, false, 0, dest, err
	}

	linOrig := geom.LinearIndex(locked)
	linDest := geom.LinearIndex(dest)
	r := &redirect{Orig: locked, Dest: dest, Countdown: c.cfg.RelockInterval}
	c.redirects[linOrig] = r
	c.reverse[linDest] = r
	c.destInUse[linDest] = true

	c.stats.Swaps++
	c.stats.SwapLatency += res.Latency
	if res.CopyErrors > 0 {
		c.stats.SwapErrors++
	}
	return true, res.CopyErrors > 0, res.Latency, dest, nil
}

// pickDest selects an unused free-pool row in the subarray.
func (c *Controller) pickDest(bank, sub int) (dram.RowAddr, error) {
	geom := c.dev.Geometry()
	pool := c.cfg.FreeRowsPerSubarray
	key := bank*geom.SubarraysPerBank + sub
	switch c.cfg.DestPolicy {
	case DestRandom:
		// Try random probes, then fall back to a scan.
		for i := 0; i < pool; i++ {
			cand := c.freePoolRow(bank, sub, c.rng.Intn(pool))
			if !c.destInUse[geom.LinearIndex(cand)] {
				return cand, nil
			}
		}
		fallthrough
	default:
		start := c.rrCursor[key]
		for i := 0; i < pool; i++ {
			cand := c.freePoolRow(bank, sub, (start+i)%pool)
			if !c.destInUse[geom.LinearIndex(cand)] {
				c.rrCursor[key] = (start + i + 1) % pool
				return cand, nil
			}
		}
	}
	return dram.RowAddr{}, fmt.Errorf("%w: bank %d subarray %d", ErrNoFreeRow, bank, sub)
}

// tickRedirects advances re-lock countdowns by one R/W instruction and
// swaps expired redirects back (Fig. 4(d): re-securing the data row).
func (c *Controller) tickRedirects() {
	if len(c.redirects) == 0 {
		return
	}
	geom := c.dev.Geometry()
	var expired []*redirect
	for _, r := range c.redirects {
		r.Countdown--
		if r.Countdown <= 0 {
			expired = append(expired, r)
		}
	}
	for _, r := range expired {
		// Swap the data back into its original (still locked) position.
		sub := geom.Subarray(r.Orig)
		buffer := c.bufferRow(r.Orig.Bank, sub)
		_ = c.seq.BindRow(isa.RegLocked, r.Dest)
		_ = c.seq.BindRow(isa.RegUnlocked, r.Orig)
		_ = c.seq.BindRow(isa.RegBuffer, buffer)
		res, err := c.seq.Run(isa.SwapProgram())
		if err == nil {
			c.stats.SwapsBack++
			c.stats.SwapLatency += res.Latency
			if res.CopyErrors > 0 {
				c.stats.SwapErrors++
			}
		}
		delete(c.redirects, geom.LinearIndex(r.Orig))
		delete(c.reverse, geom.LinearIndex(r.Dest))
		delete(c.destInUse, geom.LinearIndex(r.Dest))
	}
}

// ActiveRedirects returns the number of live redirects.
func (c *Controller) ActiveRedirects() int { return len(c.redirects) }

// HammerAttempt models one attacker hammering access to a row: a PRE-ACT
// pair that re-opens the row. If the row is locked the attempt is denied
// before any command reaches the array. It returns whether the activation
// happened and the latency charged to the attacker's instruction stream.
func (c *Controller) HammerAttempt(row dram.RowAddr) (activated bool, lat dram.Picoseconds, err error) {
	c.stats.Instructions++
	c.tickRedirects()
	t := c.dev.Timing()
	lat = t.LockLookup
	c.stats.LookupLatency += t.LockLookup
	if c.table.IsLocked(row) {
		c.stats.Denied++
		c.stats.TotalLatency += lat
		return false, lat, nil
	}
	l, err := c.dev.Precharge(row.Bank)
	if err != nil {
		return false, lat, err
	}
	lat += l
	l, err = c.dev.Activate(row)
	if err != nil {
		return false, lat, err
	}
	lat += l
	c.stats.TotalLatency += lat
	return true, lat, nil
}
