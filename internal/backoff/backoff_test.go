package backoff

import (
	"context"
	"testing"
	"time"
)

// TestExponentialGrowthAndCap: with jitter off, the sequence is exactly
// Base·Factor^n capped at Max.
func TestExponentialGrowthAndCap(t *testing.T) {
	b := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}.New(1)
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("attempt %d: %v, want %v", i, got, w)
		}
	}
	if b.Attempt() != len(want) {
		t.Fatalf("attempt counter %d, want %d", b.Attempt(), len(want))
	}
}

// TestReset restarts the amplitude ramp from Base.
func TestReset(t *testing.T) {
	b := Policy{Base: time.Millisecond}.New(1)
	b.Next()
	b.Next()
	b.Reset()
	if got := b.Next(); got != time.Millisecond {
		t.Fatalf("after reset: %v, want %v", got, time.Millisecond)
	}
}

// TestConstantFactor: Factor 1 yields a constant interval (the
// heartbeat shape), still jitterable.
func TestConstantFactor(t *testing.T) {
	b := Policy{Base: 30 * time.Millisecond, Factor: 1}.New(1)
	for i := 0; i < 5; i++ {
		if got := b.Next(); got != 30*time.Millisecond {
			t.Fatalf("attempt %d: %v, want constant 30ms", i, got)
		}
	}
}

// TestJitterBoundsAndDeterminism: every jittered delay stays within
// ±Jitter/2 of the nominal value, and the same seed replays the same
// sequence exactly.
func TestJitterBoundsAndDeterminism(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	a, b := p.New(42), p.New(42)
	nominal := Policy{Base: p.Base, Max: p.Max}.New(0)
	for i := 0; i < 20; i++ {
		n := nominal.Next()
		lo := time.Duration(float64(n) * 0.75)
		hi := time.Duration(float64(n) * 1.25)
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		if da < lo || da > hi {
			t.Fatalf("attempt %d: %v outside [%v, %v]", i, da, lo, hi)
		}
	}
	// Different seeds decorrelate: at least one of the first few delays
	// must differ.
	c := p.New(43)
	a.Reset()
	same := true
	for i := 0; i < 8; i++ {
		if a.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical delay sequences")
	}
}

// TestSleepHonorsCancel: a canceled context interrupts the wait
// immediately with the context's error.
func TestSleepHonorsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := Policy{Base: time.Hour}.New(1)
	start := time.Now()
	if err := b.Sleep(ctx); err != context.Canceled {
		t.Fatalf("Sleep on canceled ctx: %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep did not return promptly on cancel")
	}
	if err := Sleep(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("package Sleep on canceled ctx: %v", err)
	}
}

// TestSleepAtLeastFloors: the serving side's Retry-After floors the
// delay even when the ramp is still below it.
func TestSleepAtLeastFloors(t *testing.T) {
	b := Policy{Base: time.Microsecond}.New(1)
	start := time.Now()
	if err := b.SleepAtLeast(context.Background(), 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("slept %v, want >= 20ms floor", d)
	}
}

// TestTotalCounts: Next feeds the process-wide retry total.
func TestTotalCounts(t *testing.T) {
	before := Total()
	b := Policy{Base: time.Millisecond}.New(1)
	b.Next()
	b.Next()
	if got := Total() - before; got < 2 {
		t.Fatalf("Total advanced by %d, want >= 2", got)
	}
}

// TestSeedString is stable (the whole point of a seeded identity).
func TestSeedString(t *testing.T) {
	if SeedString("w1") != SeedString("w1") {
		t.Fatal("SeedString not stable")
	}
	if SeedString("w1") == SeedString("w2") {
		t.Fatal("distinct identities hashed to the same seed")
	}
}
