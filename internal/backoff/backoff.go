// Package backoff is the repo's single retry-delay policy: capped
// exponential growth with deterministic, seeded jitter and
// context-aware sleeping.
//
// Before this package existed, internal/remote carried four divergent
// ad-hoc retry loops (a fixed 1s poll backoff, a 10ms-doubling submit
// loop, an unjittered TTL/3 renew ticker and a fixed re-probation
// delay). Fixed delays synchronize a fleet: after a broker restart,
// every worker that failed its poll at the same instant retries at the
// same instant, forever — the classic thundering herd, which is exactly
// the correlated-retry storm a 100-worker fleet melts down under.
// Jitter decorrelates the herd; the seed keeps each individual agent's
// delay sequence reproducible, so chaos runs and tests replay exactly.
//
// Usage:
//
//	b := backoff.Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second,
//		Jitter: 0.5}.New(backoff.SeedString(workerName))
//	for {
//		if err := try(); err == nil {
//			b.Reset()
//			continue
//		}
//		if err := b.Sleep(ctx); err != nil {
//			return err // canceled mid-backoff
//		}
//	}
//
// A Policy with Factor 1 is a jittered constant interval — the right
// shape for heartbeat/renew loops, where the point is desynchronizing
// periodic traffic rather than shedding load.
package backoff

import (
	"context"
	"hash/fnv"
	"math/rand"
	"sync/atomic"
	"time"
)

// Policy describes a backoff shape. The zero value is not useful —
// Base must be positive — but every other field has a sane default.
type Policy struct {
	// Base is the delay before the first retry (required, > 0).
	Base time.Duration
	// Max caps each un-jittered delay; 0 means no cap. Jitter may push
	// a delay up to Jitter/2 past the cap.
	Max time.Duration
	// Factor is the per-attempt growth multiplier; values < 1 (including
	// the zero value) mean 2. Factor 1 gives a constant jittered
	// interval (heartbeats).
	Factor float64
	// Jitter is the fraction of each delay that is randomized, in
	// [0, 1]: a delay d becomes uniform in [d·(1−J/2), d·(1+J/2)).
	// 0 disables jitter (exact, for tests).
	Jitter float64
}

// New builds a Backoff for this policy. Delays are deterministic for a
// given (policy, seed) pair; derive the seed from a stable identity
// (worker name, fleet index) so each agent jitters differently but
// reproducibly. A Backoff is not safe for concurrent use — it belongs
// to one retry loop.
func (p Policy) New(seed int64) *Backoff {
	if p.Factor < 1 {
		p.Factor = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return &Backoff{p: p, rng: rand.New(rand.NewSource(seed))}
}

// Backoff is the mutable state of one retry loop: how many consecutive
// failures it has seen, and its private jitter stream.
type Backoff struct {
	p       Policy
	attempt int
	rng     *rand.Rand
}

// Next returns the delay to wait before the next retry and advances
// the attempt counter. It also feeds the process-wide retry total
// (Total), which daemons log on exit so soak gates can bound retry
// storms.
func (b *Backoff) Next() time.Duration {
	d := float64(b.p.Base)
	for i := 0; i < b.attempt; i++ {
		d *= b.p.Factor
		if b.p.Max > 0 && d >= float64(b.p.Max) {
			d = float64(b.p.Max)
			break
		}
	}
	if b.p.Max > 0 && d > float64(b.p.Max) {
		d = float64(b.p.Max)
	}
	b.attempt++
	total.Add(1)
	if j := b.p.Jitter; j > 0 {
		d += d * j * (b.rng.Float64() - 0.5)
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// Attempt reports how many delays Next has produced since the last
// Reset (i.e. the number of consecutive failures so far).
func (b *Backoff) Attempt() int { return b.attempt }

// Reset restarts the sequence at Base; call it after a success so the
// next failure starts the ramp from the bottom again. The jitter
// stream is not rewound — only the amplitude resets.
func (b *Backoff) Reset() { b.attempt = 0 }

// Sleep waits Next() or until ctx cancels, whichever is first, and
// returns ctx's error in the cancel case — the standard body of a
// retry loop.
func (b *Backoff) Sleep(ctx context.Context) error {
	return Sleep(ctx, b.Next())
}

// SleepAtLeast is Sleep with a floor: the serving side named its own
// comeback time (a Retry-After on a rate_limited reply), so waiting
// less than that is a guaranteed wasted round-trip. The exponential
// ramp still applies above the floor.
func (b *Backoff) SleepAtLeast(ctx context.Context, floor time.Duration) error {
	d := b.Next()
	if d < floor {
		d = floor
	}
	return Sleep(ctx, d)
}

// Sleep pauses for d or until ctx cancels (returning ctx's error).
// This is the only sanctioned way to wait in a retry loop — a bare
// time.Sleep cannot be interrupted by shutdown, which is how drains
// end up hanging for a full backoff.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// total counts every Next() across the process.
var total atomic.Int64

// Total reports the process-wide number of backoff delays taken since
// start. Daemons log it on exit; the chaos soak gate reads that line
// to assert retries stayed bounded under the injected fault plan.
func Total() int64 { return total.Load() }

// SeedString hashes a stable identity (worker name, tenant) into a
// jitter seed: same identity, same delay sequence; different
// identities, decorrelated ones.
func SeedString(s string) int64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return int64(h.Sum64())
}
