package nn

import (
	"testing"

	"repro/internal/par"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// serialBudget pins the worker budget to 1 for the duration of an
// alloc-gated benchmark: the zero-alloc guarantee is about the serial
// compute path, and parallel fan-out would add goroutine/closure
// allocations that are not regressions. Call the returned restore func
// via b.Cleanup.
func serialBudget(b *testing.B) {
	b.Helper()
	old := par.Budget()
	par.SetBudget(1)
	b.Cleanup(func() { par.SetBudget(old) })
}

// benchBatch builds a deterministic synthetic batch.
func benchBatch(n, classes, size int) Batch {
	rng := stats.NewRNG(99)
	x := tensor.New(n, 3, size, size)
	x.RandNormal(rng, 1)
	y := make([]int, n)
	for i := range y {
		y[i] = int(rng.Intn(classes))
	}
	return Batch{X: x, Y: y}
}

// BenchmarkTrainStepResNet20 measures one full training step — forward,
// loss, backward, SGD update — on a reused batch with serial kernels.
// allocs/op is the zero-alloc gate: after warm-up the layer-held
// buffers, pooled scratch and cached parameter lists keep the step off
// the allocator.
func BenchmarkTrainStepResNet20(b *testing.B) {
	serialBudget(b)
	m := NewResNet20(10, 0.25, 7)
	batch := benchBatch(16, 10, 16)
	opt := NewSGD(0.05, 0.9, 5e-4)
	params := m.Params()
	var grad *tensor.Tensor
	// Warm-up step so buffer growth is not billed to the measurement.
	step := func() {
		m.ZeroGrad()
		logits := m.Forward(batch.X, true)
		grad = tensor.Ensure(grad, logits.Shape...)
		SoftmaxCrossEntropyInto(grad, logits, batch.Y)
		m.Backward(grad)
		opt.Step(params)
	}
	step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// BenchmarkTrainStepVGG11 is the same gate on the conv-heavy VGG path
// (max-pool stages, no residual blocks).
func BenchmarkTrainStepVGG11(b *testing.B) {
	serialBudget(b)
	m := NewVGG11(10, 0.25, 7)
	batch := benchBatch(8, 10, 16)
	opt := NewSGD(0.05, 0.9, 5e-4)
	params := m.Params()
	var grad *tensor.Tensor
	step := func() {
		m.ZeroGrad()
		logits := m.Forward(batch.X, true)
		grad = tensor.Ensure(grad, logits.Shape...)
		SoftmaxCrossEntropyInto(grad, logits, batch.Y)
		m.Backward(grad)
		opt.Step(params)
	}
	step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// BenchmarkInferenceResNet20 measures the attack-side eval path: forward
// plus loss, no gradients.
func BenchmarkInferenceResNet20(b *testing.B) {
	serialBudget(b)
	m := NewResNet20(10, 0.25, 7)
	batch := benchBatch(32, 10, 16)
	BatchLoss(m, batch) // warm buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BatchLoss(m, batch)
	}
}

// BenchmarkBatchNormForward isolates the channel reduction under the
// ambient budget (parallel on multi-core machines).
func BenchmarkBatchNormForward(b *testing.B) {
	bn := NewBatchNorm2D("bn", 64)
	rng := stats.NewRNG(3)
	x := tensor.New(32, 64, 8, 8)
	x.RandNormal(rng, 1)
	bn.Forward(x, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bn.Forward(x, true)
	}
}
