package nn

import (
	"math"
	"testing"

	"repro/internal/par"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// syntheticSource is a fixed in-memory BatchSource.
type syntheticSource struct {
	x *tensor.Tensor
	y []int
}

func (s *syntheticSource) NumExamples() int { return len(s.y) }
func (s *syntheticSource) Slice(i, j int) Batch {
	per := s.x.Len() / len(s.y)
	return Batch{
		X: tensor.FromData(s.x.Data[i*per:j*per], j-i, s.x.Shape[1], s.x.Shape[2], s.x.Shape[3]),
		Y: s.y[i:j],
	}
}

func newSyntheticSource(n, classes, size int, seed uint64) *syntheticSource {
	rng := stats.NewRNG(seed)
	x := tensor.New(n, 3, size, size)
	x.RandNormal(rng, 1)
	y := make([]int, n)
	for i := range y {
		y[i] = int(rng.Intn(classes))
	}
	return &syntheticSource{x: x, y: y}
}

// trainedWeights trains a fresh ResNet-20 under the given worker budget
// and returns every parameter value.
func trainedWeights(budget int) []float32 {
	old := par.Budget()
	par.SetBudget(budget)
	defer par.SetBudget(old)

	m := NewResNet20(4, 0.25, 21)
	src := newSyntheticSource(24, 4, 8, 31)
	cfg := TrainConfig{Epochs: 2, BatchSize: 8, LR: 0.05, Momentum: 0.9, WeightDecay: 5e-4, Seed: 5}
	Fit(m, src, cfg)
	var out []float32
	for _, p := range m.Params() {
		out = append(out, p.W.Data...)
	}
	return out
}

// TestTrainingBitIdenticalAcrossBudgets is the end-to-end determinism
// gate: a full training run — every GEMM, BatchNorm reduction, im2col
// scatter and SGD update — must produce bit-identical weights whether
// the kernels run serially or fanned out across the worker budget. This
// is the property that keeps experiment reports byte-identical at any
// GOMAXPROCS.
func TestTrainingBitIdenticalAcrossBudgets(t *testing.T) {
	serial := trainedWeights(1)
	parallel := trainedWeights(8)
	if len(serial) != len(parallel) {
		t.Fatalf("weight count mismatch: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if math.Float32bits(serial[i]) != math.Float32bits(parallel[i]) {
			t.Fatalf("weight %d differs: %g (0x%08x) vs %g (0x%08x)",
				i, serial[i], math.Float32bits(serial[i]),
				parallel[i], math.Float32bits(parallel[i]))
		}
	}
}

// TestEvaluateBitIdenticalAcrossBudgets pins the inference path the
// attack loops hammer: accuracy and batch loss must not move with the
// budget.
func TestEvaluateBitIdenticalAcrossBudgets(t *testing.T) {
	m := NewResNet20(4, 0.25, 22)
	src := newSyntheticSource(32, 4, 8, 33)

	run := func(budget int) (float64, float64) {
		old := par.Budget()
		par.SetBudget(budget)
		defer par.SetBudget(old)
		return Evaluate(m, src, 8), BatchLoss(m, src.Slice(0, 16))
	}
	acc1, loss1 := run(1)
	acc8, loss8 := run(8)
	if acc1 != acc8 || loss1 != loss8 {
		t.Fatalf("eval differs across budgets: acc %v vs %v, loss %v vs %v",
			acc1, acc8, loss1, loss8)
	}
}
