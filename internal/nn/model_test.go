package nn

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/tensor"
)

func TestResNet20Shapes(t *testing.T) {
	m := NewResNet20(10, 0.25, 1)
	rng := stats.NewRNG(1)
	x := tensor.New(2, 3, 16, 16)
	x.RandNormal(rng, 1)
	out := m.Forward(x, false)
	if len(out.Shape) != 2 || out.Shape[0] != 2 || out.Shape[1] != 10 {
		t.Fatalf("output shape %v, want (2,10)", out.Shape)
	}
}

func TestResNet20ParamCountScalesWithWidth(t *testing.T) {
	small := NewResNet20(10, 0.25, 1).NumParams()
	big := NewResNet20(10, 0.5, 1).NumParams()
	if big <= small {
		t.Fatalf("width 0.5 params (%d) should exceed width 0.25 (%d)", big, small)
	}
	// Conv params scale ~quadratically with width.
	if float64(big) < 2.5*float64(small) {
		t.Fatalf("expected ~4x params, got %d vs %d", big, small)
	}
}

func TestVGG11Shapes32(t *testing.T) {
	m := NewVGG11(100, 0.25, 2)
	rng := stats.NewRNG(2)
	x := tensor.New(1, 3, 32, 32)
	x.RandNormal(rng, 1)
	out := m.Forward(x, false)
	if out.Shape[0] != 1 || out.Shape[1] != 100 {
		t.Fatalf("output shape %v, want (1,100)", out.Shape)
	}
}

func TestVGG11Shapes16(t *testing.T) {
	// Global average pooling makes the net input-size agnostic.
	m := NewVGG11(10, 0.25, 2)
	rng := stats.NewRNG(3)
	x := tensor.New(2, 3, 16, 16)
	x.RandNormal(rng, 1)
	out := m.Forward(x, false)
	if out.Shape[0] != 2 || out.Shape[1] != 10 {
		t.Fatalf("output shape %v, want (2,10)", out.Shape)
	}
}

func TestQuantizableParamsAreConvAndLinearOnly(t *testing.T) {
	m := NewResNet20(10, 0.25, 1)
	qs := m.QuantizableParams()
	if len(qs) == 0 {
		t.Fatal("no quantizable params")
	}
	for _, p := range qs {
		if !p.Quantizable {
			t.Fatalf("%s not marked quantizable", p.Name)
		}
		if p.NoDecay {
			t.Fatalf("%s is a bias/BN param, must not be quantizable", p.Name)
		}
	}
	// ResNet-20: 1 stem + 9 blocks x 2 convs + 2 downsample convs + 1 fc = 22.
	if len(qs) != 22 {
		t.Fatalf("ResNet-20 quantizable params = %d, want 22", len(qs))
	}
}

func TestWalkVisitsNestedLayers(t *testing.T) {
	m := NewResNet20(10, 0.25, 1)
	convs := 0
	m.Walk(func(l Layer) {
		if _, ok := l.(*Conv2D); ok {
			convs++
		}
	})
	if convs != 21 { // 22 quantizable minus the fc
		t.Fatalf("walked %d convs, want 21", convs)
	}
	if bns := len(m.BatchNorms()); bns != 21 {
		t.Fatalf("found %d batch norms, want 21", bns)
	}
}

func TestZeroGradClearsAll(t *testing.T) {
	m := NewResNet20(10, 0.25, 1)
	rng := stats.NewRNG(4)
	x := tensor.New(2, 3, 8, 8)
	x.RandNormal(rng, 1)
	logits := m.Forward(x, true)
	_, g := SoftmaxCrossEntropy(logits, []int{1, 2})
	m.Backward(g)
	m.ZeroGrad()
	for _, p := range m.Params() {
		for _, v := range p.Grad.Data {
			if v != 0 {
				t.Fatalf("%s grad not cleared", p.Name)
			}
		}
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	rng := stats.NewRNG(5)
	bn := NewBatchNorm2D("bn", 2)
	x := tensor.New(4, 2, 3, 3)
	x.RandNormal(rng, 3)
	// Train-mode forwards move the running stats.
	for i := 0; i < 20; i++ {
		bn.Forward(x, true)
	}
	// Inference output must be deterministic given frozen stats. Forward
	// returns a layer-owned buffer, so snapshot the first pass.
	y1 := bn.Forward(x, false).Clone()
	y2 := bn.Forward(x, false)
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatal("inference output not deterministic")
		}
	}
	if bn.RunningMean[0] == 0 && bn.RunningMean[1] == 0 {
		t.Fatal("running mean never updated")
	}
}

func TestBatchNormFreezeStats(t *testing.T) {
	rng := stats.NewRNG(6)
	bn := NewBatchNorm2D("bn", 2)
	x := tensor.New(4, 2, 3, 3)
	x.RandNormal(rng, 3)
	bn.FreezeStats = true
	bn.Forward(x, true)
	if bn.RunningMean[0] != 0 || bn.RunningVar[0] != 1 {
		t.Fatal("FreezeStats must suppress running-stat updates")
	}
}

func TestGradientPassPreservesRunningStats(t *testing.T) {
	m := NewResNet20(10, 0.25, 7)
	rng := stats.NewRNG(7)
	x := tensor.New(2, 3, 8, 8)
	x.RandNormal(rng, 1)
	// Prime the stats with one training forward.
	m.Forward(x, true)
	before := make([]float64, 0)
	for _, bn := range m.BatchNorms() {
		before = append(before, bn.RunningMean...)
	}
	GradientPass(m, Batch{X: x, Y: []int{0, 1}})
	i := 0
	for _, bn := range m.BatchNorms() {
		for _, v := range bn.RunningMean {
			if v != before[i] {
				t.Fatal("GradientPass must not move running statistics")
			}
			i++
		}
	}
	// And gradients must be populated.
	var total float64
	for _, p := range m.Params() {
		for _, g := range p.Grad.Data {
			total += math.Abs(float64(g))
		}
	}
	if total == 0 {
		t.Fatal("GradientPass produced zero gradients")
	}
}

func TestMaxPoolForwardKnownValues(t *testing.T) {
	x := tensor.FromData([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 2, 2,
		1, 1, 2, 3,
	}, 1, 1, 4, 4)
	p := NewMaxPool2("pool")
	y := p.Forward(x, false)
	want := []float32{4, 8, 9, 3}
	for i, v := range want {
		if y.Data[i] != v {
			t.Fatalf("pool[%d] = %g, want %g", i, y.Data[i], v)
		}
	}
}

func TestGlobalAvgPoolKnownValues(t *testing.T) {
	x := tensor.FromData([]float32{1, 2, 3, 4, 10, 10, 10, 10}, 1, 2, 2, 2)
	p := NewGlobalAvgPool("pool")
	y := p.Forward(x, false)
	if y.Data[0] != 2.5 || y.Data[1] != 10 {
		t.Fatalf("avgpool = %v, want [2.5 10]", y.Data)
	}
}
