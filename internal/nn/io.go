package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Checkpoint format: a little-endian binary stream of
//
//	magic "DLCK" | version u32 | nparams u32
//	per param: nameLen u32 | name | len u32 | float32 values
//	nbn u32 | per BN: nameLen u32 | name | c u32 | mean f64[c] | var f64[c]
//
// Only parameter values and BatchNorm running statistics are stored; the
// architecture is reconstructed by the caller (the usual PyTorch-style
// state-dict contract).

const (
	checkpointMagic   = "DLCK"
	checkpointVersion = 1
)

// SaveCheckpoint writes the model's learnable state to w.
func SaveCheckpoint(m *Model, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	params := m.Params()
	if err := writeU32(bw, checkpointVersion); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(bw, p.Name); err != nil {
			return err
		}
		if err := writeU32(bw, uint32(p.W.Len())); err != nil {
			return err
		}
		for _, v := range p.W.Data {
			if err := writeU32(bw, math.Float32bits(v)); err != nil {
				return err
			}
		}
	}
	bns := m.BatchNorms()
	if err := writeU32(bw, uint32(len(bns))); err != nil {
		return err
	}
	for _, bn := range bns {
		if err := writeString(bw, bn.LayerName); err != nil {
			return err
		}
		if err := writeU32(bw, uint32(bn.C)); err != nil {
			return err
		}
		for _, v := range bn.RunningMean {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		for _, v := range bn.RunningVar {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadCheckpoint restores state saved by SaveCheckpoint into a model with
// the same architecture. Parameter names and sizes must match exactly.
func LoadCheckpoint(m *Model, r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("nn: reading checkpoint magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return fmt.Errorf("nn: bad checkpoint magic %q", magic)
	}
	version, err := readU32(br)
	if err != nil {
		return err
	}
	if version != checkpointVersion {
		return fmt.Errorf("nn: unsupported checkpoint version %d", version)
	}
	nparams, err := readU32(br)
	if err != nil {
		return err
	}
	params := m.Params()
	if int(nparams) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", nparams, len(params))
	}
	for _, p := range params {
		name, err := readString(br)
		if err != nil {
			return err
		}
		if name != p.Name {
			return fmt.Errorf("nn: checkpoint param %q does not match model param %q", name, p.Name)
		}
		n, err := readU32(br)
		if err != nil {
			return err
		}
		if int(n) != p.W.Len() {
			return fmt.Errorf("nn: param %q has %d values in checkpoint, %d in model", name, n, p.W.Len())
		}
		for i := range p.W.Data {
			bits, err := readU32(br)
			if err != nil {
				return err
			}
			p.W.Data[i] = math.Float32frombits(bits)
		}
	}
	nbn, err := readU32(br)
	if err != nil {
		return err
	}
	bns := m.BatchNorms()
	if int(nbn) != len(bns) {
		return fmt.Errorf("nn: checkpoint has %d batch norms, model has %d", nbn, len(bns))
	}
	for _, bn := range bns {
		name, err := readString(br)
		if err != nil {
			return err
		}
		if name != bn.LayerName {
			return fmt.Errorf("nn: checkpoint BN %q does not match model BN %q", name, bn.LayerName)
		}
		c, err := readU32(br)
		if err != nil {
			return err
		}
		if int(c) != bn.C {
			return fmt.Errorf("nn: BN %q has %d channels in checkpoint, %d in model", name, c, bn.C)
		}
		for i := range bn.RunningMean {
			if err := binary.Read(br, binary.LittleEndian, &bn.RunningMean[i]); err != nil {
				return err
			}
		}
		for i := range bn.RunningVar {
			if err := binary.Read(br, binary.LittleEndian, &bn.RunningVar[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeU32(w io.Writer, v uint32) error {
	return binary.Write(w, binary.LittleEndian, v)
}

func readU32(r io.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func writeString(w io.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("nn: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
