package nn

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// numericalGrad estimates dLoss/dTheta for one scalar parameter via
// central differences, where loss() re-runs the full forward pass.
func numericalGrad(theta *float32, loss func() float64) float64 {
	const eps = 1e-3
	orig := *theta
	*theta = orig + eps
	lp := loss()
	*theta = orig - eps
	lm := loss()
	*theta = orig
	return (lp - lm) / (2 * eps)
}

// checkLayerGradients runs a forward+backward through the layers and
// compares every parameter gradient and the input gradient against
// central differences.
func checkLayerGradients(t *testing.T, layers []Layer, x *tensor.Tensor, labels []int, tol float64) {
	t.Helper()
	m := &Model{ModelName: "gradcheck", Layers: layers}

	loss := func() float64 {
		l, _ := SoftmaxCrossEntropy(m.Forward(x, true), labels)
		return l
	}

	m.ZeroGrad()
	logits := m.Forward(x, true)
	_, g := SoftmaxCrossEntropy(logits, labels)
	dx := m.Backward(g)

	// Parameter gradients: check a spread of indices (all for small
	// tensors, strided for big ones).
	for _, p := range m.Params() {
		stride := p.W.Len()/7 + 1
		for i := 0; i < p.W.Len(); i += stride {
			want := numericalGrad(&p.W.Data[i], loss)
			got := float64(p.Grad.Data[i])
			if math.Abs(got-want) > tol*math.Max(1, math.Abs(want)) {
				t.Errorf("%s[%d]: analytic %g vs numeric %g", p.Name, i, got, want)
			}
		}
	}
	// Input gradient.
	stride := x.Len()/7 + 1
	for i := 0; i < x.Len(); i += stride {
		want := numericalGrad(&x.Data[i], loss)
		got := float64(dx.Data[i])
		if math.Abs(got-want) > tol*math.Max(1, math.Abs(want)) {
			t.Errorf("dx[%d]: analytic %g vs numeric %g", i, got, want)
		}
	}
}

func gradInput(rng *stats.RNG, n, c, h, w int) *tensor.Tensor {
	x := tensor.New(n, c, h, w)
	x.RandNormal(rng, 1)
	return x
}

func TestGradLinear(t *testing.T) {
	rng := stats.NewRNG(10)
	x := tensor.New(3, 5)
	x.RandNormal(rng, 1)
	layers := []Layer{NewLinear("fc", 5, 4, rng)}
	checkLayerGradients(t, layers, x, []int{0, 2, 1}, 2e-2)
}

func TestGradConv2D(t *testing.T) {
	rng := stats.NewRNG(11)
	x := gradInput(rng, 2, 2, 5, 5)
	layers := []Layer{
		NewConv2D("conv", 2, 3, 3, 1, 1, true, rng),
		NewFlatten("flat"),
		NewLinear("fc", 3*5*5, 3, rng),
	}
	checkLayerGradients(t, layers, x, []int{0, 2}, 3e-2)
}

func TestGradConv2DStride2(t *testing.T) {
	rng := stats.NewRNG(12)
	x := gradInput(rng, 1, 2, 6, 6)
	layers := []Layer{
		NewConv2D("conv", 2, 2, 3, 2, 1, false, rng),
		NewFlatten("flat"),
		NewLinear("fc", 2*3*3, 2, rng),
	}
	checkLayerGradients(t, layers, x, []int{1}, 3e-2)
}

func TestGradReLU(t *testing.T) {
	rng := stats.NewRNG(13)
	x := tensor.New(4, 6)
	x.RandNormal(rng, 1)
	layers := []Layer{
		NewLinear("fc1", 6, 6, rng),
		NewReLU("relu"),
		NewLinear("fc2", 6, 3, rng),
	}
	checkLayerGradients(t, layers, x, []int{0, 1, 2, 0}, 3e-2)
}

func TestGradBatchNorm(t *testing.T) {
	rng := stats.NewRNG(14)
	x := gradInput(rng, 3, 2, 4, 4)
	layers := []Layer{
		NewBatchNorm2D("bn", 2),
		NewFlatten("flat"),
		NewLinear("fc", 2*4*4, 3, rng),
	}
	checkLayerGradients(t, layers, x, []int{0, 1, 2}, 5e-2)
}

func TestGradMaxPool(t *testing.T) {
	rng := stats.NewRNG(15)
	x := gradInput(rng, 2, 2, 4, 4)
	layers := []Layer{
		NewMaxPool2("pool"),
		NewFlatten("flat"),
		NewLinear("fc", 2*2*2, 2, rng),
	}
	checkLayerGradients(t, layers, x, []int{0, 1}, 3e-2)
}

func TestGradGlobalAvgPool(t *testing.T) {
	rng := stats.NewRNG(16)
	x := gradInput(rng, 2, 3, 4, 4)
	layers := []Layer{
		NewGlobalAvgPool("pool"),
		NewLinear("fc", 3, 2, rng),
	}
	checkLayerGradients(t, layers, x, []int{1, 0}, 3e-2)
}

func TestGradBasicBlockIdentity(t *testing.T) {
	rng := stats.NewRNG(17)
	x := gradInput(rng, 2, 3, 4, 4)
	layers := []Layer{
		NewBasicBlock("block", 3, 3, 1, rng),
		NewGlobalAvgPool("pool"),
		NewLinear("fc", 3, 2, rng),
	}
	checkLayerGradients(t, layers, x, []int{0, 1}, 6e-2)
}

func TestGradBasicBlockDownsample(t *testing.T) {
	rng := stats.NewRNG(18)
	x := gradInput(rng, 2, 2, 4, 4)
	layers := []Layer{
		NewBasicBlock("block", 2, 4, 2, rng),
		NewGlobalAvgPool("pool"),
		NewLinear("fc", 4, 2, rng),
	}
	checkLayerGradients(t, layers, x, []int{1, 0}, 6e-2)
}

func TestSoftmaxCrossEntropyGradientRowsSumToZero(t *testing.T) {
	rng := stats.NewRNG(19)
	logits := tensor.New(4, 5)
	logits.RandNormal(rng, 2)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 4, 2, 1})
	if loss <= 0 {
		t.Fatalf("loss = %g, want > 0", loss)
	}
	for i := 0; i < 4; i++ {
		var s float64
		for j := 0; j < 5; j++ {
			s += float64(grad.Data[i*5+j])
		}
		if math.Abs(s) > 1e-5 {
			t.Fatalf("row %d gradient sums to %g, want 0", i, s)
		}
	}
}

func TestSoftmaxCrossEntropyPerfectPrediction(t *testing.T) {
	logits := tensor.FromData([]float32{30, 0, 0}, 1, 3)
	loss, _ := SoftmaxCrossEntropy(logits, []int{0})
	if loss > 1e-9 {
		t.Fatalf("loss = %g, want ~0 for confident correct prediction", loss)
	}
}
