//go:build !race

package nn

import (
	"testing"

	"repro/internal/par"
	"repro/internal/tensor"
)

// TestTrainStepDoesNotAllocate asserts the zero-alloc training step:
// after one warm-up step, a full forward/backward/update must stay off
// the allocator. The worker budget is pinned to 1 — the guarantee is
// about the serial compute path; parallel fan-out inherently spends a
// few transient allocations on goroutines and closures. Excluded under
// -race, whose instrumentation allocates.
func TestTrainStepDoesNotAllocate(t *testing.T) {
	old := par.Budget()
	par.SetBudget(1)
	defer par.SetBudget(old)

	m := NewResNet20(4, 0.25, 23)
	src := newSyntheticSource(8, 4, 8, 35)
	b := src.Slice(0, 8)
	opt := NewSGD(0.05, 0.9, 5e-4)
	params := m.Params()
	var grad *tensor.Tensor
	step := func() {
		m.ZeroGrad()
		logits := m.Forward(b.X, true)
		grad = tensor.Ensure(grad, logits.Shape...)
		SoftmaxCrossEntropyInto(grad, logits, b.Y)
		m.Backward(grad)
		opt.Step(params)
	}
	step() // warm up buffers, velocity, caches
	allocs := testing.AllocsPerRun(5, step)
	// The serial path must be allocation-free; allow a few stray ones for
	// runtime noise (testing.AllocsPerRun already averages).
	if allocs > 4 {
		t.Fatalf("training step allocates %.1f objects/op, want ~0", allocs)
	}
}
