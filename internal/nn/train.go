package nn

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss over a batch of
// logits (N, C) against integer labels, and the gradient dL/dlogits.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	grad := tensor.New(logits.Shape[0], logits.Shape[1])
	loss := SoftmaxCrossEntropyInto(grad, logits, labels)
	return loss, grad
}

// SoftmaxCrossEntropyInto is SoftmaxCrossEntropy writing dL/dlogits into
// a caller-owned gradient tensor of the same shape as logits — the
// trainer reuses one across every step.
func SoftmaxCrossEntropyInto(grad, logits *tensor.Tensor, labels []int) float64 {
	if len(logits.Shape) != 2 || logits.Shape[0] != len(labels) {
		panic(fmt.Sprintf("nn: loss shape %v vs %d labels", logits.Shape, len(labels)))
	}
	if !tensor.SameShape(grad, logits) {
		panic(fmt.Sprintf("nn: loss gradient shape %v vs logits %v", grad.Shape, logits.Shape))
	}
	n, c := logits.Shape[0], logits.Shape[1]
	var loss float64
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		row := logits.Data[i*c : (i+1)*c]
		maxv, sum := softmaxRowStats(row)
		logSum := math.Log(sum)
		y := labels[i]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("nn: label %d out of range %d", y, c))
		}
		loss += (logSum - float64(row[y]-maxv)) * inv
		grow := grad.Data[i*c : (i+1)*c]
		for j := range grow {
			p := math.Exp(float64(row[j]-maxv)) / sum
			grow[j] = float32(p * inv)
		}
		grow[y] -= float32(inv)
	}
	return loss
}

// SoftmaxLoss computes the mean cross-entropy without materialising the
// gradient — the attack's candidate-evaluation hot path calls this
// thousands of times per run.
func SoftmaxLoss(logits *tensor.Tensor, labels []int) float64 {
	if len(logits.Shape) != 2 || logits.Shape[0] != len(labels) {
		panic(fmt.Sprintf("nn: loss shape %v vs %d labels", logits.Shape, len(labels)))
	}
	n, c := logits.Shape[0], logits.Shape[1]
	var loss float64
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		row := logits.Data[i*c : (i+1)*c]
		maxv, sum := softmaxRowStats(row)
		y := labels[i]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("nn: label %d out of range %d", y, c))
		}
		loss += (math.Log(sum) - float64(row[y]-maxv)) * inv
	}
	return loss
}

// softmaxRowStats returns the row max and the sum of exp(v - max), the
// shared numerically stable softmax reduction.
func softmaxRowStats(row []float32) (float32, float64) {
	maxv := row[0]
	for _, v := range row {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for _, v := range row {
		sum += math.Exp(float64(v - maxv))
	}
	return maxv, sum
}

// SGD is stochastic gradient descent with momentum and weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	velocity    map[*Param][]float32
}

// NewSGD constructs the optimiser.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*Param][]float32)}
}

// Step applies one update to all parameters from their gradients.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		v := s.velocity[p]
		if v == nil {
			v = make([]float32, p.W.Len())
			s.velocity[p] = v
		}
		wd := float32(s.WeightDecay)
		if p.NoDecay {
			wd = 0
		}
		mu := float32(s.Momentum)
		lr := float32(s.LR)
		for i := range p.W.Data {
			g := p.Grad.Data[i] + wd*p.W.Data[i]
			v[i] = mu*v[i] + g
			p.W.Data[i] -= lr * v[i]
		}
	}
}

// TrainConfig parameterises Fit.
type TrainConfig struct {
	Epochs      int
	BatchSize   int
	LR          float64
	Momentum    float64
	WeightDecay float64
	// LRDropEvery halves the learning rate every this many epochs
	// (0 disables).
	LRDropEvery int
	Seed        uint64
	// Regularizer, if non-nil, adds extra gradient terms after each
	// backward pass (e.g. PiecewiseClusteringReg for the Table II
	// defense).
	Regularizer func(params []*Param)
	// Verbose prints per-epoch progress via the Logf callback.
	Logf func(format string, args ...any)
	// Stop, if non-nil, is polled before every epoch; a non-nil return
	// aborts training early (the model keeps the weights learned so
	// far). The experiment harness wires it to the run's cancellation
	// context so Ctrl-C interrupts an in-flight victim training.
	Stop func() error
	// OnEpoch, if non-nil, is called after each completed epoch with
	// (done, total) — the experiment harness wires it to the engine's
	// progress stream so remote schedulers see live epoch heartbeats.
	OnEpoch func(done, total int)
}

// PiecewiseClusteringReg returns the piece-wise clustering regularizer of
// He et al. CVPR'20: for each quantizable weight tensor, positive weights
// are pulled toward their mean and negative weights toward theirs, making
// the distribution bimodal and the model markedly more resistant to
// bit-flips. lambda is the penalty strength.
func PiecewiseClusteringReg(lambda float64) func(params []*Param) {
	return func(params []*Param) {
		for _, p := range params {
			if !p.Quantizable {
				continue
			}
			var posSum, negSum float64
			var posN, negN int
			for _, w := range p.W.Data {
				if w >= 0 {
					posSum += float64(w)
					posN++
				} else {
					negSum += float64(w)
					negN++
				}
			}
			var posMean, negMean float32
			if posN > 0 {
				posMean = float32(posSum / float64(posN))
			}
			if negN > 0 {
				negMean = float32(negSum / float64(negN))
			}
			l := float32(2 * lambda)
			for i, w := range p.W.Data {
				if w >= 0 {
					p.Grad.Data[i] += l * (w - posMean)
				} else {
					p.Grad.Data[i] += l * (w - negMean)
				}
			}
		}
	}
}

// DefaultTrainConfig returns a configuration suitable for the synthetic
// CIFAR-like datasets.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs:      6,
		BatchSize:   32,
		LR:          0.05,
		Momentum:    0.9,
		WeightDecay: 5e-4,
		LRDropEvery: 3,
		Seed:        7,
	}
}

// Batch is one minibatch of images and labels.
type Batch struct {
	X *tensor.Tensor // (N, C, H, W)
	Y []int
}

// BatchSource yields minibatches; internal/dataset implements it.
type BatchSource interface {
	// NumExamples is the dataset size.
	NumExamples() int
	// Slice materialises examples [i, j) as one batch.
	Slice(i, j int) Batch
}

// Fit trains the model on train data with SGD, returning the final
// training loss.
func Fit(m *Model, train BatchSource, cfg TrainConfig) float64 {
	if cfg.BatchSize <= 0 || cfg.Epochs <= 0 {
		panic("nn: TrainConfig needs positive Epochs and BatchSize")
	}
	opt := NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	rng := stats.NewRNG(cfg.Seed)
	n := train.NumExamples()
	params := m.Params()
	var grad *tensor.Tensor // loss-gradient buffer, reused every step
	var starts []int
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Stop != nil && cfg.Stop() != nil {
			break
		}
		if cfg.LRDropEvery > 0 && epoch > 0 && epoch%cfg.LRDropEvery == 0 {
			opt.LR /= 2
		}
		// Shuffled batch order (the source slices sequentially; we shuffle
		// the starting offsets of the batches).
		starts = starts[:0]
		for i := 0; i < n; i += cfg.BatchSize {
			starts = append(starts, i)
		}
		rng.Shuffle(len(starts), func(i, j int) { starts[i], starts[j] = starts[j], starts[i] })
		var epochLoss float64
		for _, st := range starts {
			end := st + cfg.BatchSize
			if end > n {
				end = n
			}
			b := train.Slice(st, end)
			m.ZeroGrad()
			logits := m.Forward(b.X, true)
			grad = tensor.Ensure(grad, logits.Shape...)
			loss := SoftmaxCrossEntropyInto(grad, logits, b.Y)
			m.Backward(grad)
			if cfg.Regularizer != nil {
				cfg.Regularizer(params)
			}
			opt.Step(params)
			epochLoss += loss * float64(end-st)
		}
		lastLoss = epochLoss / float64(n)
		if cfg.Logf != nil {
			cfg.Logf("epoch %d/%d loss %.4f lr %.4f", epoch+1, cfg.Epochs, lastLoss, opt.LR)
		}
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch+1, cfg.Epochs)
		}
	}
	return lastLoss
}

// FitProjected trains with projected forward passes (straight-through
// estimator): before each forward+backward, project replaces quantizable
// weights with their projected image (e.g. binarized values) and returns a
// restore closure; gradients computed against the projected weights are
// then applied to the float master weights. This is how binary-weight
// networks (and RA-BNN) are actually trained — post-hoc binarization of a
// float model destroys it.
func FitProjected(m *Model, train BatchSource, cfg TrainConfig, project func(params []*Param) (restore func())) float64 {
	if cfg.BatchSize <= 0 || cfg.Epochs <= 0 {
		panic("nn: TrainConfig needs positive Epochs and BatchSize")
	}
	if project == nil {
		panic("nn: FitProjected needs a projection")
	}
	opt := NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	rng := stats.NewRNG(cfg.Seed)
	n := train.NumExamples()
	params := m.Params()
	var grad *tensor.Tensor
	var starts []int
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Stop != nil && cfg.Stop() != nil {
			break
		}
		if cfg.LRDropEvery > 0 && epoch > 0 && epoch%cfg.LRDropEvery == 0 {
			opt.LR /= 2
		}
		starts = starts[:0]
		for i := 0; i < n; i += cfg.BatchSize {
			starts = append(starts, i)
		}
		rng.Shuffle(len(starts), func(i, j int) { starts[i], starts[j] = starts[j], starts[i] })
		var epochLoss float64
		for _, st := range starts {
			end := st + cfg.BatchSize
			if end > n {
				end = n
			}
			b := train.Slice(st, end)
			m.ZeroGrad()
			restore := project(params)
			logits := m.Forward(b.X, true)
			grad = tensor.Ensure(grad, logits.Shape...)
			loss := SoftmaxCrossEntropyInto(grad, logits, b.Y)
			m.Backward(grad)
			restore()
			if cfg.Regularizer != nil {
				cfg.Regularizer(params)
			}
			opt.Step(params)
			epochLoss += loss * float64(end-st)
		}
		lastLoss = epochLoss / float64(n)
		if cfg.Logf != nil {
			cfg.Logf("epoch %d/%d loss %.4f lr %.4f", epoch+1, cfg.Epochs, lastLoss, opt.LR)
		}
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch+1, cfg.Epochs)
		}
	}
	return lastLoss
}

// BinaryProjection returns a FitProjected projection that binarizes
// quantizable weights to sign(w) * mean|w| per tensor.
func BinaryProjection() func(params []*Param) (restore func()) {
	var saved [][]float32
	return func(params []*Param) func() {
		if saved == nil {
			saved = make([][]float32, len(params))
			for i, p := range params {
				if p.Quantizable {
					saved[i] = make([]float32, p.W.Len())
				}
			}
		}
		for i, p := range params {
			if !p.Quantizable {
				continue
			}
			copy(saved[i], p.W.Data)
			var sum float64
			for _, w := range p.W.Data {
				if w < 0 {
					sum -= float64(w)
				} else {
					sum += float64(w)
				}
			}
			scale := float32(sum / float64(p.W.Len()))
			for j, w := range p.W.Data {
				if w < 0 {
					p.W.Data[j] = -scale
				} else {
					p.W.Data[j] = scale
				}
			}
		}
		return func() {
			for i, p := range params {
				if p.Quantizable {
					copy(p.W.Data, saved[i])
				}
			}
		}
	}
}

// Evaluate returns the classification accuracy of the model on a source,
// processing batchSize examples at a time in inference mode.
func Evaluate(m *Model, data BatchSource, batchSize int) float64 {
	n := data.NumExamples()
	if n == 0 {
		return 0
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	correct := 0
	var pred []int // reused across batches
	for i := 0; i < n; i += batchSize {
		end := i + batchSize
		if end > n {
			end = n
		}
		b := data.Slice(i, end)
		logits := m.Forward(b.X, false)
		pred = tensor.ArgMaxRowInto(pred, logits)
		for j, p := range pred {
			if p == b.Y[j] {
				correct++
			}
		}
	}
	return float64(correct) / float64(n)
}

// BatchLoss computes the mean cross-entropy of the model on one batch in
// inference mode (used by the attack's candidate evaluation). It does
// not materialise the loss gradient and does not allocate.
func BatchLoss(m *Model, b Batch) float64 {
	logits := m.Forward(b.X, false)
	return SoftmaxLoss(logits, b.Y)
}

// GradientPass runs one forward+backward over the batch and leaves dL/dW
// in the parameter gradients. BatchNorm running statistics are frozen for
// the duration so that probing the model does not perturb its inference
// behaviour. The attacker calls this once per bit-search iteration, so
// the loss gradient comes from the scratch pool instead of the
// allocator.
func GradientPass(m *Model, b Batch) float64 {
	bns := m.BatchNorms()
	m.bnFreeze = m.bnFreeze[:0]
	for _, bn := range bns {
		m.bnFreeze = append(m.bnFreeze, bn.FreezeStats)
		bn.FreezeStats = true
	}
	defer func() {
		for i, bn := range bns {
			bn.FreezeStats = m.bnFreeze[i]
		}
	}()
	m.ZeroGrad()
	logits := m.Forward(b.X, true)
	grad := tensor.GetScratch(logits.Shape[0], logits.Shape[1])
	loss := SoftmaxCrossEntropyInto(grad, logits, b.Y)
	m.Backward(grad)
	tensor.PutScratch(grad)
	return loss
}
