package nn

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	src := newToySource(32, 8)
	m := NewResNet20(2, 0.25, 77)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	Fit(m, src, cfg)

	var buf bytes.Buffer
	if err := SaveCheckpoint(m, &buf); err != nil {
		t.Fatal(err)
	}

	m2 := NewResNet20(2, 0.25, 999) // different init, same architecture
	if err := LoadCheckpoint(m2, &buf); err != nil {
		t.Fatal(err)
	}

	// Same weights, same BN stats: identical inference outputs.
	rng := stats.NewRNG(5)
	x := tensor.New(4, 3, 8, 8)
	x.RandNormal(rng, 1)
	a := m.Forward(x, false)
	b := m2.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("logit %d: %g != %g", i, a.Data[i], b.Data[i])
		}
	}
}

func TestCheckpointArchMismatch(t *testing.T) {
	m := NewResNet20(2, 0.25, 1)
	var buf bytes.Buffer
	if err := SaveCheckpoint(m, &buf); err != nil {
		t.Fatal(err)
	}
	wrongWidth := NewResNet20(2, 0.5, 1)
	if err := LoadCheckpoint(wrongWidth, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("loading into a wider model must fail")
	}
	wrongArch := NewVGG11(2, 0.25, 1)
	if err := LoadCheckpoint(wrongArch, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("loading into a different architecture must fail")
	}
}

func TestCheckpointCorruptHeader(t *testing.T) {
	m := NewResNet20(2, 0.25, 1)
	if err := LoadCheckpoint(m, strings.NewReader("XXXX garbage")); err == nil {
		t.Fatal("bad magic must fail")
	}
	if err := LoadCheckpoint(m, strings.NewReader("DL")); err == nil {
		t.Fatal("truncated magic must fail")
	}
}

func TestCheckpointTruncatedPayload(t *testing.T) {
	m := NewResNet20(2, 0.25, 1)
	var buf bytes.Buffer
	if err := SaveCheckpoint(m, &buf); err != nil {
		t.Fatal(err)
	}
	half := buf.Bytes()[:buf.Len()/2]
	if err := LoadCheckpoint(NewResNet20(2, 0.25, 1), bytes.NewReader(half)); err == nil {
		t.Fatal("truncated checkpoint must fail")
	}
}
