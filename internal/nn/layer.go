// Package nn implements the DNN substrate of the reproduction: layers with
// explicit forward/backward passes, the ResNet-20 and VGG-11 architectures
// the paper evaluates, an SGD trainer, and cross-entropy loss. Gradients
// with respect to weights — required by the progressive bit search of the
// Bit-Flip Attack — come out of the same backward pass used for training.
//
// Memory discipline: the attack/defense loops re-evaluate the same
// networks thousands of times, so the hot path must not allocate. Every
// layer owns its activation and gradient buffers and reuses them across
// steps (tensor.Ensure), transient GEMM outputs come from the shared
// scratch pool (tensor.GetScratch/PutScratch), and conv layers keep their
// im2col/col2im matrices alive between steps. The contract this buys is:
// a tensor returned by Forward or Backward is owned by the layer and
// valid only until that layer's next Forward/Backward call — callers that
// need persistence must Clone.
package nn

import (
	"fmt"
	"math"

	"repro/internal/par"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// bnMinWork is the minimum per-chunk element count before the BatchNorm
// channel loops fan out goroutines (the kernels are ~8 flops/element).
const bnMinWork = 1 << 13

// Param is one learnable parameter with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
	// NoDecay excludes the parameter from weight decay (biases, BN).
	NoDecay bool
	// Quantizable marks weight matrices eligible for 8-bit quantization
	// and therefore exposed to the bit-flip attack surface.
	Quantizable bool
}

// newParam allocates a parameter and its gradient.
func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// Layer is a differentiable module.
type Layer interface {
	// Forward computes the layer output; train toggles training behaviour
	// (BatchNorm statistics). Implementations cache what Backward needs.
	// The returned tensor is a layer-owned buffer, valid until the next
	// Forward call on this layer.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes dL/dout and returns dL/din, accumulating dL/dW
	// into the layer's parameter gradients. The returned tensor is a
	// layer-owned buffer, valid until the next Backward call.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params lists learnable parameters (may be empty).
	Params() []*Param
	// Name identifies the layer instance.
	Name() string
}

// --- Conv2D -------------------------------------------------------------------

// Conv2D is a 2-D convolution with square kernels, implemented by im2col
// lowering to matrix multiplication. The im2col matrix and the output /
// input-gradient buffers persist across steps.
type Conv2D struct {
	LayerName           string
	InC, OutC           int
	Kernel, Stride, Pad int
	Bias                bool

	Weight *Param // (OutC, InC*K*K)
	B      *Param // (OutC)

	// cached forward state and reusable buffers
	cols       *tensor.Tensor
	out        *tensor.Tensor
	dx         *tensor.Tensor
	inShape    []int
	outH, outW int
}

// NewConv2D constructs a convolution layer with Kaiming init.
func NewConv2D(name string, inC, outC, kernel, stride, pad int, bias bool, rng *stats.RNG) *Conv2D {
	c := &Conv2D{
		LayerName: name, InC: inC, OutC: outC,
		Kernel: kernel, Stride: stride, Pad: pad, Bias: bias,
	}
	c.Weight = newParam(name+".weight", outC, inC*kernel*kernel)
	c.Weight.Quantizable = true
	c.Weight.W.KaimingInit(rng, inC*kernel*kernel)
	if bias {
		c.B = newParam(name+".bias", outC)
		c.B.NoDecay = true
	}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.LayerName }

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.B != nil {
		return []*Param{c.Weight, c.B}
	}
	return []*Param{c.Weight}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: %s expects (N,%d,H,W), got %v", c.LayerName, c.InC, x.Shape))
	}
	n := x.Shape[0]
	outH, outW := tensor.ConvOutDims(x.Shape[2], x.Shape[3], c.Kernel, c.Kernel, c.Stride, c.Pad)
	c.inShape = append(c.inShape[:0], x.Shape...)
	c.outH, c.outW = outH, outW
	rows := n * outH * outW
	c.cols = tensor.Ensure(c.cols, rows, c.InC*c.Kernel*c.Kernel)
	tensor.Im2ColInto(c.cols, x, c.Kernel, c.Kernel, c.Stride, c.Pad)

	// (N*oh*ow, inC*k*k) x (inC*k*k, outC) = cols * Wᵀ, with the bias add
	// fused into the GEMM epilogue.
	var bias []float32
	if c.B != nil {
		bias = c.B.W.Data
	}
	out2 := tensor.GetScratch(rows, c.OutC) // (N*oh*ow, outC)
	tensor.MatMulTransBBiasInto(out2, c.cols, c.Weight.W, bias)

	// Rearrange to (N, outC, oh, ow).
	c.out = tensor.Ensure(c.out, n, c.OutC, outH, outW)
	hw := outH * outW
	for img := 0; img < n; img++ {
		for oc := 0; oc < c.OutC; oc++ {
			dst := c.out.Data[(img*c.OutC+oc)*hw : (img*c.OutC+oc)*hw+hw]
			src := out2.Data[img*hw*c.OutC+oc:]
			for p := range dst {
				dst[p] = src[p*c.OutC]
			}
		}
	}
	tensor.PutScratch(out2)
	return c.out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Shape[0]
	hw := c.outH * c.outW
	rows := n * hw
	// Rearrange grad (N, outC, oh, ow) to (N*oh*ow, outC).
	g2 := tensor.GetScratch(rows, c.OutC)
	for img := 0; img < n; img++ {
		for oc := 0; oc < c.OutC; oc++ {
			src := grad.Data[(img*c.OutC+oc)*hw : (img*c.OutC+oc)*hw+hw]
			dst := g2.Data[img*hw*c.OutC+oc:]
			for p, v := range src {
				dst[p*c.OutC] = v
			}
		}
	}
	// dW += g2ᵀ * cols -> (outC, inC*k*k), accumulated straight into the
	// gradient tensor with no intermediate.
	tensor.MatMulTransAAcc(c.Weight.Grad, g2, c.cols)
	// dCols = g2 * W -> (N*oh*ow, inC*k*k), scattered back to image space.
	dcols := tensor.GetScratch(rows, c.InC*c.Kernel*c.Kernel)
	tensor.MatMulInto(dcols, g2, c.Weight.W)
	c.dx = tensor.Ensure(c.dx, c.inShape...)
	tensor.Col2ImInto(c.dx, dcols, c.Kernel, c.Kernel, c.Stride, c.Pad)
	tensor.PutScratch(dcols)
	if c.B != nil {
		for r := 0; r < rows; r++ {
			row := g2.Data[r*c.OutC : (r+1)*c.OutC]
			for oc, v := range row {
				c.B.Grad.Data[oc] += v
			}
		}
	}
	tensor.PutScratch(g2)
	return c.dx
}

// --- Linear -------------------------------------------------------------------

// Linear is a fully connected layer y = xW^T + b.
type Linear struct {
	LayerName string
	In, Out   int
	Weight    *Param // (Out, In)
	B         *Param // (Out)

	x       *tensor.Tensor
	out, dx *tensor.Tensor
}

// NewLinear constructs a fully connected layer.
func NewLinear(name string, in, out int, rng *stats.RNG) *Linear {
	l := &Linear{LayerName: name, In: in, Out: out}
	l.Weight = newParam(name+".weight", out, in)
	l.Weight.Quantizable = true
	l.Weight.W.KaimingInit(rng, in)
	l.B = newParam(name+".bias", out)
	l.B.NoDecay = true
	return l
}

// Name implements Layer.
func (l *Linear) Name() string { return l.LayerName }

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.B} }

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 2 || x.Shape[1] != l.In {
		panic(fmt.Sprintf("nn: %s expects (N,%d), got %v", l.LayerName, l.In, x.Shape))
	}
	l.x = x
	l.out = tensor.Ensure(l.out, x.Shape[0], l.Out)
	tensor.MatMulTransBBiasInto(l.out, x, l.Weight.W, l.B.W.Data) // (N, Out) + b
	return l.out
}

// Backward implements Layer.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	// dW += gradᵀ x -> (Out, In)
	tensor.MatMulTransAAcc(l.Weight.Grad, grad, l.x)
	n := grad.Shape[0]
	for i := 0; i < n; i++ {
		row := grad.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			l.B.Grad.Data[j] += row[j]
		}
	}
	l.dx = tensor.Ensure(l.dx, n, l.In)
	tensor.MatMulInto(l.dx, grad, l.Weight.W) // (N, In)
	return l.dx
}

// --- ReLU ---------------------------------------------------------------------

// ReLU is the rectified linear activation.
type ReLU struct {
	LayerName string
	mask      []bool
	out, dx   *tensor.Tensor
}

// NewReLU constructs a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{LayerName: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.LayerName }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.out = tensor.Ensure(r.out, x.Shape...)
	r.mask = ensureMask(r.mask, len(x.Data))
	for i, v := range x.Data {
		if v <= 0 {
			r.out.Data[i] = 0
			r.mask[i] = false
		} else {
			r.out.Data[i] = v
			r.mask[i] = true
		}
	}
	return r.out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	r.dx = tensor.Ensure(r.dx, grad.Shape...)
	for i, v := range grad.Data {
		if r.mask[i] {
			r.dx.Data[i] = v
		} else {
			r.dx.Data[i] = 0
		}
	}
	return r.dx
}

// ensureMask resizes a reusable bool mask.
func ensureMask(m []bool, n int) []bool {
	if cap(m) < n {
		return make([]bool, n)
	}
	return m[:n]
}

// --- BatchNorm2D --------------------------------------------------------------

// BatchNorm2D normalises per channel over (N, H, W) with learnable scale
// and shift, tracking running statistics for inference. The per-channel
// mean/variance reductions are independent, so channels are processed in
// parallel under the worker budget; each channel's accumulation order is
// fixed, keeping results bit-identical at any budget.
type BatchNorm2D struct {
	LayerName string
	C         int
	Momentum  float64
	Eps       float64
	// FreezeStats suppresses running-statistics updates during train-mode
	// forwards. The bit-flip attack sets this while computing gradients so
	// that probing the model does not perturb its inference behaviour.
	FreezeStats bool

	Gamma *Param
	Beta  *Param

	RunningMean []float64
	RunningVar  []float64

	// cached forward state and reusable buffers
	xhat    *tensor.Tensor
	out, dx *tensor.Tensor
	invStd  []float64
	inShape []int
}

// NewBatchNorm2D constructs a batch normalisation layer.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		LayerName: name, C: c, Momentum: 0.1, Eps: 1e-5,
		Gamma: newParam(name+".gamma", c), Beta: newParam(name+".beta", c),
		RunningMean: make([]float64, c), RunningVar: make([]float64, c),
	}
	bn.Gamma.NoDecay = true
	bn.Beta.NoDecay = true
	bn.Gamma.W.Fill(1)
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

// Name implements Layer.
func (bn *BatchNorm2D) Name() string { return bn.LayerName }

// Params implements Layer.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Forward implements Layer.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != bn.C {
		panic(fmt.Sprintf("nn: %s expects (N,%d,H,W), got %v", bn.LayerName, bn.C, x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	hw := h * w
	bn.out = tensor.Ensure(bn.out, n, c, h, w)
	bn.inShape = append(bn.inShape[:0], x.Shape...)
	grain := par.Grain(n*hw*8, bnMinWork)
	if train {
		bn.xhat = tensor.Ensure(bn.xhat, n, c, h, w)
		if cap(bn.invStd) < c {
			bn.invStd = make([]float64, c)
		}
		bn.invStd = bn.invStd[:c]
		if par.WorthIt(c, grain) {
			par.For(c, grain, func(lo, hi int) { bn.forwardTrain(x, lo, hi) })
		} else {
			bn.forwardTrain(x, 0, c)
		}
		return bn.out
	}
	if par.WorthIt(c, grain) {
		par.For(c, grain, func(lo, hi int) { bn.forwardEval(x, lo, hi) })
	} else {
		bn.forwardEval(x, 0, c)
	}
	return bn.out
}

// forwardTrain normalises channels [c0,c1) with batch statistics. Each
// channel's reduction runs in the same order as the serial code, so the
// parallel split cannot change a bit of the output.
func (bn *BatchNorm2D) forwardTrain(x *tensor.Tensor, c0, c1 int) {
	n, c := bn.inShape[0], bn.inShape[1]
	hw := bn.inShape[2] * bn.inShape[3]
	cnt := float64(n * hw)
	for ch := c0; ch < c1; ch++ {
		var mean float64
		for img := 0; img < n; img++ {
			base := (img*c + ch) * hw
			row := x.Data[base : base+hw]
			for _, v := range row {
				mean += float64(v)
			}
		}
		mean /= cnt
		var variance float64
		for img := 0; img < n; img++ {
			base := (img*c + ch) * hw
			row := x.Data[base : base+hw]
			for _, v := range row {
				d := float64(v) - mean
				variance += d * d
			}
		}
		variance /= cnt
		if !bn.FreezeStats {
			bn.RunningMean[ch] = (1-bn.Momentum)*bn.RunningMean[ch] + bn.Momentum*mean
			bn.RunningVar[ch] = (1-bn.Momentum)*bn.RunningVar[ch] + bn.Momentum*variance
		}
		inv := 1 / math.Sqrt(variance+bn.Eps)
		bn.invStd[ch] = inv
		g := float64(bn.Gamma.W.Data[ch])
		b := float64(bn.Beta.W.Data[ch])
		for img := 0; img < n; img++ {
			base := (img*c + ch) * hw
			for p := 0; p < hw; p++ {
				xh := (float64(x.Data[base+p]) - mean) * inv
				bn.xhat.Data[base+p] = float32(xh)
				bn.out.Data[base+p] = float32(g*xh + b)
			}
		}
	}
}

// forwardEval normalises channels [c0,c1) with running statistics.
func (bn *BatchNorm2D) forwardEval(x *tensor.Tensor, c0, c1 int) {
	n, c := bn.inShape[0], bn.inShape[1]
	hw := bn.inShape[2] * bn.inShape[3]
	for ch := c0; ch < c1; ch++ {
		inv := 1 / math.Sqrt(bn.RunningVar[ch]+bn.Eps)
		mean := bn.RunningMean[ch]
		g := float64(bn.Gamma.W.Data[ch])
		b := float64(bn.Beta.W.Data[ch])
		for img := 0; img < n; img++ {
			base := (img*c + ch) * hw
			for p := 0; p < hw; p++ {
				bn.out.Data[base+p] = float32(g*(float64(x.Data[base+p])-mean)*inv + b)
			}
		}
	}
}

// Backward implements Layer (training-mode gradient).
func (bn *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c := bn.inShape[0], bn.inShape[1]
	hw := bn.inShape[2] * bn.inShape[3]
	bn.dx = tensor.Ensure(bn.dx, bn.inShape...)
	grain := par.Grain(n*hw*10, bnMinWork)
	if par.WorthIt(c, grain) {
		par.For(c, grain, func(lo, hi int) { bn.backwardChannels(grad, lo, hi) })
	} else {
		bn.backwardChannels(grad, 0, c)
	}
	return bn.dx
}

// backwardChannels computes the training-mode gradient for channels
// [c0,c1). Channels write disjoint slices of dx and distinct Gamma/Beta
// gradient elements, so parallel execution is race-free and exact.
func (bn *BatchNorm2D) backwardChannels(grad *tensor.Tensor, c0, c1 int) {
	n, c := bn.inShape[0], bn.inShape[1]
	hw := bn.inShape[2] * bn.inShape[3]
	cnt := float64(n * hw)
	for ch := c0; ch < c1; ch++ {
		var sumG, sumGX float64
		for img := 0; img < n; img++ {
			base := (img*c + ch) * hw
			for p := 0; p < hw; p++ {
				g := float64(grad.Data[base+p])
				sumG += g
				sumGX += g * float64(bn.xhat.Data[base+p])
			}
		}
		bn.Beta.Grad.Data[ch] += float32(sumG)
		bn.Gamma.Grad.Data[ch] += float32(sumGX)
		gamma := float64(bn.Gamma.W.Data[ch])
		inv := bn.invStd[ch]
		for img := 0; img < n; img++ {
			base := (img*c + ch) * hw
			for p := 0; p < hw; p++ {
				g := float64(grad.Data[base+p])
				xh := float64(bn.xhat.Data[base+p])
				bn.dx.Data[base+p] = float32(gamma * inv * (g - sumG/cnt - xh*sumGX/cnt))
			}
		}
	}
}

// --- Pooling ------------------------------------------------------------------

// MaxPool2 is a 2x2 max pooling with stride 2. When the spatial map is
// already down to a single row or column the layer passes through
// unchanged, so fixed architectures (VGG's five pool stages) accept small
// inputs.
type MaxPool2 struct {
	LayerName string
	argmax    []int
	inShape   []int
	identity  bool
	out, dx   *tensor.Tensor
}

// NewMaxPool2 constructs the pooling layer.
func NewMaxPool2(name string) *MaxPool2 { return &MaxPool2{LayerName: name} }

// Name implements Layer.
func (m *MaxPool2) Name() string { return m.LayerName }

// Params implements Layer.
func (m *MaxPool2) Params() []*Param { return nil }

// Forward implements Layer.
func (m *MaxPool2) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	m.inShape = append(m.inShape[:0], x.Shape...)
	if h < 2 || w < 2 {
		m.identity = true
		return x
	}
	m.identity = false
	oh, ow := h/2, w/2
	m.out = tensor.Ensure(m.out, n, c, oh, ow)
	if cap(m.argmax) < m.out.Len() {
		m.argmax = make([]int, m.out.Len())
	}
	m.argmax = m.argmax[:m.out.Len()]
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			inBase := (img*c + ch) * h * w
			outBase := (img*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := inBase + (2*oy)*w + 2*ox
					bv := x.Data[best]
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							idx := inBase + (2*oy+dy)*w + 2*ox + dx
							if x.Data[idx] > bv {
								bv = x.Data[idx]
								best = idx
							}
						}
					}
					o := outBase + oy*ow + ox
					m.out.Data[o] = bv
					m.argmax[o] = best
				}
			}
		}
	}
	return m.out
}

// Backward implements Layer.
func (m *MaxPool2) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if m.identity {
		return grad
	}
	m.dx = tensor.Ensure(m.dx, m.inShape...)
	m.dx.Zero()
	for o, src := range m.argmax {
		m.dx.Data[src] += grad.Data[o]
	}
	return m.dx
}

// GlobalAvgPool averages each channel map to a single value, producing
// (N, C) from (N, C, H, W).
type GlobalAvgPool struct {
	LayerName string
	inShape   []int
	out, dx   *tensor.Tensor
}

// NewGlobalAvgPool constructs the pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{LayerName: name} }

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return g.LayerName }

// Params implements Layer.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	g.inShape = append(g.inShape[:0], x.Shape...)
	g.out = tensor.Ensure(g.out, n, c)
	hw := h * w
	inv := 1 / float32(hw)
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * hw
			var s float32
			for p := 0; p < hw; p++ {
				s += x.Data[base+p]
			}
			g.out.Data[img*c+ch] = s * inv
		}
	}
	return g.out
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c := g.inShape[0], g.inShape[1]
	hw := g.inShape[2] * g.inShape[3]
	g.dx = tensor.Ensure(g.dx, g.inShape...)
	inv := 1 / float32(hw)
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			gv := grad.Data[img*c+ch] * inv
			base := (img*c + ch) * hw
			for p := 0; p < hw; p++ {
				g.dx.Data[base+p] = gv
			}
		}
	}
	return g.dx
}

// Flatten reshapes (N, C, H, W) to (N, C*H*W).
type Flatten struct {
	LayerName string
	inShape   []int
	// cached view headers so reshaping allocates nothing
	view, bview tensor.Tensor
}

// NewFlatten constructs the reshape layer.
func NewFlatten(name string) *Flatten { return &Flatten{LayerName: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.LayerName }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape...)
	n := x.Shape[0]
	f.view.Data = x.Data
	f.view.Shape = append(f.view.Shape[:0], n, x.Len()/n)
	return &f.view
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	f.bview.Data = grad.Data
	f.bview.Shape = append(f.bview.Shape[:0], f.inShape...)
	return &f.bview
}
