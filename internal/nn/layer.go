// Package nn implements the DNN substrate of the reproduction: layers with
// explicit forward/backward passes, the ResNet-20 and VGG-11 architectures
// the paper evaluates, an SGD trainer, and cross-entropy loss. Gradients
// with respect to weights — required by the progressive bit search of the
// Bit-Flip Attack — come out of the same backward pass used for training.
package nn

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// Param is one learnable parameter with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
	// NoDecay excludes the parameter from weight decay (biases, BN).
	NoDecay bool
	// Quantizable marks weight matrices eligible for 8-bit quantization
	// and therefore exposed to the bit-flip attack surface.
	Quantizable bool
}

// newParam allocates a parameter and its gradient.
func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// Layer is a differentiable module.
type Layer interface {
	// Forward computes the layer output; train toggles training behaviour
	// (BatchNorm statistics). Implementations cache what Backward needs.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes dL/dout and returns dL/din, accumulating dL/dW
	// into the layer's parameter gradients.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params lists learnable parameters (may be empty).
	Params() []*Param
	// Name identifies the layer instance.
	Name() string
}

// --- Conv2D -------------------------------------------------------------------

// Conv2D is a 2-D convolution with square kernels, implemented by im2col
// lowering to matrix multiplication.
type Conv2D struct {
	LayerName           string
	InC, OutC           int
	Kernel, Stride, Pad int
	Bias                bool

	Weight *Param // (OutC, InC*K*K)
	B      *Param // (OutC)

	// cached forward state
	cols       *tensor.Tensor
	inShape    []int
	outH, outW int
}

// NewConv2D constructs a convolution layer with Kaiming init.
func NewConv2D(name string, inC, outC, kernel, stride, pad int, bias bool, rng *stats.RNG) *Conv2D {
	c := &Conv2D{
		LayerName: name, InC: inC, OutC: outC,
		Kernel: kernel, Stride: stride, Pad: pad, Bias: bias,
	}
	c.Weight = newParam(name+".weight", outC, inC*kernel*kernel)
	c.Weight.Quantizable = true
	c.Weight.W.KaimingInit(rng, inC*kernel*kernel)
	if bias {
		c.B = newParam(name+".bias", outC)
		c.B.NoDecay = true
	}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.LayerName }

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.B != nil {
		return []*Param{c.Weight, c.B}
	}
	return []*Param{c.Weight}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: %s expects (N,%d,H,W), got %v", c.LayerName, c.InC, x.Shape))
	}
	n := x.Shape[0]
	cols, outH, outW := tensor.Im2Col(x, c.Kernel, c.Kernel, c.Stride, c.Pad)
	c.cols = cols
	c.inShape = append([]int(nil), x.Shape...)
	c.outH, c.outW = outH, outW
	// (N*oh*ow, inC*k*k) x (inC*k*k, outC) = cols * Wᵀ
	out2 := tensor.MatMulTransB(cols, c.Weight.W) // (N*oh*ow, outC)
	// Rearrange to (N, outC, oh, ow).
	out := tensor.New(n, c.OutC, outH, outW)
	hw := outH * outW
	for img := 0; img < n; img++ {
		for p := 0; p < hw; p++ {
			src := (img*hw + p) * c.OutC
			for oc := 0; oc < c.OutC; oc++ {
				out.Data[(img*c.OutC+oc)*hw+p] = out2.Data[src+oc]
			}
		}
	}
	if c.B != nil {
		for img := 0; img < n; img++ {
			for oc := 0; oc < c.OutC; oc++ {
				bias := c.B.W.Data[oc]
				base := (img*c.OutC + oc) * hw
				for p := 0; p < hw; p++ {
					out.Data[base+p] += bias
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Shape[0]
	hw := c.outH * c.outW
	// Rearrange grad (N, outC, oh, ow) to (N*oh*ow, outC).
	g2 := tensor.New(n*hw, c.OutC)
	for img := 0; img < n; img++ {
		for oc := 0; oc < c.OutC; oc++ {
			base := (img*c.OutC + oc) * hw
			for p := 0; p < hw; p++ {
				g2.Data[(img*hw+p)*c.OutC+oc] = grad.Data[base+p]
			}
		}
	}
	// dW = g2ᵀ * cols  -> (outC, inC*k*k)
	dw := tensor.MatMulTransA(g2, c.cols)
	c.Weight.Grad.Add(dw)
	// dCols = g2 * W -> (N*oh*ow, inC*k*k)
	dcols := tensor.MatMul(g2, c.Weight.W)
	dx := tensor.Col2Im(dcols, c.inShape[0], c.inShape[1], c.inShape[2], c.inShape[3],
		c.Kernel, c.Kernel, c.Stride, c.Pad)
	if c.B != nil {
		rows := n * hw
		for r := 0; r < rows; r++ {
			row := g2.Data[r*c.OutC : (r+1)*c.OutC]
			for oc, v := range row {
				c.B.Grad.Data[oc] += v
			}
		}
	}
	return dx
}

// --- Linear -------------------------------------------------------------------

// Linear is a fully connected layer y = xW^T + b.
type Linear struct {
	LayerName string
	In, Out   int
	Weight    *Param // (Out, In)
	B         *Param // (Out)

	x *tensor.Tensor
}

// NewLinear constructs a fully connected layer.
func NewLinear(name string, in, out int, rng *stats.RNG) *Linear {
	l := &Linear{LayerName: name, In: in, Out: out}
	l.Weight = newParam(name+".weight", out, in)
	l.Weight.Quantizable = true
	l.Weight.W.KaimingInit(rng, in)
	l.B = newParam(name+".bias", out)
	l.B.NoDecay = true
	return l
}

// Name implements Layer.
func (l *Linear) Name() string { return l.LayerName }

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.B} }

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 2 || x.Shape[1] != l.In {
		panic(fmt.Sprintf("nn: %s expects (N,%d), got %v", l.LayerName, l.In, x.Shape))
	}
	l.x = x
	out := tensor.MatMulTransB(x, l.Weight.W) // (N, Out)
	n := x.Shape[0]
	for i := 0; i < n; i++ {
		row := out.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.B.W.Data[j]
		}
	}
	return out
}

// Backward implements Layer.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	// dW = gradᵀ x -> (Out, In)
	dw := tensor.MatMulTransA(grad, l.x)
	l.Weight.Grad.Add(dw)
	n := grad.Shape[0]
	for i := 0; i < n; i++ {
		row := grad.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			l.B.Grad.Data[j] += row[j]
		}
	}
	return tensor.MatMul(grad, l.Weight.W) // (N, In)
}

// --- ReLU ---------------------------------------------------------------------

// ReLU is the rectified linear activation.
type ReLU struct {
	LayerName string
	mask      []bool
}

// NewReLU constructs a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{LayerName: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.LayerName }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 0
			r.mask[i] = false
		} else {
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// --- BatchNorm2D --------------------------------------------------------------

// BatchNorm2D normalises per channel over (N, H, W) with learnable scale
// and shift, tracking running statistics for inference.
type BatchNorm2D struct {
	LayerName string
	C         int
	Momentum  float64
	Eps       float64
	// FreezeStats suppresses running-statistics updates during train-mode
	// forwards. The bit-flip attack sets this while computing gradients so
	// that probing the model does not perturb its inference behaviour.
	FreezeStats bool

	Gamma *Param
	Beta  *Param

	RunningMean []float64
	RunningVar  []float64

	// cached forward state
	xhat    *tensor.Tensor
	invStd  []float64
	inShape []int
}

// NewBatchNorm2D constructs a batch normalisation layer.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		LayerName: name, C: c, Momentum: 0.1, Eps: 1e-5,
		Gamma: newParam(name+".gamma", c), Beta: newParam(name+".beta", c),
		RunningMean: make([]float64, c), RunningVar: make([]float64, c),
	}
	bn.Gamma.NoDecay = true
	bn.Beta.NoDecay = true
	bn.Gamma.W.Fill(1)
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

// Name implements Layer.
func (bn *BatchNorm2D) Name() string { return bn.LayerName }

// Params implements Layer.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Forward implements Layer.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != bn.C {
		panic(fmt.Sprintf("nn: %s expects (N,%d,H,W), got %v", bn.LayerName, bn.C, x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	hw := h * w
	out := tensor.New(n, c, h, w)
	bn.inShape = append([]int(nil), x.Shape...)
	if train {
		bn.xhat = tensor.New(n, c, h, w)
		if cap(bn.invStd) < c {
			bn.invStd = make([]float64, c)
		}
		bn.invStd = bn.invStd[:c]
		cnt := float64(n * hw)
		for ch := 0; ch < c; ch++ {
			var mean float64
			for img := 0; img < n; img++ {
				base := (img*c + ch) * hw
				for p := 0; p < hw; p++ {
					mean += float64(x.Data[base+p])
				}
			}
			mean /= cnt
			var variance float64
			for img := 0; img < n; img++ {
				base := (img*c + ch) * hw
				for p := 0; p < hw; p++ {
					d := float64(x.Data[base+p]) - mean
					variance += d * d
				}
			}
			variance /= cnt
			if !bn.FreezeStats {
				bn.RunningMean[ch] = (1-bn.Momentum)*bn.RunningMean[ch] + bn.Momentum*mean
				bn.RunningVar[ch] = (1-bn.Momentum)*bn.RunningVar[ch] + bn.Momentum*variance
			}
			inv := 1 / math.Sqrt(variance+bn.Eps)
			bn.invStd[ch] = inv
			g := float64(bn.Gamma.W.Data[ch])
			b := float64(bn.Beta.W.Data[ch])
			for img := 0; img < n; img++ {
				base := (img*c + ch) * hw
				for p := 0; p < hw; p++ {
					xh := (float64(x.Data[base+p]) - mean) * inv
					bn.xhat.Data[base+p] = float32(xh)
					out.Data[base+p] = float32(g*xh + b)
				}
			}
		}
		return out
	}
	// Inference path uses running statistics.
	for ch := 0; ch < c; ch++ {
		inv := 1 / math.Sqrt(bn.RunningVar[ch]+bn.Eps)
		mean := bn.RunningMean[ch]
		g := float64(bn.Gamma.W.Data[ch])
		b := float64(bn.Beta.W.Data[ch])
		for img := 0; img < n; img++ {
			base := (img*c + ch) * hw
			for p := 0; p < hw; p++ {
				out.Data[base+p] = float32(g*(float64(x.Data[base+p])-mean)*inv + b)
			}
		}
	}
	return out
}

// Backward implements Layer (training-mode gradient).
func (bn *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c := bn.inShape[0], bn.inShape[1]
	hw := bn.inShape[2] * bn.inShape[3]
	cnt := float64(n * hw)
	dx := tensor.New(bn.inShape[0], bn.inShape[1], bn.inShape[2], bn.inShape[3])
	for ch := 0; ch < c; ch++ {
		var sumG, sumGX float64
		for img := 0; img < n; img++ {
			base := (img*c + ch) * hw
			for p := 0; p < hw; p++ {
				g := float64(grad.Data[base+p])
				sumG += g
				sumGX += g * float64(bn.xhat.Data[base+p])
			}
		}
		bn.Beta.Grad.Data[ch] += float32(sumG)
		bn.Gamma.Grad.Data[ch] += float32(sumGX)
		gamma := float64(bn.Gamma.W.Data[ch])
		inv := bn.invStd[ch]
		for img := 0; img < n; img++ {
			base := (img*c + ch) * hw
			for p := 0; p < hw; p++ {
				g := float64(grad.Data[base+p])
				xh := float64(bn.xhat.Data[base+p])
				dx.Data[base+p] = float32(gamma * inv * (g - sumG/cnt - xh*sumGX/cnt))
			}
		}
	}
	return dx
}

// --- Pooling ------------------------------------------------------------------

// MaxPool2 is a 2x2 max pooling with stride 2. When the spatial map is
// already down to a single row or column the layer passes through
// unchanged, so fixed architectures (VGG's five pool stages) accept small
// inputs.
type MaxPool2 struct {
	LayerName string
	argmax    []int
	inShape   []int
	identity  bool
}

// NewMaxPool2 constructs the pooling layer.
func NewMaxPool2(name string) *MaxPool2 { return &MaxPool2{LayerName: name} }

// Name implements Layer.
func (m *MaxPool2) Name() string { return m.LayerName }

// Params implements Layer.
func (m *MaxPool2) Params() []*Param { return nil }

// Forward implements Layer.
func (m *MaxPool2) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	m.inShape = append([]int(nil), x.Shape...)
	if h < 2 || w < 2 {
		m.identity = true
		return x
	}
	m.identity = false
	oh, ow := h/2, w/2
	out := tensor.New(n, c, oh, ow)
	if cap(m.argmax) < out.Len() {
		m.argmax = make([]int, out.Len())
	}
	m.argmax = m.argmax[:out.Len()]
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			inBase := (img*c + ch) * h * w
			outBase := (img*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := inBase + (2*oy)*w + 2*ox
					bv := x.Data[best]
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							idx := inBase + (2*oy+dy)*w + 2*ox + dx
							if x.Data[idx] > bv {
								bv = x.Data[idx]
								best = idx
							}
						}
					}
					o := outBase + oy*ow + ox
					out.Data[o] = bv
					m.argmax[o] = best
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if m.identity {
		return grad
	}
	dx := tensor.New(m.inShape[0], m.inShape[1], m.inShape[2], m.inShape[3])
	for o, src := range m.argmax {
		dx.Data[src] += grad.Data[o]
	}
	return dx
}

// GlobalAvgPool averages each channel map to a single value, producing
// (N, C) from (N, C, H, W).
type GlobalAvgPool struct {
	LayerName string
	inShape   []int
}

// NewGlobalAvgPool constructs the pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{LayerName: name} }

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return g.LayerName }

// Params implements Layer.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	g.inShape = append([]int(nil), x.Shape...)
	out := tensor.New(n, c)
	hw := h * w
	inv := 1 / float32(hw)
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * hw
			var s float32
			for p := 0; p < hw; p++ {
				s += x.Data[base+p]
			}
			out.Data[img*c+ch] = s * inv
		}
	}
	return out
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := g.inShape[0], g.inShape[1], g.inShape[2], g.inShape[3]
	dx := tensor.New(n, c, h, w)
	hw := h * w
	inv := 1 / float32(hw)
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			gv := grad.Data[img*c+ch] * inv
			base := (img*c + ch) * hw
			for p := 0; p < hw; p++ {
				dx.Data[base+p] = gv
			}
		}
	}
	return dx
}

// Flatten reshapes (N, C, H, W) to (N, C*H*W).
type Flatten struct {
	LayerName string
	inShape   []int
}

// NewFlatten constructs the reshape layer.
func NewFlatten(name string) *Flatten { return &Flatten{LayerName: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.LayerName }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append([]int(nil), x.Shape...)
	n := x.Shape[0]
	return x.Reshape(n, x.Len()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}
