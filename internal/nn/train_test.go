package nn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// toySource is a fixed in-memory BatchSource around two Gaussian blobs.
type toySource struct {
	x []float32
	y []int
	n int
}

func newToySource(n int, seed uint64) *toySource {
	rng := stats.NewRNG(seed)
	s := &toySource{n: n}
	s.x = make([]float32, n*3*8*8)
	s.y = make([]int, n)
	per := 3 * 8 * 8
	for i := 0; i < n; i++ {
		c := i % 2
		s.y[i] = c
		mean := float64(c)*2 - 1
		for j := 0; j < per; j++ {
			s.x[i*per+j] = float32(rng.Normal(mean, 0.5))
		}
	}
	return s
}

func (s *toySource) NumExamples() int { return s.n }

func (s *toySource) Slice(i, j int) Batch {
	per := 3 * 8 * 8
	return Batch{X: tensor.FromData(s.x[i*per:j*per], j-i, 3, 8, 8), Y: s.y[i:j]}
}

func TestFitReducesLossAndLearns(t *testing.T) {
	src := newToySource(64, 42)
	m := NewResNet20(2, 0.25, 9)

	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	first := Fit(m, src, cfg)
	cfg.Epochs = 4
	last := Fit(m, src, cfg)
	if last >= first {
		t.Fatalf("loss did not decrease: %g -> %g", first, last)
	}
	if acc := Evaluate(m, src, 16); acc < 0.9 {
		t.Fatalf("train accuracy %g, want >= 0.9 on a separable toy task", acc)
	}
}

// TestFitStopHookAbortsTraining: the per-epoch Stop poll ends training
// early — the cancellation path of the experiment harness.
func TestFitStopHookAbortsTraining(t *testing.T) {
	src := newToySource(32, 7)
	m := NewResNet20(2, 0.25, 9)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 50
	polls := 0
	stopErr := errors.New("training cancelled")
	cfg.Stop = func() error {
		polls++
		if polls > 2 {
			return stopErr
		}
		return nil
	}
	Fit(m, src, cfg)
	if polls != 3 {
		t.Fatalf("Stop polled %d times, want 3 (two epochs then abort)", polls)
	}

	polls = 0
	FitProjected(m, src, cfg, BinaryProjection())
	if polls != 3 {
		t.Fatalf("projected: Stop polled %d times, want 3", polls)
	}
}

func TestSGDMomentumMovesFasterThanPlain(t *testing.T) {
	// One parameter, constant gradient: with momentum the cumulative step
	// after k iterations is strictly larger.
	mkParam := func() *Param {
		p := &Param{Name: "w", W: tensor.New(1), Grad: tensor.New(1)}
		p.W.Data[0] = 1
		return p
	}
	run := func(momentum float64) float32 {
		p := mkParam()
		opt := NewSGD(0.1, momentum, 0)
		for i := 0; i < 5; i++ {
			p.Grad.Data[0] = 1
			opt.Step([]*Param{p})
		}
		return p.W.Data[0]
	}
	plain := run(0)
	mom := run(0.9)
	if mom >= plain {
		t.Fatalf("momentum end %g should be below plain %g", mom, plain)
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	p := &Param{Name: "w", W: tensor.New(1), Grad: tensor.New(1)}
	p.W.Data[0] = 1
	opt := NewSGD(0.1, 0, 0.5)
	opt.Step([]*Param{p}) // grad 0, decay pulls toward zero
	if p.W.Data[0] >= 1 {
		t.Fatalf("weight decay did not shrink weight: %g", p.W.Data[0])
	}

	nd := &Param{Name: "b", W: tensor.New(1), Grad: tensor.New(1), NoDecay: true}
	nd.W.Data[0] = 1
	opt.Step([]*Param{nd})
	if nd.W.Data[0] != 1 {
		t.Fatalf("NoDecay param must not shrink: %g", nd.W.Data[0])
	}
}

func TestEvaluateCountsCorrectly(t *testing.T) {
	src := newToySource(10, 1)
	// Model that always predicts class 0: evaluate = fraction of zeros.
	m := &Model{ModelName: "const", Layers: []Layer{
		NewGlobalAvgPool("pool"),
		&constLinear{},
	}}
	acc := Evaluate(m, src, 4)
	zeros := 0
	for _, y := range src.y {
		if y == 0 {
			zeros++
		}
	}
	want := float64(zeros) / float64(len(src.y))
	if math.Abs(acc-want) > 1e-9 {
		t.Fatalf("accuracy %g, want %g", acc, want)
	}
}

// constLinear maps any input to logits favouring class 0.
type constLinear struct{}

func (c *constLinear) Name() string     { return "const" }
func (c *constLinear) Params() []*Param { return nil }

func (c *constLinear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape[0], 2)
	for i := 0; i < x.Shape[0]; i++ {
		out.Data[i*2] = 1
	}
	return out
}

func (c *constLinear) Backward(grad *tensor.Tensor) *tensor.Tensor { return grad }

func TestPiecewiseClusteringRegPullsTowardMeans(t *testing.T) {
	p := &Param{Name: "w", W: tensor.New(4), Grad: tensor.New(4), Quantizable: true}
	copy(p.W.Data, []float32{1, 3, -1, -3}) // posMean 2, negMean -2
	reg := PiecewiseClusteringReg(0.5)
	reg([]*Param{p})
	// grad += 2*lambda*(w - mean): for w=1 -> 1*(1-2) = -1.
	want := []float32{-1, 1, 1, -1}
	for i, w := range want {
		if math.Abs(float64(p.Grad.Data[i]-w)) > 1e-6 {
			t.Fatalf("reg grad[%d] = %g, want %g", i, p.Grad.Data[i], w)
		}
	}

	// Non-quantizable params are untouched.
	b := &Param{Name: "b", W: tensor.New(2), Grad: tensor.New(2)}
	copy(b.W.Data, []float32{5, -5})
	reg([]*Param{b})
	if b.Grad.Data[0] != 0 || b.Grad.Data[1] != 0 {
		t.Fatal("regularizer must skip non-quantizable params")
	}
}

func TestBatchLossMatchesManual(t *testing.T) {
	src := newToySource(8, 3)
	m := NewResNet20(2, 0.25, 5)
	b := src.Slice(0, 8)
	loss := BatchLoss(m, b)
	logits := m.Forward(b.X, false)
	want, _ := SoftmaxCrossEntropy(logits, b.Y)
	if math.Abs(loss-want) > 1e-9 {
		t.Fatalf("BatchLoss %g, want %g", loss, want)
	}
}
