package nn

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// Model is a network assembled from layers with a single forward path plus
// residual blocks (which are themselves composite layers).
type Model struct {
	ModelName string
	Layers    []Layer

	// lazily built caches; layer topology is fixed after construction,
	// and caching keeps ZeroGrad/Step/GradientPass off the allocator.
	params []*Param
	bns    []*BatchNorm2D
	// bnFreeze is GradientPass's reusable FreezeStats save-area.
	bnFreeze []bool
}

// Name returns the model identifier.
func (m *Model) Name() string { return m.ModelName }

// Params returns every learnable parameter in layer order. The slice is
// built once and cached — the layer list must not change afterwards.
func (m *Model) Params() []*Param {
	if m.params == nil {
		for _, l := range m.Layers {
			m.params = append(m.params, l.Params()...)
		}
	}
	return m.params
}

// QuantizableParams returns the weight matrices exposed to the bit-flip
// attack surface (conv and linear weights).
func (m *Model) QuantizableParams() []*Param {
	var out []*Param
	for _, p := range m.Params() {
		if p.Quantizable {
			out = append(out, p)
		}
	}
	return out
}

// NumParams counts scalar parameters.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += p.W.Len()
	}
	return n
}

// container is implemented by composite layers that own sub-layers.
type container interface{ Children() []Layer }

// Walk visits every layer depth-first, including sub-layers of composite
// blocks.
func (m *Model) Walk(visit func(Layer)) {
	var rec func(l Layer)
	rec = func(l Layer) {
		visit(l)
		if c, ok := l.(container); ok {
			for _, ch := range c.Children() {
				rec(ch)
			}
		}
	}
	for _, l := range m.Layers {
		rec(l)
	}
}

// BatchNorms returns every BatchNorm2D in the model, including those
// inside residual blocks. Cached like Params.
func (m *Model) BatchNorms() []*BatchNorm2D {
	if m.bns == nil {
		m.Walk(func(l Layer) {
			if bn, ok := l.(*BatchNorm2D); ok {
				m.bns = append(m.bns, bn)
			}
		})
	}
	return m.bns
}

// Forward runs the full network.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range m.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward back-propagates from the loss gradient.
func (m *Model) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		grad = m.Layers[i].Backward(grad)
	}
	return grad
}

// ZeroGrad clears all parameter gradients.
func (m *Model) ZeroGrad() {
	for _, p := range m.Params() {
		p.Grad.Zero()
	}
}

// --- Residual block ------------------------------------------------------------

// BasicBlock is the ResNet v1 basic block: conv-bn-relu-conv-bn plus a
// shortcut (identity, or 1x1 conv when shape changes), followed by ReLU.
type BasicBlock struct {
	LayerName string

	Conv1 *Conv2D
	BN1   *BatchNorm2D
	Relu1 *ReLU
	Conv2 *Conv2D
	BN2   *BatchNorm2D

	// Downsample is nil for identity shortcuts.
	DownConv *Conv2D
	DownBN   *BatchNorm2D

	reluMask   []bool
	out, g, dx *tensor.Tensor
}

// NewBasicBlock constructs a basic block from inC to outC with the given
// stride on the first convolution.
func NewBasicBlock(name string, inC, outC, stride int, rng *stats.RNG) *BasicBlock {
	b := &BasicBlock{LayerName: name}
	b.Conv1 = NewConv2D(name+".conv1", inC, outC, 3, stride, 1, false, rng)
	b.BN1 = NewBatchNorm2D(name+".bn1", outC)
	b.Relu1 = NewReLU(name + ".relu1")
	b.Conv2 = NewConv2D(name+".conv2", outC, outC, 3, 1, 1, false, rng)
	b.BN2 = NewBatchNorm2D(name+".bn2", outC)
	if stride != 1 || inC != outC {
		b.DownConv = NewConv2D(name+".down.conv", inC, outC, 1, stride, 0, false, rng)
		b.DownBN = NewBatchNorm2D(name+".down.bn", outC)
	}
	return b
}

// Name implements Layer.
func (b *BasicBlock) Name() string { return b.LayerName }

// Children exposes the block's sub-layers for model traversal.
func (b *BasicBlock) Children() []Layer {
	out := []Layer{b.Conv1, b.BN1, b.Relu1, b.Conv2, b.BN2}
	if b.DownConv != nil {
		out = append(out, b.DownConv, b.DownBN)
	}
	return out
}

// Params implements Layer.
func (b *BasicBlock) Params() []*Param {
	var out []*Param
	out = append(out, b.Conv1.Params()...)
	out = append(out, b.BN1.Params()...)
	out = append(out, b.Conv2.Params()...)
	out = append(out, b.BN2.Params()...)
	if b.DownConv != nil {
		out = append(out, b.DownConv.Params()...)
		out = append(out, b.DownBN.Params()...)
	}
	return out
}

// Forward implements Layer.
func (b *BasicBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	main := b.Conv1.Forward(x, train)
	main = b.BN1.Forward(main, train)
	main = b.Relu1.Forward(main, train)
	main = b.Conv2.Forward(main, train)
	main = b.BN2.Forward(main, train)

	short := x
	if b.DownConv != nil {
		short = b.DownConv.Forward(x, train)
		short = b.DownBN.Forward(short, train)
	}
	if !tensor.SameShape(main, short) {
		panic(fmt.Sprintf("nn: %s residual shape mismatch %v vs %v", b.LayerName, main.Shape, short.Shape))
	}
	// Residual add and final ReLU fused into one pass over the block's
	// reusable output buffer.
	b.out = tensor.Ensure(b.out, main.Shape...)
	b.reluMask = ensureMask(b.reluMask, len(main.Data))
	for i, v := range main.Data {
		v += short.Data[i]
		if v <= 0 {
			b.out.Data[i] = 0
			b.reluMask[i] = false
		} else {
			b.out.Data[i] = v
			b.reluMask[i] = true
		}
	}
	return b.out
}

// Backward implements Layer.
func (b *BasicBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	b.g = tensor.Ensure(b.g, grad.Shape...)
	for i, v := range grad.Data {
		if b.reluMask[i] {
			b.g.Data[i] = v
		} else {
			b.g.Data[i] = 0
		}
	}
	// Main branch.
	gm := b.BN2.Backward(b.g)
	gm = b.Conv2.Backward(gm)
	gm = b.Relu1.Backward(gm)
	gm = b.BN1.Backward(gm)
	gm = b.Conv1.Backward(gm)
	// Shortcut branch.
	gs := b.g
	if b.DownConv != nil {
		gs = b.DownBN.Backward(b.g)
		gs = b.DownConv.Backward(gs)
	}
	b.dx = tensor.Ensure(b.dx, gm.Shape...)
	for i, v := range gm.Data {
		b.dx.Data[i] = v + gs.Data[i]
	}
	return b.dx
}

// --- Architectures ---------------------------------------------------------------

// scaleC applies a width multiplier with a floor of 2 channels.
func scaleC(c int, width float64) int {
	s := int(float64(c) * width)
	if s < 2 {
		s = 2
	}
	return s
}

// NewResNet20 builds the CIFAR-style ResNet-20 (He et al.): a 3x3 stem
// then three stages of three basic blocks at 16/32/64 channels (scaled by
// width), global average pooling and a linear classifier.
func NewResNet20(classes int, width float64, seed uint64) *Model {
	rng := stats.NewRNG(seed)
	c1, c2, c3 := scaleC(16, width), scaleC(32, width), scaleC(64, width)
	m := &Model{ModelName: fmt.Sprintf("ResNet-20(w=%g)", width)}
	m.Layers = append(m.Layers,
		NewConv2D("stem.conv", 3, c1, 3, 1, 1, false, rng),
		NewBatchNorm2D("stem.bn", c1),
		NewReLU("stem.relu"),
	)
	stage := func(name string, inC, outC, blocks, stride int) {
		for i := 0; i < blocks; i++ {
			s, ic := 1, outC
			if i == 0 {
				s, ic = stride, inC
			}
			m.Layers = append(m.Layers, NewBasicBlock(fmt.Sprintf("%s.block%d", name, i), ic, outC, s, rng))
		}
	}
	stage("stage1", c1, c1, 3, 1)
	stage("stage2", c1, c2, 3, 2)
	stage("stage3", c2, c3, 3, 2)
	m.Layers = append(m.Layers,
		NewGlobalAvgPool("pool"),
		NewLinear("fc", c3, classes, rng),
	)
	return m
}

// NewVGG11 builds the CIFAR-style VGG-11 with batch normalisation: conv
// widths 64-128-256-256-512-512-512-512 (scaled by width) with max-pool
// stages, global average pooling, and a linear classifier. For 32x32
// inputs the five pools reduce to 1x1 exactly as in the CIFAR VGG.
func NewVGG11(classes int, width float64, seed uint64) *Model {
	rng := stats.NewRNG(seed)
	m := &Model{ModelName: fmt.Sprintf("VGG-11(w=%g)", width)}
	type item struct {
		ch   int
		pool bool
	}
	plan := []item{
		{64, true},
		{128, true},
		{256, false}, {256, true},
		{512, false}, {512, true},
		{512, false}, {512, true},
	}
	in := 3
	ci := 0
	for _, it := range plan {
		out := scaleC(it.ch, width)
		name := fmt.Sprintf("features.conv%d", ci)
		m.Layers = append(m.Layers,
			NewConv2D(name, in, out, 3, 1, 1, false, rng),
			NewBatchNorm2D(fmt.Sprintf("features.bn%d", ci), out),
			NewReLU(fmt.Sprintf("features.relu%d", ci)),
		)
		if it.pool {
			m.Layers = append(m.Layers, NewMaxPool2(fmt.Sprintf("features.pool%d", ci)))
		}
		in = out
		ci++
	}
	m.Layers = append(m.Layers,
		NewGlobalAvgPool("pool"),
		NewLinear("classifier", in, classes, rng),
	)
	return m
}
