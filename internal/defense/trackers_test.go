package defense

import (
	"testing"

	"repro/internal/dram"
)

func TestHydraSplitsHotGroupsAndMitigates(t *testing.T) {
	dev, eng := newRig(t, 100)
	h, err := NewHydra(eng, dev.Geometry(), 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	agg := dram.RowAddr{Bank: 0, Row: 10}
	victim := dram.RowAddr{Bank: 0, Row: 11}
	eng.RegisterTarget(victim, 0)
	driveAttack(t, dev, h, agg, 200)
	if h.Stats().Mitigations == 0 {
		t.Fatal("Hydra never mitigated the hot row")
	}
	if set, _ := dev.PeekBit(victim, 0); set {
		t.Fatal("Hydra must prevent the flip")
	}
}

func TestHydraColdGroupsStayCheap(t *testing.T) {
	dev, eng := newRig(t, 1000)
	h, err := NewHydra(eng, dev.Geometry(), 400, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Touch many distinct rows a few times each: no group splits, no
	// per-row spill latency.
	for r := 0; r < 32; r++ {
		driveAttack(t, dev, h, dram.RowAddr{Bank: 0, Row: r}, 3)
	}
	if h.Stats().Mitigations != 0 {
		t.Fatal("cold workload must not mitigate")
	}
	if h.Stats().ExtraLatency != 0 {
		t.Fatal("cold workload must stay on shared counters (no spill)")
	}
}

func TestCounterTreeMitigatesHotRow(t *testing.T) {
	dev, eng := newRig(t, 100)
	c, err := NewCounterTree(eng, dev.Geometry(), 40, 6)
	if err != nil {
		t.Fatal(err)
	}
	agg := dram.RowAddr{Bank: 0, Row: 10}
	victim := dram.RowAddr{Bank: 0, Row: 11}
	eng.RegisterTarget(victim, 0)
	driveAttack(t, dev, c, agg, 200)
	if c.Stats().Mitigations == 0 {
		t.Fatal("CounterTree never mitigated")
	}
	if set, _ := dev.PeekBit(victim, 0); set {
		t.Fatal("CounterTree must prevent the flip")
	}
}

func TestCounterTreeValidation(t *testing.T) {
	dev, eng := newRig(t, 100)
	if _, err := NewCounterTree(eng, dev.Geometry(), 0, 4); err == nil {
		t.Fatal("zero TRH must fail")
	}
	if _, err := NewCounterTree(eng, dev.Geometry(), 10, 30); err == nil {
		t.Fatal("absurd depth must fail")
	}
}

func TestTWiCEMitigatesAndPrunes(t *testing.T) {
	dev, eng := newRig(t, 100)
	tw, err := NewTWiCE(eng, dev.Geometry(), 40)
	if err != nil {
		t.Fatal(err)
	}
	agg := dram.RowAddr{Bank: 0, Row: 10}
	victim := dram.RowAddr{Bank: 0, Row: 11}
	eng.RegisterTarget(victim, 0)
	// Hot row hammering interleaved with one-shot cold rows.
	for i := 0; i < 300; i++ {
		driveAttack(t, dev, tw, agg, 1)
		driveAttack(t, dev, tw, dram.RowAddr{Bank: 1, Row: i % 60}, 1)
	}
	if tw.Stats().Mitigations == 0 {
		t.Fatal("TWiCE never mitigated the hot row")
	}
	if set, _ := dev.PeekBit(victim, 0); set {
		t.Fatal("TWiCE must prevent the flip")
	}
	// Once the cold rows go quiet, pruning evicts them: after another
	// prune interval of hot-row-only traffic the table must have shrunk
	// well below the 61 touched rows.
	driveAttack(t, dev, tw, agg, 200)
	if tw.TableSize() >= 30 {
		t.Fatalf("table size %d: pruning ineffective", tw.TableSize())
	}
}

func TestTrackersImplementDefense(t *testing.T) {
	dev, eng := newRig(t, 100)
	geom := dev.Geometry()
	var defenses []Defense
	if h, err := NewHydra(eng, geom, 50, 8); err == nil {
		defenses = append(defenses, h)
	}
	if c, err := NewCounterTree(eng, geom, 50, 5); err == nil {
		defenses = append(defenses, c)
	}
	if tw, err := NewTWiCE(eng, geom, 50); err == nil {
		defenses = append(defenses, tw)
	}
	if len(defenses) != 3 {
		t.Fatalf("built %d trackers", len(defenses))
	}
	for _, d := range defenses {
		d.OnActivate(dram.RowAddr{Bank: 0, Row: 1}, false)
		d.OnWindowReset()
		if d.Stats().Activations != 1 {
			t.Fatalf("%s: activation not recorded", d.Name())
		}
	}
}
