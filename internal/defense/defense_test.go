package defense

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/rowhammer"
)

func newRig(t *testing.T, trh int) (*dram.Device, *rowhammer.Engine) {
	t.Helper()
	dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	if err != nil {
		t.Fatal(err)
	}
	cfg := rowhammer.DefaultConfig()
	cfg.TRH = trh
	eng, err := rowhammer.New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev, eng
}

// driveAttack hammers the aggressor n times through the defense: each
// activation is first offered to the defense, and only allowed activations
// reach the device.
func driveAttack(t *testing.T, dev *dram.Device, d Defense, agg dram.RowAddr, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		dec := d.OnActivate(agg, false)
		if !dec.Allow {
			continue
		}
		if _, err := dev.Activate(agg); err != nil {
			t.Fatal(err)
		}
		if _, err := dev.Precharge(agg.Bank); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNoneAllowsEverythingAndFlipsHappen(t *testing.T) {
	dev, eng := newRig(t, 20)
	victim := dram.RowAddr{Bank: 0, Row: 11}
	eng.RegisterTarget(victim, 0)
	d := NewNone()
	driveAttack(t, dev, d, dram.RowAddr{Bank: 0, Row: 10}, 25)
	if set, _ := dev.PeekBit(victim, 0); !set {
		t.Fatal("undefended victim must flip")
	}
	if d.Stats().Activations != 25 || d.Stats().Denials != 0 {
		t.Fatalf("stats = %+v", d.Stats())
	}
}

func TestShadowPreventsFlipsBelowCeiling(t *testing.T) {
	dev, eng := newRig(t, 20)
	victim := dram.RowAddr{Bank: 0, Row: 11}
	eng.RegisterTarget(victim, 0)
	cfg := DefaultShadowConfig(20)
	cfg.GroupSize = 4
	sh, err := NewShadow(eng, dev.Geometry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveAttack(t, dev, sh, dram.RowAddr{Bank: 0, Row: 10}, 100)
	if set, _ := dev.PeekBit(victim, 0); set {
		t.Fatal("SHADOW must shuffle before the threshold")
	}
	if sh.Stats().Mitigations == 0 {
		t.Fatal("SHADOW never shuffled")
	}
	if sh.Compromised() {
		t.Fatal("100 activations is below the ceiling (10x20=200)")
	}
}

func TestShadowCompromisedBeyondCeiling(t *testing.T) {
	dev, eng := newRig(t, 20)
	cfg := DefaultShadowConfig(20)
	cfg.CeilingFactor = 2 // ceiling = 40
	sh, err := NewShadow(eng, dev.Geometry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveAttack(t, dev, sh, dram.RowAddr{Bank: 0, Row: 10}, 60)
	if !sh.Compromised() {
		t.Fatal("SHADOW must report compromise past its ceiling")
	}
	sh.OnWindowReset()
	if sh.Compromised() {
		t.Fatal("window reset must clear the compromise flag")
	}
}

func TestShadowLatencyScalesWithGroup(t *testing.T) {
	_, eng := newRig(t, 20)
	geom := dram.SmallGeometry()
	small, _ := NewShadow(eng, geom, ShadowConfig{TRH: 20, GroupSize: 2, ShuffleCopyLatency: 100, CeilingFactor: 10})
	large, _ := NewShadow(eng, geom, ShadowConfig{TRH: 20, GroupSize: 20, ShuffleCopyLatency: 100, CeilingFactor: 10})
	agg := dram.RowAddr{Bank: 0, Row: 10}
	for i := 0; i < 10; i++ {
		small.OnActivate(agg, false)
		large.OnActivate(agg, false)
	}
	if large.Stats().ExtraLatency <= small.Stats().ExtraLatency {
		t.Fatal("larger protected group must cost more shuffle latency")
	}
}

func TestPARAMitigatesStatistically(t *testing.T) {
	dev, eng := newRig(t, 1000)
	p, err := NewPARA(eng, 0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	agg := dram.RowAddr{Bank: 0, Row: 10}
	driveAttack(t, dev, p, agg, 1000)
	m := p.Stats().Mitigations
	if m < 220 || m > 380 {
		t.Fatalf("PARA mitigations = %d, want ~300", m)
	}
}

func TestPARARejectsBadProbability(t *testing.T) {
	_, eng := newRig(t, 10)
	if _, err := NewPARA(eng, 0, 1); err == nil {
		t.Fatal("p=0 must be rejected")
	}
	if _, err := NewPARA(eng, 1, 1); err == nil {
		t.Fatal("p=1 must be rejected")
	}
}

func TestCounterPerRowMitigatesExactlyAtThreshold(t *testing.T) {
	dev, eng := newRig(t, 50)
	c, err := NewCounterPerRow(eng, dev.Geometry(), 10)
	if err != nil {
		t.Fatal(err)
	}
	agg := dram.RowAddr{Bank: 0, Row: 10}
	victim := dram.RowAddr{Bank: 0, Row: 11}
	eng.RegisterTarget(victim, 0)
	driveAttack(t, dev, c, agg, 100)
	if got := c.Stats().Mitigations; got != 10 {
		t.Fatalf("mitigations = %d, want 10 (every 10 activations)", got)
	}
	if set, _ := dev.PeekBit(victim, 0); set {
		t.Fatal("counter-per-row at TRH/5 must prevent the flip")
	}
}

func TestGrapheneCatchesHotRow(t *testing.T) {
	dev, eng := newRig(t, 100)
	g, err := NewGraphene(eng, dev.Geometry(), 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	agg := dram.RowAddr{Bank: 0, Row: 10}
	victim := dram.RowAddr{Bank: 0, Row: 11}
	eng.RegisterTarget(victim, 0)
	// Interleave the hot row with background noise rows.
	for i := 0; i < 400; i++ {
		driveAttack(t, dev, g, agg, 1)
		driveAttack(t, dev, g, dram.RowAddr{Bank: 0, Row: 20 + i%8}, 1)
	}
	if g.Stats().Mitigations == 0 {
		t.Fatal("Graphene must mitigate the hot row")
	}
	if set, _ := dev.PeekBit(victim, 0); set {
		t.Fatal("Graphene must prevent the flip")
	}
}

func TestRowSwapVariants(t *testing.T) {
	dev, eng := newRig(t, 50)
	rrs, err := NewRowSwap(eng, dev.Geometry(), 10, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	srs, err := NewRowSwap(eng, dev.Geometry(), 10, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rrs.Name() != "RRS" || srs.Name() != "SRS" {
		t.Fatalf("names: %s %s", rrs.Name(), srs.Name())
	}
	if srs.SwapLatency <= rrs.SwapLatency {
		t.Fatal("SRS integrity checks must cost extra latency")
	}
	agg := dram.RowAddr{Bank: 0, Row: 10}
	victim := dram.RowAddr{Bank: 0, Row: 11}
	eng.RegisterTarget(victim, 0)
	driveAttack(t, dev, rrs, agg, 100)
	if set, _ := dev.PeekBit(victim, 0); set {
		t.Fatal("RRS must break the aggressor-victim correlation")
	}
}

func TestWindowResetClearsCounters(t *testing.T) {
	dev, eng := newRig(t, 50)
	c, _ := NewCounterPerRow(eng, dev.Geometry(), 10)
	agg := dram.RowAddr{Bank: 0, Row: 10}
	driveAttack(t, dev, c, agg, 9)
	c.OnWindowReset()
	driveAttack(t, dev, c, agg, 9)
	if c.Stats().Mitigations != 0 {
		t.Fatal("window reset must clear progress toward mitigation")
	}
}

func TestDefenseInterfaceCompliance(t *testing.T) {
	dev, eng := newRig(t, 50)
	geom := dev.Geometry()
	defenses := []Defense{NewNone()}
	if sh, err := NewShadow(eng, geom, DefaultShadowConfig(1000)); err == nil {
		defenses = append(defenses, sh)
	}
	if p, err := NewPARA(eng, 0.01, 2); err == nil {
		defenses = append(defenses, p)
	}
	if c, err := NewCounterPerRow(eng, geom, 500); err == nil {
		defenses = append(defenses, c)
	}
	if g, err := NewGraphene(eng, geom, 500, 8); err == nil {
		defenses = append(defenses, g)
	}
	if r, err := NewRowSwap(eng, geom, 250, false, 3); err == nil {
		defenses = append(defenses, r)
	}
	if len(defenses) != 6 {
		t.Fatalf("constructed %d defenses, want 6", len(defenses))
	}
	agg := dram.RowAddr{Bank: 0, Row: 10}
	for _, d := range defenses {
		d.OnActivate(agg, false)
		d.OnWindowReset()
		if d.Name() == "" {
			t.Fatal("defense must have a name")
		}
		if d.Stats().Activations == 0 {
			t.Fatalf("%s did not record activation", d.Name())
		}
	}
}
