// Package defense provides a common interface over RowHammer mitigation
// mechanisms and functional implementations of the baselines the paper
// compares against (Table I and Fig. 7): SHADOW-style intra-subarray
// shuffling, PARA probabilistic refresh, Graphene/Hydra-class counter
// trackers, naive counter-per-row, and random/secure row-swap.
//
// A Defense sits between the request stream and the DRAM array: every
// activation is offered to the defense, which may mitigate (neutralise the
// accumulating disturbance at some latency cost) or — for DRAM-Locker,
// implemented in internal/controller — deny the activation outright.
package defense

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/rowhammer"
	"repro/internal/stats"
)

// Decision is a defense's verdict on one activation.
type Decision struct {
	// Allow is false when the activation must not reach the array
	// (lock-style defenses).
	Allow bool
	// ExtraLatency is mitigation work charged to this activation.
	ExtraLatency dram.Picoseconds
	// Mitigated is true when the defense performed a mitigation action
	// (victim refresh, shuffle, swap) on this activation.
	Mitigated bool
}

// Stats aggregates defense activity.
type Stats struct {
	Activations  int64
	Mitigations  int64
	Denials      int64
	ExtraLatency dram.Picoseconds
}

// Defense is the common mitigation interface.
type Defense interface {
	// Name identifies the mechanism in reports.
	Name() string
	// OnActivate is offered every activation before it reaches the array.
	OnActivate(row dram.RowAddr, privileged bool) Decision
	// OnWindowReset is called at every refresh-window boundary.
	OnWindowReset()
	// Stats returns accumulated counters.
	Stats() Stats
}

// base carries shared bookkeeping for implementations.
type base struct {
	name  string
	stats Stats
}

func (b *base) Name() string { return b.name }

func (b *base) Stats() Stats { return b.stats }

func (b *base) record(d Decision) Decision {
	b.stats.Activations++
	if d.Mitigated {
		b.stats.Mitigations++
	}
	if !d.Allow {
		b.stats.Denials++
	}
	b.stats.ExtraLatency += d.ExtraLatency
	return d
}

// --- No defense -------------------------------------------------------------

// None is the undefended baseline.
type None struct{ base }

// NewNone returns the no-defense baseline.
func NewNone() *None { return &None{base{name: "None"}} }

// OnActivate allows everything.
func (n *None) OnActivate(dram.RowAddr, bool) Decision {
	return n.record(Decision{Allow: true})
}

// OnWindowReset is a no-op.
func (n *None) OnWindowReset() {}

// --- SHADOW -----------------------------------------------------------------

// Shadow models Wi et al. HPCA'23: every protected row is shuffled within
// its subarray after accumulating ShufflePeriod activations, neutralising
// the disturbance toward its neighbors. Shuffling is "unintelligent": each
// trigger shuffles the whole protected group, which is where SHADOW's
// latency comes from (paper §I, §V).
type Shadow struct {
	base
	// ShufflePeriod is how many activations a row may accumulate before
	// the group is shuffled; SHADOW must keep this below the device T_RH,
	// so the period is TRH/2 for a safety factor of 2.
	ShufflePeriod int
	// GroupSize is the number of potential target rows shuffled per
	// trigger.
	GroupSize int
	// ShuffleCopyLatency is the cost of relocating one row.
	ShuffleCopyLatency dram.Picoseconds

	engine *rowhammer.Engine
	counts map[int]int
	geom   dram.Geometry
	rng    *stats.RNG

	// DefenseCeiling is the per-window activation count on one row beyond
	// which SHADOW's shuffle throughput is exceeded and integrity is
	// compromised (the "defense threshold" of Fig. 7(a)).
	DefenseCeiling int
	compromised    bool
}

// ShadowConfig parameterises Shadow.
type ShadowConfig struct {
	TRH                int
	GroupSize          int
	ShuffleCopyLatency dram.Picoseconds
	// CeilingFactor scales the defense ceiling: ceiling = CeilingFactor * TRH.
	CeilingFactor int
	Seed          uint64
}

// DefaultShadowConfig returns the Fig. 7 operating point for a given TRH.
func DefaultShadowConfig(trh int) ShadowConfig {
	return ShadowConfig{
		TRH:                trh,
		GroupSize:          1000,
		ShuffleCopyLatency: 270 * dram.Nanosecond,
		CeilingFactor:      10,
		Seed:               0x5ad0,
	}
}

// NewShadow builds a SHADOW instance bound to a rowhammer engine (for
// counter neutralisation on shuffle).
func NewShadow(engine *rowhammer.Engine, geom dram.Geometry, cfg ShadowConfig) (*Shadow, error) {
	if cfg.TRH <= 1 {
		return nil, fmt.Errorf("defense: shadow TRH must be > 1, got %d", cfg.TRH)
	}
	if cfg.GroupSize <= 0 {
		return nil, fmt.Errorf("defense: shadow GroupSize must be positive, got %d", cfg.GroupSize)
	}
	return &Shadow{
		base:               base{name: fmt.Sprintf("SHADOW%d", cfg.TRH)},
		ShufflePeriod:      cfg.TRH / 2,
		GroupSize:          cfg.GroupSize,
		ShuffleCopyLatency: cfg.ShuffleCopyLatency,
		engine:             engine,
		counts:             make(map[int]int),
		geom:               geom,
		rng:                stats.NewRNG(cfg.Seed),
		DefenseCeiling:     cfg.CeilingFactor * cfg.TRH,
	}, nil
}

// Compromised reports whether the attacker exceeded SHADOW's throughput.
func (s *Shadow) Compromised() bool { return s.compromised }

// OnActivate counts the activation and triggers a group shuffle when the
// row reaches the shuffle period.
func (s *Shadow) OnActivate(row dram.RowAddr, privileged bool) Decision {
	idx := s.geom.LinearIndex(row)
	s.counts[idx]++
	d := Decision{Allow: true}
	if s.counts[idx] > s.DefenseCeiling {
		// Beyond the ceiling SHADOW cannot keep up; no further latency
		// is added because mitigation has effectively stopped.
		s.compromised = true
		return s.record(d)
	}
	if s.counts[idx]%s.ShufflePeriod == 0 {
		// Group shuffle: every potential target row is relocated.
		d.Mitigated = true
		d.ExtraLatency = dram.Picoseconds(int64(s.GroupSize)) * s.ShuffleCopyLatency
		if s.engine != nil {
			s.engine.ResetRow(row)
		}
	}
	return s.record(d)
}

// OnWindowReset clears per-window counts.
func (s *Shadow) OnWindowReset() {
	s.counts = make(map[int]int)
	s.compromised = false
}

// --- PARA -------------------------------------------------------------------

// PARA models Kim et al. ISCA'14 probabilistic adjacent row activation:
// on every activation, with probability P, the victims are refreshed.
type PARA struct {
	base
	P              float64
	RefreshLatency dram.Picoseconds
	engine         *rowhammer.Engine
	rng            *stats.RNG
}

// NewPARA builds a PARA instance with mitigation probability p.
func NewPARA(engine *rowhammer.Engine, p float64, seed uint64) (*PARA, error) {
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("defense: PARA probability must be in (0,1), got %g", p)
	}
	return &PARA{
		base:           base{name: "PARA"},
		P:              p,
		RefreshLatency: 100 * dram.Nanosecond,
		engine:         engine,
		rng:            stats.NewRNG(seed),
	}, nil
}

// OnActivate probabilistically refreshes the neighbors.
func (p *PARA) OnActivate(row dram.RowAddr, privileged bool) Decision {
	d := Decision{Allow: true}
	if p.rng.Bernoulli(p.P) {
		d.Mitigated = true
		d.ExtraLatency = p.RefreshLatency
		if p.engine != nil {
			p.engine.ResetRow(row)
		}
	}
	return p.record(d)
}

// OnWindowReset is a no-op (PARA is stateless).
func (p *PARA) OnWindowReset() {}

// --- Counter-per-row ---------------------------------------------------------

// CounterPerRow keeps an exact activation counter for every row and
// refreshes victims when a row reaches the threshold.
type CounterPerRow struct {
	base
	TRH            int
	RefreshLatency dram.Picoseconds
	engine         *rowhammer.Engine
	geom           dram.Geometry
	counts         map[int]int
}

// NewCounterPerRow builds the exact-counting baseline.
func NewCounterPerRow(engine *rowhammer.Engine, geom dram.Geometry, trh int) (*CounterPerRow, error) {
	if trh <= 0 {
		return nil, fmt.Errorf("defense: TRH must be positive, got %d", trh)
	}
	return &CounterPerRow{
		base:           base{name: "CounterPerRow"},
		TRH:            trh,
		RefreshLatency: 100 * dram.Nanosecond,
		engine:         engine,
		geom:           geom,
		counts:         make(map[int]int),
	}, nil
}

// OnActivate counts and mitigates at the threshold.
func (c *CounterPerRow) OnActivate(row dram.RowAddr, privileged bool) Decision {
	idx := c.geom.LinearIndex(row)
	c.counts[idx]++
	d := Decision{Allow: true}
	if c.counts[idx] >= c.TRH {
		c.counts[idx] = 0
		d.Mitigated = true
		d.ExtraLatency = c.RefreshLatency
		if c.engine != nil {
			c.engine.ResetRow(row)
		}
	}
	return c.record(d)
}

// OnWindowReset clears all counters.
func (c *CounterPerRow) OnWindowReset() { c.counts = make(map[int]int) }

// --- Graphene (Misra-Gries) ---------------------------------------------------

// Graphene models Park et al. MICRO'20: a Misra-Gries frequent-items table
// per bank catches every row whose count can exceed the threshold, using
// far fewer counters than rows.
type Graphene struct {
	base
	TRH            int
	TableSize      int
	RefreshLatency dram.Picoseconds
	engine         *rowhammer.Engine
	geom           dram.Geometry
	// Misra-Gries state per bank.
	tables []map[int]int
	spill  []int
}

// NewGraphene builds the tracker. tableSize is the Misra-Gries capacity
// per bank; the classical guarantee needs tableSize >= activations/TRH.
func NewGraphene(engine *rowhammer.Engine, geom dram.Geometry, trh, tableSize int) (*Graphene, error) {
	if trh <= 0 || tableSize <= 0 {
		return nil, fmt.Errorf("defense: graphene needs positive TRH and tableSize")
	}
	g := &Graphene{
		base:           base{name: "Graphene"},
		TRH:            trh,
		TableSize:      tableSize,
		RefreshLatency: 100 * dram.Nanosecond,
		engine:         engine,
		geom:           geom,
	}
	g.OnWindowReset()
	return g, nil
}

// OnActivate runs one Misra-Gries update and mitigates rows whose estimate
// reaches the threshold.
func (g *Graphene) OnActivate(row dram.RowAddr, privileged bool) Decision {
	d := Decision{Allow: true}
	bank := row.Bank
	idx := g.geom.LinearIndex(row)
	t := g.tables[bank]
	if _, ok := t[idx]; ok {
		t[idx]++
	} else if len(t) < g.TableSize {
		t[idx] = g.spill[bank] + 1
	} else {
		// Decrement-all step of Misra-Gries, implemented as a spill floor.
		g.spill[bank]++
		for k, v := range t {
			if v <= g.spill[bank] {
				delete(t, k)
			}
		}
		if len(t) < g.TableSize {
			t[idx] = g.spill[bank] + 1
		}
	}
	if v, ok := t[idx]; ok && v >= g.TRH/2 {
		// Mitigate early (half threshold), as Graphene does.
		t[idx] = g.spill[bank]
		d.Mitigated = true
		d.ExtraLatency = g.RefreshLatency
		if g.engine != nil {
			g.engine.ResetRow(row)
		}
	}
	return g.record(d)
}

// OnWindowReset clears tracker state.
func (g *Graphene) OnWindowReset() {
	g.tables = make([]map[int]int, g.geom.Banks())
	for i := range g.tables {
		g.tables[i] = make(map[int]int)
	}
	g.spill = make([]int, g.geom.Banks())
}

// --- Row swap baselines -------------------------------------------------------

// RowSwap models RRS/SRS-class defenses: after SwapPeriod activations of a
// row, the row is swapped with a random row of the bank, breaking the
// aggressor-victim adjacency.
type RowSwap struct {
	base
	SwapPeriod  int
	SwapLatency dram.Picoseconds
	Secure      bool // SRS adds integrity checks (extra latency)
	engine      *rowhammer.Engine
	geom        dram.Geometry
	counts      map[int]int
	rng         *stats.RNG
}

// NewRowSwap builds an RRS (secure=false) or SRS (secure=true) instance.
func NewRowSwap(engine *rowhammer.Engine, geom dram.Geometry, swapPeriod int, secure bool, seed uint64) (*RowSwap, error) {
	if swapPeriod <= 0 {
		return nil, fmt.Errorf("defense: swapPeriod must be positive, got %d", swapPeriod)
	}
	name := "RRS"
	lat := 2 * 270 * dram.Nanosecond // two-row migration
	if secure {
		name = "SRS"
		lat += 60 * dram.Nanosecond // integrity verification
	}
	return &RowSwap{
		base:        base{name: name},
		SwapPeriod:  swapPeriod,
		SwapLatency: lat,
		Secure:      secure,
		engine:      engine,
		geom:        geom,
		counts:      make(map[int]int),
		rng:         stats.NewRNG(seed),
	}, nil
}

// OnActivate counts and swaps at the period.
func (r *RowSwap) OnActivate(row dram.RowAddr, privileged bool) Decision {
	idx := r.geom.LinearIndex(row)
	r.counts[idx]++
	d := Decision{Allow: true}
	if r.counts[idx]%r.SwapPeriod == 0 {
		d.Mitigated = true
		d.ExtraLatency = r.SwapLatency
		if r.engine != nil {
			r.engine.ResetRow(row)
		}
	}
	return r.record(d)
}

// OnWindowReset clears per-window counts.
func (r *RowSwap) OnWindowReset() { r.counts = make(map[int]int) }
