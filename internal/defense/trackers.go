package defense

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/rowhammer"
)

// --- Hydra ---------------------------------------------------------------------

// Hydra models Qureshi et al. ISCA'22 hybrid tracking: a small SRAM of
// *group* counters covers many rows each; when a group's shared count
// crosses a fraction of the threshold, the group is "split" into exact
// per-row counters spilled to (modelled) DRAM. This keeps SRAM tiny while
// preserving exactness for hot rows.
type Hydra struct {
	base
	TRH       int
	GroupSize int
	// SplitFraction of TRH at which a group graduates to per-row counters.
	SplitFraction  float64
	RefreshLatency dram.Picoseconds
	// SpillLatency models the DRAM access for per-row counters.
	SpillLatency dram.Picoseconds

	engine *rowhammer.Engine
	geom   dram.Geometry

	groupCount map[int]int  // group id -> shared count
	split      map[int]bool // group id -> graduated
	rowCount   map[int]int  // linear row -> exact count (post split)
}

// NewHydra builds the hybrid tracker.
func NewHydra(engine *rowhammer.Engine, geom dram.Geometry, trh, groupSize int) (*Hydra, error) {
	if trh <= 0 || groupSize <= 0 {
		return nil, fmt.Errorf("defense: hydra needs positive TRH and groupSize")
	}
	h := &Hydra{
		base:           base{name: "Hydra"},
		TRH:            trh,
		GroupSize:      groupSize,
		SplitFraction:  0.5,
		RefreshLatency: 100 * dram.Nanosecond,
		SpillLatency:   45 * dram.Nanosecond,
		engine:         engine,
		geom:           geom,
	}
	h.OnWindowReset()
	return h, nil
}

func (h *Hydra) groupOf(row dram.RowAddr) int {
	return h.geom.LinearIndex(row) / h.GroupSize
}

// OnActivate implements Defense.
func (h *Hydra) OnActivate(row dram.RowAddr, privileged bool) Decision {
	d := Decision{Allow: true}
	g := h.groupOf(row)
	if !h.split[g] {
		h.groupCount[g]++
		if float64(h.groupCount[g]) >= h.SplitFraction*float64(h.TRH) {
			// Graduate: exact counters start from the shared estimate
			// (conservative: every row inherits the group count).
			h.split[g] = true
			d.ExtraLatency += h.SpillLatency
		}
		return h.record(d)
	}
	idx := h.geom.LinearIndex(row)
	h.rowCount[idx]++
	d.ExtraLatency += h.SpillLatency
	if h.rowCount[idx]+h.groupCount[g] >= h.TRH {
		h.rowCount[idx] = 0
		d.Mitigated = true
		d.ExtraLatency += h.RefreshLatency
		if h.engine != nil {
			h.engine.ResetRow(row)
		}
	}
	return h.record(d)
}

// OnWindowReset implements Defense.
func (h *Hydra) OnWindowReset() {
	h.groupCount = make(map[int]int)
	h.split = make(map[int]bool)
	h.rowCount = make(map[int]int)
}

// --- Counter Tree ----------------------------------------------------------------

// CounterTree models Seyedzadeh et al. CAL'16: a binary tree of shared
// counters over the row space. Interior counters saturate and push
// tracking toward the leaves, so few counters cover many rows with
// bounded undercounting.
type CounterTree struct {
	base
	TRH            int
	Levels         int
	RefreshLatency dram.Picoseconds

	engine *rowhammer.Engine
	geom   dram.Geometry
	counts []map[int]int // per level: node id -> count
}

// NewCounterTree builds a tree tracker with the given depth.
func NewCounterTree(engine *rowhammer.Engine, geom dram.Geometry, trh, levels int) (*CounterTree, error) {
	if trh <= 0 || levels <= 0 || levels > 24 {
		return nil, fmt.Errorf("defense: counter tree needs positive TRH and 1..24 levels")
	}
	c := &CounterTree{
		base:           base{name: "CounterTree"},
		TRH:            trh,
		Levels:         levels,
		RefreshLatency: 100 * dram.Nanosecond,
		engine:         engine,
		geom:           geom,
	}
	c.OnWindowReset()
	return c, nil
}

// OnActivate implements Defense: increment the counter on every level of
// the row's root-to-leaf path; mitigate when the leaf-level estimate
// crosses the per-level share of the threshold.
func (c *CounterTree) OnActivate(row dram.RowAddr, privileged bool) Decision {
	d := Decision{Allow: true}
	idx := c.geom.LinearIndex(row)
	span := c.geom.TotalRows()
	node := 0
	trigger := false
	for lvl := 0; lvl < c.Levels; lvl++ {
		// Node id at this level: index within 2^lvl equal partitions.
		parts := 1 << lvl
		width := (span + parts - 1) / parts
		node = idx / width
		key := lvl<<24 | node
		c.counts[lvl][key]++
		if lvl == c.Levels-1 && c.counts[lvl][key] >= c.TRH/2 {
			trigger = true
			c.counts[lvl][key] = 0
		}
	}
	if trigger {
		d.Mitigated = true
		d.ExtraLatency = c.RefreshLatency
		if c.engine != nil {
			c.engine.ResetRow(row)
		}
	}
	return c.record(d)
}

// OnWindowReset implements Defense.
func (c *CounterTree) OnWindowReset() {
	c.counts = make([]map[int]int, c.Levels)
	for i := range c.counts {
		c.counts[i] = make(map[int]int)
	}
}

// --- TWiCE ----------------------------------------------------------------------

// TWiCE models Lee et al. ISCA'19 time-window counters: rows enter a
// pruned table on first activation; entries whose rate cannot reach the
// threshold within the window are periodically pruned, and entries that
// cross the threshold trigger a victim refresh.
type TWiCE struct {
	base
	TRH            int
	PruneInterval  int
	RefreshLatency dram.Picoseconds

	engine *rowhammer.Engine
	geom   dram.Geometry

	entries map[int]*twiceEntry
	tick    int
}

type twiceEntry struct {
	count     int
	firstTick int
}

// NewTWiCE builds the time-window tracker.
func NewTWiCE(engine *rowhammer.Engine, geom dram.Geometry, trh int) (*TWiCE, error) {
	if trh <= 0 {
		return nil, fmt.Errorf("defense: TWiCE needs positive TRH")
	}
	t := &TWiCE{
		base:           base{name: "TWiCE"},
		TRH:            trh,
		PruneInterval:  4 * trh,
		RefreshLatency: 100 * dram.Nanosecond,
		engine:         engine,
		geom:           geom,
		entries:        make(map[int]*twiceEntry),
	}
	return t, nil
}

// OnActivate implements Defense.
func (t *TWiCE) OnActivate(row dram.RowAddr, privileged bool) Decision {
	d := Decision{Allow: true}
	t.tick++
	idx := t.geom.LinearIndex(row)
	e := t.entries[idx]
	if e == nil {
		e = &twiceEntry{firstTick: t.tick}
		t.entries[idx] = e
	}
	e.count++
	if e.count >= t.TRH/2 {
		e.count = 0
		d.Mitigated = true
		d.ExtraLatency = t.RefreshLatency
		if t.engine != nil {
			t.engine.ResetRow(row)
		}
	}
	if t.tick%t.PruneInterval == 0 {
		t.prune()
	}
	return t.record(d)
}

// prune drops entries whose activation rate is too low to ever reach the
// threshold within the remaining window (the "twice" insight).
func (t *TWiCE) prune() {
	for idx, e := range t.entries {
		age := t.tick - e.firstTick + 1
		// Rows accumulating at less than half the required rate cannot
		// reach TRH before refresh; drop them.
		if float64(e.count) < float64(t.TRH)*float64(age)/float64(4*t.PruneInterval) {
			delete(t.entries, idx)
		}
	}
}

// TableSize returns the live tracker entry count (TWiCE's pruning keeps
// this bounded; exported for tests).
func (t *TWiCE) TableSize() int { return len(t.entries) }

// OnWindowReset implements Defense.
func (t *TWiCE) OnWindowReset() {
	t.entries = make(map[int]*twiceEntry)
	t.tick = 0
}
