package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memmap"
	"repro/internal/nn"
	"repro/internal/quant"
)

func newSystem(t *testing.T) (*core.System, *memmap.Layout) {
	t.Helper()
	sys, err := core.NewSystem(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	qm := quant.NewModel(nn.NewResNet20(4, 0.125, 55))
	opts := memmap.DefaultOptions()
	opts.StartRow = 1
	opts.Avoid = func(a dram.RowAddr) bool { return sys.Controller().IsReserved(a) }
	layout, err := memmap.New(qm, sys.Device(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys, layout
}

func TestInferencePassCoversAllWeights(t *testing.T) {
	_, layout := newSystem(t)
	tr := &Trace{}
	if err := InferencePass(tr, layout, 64); err != nil {
		t.Fatal(err)
	}
	var total int
	for _, e := range tr.Entries {
		if e.Kind != Read || !e.Privileged {
			t.Fatal("inference pass must be privileged reads")
		}
		total += e.Len
	}
	if total != layout.QM.TotalWeights() {
		t.Fatalf("trace covers %d bytes, want %d", total, layout.QM.TotalWeights())
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	tr := &Trace{}
	tr.Append(
		Entry{Kind: Read, Phys: 4096, Len: 64, Privileged: true},
		Entry{Kind: Write, Phys: 128, Len: 8, Privileged: false},
		Entry{Kind: Hammer, Row: dram.RowAddr{Bank: 1, Row: 17}},
	)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip %d entries, want %d", back.Len(), tr.Len())
	}
	for i := range tr.Entries {
		if back.Entries[i] != tr.Entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, back.Entries[i], tr.Entries[i])
		}
	}
}

func TestParseCommentsAndErrors(t *testing.T) {
	ok := "# header\n\nR 100 4 P\nH 0 3\n"
	tr, err := Parse(strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("entries = %d", tr.Len())
	}
	for _, bad := range []string{"X 1 2\n", "R 1\n", "R a 4 P\n", "R 1 4 Z\n", "H 1\n"} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestInterleave(t *testing.T) {
	a := &Trace{}
	b := &Trace{}
	for i := 0; i < 4; i++ {
		a.Append(Entry{Kind: Read, Phys: int64(i), Len: 1, Privileged: true})
	}
	for i := 0; i < 2; i++ {
		b.Append(Entry{Kind: Hammer, Row: dram.RowAddr{Bank: 0, Row: i}})
	}
	out := Interleave(a, b, 2, 1)
	if out.Len() != 6 {
		t.Fatalf("len = %d", out.Len())
	}
	// Pattern: a a b a a b.
	if out.Entries[2].Kind != Hammer || out.Entries[5].Kind != Hammer {
		t.Fatal("interleave pattern wrong")
	}
}

func TestReplayCleanWorkload(t *testing.T) {
	sys, layout := newSystem(t)
	tr := &Trace{}
	if err := InferencePass(tr, layout, 64); err != nil {
		t.Fatal(err)
	}
	rs, err := Replay(tr, sys.Controller())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Denied != 0 {
		t.Fatalf("clean workload denied %d", rs.Denied)
	}
	if rs.TotalLatency <= 0 || rs.EnergyPJ <= 0 {
		t.Fatal("latency/energy not accounted")
	}
	// Sequential reads within rows should mostly row-hit.
	if rs.RowHitRate() < 0.5 {
		t.Fatalf("row hit rate %.2f too low for sequential sweep", rs.RowHitRate())
	}
}

func TestReplayDefendedAttackIsDenied(t *testing.T) {
	sys, layout := newSystem(t)
	if _, err := sys.ProtectWeights(layout); err != nil {
		t.Fatal(err)
	}
	victim := layout.WeightRows()[0]
	aggs := sys.Device().Geometry().Neighbors(victim, 1)
	tr := &Trace{}
	for _, a := range aggs {
		HammerBurst(tr, a, 50)
	}
	rs, err := Replay(tr, sys.Controller())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Requests != 50*len(aggs) {
		t.Fatalf("requests = %d", rs.Requests)
	}
	if sys.Hammer().History().TotalActivations != 0 {
		t.Fatal("hammering reached the array despite locks")
	}
}

// TestDefenseSlowdownIsBounded measures the paper's core performance
// claim: the victim's inference workload is barely slowed by DRAM-Locker
// because only aggressor-adjacent rows are locked, never the weights
// themselves.
func TestDefenseSlowdownIsBounded(t *testing.T) {
	run := func(protect bool) dram.Picoseconds {
		sys, layout := newSystem(t)
		if protect {
			if _, err := sys.ProtectWeights(layout); err != nil {
				t.Fatal(err)
			}
		}
		tr := &Trace{}
		for pass := 0; pass < 3; pass++ {
			if err := InferencePass(tr, layout, 64); err != nil {
				t.Fatal(err)
			}
		}
		rs, err := Replay(tr, sys.Controller())
		if err != nil {
			t.Fatal(err)
		}
		return rs.VictimLatency
	}
	base := run(false)
	defended := run(true)
	// Weights are never locked, so the only extra cost is lock-table
	// lookups: the slowdown must stay under 5%.
	ratio := float64(defended) / float64(base)
	if ratio > 1.05 {
		t.Fatalf("defended/undefended latency ratio %.3f, want <= 1.05", ratio)
	}
}

func TestRandomAccessStaysInRows(t *testing.T) {
	geom := dram.SmallGeometry()
	tr := &Trace{}
	RandomAccess(tr, geom, geom.CapacityBytes(), 200, 32, 9)
	rb := int64(geom.RowBytes)
	for _, e := range tr.Entries {
		if e.Phys%rb+int64(e.Len) > rb {
			t.Fatalf("burst at 0x%x len %d crosses a row boundary", e.Phys, e.Len)
		}
	}
	sys, _ := newSystem(t)
	if _, err := Replay(tr, sys.Controller()); err != nil {
		t.Fatal(err)
	}
}

func TestReplayMixedStreamAccounting(t *testing.T) {
	sys, layout := newSystem(t)
	if _, err := sys.ProtectWeights(layout); err != nil {
		t.Fatal(err)
	}
	legit := &Trace{}
	if err := InferencePass(legit, layout, 128); err != nil {
		t.Fatal(err)
	}
	attack := &Trace{}
	victim := layout.WeightRows()[0]
	for _, a := range sys.Device().Geometry().Neighbors(victim, 1) {
		HammerBurst(attack, a, 30)
	}
	mixed := Interleave(legit, attack, 4, 2)
	rs, err := Replay(mixed, sys.Controller())
	if err != nil {
		t.Fatal(err)
	}
	if rs.VictimLatency <= 0 {
		t.Fatal("victim latency missing")
	}
	if rs.VictimLatency >= rs.TotalLatency {
		t.Fatal("attacker stream latency must be non-zero")
	}
}

func TestReplayInvalidEntrySurfacesError(t *testing.T) {
	sys, _ := newSystem(t)
	tr := &Trace{}
	tr.Append(Entry{Kind: Read, Phys: -1, Len: 4, Privileged: true})
	if _, err := Replay(tr, sys.Controller()); err == nil {
		t.Fatal("invalid phys must surface as replay error")
	}
}
