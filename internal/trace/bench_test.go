package trace

// Replay gauge (make bench-attack): drives a mixed read/write/hammer
// trace through the controller over the dense lock-table and rowhammer
// state. Allocs/op tracks the zero-alloc dispatch path (reused read and
// write buffers, array-indexed lock lookups, epoch-stamped hammer
// counters).

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
)

// BenchmarkReplayDense replays a 3000-entry trace: 2000 random
// privileged reads, 500 writes, 500 attacker hammers on one row.
func BenchmarkReplayDense(b *testing.B) {
	sys, err := core.NewSystem(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	tr := &Trace{}
	RandomAccess(tr, sys.Device().Geometry(), 1<<16, 2000, 64, 7)
	for i := 0; i < 500; i++ {
		tr.Append(Entry{Kind: Write, Phys: int64((i % 64) * 256), Len: 64, Privileged: true})
	}
	HammerBurst(tr, dram.RowAddr{Bank: 0, Row: 40}, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Replay(tr, sys.Controller()); err != nil {
			b.Fatal(err)
		}
	}
}
