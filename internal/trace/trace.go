// Package trace provides memory-trace generation, serialization and replay
// through the DRAM-Locker controller — the reproduction's stand-in for the
// paper's gem5 stage (Fig. 6): workloads are expressed as request traces,
// replayed against the controller, and summarised into the latency and
// energy statistics the evaluation consumes.
//
// Trace text format, one request per line:
//
//	R <phys> <len> <P|U>    read
//	W <phys> <len> <P|U>    write (payload is synthesized)
//	H <bank> <row>          attacker hammer attempt (PRE+ACT)
//	# comment
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/controller"
	"repro/internal/dram"
	"repro/internal/memmap"
	"repro/internal/stats"
)

// Kind is the request type in a trace.
type Kind uint8

// Trace entry kinds.
const (
	Read Kind = iota
	Write
	Hammer
)

// Entry is one trace line.
type Entry struct {
	Kind       Kind
	Phys       int64
	Len        int
	Privileged bool
	// Row is used by Hammer entries.
	Row dram.RowAddr
}

// Trace is an ordered request stream.
type Trace struct {
	Entries []Entry
}

// Len returns the number of entries.
func (t *Trace) Len() int { return len(t.Entries) }

// Append adds entries to the trace.
func (t *Trace) Append(es ...Entry) { t.Entries = append(t.Entries, es...) }

// --- Generators -----------------------------------------------------------------

// InferencePass appends the access pattern of one DNN inference: a
// sequential read sweep over every weight row of the layout (weights are
// streamed once per forward pass), in reads of burstBytes.
func InferencePass(t *Trace, layout *memmap.Layout, burstBytes int) error {
	if burstBytes <= 0 {
		return fmt.Errorf("trace: burstBytes must be positive, got %d", burstBytes)
	}
	total := layout.QM.TotalWeights()
	for w := 0; w < total; w += burstBytes {
		n := burstBytes
		if w+n > total {
			n = total - w
		}
		// A burst must not cross a row boundary.
		rb := layout.Dev.Geometry().RowBytes
		if rem := rb - w%rb; n > rem {
			n = rem
		}
		phys, err := layout.PhysOfWeight(w)
		if err != nil {
			return err
		}
		t.Append(Entry{Kind: Read, Phys: phys, Len: n, Privileged: true})
	}
	return nil
}

// HammerBurst appends n attacker hammer attempts on the given row.
func HammerBurst(t *Trace, row dram.RowAddr, n int) {
	for i := 0; i < n; i++ {
		t.Append(Entry{Kind: Hammer, Row: row})
	}
}

// Interleave builds a new trace alternating blocks of a and b: blockA
// entries from a, then blockB from b, repeating until both are drained.
func Interleave(a, b *Trace, blockA, blockB int) *Trace {
	if blockA <= 0 {
		blockA = 1
	}
	if blockB <= 0 {
		blockB = 1
	}
	out := &Trace{}
	i, j := 0, 0
	for i < len(a.Entries) || j < len(b.Entries) {
		for k := 0; k < blockA && i < len(a.Entries); k++ {
			out.Append(a.Entries[i])
			i++
		}
		for k := 0; k < blockB && j < len(b.Entries); k++ {
			out.Append(b.Entries[j])
			j++
		}
	}
	return out
}

// RandomAccess appends n uniformly random privileged reads over the first
// span bytes of the address space (background workload noise).
func RandomAccess(t *Trace, geom dram.Geometry, span int64, n, size int, seed uint64) {
	rng := stats.NewRNG(seed)
	rb := int64(geom.RowBytes)
	if span > geom.CapacityBytes() {
		span = geom.CapacityBytes()
	}
	for i := 0; i < n; i++ {
		phys := rng.Int63() % span
		// Keep the burst within one row.
		if phys%rb+int64(size) > rb {
			phys -= phys%rb + int64(size) - rb
		}
		if phys < 0 {
			phys = 0
		}
		t.Append(Entry{Kind: Read, Phys: phys, Len: size, Privileged: true})
	}
}

// --- Serialization ---------------------------------------------------------------

// WriteTo serialises the trace in the text format.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, e := range t.Entries {
		var line string
		switch e.Kind {
		case Read, Write:
			k := "R"
			if e.Kind == Write {
				k = "W"
			}
			p := "U"
			if e.Privileged {
				p = "P"
			}
			line = fmt.Sprintf("%s %d %d %s\n", k, e.Phys, e.Len, p)
		case Hammer:
			line = fmt.Sprintf("H %d %d\n", e.Row.Bank, e.Row.Row)
		}
		m, err := bw.WriteString(line)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Parse reads a trace from the text format.
func Parse(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		e, err := parseFields(fields)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		t.Append(e)
	}
	return t, sc.Err()
}

func parseFields(fields []string) (Entry, error) {
	switch fields[0] {
	case "R", "W":
		if len(fields) != 4 {
			return Entry{}, fmt.Errorf("want 'R|W phys len P|U', got %v", fields)
		}
		phys, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return Entry{}, err
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil {
			return Entry{}, err
		}
		var priv bool
		switch fields[3] {
		case "P":
			priv = true
		case "U":
		default:
			return Entry{}, fmt.Errorf("privilege flag %q", fields[3])
		}
		k := Read
		if fields[0] == "W" {
			k = Write
		}
		return Entry{Kind: k, Phys: phys, Len: n, Privileged: priv}, nil
	case "H":
		if len(fields) != 3 {
			return Entry{}, fmt.Errorf("want 'H bank row', got %v", fields)
		}
		bank, err := strconv.Atoi(fields[1])
		if err != nil {
			return Entry{}, err
		}
		row, err := strconv.Atoi(fields[2])
		if err != nil {
			return Entry{}, err
		}
		return Entry{Kind: Hammer, Row: dram.RowAddr{Bank: bank, Row: row}}, nil
	default:
		return Entry{}, fmt.Errorf("unknown kind %q", fields[0])
	}
}

// --- Replay -----------------------------------------------------------------------

// ReplayStats summarises one replay.
type ReplayStats struct {
	Requests      int
	Denied        int
	Swaps         int64
	RowHits       int64
	RowMisses     int64
	TotalLatency  dram.Picoseconds
	DeniedLatency dram.Picoseconds
	// VictimLatency is the latency charged to privileged requests only —
	// the defense's slowdown of the legitimate workload.
	VictimLatency dram.Picoseconds
	EnergyPJ      float64
}

// RowHitRate returns the fraction of accesses that hit the open row.
func (s ReplayStats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// Replay drives the trace through the controller and aggregates statistics.
//
// The per-entry dispatch is allocation-free in steady state: one write
// payload and one read destination are reused across every entry (grown
// only when an entry is larger than anything seen before), and read
// results land in the reused destination via Request.Buf instead of a
// per-request buffer.
func Replay(t *Trace, ctl *controller.Controller) (ReplayStats, error) {
	var rs ReplayStats
	startSwaps := ctl.Stats().Swaps
	startHits := ctl.Stats().RowHits
	startMisses := ctl.Stats().RowMisses
	startEnergy := ctl.Device().Stats().EnergyPJ
	payload := make([]byte, 256)
	readBuf := make([]byte, 256)
	for i := range t.Entries {
		e := &t.Entries[i]
		rs.Requests++
		switch e.Kind {
		case Hammer:
			activated, lat, err := ctl.HammerAttempt(e.Row)
			if err != nil {
				return rs, fmt.Errorf("trace: entry %d: %w", i, err)
			}
			rs.TotalLatency += lat
			if !activated {
				rs.Denied++
				rs.DeniedLatency += lat
			}
		case Read:
			if e.Len > len(readBuf) {
				readBuf = make([]byte, e.Len)
			}
			resp, err := ctl.Submit(controller.Request{
				Kind: controller.ReqRead, Phys: e.Phys, Len: e.Len, Privileged: e.Privileged,
				Buf: readBuf,
			})
			if err != nil {
				return rs, fmt.Errorf("trace: entry %d: %w", i, err)
			}
			rs.accumulate(resp, e.Privileged)
		case Write:
			if e.Len > len(payload) {
				payload = make([]byte, e.Len)
			}
			resp, err := ctl.Submit(controller.Request{
				Kind: controller.ReqWrite, Phys: e.Phys, Data: payload[:e.Len], Privileged: e.Privileged,
			})
			if err != nil {
				return rs, fmt.Errorf("trace: entry %d: %w", i, err)
			}
			rs.accumulate(resp, e.Privileged)
		}
	}
	rs.Swaps = ctl.Stats().Swaps - startSwaps
	rs.RowHits = ctl.Stats().RowHits - startHits
	rs.RowMisses = ctl.Stats().RowMisses - startMisses
	rs.EnergyPJ = ctl.Device().Stats().EnergyPJ - startEnergy
	return rs, nil
}

func (rs *ReplayStats) accumulate(resp controller.Response, privileged bool) {
	rs.TotalLatency += resp.Latency
	if resp.Denied {
		rs.Denied++
		rs.DeniedLatency += resp.Latency
	}
	if privileged {
		rs.VictimLatency += resp.Latency
	}
}
