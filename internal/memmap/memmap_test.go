package memmap

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/nn"
	"repro/internal/quant"
)

func newRig(t *testing.T, opts Options) (*dram.Device, *quant.Model, *Layout) {
	t.Helper()
	dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	if err != nil {
		t.Fatal(err)
	}
	qm := quant.NewModel(nn.NewResNet20(4, 0.125, 5))
	l, err := New(qm, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	return dev, qm, l
}

func TestPlacementStrideLeavesGaps(t *testing.T) {
	_, _, l := newRig(t, DefaultOptions())
	rows := l.WeightRows()
	if len(rows) < 2 {
		t.Skip("model too small for this geometry")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Bank != rows[i-1].Bank {
			continue
		}
		if rows[i].Row-rows[i-1].Row < 2 {
			t.Fatalf("rows %v and %v adjacent; stride 2 must leave gaps", rows[i-1], rows[i])
		}
	}
}

func TestAggressorRowsAreNeighborsNotWeights(t *testing.T) {
	dev, _, l := newRig(t, DefaultOptions())
	geom := dev.Geometry()
	aggs := l.AggressorRows(1)
	if len(aggs) == 0 {
		t.Fatal("no aggressor rows found")
	}
	for _, a := range aggs {
		if l.IsWeightRow(a) {
			t.Fatalf("aggressor %v is itself a weight row", a)
		}
		// Every aggressor is adjacent to at least one weight row.
		adjacent := false
		for _, n := range geom.Neighbors(a, 1) {
			if l.IsWeightRow(n) {
				adjacent = true
			}
		}
		if !adjacent {
			t.Fatalf("aggressor %v not adjacent to any weight row", a)
		}
	}
}

func TestEveryWeightRowIsCovered(t *testing.T) {
	dev, _, l := newRig(t, DefaultOptions())
	geom := dev.Geometry()
	aggSet := make(map[int]bool)
	for _, a := range l.AggressorRows(1) {
		aggSet[geom.LinearIndex(a)] = true
	}
	for _, wr := range l.WeightRows() {
		for _, n := range geom.Neighbors(wr, 1) {
			if !l.IsWeightRow(n) && !aggSet[geom.LinearIndex(n)] {
				t.Fatalf("neighbor %v of weight row %v missing from aggressor set", n, wr)
			}
		}
	}
}

func TestWriteAllStoresQuantizedBytes(t *testing.T) {
	dev, qm, l := newRig(t, DefaultOptions())
	// Check the first few weights byte-for-byte.
	for w := 0; w < 16 && w < qm.TotalWeights(); w++ {
		row, col, err := l.rowAndCol(w)
		if err != nil {
			t.Fatal(err)
		}
		data, err := dev.PeekRow(row)
		if err != nil {
			t.Fatal(err)
		}
		pi, li := qm.Locate(w)
		if int8(data[col]) != qm.Params[pi].Get(li) {
			t.Fatalf("weight %d: DRAM %d != model %d", w, int8(data[col]), qm.Params[pi].Get(li))
		}
	}
}

func TestSyncFromDRAMPropagatesFlips(t *testing.T) {
	dev, qm, l := newRig(t, DefaultOptions())
	const target = 5
	row, bit, err := l.LocationOfBit(target, 7)
	if err != nil {
		t.Fatal(err)
	}
	pi, li := qm.Locate(target)
	before := qm.Params[pi].Get(li)
	beforeFloat := qm.Params[pi].Param.W.Data[li]

	if err := dev.FlipBit(row, bit); err != nil {
		t.Fatal(err)
	}
	changed, err := l.SyncFromDRAM()
	if err != nil {
		t.Fatal(err)
	}
	if changed != 1 {
		t.Fatalf("changed = %d, want 1", changed)
	}
	after := qm.Params[pi].Get(li)
	if after == before {
		t.Fatal("model value unchanged after DRAM flip")
	}
	if int(after)-int(before) != quant.BitDelta(before, 7) {
		t.Fatalf("delta %d, want MSB delta %d", int(after)-int(before), quant.BitDelta(before, 7))
	}
	if qm.Params[pi].Param.W.Data[li] == beforeFloat {
		t.Fatal("float view not refreshed")
	}
	// Sync again: nothing more to do.
	changed, _ = l.SyncFromDRAM()
	if changed != 0 {
		t.Fatalf("second sync changed %d", changed)
	}
}

func TestLocationOfBitConsistentWithPhys(t *testing.T) {
	dev, qm, l := newRig(t, DefaultOptions())
	mapper := dram.NewAddrMapper(dev.Geometry())
	for w := 0; w < qm.TotalWeights(); w += 997 {
		phys, err := l.PhysOfWeight(w)
		if err != nil {
			t.Fatal(err)
		}
		row, col, err := mapper.Translate(phys)
		if err != nil {
			t.Fatal(err)
		}
		row2, bit, err := l.LocationOfBit(w, 3)
		if err != nil {
			t.Fatal(err)
		}
		if row2 != row || bit != col*8+3 {
			t.Fatalf("weight %d: (%v,%d) vs (%v,%d)", w, row2, bit, row, col*8+3)
		}
	}
}

func TestAvoidExcludesRows(t *testing.T) {
	dev, err := dram.NewDevice(dram.SmallGeometry(), dram.DDR4Timing())
	if err != nil {
		t.Fatal(err)
	}
	qm := quant.NewModel(nn.NewResNet20(4, 0.125, 5))
	opts := DefaultOptions()
	opts.Avoid = func(a dram.RowAddr) bool { return a.Row%4 == 0 }
	l, err := New(qm, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range l.WeightRows() {
		if r.Row%4 == 0 {
			t.Fatalf("avoided row %v was allocated", r)
		}
	}
}

func TestGeometryExhaustion(t *testing.T) {
	tiny := dram.Geometry{Ranks: 1, BanksPerRank: 1, SubarraysPerBank: 1, RowsPerSubarray: 4, RowBytes: 16}
	dev, err := dram.NewDevice(tiny, dram.DDR4Timing())
	if err != nil {
		t.Fatal(err)
	}
	qm := quant.NewModel(nn.NewResNet20(4, 0.25, 5))
	if _, err := New(qm, dev, DefaultOptions()); err == nil {
		t.Fatal("oversized model must fail placement")
	}
}

func TestOptionsValidation(t *testing.T) {
	geom := dram.SmallGeometry()
	bad := []Options{
		{RowStride: 0},
		{RowStride: 1, StartBank: -1},
		{RowStride: 1, StartRow: 1 << 20},
	}
	for i, o := range bad {
		if err := o.Validate(geom); err == nil {
			t.Errorf("options %d must fail", i)
		}
	}
}

func TestWeightsInRowBounds(t *testing.T) {
	dev, qm, l := newRig(t, DefaultOptions())
	rb := dev.Geometry().RowBytes
	total := 0
	for i := range l.WeightRows() {
		lo, hi := l.WeightsInRow(i)
		if hi-lo > rb {
			t.Fatalf("row %d holds %d weights > rowBytes", i, hi-lo)
		}
		total += hi - lo
	}
	if total != qm.TotalWeights() {
		t.Fatalf("rows cover %d weights, want %d", total, qm.TotalWeights())
	}
}
