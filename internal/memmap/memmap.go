// Package memmap places a quantized DNN's weights into simulated DRAM rows
// and keeps the two views coherent: the attack flips bits in the DRAM
// arrays (through RowHammer), and the victim model's weights are refreshed
// from DRAM contents, so defense interception has exactly the effect it
// would have on a real system.
//
// Placement follows the paper's threat model (§III assumption 3): weight
// rows are *scattered* — interleaved with attacker-mappable rows — rather
// than packed contiguously. The default stride of 2 leaves a non-weight
// row between consecutive weight rows, which is what gives the attacker
// its aggressor rows and gives the lock-table something to lock.
package memmap

import (
	"fmt"
	"sort"

	"repro/internal/dram"
	"repro/internal/quant"
)

// Options controls weight placement.
type Options struct {
	// StartBank and StartRow position the first weight row.
	StartBank, StartRow int
	// RowStride is the spacing between consecutive weight rows within a
	// bank (2 = one attacker-mappable gap row between weight rows).
	RowStride int
	// Avoid excludes rows from allocation (e.g. the controller's reserved
	// buffer and free-pool rows). May be nil.
	Avoid func(dram.RowAddr) bool
}

// DefaultOptions returns the paper-faithful scattered placement.
func DefaultOptions() Options { return Options{RowStride: 2} }

// Validate checks the options against a geometry.
func (o Options) Validate(geom dram.Geometry) error {
	if o.RowStride < 1 {
		return fmt.Errorf("memmap: RowStride must be >= 1, got %d", o.RowStride)
	}
	if o.StartBank < 0 || o.StartBank >= geom.Banks() {
		return fmt.Errorf("memmap: StartBank %d outside %d banks", o.StartBank, geom.Banks())
	}
	if o.StartRow < 0 || o.StartRow >= geom.RowsPerBank() {
		return fmt.Errorf("memmap: StartRow %d outside bank", o.StartRow)
	}
	return nil
}

// Layout records where each quantized weight lives in DRAM.
type Layout struct {
	QM     *quant.Model
	Dev    *dram.Device
	Mapper dram.AddrMapper

	rows   []dram.RowAddr // allocation order; weight w is in rows[w/RowBytes]
	rowSet map[int]bool
}

// New lays the model's quantized weights out in DRAM under the options and
// writes their current values into the device.
func New(qm *quant.Model, dev *dram.Device, opts Options) (*Layout, error) {
	geom := dev.Geometry()
	if err := opts.Validate(geom); err != nil {
		return nil, err
	}
	l := &Layout{
		QM:     qm,
		Dev:    dev,
		Mapper: dram.NewAddrMapper(geom),
		rowSet: make(map[int]bool),
	}
	needRows := (qm.TotalWeights() + geom.RowBytes - 1) / geom.RowBytes
	bank, row := opts.StartBank, opts.StartRow
	for len(l.rows) < needRows {
		if bank >= geom.Banks() {
			return nil, fmt.Errorf("memmap: geometry exhausted after %d of %d rows", len(l.rows), needRows)
		}
		a := dram.RowAddr{Bank: bank, Row: row}
		if opts.Avoid == nil || !opts.Avoid(a) {
			l.rows = append(l.rows, a)
			l.rowSet[geom.LinearIndex(a)] = true
		}
		row += opts.RowStride
		if row >= geom.RowsPerBank() {
			row = opts.StartRow
			bank++
		}
	}
	if err := l.WriteAll(); err != nil {
		return nil, err
	}
	return l, nil
}

// rowAndCol returns the DRAM row and byte column of a global weight.
func (l *Layout) rowAndCol(globalW int) (dram.RowAddr, int, error) {
	rb := l.Dev.Geometry().RowBytes
	ri := globalW / rb
	if globalW < 0 || ri >= len(l.rows) {
		return dram.RowAddr{}, 0, fmt.Errorf("memmap: weight %d outside layout", globalW)
	}
	return l.rows[ri], globalW % rb, nil
}

// PhysOfWeight returns the physical byte address of a global weight index.
func (l *Layout) PhysOfWeight(globalW int) (int64, error) {
	row, col, err := l.rowAndCol(globalW)
	if err != nil {
		return 0, err
	}
	return l.Mapper.Untranslate(row, col)
}

// LocationOfBit returns the DRAM row and in-row bit position of bit k of a
// global weight.
func (l *Layout) LocationOfBit(globalW, k int) (dram.RowAddr, int, error) {
	if k < 0 || k >= quant.Bits {
		return dram.RowAddr{}, 0, fmt.Errorf("memmap: bit %d out of range", k)
	}
	row, col, err := l.rowAndCol(globalW)
	if err != nil {
		return dram.RowAddr{}, 0, err
	}
	return row, col*8 + k, nil
}

// WeightsInRow returns the global weight index range [lo, hi) stored in
// the i-th allocated row.
func (l *Layout) WeightsInRow(i int) (lo, hi int) {
	rb := l.Dev.Geometry().RowBytes
	lo = i * rb
	hi = lo + rb
	if hi > l.QM.TotalWeights() {
		hi = l.QM.TotalWeights()
	}
	return lo, hi
}

// WeightRows returns every DRAM row containing weights, in allocation
// order. The returned slice is shared; do not modify.
func (l *Layout) WeightRows() []dram.RowAddr { return l.rows }

// IsWeightRow reports whether a row holds any weights.
func (l *Layout) IsWeightRow(a dram.RowAddr) bool {
	return l.rowSet[l.Dev.Geometry().LinearIndex(a)]
}

// AggressorRows returns the rows physically adjacent (within distance) to
// any weight row — the lock-table's protection set. Weight rows themselves
// are excluded (they are frequently accessed; locking them would force
// constant unlocks, which is exactly what the paper argues against).
func (l *Layout) AggressorRows(distance int) []dram.RowAddr {
	geom := l.Dev.Geometry()
	seen := make(map[int]bool)
	var out []dram.RowAddr
	for _, wr := range l.rows {
		for d := 1; d <= distance; d++ {
			for _, n := range geom.Neighbors(wr, d) {
				li := geom.LinearIndex(n)
				if seen[li] || l.rowSet[li] {
					continue
				}
				seen[li] = true
				out = append(out, n)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return geom.LinearIndex(out[i]) < geom.LinearIndex(out[j])
	})
	return out
}

// WriteAll writes every quantized weight into DRAM (out-of-band: the
// initial model load, not part of the measured request stream).
func (l *Layout) WriteAll() error {
	total := l.QM.TotalWeights()
	for ri := range l.rows {
		lo, hi := l.WeightsInRow(ri)
		if lo >= total {
			break
		}
		data, err := l.Dev.PeekRow(l.rows[ri])
		if err != nil {
			return err
		}
		for w := lo; w < hi; w++ {
			pi, li := l.QM.Locate(w)
			data[w-lo] = byte(l.QM.Params[pi].Get(li))
		}
		if err := l.Dev.PokeRow(l.rows[ri], data); err != nil {
			return err
		}
	}
	return nil
}

// SyncFromDRAM reads every weight row back from the device and refreshes
// the quantized model (and its float weights) to match the stored bits.
// It returns the number of weights whose value changed.
func (l *Layout) SyncFromDRAM() (int, error) {
	changed := 0
	for ri := range l.rows {
		lo, hi := l.WeightsInRow(ri)
		data, err := l.Dev.PeekRow(l.rows[ri])
		if err != nil {
			return changed, err
		}
		for w := lo; w < hi; w++ {
			pi, li := l.QM.Locate(w)
			qp := l.QM.Params[pi]
			nv := int8(data[w-lo])
			if qp.Get(li) != nv {
				qp.Q[li] = nv
				qp.Param.W.Data[li] = quant.Dequantize(nv, qp.Scale)
				changed++
			}
		}
	}
	return changed, nil
}

// FootprintBytes returns the weight storage size.
func (l *Layout) FootprintBytes() int64 { return int64(l.QM.TotalWeights()) }
