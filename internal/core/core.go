// Package core is the top-level DRAM-Locker API: it assembles the DRAM
// device, the RowHammer fault model, the DRAM-Locker memory controller
// (lock-table + ISA SWAP sequencer) and the protection policies into one
// system a user can drop a workload onto.
//
// Typical use:
//
//	sys, _ := core.NewSystem(core.DefaultConfig())
//	layout, _ := memmap.New(quantModel, sys.Device(), memmap.DefaultOptions())
//	sys.ProtectWeights(layout)          // lock aggressor-candidate rows
//	...
//	sys.Controller().Submit(req)        // guarded accesses
package core

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/dram"
	"repro/internal/locktable"
	"repro/internal/memmap"
	"repro/internal/pagetable"
	"repro/internal/rowhammer"
)

// Config assembles the full system configuration.
type Config struct {
	Geometry   dram.Geometry
	Timing     dram.Timing
	Hammer     rowhammer.Config
	Controller controller.Config
	// LockDistance is how far (in rows) from protected data the
	// aggressor-candidate locking reaches. 1 covers the paper's model;
	// 2 additionally defends Half-Double patterns.
	LockDistance int
}

// DefaultConfig returns the paper's operating point on a small test
// geometry. Production-scale runs swap in dram.DefaultGeometry().
func DefaultConfig() Config {
	return Config{
		Geometry:     dram.SmallGeometry(),
		Timing:       dram.DDR4Timing(),
		Hammer:       rowhammer.DefaultConfig(),
		Controller:   controller.DefaultConfig(),
		LockDistance: 1,
	}
}

// Validate checks the assembled configuration.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if err := c.Hammer.Validate(); err != nil {
		return err
	}
	if err := c.Controller.Validate(); err != nil {
		return err
	}
	if c.LockDistance < 1 || c.LockDistance > 2 {
		return fmt.Errorf("core: LockDistance must be 1 or 2, got %d", c.LockDistance)
	}
	return nil
}

// System is an assembled DRAM-Locker deployment.
type System struct {
	cfg    Config
	dev    *dram.Device
	hammer *rowhammer.Engine
	ctl    *controller.Controller
}

// NewSystem builds the device, fault model and controller.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dev, err := dram.NewDevice(cfg.Geometry, cfg.Timing)
	if err != nil {
		return nil, err
	}
	hammer, err := rowhammer.New(dev, cfg.Hammer)
	if err != nil {
		return nil, err
	}
	ctl, err := controller.New(dev, cfg.Controller)
	if err != nil {
		return nil, err
	}
	return &System{cfg: cfg, dev: dev, hammer: hammer, ctl: ctl}, nil
}

// Device returns the DRAM device.
func (s *System) Device() *dram.Device { return s.dev }

// Hammer returns the RowHammer fault engine.
func (s *System) Hammer() *rowhammer.Engine { return s.hammer }

// Controller returns the DRAM-Locker memory controller.
func (s *System) Controller() *controller.Controller { return s.ctl }

// Table returns the lock-table.
func (s *System) Table() *locktable.Table { return s.ctl.Table() }

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// ProtectWeights locks every row physically adjacent to the layout's
// weight rows (the paper's recommended policy: lock aggressor candidates,
// not the frequently-accessed weights themselves). It returns the number
// of rows locked.
func (s *System) ProtectWeights(layout *memmap.Layout) (int, error) {
	locked := 0
	for _, row := range layout.AggressorRows(s.cfg.LockDistance) {
		if s.ctl.IsReserved(row) || s.ctl.Table().Contains(row) {
			continue
		}
		if err := s.ctl.LockRow(row); err != nil {
			return locked, fmt.Errorf("core: locking %v: %w", row, err)
		}
		locked++
	}
	return locked, nil
}

// ProtectPageTable locks the rows adjacent to every page-table row, the
// PTA counterpart of ProtectWeights.
func (s *System) ProtectPageTable(t *pagetable.Table) (int, error) {
	geom := s.dev.Geometry()
	locked := 0
	for _, ptr := range t.PTRows() {
		for d := 1; d <= s.cfg.LockDistance; d++ {
			for _, n := range geom.Neighbors(ptr, d) {
				if s.ctl.IsReserved(n) || s.ctl.Table().Contains(n) {
					continue
				}
				if err := s.ctl.LockRow(n); err != nil {
					return locked, fmt.Errorf("core: locking %v: %w", n, err)
				}
				locked++
			}
		}
	}
	return locked, nil
}

// ProtectRow adds one explicit row to the lock-table (the paper's "users
// can manually add any row that has a high probability of becoming an
// aggressor row").
func (s *System) ProtectRow(row dram.RowAddr) error { return s.ctl.LockRow(row) }

// SetProcessCorner adjusts the per-copy SWAP error probability to a
// process-variation corner (use circuit.MonteCarlo results: 0 at nominal,
// 0.0014/3 per copy at ±10%, ~0.033 at ±20%).
func (s *System) SetProcessCorner(perCopyError float64) error {
	return s.ctl.CloneEngine().SetCopyErrorProb(perCopyError)
}
