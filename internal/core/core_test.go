package core

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/memmap"
	"repro/internal/nn"
	"repro/internal/pagetable"
	"repro/internal/quant"
)

func newSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemWiresComponents(t *testing.T) {
	sys := newSystem(t)
	if sys.Device() == nil || sys.Hammer() == nil || sys.Controller() == nil || sys.Table() == nil {
		t.Fatal("missing component")
	}
	// The hammer engine must observe activations issued by the controller.
	row := dram.RowAddr{Bank: 0, Row: 10}
	sys.Controller().HammerAttempt(row)
	if sys.Hammer().Count(row) != 1 {
		t.Fatal("hammer engine not observing controller activations")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.LockDistance = 3
	if _, err := NewSystem(bad); err == nil {
		t.Fatal("LockDistance 3 must fail")
	}
	bad = DefaultConfig()
	bad.Hammer.TRH = 0
	if _, err := NewSystem(bad); err == nil {
		t.Fatal("bad hammer config must fail")
	}
}

func layoutFor(t *testing.T, sys *System) (*quant.Model, *memmap.Layout) {
	return layoutForStride(t, sys, 2)
}

func layoutForStride(t *testing.T, sys *System, stride int) (*quant.Model, *memmap.Layout) {
	t.Helper()
	qm := quant.NewModel(nn.NewResNet20(4, 0.125, 9))
	opts := memmap.DefaultOptions()
	opts.StartRow = 1
	opts.RowStride = stride
	opts.Avoid = func(a dram.RowAddr) bool { return sys.Controller().IsReserved(a) }
	layout, err := memmap.New(qm, sys.Device(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return qm, layout
}

func TestProtectWeightsLocksAggressors(t *testing.T) {
	sys := newSystem(t)
	_, layout := layoutFor(t, sys)
	locked, err := sys.ProtectWeights(layout)
	if err != nil {
		t.Fatal(err)
	}
	if locked == 0 {
		t.Fatal("nothing locked")
	}
	for _, a := range layout.AggressorRows(1) {
		if sys.Controller().IsReserved(a) {
			continue
		}
		if !sys.Table().IsLocked(a) {
			t.Fatalf("aggressor %v not locked", a)
		}
	}
	// Weight rows themselves stay unlocked.
	for _, wr := range layout.WeightRows() {
		if sys.Table().IsLocked(wr) {
			t.Fatalf("weight row %v must not be locked", wr)
		}
	}
	// Idempotent: calling again locks nothing new.
	again, err := sys.ProtectWeights(layout)
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Fatalf("second call locked %d rows", again)
	}
}

func TestProtectWeightsStopsHammering(t *testing.T) {
	sys := newSystem(t)
	_, layout := layoutFor(t, sys)
	if _, err := sys.ProtectWeights(layout); err != nil {
		t.Fatal(err)
	}
	victim := layout.WeightRows()[0]
	geom := sys.Device().Geometry()
	for _, agg := range geom.Neighbors(victim, 1) {
		for i := 0; i < sys.Config().Hammer.TRH*2; i++ {
			activated, _, err := sys.Controller().HammerAttempt(agg)
			if err != nil {
				t.Fatal(err)
			}
			if activated {
				t.Fatalf("activation of locked aggressor %v allowed", agg)
			}
		}
	}
	if sys.Hammer().History().TotalFlips != 0 {
		t.Fatal("flips occurred despite protection")
	}
}

func TestProtectPageTable(t *testing.T) {
	sys := newSystem(t)
	ptRows := []dram.RowAddr{{Bank: 1, Row: 10}, {Bank: 1, Row: 14}}
	tab, err := pagetable.New(sys.Device(), ptRows, 8)
	if err != nil {
		t.Fatal(err)
	}
	locked, err := sys.ProtectPageTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	// 8 pages fit in one PT row (256B / 8B = 32 entries), so the table
	// trims to one row with two lockable neighbors.
	if len(tab.PTRows()) != 1 {
		t.Fatalf("PT rows = %d, want 1", len(tab.PTRows()))
	}
	if locked != 2 {
		t.Fatalf("locked %d rows, want 2 (two neighbors of the PT row)", locked)
	}
	geom := sys.Device().Geometry()
	for _, pt := range tab.PTRows() {
		for _, n := range geom.Neighbors(pt, 1) {
			if !sys.Table().IsLocked(n) {
				t.Fatalf("PT neighbor %v not locked", n)
			}
		}
	}
}

func TestProtectRowAndProcessCorner(t *testing.T) {
	sys := newSystem(t)
	row := dram.RowAddr{Bank: 0, Row: 20}
	if err := sys.ProtectRow(row); err != nil {
		t.Fatal(err)
	}
	if !sys.Table().IsLocked(row) {
		t.Fatal("manual lock missing")
	}
	if err := sys.SetProcessCorner(0.033); err != nil {
		t.Fatal(err)
	}
	if got := sys.Controller().CloneEngine().Config().CopyErrorProb; got != 0.033 {
		t.Fatalf("corner = %g", got)
	}
	if err := sys.SetProcessCorner(2); err == nil {
		t.Fatal("invalid corner must fail")
	}
}

func TestLockDistance2CoversHalfDouble(t *testing.T) {
	// Stride-3 placement leaves two free rows between weight rows, so
	// distance-2 locking has extra rows to claim (with stride 2 the
	// distance-2 neighbors are other weight rows and nothing changes).
	cfg := DefaultConfig()
	cfg.LockDistance = 2
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, layout := layoutForStride(t, sys, 3)
	lockedD2, err := sys.ProtectWeights(layout)
	if err != nil {
		t.Fatal(err)
	}

	sys1 := newSystem(t) // distance 1
	_, layout1 := layoutForStride(t, sys1, 3)
	lockedD1, err := sys1.ProtectWeights(layout1)
	if err != nil {
		t.Fatal(err)
	}
	if lockedD2 <= lockedD1 {
		t.Fatalf("distance 2 locked %d rows, distance 1 locked %d; want more", lockedD2, lockedD1)
	}
}
