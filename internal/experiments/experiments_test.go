package experiments

import (
	"strings"
	"sync"
	"testing"
)

func TestPresetByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "paper"} {
		p, err := PresetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name {
			t.Fatalf("preset name %q", p.Name)
		}
	}
	if _, err := PresetByName("huge"); err == nil {
		t.Fatal("unknown preset must fail")
	}
}

func TestPresetsAreInternallyConsistent(t *testing.T) {
	for _, p := range []Preset{Tiny(), Small(), PaperScale()} {
		if p.AttackBatch > p.TestN {
			t.Fatalf("%s: attack batch exceeds test set", p.Name)
		}
		if p.EvalN > p.TestN {
			t.Fatalf("%s: eval size exceeds test set", p.Name)
		}
		if err := p.Geometry.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := p.hammerConfig().Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := p.controllerConfig().Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
}

func TestFig1bThresholdValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("hammers 139k activations per generation")
	}
	rows, err := Fig1b()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FlipAtTRH {
			t.Fatalf("%s: flip at exactly TRH", r.Generation)
		}
		if !r.FlipPastTRH {
			t.Fatalf("%s: no flip past TRH", r.Generation)
		}
	}
}

func TestMonteCarloExperiment(t *testing.T) {
	p := Tiny()
	rows, err := MonteCarlo(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Measured != 0 {
		t.Fatalf("nominal corner rate %g", rows[0].Measured)
	}
	if rows[2].Measured <= rows[1].Measured {
		t.Fatal("error rate must grow with variation")
	}
}

func TestTable1Experiment(t *testing.T) {
	reports := Table1()
	if len(reports) != 10 {
		t.Fatalf("rows = %d", len(reports))
	}
	out := FormatTable1(reports)
	for _, frag := range []string{"DRAM-Locker", "SHADOW", "Graphene", "56KB", "0.02%"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Table I output missing %q:\n%s", frag, out)
		}
	}
}

func TestFig7Data(t *testing.T) {
	curves, err := Fig7aData()
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 5 {
		t.Fatalf("curves = %d", len(curves))
	}
	bars, err := Fig7bData()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bars {
		if b.LockerDays <= b.ShadowDays {
			t.Fatalf("trh=%d: DL %f <= SHADOW %f", b.Threshold, b.LockerDays, b.ShadowDays)
		}
	}
	if bars[0].LockerDays < 500 {
		t.Fatalf("DL @1k = %.0f days, paper reports >500", bars[0].LockerDays)
	}
	if bars[3].LockerDays < 4000 {
		t.Fatalf("DL @8k = %.0f days, paper annotates >4000", bars[3].LockerDays)
	}
}

// Fig8 at tiny scale is the repository's main integration test: it trains
// a victim, builds the full DRAM stack twice and runs the BFA end to end.
// It is shared by several checks below.
var (
	fig8Once sync.Once
	fig8Res  *Fig8Result
	fig8Err  error
)

func fig8Tiny(t *testing.T) *Fig8Result {
	t.Helper()
	fig8Once.Do(func() {
		fig8Res, fig8Err = Fig8(Tiny(), ArchResNet20, 10)
	})
	if fig8Err != nil {
		t.Fatal(fig8Err)
	}
	return fig8Res
}

func TestFig8ShapeMatchesPaper(t *testing.T) {
	r := fig8Tiny(t)
	if r.CleanAcc < 0.6 {
		t.Fatalf("victim clean accuracy %.2f too low to be meaningful", r.CleanAcc)
	}
	if r.LockedRows == 0 {
		t.Fatal("defended run locked nothing")
	}
	// Undefended: every iteration lands a flip.
	if r.Without.TotalFlips == 0 || r.Without.TotalDenied != 0 {
		t.Fatalf("undefended run: %d flips %d denied", r.Without.TotalFlips, r.Without.TotalDenied)
	}
	// Defended: most attempts denied (9.6% leak).
	if r.With.TotalDenied == 0 {
		t.Fatal("defended run denied nothing")
	}
	// The paper's headline: with DRAM-Locker the attacker needs more
	// iterations for the same damage; at equal iteration count the
	// defended accuracy must not be lower than the undefended one.
	if r.With.FinalAccuracy() < r.Without.FinalAccuracy() {
		t.Fatalf("defense made things worse: %.3f vs %.3f",
			r.With.FinalAccuracy(), r.Without.FinalAccuracy())
	}
}

func TestFig8Formatting(t *testing.T) {
	r := fig8Tiny(t)
	out := FormatFig8(r)
	for _, frag := range []string{"without DL", "with DL", "denied"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestFig8PTAShape(t *testing.T) {
	r, err := Fig8PTA(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	// PTA without defense wipes whole weight rows: collapse is fast.
	if r.Without.FinalAccuracy() >= r.CleanAcc/2 {
		t.Fatalf("undefended PTA barely hurt: %.3f (clean %.3f)",
			r.Without.FinalAccuracy(), r.CleanAcc)
	}
	// Defended: page-table rows locked, accuracy essentially preserved.
	if r.With.FinalAccuracy() < r.CleanAcc-0.15 {
		t.Fatalf("defended PTA accuracy %.3f, clean %.3f", r.With.FinalAccuracy(), r.CleanAcc)
	}
	if r.With.TotalDenied == 0 {
		t.Fatal("defended PTA denied nothing")
	}
}

func TestTrainVictimProducesUsableModel(t *testing.T) {
	p := Tiny()
	v, err := NewVictim(p, ArchResNet20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if v.CleanAcc < 0.5 {
		t.Fatalf("clean accuracy %.2f", v.CleanAcc)
	}
	if v.QM.TotalWeights() == 0 {
		t.Fatal("no quantized weights")
	}
	if v.AttackBatch.X.Shape[0] != p.AttackBatch {
		t.Fatalf("attack batch size %d", v.AttackBatch.X.Shape[0])
	}
	if _, err := NewVictim(p, Arch("mlp"), 10); err == nil {
		t.Fatal("unknown arch must fail")
	}
}
