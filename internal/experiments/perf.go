package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/trace"
)

// PerfResult quantifies DRAM-Locker's cost on the legitimate workload —
// the paper's claim that the defense "does not result in extra hardware
// burden" and only adds "a small amount of delay and energy".
type PerfResult struct {
	// Undefended and Defended replay the same mixed trace (DNN inference
	// sweeps interleaved with attacker hammering).
	Undefended, Defended trace.ReplayStats
	// VictimSlowdown is defended/undefended victim latency.
	VictimSlowdown float64
	// AttackerFlips counts disturbance flips landed in each run.
	UndefendedFlips, DefendedFlips int64
}

// Perf builds the mixed workload and replays it on both systems.
func Perf(p Preset) (*PerfResult, error) {
	return PerfCtx(context.Background(), p)
}

// PerfCtx is Perf under a cancellation context (polled through the
// victim training, the dominant cost).
func PerfCtx(ctx context.Context, p Preset) (*PerfResult, error) {
	build := func(protect bool) (*DefendedSystem, error) {
		v, err := NewVictimCtx(ctx, p, ArchResNet20, 10)
		if err != nil {
			return nil, err
		}
		return BuildSystem(p, v, protect, 0)
	}

	run := func(protect bool) (trace.ReplayStats, int64, error) {
		sysb, err := build(protect)
		if err != nil {
			return trace.ReplayStats{}, 0, err
		}
		legit := &trace.Trace{}
		for pass := 0; pass < 3; pass++ {
			if err := trace.InferencePass(legit, sysb.Layout, 64); err != nil {
				return trace.ReplayStats{}, 0, err
			}
		}
		attackT := &trace.Trace{}
		geom := sysb.Sys.Device().Geometry()
		for _, wr := range sysb.Layout.WeightRows()[:min(4, len(sysb.Layout.WeightRows()))] {
			for _, agg := range geom.Neighbors(wr, 1) {
				trace.HammerBurst(attackT, agg, p.TRH+p.TRH/2)
			}
		}
		mixed := trace.Interleave(legit, attackT, 8, 8)
		rs, err := trace.Replay(mixed, sysb.Sys.Controller())
		if err != nil {
			return trace.ReplayStats{}, 0, err
		}
		return rs, sysb.Sys.Hammer().History().TotalFlips, nil
	}

	var res PerfResult
	var err error
	if res.Undefended, res.UndefendedFlips, err = run(false); err != nil {
		return nil, err
	}
	if res.Defended, res.DefendedFlips, err = run(true); err != nil {
		return nil, err
	}
	if res.Undefended.VictimLatency > 0 {
		res.VictimSlowdown = float64(res.Defended.VictimLatency) / float64(res.Undefended.VictimLatency)
	}
	return &res, nil
}

// FormatPerf renders the slowdown report.
func FormatPerf(r *PerfResult) string {
	var b strings.Builder
	b.WriteString("Workload overhead under attack (3 inference passes + hammer bursts)\n")
	fmt.Fprintf(&b, "%-22s %14s %14s\n", "", "undefended", "defended")
	row := func(name string, u, d any) { fmt.Fprintf(&b, "%-22s %14v %14v\n", name, u, d) }
	row("victim latency", r.Undefended.VictimLatency, r.Defended.VictimLatency)
	row("total latency", r.Undefended.TotalLatency, r.Defended.TotalLatency)
	row("denied requests", r.Undefended.Denied, r.Defended.Denied)
	row("disturbance flips", r.UndefendedFlips, r.DefendedFlips)
	row("energy (nJ)", fmt.Sprintf("%.1f", r.Undefended.EnergyPJ/1000),
		fmt.Sprintf("%.1f", r.Defended.EnergyPJ/1000))
	fmt.Fprintf(&b, "victim slowdown: %.4fx\n", r.VictimSlowdown)
	return b.String()
}
