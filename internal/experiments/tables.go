package experiments

import (
	"repro/internal/circuit"
	"repro/internal/overhead"
	"repro/internal/sim"
)

// MonteCarlo reproduces §IV.D: the erroneous-SWAP rate at ±0/10/20%
// process variation, next to the paper's reported numbers.
type MonteCarloRow struct {
	Variation float64
	Measured  float64
	Paper     float64
}

// MonteCarlo runs the calibrated charge-sharing model.
func MonteCarlo(p Preset) ([]MonteCarloRow, error) {
	results, err := circuit.PaperSweep(circuit.Default45nm(), p.MCTrials, p.Seed+5)
	if err != nil {
		return nil, err
	}
	paper := circuit.PaperReportedSwapRates()
	var rows []MonteCarloRow
	for _, r := range results {
		rows = append(rows, MonteCarloRow{
			Variation: r.Variation,
			Measured:  r.SwapRate,
			Paper:     paper[r.Variation],
		})
	}
	return rows, nil
}

// Table1 reproduces the hardware-overhead comparison on the paper's
// 32GB 16-bank DDR4 configuration.
func Table1() []overhead.Report {
	return overhead.Table1(overhead.DefaultConfig())
}

// Fig7aData computes the latency-per-Tref curves (SHADOW at four
// thresholds + DRAM-Locker) over the paper's 0..8e4 BFA range.
func Fig7aData() ([]sim.Fig7aCurve, error) {
	return sim.Fig7a(sim.DefaultLatencyConfig(), 80000, 10000)
}

// Fig7bData computes the defense-time bars at thresholds 1k..8k.
func Fig7bData() ([]sim.Fig7bBar, error) {
	return sim.Fig7b(sim.DefaultDefenseTimeConfig())
}
