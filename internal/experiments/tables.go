package experiments

import (
	"repro/internal/circuit"
	"repro/internal/overhead"
	"repro/internal/sim"
)

// MonteCarlo reproduces §IV.D: the erroneous-SWAP rate at ±0/10/20%
// process variation, next to the paper's reported numbers.
type MonteCarloRow struct {
	Variation float64
	Measured  float64
	Paper     float64
}

// MonteCarloRowFor computes one variation point of the §IV.D sweep (one
// shard of the mc grid) under the exact seed the full sweep uses.
func MonteCarloRowFor(p Preset, i int) (MonteCarloRow, error) {
	r, err := circuit.PaperPoint(circuit.Default45nm(), i, p.MCTrials, p.Seed+5)
	if err != nil {
		return MonteCarloRow{}, err
	}
	return MonteCarloRow{
		Variation: r.Variation,
		Measured:  r.SwapRate,
		Paper:     circuit.PaperReportedSwapRates()[r.Variation],
	}, nil
}

// MonteCarlo runs the calibrated charge-sharing model.
func MonteCarlo(p Preset) ([]MonteCarloRow, error) {
	var rows []MonteCarloRow
	for i := range circuit.PaperVariations() {
		row, err := MonteCarloRowFor(p, i)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table1 reproduces the hardware-overhead comparison on the paper's
// 32GB 16-bank DDR4 configuration.
func Table1() []overhead.Report {
	return overhead.Table1(overhead.DefaultConfig())
}

// fig7aMaxBFA/fig7aStep are the paper's Fig. 7(a) x-axis (0..8e4 BFA in
// 1e4 steps), shared by the monolithic helper and the sharded grid.
const (
	fig7aMaxBFA = 80000
	fig7aStep   = 10000
)

// Fig7aData computes the latency-per-Tref curves (SHADOW at four
// thresholds + DRAM-Locker) over the paper's 0..8e4 BFA range.
func Fig7aData() ([]sim.Fig7aCurve, error) {
	return sim.Fig7a(sim.DefaultLatencyConfig(), fig7aMaxBFA, fig7aStep)
}

// Fig7bData computes the defense-time bars at thresholds 1k..8k.
func Fig7bData() ([]sim.Fig7bBar, error) {
	return sim.Fig7b(sim.DefaultDefenseTimeConfig())
}
