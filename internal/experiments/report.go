package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/overhead"
	"repro/internal/sim"
)

// FormatFig1a renders the Fig. 1(a) comparison as text.
func FormatFig1a(r *Fig1aResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 1(a): targeted BFA vs random flips (VGG-11, 100 classes)\n")
	fmt.Fprintf(&b, "clean accuracy: %.2f%%\n", r.CleanAcc*100)
	fmt.Fprintf(&b, "%8s %14s %14s\n", "flips", "BFA acc(%)", "random acc(%)")
	n := len(r.Targeted.Records)
	if len(r.Random.Records) < n {
		n = len(r.Random.Records)
	}
	step := n / 10
	if step < 1 {
		step = 1
	}
	for i := 0; i < n; i += step {
		fmt.Fprintf(&b, "%8d %14.2f %14.2f\n",
			r.Targeted.Records[i].Flips,
			r.Targeted.Records[i].Accuracy*100,
			r.Random.Records[i].Accuracy*100)
	}
	last := n - 1
	fmt.Fprintf(&b, "final: BFA %.2f%% after %d flips; random %.2f%% after %d flips\n",
		r.Targeted.Records[last].Accuracy*100, r.Targeted.TotalFlips,
		r.Random.Records[last].Accuracy*100, r.Random.TotalFlips)
	return b.String()
}

// FormatFig1b renders the threshold table.
func FormatFig1b(rows []Fig1bRow) string {
	var b strings.Builder
	b.WriteString("Fig 1(b): RowHammer thresholds (validated against the fault model)\n")
	fmt.Fprintf(&b, "%-14s %8s %10s %12s\n", "generation", "TRH", "flip@TRH", "flip@TRH+1")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8d %10v %12v\n", r.Generation, r.TRH, r.FlipAtTRH, r.FlipPastTRH)
	}
	return b.String()
}

// FormatMonteCarlo renders the §IV.D sweep.
func FormatMonteCarlo(rows []MonteCarloRow) string {
	var b strings.Builder
	b.WriteString("SWAP Monte-Carlo (erroneous SWAP rate vs process variation)\n")
	fmt.Fprintf(&b, "%10s %12s %12s\n", "variation", "measured(%)", "paper(%)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9.0f%% %12.2f %12.2f\n", r.Variation*100, r.Measured*100, r.Paper*100)
	}
	return b.String()
}

// FormatTable1 renders the hardware-overhead comparison.
func FormatTable1(reports []overhead.Report) string {
	var b strings.Builder
	b.WriteString("Table I: hardware overhead @ 32GB 16-bank DDR4\n")
	fmt.Fprintf(&b, "%-16s %-12s %-24s %-12s\n", "framework", "memory", "capacity overhead", "area")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-16s %-12s %-24s %-12s\n",
			r.Framework, r.InvolvedMemory(), r.CapacityCell(), r.AreaCell())
	}
	return b.String()
}

// FormatFig7a renders the latency curves.
func FormatFig7a(curves []sim.Fig7aCurve) string {
	var b strings.Builder
	b.WriteString("Fig 7(a): mitigation latency per Tref vs # of BFA\n")
	fmt.Fprintf(&b, "%-12s", "#BFA")
	for _, c := range curves {
		fmt.Fprintf(&b, " %12s", c.Label)
	}
	b.WriteByte('\n')
	if len(curves) == 0 || len(curves[0].Points) == 0 {
		return b.String()
	}
	for i := range curves[0].Points {
		fmt.Fprintf(&b, "%-12d", curves[0].Points[i].BFA)
		for _, c := range curves {
			p := c.Points[i]
			mark := " "
			if p.Compromised {
				mark = "*"
			}
			fmt.Fprintf(&b, " %11.5f%s", p.Latency.Seconds(), mark)
		}
		b.WriteByte('\n')
	}
	b.WriteString("(* = beyond SHADOW's defense threshold: integrity compromised)\n")
	return b.String()
}

// FormatFig7b renders the defense-time bars.
func FormatFig7b(bars []sim.Fig7bBar) string {
	var b strings.Builder
	b.WriteString("Fig 7(b): sustained defense time (days)\n")
	fmt.Fprintf(&b, "%10s %14s %14s\n", "threshold", "SHADOW", "DRAM-Locker")
	for _, bar := range bars {
		fmt.Fprintf(&b, "%10d %14.1f %14.1f\n", bar.Threshold, bar.ShadowDays, bar.LockerDays)
	}
	return b.String()
}

// FormatFig8 renders one accuracy-vs-iteration panel.
func FormatFig8(r *Fig8Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8 (%s, %d classes): accuracy under BFA, clean=%.2f%%, locked rows=%d\n",
		r.Arch, r.Classes, r.CleanAcc*100, r.LockedRows)
	b.WriteString(formatAttackPair(r.Without, r.With))
	return b.String()
}

// FormatFig8PTA renders the PTA panel.
func FormatFig8PTA(r *Fig8PTAResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8 (PTA variant): accuracy under page-table attack, clean=%.2f%%, locked rows=%d\n",
		r.CleanAcc*100, r.LockedRows)
	b.WriteString(formatAttackPair(r.Without, r.With))
	return b.String()
}

func formatAttackPair(without, with attack.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %16s %16s\n", "iteration", "without DL(%)", "with DL(%)")
	n := len(without.Records)
	if len(with.Records) < n {
		n = len(with.Records)
	}
	step := n / 10
	if step < 1 {
		step = 1
	}
	for i := 0; i < n; i += step {
		fmt.Fprintf(&b, "%10d %16.2f %16.2f\n",
			without.Records[i].Iteration,
			without.Records[i].Accuracy*100,
			with.Records[i].Accuracy*100)
	}
	fmt.Fprintf(&b, "final: without %.2f%% (%d flips); with %.2f%% (%d flips, %d denied)\n",
		without.FinalAccuracy()*100, without.TotalFlips,
		with.FinalAccuracy()*100, with.TotalFlips, with.TotalDenied)
	return b.String()
}

// FormatTable2 renders the software-defense comparison.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table II: defense comparison (ResNet-20, 10 classes)\n")
	fmt.Fprintf(&b, "%-24s %10s %14s %10s  %s\n", "model", "clean(%)", "post-attack(%)", "flips", "note")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %10.2f %14.2f %10d  %s\n",
			r.Model, r.CleanAcc*100, r.PostAttackAcc*100, r.BitFlips, r.Note)
	}
	return b.String()
}
