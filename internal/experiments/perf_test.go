package experiments

import (
	"strings"
	"testing"
)

func TestPerfMatchesPaperClaims(t *testing.T) {
	r, err := Perf(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Claim 1 (§IV-B): skipped attacker instructions eliminate their
	// latency, so the defended total latency is *lower* under attack.
	if r.Defended.TotalLatency >= r.Undefended.TotalLatency {
		t.Fatalf("defended total latency %v not below undefended %v",
			r.Defended.TotalLatency, r.Undefended.TotalLatency)
	}
	// Claim 2: the victim workload is essentially unaffected (adjacent
	// rows are locked, never the weights).
	if r.VictimSlowdown > 1.02 {
		t.Fatalf("victim slowdown %.4f, want <= 1.02", r.VictimSlowdown)
	}
	// Claim 3: protection is complete at the nominal corner.
	if r.DefendedFlips != 0 {
		t.Fatalf("defended run leaked %d flips", r.DefendedFlips)
	}
	if r.UndefendedFlips == 0 {
		t.Fatal("undefended run must demonstrate real flips")
	}
	if r.Defended.Denied == 0 {
		t.Fatal("defended run must deny the hammer bursts")
	}

	out := FormatPerf(r)
	for _, frag := range []string{"victim slowdown", "denied requests", "disturbance flips"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("report missing %q:\n%s", frag, out)
		}
	}
}
