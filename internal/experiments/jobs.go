package experiments

import (
	"fmt"
	"strings"

	"repro/internal/engine"
)

// CacheVersion stamps every result persisted by the on-disk cache
// (engine.OpenDiskCache). Bump it whenever a change could alter any
// experiment's output — a formula fix, a formatting tweak, a new shard
// layout — so stale entries written by older code are skipped on load.
// Preset knob changes need no bump: they alter the preset hash inside the
// cache key.
const CacheVersion = "exp1"

// JobNames lists the experiment ids registered per preset, in the order
// the paper presents them (cheap model-free tables first, then the
// training-heavy attack panels).
func JobNames() []string {
	return []string{
		"fig1b", "mc", "table1", "fig7a", "fig7b", "defense",
		"fig1a", "fig8a", "fig8b", "fig8pta", "table2", "perf",
	}
}

// jobTitles maps experiment ids to one-line descriptions.
var jobTitles = map[string]string{
	"fig1a":   "Fig 1(a): targeted BFA vs random flips (VGG-11/100)",
	"fig1b":   "Fig 1(b): RowHammer thresholds validated on the fault model",
	"mc":      "§IV.D: erroneous-SWAP Monte-Carlo vs process variation",
	"table1":  "Table I: hardware overhead comparison",
	"fig7a":   "Fig 7(a): mitigation latency per Tref vs attack intensity",
	"fig7b":   "Fig 7(b): sustained defense time",
	"defense": "RowHammer mitigation comparison (single-sided campaign)",
	"fig8a":   "Fig 8: BFA on ResNet-20/10 without and with DRAM-Locker",
	"fig8b":   "Fig 8: BFA on VGG-11/100 without and with DRAM-Locker",
	"fig8pta": "Fig 8 (PTA): page-table attack without and with DRAM-Locker",
	"table2":  "Table II: software-defense comparison (ResNet-20/10)",
	"perf":    "Workload overhead under attack (trace replay)",
}

// presetFree marks the experiments whose output ignores the preset
// entirely (they take no scale knobs). Their cache keys omit the preset
// hash, so a multi-preset run with a cache computes each of them once and
// replays the result for the other presets — shard by shard for the grid
// jobs.
var presetFree = map[string]bool{
	"fig1b": true, "table1": true, "fig7a": true, "fig7b": true,
}

// RegisterJobs registers one engine job per experiment at preset p, named
// "<preset>/<experiment>" (e.g. "small/fig8a"). The parameter-grid
// experiments (mc, table1, fig7a, fig7b, defense, table2) register as
// sharded jobs — per variation point, framework, curve, threshold,
// mechanism or defended model — and the rest as monoliths. Every job (and
// shard) trains its own victim and builds its own DefendedSystem, so any
// subset may execute concurrently. Cache keys embed the preset hash
// (except for the preset-free experiments), so a preset change
// invalidates prior results.
func RegisterJobs(reg *engine.Registry, p Preset) error {
	hash := p.Hash()
	for _, exp := range JobNames() {
		j, err := jobSpec(exp, p)
		if err != nil {
			return err
		}
		j.Name = p.Name + "/" + exp
		j.Title = jobTitles[exp]
		j.Key = exp + "@" + hash
		if presetFree[exp] {
			j.Key = exp + "@-"
		}
		if err := reg.Register(j); err != nil {
			return err
		}
	}
	return nil
}

// BuildRegistry registers every experiment of the named presets into a
// fresh registry. It is the one registry constructor shared by
// cmd/dramlocker and cmd/dramlockerd: a scheduler and a worker daemon
// that name the same presets resolve byte-identical job sets (same names,
// same shard layouts, same cache keys), which the executor protocol's
// key echo then verifies per task. Duplicate preset names are ignored.
func BuildRegistry(presets []string) (*engine.Registry, error) {
	if len(presets) == 0 {
		return nil, fmt.Errorf("experiments: no preset given (want a comma-separated subset of %s)",
			strings.Join(PresetNames(), ","))
	}
	reg := engine.NewRegistry()
	seen := make(map[string]bool, len(presets))
	for _, name := range presets {
		if seen[name] {
			continue
		}
		seen[name] = true
		p, err := PresetByName(name)
		if err != nil {
			return nil, err
		}
		if err := RegisterJobs(reg, p); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// SplitList splits a comma-separated flag value, trimming space and
// dropping empty items (the CLI and daemon share it for -preset/-exp).
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// monolith wraps a serial experiment into a single-unit engine.Job. The
// closures use the preset's own seeds (so engine output matches direct
// serial calls exactly); the engine.Context is forwarded so the
// model-bearing experiments can poll cancellation (Ctx) — ec.Seed remains
// available for engine-level features.
func monolith[T any](run func(engine.Context) (T, error), format func(T) string) engine.Job {
	return engine.Job{Run: func(ec engine.Context) (engine.Output, error) {
		v, err := run(ec)
		if err != nil {
			return engine.Output{}, err
		}
		return engine.Output{Text: format(v), Data: v}, nil
	}}
}

// jobSpec builds the execution shape (monolithic Run or Shards+Merge) for
// one experiment id; RegisterJobs stamps name, title and cache key.
func jobSpec(exp string, p Preset) (engine.Job, error) {
	switch exp {
	case "fig1a":
		return monolith(func(ec engine.Context) (*Fig1aResult, error) { return Fig1aCtx(ec.Ctx, p) }, FormatFig1a), nil
	case "fig1b":
		return monolith(func(engine.Context) ([]Fig1bRow, error) { return Fig1b() }, FormatFig1b), nil
	case "mc":
		return mcJob(p), nil
	case "table1":
		return table1Job(), nil
	case "fig7a":
		return fig7aJob(), nil
	case "fig7b":
		return fig7bJob(), nil
	case "defense":
		return defenseJob(p), nil
	case "fig8a":
		return monolith(func(ec engine.Context) (*Fig8Result, error) { return Fig8Ctx(ec.Ctx, p, ArchResNet20, 10) }, FormatFig8), nil
	case "fig8b":
		return monolith(func(ec engine.Context) (*Fig8Result, error) { return Fig8Ctx(ec.Ctx, p, ArchVGG11, 100) }, FormatFig8), nil
	case "fig8pta":
		return monolith(func(ec engine.Context) (*Fig8PTAResult, error) { return Fig8PTACtx(ec.Ctx, p) }, FormatFig8PTA), nil
	case "table2":
		return table2Job(p), nil
	case "perf":
		return monolith(func(ec engine.Context) (*PerfResult, error) { return PerfCtx(ec.Ctx, p) }, FormatPerf), nil
	default:
		return engine.Job{}, fmt.Errorf("experiments: unknown experiment %q", exp)
	}
}
