package experiments

import (
	"fmt"

	"repro/internal/engine"
)

// JobNames lists the experiment ids registered per preset, in the order
// the paper presents them (cheap model-free tables first, then the
// training-heavy attack panels).
func JobNames() []string {
	return []string{
		"fig1b", "mc", "table1", "fig7a", "fig7b", "defense",
		"fig1a", "fig8a", "fig8b", "fig8pta", "table2", "perf",
	}
}

// jobTitles maps experiment ids to one-line descriptions.
var jobTitles = map[string]string{
	"fig1a":   "Fig 1(a): targeted BFA vs random flips (VGG-11/100)",
	"fig1b":   "Fig 1(b): RowHammer thresholds validated on the fault model",
	"mc":      "§IV.D: erroneous-SWAP Monte-Carlo vs process variation",
	"table1":  "Table I: hardware overhead comparison",
	"fig7a":   "Fig 7(a): mitigation latency per Tref vs attack intensity",
	"fig7b":   "Fig 7(b): sustained defense time",
	"defense": "RowHammer mitigation comparison (single-sided campaign)",
	"fig8a":   "Fig 8: BFA on ResNet-20/10 without and with DRAM-Locker",
	"fig8b":   "Fig 8: BFA on VGG-11/100 without and with DRAM-Locker",
	"fig8pta": "Fig 8 (PTA): page-table attack without and with DRAM-Locker",
	"table2":  "Table II: software-defense comparison (ResNet-20/10)",
	"perf":    "Workload overhead under attack (trace replay)",
}

// presetFree marks the experiments whose output ignores the preset
// entirely (they take no scale knobs). Their cache keys omit the preset
// hash, so a multi-preset run with a cache computes each of them once and
// replays the result for the other presets.
var presetFree = map[string]bool{
	"fig1b": true, "table1": true, "fig7a": true, "fig7b": true,
}

// RegisterJobs registers one engine job per experiment at preset p, named
// "<preset>/<experiment>" (e.g. "small/fig8a"). Every job trains its own
// victim and builds its own DefendedSystem, so any subset may execute
// concurrently. Cache keys embed the preset hash (except for the
// preset-free experiments), so a preset change invalidates prior results.
func RegisterJobs(reg *engine.Registry, p Preset) error {
	hash := p.Hash()
	for _, exp := range JobNames() {
		run, err := jobRunner(exp, p)
		if err != nil {
			return err
		}
		key := exp + "@" + hash
		if presetFree[exp] {
			key = exp + "@-"
		}
		j := engine.Job{
			Name:  p.Name + "/" + exp,
			Title: jobTitles[exp],
			Key:   key,
			Run:   run,
		}
		if err := reg.Register(j); err != nil {
			return err
		}
	}
	return nil
}

// jobRunner builds the Run closure for one experiment id. The closures
// use the preset's own seeds (so engine output matches direct serial
// calls exactly); ctx.Seed remains available for engine-level features.
func jobRunner(exp string, p Preset) (func(engine.Context) (engine.Output, error), error) {
	switch exp {
	case "fig1a":
		return func(engine.Context) (engine.Output, error) {
			r, err := Fig1a(p)
			if err != nil {
				return engine.Output{}, err
			}
			return engine.Output{Text: FormatFig1a(r), Data: r}, nil
		}, nil
	case "fig1b":
		return func(engine.Context) (engine.Output, error) {
			rows, err := Fig1b()
			if err != nil {
				return engine.Output{}, err
			}
			return engine.Output{Text: FormatFig1b(rows), Data: rows}, nil
		}, nil
	case "mc":
		return func(engine.Context) (engine.Output, error) {
			rows, err := MonteCarlo(p)
			if err != nil {
				return engine.Output{}, err
			}
			return engine.Output{Text: FormatMonteCarlo(rows), Data: rows}, nil
		}, nil
	case "table1":
		return func(engine.Context) (engine.Output, error) {
			reports := Table1()
			return engine.Output{Text: FormatTable1(reports), Data: reports}, nil
		}, nil
	case "fig7a":
		return func(engine.Context) (engine.Output, error) {
			curves, err := Fig7aData()
			if err != nil {
				return engine.Output{}, err
			}
			return engine.Output{Text: FormatFig7a(curves), Data: curves}, nil
		}, nil
	case "fig7b":
		return func(engine.Context) (engine.Output, error) {
			bars, err := Fig7bData()
			if err != nil {
				return engine.Output{}, err
			}
			return engine.Output{Text: FormatFig7b(bars), Data: bars}, nil
		}, nil
	case "defense":
		return func(engine.Context) (engine.Output, error) {
			rows, err := DefenseComparison(p)
			if err != nil {
				return engine.Output{}, err
			}
			return engine.Output{Text: FormatDefenseComparison(p, rows), Data: rows}, nil
		}, nil
	case "fig8a":
		return func(engine.Context) (engine.Output, error) {
			r, err := Fig8(p, ArchResNet20, 10)
			if err != nil {
				return engine.Output{}, err
			}
			return engine.Output{Text: FormatFig8(r), Data: r}, nil
		}, nil
	case "fig8b":
		return func(engine.Context) (engine.Output, error) {
			r, err := Fig8(p, ArchVGG11, 100)
			if err != nil {
				return engine.Output{}, err
			}
			return engine.Output{Text: FormatFig8(r), Data: r}, nil
		}, nil
	case "fig8pta":
		return func(engine.Context) (engine.Output, error) {
			r, err := Fig8PTA(p)
			if err != nil {
				return engine.Output{}, err
			}
			return engine.Output{Text: FormatFig8PTA(r), Data: r}, nil
		}, nil
	case "table2":
		return func(engine.Context) (engine.Output, error) {
			rows, err := Table2(p, DefaultTable2Config(p))
			if err != nil {
				return engine.Output{}, err
			}
			return engine.Output{Text: FormatTable2(rows), Data: rows}, nil
		}, nil
	case "perf":
		return func(engine.Context) (engine.Output, error) {
			r, err := Perf(p)
			if err != nil {
				return engine.Output{}, err
			}
			return engine.Output{Text: FormatPerf(r), Data: r}, nil
		}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q", exp)
	}
}
